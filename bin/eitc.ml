(* eitc — compiler driver for the EIT programming support toolchain.

   Subcommands:
     info      print graph statistics of a kernel (raw and merged)
     schedule  schedule a kernel with memory allocation
     simulate  schedule, code-generate and run on the simulator
     overlap   overlapped execution of M iterations (manual vs automated)
     modulo    modulo-schedule a kernel (with/without reconfigurations)
     export    emit the IR as XML or DOT *)

module Vecsched = Vecsched_core.Vecsched

open Cmdliner

let kernels = [ "matmul"; "qrd"; "qrd-sorted"; "arf"; "fir"; "corr"; "detect" ]

let build_kernel = function
  | "matmul" ->
    let m = Apps.Matmul.build () in
    (Apps.Matmul.graph m, "matmul")
  | "qrd" ->
    let q = Apps.Qrd.build () in
    (Apps.Qrd.graph q, "qrd")
  | "qrd-sorted" ->
    let q = Apps.Qrd.build ~sorted:true () in
    (Apps.Qrd.graph q, "qrd-sorted")
  | "arf" ->
    let a = Apps.Arf.build () in
    (Apps.Arf.graph a, "arf")
  | "fir" ->
    let f = Apps.Fir.build () in
    (Apps.Fir.graph f, "fir")
  | "corr" ->
    let c = Apps.Corr.build () in
    (Apps.Corr.graph c, "corr")
  | "detect" ->
    let d = Apps.Detect.build () in
    (Apps.Detect.graph d, "detect")
  | k -> invalid_arg ("unknown kernel " ^ k)

let kernel_arg =
  let doc =
    Printf.sprintf "Kernel to process: %s." (String.concat ", " kernels)
  in
  Arg.(required & pos 0 (some (enum (List.map (fun k -> (k, k)) kernels))) None
       & info [] ~docv:"KERNEL" ~doc)

let budget_arg =
  let doc = "Solver budget in milliseconds." in
  Arg.(value & opt float 10_000. & info [ "budget" ] ~docv:"MS" ~doc)

let slots_arg =
  let doc = "Restrict the number of usable memory slots." in
  Arg.(value & opt (some int) None & info [ "slots" ] ~docv:"N" ~doc)

let preset_arg =
  let doc = "Architecture preset: eit, wide or mini." in
  Arg.(value
       & opt (enum (List.map (fun (n, a) -> (n, a)) Eit.Arch.presets))
           Eit.Arch.default
       & info [ "arch" ] ~docv:"PRESET" ~doc)

let arch_of preset = function
  | None -> preset
  | Some n -> Eit.Arch.with_slots preset n

let compile kernel =
  let g, name = build_kernel kernel in
  (Vecsched.compile g, name)

(* ------------------------------------------------------------------ *)
(* Observability surface: `--trace FILE` attaches a Chrome trace_event
   sink (open the file in ui.perfetto.dev or about://tracing),
   `--metrics` attaches an in-memory aggregator and prints the summary
   tables afterwards.  With neither flag no sink is attached and the
   instrumented hot paths cost one atomic load each. *)

let trace_file_arg =
  Arg.(value
       & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:
             "Write a Chrome trace_event JSON file covering the solve (and \
              the simulation, for $(b,simulate)).  Load it in Perfetto or \
              about://tracing.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:
             "Print aggregated metrics after the run: span totals, event \
              counts, gauge peaks and the per-propagator profile table.")

let print_metrics agg =
  let open Obs.Agg in
  (match spans agg with
  | [] -> ()
  | sp ->
    Format.printf "@.%-24s %8s %14s@." "span" "count" "total (ms)";
    List.iter
      (fun (n, s) ->
        Format.printf "%-24s %8d %14.2f@." n s.s_count (s.s_total_us /. 1000.))
      sp);
  (match counts agg with
  | [] -> ()
  | cs ->
    Format.printf "@.%-24s %8s@." "event" "count";
    List.iter (fun (n, c) -> Format.printf "%-24s %8d@." n c) cs);
  (match gauges agg with
  | [] -> ()
  | gs ->
    Format.printf "@.%-24s %10s %10s@." "gauge" "last" "max";
    List.iter
      (fun (n, (last, mx)) ->
        Format.printf "%-24s %10.0f %10.0f@." n last mx)
      gs);
  match profiles agg with
  | [] -> ()
  | ps ->
    Format.printf "@.%-22s %8s %8s %8s %8s %12s %8s@." "propagator" "runs"
      "wakes" "prunes" "entails" "time (ms)" "workers";
    List.iter
      (fun (n, p) ->
        Format.printf "%-22s %8d %8d %8d %8d %12.2f %8d@." n p.p_runs p.p_wakes
          p.p_prunes p.p_entails p.p_time_ms p.p_workers)
      ps

(* Attach the requested sinks around [f], detach afterwards (flushing
   the trace file) and only then print the metrics tables, so they land
   after the run's own output. *)
let with_obs ?(other_data = []) ~trace ~metrics f =
  let chrome =
    Option.map
      (fun path -> Obs.attach (Obs.Chrome.sink ~other_data ~path ()))
      trace
  in
  let agg =
    if metrics then begin
      let a = Obs.Agg.create () in
      Some (a, Obs.attach (Obs.Agg.sink a))
    end
    else None
  in
  let detach_all () =
    Option.iter Obs.detach chrome;
    Option.iter (fun (_, h) -> Obs.detach h) agg
  in
  let r =
    match f () with
    | r -> r
    | exception e ->
      detach_all ();
      raise e
  in
  detach_all ();
  Option.iter (fun path -> Format.printf "wrote trace %s@." path) trace;
  Option.iter (fun (a, _) -> print_metrics a) agg;
  r

(* ------------------------------------------------------------------ *)

let info_cmd =
  let run kernel =
    let c, name = compile kernel in
    Format.printf "%s raw:    %a@." name Vecsched.Stats.pp
      (Vecsched.Stats.of_ir c.Vecsched.raw);
    Format.printf "%s merged: %a (%d fusions)@." name Vecsched.Stats.pp
      c.Vecsched.stats c.Vecsched.fusions;
    0
  in
  Cmd.v (Cmd.info "info" ~doc:"Print kernel graph statistics")
    Term.(const run $ kernel_arg)

(* The status line + exit-code contract (see README): 0 optimal or
   CP-feasible, 2 fallback schedule (degraded), 3 infeasible, 4 crashed
   with no usable schedule. *)
let report_outcome name arch o =
  let code = Sched.Solve.exit_code o in
  Format.printf "status: %a (engine=%a, exit %d)@." Sched.Solve.pp_status
    o.Sched.Solve.status Sched.Solve.pp_engine o.Sched.Solve.engine code;
  List.iter
    (fun c ->
      Format.printf "  crash: worker %d: %s@." c.Fd.Portfolio.worker
        c.Fd.Portfolio.reason)
    o.Sched.Solve.crashes;
  (match o.Sched.Solve.validation with
  | Ok () -> ()
  | Error r -> Format.printf "  validation: %a@." Sched.Validate.pp_report r);
  (match o.Sched.Solve.schedule with
  | Some sch ->
    Format.printf
      "%s: %a, makespan=%d cc, %d/%d slots used, %d nodes, %d fails, %d \
       props, %.0f ms@."
      name Sched.Solve.pp_status o.Sched.Solve.status
      sch.Sched.Schedule.makespan
      (Sched.Schedule.slots_used sch)
      (Eit.Arch.slots arch) o.stats.Fd.Search.nodes o.stats.Fd.Search.failures
      o.stats.Fd.Search.propagations o.stats.Fd.Search.time_ms
  | None ->
    Format.printf "%s: %a after %.0f ms@." name Sched.Solve.pp_status
      o.Sched.Solve.status o.stats.Fd.Search.time_ms);
  (o.Sched.Solve.schedule, code)

let deadline_arg =
  let doc =
    "Hard wall-clock deadline in milliseconds for the whole solve, enforced \
     inside the propagation fixpoint.  On expiry the best CP incumbent (or \
     the heuristic fallback) is returned instead of overrunning."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~doc)

let deadline_of = function
  | None -> Fd.Deadline.none
  | Some ms -> Fd.Deadline.after_ms ms

(* Labels stamped into the trace's otherData so `trace-report` /
   `trace-diff` can head their output with what was actually run. *)
let run_labels ~name ~arch ~parallel =
  [
    ("kernel", Obs.S name);
    ( "mode",
      Obs.S
        (if parallel > 1 then Printf.sprintf "portfolio-%d" parallel
         else "sequential") );
    ("slots", Obs.I (Eit.Arch.slots arch));
  ]

let schedule_cmd =
  let run kernel budget deadline slots preset verbose parallel trace metrics
      cache_n warm cache_file =
    let c, name = compile kernel in
    let arch = arch_of preset slots in
    (* --cache-file without --cache still enables a (default-sized)
       cache: the file is the point of carrying one across runs. *)
    let cache =
      if cache_n > 0 || cache_file <> None then begin
        let capacity = if cache_n > 0 then cache_n else 16 in
        match cache_file with
        | Some path when Sys.file_exists path -> (
          match Cache.load ~capacity path with
          | Ok cc -> Some cc
          | Error msg ->
            Format.eprintf "warning: ignoring cache file %s: %s@." path msg;
            Some (Cache.create ~capacity))
        | _ -> Some (Cache.create ~capacity)
      end
      else None
    in
    let o =
      with_obs ~other_data:(run_labels ~name ~arch ~parallel) ~trace ~metrics
        (fun () ->
          Vecsched.schedule ~budget_ms:budget ~deadline:(deadline_of deadline)
            ~arch ~parallel ?cache ~warm c)
    in
    (match cache with
    | Some cc ->
      let s = Cache.stats cc in
      Format.printf "cache: %s (hits=%d misses=%d evictions=%d entries=%d)@."
        (if o.Sched.Solve.from_cache then "hit" else "miss")
        s.Cache.hits s.Cache.misses s.Cache.evictions (Cache.length cc);
      Option.iter (fun path -> Cache.save cc path) cache_file
    | None -> ());
    match report_outcome name arch o with
    | Some sch, code ->
      if verbose then begin
        Format.printf "%a" Sched.Schedule.pp sch;
        Format.printf "%a" Sched.Schedule.pp_gantt sch
      end;
      code
    | None, code -> code
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full schedule.")
  in
  let parallel =
    Arg.(value
         & opt int 0
         & info [ "j"; "parallel" ] ~docv:"N"
             ~doc:
               "Run a cooperative portfolio of $(docv) diversified search \
                strategies on separate cores (0 or 1 = sequential).")
  in
  let cache_arg =
    Arg.(value
         & opt int 0
         & info [ "cache" ] ~docv:"N"
             ~doc:
               "Consult an $(docv)-entry LRU solution cache keyed on the \
                canonical problem form; an identical request replays the \
                validated cached schedule with zero search work.  Pair with \
                $(b,--cache-file) to persist it across invocations.")
  in
  let warm_arg =
    Arg.(value & flag
         & info [ "warm" ]
             ~doc:
               "Warm-start: seed the solve with the best validated makespan \
                previously recorded for this graph shape (requires \
                $(b,--cache)/$(b,--cache-file)); a stale seed falls back to \
                a cold solve, never to a wrong answer.")
  in
  let cache_file_arg =
    Arg.(value
         & opt (some string) None
         & info [ "cache-file" ] ~docv:"PATH"
             ~doc:
               "Load the solution cache from $(docv) before solving (if it \
                exists) and save it back afterwards.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Schedule a kernel with memory allocation")
    Term.(const run $ kernel_arg $ budget_arg $ deadline_arg $ slots_arg
          $ preset_arg $ verbose $ parallel $ trace_file_arg $ metrics_arg
          $ cache_arg $ warm_arg $ cache_file_arg)

let heuristic_cmd =
  let run kernel slots preset =
    let c, name = compile kernel in
    let arch = arch_of preset slots in
    match Sched.Heuristic.run ~arch c.Vecsched.ir with
    | Ok sch ->
      Format.printf "%s (greedy): makespan=%d cc, %d/%d slots used, valid=%b@."
        name sch.Sched.Schedule.makespan
        (Sched.Schedule.slots_used sch)
        (Eit.Arch.slots arch)
        (Sched.Schedule.is_valid sch);
      0
    | Error e ->
      Format.printf "%s (greedy): failed -- %s@." name e;
      1
  in
  Cmd.v
    (Cmd.info "heuristic"
       ~doc:"Schedule with the greedy list scheduler instead of the CP model")
    Term.(const run $ kernel_arg $ slots_arg $ preset_arg)

let simulate_cmd =
  let run kernel budget slots preset print_trace trace metrics =
    let c, name = compile kernel in
    let arch = arch_of preset slots in
    with_obs ~other_data:(run_labels ~name ~arch ~parallel:0) ~trace ~metrics
      (fun () ->
        let o = Vecsched.schedule ~budget_ms:budget ~arch c in
        match report_outcome name arch o with
        | Some sch, _ -> (
          if print_trace then begin
            let p = Sched.Codegen.program sch in
            ignore
              (Eit.Machine.run
                 ~trace:(fun ev ->
                   Format.printf "%a@." Eit.Machine.pp_trace_event ev)
                 p)
          end;
          match Vecsched.run_on_simulator sch with
          | Ok () ->
            Format.printf
              "simulation: all %d operation results match the reference@."
              (List.length (Vecsched.Ir.op_nodes c.Vecsched.ir));
            0
          | Error e ->
            Format.printf "simulation FAILED: %s@." e;
            1)
        | None, code -> code)
  in
  let print_trace_arg =
    Arg.(value & flag & info [ "print-trace" ]
         ~doc:"Print the cycle-by-cycle execution trace as text.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Schedule, generate code and verify on the cycle-accurate simulator")
    Term.(const run $ kernel_arg $ budget_arg $ slots_arg $ preset_arg
          $ print_trace_arg $ trace_file_arg $ metrics_arg)

let overlap_cmd =
  let run kernel budget m =
    let c, name = compile kernel in
    let o = Vecsched.schedule ~budget_ms:budget c in
    match o.Sched.Solve.schedule with
    | Some sch ->
      Format.printf "%s automated: %a@." name Sched.Overlap.pp
        (Sched.Overlap.run sch ~m);
      Format.printf "%s manual:    %a@." name Sched.Overlap.pp
        (Sched.Manual_baseline.overlapped c.Vecsched.ir Eit.Arch.default ~m);
      0
    | None -> 1
  in
  let m_arg =
    Arg.(value & opt int 12 & info [ "m"; "iterations" ] ~docv:"M"
         ~doc:"Number of iterations to overlap.")
  in
  Cmd.v
    (Cmd.info "overlap" ~doc:"Overlapped execution of M iterations (Table 2)")
    Term.(const run $ kernel_arg $ budget_arg $ m_arg)

let modulo_cmd =
  let run kernel budget including =
    let c, name = compile kernel in
    let solve =
      if including then Sched.Modulo.solve_including else Sched.Modulo.solve_excluding
    in
    match solve ~budget_ms:budget c.Vecsched.ir with
    | Some r ->
      Format.printf "%s (%s reconfigurations): %a@." name
        (if including then "including" else "excluding")
        Sched.Modulo.pp r;
      (match Sched.Modulo.validate c.Vecsched.ir Eit.Arch.default r with
      | Ok () -> 0
      | Error e ->
        Format.printf "kernel INVALID: %s@." e;
        1)
    | None ->
      Format.printf "%s: no modulo schedule found within budget@." name;
      1
  in
  let including =
    Arg.(value & flag & info [ "include-reconfigurations" ]
         ~doc:"Optimize II + reconfigurations jointly.")
  in
  Cmd.v
    (Cmd.info "modulo" ~doc:"Modulo-schedule a kernel (Table 3)")
    Term.(const run $ kernel_arg $ budget_arg $ including)

let report_cmd =
  let run kernel budget =
    let c, name = compile kernel in
    let report = Sched.Report.build ~budget_ms:budget ~name c.Vecsched.ir in
    Format.printf "%a@." Sched.Report.pp report;
    0
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Full kernel report: graph, bounds, schedule, Gantt, memory map,              utilization, pipelining")
    Term.(const run $ kernel_arg $ budget_arg)

let code_cmd =
  let run kernel budget =
    let c, name = compile kernel in
    let o = Vecsched.schedule ~budget_ms:budget c in
    match o.Sched.Solve.schedule with
    | Some sch -> (
      let p = Sched.Codegen.program sch in
      match Eit.Encode.encode_result p with
      | Error e ->
        Format.printf "encode error: %s@." e;
        4
      | Ok img -> (
        Format.printf "%s: %d words, %d pool constants, %d bytes@." name
          (Array.length img.Eit.Encode.words)
          (Array.length img.Eit.Encode.pool)
          (Eit.Encode.size_bytes img);
        Array.iter
          (fun w -> Format.printf "  %016Lx  %a@." w Eit.Encode.pp_word w)
          img.Eit.Encode.words;
        (* round-trip sanity *)
        match
          Eit.Encode.decode_result ~arch:p.Eit.Instr.arch
            ~inputs:p.Eit.Instr.inputs ~outputs:p.Eit.Instr.outputs img
        with
        | Error e ->
          Format.printf "decode error: %s@." e;
          4
        | Ok p' ->
          if p'.Eit.Instr.instrs = p.Eit.Instr.instrs then begin
            Format.printf "round-trip: OK@.";
            0
          end
          else begin
            Format.printf "round-trip: MISMATCH@.";
            1
          end))
    | None -> Sched.Solve.exit_code o
  in
  Cmd.v
    (Cmd.info "code"
       ~doc:"Emit the binary configuration-memory image (with disassembly)")
    Term.(const run $ kernel_arg $ budget_arg)

let asm_cmd =
  let run kernel budget out =
    let c, name = compile kernel in
    let o = Vecsched.schedule ~budget_ms:budget c in
    match o.Sched.Solve.schedule with
    | Some sch ->
      let p = Sched.Codegen.program sch in
      (match out with
      | Some path ->
        Eit.Asm.save path p;
        Format.printf "wrote %s@." path
      | None -> print_string (Eit.Asm.print p));
      ignore name;
      0
    | None -> 1
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Emit the scheduled kernel as textual assembly")
    Term.(const run $ kernel_arg $ budget_arg $ out_arg)

let run_asm_cmd =
  let run path print_trace trace metrics =
    match Eit.Asm.load path with
    | Error e ->
      Format.printf "parse error: %s@." e;
      1
    | Ok p -> (
      match Eit.Instr.validate_structure p with
      | Error e ->
        Format.printf "invalid program: %s@." e;
        1
      | Ok () ->
        with_obs
          ~other_data:[ ("kernel", Obs.S path); ("mode", Obs.S "run-asm") ]
          ~trace ~metrics
          (fun () ->
            match
              Eit.Machine.run
                ~trace:(fun ev ->
                  if print_trace then
                    Format.printf "%a@." Eit.Machine.pp_trace_event ev)
                p
            with
            | result ->
              Format.printf "completed at cycle %d, %d reconfigurations@."
                result.Eit.Machine.cycles result.Eit.Machine.reconfigurations;
              List.iter
                (fun (node, v) ->
                  Format.printf "  n%d = %s@." node (Eit.Value.to_string v))
                (Eit.Machine.output_values result p);
              0
            | exception Eit.Machine.Sim_error e ->
              Format.printf "simulation error: %a@." Eit.Machine.pp_error e;
              1))
  in
  let path_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Assembly file to run.")
  in
  (* `--trace` used to be this text flag; it now means `--trace FILE`
     everywhere (Chrome JSON), and the text trace is `--print-trace`,
     matching `simulate`. *)
  let print_trace_arg =
    Arg.(value & flag & info [ "print-trace" ]
         ~doc:"Print the cycle-by-cycle execution trace as text.")
  in
  Cmd.v
    (Cmd.info "run-asm"
       ~doc:"Assemble, validate and simulate a hand-written program")
    Term.(const run $ path_arg $ print_trace_arg $ trace_file_arg $ metrics_arg)

(* Input-file failures (missing, unreadable, unparseable) exit 2 on
   every offline reader below, distinct from analysis verdicts (exit
   1), so scripts can tell "your trace regressed" from "you pointed me
   at nothing". *)
let input_error path msg =
  Format.eprintf "eitc: %s: %s@." path msg;
  2

let trace_check_cmd =
  let run path lenient =
    if not (Sys.file_exists path) then
      input_error path "no such file"
    else
      match Obs.Check.trace_file ~lenient path with
      | Ok n ->
        Format.printf "%s: OK (%d events, spans balanced)@." path n;
        0
      | Error e ->
        Format.printf "%s: INVALID -- %s@." path e;
        1
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Chrome trace_event JSON file (from --trace) to validate.")
  in
  let lenient_arg =
    Arg.(value & flag
         & info [ "lenient" ]
             ~doc:
               "Tolerate truncation: unmatched End events and spans left \
                open at the end of the trace pass (a flight-recorder ring \
                dump is a suffix of the request's stream, so both are \
                expected there).  Misnested or time-reversed spans still \
                fail.")
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a trace file emitted by --trace: JSON parses, every event \
          is well-formed, Begin/End spans nest per track")
    Term.(const run $ path_arg $ lenient_arg)

let import_cmd =
  let run path sched budget trace metrics =
    match Vecsched.Xml.load_file path with
    | Error e ->
      (* positioned, no backtrace: the parser is total *)
      Format.printf "%s: %a@." path Vecsched.Xml.pp_error e;
      1
    | Ok g ->
      Format.printf "%s: %a@." path Vecsched.Stats.pp (Vecsched.Stats.of_ir g);
      if sched then
        with_obs
          ~other_data:(run_labels ~name:path ~arch:Eit.Arch.default ~parallel:0)
          ~trace ~metrics
          (fun () ->
            let c = Vecsched.compile g in
            let o = Vecsched.schedule ~budget_ms:budget c in
            snd (report_outcome path Eit.Arch.default o))
      else 0
  in
  let path_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"XML graph file to import.")
  in
  let sched_arg =
    Arg.(value & flag & info [ "schedule" ]
         ~doc:"Also compile and schedule the imported graph.")
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Parse an exported XML graph (reporting positioned errors)")
    Term.(const run $ path_arg $ sched_arg $ budget_arg $ trace_file_arg
          $ metrics_arg)

let trace_report_cmd =
  let run path flame utilization =
    match Obs.Analyze.of_file path with
    | Error e -> input_error path e
    | Ok s ->
      Obs.Analyze.pp_report ~utilization Format.std_formatter s;
      (match flame with
      | Some out ->
        Obs.Analyze.write_folded out s;
        Format.printf "@.wrote %s (flamegraph.pl / speedscope input)@." out
      | None -> ());
      0
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Chrome trace_event JSON file (from --trace) to analyze.")
  in
  let flame_arg =
    Arg.(value & opt (some string) None
         & info [ "flame" ] ~docv:"OUT"
             ~doc:
               "Also write the span forest as collapsed stacks (one \
                $(i,a;b;c value) line per stack; feed to flamegraph.pl or \
                speedscope).")
  in
  let utilization_arg =
    Arg.(value & flag
         & info [ "utilization" ]
             ~doc:
               "Include machine utilization tables derived from the pid-2 \
                cycle timeline: lane busy %, per-functional-unit busy \
                cycles, bank-port pressure histograms, peak simultaneous \
                vector accesses.")
  in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:
         "Analyze a trace: span-tree table with inclusive/exclusive times, \
          critical path, propagator profiles, optional flame-graph export \
          and machine utilization")
    Term.(const run $ path_arg $ flame_arg $ utilization_arg)

let trace_diff_cmd =
  let run before after threshold =
    match (Obs.Analyze.of_file before, Obs.Analyze.of_file after) with
    | Error e, _ -> input_error before e
    | _, Error e -> input_error after e
    | Ok b, Ok a -> (
      let d = Obs.Analyze.diff b a in
      Obs.Analyze.pp_diff Format.std_formatter d;
      match Obs.Analyze.regressions ~threshold d with
      | [] ->
        Format.printf "@.no watched-metric regressions (threshold %.0f%%)@."
          threshold;
        0
      | rs ->
        List.iter (fun r -> Format.printf "@.REGRESSION %s" r) rs;
        Format.printf "@.";
        1)
  in
  let before_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BEFORE"
         ~doc:"Baseline trace file.")
  in
  let after_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"AFTER"
         ~doc:"Candidate trace file.")
  in
  let threshold_arg =
    Arg.(value & opt float 10.
         & info [ "threshold" ] ~docv:"PCT"
             ~doc:
               "Fail (exit 1) when a watched metric — total or \
                per-propagator run counts, search branch/fail tallies — \
                grows by more than $(docv) percent.  Wall-clock time is \
                reported but never gates.")
  in
  Cmd.v
    (Cmd.info "trace-diff"
       ~doc:
         "Structurally diff two traces (spans matched by name and track, \
          propagator profiles, event tallies) and gate on watched-metric \
          regressions")
    Term.(const run $ before_arg $ after_arg $ threshold_arg)

(* `eitc serve` — the long-lived batch scheduling front end: one JSON
   request per stdin line, one JSON response per stdout line (see
   docs/SERVICE.md for the schema and the per-response exit-code
   contract).  Responses are written in completion order by whichever
   pool domain finishes, hence the stdout mutex.  The process itself
   exits 0 on clean EOF: per-request failures are data, not process
   failures. *)
let serve_cmd =
  let run pool queue budget grace retries backoff seed cache warm trace
      metrics metrics_file stats_interval logfile trace_sample tail_keep
      flight_dir flight_buf chaos_wedge =
    with_obs ~other_data:[ ("mode", Obs.S "serve") ] ~trace ~metrics (fun () ->
        (* One live registry feeds the service instruments, the solver
           distributions and the exporter alike. *)
        let reg = Obs.Metrics.create () in
        (* `--chaos-wedge SEQ` wedges the first attempt of the SEQ-th
           admitted request (chaos site id = seq*8 + attempt), so the
           watchdog -> flight-dump -> postmortem pipeline can be
           exercised end to end by check.sh without a real hang. *)
        let chaos =
          Option.map
            (fun sq ->
              Fd.Chaos.create ~wedge_workers:[ (sq * 8) + 1 ] ~wedge_after:1
                ~seed ())
            chaos_wedge
        in
        let config =
          {
            Serve.Service.default_config with
            pool;
            queue;
            default_budget_ms = budget;
            grace_ms = grace;
            max_retries = retries;
            backoff_base_ms = backoff;
            seed;
            chaos;
            cache_capacity = cache;
            warm_start = warm;
            metrics = Some reg;
            trace_sample;
            flight_dir;
            flight_buf;
            tail_keep;
          }
        in
        let svc = Serve.Service.create ~config () in
        let exporter =
          Option.map
            (fun path ->
              Obs.Metrics.exporter_start ~interval_ms:stats_interval
                ~prom_path:(path ^ ".prom") ~path reg)
            metrics_file
        in
        let log_oc = Option.map open_out logfile in
        let out_m = Mutex.create () in
        let print line =
          Mutex.lock out_m;
          print_string line;
          print_newline ();
          flush stdout;
          Mutex.unlock out_m
        in
        let log r =
          match log_oc with
          | None -> ()
          | Some oc ->
            let line = Serve.Wire.log_line r in
            Mutex.lock out_m;
            output_string oc line;
            output_char oc '\n';
            flush oc;
            Mutex.unlock out_m
        in
        let rec loop n =
          match input_line stdin with
          | exception End_of_file -> ()
          | line ->
            (if String.trim line <> "" then
               let default_id = Printf.sprintf "line-%d" n in
               match Serve.Wire.parse_line ~default_id line with
               | Error msg -> print (Serve.Wire.error_line ~id:default_id msg)
               | Ok (Serve.Wire.Stats id) ->
                 (* answered inline — a health probe must not queue
                    behind solves *)
                 print (Serve.Wire.stats_line ~id (Serve.Service.health svc))
               | Ok (Serve.Wire.Request req) ->
                 ignore
                   (Serve.Service.submit svc req ~on_complete:(fun r ->
                        print (Serve.Wire.response_line r);
                        log r)));
            loop (n + 1)
        in
        (* The crash black box: if anything is about to take the daemon
           down, dump every live flight ring first so the postmortem
           starts from evidence, not from a bare backtrace. *)
        (try loop 1
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           (match
              Serve.Service.flight_dump_all svc ~reason:"daemon-fatal"
            with
           | Some p ->
             Format.eprintf "eitc serve: fatal %s -- flight dump %s@."
               (Printexc.to_string e) p
           | None -> ());
           Printexc.raise_with_backtrace e bt);
        Serve.Service.shutdown svc;
        Option.iter Obs.Metrics.exporter_stop exporter;
        Option.iter close_out log_oc;
        0)
  in
  let pool_arg =
    Arg.(value & opt int 4
         & info [ "pool" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"M"
             ~doc:
               "Admission queue capacity; further requests are shed with \
                status $(b,rejected_overload) instead of queueing unboundedly.")
  in
  let sbudget_arg =
    Arg.(value & opt float 10_000.
         & info [ "budget" ] ~docv:"MS"
             ~doc:"Default per-attempt solver budget for requests that carry \
                   none.")
  in
  let grace_arg =
    Arg.(value & opt float 2_000.
         & info [ "grace" ] ~docv:"MS"
             ~doc:
               "Watchdog grace window: a worker whose request makes no solver \
                progress for this long is declared wedged, its request \
                answered, and its slot revived.")
  in
  let retries_arg =
    Arg.(value & opt int 1
         & info [ "retries" ] ~docv:"K"
             ~doc:"Default retry allowance for crashed attempts.")
  in
  let backoff_arg =
    Arg.(value & opt float 25.
         & info [ "backoff" ] ~docv:"MS"
             ~doc:"First retry backoff step (doubles per retry, jittered).")
  in
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"S" ~doc:"Backoff-jitter RNG seed.")
  in
  let cache_arg =
    Arg.(value & opt int 0
         & info [ "cache" ] ~docv:"N"
             ~doc:
               "Share an $(docv)-entry LRU solution cache across requests; \
                repeated identical requests are answered from it (marked \
                $(b,cached) in the response).  0 disables caching.")
  in
  let warm_arg =
    Arg.(value & flag
         & info [ "warm" ]
             ~doc:
               "Warm-start sequential solves from the best validated \
                makespan previously seen for the same graph shape.")
  in
  let metrics_file_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-file" ] ~docv:"FILE"
             ~doc:
               "Append one JSON metrics snapshot (latency quantiles, SLO \
                rates, solver work distributions) to $(docv) every \
                $(b,--stats-interval), and rewrite $(docv).prom in \
                Prometheus text format on the same cadence.  Read it back \
                with $(b,eitc metrics-report).")
  in
  let stats_interval_arg =
    Arg.(value & opt float 1_000.
         & info [ "stats-interval" ] ~docv:"MS"
             ~doc:"Snapshot export period for $(b,--metrics-file).")
  in
  let log_arg =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE"
             ~doc:
               "Append one structured JSON log record per completed request \
                (timestamp, id, status, attempts, queue-wait / solve / \
                validate / total latency) to $(docv).")
  in
  let trace_sample_arg =
    Arg.(value & opt int 0
         & info [ "trace-sample" ] ~docv:"R"
             ~doc:
               "Head-sample the $(b,--trace) event stream: keep the full \
                trace of one in $(docv) requests and suppress the rest, so \
                tracing can stay on under production load.  0 or 1 traces \
                every request.  Live metrics always cover all requests.  \
                Superseded by $(b,--flight-dir), which records everything \
                and decides retention at completion instead.")
  in
  let flight_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "flight-dir" ] ~docv:"DIR"
             ~doc:
               "Turn on the tail-based flight recorder: every request \
                records its full event stream into a preallocated \
                per-worker ring, and the completion path keeps anomalies \
                (error / expired / wedged / crashed / retried), anything \
                at or beyond the live p99, and a $(b,--tail-keep) slice \
                of healthy traffic -- each written as a self-contained \
                JSONL black box under $(docv), read back with \
                $(b,eitc postmortem).  Everything else is reset without \
                serializing a byte.")
  in
  let flight_buf_arg =
    Arg.(value & opt int 4096
         & info [ "flight-buf" ] ~docv:"EVENTS"
             ~doc:
               "Per-worker flight-ring capacity; a dump holds at most \
                $(docv) events, cut mid-span when the request overflowed \
                the ring (the dump records how many were overwritten).")
  in
  let tail_keep_arg =
    Arg.(value & opt int 0
         & info [ "tail-keep" ] ~docv:"N"
             ~doc:
               "With $(b,--flight-dir): also keep the trace of one in \
                $(docv) $(i,healthy) completions as a baseline slice \
                (deterministic, by admission sequence).  0 (default) \
                keeps only anomalies and tail-latency outliers.")
  in
  let chaos_wedge_arg =
    Arg.(value & opt (some int) None
         & info [ "chaos-wedge" ] ~docv:"SEQ"
             ~doc:
               "Debug fault injection: wedge the first solve attempt of \
                the $(docv)-th admitted request (0-based) until the \
                watchdog catches it -- exercises the wedge verdict, the \
                flight dump and $(b,eitc postmortem) end to end.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batch scheduling service: line-delimited JSON requests on \
          stdin, one JSON response per request on stdout")
    Term.(const run $ pool_arg $ queue_arg $ sbudget_arg $ grace_arg
          $ retries_arg $ backoff_arg $ seed_arg $ cache_arg $ warm_arg
          $ trace_file_arg $ metrics_arg $ metrics_file_arg
          $ stats_interval_arg $ log_arg $ trace_sample_arg $ tail_keep_arg
          $ flight_dir_arg $ flight_buf_arg $ chaos_wedge_arg)

(* `eitc metrics-report` — render the latest snapshot of a
   `--metrics-file` JSONL stream as the same kind of tables `--metrics`
   prints, without attaching to the live process. *)
let metrics_report_cmd =
  let read_last_line path =
    let ic = open_in path in
    let last = ref None in
    (try
       while true do
         let l = input_line ic in
         if String.trim l <> "" then last := Some l
       done
     with End_of_file -> ());
    close_in ic;
    !last
  in
  let run path =
    let module J = Obs.Json in
    match read_last_line path with
    | exception Sys_error m -> input_error path m
    | None -> input_error path "no snapshot lines"
    | Some line -> (
      match J.parse line with
      | Error e -> input_error path ("bad snapshot: " ^ e)
      | Ok j ->
        let obj name =
          match J.member name j with Some (J.Obj kvs) -> kvs | _ -> []
        in
        let numf = function J.Num f -> f | _ -> 0. in
        (match J.member "ts_unix" j with
        | Some (J.Num t) -> Format.printf "snapshot ts_unix=%.3f@." t
        | _ -> ());
        (match obj "counters" with
        | [] -> ()
        | kvs ->
          Format.printf "@.%-28s %12s@." "counter" "value";
          List.iter
            (fun (k, v) -> Format.printf "%-28s %12.0f@." k (numf v))
            kvs);
        (match obj "gauges" with
        | [] -> ()
        | kvs ->
          Format.printf "@.%-28s %12s@." "gauge" "value";
          List.iter
            (fun (k, v) -> Format.printf "%-28s %12.2f@." k (numf v))
            kvs);
        (match obj "histograms" with
        | [] -> ()
        | kvs ->
          Format.printf "@.%-24s %8s %10s %10s %10s %10s %10s@." "histogram"
            "count" "mean" "p50" "p95" "p99" "max";
          List.iter
            (fun (k, v) ->
              let f n =
                match J.member n v with Some (J.Num x) -> x | _ -> 0.
              in
              Format.printf "%-24s %8.0f %10.3f %10.3f %10.3f %10.3f %10.3f@."
                k (f "count") (f "mean") (f "p50") (f "p95") (f "p99")
                (f "max"))
            kvs;
          (* Exemplar trails: "show me a trace behind this bucket" —
             the flight-recorder dump (or request id) linked to recent
             retained observations of each histogram. *)
          List.iter
            (fun (k, v) ->
              match J.member "exemplars" v with
              | Some (J.Arr exs) when exs <> [] ->
                Format.printf "@.%s exemplars (newest first):@." k;
                List.iter
                  (fun ex ->
                    let value =
                      match J.member "value" ex with
                      | Some (J.Num x) -> x
                      | _ -> 0.
                    in
                    let trace =
                      match J.member "trace" ex with
                      | Some (J.Str s) -> s
                      | _ -> "?"
                    in
                    Format.printf "  %10.3f  %s@." value trace)
                  exs
              | _ -> ())
            kvs);
        (match obj "slo" with
        | [] -> ()
        | kvs ->
          Format.printf "@.%-24s %8s %8s %12s %14s@." "slo" "window" "seen"
            "error_rate" "deadline_hit";
          List.iter
            (fun (k, v) ->
              let f n =
                match J.member n v with Some (J.Num x) -> x | _ -> 0.
              in
              Format.printf "%-24s %8.0f %8.0f %12.4f %14.4f@." k (f "window")
                (f "seen") (f "error_rate")
                (f "deadline_hit_rate"))
            kvs);
        0)
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"A JSONL metrics stream written by $(b,--metrics-file).")
  in
  Cmd.v
    (Cmd.info "metrics-report"
       ~doc:"Render the latest snapshot of a metrics JSONL stream")
    Term.(const run $ path_arg)

(* `eitc postmortem` — read flight-recorder black boxes back.  For each
   dump: its request metadata heading, then the retained trace
   reconstructed through the same analyzer as `trace-report`.  Span
   trees are partial by design — a ring dump is the *suffix* of the
   request's event stream, cut mid-span on overflow, and the request's
   own closing span end postdates retention — which is exactly why the
   analyzer tolerates truncation. *)
let postmortem_cmd =
  let run path =
    let module J = Obs.Json in
    if not (Sys.file_exists path) then input_error path "no such file or directory"
    else
      let files =
        if Sys.is_directory path then Obs.Flight.dump_files path else [ path ]
      in
      match files with
      | [] ->
        Format.eprintf "eitc: %s: no flight dumps (flight-*.jsonl)@." path;
        1
      | files ->
        let malformed = ref 0 and failed = ref 0 in
        List.iteri
          (fun i f ->
            if i > 0 then Format.printf "@.";
            match Obs.Flight.load_dump f with
            | Error e ->
              incr malformed;
              Format.eprintf "eitc: %s: %s@." f e
            | Ok d ->
              let meta = d.Obs.Flight.d_meta in
              let str n =
                match List.assoc_opt n meta with
                | Some (J.Str s) -> s
                | _ -> "?"
              in
              let numo n =
                match List.assoc_opt n meta with
                | Some (J.Num x) -> Some x
                | _ -> None
              in
              Format.printf "=== %s@." f;
              Format.printf "request %s: %s (%d events retained%s%s)@."
                (str "id") (str "reason")
                (List.length d.Obs.Flight.d_events)
                (match numo "overflow" with
                | Some o when o > 0. ->
                  Printf.sprintf ", %.0f overwritten in the ring" o
                | _ -> "")
                (if d.Obs.Flight.d_skipped > 0 then
                   Printf.sprintf ", %d unreadable lines skipped"
                     d.Obs.Flight.d_skipped
                 else "");
              List.iter
                (fun (k, v) ->
                  match k with
                  | "flight" | "id" | "reason" | "events" | "overflow" -> ()
                  | _ -> Format.printf "  %-12s %s@." k (J.to_string v))
                meta;
              (match Obs.Analyze.of_json (Obs.Flight.trace_of_dump d) with
              | Error e ->
                incr failed;
                Format.printf "analysis failed: %s@." e
              | Ok s -> Obs.Analyze.pp_report Format.std_formatter s))
          files;
        if !malformed > 0 then 2 else if !failed > 0 then 1 else 0
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE|DIR"
             ~doc:
               "One flight dump, or a directory of them (a \
                $(b,--flight-dir)); a directory reports every \
                $(i,flight-*.jsonl) inside, oldest first.")
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Reconstruct retained request traces from flight-recorder black \
          boxes: per-dump metadata (verdict, attempts, chaos sites, solver \
          stats, service config), span trees, critical path")
    Term.(const run $ path_arg)

let export_cmd =
  let run kernel fmt path merged =
    let c, _ = compile kernel in
    let g = if merged then c.Vecsched.ir else c.Vecsched.raw in
    (match fmt with
    | `Xml -> Vecsched.Xml.save path g
    | `Dot -> Vecsched.Dot.save path g);
    Format.printf "wrote %s@." path;
    0
  in
  let fmt_arg =
    Arg.(value & opt (enum [ ("xml", `Xml); ("dot", `Dot) ]) `Xml
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: xml or dot.")
  in
  let path_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PATH"
         ~doc:"Output file.")
  in
  let merged_arg =
    Arg.(value & flag & info [ "merged" ] ~doc:"Export the post-fusion graph.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a kernel's IR as XML or DOT")
    Term.(const run $ kernel_arg $ fmt_arg $ path_arg $ merged_arg)

let () =
  let doc = "programming support for reconfigurable custom vector architectures" in
  let info = Cmd.info "eitc" ~version:Vecsched.version ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ info_cmd; schedule_cmd; heuristic_cmd; simulate_cmd; overlap_cmd; modulo_cmd;
            code_cmd; report_cmd; asm_cmd; run_asm_cmd; export_cmd; import_cmd;
            serve_cmd; metrics_report_cmd; postmortem_cmd; trace_check_cmd;
            trace_report_cmd; trace_diff_cmd ]))
