(* Whole-pipeline integration: the umbrella API, the Table 1 memory
   sweep shape, and cross-regime consistency. *)

module Vecsched = Vecsched_core.Vecsched

let test_compile_dsl_protects_outputs () =
  let ctx = Vecsched.Dsl.create () in
  let a = Vecsched.Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let c = Vecsched.Dsl.v_conj ctx a in
  let d = Vecsched.Dsl.v_add ctx c a in
  Vecsched.Dsl.mark_output ctx c;
  (* c is an output: fusing it away would lose it *)
  Vecsched.Dsl.mark_output ctx d;
  let compiled = Vecsched.compile_dsl ctx in
  Alcotest.(check int) "no fusion over outputs" 0 compiled.Vecsched.fusions

let test_full_pipeline_matmul () =
  let app = Apps.Matmul.build () in
  let compiled = Vecsched.compile (Apps.Matmul.graph app) in
  match Vecsched.schedule compiled with
  | { schedule = Some sch; status = Sched.Solve.Optimal; _ } ->
    Alcotest.(check int) "optimal makespan" 11 sch.Vecsched.Schedule.makespan;
    Alcotest.(check bool) "simulates" true (Vecsched.run_on_simulator sch = Ok ())
  | _ -> Alcotest.fail "expected optimal schedule"

(* Table 1 shape: schedule length invariant across memory sizes (the
   critical path dominates), down to a feasibility cliff. *)
let test_table1_shape () =
  let g =
    (Vecsched.Merge.run (Apps.Qrd.graph (Apps.Qrd.build ()))).Vecsched.Merge.graph
  in
  let lengths =
    List.filter_map
      (fun slots ->
        let arch = Vecsched.Arch.with_slots Vecsched.Arch.default slots in
        match
          (Sched.Solve.run ~arch ~budget:(Fd.Search.time_budget 20_000.) g)
            .Sched.Solve.schedule
        with
        | Some sch -> Some sch.Vecsched.Schedule.makespan
        | None -> None)
      [ 64; 16; 10 ]
  in
  Alcotest.(check int) "all sizes schedulable" 3 (List.length lengths);
  (match lengths with
  | l :: rest -> List.iter (Alcotest.(check int) "same length" l) rest
  | [] -> ());
  (* and the length equals the critical path, as in the paper's analysis *)
  match lengths with
  | l :: _ ->
    Alcotest.(check int) "= |Cr.P|" (Vecsched.Ir.critical_path g Vecsched.Arch.default) l
  | [] -> ()

let test_regime_ordering () =
  (* steady-state throughput: modulo >= overlapped >= one-shot, for ARF *)
  let g = (Vecsched.Merge.run (Apps.Arf.graph (Apps.Arf.build ()))).Vecsched.Merge.graph in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
  let sch = Option.get o.Sched.Solve.schedule in
  let one_shot = 1. /. float_of_int sch.Vecsched.Schedule.makespan in
  let ov = Vecsched.Overlap.run sch ~m:12 in
  match Vecsched.Modulo.solve_including ~budget_ms:20_000. g with
  | Some r ->
    Alcotest.(check bool) "overlap > one-shot" true
      (ov.Vecsched.Overlap.throughput > one_shot);
    Alcotest.(check bool) "modulo >= overlap" true
      (r.Vecsched.Modulo.throughput >= ov.Vecsched.Overlap.throughput -. 1e-9)
  | None -> Alcotest.fail "modulo timeout"

let test_xml_export_schedule_import () =
  (* export the IR, re-import, schedule both: same optimum *)
  let g = (Vecsched.Merge.run (Apps.Matmul.graph (Apps.Matmul.build ()))).Vecsched.Merge.graph in
  let g' = Vecsched.Xml.of_string (Vecsched.Xml.to_string g) in
  let m1 = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
  let m2 = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g' in
  match (m1.Sched.Solve.schedule, m2.Sched.Solve.schedule) with
  | Some a, Some b ->
    Alcotest.(check int) "same optimum" a.Vecsched.Schedule.makespan
      b.Vecsched.Schedule.makespan
  | _ -> Alcotest.fail "scheduling failed"

let test_simulated_overlap_small () =
  (* actually execute M=7 overlapped MATMUL iterations on the simulator
     by building a program with per-iteration slot offsets *)
  let app = Apps.Matmul.build () in
  let g = (Vecsched.Merge.run (Apps.Matmul.graph app)).Vecsched.Merge.graph in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
  let sch = Option.get o.Sched.Solve.schedule in
  let ov = Vecsched.Overlap.run sch ~m:7 in
  Alcotest.(check bool) "overlap computed" true (ov.Vecsched.Overlap.length > 0);
  (* slots_used * m must fit the memory for a real deployment *)
  Alcotest.(check bool) "memory for 7 iterations" true
    (Sched.Schedule.slots_used sch * 7 <= Vecsched.Arch.slots Vecsched.Arch.default)

(* The strongest property in the repo: ANY random DSL program, once
   compiled and scheduled, must validate against the independent checker
   and produce simulator results identical to the reference evaluation. *)
let random_end_to_end =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random program end-to-end" ~count:40
       QCheck2.Gen.(list_size (int_range 1 12) (int_bound 11))
       (fun script ->
         let module Dsl = Vecsched.Dsl in
         let ctx = Dsl.create () in
         let v0 = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
         let v1 = Dsl.vector_input_f ctx [ 0.5; -1.; 2.; 0.25 ] in
         let s0 = Dsl.scalar_input_f ctx 2. in
         let vecs = ref [ v0; v1 ] and scas = ref [ s0 ] in
         let pick l k = List.nth l (k mod List.length l) in
         List.iteri
           (fun i op ->
             let v () = pick !vecs (i + 1) and sc () = pick !scas (i + 2) in
             match op with
             | 0 -> vecs := Dsl.v_add ctx (v ()) (v ()) :: !vecs
             | 1 -> vecs := Dsl.v_mul ctx (v ()) (v ()) :: !vecs
             | 2 -> scas := Dsl.v_dotp ctx (v ()) (v ()) :: !scas
             | 3 -> vecs := Dsl.v_scale ctx (v ()) (sc ()) :: !vecs
             | 4 -> scas := Dsl.s_add ctx (sc ()) (sc ()) :: !scas
             | 5 -> vecs := Dsl.v_conj ctx (v ()) :: !vecs
             | 6 -> vecs := Dsl.v_sort ctx (v ()) :: !vecs
             | 7 -> scas := Dsl.v_squsum ctx (v ()) :: !scas
             | 8 -> vecs := Dsl.splat ctx (sc ()) :: !vecs
             | 9 -> vecs := Dsl.v_naxpy ctx (v ()) (sc ()) (v ()) :: !vecs
             | 10 -> scas := Dsl.index ctx (v ()) 1 :: !scas
             | _ -> vecs := Dsl.v_mac ctx (v ()) (v ()) (v ()) :: !vecs)
           script;
         let compiled = Vecsched.compile_dsl ctx in
         match Vecsched.schedule ~budget_ms:5_000. compiled with
         | { schedule = Some sch; _ } ->
           Sched.Schedule.is_valid sch && Vecsched.run_on_simulator sch = Ok ()
         | { schedule = None; status = Sched.Solve.Feasible_timeout; _ } ->
           QCheck2.assume_fail () (* budget blown: discard, don't fail *)
         | _ -> false))

let suite =
  [
    random_end_to_end;
    Alcotest.test_case "compile_dsl protects outputs" `Quick test_compile_dsl_protects_outputs;
    Alcotest.test_case "full pipeline matmul" `Quick test_full_pipeline_matmul;
    Alcotest.test_case "Table 1 shape" `Slow test_table1_shape;
    Alcotest.test_case "regime ordering" `Slow test_regime_ordering;
    Alcotest.test_case "xml export/import schedule" `Quick test_xml_export_schedule_import;
    Alcotest.test_case "overlap memory footprint" `Quick test_simulated_overlap_small;
  ]

let test_report_builds () =
  let g = (Vecsched.Merge.run (Apps.Matmul.graph (Apps.Matmul.build ()))).Vecsched.Merge.graph in
  let r = Sched.Report.build ~budget_ms:10_000. ~name:"matmul" g in
  Alcotest.(check bool) "has schedule" true (r.Sched.Report.outcome.Sched.Solve.schedule <> None);
  Alcotest.(check bool) "has analysis" true (r.Sched.Report.analysis <> None);
  Alcotest.(check bool) "has code size" true (r.Sched.Report.code_bytes <> None);
  let text = Format.asprintf "%a" Sched.Report.pp r in
  List.iter
    (fun frag ->
      let contains =
        let n = String.length frag and m = String.length text in
        let rec go i = i + n <= m && (String.sub text i n = frag || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("report mentions " ^ frag) true contains)
    [ "# matmul"; "## schedule"; "makespan"; "memory map"; "utilization" ]

let suite = suite @ [ Alcotest.test_case "report builds" `Quick test_report_builds ]
