(* The batch scheduling service (lib/serve): admission control and
   shedding, end-to-end deadlines (queue wait included), retry with
   backoff, wedge detection + worker revival, per-request isolation of
   malformed input, wire formats, obs tagging, determinism of served
   solves, and a mixed chaos soak. *)

module S = Serve.Service
module W = Serve.Wire
module V = Vecsched_core.Vecsched

let qrd_ir () = (V.compile (Apps.Qrd.graph (Apps.Qrd.build ()))).V.ir

(* Never let a broken service hang the test runner: poll with a hard
   cap instead of blocking on [await]. *)
let await_or_fail ?(ms = 30_000.) tk =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match S.peek tk with
    | Some r -> r
    | None ->
      if (Unix.gettimeofday () -. t0) *. 1000. > ms then
        Alcotest.failf "no response within %.0f ms" ms
      else begin
        Unix.sleepf 0.005;
        go ()
      end
  in
  go ()

let with_service config f =
  let svc = S.create ~config () in
  Fun.protect ~finally:(fun () -> S.shutdown svc) (fun () -> f svc)

let base_config =
  {
    S.default_config with
    S.pool = 2;
    grace_ms = 1_000.;
    watchdog_tick_ms = 5.;
    backoff_base_ms = 5.;
  }

(* --------------------------- happy path ----------------------------- *)

let test_solves_kernels () =
  with_service base_config (fun svc ->
      let q = S.submit svc (S.request ~id:"q" ~budget_ms:10_000. (S.Kernel "qrd")) in
      let a = S.submit svc (S.request ~id:"a" ~budget_ms:10_000. (S.Kernel "arf")) in
      let rq = await_or_fail q and ra = await_or_fail a in
      (match rq.S.reply with
      | S.Solved s ->
        Alcotest.(check (option int)) "qrd makespan" (Some 168) s.S.makespan;
        Alcotest.(check bool) "qrd optimal" true (s.S.st = Sched.Solve.Optimal)
      | r -> Alcotest.failf "qrd: unexpected reply %a" S.pp_reply r);
      (match ra.S.reply with
      | S.Solved s ->
        Alcotest.(check (option int)) "arf makespan" (Some 56) s.S.makespan
      | r -> Alcotest.failf "arf: unexpected reply %a" S.pp_reply r);
      Alcotest.(check string) "status" "optimal" (S.status_string rq);
      Alcotest.(check int) "exit code" 0 (S.exit_code rq);
      Alcotest.(check int) "attempts" 1 rq.S.attempts;
      Alcotest.(check bool) "ran on a worker" true (rq.S.worker >= 0);
      let h = S.health svc in
      Alcotest.(check int) "completed" 2 h.S.completed;
      Alcotest.(check int) "alive" 2 h.S.alive;
      Alcotest.(check int) "nothing shed/expired/wedged" 0
        (h.S.shed + h.S.expired + h.S.wedged))

(* Served solves must be reproducible and identical to a direct
   [Sched.Solve.run]: same node / propagation counts, every time. *)
let test_determinism_vs_direct () =
  let direct =
    Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) ~fallback:false
      (qrd_ir ())
  in
  Alcotest.(check bool) "direct optimal" true
    (direct.Sched.Solve.status = Sched.Solve.Optimal);
  with_service { base_config with S.pool = 1 } (fun svc ->
      let solve () =
        match
          (await_or_fail
             (S.submit svc (S.request ~id:"d" ~budget_ms:10_000. (S.Kernel "qrd"))))
            .S.reply
        with
        | S.Solved s -> s
        | r -> Alcotest.failf "unexpected reply %a" S.pp_reply r
      in
      let s1 = solve () and s2 = solve () in
      Alcotest.(check int) "nodes repeat" s1.S.nodes s2.S.nodes;
      Alcotest.(check int) "propagations repeat" s1.S.propagations
        s2.S.propagations;
      Alcotest.(check int) "nodes = direct" direct.Sched.Solve.stats.Fd.Search.nodes
        s1.S.nodes;
      Alcotest.(check int) "propagations = direct"
        direct.Sched.Solve.stats.Fd.Search.propagations s1.S.propagations;
      Alcotest.(check (option int)) "makespan = direct"
        (Option.map
           (fun sch -> sch.Sched.Schedule.makespan)
           direct.Sched.Solve.schedule)
        s1.S.makespan)

(* ---------------------- malformed input isolation -------------------- *)

let test_invalid_requests_answered_not_fatal () =
  with_service base_config (fun svc ->
      let bad =
        [
          S.request ~id:"k" (S.Kernel "no-such-kernel");
          S.request ~id:"x" (S.Xml_text "<graph><bogus");
          S.request ~id:"p" ~preset:"no-such-arch" (S.Kernel "qrd");
          S.request ~id:"f" (S.Xml_file "/no/such/file.xml");
        ]
      in
      let replies = List.map (fun r -> await_or_fail (S.submit svc r)) bad in
      List.iter
        (fun r ->
          (match r.S.reply with
          | S.Invalid msg ->
            Alcotest.(check bool) "non-empty error" true (String.length msg > 0)
          | other -> Alcotest.failf "%s: expected invalid, got %a" r.S.r_id S.pp_reply other);
          Alcotest.(check string) "status" "error" (S.status_string r);
          Alcotest.(check int) "code" 7 (S.exit_code r))
        replies;
      (* the XML parse error is positioned *)
      (match (List.nth replies 1).S.reply with
      | S.Invalid msg ->
        Alcotest.(check bool) ("positioned: " ^ msg) true
          (String.length msg >= 9 && String.sub msg 0 9 = "xml: line")
      | _ -> assert false);
      (* ...and the service is still fully operational afterwards *)
      let ok =
        await_or_fail
          (S.submit svc (S.request ~id:"ok" ~budget_ms:10_000. (S.Kernel "matmul")))
      in
      (match ok.S.reply with
      | S.Solved s ->
        Alcotest.(check (option int)) "matmul makespan" (Some 11) s.S.makespan
      | r -> Alcotest.failf "after invalids: %a" S.pp_reply r);
      let h = S.health svc in
      Alcotest.(check int) "invalid counted" 4 h.S.invalid;
      Alcotest.(check int) "alive" 2 h.S.alive)

(* -------------------------- admission control ------------------------ *)

let test_overload_sheds () =
  with_service
    { base_config with S.pool = 1; queue = 1 }
    (fun svc ->
      (* 8 back-to-back matmuls at a 200 ms budget on a 1-worker/1-slot
         service: at most one runs and one waits, so most are shed
         immediately with a typed verdict. *)
      let tks =
        List.init 8 (fun i ->
            S.submit svc
              (S.request
                 ~id:(Printf.sprintf "o%d" i)
                 ~budget_ms:200. (S.Kernel "matmul")))
      in
      let rs = List.map (fun tk -> await_or_fail tk) tks in
      let shed =
        List.length (List.filter (fun r -> r.S.reply = S.Overloaded) rs)
      in
      Alcotest.(check bool) (Printf.sprintf "most shed (got %d)" shed) true
        (shed >= 5);
      List.iter
        (fun r ->
          if r.S.reply = S.Overloaded then begin
            Alcotest.(check string) "status" "rejected_overload"
              (S.status_string r);
            Alcotest.(check int) "code" 5 (S.exit_code r);
            Alcotest.(check int) "no worker" (-1) r.S.worker
          end)
        rs;
      let h = S.health svc in
      Alcotest.(check int) "shed counter" shed h.S.shed;
      Alcotest.(check int) "every request answered" 8 h.S.completed)

(* A request whose deadline passes while it is still queued fails fast
   via the watchdog, without ever occupying a worker. *)
let test_deadline_expires_in_queue () =
  with_service
    { base_config with S.pool = 1 }
    (fun svc ->
      (* blocker: matmul spends its full 600 ms proving optimality *)
      let blocker =
        S.submit svc (S.request ~id:"blk" ~budget_ms:600. (S.Kernel "matmul"))
      in
      let doomed =
        S.submit svc
          (S.request ~id:"doom" ~budget_ms:10_000. ~deadline_ms:60.
             (S.Kernel "qrd"))
      in
      let rd = await_or_fail doomed in
      Alcotest.(check bool) "expired" true (rd.S.reply = S.Expired);
      Alcotest.(check int) "never ran" (-1) rd.S.worker;
      Alcotest.(check int) "no attempts" 0 rd.S.attempts;
      Alcotest.(check int) "code" 6 (S.exit_code rd);
      Alcotest.(check bool) "failed fast, did not wait for the blocker" true
        (rd.S.total_ms < 500.);
      let rb = await_or_fail blocker in
      (match rb.S.reply with
      | S.Solved s ->
        Alcotest.(check (option int)) "blocker makespan" (Some 11) s.S.makespan
      | r -> Alcotest.failf "blocker: %a" S.pp_reply r);
      Alcotest.(check int) "expired counter" 1 (S.health svc).S.expired)

(* ------------------------------ retries ------------------------------ *)

(* fail_solves poisons the Nth instrumented attempt; on a 1-worker
   service attempt numbering is deterministic, so [1] kills exactly the
   first attempt and the retry must succeed with identical results. *)
let test_retry_rescues_poisoned_attempt () =
  let chaos = Fd.Chaos.create ~fail_solves:[ 1 ] ~seed:11 () in
  with_service
    { base_config with S.pool = 1; max_retries = 2; chaos = Some chaos }
    (fun svc ->
      let r =
        await_or_fail
          (S.submit svc (S.request ~id:"r" ~budget_ms:10_000. (S.Kernel "qrd")))
      in
      (match r.S.reply with
      | S.Solved s ->
        Alcotest.(check bool) "optimal after retry" true
          (s.S.st = Sched.Solve.Optimal);
        Alcotest.(check (option int)) "makespan" (Some 168) s.S.makespan;
        Alcotest.(check bool) "crash recorded" true (s.S.crashes >= 1)
      | other -> Alcotest.failf "unexpected %a" S.pp_reply other);
      Alcotest.(check int) "attempts" 2 r.S.attempts;
      Alcotest.(check int) "retry counter" 1 (S.health svc).S.retries;
      Alcotest.(check bool) "fault logged" true
        (List.exists (fun f -> f.Fd.Chaos.worker = 1) (Fd.Chaos.faults chaos)))

(* When the remaining deadline cannot fund the backoff pause, the retry
   is skipped and the degradation ladder answers instead. *)
let test_retry_bounded_by_deadline () =
  let chaos = Fd.Chaos.create ~fail_solves:[ 1; 2; 3; 4 ] ~seed:11 () in
  with_service
    {
      base_config with
      S.pool = 1;
      max_retries = 3;
      backoff_base_ms = 400.;
      chaos = Some chaos;
    }
    (fun svc ->
      let r =
        await_or_fail
          (S.submit svc
             (S.request ~id:"b" ~budget_ms:2_000. ~deadline_ms:300.
                (S.Kernel "qrd")))
      in
      Alcotest.(check int) "single attempt (no time to back off)" 1 r.S.attempts;
      Alcotest.(check int) "no retries" 0 (S.health svc).S.retries;
      match r.S.reply with
      | S.Solved s ->
        (* the zero-budget rescue delivered the heuristic schedule *)
        Alcotest.(check bool) "fallback engine" true
          (s.S.eng = Sched.Solve.Fallback);
        Alcotest.(check bool) "has schedule" true (s.S.makespan <> None)
      | other -> Alcotest.failf "unexpected %a" S.pp_reply other)

(* --------------------------- wedge + revival ------------------------- *)

(* Wedge the first request's first attempt (chaos site 0*8+1 = 1): the
   watchdog must answer the request, revive the slot, and the next
   request must be served normally by the fresh worker. *)
let test_wedge_detected_and_worker_revived () =
  let chaos =
    Fd.Chaos.create ~wedge_workers:[ 1 ] ~wedge_after:5 ~wedge_max_ms:20_000.
      ~seed:3 ()
  in
  with_service
    {
      base_config with
      S.pool = 1;
      grace_ms = 100.;
      watchdog_tick_ms = 10.;
      chaos = Some chaos;
    }
    (fun svc ->
      let t0 = Unix.gettimeofday () in
      let r =
        await_or_fail
          (S.submit svc (S.request ~id:"w" ~budget_ms:10_000. (S.Kernel "qrd")))
      in
      let dt_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      (match r.S.reply with
      | S.Wedged msg ->
        Alcotest.(check bool) ("names the worker: " ^ msg) true
          (String.length msg > 0)
      | other -> Alcotest.failf "expected wedged, got %a" S.pp_reply other);
      Alcotest.(check int) "code" 4 (S.exit_code r);
      Alcotest.(check bool) "verdict in ~grace, not wedge_max" true
        (dt_ms < 5_000.);
      let next =
        await_or_fail
          (S.submit svc (S.request ~id:"n" ~budget_ms:10_000. (S.Kernel "arf")))
      in
      (match next.S.reply with
      | S.Solved s ->
        Alcotest.(check (option int)) "revived worker serves" (Some 56)
          s.S.makespan
      | other -> Alcotest.failf "after revival: %a" S.pp_reply other);
      let h = S.health svc in
      Alcotest.(check int) "wedged counter" 1 h.S.wedged;
      Alcotest.(check int) "revived counter" 1 h.S.revived;
      Alcotest.(check int) "pool back to size" 1 h.S.alive)

(* The chaos wedge itself is bounded: with no supervisor at all, the
   wedge_max_ms ceiling unwinds it deterministically. *)
let test_wedge_ceiling_without_watchdog () =
  let g = qrd_ir () in
  let run () =
    let chaos =
      Fd.Chaos.create ~wedge_workers:[ 0 ] ~wedge_after:5 ~wedge_max_ms:100.
        ~seed:3 ()
    in
    Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) ~chaos
      ~fallback:false g
  in
  let t0 = Unix.gettimeofday () in
  let a = run () in
  let dt_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Alcotest.(check bool) "crashed" true (a.Sched.Solve.status = Sched.Solve.Crashed);
  Alcotest.(check bool) "took ~wedge_max_ms" true (dt_ms < 5_000.);
  let b = run () in
  Alcotest.(check bool) "deterministic status" true
    (b.Sched.Solve.status = Sched.Solve.Crashed);
  Alcotest.(check int) "deterministic node count"
    a.Sched.Solve.stats.Fd.Search.nodes b.Sched.Solve.stats.Fd.Search.nodes

(* ------------------------------- obs --------------------------------- *)

let test_trace_tagged_with_request_ids () =
  let path = Filename.temp_file "serve" ".trace.json" in
  let h = Obs.attach (Obs.Chrome.sink ~path ()) in
  with_service { base_config with S.pool = 1 } (fun svc ->
      List.iter
        (fun id ->
          ignore
            (await_or_fail
               (S.submit svc (S.request ~id ~budget_ms:10_000. (S.Kernel "arf")))))
        [ "alpha"; "beta" ]);
  Obs.detach h;
  (match Obs.Check.trace_file path with
  | Ok n -> Alcotest.(check bool) "events present" true (n > 0)
  | Error e -> Alcotest.failf "trace invalid: %s" e);
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and bl = String.length body in
        let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("trace contains " ^ needle) true found)
    [ "request:alpha"; "request:beta"; "pool-worker-0"; "serve.admit" ]

(* ------------------------------- wire -------------------------------- *)

let test_wire_requests () =
  (match
     W.request_of_line
       {|{"id":"x","kernel":"qrd","slots":16,"arch":"eit","budget_ms":50,"deadline_ms":2000,"parallel":2,"retries":3}|}
   with
  | Ok r ->
    Alcotest.(check string) "id" "x" r.S.id;
    Alcotest.(check bool) "workload" true (r.S.workload = S.Kernel "qrd");
    Alcotest.(check (option int)) "slots" (Some 16) r.S.slots;
    Alcotest.(check (option string)) "arch" (Some "eit") r.S.preset;
    Alcotest.(check int) "parallel" 2 r.S.parallel;
    Alcotest.(check (option int)) "retries" (Some 3) r.S.retries
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match W.request_of_line ~default_id:"line-7" {|{"xml":"<graph/>"}|} with
  | Ok r -> Alcotest.(check string) "default id" "line-7" r.S.id
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* exactly one workload key *)
  (match W.request_of_line {|{"id":"y","kernel":"qrd","xml":"<graph/>"}|} with
  | Ok _ -> Alcotest.fail "two workloads accepted"
  | Error _ -> ());
  (match W.request_of_line {|{"id":"z"}|} with
  | Ok _ -> Alcotest.fail "no workload accepted"
  | Error _ -> ());
  (match W.request_of_line "{not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e -> Alcotest.(check bool) "json error" true (String.length e > 0));
  let el = W.error_line ~id:"line-3" "boom" in
  (match Obs.Json.parse el with
  | Ok j ->
    Alcotest.(check bool) "error line has code 7" true
      (Obs.Json.member "code" j = Some (Obs.Json.Num 7.))
  | Error e -> Alcotest.failf "error_line not json: %s" e)

let test_wire_response_roundtrip () =
  let resp =
    {
      S.r_id = "r1";
      reply =
        S.Solved
          {
            S.st = Sched.Solve.Optimal;
            eng = Sched.Solve.Cp;
            makespan = Some 168;
            nodes = 94;
            failures = 95;
            propagations = 6649;
            solve_ms = 12.5;
            validate_ms = 0.25;
            crashes = 0;
            cached = false;
          };
      attempts = 2;
      wait_ms = 1.5;
      total_ms = 14.0;
      worker = 3;
    }
  in
  match Obs.Json.parse (W.response_line resp) with
  | Error e -> Alcotest.failf "response not json: %s" e
  | Ok j ->
    let str k =
      match Obs.Json.member k j with Some (Obs.Json.Str s) -> Some s | _ -> None
    in
    let num k =
      match Obs.Json.member k j with Some (Obs.Json.Num f) -> Some f | _ -> None
    in
    Alcotest.(check (option string)) "id" (Some "r1") (str "id");
    Alcotest.(check (option string)) "status" (Some "optimal") (str "status");
    Alcotest.(check (option string)) "engine" (Some "cp") (str "engine");
    Alcotest.(check bool) "code 0" true (num "code" = Some 0.);
    Alcotest.(check bool) "makespan" true (num "makespan" = Some 168.);
    Alcotest.(check bool) "retries = attempts-1" true (num "retries" = Some 1.);
    Alcotest.(check bool) "worker" true (num "worker" = Some 3.);
    Alcotest.(check bool) "cached flag present" true
      (Obs.Json.member "cached" j = Some (Obs.Json.Bool false))

(* ----------------------------- chaos soak ---------------------------- *)

(* The headline guarantee, under fire: ~210 mixed requests (including
   malformed ones) against a 4-worker service with probabilistic
   crashes and delays, two deterministic wedges and two poisoned
   attempts.  Every request gets exactly one typed response, nothing
   hangs, and the pool ends healthy. *)
let i_mod5 id = int_of_string (String.sub id 1 3) mod 5

let test_chaos_soak () =
  let n = 210 in
  let chaos =
    (* wedge_after:1 wedges those sites on their very first propagator
       execution, ahead of any probabilistic crash draw — the two
       wedges fire no matter how the random crashes land *)
    Fd.Chaos.create ~crash_prob:0.02 ~delay_prob:0.05 ~delay_ms:1.
      ~wedge_workers:[ (10 * 8) + 1; (100 * 8) + 1 ] (* seq 10 and 100 *)
      (* the poison counter is global and scheduling-dependent (attempts
         that expire inside model build consume no solve number), so a
         poison can land on a wedge target's first execution — the hook
         gives named wedge sites precedence, so the wedges fire no
         matter which solves the poisons hit *)
      ~wedge_after:1 ~wedge_max_ms:20_000. ~fail_solves:[ 3; 5 ] ~seed:42 ()
  in
  (* flight recorder on, tail_keep off, metrics off: the only retention
     triggers left are the anomaly verdicts (error / expired / wedged /
     crashed / retried) — p99-based "slow" retention needs a live
     histogram and the healthy slice needs tail_keep > 0 — so the dump
     set below must equal the anomaly set exactly *)
  let flight_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "eitc-t-serve-flight-%d" (Unix.getpid ()))
  in
  let config =
    {
      S.pool = 4;
      queue = 256;
      default_budget_ms = 20.;
      grace_ms = 200.;
      watchdog_tick_ms = 10.;
      max_retries = 1;
      backoff_base_ms = 5.;
      seed = 42;
      chaos = Some chaos;
      cache_capacity = 0;
      warm_start = false;
      metrics = None;
      trace_sample = 0;
      flight_dir = Some flight_dir;
      flight_buf = 512;
      tail_keep = 0;
    }
  in
  let fir_xml =
    V.Xml.to_string (V.compile (Apps.Fir.graph (Apps.Fir.build ()))).V.ir
  in
  with_service config (fun svc ->
      (* submit strictly in order: the wedge sites name specific
         sequence numbers, so request i must get seq i *)
      let tks =
        List.rev
          (List.fold_left
             (fun acc i ->
               let id = Printf.sprintf "s%03d" i in
               let req =
                 match i mod 5 with
                 (* the two wedge targets get a roomy budget so their
                    first attempt reliably reaches the solver (and so
                    the wedge site) even under full pool contention *)
                 | _ when i = 10 || i = 100 ->
                   S.request ~id ~budget_ms:10_000. ~deadline_ms:10_000.
                     (S.Kernel "qrd")
                 | 0 -> S.request ~id ~deadline_ms:10_000. (S.Kernel "qrd")
                 | 1 -> S.request ~id ~deadline_ms:10_000. (S.Kernel "arf")
                 | 2 -> S.request ~id ~deadline_ms:10_000. (S.Kernel "matmul")
                 | 3 -> S.request ~id ~deadline_ms:10_000. (S.Xml_text fir_xml)
                 | _ -> S.request ~id (S.Kernel "no-such-kernel")
               in
               (id, S.submit svc req) :: acc)
             []
             (List.init n Fun.id))
      in
      let seen = Hashtbl.create n in
      let resps = ref [] in
      List.iter
        (fun (id, tk) ->
          let r = await_or_fail ~ms:60_000. tk in
          resps := r :: !resps;
          Alcotest.(check string) "response id matches" id r.S.r_id;
          Alcotest.(check bool) ("duplicate response for " ^ id) false
            (Hashtbl.mem seen id);
          Hashtbl.add seen id ();
          (* every reply is a typed verdict with a defined status/code *)
          let st = S.status_string r in
          Alcotest.(check bool) ("known status " ^ st) true
            (List.mem st
               [ "optimal"; "feasible_timeout"; "infeasible"; "crashed";
                 "rejected_overload"; "expired"; "wedged"; "error" ]);
          if i_mod5 id = 4 then
            Alcotest.(check string) ("invalid -> error: " ^ id) "error" st)
        tks;
      let h = S.health svc in
      Alcotest.(check int) "all answered exactly once" n h.S.completed;
      Alcotest.(check int) "queue drained" 0 h.S.queue_depth;
      Alcotest.(check int) "pool fully alive" 4 h.S.alive;
      Alcotest.(check int) "invalids counted" (n / 5) h.S.invalid;
      let all_faults = Fd.Chaos.faults chaos in
      let wedge_faults =
        List.filter
          (fun f ->
            String.length f.Fd.Chaos.what >= 5
            && String.sub f.Fd.Chaos.what 0 5 = "wedge")
          all_faults
      in
      Alcotest.(check bool)
        (Printf.sprintf
           "both wedges caught and revived (wedged=%d revived=%d sites=[%s])"
           h.S.wedged h.S.revived
           (String.concat ";"
              (List.map
                 (fun f -> string_of_int f.Fd.Chaos.worker)
                 wedge_faults)))
        true
        (h.S.wedged >= 2 && h.S.revived = h.S.wedged);
      Alcotest.(check bool)
        (Printf.sprintf "faults were actually injected (%d)"
           (List.length (Fd.Chaos.faults chaos)))
        true
        (List.length (Fd.Chaos.faults chaos) > 0);
      (* ------------- tail retention: dumps = anomaly set ------------- *)
      (* every completion settled its ring exactly once *)
      Alcotest.(check int) "kept + dropped = completed" n
        (h.S.flight_kept + h.S.flight_dropped);
      Alcotest.(check int) "every retained trace was dumped" h.S.flight_kept
        h.S.flight_dumped;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      let dumps = Obs.Flight.dump_files flight_dir in
      Alcotest.(check int) "one dump file per retained trace"
        h.S.flight_dumped (List.length dumps);
      let dumps_for id = List.filter (fun p -> contains p ("-" ^ id ^ "-")) dumps in
      let anomalies = ref 0 in
      List.iter
        (fun (r : S.response) ->
          (* mirror the service's retention policy: with metrics off and
             tail_keep 0, exactly the anomalous verdicts retain *)
          let anomaly =
            match r.S.reply with
            | S.Overloaded -> false
            | S.Expired | S.Wedged _ | S.Invalid _ -> true
            | S.Solved s ->
              s.S.st = Sched.Solve.Crashed || r.S.attempts > 1
              || s.S.crashes > 0
          in
          if anomaly then incr anomalies;
          Alcotest.(check int)
            (Printf.sprintf "%s (%s): %s" r.S.r_id (S.status_string r)
               (if anomaly then "exactly one flight dump"
                else "no flight dump"))
            (if anomaly then 1 else 0)
            (List.length (dumps_for r.S.r_id)))
        !resps;
      Alcotest.(check int) "anomalies = retained traces" !anomalies
        h.S.flight_kept;
      (* retention is selective: the anomaly slice, not the traffic *)
      Alcotest.(check bool)
        (Printf.sprintf "most completions dropped (%d kept of %d)"
           h.S.flight_kept n)
        true
        (h.S.flight_kept < n / 2);
      (* each dump is a loadable, analyzable black box *)
      List.iter
        (fun p ->
          match Obs.Flight.load_dump p with
          | Error e -> Alcotest.failf "%s: %s" p e
          | Ok d -> (
            match Obs.Analyze.of_json (Obs.Flight.trace_of_dump d) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: analyze: %s" p e))
        dumps;
      List.iter Sys.remove dumps;
      if Sys.file_exists flight_dir then Sys.rmdir flight_dir)

(* ------------------------- cached soak ------------------------------- *)

(* Repeat-heavy mix through a cache-enabled single-worker service: the
   first occurrence of each kernel misses, every repeat is answered
   from the cache, and the cached replies carry the exact solved
   payload of the first solve (status, code, engine, makespan). *)
let test_cached_soak () =
  let n = 40 in
  let config =
    {
      base_config with
      S.pool = 1;
      queue = 128;
      cache_capacity = 32;
    }
  in
  with_service config (fun svc ->
      let tks =
        List.init n (fun i ->
            let id = Printf.sprintf "c%03d" i in
            let kernel = if i mod 2 = 0 then "qrd" else "arf" in
            ( i,
              id,
              S.submit svc
                (S.request ~id ~budget_ms:10_000. ~deadline_ms:60_000.
                   (S.Kernel kernel)) ))
      in
      let first : (string, S.solved) Hashtbl.t = Hashtbl.create 2 in
      let seen = Hashtbl.create n in
      List.iter
        (fun (i, id, tk) ->
          let r = await_or_fail ~ms:60_000. tk in
          Alcotest.(check string) "response id" id r.S.r_id;
          Alcotest.(check bool) ("answered once: " ^ id) false
            (Hashtbl.mem seen id);
          Hashtbl.add seen id ();
          match r.S.reply with
          | S.Solved s ->
            let kernel = if i mod 2 = 0 then "qrd" else "arf" in
            Alcotest.(check bool) (id ^ " optimal") true
              (s.S.st = Sched.Solve.Optimal);
            (match Hashtbl.find_opt first kernel with
            | None ->
              (* first occurrence: a genuine solve, not a replay *)
              Alcotest.(check bool) (id ^ " first is cold") false s.S.cached;
              Hashtbl.add first kernel s
            | Some f ->
              Alcotest.(check bool) (id ^ " repeat is cached") true s.S.cached;
              (* the cached payload replays the first solve exactly *)
              Alcotest.(check bool) (id ^ " same status") true (s.S.st = f.S.st);
              Alcotest.(check bool) (id ^ " same engine") true
                (s.S.eng = f.S.eng);
              Alcotest.(check (option int)) (id ^ " same makespan")
                f.S.makespan s.S.makespan;
              Alcotest.(check int) (id ^ " replay does no search") 0 s.S.nodes)
          | _ -> Alcotest.failf "%s not solved" id)
        tks;
      let h = S.health svc in
      Alcotest.(check int) "all answered" n h.S.completed;
      Alcotest.(check int) "2 misses" 2 h.S.cache_misses;
      Alcotest.(check int) "every repeat hit" (n - 2) h.S.cache_hits;
      Alcotest.(check int) "nothing evicted" 0 h.S.cache_evictions)

(* A crashing attempt must never leave a poisoned cache entry: chaos
   runs bypass the cache wholesale — never consulted, never populated —
   and the retried solve still reports the true optimum. *)
let test_crashed_attempt_never_populates_cache () =
  let chaos = Fd.Chaos.create ~fail_solves:[ 1 ] ~seed:9 () in
  let config =
    {
      base_config with
      S.pool = 1;
      max_retries = 1;
      cache_capacity = 8;
      chaos = Some chaos;
    }
  in
  with_service config (fun svc ->
      let solve id =
        match
          (await_or_fail
             (S.submit svc
                (S.request ~id ~budget_ms:10_000. ~deadline_ms:60_000.
                   (S.Kernel "qrd"))))
            .S.reply
        with
        | S.Solved s -> s
        | _ -> Alcotest.failf "%s not solved" id
      in
      let a = solve "p1" in
      let b = solve "p2" in
      Alcotest.(check (option int)) "first retried to the optimum" (Some 168)
        a.S.makespan;
      Alcotest.(check (option int)) "second solved to the optimum" (Some 168)
        b.S.makespan;
      Alcotest.(check bool) "chaos runs never serve from cache" false
        (a.S.cached || b.S.cached);
      let h = S.health svc in
      Alcotest.(check int) "cache never hit under chaos" 0 h.S.cache_hits;
      Alcotest.(check int) "cache never consulted under chaos" 0
        h.S.cache_misses)

(* after shutdown, submission is answered (shed), never hung *)
let test_submit_after_shutdown () =
  let svc = S.create ~config:{ base_config with S.pool = 1 } () in
  S.shutdown svc;
  let r = await_or_fail (S.submit svc (S.request ~id:"late" (S.Kernel "qrd"))) in
  Alcotest.(check bool) "shed" true (r.S.reply = S.Overloaded);
  (* idempotent *)
  S.shutdown svc

let suite =
  [
    Alcotest.test_case "solves kernels end to end" `Quick test_solves_kernels;
    Alcotest.test_case "deterministic, identical to direct solve" `Quick
      test_determinism_vs_direct;
    Alcotest.test_case "invalid requests answered, never fatal" `Quick
      test_invalid_requests_answered_not_fatal;
    Alcotest.test_case "overload sheds with typed verdict" `Quick
      test_overload_sheds;
    Alcotest.test_case "deadline expires in queue -> fast fail" `Quick
      test_deadline_expires_in_queue;
    Alcotest.test_case "retry rescues poisoned attempt" `Quick
      test_retry_rescues_poisoned_attempt;
    Alcotest.test_case "retry bounded by remaining deadline" `Quick
      test_retry_bounded_by_deadline;
    Alcotest.test_case "wedge detected, worker revived" `Quick
      test_wedge_detected_and_worker_revived;
    Alcotest.test_case "wedge ceiling bounds the spin" `Quick
      test_wedge_ceiling_without_watchdog;
    Alcotest.test_case "trace tagged with request ids" `Quick
      test_trace_tagged_with_request_ids;
    Alcotest.test_case "wire: request parsing" `Quick test_wire_requests;
    Alcotest.test_case "wire: response json" `Quick test_wire_response_roundtrip;
    Alcotest.test_case "chaos soak: 210 mixed requests" `Slow test_chaos_soak;
    Alcotest.test_case "cached soak: repeat-heavy mix" `Slow test_cached_soak;
    Alcotest.test_case "crashed attempt never populates cache" `Quick
      test_crashed_attempt_never_populates_cache;
    Alcotest.test_case "submit after shutdown is shed" `Quick
      test_submit_after_shutdown;
  ]
