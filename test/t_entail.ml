(* Entailment soundness: removing an entailed propagator from the
   watcher lists must never change the fixpoint, and backtracking past
   the entailment point must revive it.

   Two oracles on random models (arithmetic, conditional, reified and
   cumulative constraints under a random narrow/push/pop script):

   - A/B: the same script on a store with entailment disabled
     ([Store.set_entail s false]) must fail at the same step and reach
     the same domains — entailment removal only skips propagators that
     can never prune again.
   - Fresh-store: re-posting the same constraints over the final
     domains in a brand-new store (no entailment, no incremental
     caches, no staged watch sets) must not prune anything further —
     i.e. the incremental/staged engine really did reach the fixpoint. *)

open Fd

(* ---------------- random models ---------------- *)

type op = Assign | Remove | Push | Pop

(* One constraint descriptor: a kind selector plus raw integer
   arguments mapped onto the store's variables. *)
let post_constraint s vars (kind, args) =
  let n = Array.length vars in
  let v i = vars.(List.nth args i mod n) in
  let c i = (List.nth args i mod 5) - 2 in
  match kind mod 9 with
  | 0 -> Arith.leq_offset s (v 0) (c 2) (v 1)
  | 1 -> Arith.neq_offset s (v 0) (c 2) (v 1)
  | 2 -> Arith.plus s (v 0) (v 1) (v 2)
  | 3 -> Arith.max_of s [ v 0; v 1; v 2 ] (v 3)
  | 4 -> Cond.implies_eq s (v 0, v 1) (v 2, v 3)
  | 5 -> Cond.guarded_implies_eq s ~guard:(v 0, v 1) (v 2, v 3) (v 4, v 5)
  | 6 -> Reif.leq_iff s (v 0) (v 1) (v 2)
  | 7 -> Reif.eq_iff s (v 0) (v 1) (v 2)
  | _ ->
    Cumulative.post s
      ~starts:[| v 0; v 1; v 2 |]
      ~durations:[| 1; 2; 1 |] ~resources:[| 1; 1; 1 |] ~limit:2

(* Run the script; return the index of the failing step, if any.  The
   step decisions (which value to assign/remove) are taken from the
   store's current domains, which are identical across stores as long
   as the engines agree — and if they ever disagree, the final domain
   comparison fails, which is exactly what the oracle looks for. *)
let run_script s vars steps =
  let depth = ref 0 in
  let apply (op, a, b) =
    let v = vars.(a mod Array.length vars) in
    match op with
    | Assign ->
      let xs = Dom.to_list (Store.dom v) in
      Store.assign s v (List.nth xs (b mod List.length xs));
      Store.propagate s
    | Remove ->
      let xs = Dom.to_list (Store.dom v) in
      Store.remove_value s v (List.nth xs (b mod List.length xs));
      Store.propagate s
    | Push ->
      Store.push_level s;
      incr depth
    | Pop ->
      if !depth > 0 then begin
        Store.pop_level s;
        decr depth
      end
  in
  let rec go i = function
    | [] -> None
    | st :: rest -> (
      match apply st with
      | () -> go (i + 1) rest
      | exception Store.Fail _ -> Some i)
  in
  go 0 steps

let doms_of vars = Array.map (fun v -> Store.dom v) vars

let same_doms a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun d e -> Dom.equal d e) a b

let gen_case =
  QCheck2.Gen.(
    let* n = int_range 4 6 in
    let* doms = list_repeat n (list_size (int_range 1 5) (int_range 0 8)) in
    let* ncons = int_range 1 5 in
    let* cons =
      list_repeat ncons (pair (int_range 0 8) (list_repeat 6 (int_range 0 97)))
    in
    let* steps =
      list_size (int_range 0 14)
        (triple (int_range 0 3) (int_range 0 96) (int_range 0 95))
    in
    let steps =
      List.map
        (fun (o, a, b) ->
          ((match o with 0 -> Assign | 1 -> Remove | 2 -> Push | _ -> Pop), a, b))
        steps
    in
    return (doms, cons, steps))

(* Build a store over [doms], post [cons]; None if posting fails. *)
let build ?(entail = true) doms cons =
  let s = Store.create () in
  Store.set_entail s entail;
  let vars =
    Array.of_list
      (List.map
         (fun d -> Store.new_var s (Dom.of_list (List.sort_uniq compare d)))
         doms)
  in
  match List.iter (post_constraint s vars) cons with
  | () -> Some (s, vars)
  | exception Store.Fail _ -> None

let print_case (doms, cons, steps) =
  let il l = "[" ^ String.concat ";" (List.map string_of_int l) ^ "]" in
  Printf.sprintf "doms=%s cons=%s steps=%s"
    (String.concat " " (List.map il doms))
    (String.concat " "
       (List.map (fun (k, args) -> Printf.sprintf "(%d,%s)" k (il args)) cons))
    (String.concat " "
       (List.map
          (fun (o, a, b) ->
            Printf.sprintf "(%s,%d,%d)"
              (match o with
              | Assign -> "A"
              | Remove -> "R"
              | Push -> "U"
              | Pop -> "O")
              a b)
          steps))

let ab_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"fixpoint with entailment = without" ~count:400
       ~print:print_case gen_case (fun (doms, cons, steps) ->
         match (build ~entail:true doms cons, build ~entail:false doms cons) with
         | None, None -> true
         | Some _, None | None, Some _ -> false
         | Some (s1, v1), Some (s2, v2) -> (
           match (run_script s1 v1 steps, run_script s2 v2 steps) with
           | Some i, Some j -> i = j
           | Some _, None | None, Some _ -> false
           | None, None -> same_doms (doms_of v1) (doms_of v2))))

let fresh_store_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"incremental fixpoint = fresh-store fixpoint"
       ~count:400 gen_case (fun (doms, cons, steps) ->
         match build doms cons with
         | None -> true
         | Some (s1, v1) -> (
           match run_script s1 v1 steps with
           | Some _ -> true (* failed mid-script: state is not a fixpoint *)
           | None -> (
             (* replay the final domains into a brand-new store: nothing
                may prune further *)
             let final = doms_of v1 in
             let s2 = Store.create () in
             let v2 = Array.map (fun d -> Store.new_var s2 d) final in
             match List.iter (post_constraint s2 v2) cons with
             | () -> same_doms final (doms_of v2)
             | exception Store.Fail _ -> false))))

(* ---------------- backtrack revival ---------------- *)

(* A propagator entailed at depth k must fire again after backtracking
   above k: neq entails once one side is fixed, yet must still prune
   for a different fixed value on the sibling branch. *)
let test_neq_revival () =
  let s = Store.create () in
  let x = Store.interval_var s 0 5 and y = Store.interval_var s 0 5 in
  Arith.neq s x y;
  Store.propagate s;
  Store.push_level s;
  Store.assign s x 3;
  Store.propagate s;
  Alcotest.(check bool) "3 pruned from y" false (Dom.mem 3 (Store.dom y));
  Store.pop_level s;
  Alcotest.(check bool) "3 restored in y" true (Dom.mem 3 (Store.dom y));
  Store.push_level s;
  Store.assign s x 4;
  Store.propagate s;
  Alcotest.(check bool) "fires again after backtrack: 4 pruned" false
    (Dom.mem 4 (Store.dom y))

(* guarded_implies_eq entailed by a refuted guard at depth k must
   enforce the implication on a sibling branch where the guard holds. *)
let test_guarded_revival () =
  let s = Store.create () in
  let a = Store.interval_var s 0 3 and b = Store.interval_var s 0 3 in
  let p = Store.interval_var s 0 3 and q = Store.interval_var s 0 3 in
  let l = Store.interval_var s 0 2 and m = Store.interval_var s 1 3 in
  Cond.guarded_implies_eq s ~guard:(a, b) (p, q) (l, m);
  Store.propagate s;
  Store.push_level s;
  Store.assign s a 0;
  Store.assign s b 1;
  Store.propagate s;
  (* guard refuted: entailed, nothing else constrained *)
  Alcotest.(check int) "l untouched" 0 (Store.vmin l);
  Store.pop_level s;
  Store.push_level s;
  Store.assign s a 2;
  Store.assign s b 2;
  Store.assign s p 1;
  Store.assign s q 1;
  Store.propagate s;
  (* guard and antecedent hold: l = m enforced on the revived
     propagator (dom l = dom m = [1..2]) *)
  Alcotest.(check int) "l min raised" 1 (Store.vmin l);
  Alcotest.(check int) "m max lowered" 2 (Store.vmax m)

(* The staged watch set: while the guard is open, consequent-variable
   traffic must not run the propagator at all; once armed (guard fixed
   equal), a narrowing of [l] must wake it — including on a branch
   entered after the arming was undone by backtracking. *)
let test_staged_watches () =
  let s = Store.create () in
  let a = Store.interval_var s 0 3 and b = Store.interval_var s 0 3 in
  let p = Store.interval_var s 0 3 and q = Store.interval_var s 0 3 in
  let l = Store.interval_var s 0 3 and m = Store.interval_var s 0 3 in
  Cond.guarded_implies_eq s ~guard:(a, b) (p, q) (l, m);
  Store.propagate s;
  let runs () =
    Option.value ~default:0
      (List.assoc_opt "guarded_implies_eq" (Store.stats s))
  in
  let r0 = runs () in
  (* consequent traffic with the guard open: no wake *)
  Store.remove_value s l 1;
  Store.remove_value s m 2;
  Store.propagate s;
  Alcotest.(check int) "no runs while guard open" r0 (runs ());
  (* arm: the guard fix wakes it through the trigger set *)
  Store.push_level s;
  Store.assign s a 1;
  Store.assign s b 1;
  Store.propagate s;
  let r1 = runs () in
  Alcotest.(check bool) "armed by guard fix" true (r1 > r0);
  (* now consequent traffic does wake the widened watch set *)
  Store.remove_value s m 3;
  Store.propagate s;
  Alcotest.(check bool) "consequent traffic wakes armed propagator" true
    (runs () > r1)

(* Above we only prove wake gating; the contrapositive path itself: *)
let test_staged_contrapositive () =
  let s = Store.create () in
  let a = Store.interval_var s 0 3 and b = Store.interval_var s 0 3 in
  let p = Store.interval_var s 0 3 and q = Store.interval_var s 0 3 in
  let l = Store.interval_var s 0 3 and m = Store.interval_var s 0 3 in
  Cond.guarded_implies_eq s ~guard:(a, b) (p, q) (l, m);
  Store.propagate s;
  Store.push_level s;
  Store.assign s a 1;
  Store.assign s b 1;
  Store.assign s p 2;
  Store.propagate s;
  Store.push_level s;
  (* make l and m disjoint: l in {0,1}, m in {2,3} *)
  Store.remove_above s l 1;
  Store.remove_below s m 2;
  Store.propagate s;
  Alcotest.(check bool) "contrapositive: q <> p" false
    (Dom.mem 2 (Store.dom q));
  (* unwind both levels: everything restored, propagator disarmed *)
  Store.pop_level s;
  Store.pop_level s;
  Alcotest.(check bool) "q restored" true (Dom.mem 2 (Store.dom q));
  (* re-arm on a sibling branch with different values *)
  Store.push_level s;
  Store.assign s a 3;
  Store.assign s b 3;
  Store.assign s q 0;
  Store.propagate s;
  Store.remove_above s m 1;
  Store.remove_below s l 2;
  Store.propagate s;
  Alcotest.(check bool) "contrapositive after re-arming: p <> q" false
    (Dom.mem 0 (Store.dom p))

(* Hub coverage is symmetric: pair (i, j) must be enforced regardless
   of which start variable fixes last, provided hubs are posted both
   ways (as the scheduling model does). *)
let test_hub_symmetry () =
  let check_order first_b =
    let s = Store.create () in
    let a = Store.interval_var s 0 3 and b = Store.interval_var s 0 3 in
    let p = Store.interval_var s 0 3 and q = Store.interval_var s 0 3 in
    let l = Store.interval_var s 0 2 and m = Store.interval_var s 1 3 in
    let pairs = [ ((p, q), (l, m)) ] in
    Cond.guarded_implies_eq_hub s a [ (b, pairs) ];
    Cond.guarded_implies_eq_hub s b [ (a, pairs) ];
    Store.propagate s;
    Store.push_level s;
    if first_b then Store.assign s b 2 else Store.assign s a 2;
    Store.propagate s;
    if first_b then Store.assign s a 2 else Store.assign s b 2;
    Store.assign s p 0;
    Store.assign s q 0;
    Store.propagate s;
    Alcotest.(check int) "l = m enforced (min)" 1 (Store.vmin l);
    Alcotest.(check int) "l = m enforced (max)" 2 (Store.vmax m)
  in
  check_order false;
  check_order true

let suite =
  [
    ab_oracle;
    fresh_store_oracle;
    Alcotest.test_case "neq revives after backtrack" `Quick test_neq_revival;
    Alcotest.test_case "guarded_implies_eq revives" `Quick test_guarded_revival;
    Alcotest.test_case "staged watches gate wakes" `Quick test_staged_watches;
    Alcotest.test_case "staged contrapositive + disarm" `Quick
      test_staged_contrapositive;
    Alcotest.test_case "hub symmetric coverage" `Quick test_hub_symmetry;
  ]
