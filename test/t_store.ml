(* Store: trailing, propagation queue, entailment. *)

open Fd

let test_var_basics () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 ~name:"x" in
  Alcotest.(check int) "min" 0 (Store.vmin x);
  Alcotest.(check int) "max" 9 (Store.vmax x);
  Alcotest.(check bool) "fixed" false (Store.is_fixed x);
  Store.assign s x 4;
  Alcotest.(check bool) "fixed after assign" true (Store.is_fixed x);
  Alcotest.(check int) "value" 4 (Store.value x)

let test_empty_domain_fails () =
  let s = Store.create () in
  let x = Store.interval_var s 0 3 in
  Store.assign s x 2;
  Alcotest.check_raises "conflicting assign" (Store.Fail "x: empty domain")
    (fun () ->
      try Store.assign s x 3
      with Store.Fail _ -> raise (Store.Fail "x: empty domain"))

let test_backtracking () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let y = Store.interval_var s 0 9 in
  Store.push_level s;
  Store.assign s x 1;
  Store.remove_below s y 5;
  Alcotest.(check int) "y min pruned" 5 (Store.vmin y);
  Store.push_level s;
  Store.assign s y 7;
  Store.pop_level s;
  Alcotest.(check bool) "y unfixed again" false (Store.is_fixed y);
  Alcotest.(check int) "y min preserved" 5 (Store.vmin y);
  Store.pop_level s;
  Alcotest.(check int) "x restored" 0 (Store.vmin x);
  Alcotest.(check int) "y restored" 0 (Store.vmin y)

let test_propagation_runs () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let y = Store.interval_var s 0 9 in
  let runs = ref 0 in
  let _p =
    Store.post_now s ~watches:[ x ] (fun st ->
        incr runs;
        Store.remove_below st y (Store.vmin x))
  in
  Store.propagate s;
  let before = !runs in
  Store.remove_below s x 4;
  Store.propagate s;
  Alcotest.(check bool) "propagator re-ran" true (!runs > before);
  Alcotest.(check int) "y follows x" 4 (Store.vmin y)

let test_entailment_trailing () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let runs = ref 0 in
  let handle = ref None in
  let p =
    Store.post_now s ~watches:[ x ] (fun st ->
        incr runs;
        match !handle with Some h -> Store.entail st h | None -> ())
  in
  handle := Some p;
  Store.propagate s;
  let after_first = !runs in
  Store.push_level s;
  (* entailed inside this level: no more runs *)
  Store.remove_value s x 3;
  Store.propagate s;
  Alcotest.(check int) "entailed: not re-run" after_first !runs;
  Store.pop_level s;
  (* Entailment must be undone by pop_level... but it was entailed at the
     root run (before push), so it stays entailed.  Re-entail inside a
     level instead: *)
  let s2 = Store.create () in
  let x2 = Store.interval_var s2 0 9 in
  let runs2 = ref 0 in
  let h2 = ref None in
  let p2 =
    Store.post s2 ~watches:[ x2 ] (fun st ->
        incr runs2;
        if Store.vmin x2 >= 5 then
          match !h2 with Some h -> Store.entail st h | None -> ())
  in
  h2 := Some p2;
  Store.push_level s2;
  Store.remove_below s2 x2 5;
  Store.propagate s2;
  let mid = !runs2 in
  Store.remove_below s2 x2 6;
  Store.propagate s2;
  Alcotest.(check int) "no run while entailed" mid !runs2;
  Store.pop_level s2;
  Store.remove_below s2 x2 2;
  Store.propagate s2;
  Alcotest.(check bool) "runs again after pop" true (!runs2 > mid)

let test_const_cached () =
  let s = Store.create () in
  let a = Store.const s 5 and b = Store.const s 5 in
  Alcotest.(check int) "same id" (Store.id a) (Store.id b);
  (* the cache must also hold under many distinct constants *)
  let vs = List.init 100 (fun k -> Store.const s k) in
  List.iteri
    (fun k v -> Alcotest.(check int) "cached id" (Store.id v) (Store.id (Store.const s k)))
    vs

(* Wake events: an On_bounds propagator must not re-run when only an
   interior value is removed, but must re-run when a bound moves. *)
let test_event_bounds_filtering () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let bounds_runs = ref 0 and change_runs = ref 0 and fix_runs = ref 0 in
  let _ =
    Store.post_now s ~event:Store.On_bounds ~watches:[ x ] (fun _ -> incr bounds_runs)
  in
  let _ =
    Store.post_now s ~event:Store.On_change ~watches:[ x ] (fun _ -> incr change_runs)
  in
  let _ =
    Store.post_now s ~event:Store.On_fix ~watches:[ x ] (fun _ -> incr fix_runs)
  in
  Store.propagate s;
  let b0 = !bounds_runs and c0 = !change_runs and f0 = !fix_runs in
  (* interior hole: only On_change wakes *)
  Store.remove_value s x 5;
  Store.propagate s;
  Alcotest.(check int) "On_bounds ignores interior hole" b0 !bounds_runs;
  Alcotest.(check bool) "On_change woken by hole" true (!change_runs > c0);
  Alcotest.(check int) "On_fix ignores interior hole" f0 !fix_runs;
  (* bound move: On_bounds wakes, On_fix still not *)
  Store.remove_below s x 2;
  Store.propagate s;
  Alcotest.(check bool) "On_bounds woken by min move" true (!bounds_runs > b0);
  Alcotest.(check int) "On_fix ignores bound move" f0 !fix_runs;
  (* fixing: all three wake (fixing moves a bound) *)
  let b1 = !bounds_runs in
  Store.assign s x 7;
  Store.propagate s;
  Alcotest.(check bool) "On_fix woken by fixing" true (!fix_runs > f0);
  Alcotest.(check bool) "On_bounds woken by fixing" true (!bounds_runs > b1)

(* Priority buckets: all queued low-priority propagators run before any
   queued high-priority (global) one. *)
let test_priority_ordering () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let order = ref [] in
  let mk name priority =
    ignore
      (Store.post s ~name ~priority ~watches:[ x ] (fun _ ->
           order := name :: !order))
  in
  mk "global" Store.prio_global;
  mk "arith" Store.prio_arith;
  mk "channel" Store.prio_channel;
  Store.remove_below s x 1;
  Store.propagate s;
  Alcotest.(check (list string))
    "cheap buckets drain first"
    [ "arith"; "channel"; "global" ]
    (List.rev !order)

(* Per-propagator run counters: Store.stats aggregates by name and the
   totals account for every executed step. *)
let test_stats_counters () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 and y = Store.interval_var s 0 9 in
  Arith.leq_offset s x 1 y;
  let before = Store.propagation_steps s in
  Store.remove_below s x 3;
  Store.propagate s;
  let executed = Store.propagation_steps s - before in
  Alcotest.(check bool) "steps advanced" true (executed > 0);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Store.stats s) in
  Alcotest.(check int) "stats sum = total steps" (Store.propagation_steps s) total;
  match List.assoc_opt "leq_offset" (Store.stats s) with
  | Some n -> Alcotest.(check bool) "leq_offset counted" true (n > 0)
  | None -> Alcotest.fail "leq_offset missing from stats"

(* reschedule_all + propagate must be a no-op on a store already at its
   propagation fixpoint: event filtering never leaves pruning behind. *)
let test_event_fixpoint_complete () =
  let s = Store.create () in
  let xs = Array.init 4 (fun _ -> Store.interval_var s 0 12) in
  Arith.leq_offset s xs.(0) 3 xs.(1);
  Arith.plus s xs.(1) xs.(2) xs.(3);
  Arith.neq s xs.(0) xs.(2);
  Store.propagate s;
  Store.remove_value s xs.(1) 6;
  Store.remove_below s xs.(3) 4;
  Store.propagate s;
  let doms = Array.map (fun v -> Store.dom v) xs in
  Store.reschedule_all s;
  Store.propagate s;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "fixpoint stable at %d" i)
        true
        (Dom.equal doms.(i) (Store.dom v)))
    xs

let suite =
  [
    Alcotest.test_case "variable basics" `Quick test_var_basics;
    Alcotest.test_case "empty domain fails" `Quick test_empty_domain_fails;
    Alcotest.test_case "trail backtracking" `Quick test_backtracking;
    Alcotest.test_case "propagation" `Quick test_propagation_runs;
    Alcotest.test_case "entailment trailing" `Quick test_entailment_trailing;
    Alcotest.test_case "const cache" `Quick test_const_cached;
    Alcotest.test_case "event filtering" `Quick test_event_bounds_filtering;
    Alcotest.test_case "priority ordering" `Quick test_priority_ordering;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "event fixpoint complete" `Quick test_event_fixpoint_complete;
  ]
