(* Robustness and graceful degradation: the independent validator on
   every outcome kind, mutation rejection, deadline observance, the
   heuristic fallback path, and fault injection (Fd.Chaos). *)

open Eit_dsl

let merged g = (Merge.run g).Merge.graph

let kernels =
  [
    ("matmul", fun () -> merged (Apps.Matmul.graph (Apps.Matmul.build ())));
    ("qrd", fun () -> merged (Apps.Qrd.graph (Apps.Qrd.build ())));
    ("qrd-sorted", fun () -> merged (Apps.Qrd.graph (Apps.Qrd.build ~sorted:true ())));
    ("arf", fun () -> merged (Apps.Arf.graph (Apps.Arf.build ())));
    ("fir", fun () -> merged (Apps.Fir.graph (Apps.Fir.build ())));
    ("corr", fun () -> merged (Apps.Corr.graph (Apps.Corr.build ())));
    ("detect", fun () -> merged (Apps.Detect.graph (Apps.Detect.build ())));
  ]

let solve ?(budget = 20_000.) g =
  Sched.Solve.run ~budget:(Fd.Search.time_budget budget) g

let schedule_of name o =
  match o.Sched.Solve.schedule with
  | Some sch -> sch
  | None -> Alcotest.failf "%s: no schedule" name

(* ------------- the validator accepts every honest result ------------- *)

let test_validator_accepts_all_kernels () =
  List.iter
    (fun (name, g) ->
      let o = solve (g ()) in
      let sch = schedule_of name o in
      match Sched.Validate.schedule sch with
      | Ok () -> ()
      | Error r -> Alcotest.failf "%s: %a" name Sched.Validate.pp_report r)
    kernels

let test_validator_accepts_fallback () =
  List.iter
    (fun (name, g) ->
      match Sched.Heuristic.run (g ()) with
      | Error e -> Alcotest.failf "%s: fallback failed: %s" name e
      | Ok sch -> (
        match Sched.Validate.schedule sch with
        | Ok () -> ()
        | Error r -> Alcotest.failf "%s: %a" name Sched.Validate.pp_report r))
    kernels

let test_validator_accepts_overlap_and_modulo () =
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let o = solve g in
  let sch = schedule_of "matmul" o in
  let m = Sched.Overlap.min_overlap sch in
  let ov = Sched.Overlap.run sch ~m in
  (match Sched.Validate.overlap g sch.Sched.Schedule.arch ov with
  | Ok () -> ()
  | Error r -> Alcotest.failf "overlap: %a" Sched.Validate.pp_report r);
  match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | None -> Alcotest.fail "modulo: no result"
  | Some r -> (
    match Sched.Validate.modulo g Eit.Arch.default r with
    | Ok () -> ()
    | Error rep -> Alcotest.failf "modulo: %a" Sched.Validate.pp_report rep)

let test_validator_rejects_tampered_overlap () =
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let sch = schedule_of "matmul" (solve g) in
  let ov = Sched.Overlap.run sch ~m:(Sched.Overlap.min_overlap sch) in
  (* lie about the reconfiguration count *)
  let forged =
    { ov with Sched.Overlap.reconfigurations = ov.Sched.Overlap.reconfigurations + 1 }
  in
  (match Sched.Validate.overlap g sch.Sched.Schedule.arch forged with
  | Ok () -> Alcotest.fail "forged reconfiguration count accepted"
  | Error _ -> ());
  (* drop a bundle: coverage must catch the missing ops *)
  match ov.Sched.Overlap.bundles with
  | [] -> Alcotest.fail "no bundles"
  | _ :: rest -> (
    let truncated = { ov with Sched.Overlap.bundles = rest } in
    match Sched.Validate.overlap g sch.Sched.Schedule.arch truncated with
    | Ok () -> Alcotest.fail "truncated bundle list accepted"
    | Error _ -> ())

(* --------------------- mutation rejection (QCheck) ------------------- *)

(* A reference schedule, solved once and shared by the mutation tests. *)
let base_schedule =
  lazy
    (let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
     schedule_of "qrd" (solve g))

let with_start sch f =
  let start = Array.copy sch.Sched.Schedule.start in
  f start;
  { sch with Sched.Schedule.start }

let rejects sch = not (Sched.Schedule.is_valid sch)

let shifted_start_rejected =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"mutation: shifted op start rejected" ~count:40
       QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 5))
       (fun (pick, delta) ->
         let sch = Lazy.force base_schedule in
         let ops = Ir.op_nodes sch.Sched.Schedule.ir in
         let op = List.nth ops (pick mod List.length ops) in
         rejects (with_start sch (fun s -> s.(op) <- s.(op) + delta))))

let stolen_slot_rejected =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"mutation: stolen slot rejected" ~count:40
       QCheck2.Gen.(int_bound 10_000)
       (fun pick ->
         let sch = Lazy.force base_schedule in
         (* every pair of data whose lifetimes overlap on distinct slots *)
         let live d =
           let s = Sched.Schedule.start_of sch d in
           (s, s + Sched.Schedule.lifetime sch d)
         in
         let pairs =
           List.concat_map
             (fun (d1, k1) ->
               List.filter_map
                 (fun (d2, k2) ->
                   let b1, e1 = live d1 and b2, e2 = live d2 in
                   if d1 < d2 && k1 <> k2 && b1 < e2 && b2 < e1 then
                     Some (d1, k2)
                   else None)
                 sch.Sched.Schedule.slot)
             sch.Sched.Schedule.slot
         in
         match pairs with
         | [] -> QCheck2.assume_fail ()
         | _ ->
           let d, stolen = List.nth pairs (pick mod List.length pairs) in
           let slot =
             List.map
               (fun (d', k) -> if d' = d then (d', stolen) else (d', k))
               sch.Sched.Schedule.slot
           in
           rejects { sch with Sched.Schedule.slot }))

let swapped_config_rejected =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"mutation: swapped config co-schedule rejected"
       ~count:40
       QCheck2.Gen.(int_bound 10_000)
       (fun pick ->
         let sch = Lazy.force base_schedule in
         let g = sch.Sched.Schedule.ir in
         (* pairs of vector ops with different configurations *)
         let vops =
           List.filter
             (fun i ->
               Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core)
             (Ir.op_nodes g)
         in
         let pairs =
           List.concat_map
             (fun i ->
               List.filter_map
                 (fun j ->
                   if
                     i < j
                     && not (Eit.Opcode.config_equal (Ir.opcode g i) (Ir.opcode g j))
                   then Some (i, j)
                   else None)
                 vops)
             vops
         in
         match pairs with
         | [] -> QCheck2.assume_fail ()
         | _ ->
           let i, j = List.nth pairs (pick mod List.length pairs) in
           (* force them into the same cycle: eq. 3 must fire *)
           rejects (with_start sch (fun s -> s.(i) <- s.(j)))))

(* ----------------------- graceful degradation ----------------------- *)

let test_budget_zero_falls_back () =
  List.iter
    (fun (name, g) ->
      let o = solve ~budget:0. (g ()) in
      Alcotest.(check bool) (name ^ " fallback engine") true
        (o.Sched.Solve.engine = Sched.Solve.Fallback);
      Alcotest.(check bool) (name ^ " status") true
        (o.Sched.Solve.status = Sched.Solve.Feasible_timeout);
      Alcotest.(check int) (name ^ " exit code") 2 (Sched.Solve.exit_code o);
      Alcotest.(check bool) (name ^ " validated") true
        (o.Sched.Solve.validation = Ok ()
        && (match o.Sched.Solve.schedule with
           | Some sch -> Sched.Schedule.is_valid sch
           | None -> false)))
    kernels

let test_deadline_observed () =
  (* an already-expired deadline must come back (degraded) almost
     immediately, even though the budget alone would allow 10 s *)
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let t0 = Unix.gettimeofday () in
  let o =
    Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.)
      ~deadline:(Fd.Deadline.after_ms 0.) g
  in
  let dt_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Alcotest.(check bool) "returned quickly" true (dt_ms < 2_000.);
  Alcotest.(check bool) "fallback used" true
    (o.Sched.Solve.engine = Sched.Solve.Fallback
    && o.Sched.Solve.schedule <> None)

let test_past_deadline_equals_zero_budget () =
  (* an already-expired deadline takes the same fast path as a zero
     budget: no search is started at all (zero nodes, zero
     propagations), only the heuristic fallback runs *)
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let t0 = Unix.gettimeofday () in
  let by_budget = solve ~budget:0. g in
  let by_deadline =
    Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.)
      ~deadline:(Fd.Deadline.after_ms (-50.)) g
  in
  let dt_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Alcotest.(check bool) "both fast" true (dt_ms < 2_000.);
  List.iter
    (fun (name, o) ->
      Alcotest.(check bool) (name ^ " status") true
        (o.Sched.Solve.status = Sched.Solve.Feasible_timeout);
      Alcotest.(check bool) (name ^ " engine") true
        (o.Sched.Solve.engine = Sched.Solve.Fallback);
      Alcotest.(check int) (name ^ " nodes") 0 o.Sched.Solve.stats.Fd.Search.nodes;
      Alcotest.(check int)
        (name ^ " propagations")
        0 o.Sched.Solve.stats.Fd.Search.propagations;
      Alcotest.(check bool) (name ^ " schedule") true
        (match o.Sched.Solve.schedule with
        | Some sch -> Sched.Schedule.is_valid sch
        | None -> false))
    [ ("budget-0", by_budget); ("past-deadline", by_deadline) ]

let test_tiny_budget_inside_propagation () =
  (* the budget is enforced inside the fixpoint loop: a 5 ms budget on
     QRD must not overshoot by a long propagation sweep *)
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let t0 = Unix.gettimeofday () in
  ignore (Sched.Solve.run ~budget:(Fd.Search.time_budget 5.) g);
  let dt_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Alcotest.(check bool) "no overshoot" true (dt_ms < 2_000.)

(* --------------------------- fault injection ------------------------- *)

let test_chaos_sequential_crash_rescued () =
  (* kill the sequential engine early: the fallback must rescue, the
     crash must be recorded, and nothing may escape as an exception *)
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let chaos = Fd.Chaos.create ~kill_workers:[ 0 ] ~kill_after:10 ~seed:7 () in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) ~chaos g in
  Alcotest.(check bool) "crash recorded" true (o.Sched.Solve.crashes <> []);
  Alcotest.(check bool) "faults logged" true (Fd.Chaos.faults chaos <> []);
  Alcotest.(check bool) "fallback rescued" true
    (o.Sched.Solve.engine = Sched.Solve.Fallback
    && o.Sched.Solve.status = Sched.Solve.Feasible_timeout
    && (match o.Sched.Solve.schedule with
       | Some sch -> Sched.Schedule.is_valid sch
       | None -> false))

let test_chaos_portfolio_survivors_deliver () =
  (* kill one of three portfolio workers mid-search: the survivors must
     still return (and normally prove) a validated optimum *)
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let chaos = Fd.Chaos.create ~kill_workers:[ 1 ] ~kill_after:50 ~seed:11 () in
  let o =
    Sched.Solve.run ~budget:(Fd.Search.time_budget 30_000.) ~parallel:3 ~chaos g
  in
  Alcotest.(check bool) "crash recorded" true
    (List.exists (fun c -> c.Fd.Portfolio.worker = 1) o.Sched.Solve.crashes);
  Alcotest.(check bool) "survivors delivered a CP schedule" true
    (o.Sched.Solve.engine = Sched.Solve.Cp);
  let sch = schedule_of "matmul" o in
  Alcotest.(check bool) "validated" true (Sched.Schedule.is_valid sch);
  Alcotest.(check bool) "status sane" true
    (match o.Sched.Solve.status with
    | Sched.Solve.Optimal | Sched.Solve.Feasible_timeout -> true
    | _ -> false)

let test_chaos_all_workers_killed () =
  (* every worker dies: the CP layer reports Crashed, the fallback still
     produces a validated schedule, and Infeasible is never claimed *)
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let chaos =
    Fd.Chaos.create ~kill_workers:[ 0; 1; 2 ] ~kill_after:5 ~seed:3 ()
  in
  let o =
    Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) ~parallel:3 ~chaos g
  in
  Alcotest.(check bool) "not infeasible" true
    (o.Sched.Solve.status <> Sched.Solve.Infeasible);
  Alcotest.(check bool) "fallback rescued" true
    (o.Sched.Solve.engine = Sched.Solve.Fallback
    && o.Sched.Solve.schedule <> None);
  Alcotest.(check bool) "all crashes recorded" true
    (List.length
       (List.filter (fun c -> c.Fd.Portfolio.worker >= 0) o.Sched.Solve.crashes)
    >= 3)

let chaos_never_escapes =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"chaos: random faults never escape, invariants hold" ~count:12
       QCheck2.Gen.(int_bound 1_000_000)
       (fun seed ->
         let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
         let chaos =
           Fd.Chaos.create ~crash_prob:0.02 ~spurious_prob:0.02
             ~delay_prob:0.01 ~delay_ms:0.05 ~seed ()
         in
         let o =
           Sched.Solve.run ~budget:(Fd.Search.node_budget 3_000) ~chaos g
         in
         (* outcome invariants, whatever the injected faults did *)
         (match (o.Sched.Solve.status, o.Sched.Solve.schedule) with
         | (Sched.Solve.Optimal | Sched.Solve.Feasible_timeout), Some sch ->
           Sched.Schedule.is_valid sch
         | (Sched.Solve.Infeasible | Sched.Solve.Crashed), None ->
           (* chaos faults are engine failures, never proofs *)
           o.Sched.Solve.status <> Sched.Solve.Infeasible
           || o.Sched.Solve.crashes = []
         | Sched.Solve.Feasible_timeout, None -> true
         | _, _ -> false)
         (* a crash-free optimal run of matmul must still say 11 *)
         && (o.Sched.Solve.crashes <> []
            || o.Sched.Solve.status <> Sched.Solve.Optimal
            ||
            match o.Sched.Solve.schedule with
            | Some sch -> sch.Sched.Schedule.makespan = 11
            | None -> false)))

(* ------------------- total parse / encode frontends ------------------ *)

let test_xml_errors_are_positioned () =
  (match Xml.parse "<graph>\n  <node id=\"0\" cat=\"nonsense\" label=\"x\"/>\n</graph>" with
  | Ok _ -> Alcotest.fail "bad category accepted"
  | Error e ->
    Alcotest.(check int) "line" 2 e.Xml.line;
    Alcotest.(check bool) "col > 0" true (e.Xml.col > 0));
  (match Xml.parse "<graph>\n  <node id=\"zero\" cat=\"vector_data\" label=\"x\"/>\n</graph>" with
  | Ok _ -> Alcotest.fail "non-integer id accepted"
  | Error e -> Alcotest.(check int) "line" 2 e.Xml.line);
  (match Xml.parse "<graph><node id=\"0\"" with
  | Ok _ -> Alcotest.fail "unterminated tag accepted"
  | Error _ -> ());
  (* the total parser round-trips every kernel *)
  List.iter
    (fun (name, g) ->
      match Xml.parse (Xml.to_string (g ())) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %a" name Xml.pp_error e)
    kernels

let test_encode_result_total () =
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let sch = schedule_of "matmul" (solve g) in
  let p = Sched.Codegen.program sch in
  match Eit.Encode.encode_result p with
  | Error e -> Alcotest.failf "encode: %s" e
  | Ok img -> (
    (match
       Eit.Encode.decode_result ~arch:p.Eit.Instr.arch ~inputs:p.Eit.Instr.inputs
         ~outputs:p.Eit.Instr.outputs img
     with
    | Ok p' ->
      Alcotest.(check bool) "round trip" true
        (p'.Eit.Instr.instrs = p.Eit.Instr.instrs)
    | Error e -> Alcotest.failf "decode: %s" e);
    (* truncation must be an Error naming the word, not an exception *)
    let cut =
      { img with
        Eit.Encode.words =
          Array.sub img.Eit.Encode.words 0 (Array.length img.Eit.Encode.words - 1)
      }
    in
    match
      Eit.Encode.decode_result ~arch:p.Eit.Instr.arch ~inputs:p.Eit.Instr.inputs
        ~outputs:p.Eit.Instr.outputs cut
    with
    | Ok _ -> Alcotest.fail "truncated image decoded"
    | Error e ->
      let contains frag s =
        let n = String.length frag and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = frag || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "positioned" true (contains "word" e))

let suite =
  [
    Alcotest.test_case "validator accepts all kernels (CP)" `Slow
      test_validator_accepts_all_kernels;
    Alcotest.test_case "validator accepts all kernels (fallback)" `Quick
      test_validator_accepts_fallback;
    Alcotest.test_case "validator accepts overlap + modulo" `Slow
      test_validator_accepts_overlap_and_modulo;
    Alcotest.test_case "validator rejects tampered overlap" `Slow
      test_validator_rejects_tampered_overlap;
    shifted_start_rejected;
    stolen_slot_rejected;
    swapped_config_rejected;
    Alcotest.test_case "budget 0 falls back on all kernels" `Quick
      test_budget_zero_falls_back;
    Alcotest.test_case "deadline observed" `Quick test_deadline_observed;
    Alcotest.test_case "past deadline = zero budget fast path" `Quick
      test_past_deadline_equals_zero_budget;
    Alcotest.test_case "tiny budget: no propagation overshoot" `Quick
      test_tiny_budget_inside_propagation;
    Alcotest.test_case "chaos: sequential crash rescued" `Quick
      test_chaos_sequential_crash_rescued;
    Alcotest.test_case "chaos: portfolio survivors deliver" `Slow
      test_chaos_portfolio_survivors_deliver;
    Alcotest.test_case "chaos: all workers killed" `Slow
      test_chaos_all_workers_killed;
    chaos_never_escapes;
    Alcotest.test_case "xml errors are positioned" `Quick
      test_xml_errors_are_positioned;
    Alcotest.test_case "encode/decode are total" `Slow test_encode_result_total;
  ]
