(* Search engine: optimality proofs against brute force, budgets,
   heuristics, branch & bound monotonicity. *)

open Fd

let test_first_solution () =
  let s = Store.create () in
  let x = Store.interval_var s 0 5 and y = Store.interval_var s 0 5 in
  Arith.plus s x y (Store.const s 5);
  match
    Search.solve s [ Search.phase [ x; y ] ] ~on_solution:(fun () ->
        (Store.value x, Store.value y))
  with
  | Search.Solution ((a, b), stats) ->
    Alcotest.(check int) "sum" 5 (a + b);
    Alcotest.(check bool) "not a proof" false stats.Search.optimal
  | _ -> Alcotest.fail "expected a solution"

let test_unsat_proof () =
  let s = Store.create () in
  let x = Store.interval_var s 0 1 and y = Store.interval_var s 0 1 in
  let z = Store.interval_var s 0 1 in
  Arith.all_different s [ x; y; z ];
  match Search.solve s [ Search.phase [ x; y; z ] ] ~on_solution:(fun () -> ()) with
  | Search.Unsat stats -> Alcotest.(check bool) "proof" true stats.Search.optimal
  | _ -> Alcotest.fail "expected unsat"

let test_node_budget () =
  let s = Store.create () in
  let vars = List.init 10 (fun _ -> Store.interval_var s 0 9) in
  Arith.all_different s vars;
  (* force exhaustive exploration with an unsatisfiable objective *)
  let obj = Store.interval_var s 0 100 in
  Arith.max_of s vars obj;
  match
    Search.minimize ~budget:(Search.node_budget 5) s [ Search.phase vars ]
      ~objective:obj ~on_solution:(fun () -> ())
  with
  | Search.Best (_, stats) | Search.Timeout stats ->
    Alcotest.(check bool) "within budget" true (stats.Search.nodes <= 6)
  | Search.Solution _ -> Alcotest.fail "should not finish in 5 nodes"
  | Search.Unsat _ -> Alcotest.fail "satisfiable"

(* Random minimization problems: B&B optimum must equal brute force. *)
let gen_problem =
  QCheck2.Gen.(
    let* n = int_range 2 4 in
    let* dmax = int_range 1 5 in
    (* random binary leq_offset constraints *)
    let* m = int_range 0 4 in
    let* cons = list_repeat m (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range (-2) 2)) in
    return (n, dmax, cons))

let bnb_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"B&B optimum = brute force" ~count:200 gen_problem
       (fun (n, dmax, cons) ->
         let cons = List.filter (fun (i, j, _) -> i <> j) cons in
         let build () =
           let s = Store.create () in
           let vars = List.init n (fun _ -> Store.interval_var s 0 dmax) in
           let arr = Array.of_list vars in
           let obj = Store.interval_var s 0 (n * (dmax + 1)) in
           try
             List.iter (fun (i, j, c) -> Arith.leq_offset s arr.(i) c arr.(j)) cons;
             Arith.sum s vars obj;
             Some (s, vars, obj)
           with Store.Fail _ -> None
         in
         let satisfies assignment =
           let arr = Array.of_list assignment in
           List.for_all (fun (i, j, c) -> arr.(i) + c <= arr.(j)) cons
         in
         let domains = List.init n (fun _ -> List.init (dmax + 1) Fun.id) in
         let sols = T_arith.brute domains satisfies in
         let brute_best =
           List.fold_left
             (fun acc sol -> min acc (List.fold_left ( + ) 0 sol))
             max_int sols
         in
         match build () with
         | None -> sols = []
         | Some (s, vars, obj) -> (
           match
             Search.minimize s [ Search.phase vars ] ~objective:obj
               ~on_solution:(fun () -> List.fold_left (fun a v -> a + Store.value v) 0 vars)
           with
           | Search.Solution (v, stats) -> stats.Search.optimal && v = brute_best
           | Search.Unsat _ -> sols = []
           | _ -> false)))

let test_heuristics_same_optimum () =
  (* different heuristics must find the same optimal makespan *)
  let build () =
    let s = Store.create () in
    let vars = Array.init 5 (fun _ -> Store.interval_var s 0 20) in
    Arith.leq_offset s vars.(0) 3 vars.(2);
    Arith.leq_offset s vars.(1) 2 vars.(2);
    Arith.leq_offset s vars.(2) 4 vars.(3);
    Arith.leq_offset s vars.(2) 1 vars.(4);
    Cumulative.post s ~starts:vars ~durations:[| 2; 2; 2; 2; 2 |]
      ~resources:[| 1; 1; 1; 1; 1 |] ~limit:2;
    let obj = Store.interval_var s 0 40 in
    Arith.max_of s (Array.to_list vars) obj;
    (s, Array.to_list vars, obj)
  in
  let optimum var_select =
    let s, vars, obj = build () in
    match
      Search.minimize s [ Search.phase ~var_select vars ] ~objective:obj
        ~on_solution:(fun () -> Store.vmin obj)
    with
    | Search.Solution (v, _) -> v
    | _ -> Alcotest.fail "no optimum"
  in
  let a = optimum Search.first_fail in
  let b = optimum Search.smallest_min in
  let c = optimum Search.input_order in
  let d = optimum Search.most_constrained in
  Alcotest.(check int) "ff = sm" a b;
  Alcotest.(check int) "sm = io" b c;
  Alcotest.(check int) "io = mc" c d

let test_select_mid () =
  let s = Store.create () in
  let x = Store.new_var s (Dom.of_list [ 0; 9; 10 ]) in
  Alcotest.(check int) "mid picks closest to middle" 9 (Search.select_mid x)

let test_phases_ordering () =
  (* phase 2 variables only assigned after phase 1 exhausted *)
  let s = Store.create () in
  let x = Store.interval_var s 0 3 and y = Store.interval_var s 0 3 in
  Arith.lt s x y;
  match
    Search.solve s
      [ Search.phase [ x ]; Search.phase [ y ] ]
      ~on_solution:(fun () -> (Store.value x, Store.value y))
  with
  | Search.Solution ((0, 1), _) -> ()
  | Search.Solution ((a, b), _) ->
    Alcotest.failf "expected lexicographically first (0,1), got (%d,%d)" a b
  | _ -> Alcotest.fail "expected solution"

(* Event-filtered propagation must compute the same fixpoint a full
   sweep would: after propagate, rescheduling every propagator and
   propagating again may not change any domain. *)
let fixpoint_property =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 3 6 in
      let* dmax = int_range 3 12 in
      let* leqs =
        list_size (int_range 0 5)
          (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range (-2) 3))
      in
      let* neqs =
        list_size (int_range 0 3) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let* use_cumul = bool in
      let* prunes =
        list_size (int_range 0 4) (pair (int_range 0 (n - 1)) (int_range 0 dmax))
      in
      return (n, dmax, leqs, neqs, use_cumul, prunes))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"event fixpoint = full-sweep fixpoint" ~count:300 gen
       (fun (n, dmax, leqs, neqs, use_cumul, prunes) ->
         let s = Store.create () in
         let xs = Array.init n (fun _ -> Store.interval_var s 0 dmax) in
         try
           List.iter
             (fun (i, j, c) -> if i <> j then Arith.leq_offset s xs.(i) c xs.(j))
             leqs;
           List.iter (fun (i, j) -> if i <> j then Arith.neq s xs.(i) xs.(j)) neqs;
           if use_cumul then
             Cumulative.post s ~starts:xs
               ~durations:(Array.make n 2)
               ~resources:(Array.make n 1)
               ~limit:2;
           Store.propagate s;
           List.iter
             (fun (i, k) ->
               Store.remove_value s xs.(i) k;
               Store.propagate s)
             prunes;
           let doms = Array.map Store.dom xs in
           Store.reschedule_all s;
           Store.propagate s;
           Array.for_all2 Dom.equal doms (Array.map Store.dom xs)
         with Store.Fail _ -> true))

(* The paper's kernels must keep their proven-optimal makespans on the
   event-based prioritized engine (same optima as the seed engine). *)
let kernel_graph build graph =
  (Eit_dsl.Merge.run (graph build)).Eit_dsl.Merge.graph

let solve_makespan g =
  match
    Sched.Solve.run ~budget:(Fd.Search.time_budget 60_000.) g
  with
  | { Sched.Solve.status = Sched.Solve.Optimal; schedule = Some sch; _ } ->
    sch.Sched.Schedule.makespan
  | _ -> Alcotest.fail "expected a proven optimum"

let test_kernel_optima () =
  Alcotest.(check int) "QRD makespan" 168
    (solve_makespan (kernel_graph (Apps.Qrd.build ()) Apps.Qrd.graph));
  Alcotest.(check int) "ARF makespan" 56
    (solve_makespan (kernel_graph (Apps.Arf.build ()) Apps.Arf.graph));
  Alcotest.(check int) "MATMUL makespan" 11
    (solve_makespan (kernel_graph (Apps.Matmul.build ()) Apps.Matmul.graph))

(* Under the same node budget, the portfolio's returned bound is never
   worse than the sequential engine's: its first strategy IS the
   sequential strategy, and cooperative pruning only skips subtrees that
   cannot contain a strictly better solution. *)
let test_portfolio_no_worse () =
  List.iter
    (fun (name, g, nodes) ->
      let budget = Search.node_budget nodes in
      let seq = Sched.Solve.run ~budget g in
      let par = Sched.Solve.run ~budget ~parallel:3 g in
      match (seq.Sched.Solve.schedule, par.Sched.Solve.schedule) with
      | None, _ -> ()  (* sequential found nothing: trivially no worse *)
      | Some _, None ->
        Alcotest.failf "%s: portfolio lost a solution the sequential run found"
          name
      | Some s1, Some s2 ->
        Alcotest.(check bool)
          (name ^ ": portfolio bound no worse")
          true
          (s2.Sched.Schedule.makespan <= s1.Sched.Schedule.makespan))
    [
      ("QRD", kernel_graph (Apps.Qrd.build ()) Apps.Qrd.graph, 60);
      ("MATMUL", kernel_graph (Apps.Matmul.build ()) Apps.Matmul.graph, 300);
    ]

let suite =
  [
    Alcotest.test_case "first solution" `Quick test_first_solution;
    Alcotest.test_case "unsat proof" `Quick test_unsat_proof;
    Alcotest.test_case "node budget" `Quick test_node_budget;
    Alcotest.test_case "heuristics agree on optimum" `Quick test_heuristics_same_optimum;
    Alcotest.test_case "select_mid" `Quick test_select_mid;
    Alcotest.test_case "phase ordering" `Quick test_phases_ordering;
    bnb_oracle;
    fixpoint_property;
    Alcotest.test_case "kernel optima preserved" `Slow test_kernel_optima;
    Alcotest.test_case "portfolio no worse than sequential" `Slow
      test_portfolio_no_worse;
  ]
