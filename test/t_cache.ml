(* The solution cache (lib/cache): canonical keys that are insensitive
   to node-id permutation but sensitive to every model-changing edit, a
   differential layer proving a cache hit replays the cold solve
   exactly, warm-start soundness, LRU bookkeeping and persistence. *)

open Eit_dsl
open Eit
module K = Cache.Key
module V = Vecsched_core.Vecsched

let default_opts =
  {
    K.memory = true;
    parallel = 0;
    max_nodes = None;
    max_time_ms = None;
    validate = true;
  }

let key_of ?(arch = Arch.default) ?(opts = default_opts) g =
  K.make (K.canonicalize g) arch opts

let qrd_ir () = (V.compile (Apps.Qrd.graph (Apps.Qrd.build ()))).V.ir

(* ------------------------- recipe graphs ----------------------------- *)

(* An abstract, id-free description of a kind-correct dataflow graph:
   a pool of input data nodes followed by ops whose args index the pool
   (inputs first, then prior op results).  Building it with different
   insertion orders yields isomorphic graphs with different node ids —
   exactly what the canonical key must be blind to. *)
type recipe = {
  n_vec : int;
  n_sca : int;
  ops : (Opcode.t * int list) list;
}

let pool_kinds r =
  let input k = List.init k Fun.id in
  Array.of_list
    (List.map (fun _ -> `Vector) (input r.n_vec)
    @ List.map (fun _ -> `Scalar) (input r.n_sca)
    @ List.map (fun (op, _) -> Opcode.produces op) r.ops)

(* [shuffle] builds the same abstract graph in a different node order:
   inputs reversed, then every result datum before any op.  The two
   builds are isomorphic by construction. *)
let build ?(shuffle = false) r =
  let b = Ir.builder () in
  let n_in = r.n_vec + r.n_sca in
  let n_ops = List.length r.ops in
  let pool = Array.make (n_in + n_ops) (-1) in
  let kind i = if i < r.n_vec then `Vector else `Scalar in
  let input_order =
    if shuffle then List.rev (List.init n_in Fun.id)
    else List.init n_in Fun.id
  in
  List.iter (fun i -> pool.(i) <- Ir.add_data b (kind i)) input_order;
  if shuffle then
    List.iteri
      (fun i (op, _) -> pool.(n_in + i) <- Ir.add_data b (Opcode.produces op))
      r.ops;
  List.iteri
    (fun i (op, args) ->
      if not shuffle then
        pool.(n_in + i) <- Ir.add_data b (Opcode.produces op);
      ignore
        (Ir.add_op b op
           ~args:(List.map (fun a -> pool.(a)) args)
           ~result:pool.(n_in + i)))
    r.ops;
  Ir.freeze b

(* Decode a raw QCheck triple list into a kind-correct recipe.  Each op
   draws its operands from the kind-matching part of the pool built so
   far, so the graph solves and validates like a real kernel. *)
let recipe_of_raw (n_vec, n_sca, raw) =
  let kinds = ref [] (* reversed pool kinds *) in
  let add k = kinds := k :: !kinds in
  List.iter (fun () -> add `Vector) (List.init n_vec (fun _ -> ()));
  List.iter (fun () -> add `Scalar) (List.init n_sca (fun _ -> ()));
  let pick kind seed =
    let candidates =
      List.filteri (fun _ k -> k = kind) (List.rev !kinds) |> List.length
    in
    let nth = seed mod candidates in
    (* index in pool order of the nth entry of that kind *)
    let rec go i seen = function
      | [] -> assert false
      | k :: tl ->
        if k = kind then
          if seen = nth then i else go (i + 1) (seen + 1) tl
        else go (i + 1) seen tl
    in
    go 0 0 (List.rev !kinds)
  in
  let ops =
    List.map
      (fun (sel, a1, a2) ->
        let op, args =
          match sel mod 5 with
          | 0 -> (Opcode.v Opcode.Vadd, [ pick `Vector a1; pick `Vector a2 ])
          | 1 -> (Opcode.v Opcode.Vmul, [ pick `Vector a1; pick `Vector a2 ])
          | 2 ->
            ( Opcode.V { pre = Some Opcode.Pconj; core = Opcode.Vsub; post = None },
              [ pick `Vector a1; pick `Vector a2 ] )
          | 3 -> (Opcode.v Opcode.Vdotp, [ pick `Vector a1; pick `Vector a2 ])
          | _ -> (Opcode.S Opcode.Smul, [ pick `Scalar a1; pick `Scalar a2 ])
        in
        add (Opcode.produces op);
        (op, args))
      raw
  in
  { n_vec; n_sca; ops }

let gen_recipe =
  QCheck2.Gen.(
    map recipe_of_raw
      (triple (int_range 1 3) (int_range 1 2)
         (list_size (int_range 1 8)
            (triple (int_bound 4) (int_bound 999) (int_bound 999)))))

(* --------------------- key: permutation blindness -------------------- *)

let key_blind_to_node_order =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"isomorphic builds share one key" ~count:200
       gen_recipe (fun r ->
         let a = build r and b = build ~shuffle:true r in
         K.equal (key_of a) (key_of b)))

(* ------------------------ key: edge sensitivity ---------------------- *)

(* Rewire one op operand from [a] to an input [b] with outdeg(b) >=
   outdeg(a): the sum of squared out-degrees strictly increases, so the
   mutated graph is provably non-isomorphic and the key must change.
   (Inputs are never descendants, so no cycle can appear.) *)
let edge_mutation_changes_key =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"operand rewire changes the key" ~count:200
       QCheck2.Gen.(pair gen_recipe (pair (int_bound 999) (int_bound 999)))
       (fun (r, (opi, argi)) ->
         let kinds = pool_kinds r in
         let n_in = r.n_vec + r.n_sca in
         let outdeg = Array.make (Array.length kinds) 0 in
         List.iter
           (fun (_, args) ->
             List.iter (fun a -> outdeg.(a) <- outdeg.(a) + 1) args)
           r.ops;
         let opi = opi mod List.length r.ops in
         let op, args = List.nth r.ops opi in
         let argi = argi mod List.length args in
         let a = List.nth args argi in
         (* candidate inputs of the same kind, heavier or equal, != a *)
         let cands =
           List.filter
             (fun b -> b <> a && kinds.(b) = kinds.(a) && outdeg.(b) >= outdeg.(a))
             (List.init n_in Fun.id)
         in
         match cands with
         | [] -> true (* vacuous draw *)
         | b :: _ ->
           let args' = List.mapi (fun i x -> if i = argi then b else x) args in
           let ops' =
             List.mapi
               (fun i o -> if i = opi then (op, args') else o)
               r.ops
           in
           not (K.equal (key_of (build r)) (key_of (build { r with ops = ops' })))))

(* ------------------------ key: arch sensitivity ---------------------- *)

let test_arch_knobs_change_key () =
  let g = qrd_ir () in
  let base = key_of g in
  let d = Arch.default in
  let knobs =
    [
      ("n_lanes", { d with Arch.n_lanes = d.Arch.n_lanes + 1 });
      ("vector_latency", { d with Arch.vector_latency = d.Arch.vector_latency + 1 });
      ("vector_duration", { d with Arch.vector_duration = d.Arch.vector_duration + 1 });
      ("scalar_latency", { d with Arch.scalar_latency = d.Arch.scalar_latency + 1 });
      ( "scalar_simple_latency",
        { d with Arch.scalar_simple_latency = d.Arch.scalar_simple_latency + 1 } );
      ("scalar_duration", { d with Arch.scalar_duration = d.Arch.scalar_duration + 1 });
      ("im_latency", { d with Arch.im_latency = d.Arch.im_latency + 1 });
      ("im_duration", { d with Arch.im_duration = d.Arch.im_duration + 1 });
      ("banks", { d with Arch.banks = d.Arch.banks + 1 });
      ("page_size", { d with Arch.page_size = d.Arch.page_size + 1 });
      ("lines", { d with Arch.lines = d.Arch.lines + 1 });
      ("slot_limit", { d with Arch.slot_limit = Some 20 });
      ( "max_reads_per_cycle",
        { d with Arch.max_reads_per_cycle = d.Arch.max_reads_per_cycle + 1 } );
      ( "max_writes_per_cycle",
        { d with Arch.max_writes_per_cycle = d.Arch.max_writes_per_cycle + 1 } );
      ("reconfig_cost", { d with Arch.reconfig_cost = d.Arch.reconfig_cost + 1 });
    ]
  in
  List.iter
    (fun (name, arch) ->
      Alcotest.(check bool)
        (name ^ " changes the key")
        false
        (K.equal base (key_of ~arch g)))
    knobs

(* ------------------------ key: opts sensitivity ---------------------- *)

let test_opts_change_key () =
  let g = qrd_ir () in
  let base = key_of g in
  let o = default_opts in
  let variants =
    [
      ("memory", { o with K.memory = false });
      ("parallel", { o with K.parallel = 4 });
      ("max_nodes", { o with K.max_nodes = Some 1000 });
      ("max_time_ms", { o with K.max_time_ms = Some 500. });
      ("validate", { o with K.validate = false });
    ]
  in
  List.iter
    (fun (name, opts) ->
      Alcotest.(check bool)
        (name ^ " changes the key")
        false
        (K.equal base (key_of ~opts g)))
    variants

(* ------------------- key: labels/values excluded --------------------- *)

let test_labels_values_excluded () =
  (* a = x + y built through the DSL (labels + trace values attached)
     vs. the bare structural twin: one key *)
  let ctx = Dsl.create () in
  let x = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let y = Dsl.vector_input_f ctx [ 5.; 6.; 7.; 8. ] in
  ignore (Dsl.v_add ctx x y);
  let rich = Dsl.graph ctx in
  let b = Ir.builder () in
  let x' = Ir.add_data b `Vector in
  let y' = Ir.add_data b `Vector in
  let r' = Ir.add_data b `Vector in
  ignore (Ir.add_op b (Opcode.v Opcode.Vadd) ~args:[ x'; y' ] ~result:r');
  let bare = Ir.freeze b in
  Alcotest.(check bool) "labels/values do not affect the key" true
    (K.equal (key_of rich) (key_of bare))

let test_key_repr_roundtrip () =
  let k = key_of (qrd_ir ()) in
  Alcotest.(check bool) "of_repr (repr k) = k" true (K.equal k (K.of_repr (K.repr k)));
  Alcotest.(check int) "digest is a 32-char md5 hex" 32 (String.length (K.digest k))

(* ------------------- differential: hit == cold ----------------------- *)

let solve ?cache ?warm ?warm_bound ?(arch = Arch.default)
    ?(budget = 5_000.) g =
  Sched.Solve.run ~budget:(Fd.Search.time_budget budget) ~arch ?cache ?warm
    ?warm_bound g

let check_same_schedule what (a : Sched.Schedule.t) (b : Sched.Schedule.t) =
  Alcotest.(check int) (what ^ ": makespan") a.Sched.Schedule.makespan
    b.Sched.Schedule.makespan;
  Alcotest.(check (array int)) (what ^ ": start times") a.Sched.Schedule.start
    b.Sched.Schedule.start;
  Alcotest.(check (list (pair int int)))
    (what ^ ": slot assignment")
    (List.sort compare a.Sched.Schedule.slot)
    (List.sort compare b.Sched.Schedule.slot)

let differential_hit_replays_cold =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"cache hit replays the cold solve exactly"
       ~count:60 gen_recipe (fun r ->
         let g = build r in
         let cache = Cache.create ~capacity:8 in
         let cold = solve ~cache g in
         match cold.Sched.Solve.status with
         | Sched.Solve.Optimal ->
           let hit = solve ~cache g in
           Alcotest.(check bool) "cold not from cache" false
             cold.Sched.Solve.from_cache;
           Alcotest.(check bool) "second solve hits" true
             hit.Sched.Solve.from_cache;
           Alcotest.(check bool) "hit status optimal" true
             (hit.Sched.Solve.status = Sched.Solve.Optimal);
           Alcotest.(check bool) "hit validated" true
             (hit.Sched.Solve.validation = Ok ());
           Alcotest.(check int) "0 nodes" 0 hit.Sched.Solve.stats.Fd.Search.nodes;
           Alcotest.(check int) "0 propagations" 0
             hit.Sched.Solve.stats.Fd.Search.propagations;
           (match (cold.Sched.Solve.schedule, hit.Sched.Solve.schedule) with
           | Some a, Some b -> check_same_schedule "replay" a b
           | _ -> Alcotest.fail "optimal outcome without schedule");
           true
         | _ -> true (* timeout draw: nothing was cached, nothing to check *)))

let test_isomorphic_request_hits () =
  let r =
    recipe_of_raw (2, 1, [ (0, 0, 1); (3, 2, 1); (4, 0, 0) ])
  in
  let a = build r and b = build ~shuffle:true r in
  let cache = Cache.create ~capacity:4 in
  let cold = solve ~cache a in
  let hit = solve ~cache b in
  Alcotest.(check bool) "cold optimal" true
    (cold.Sched.Solve.status = Sched.Solve.Optimal);
  Alcotest.(check bool) "isomorphic twin hits" true hit.Sched.Solve.from_cache;
  match (cold.Sched.Solve.schedule, hit.Sched.Solve.schedule) with
  | Some ca, Some cb ->
    Alcotest.(check int) "same makespan across the isomorphism"
      ca.Sched.Schedule.makespan cb.Sched.Schedule.makespan;
    (* the replayed schedule must be valid on b's own node ids *)
    Alcotest.(check bool) "replay validates on the twin" true
      (Sched.Schedule.is_valid cb)
  | _ -> Alcotest.fail "expected schedules on both sides"

(* -------------------------- warm start ------------------------------- *)

let warm_same_optimum =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"warm seed preserves the optimum" ~count:40
       gen_recipe (fun r ->
         let g = build r in
         let cold = solve g in
         match (cold.Sched.Solve.status, cold.Sched.Solve.schedule) with
         | Sched.Solve.Optimal, Some sch ->
           let warm = solve ~warm_bound:sch.Sched.Schedule.makespan g in
           Alcotest.(check bool) "warm still optimal" true
             (warm.Sched.Solve.status = Sched.Solve.Optimal);
           (match warm.Sched.Solve.schedule with
           | Some wsch ->
             Alcotest.(check int) "same optimum" sch.Sched.Schedule.makespan
               wsch.Sched.Schedule.makespan
           | None -> Alcotest.fail "warm optimal without schedule");
           Alcotest.(check bool) "warm explores no more nodes" true
             (warm.Sched.Solve.stats.Fd.Search.nodes
             <= cold.Sched.Solve.stats.Fd.Search.nodes);
           true
         | _ -> true))

let test_warm_edited_arch_same_optimum () =
  (* warm-start qrd on an edited arch (20 slots) from the default-arch
     hint: same optimum as the cold solve, never more search *)
  let g = qrd_ir () in
  let edited = Arch.with_slots Arch.default 20 in
  let cold = solve ~arch:edited g in
  let cache = Cache.create ~capacity:4 in
  ignore (solve ~cache ~warm:true g); (* records the shape hint (168) *)
  let warm = solve ~cache ~warm:true ~arch:edited g in
  Alcotest.(check bool) "cold optimal" true
    (cold.Sched.Solve.status = Sched.Solve.Optimal);
  Alcotest.(check bool) "warm optimal" true
    (warm.Sched.Solve.status = Sched.Solve.Optimal);
  (match (cold.Sched.Solve.schedule, warm.Sched.Solve.schedule) with
  | Some c, Some w ->
    Alcotest.(check int) "same optimum on the edited arch"
      c.Sched.Schedule.makespan w.Sched.Schedule.makespan
  | _ -> Alcotest.fail "expected schedules");
  Alcotest.(check bool) "warm solve explores no more nodes" true
    (warm.Sched.Solve.stats.Fd.Search.nodes
    <= cold.Sched.Solve.stats.Fd.Search.nodes)

let test_warm_bound_below_optimum_is_sound () =
  (* a seed strictly below the true optimum (168) makes the seeded run
     infeasible; the solver must fall back to a cold re-solve and still
     prove Optimal 168 — never report the lie *)
  let g = qrd_ir () in
  List.iter
    (fun seed ->
      let o = solve ~warm_bound:seed g in
      Alcotest.(check bool)
        (Printf.sprintf "optimal despite seed %d" seed)
        true
        (o.Sched.Solve.status = Sched.Solve.Optimal);
      match o.Sched.Solve.schedule with
      | Some sch ->
        Alcotest.(check int)
          (Printf.sprintf "makespan 168 despite seed %d" seed)
          168 sch.Sched.Schedule.makespan
      | None -> Alcotest.fail "optimal without schedule")
    [ 100; 167 ]

let test_warm_on_infeasible_instance () =
  (* 5 simultaneously-live vectors cannot fit 2 slots; a warm seed must
     not turn the honest Infeasible into anything else *)
  let ctx = Dsl.create () in
  let inputs =
    List.init 5 (fun i ->
        Dsl.vector_input_f ctx [ float_of_int i; 0.; 0.; 0. ])
  in
  ignore
    (List.fold_left
       (fun acc v -> Dsl.v_add ctx acc v)
       (List.hd inputs) (List.tl inputs));
  let g = Dsl.graph ctx in
  let arch = Arch.with_slots Arch.default 2 in
  let cold = solve ~arch g in
  let warm = solve ~arch ~warm_bound:200 g in
  Alcotest.(check bool) "cold verdict is a proof" true
    (cold.Sched.Solve.status = Sched.Solve.Infeasible
    || cold.Sched.Solve.status = Sched.Solve.Feasible_timeout);
  Alcotest.(check bool) "warm verdict matches cold" true
    (warm.Sched.Solve.status = cold.Sched.Solve.status);
  Alcotest.(check bool) "no schedule either way" true
    (warm.Sched.Solve.schedule = None && cold.Sched.Solve.schedule = None)

(* --------------------- store policy / poisoning ---------------------- *)

let test_timeout_never_stored () =
  let g = qrd_ir () in
  let cache = Cache.create ~capacity:4 in
  let o =
    Sched.Solve.run ~budget:(Fd.Search.node_budget 1) ~cache g
  in
  Alcotest.(check bool) "starved run is not optimal" true
    (o.Sched.Solve.status <> Sched.Solve.Optimal);
  Alcotest.(check int) "nothing cached" 0 (Cache.length cache);
  (* and the next full solve is an honest miss, not a poisoned hit *)
  let o2 = solve ~cache g in
  Alcotest.(check bool) "full solve does not hit" false
    o2.Sched.Solve.from_cache;
  match o2.Sched.Solve.schedule with
  | Some sch -> Alcotest.(check int) "true optimum" 168 sch.Sched.Schedule.makespan
  | None -> Alcotest.fail "expected schedule"

let test_chaos_never_touches_cache () =
  let g = qrd_ir () in
  let cache = Cache.create ~capacity:4 in
  ignore (solve ~cache g); (* a clean entry is present *)
  Alcotest.(check int) "one entry" 1 (Cache.length cache);
  let chaos = Fd.Chaos.create ~seed:7 () in
  let o = Sched.Solve.run ~chaos ~cache g in
  Alcotest.(check bool) "chaos run never hits" false o.Sched.Solve.from_cache;
  let s = Cache.stats cache in
  Alcotest.(check int) "chaos run never consults" 0 s.Cache.hits;
  Alcotest.(check int) "chaos run never stores" 1 (Cache.length cache)

let test_infeasible_proof_is_cached () =
  let ctx = Dsl.create () in
  let inputs =
    List.init 5 (fun i ->
        Dsl.vector_input_f ctx [ float_of_int i; 0.; 0.; 0. ])
  in
  ignore
    (List.fold_left
       (fun acc v -> Dsl.v_add ctx acc v)
       (List.hd inputs) (List.tl inputs));
  let g = Dsl.graph ctx in
  let arch = Arch.with_slots Arch.default 2 in
  let cache = Cache.create ~capacity:4 in
  let cold = solve ~arch ~cache g in
  if cold.Sched.Solve.status = Sched.Solve.Infeasible then begin
    let hit = solve ~arch ~cache g in
    Alcotest.(check bool) "infeasibility proof replays" true
      hit.Sched.Solve.from_cache;
    Alcotest.(check bool) "still infeasible" true
      (hit.Sched.Solve.status = Sched.Solve.Infeasible);
    Alcotest.(check int) "0 propagations" 0
      hit.Sched.Solve.stats.Fd.Search.propagations
  end

(* ------------------------ LRU bookkeeping ---------------------------- *)

let test_lru_eviction_and_counters () =
  let g = qrd_ir () in
  let cache = Cache.create ~capacity:2 in
  let arches =
    [ Arch.default; Arch.with_slots Arch.default 20;
      Arch.with_slots Arch.default 30 ]
  in
  List.iter (fun arch -> ignore (solve ~arch ~cache g)) arches;
  Alcotest.(check int) "bounded at capacity" 2 (Cache.length cache);
  let s = Cache.stats cache in
  Alcotest.(check int) "three stores" 3 s.Cache.stores;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "three misses" 3 s.Cache.misses;
  (* the oldest entry (default arch) was the one evicted *)
  let o = solve ~cache g in
  Alcotest.(check bool) "evicted entry misses" false o.Sched.Solve.from_cache;
  let o20 = solve ~arch:(Arch.with_slots Arch.default 30) ~cache g in
  Alcotest.(check bool) "recent entry hits" true o20.Sched.Solve.from_cache

let test_capacity_zero_disables () =
  let g = qrd_ir () in
  let cache = Cache.create ~capacity:0 in
  ignore (solve ~cache g);
  ignore (solve ~cache g);
  Alcotest.(check int) "nothing retained" 0 (Cache.length cache)

let test_hint_noted () =
  let g = qrd_ir () in
  let cache = Cache.create ~capacity:4 in
  ignore (solve ~cache g);
  Alcotest.(check (option int)) "shape hint records the optimum" (Some 168)
    (Cache.hint cache ~shape:(K.shape_digest g))

(* -------------------------- persistence ------------------------------ *)

let test_persistence_roundtrip () =
  let g = qrd_ir () in
  let cache = Cache.create ~capacity:4 in
  ignore (solve ~cache g);
  let path = Filename.temp_file "eitc_cache" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Cache.save cache path;
      match Cache.load ~capacity:4 path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok loaded ->
        Alcotest.(check int) "entry survives the round trip" 1
          (Cache.length loaded);
        Alcotest.(check (option int)) "hint survives the round trip"
          (Some 168)
          (Cache.hint loaded ~shape:(K.shape_digest g));
        let hit = solve ~cache:loaded g in
        Alcotest.(check bool) "hit from the loaded cache" true
          hit.Sched.Solve.from_cache;
        (match hit.Sched.Solve.schedule with
        | Some sch ->
          Alcotest.(check int) "replayed optimum" 168 sch.Sched.Schedule.makespan
        | None -> Alcotest.fail "expected schedule"))

let test_corrupt_cache_file_rejected () =
  let path = Filename.temp_file "eitc_cache" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "this is not json");
      (match Cache.load ~capacity:4 path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage accepted");
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "{\"version\": 1}");
      match Cache.load ~capacity:4 path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated document accepted")

let suite =
  [
    key_blind_to_node_order;
    edge_mutation_changes_key;
    Alcotest.test_case "every arch knob changes the key" `Quick
      test_arch_knobs_change_key;
    Alcotest.test_case "every solve option changes the key" `Quick
      test_opts_change_key;
    Alcotest.test_case "labels and trace values are excluded" `Quick
      test_labels_values_excluded;
    Alcotest.test_case "key repr round-trips" `Quick test_key_repr_roundtrip;
    differential_hit_replays_cold;
    Alcotest.test_case "isomorphic request hits and revalidates" `Quick
      test_isomorphic_request_hits;
    warm_same_optimum;
    Alcotest.test_case "warm start on an edited arch" `Slow
      test_warm_edited_arch_same_optimum;
    Alcotest.test_case "seed below the optimum stays sound" `Slow
      test_warm_bound_below_optimum_is_sound;
    Alcotest.test_case "warm seed cannot mask infeasibility" `Quick
      test_warm_on_infeasible_instance;
    Alcotest.test_case "timeouts are never cached" `Quick
      test_timeout_never_stored;
    Alcotest.test_case "chaos runs never touch the cache" `Quick
      test_chaos_never_touches_cache;
    Alcotest.test_case "infeasibility proofs are cached" `Quick
      test_infeasible_proof_is_cached;
    Alcotest.test_case "LRU eviction and counters" `Slow
      test_lru_eviction_and_counters;
    Alcotest.test_case "capacity 0 disables the cache" `Quick
      test_capacity_zero_disables;
    Alcotest.test_case "warm hints are recorded" `Quick test_hint_noted;
    Alcotest.test_case "persistence round-trips" `Quick
      test_persistence_roundtrip;
    Alcotest.test_case "corrupt cache files are rejected" `Quick
      test_corrupt_cache_file_rejected;
  ]
