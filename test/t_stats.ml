(* Eit_dsl.Stats.of_ir: hand-built graphs with known shapes, the
   category breakdown, architecture sensitivity of the critical path,
   and the merged-kernel ground truths the paper tables rest on. *)

open Eit_dsl

let check_shape name ~v ~e ~v_data (s : Stats.t) =
  Alcotest.(check int) (name ^ " |V|") v s.Stats.v;
  Alcotest.(check int) (name ^ " |E|") e s.Stats.e;
  Alcotest.(check int) (name ^ " #v_data") v_data s.Stats.v_data

(* The by_category list must partition the node set. *)
let check_partition name g (s : Stats.t) =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 s.Stats.by_category in
  Alcotest.(check int) (name ^ " categories partition V") (Ir.size g) total;
  List.iter
    (fun (c, n) ->
      Alcotest.(check int)
        (name ^ " count " ^ Ir.category_name c)
        (Ir.count g c) n)
    s.Stats.by_category

let op_latency_sum ?(arch = Eit.Arch.default) g =
  List.fold_left
    (fun acc i -> acc + Eit.Arch.latency arch (Ir.opcode g i))
    0 (Ir.op_nodes g)

let test_chain () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let b = Dsl.vector_input_f ctx [ 5.; 6.; 7.; 8. ] in
  let c = Dsl.v_conj ctx a in
  let _d = Dsl.v_dotp ctx c b in
  let g = Dsl.graph ctx in
  let s = Stats.of_ir g in
  (* each op contributes an op node, a result data node and the edges
     into/out of the op: 2 inputs + 2 ops + 2 results *)
  check_shape "chain" ~v:6 ~e:5 ~v_data:3 s;
  check_partition "chain" g s;
  (* a pure chain's critical path is the sum of its op latencies *)
  Alcotest.(check int) "chain |Cr.P|" (op_latency_sum g) s.Stats.crp

let test_diamond () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let c1 = Dsl.v_conj ctx a in
  let c2 = Dsl.v_neg ctx a in
  let _d = Dsl.v_add ctx c1 c2 in
  let g = Dsl.graph ctx in
  let s = Stats.of_ir g in
  check_shape "diamond" ~v:7 ~e:7 ~v_data:4 s;
  (* both branches are single vector ops, so |Cr.P| is one branch plus
     the join — two vector latencies, strictly less than the three-op
     total *)
  Alcotest.(check int) "diamond |Cr.P|"
    (2 * Eit.Arch.default.Eit.Arch.vector_latency)
    s.Stats.crp

let test_arch_sensitivity () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let b = Dsl.v_conj ctx a in
  let c = Dsl.v_neg ctx b in
  let _d = Dsl.v_abs ctx c in
  let g = Dsl.graph ctx in
  let deep =
    { Eit.Arch.default with Eit.Arch.vector_latency =
        (2 * Eit.Arch.default.Eit.Arch.vector_latency) }
  in
  let s0 = Stats.of_ir g and s1 = Stats.of_ir ~arch:deep g in
  (* structure is arch-independent, the critical path is not *)
  Alcotest.(check int) "same |V|" s0.Stats.v s1.Stats.v;
  Alcotest.(check int) "same |E|" s0.Stats.e s1.Stats.e;
  Alcotest.(check int) "same #v_data" s0.Stats.v_data s1.Stats.v_data;
  Alcotest.(check int) "deeper pipeline" (op_latency_sum ~arch:deep g)
    s1.Stats.crp;
  Alcotest.(check bool) "crp grew" true (s1.Stats.crp > s0.Stats.crp)

let test_empty () =
  let g = Dsl.graph (Dsl.create ()) in
  let s = Stats.of_ir g in
  check_shape "empty" ~v:0 ~e:0 ~v_data:0 s;
  Alcotest.(check int) "empty |Cr.P|" 0 s.Stats.crp

(* The merged kernels: the shapes every table in BENCH/EXPERIMENTS
   quotes.  A change here silently shifts all downstream numbers. *)
let test_kernel_ground_truths () =
  let merged g = (Merge.run g).Merge.graph in
  List.iter
    (fun (name, g, v, e, crp, v_data) ->
      let s = Stats.of_ir (merged g) in
      check_shape name ~v ~e ~v_data s;
      Alcotest.(check int) (name ^ " |Cr.P|") crp s.Stats.crp;
      check_partition name (merged g) s)
    [
      ("QRD", Apps.Qrd.graph (Apps.Qrd.build ()), 133, 190, 168, 32);
      ( "QRD-sorted",
        Apps.Qrd.graph (Apps.Qrd.build ~sorted:true ()),
        139, 203, 168, 35 );
      ("ARF", Apps.Arf.graph (Apps.Arf.build ()), 82, 84, 56, 38);
      ("MATMUL", Apps.Matmul.graph (Apps.Matmul.build ()), 44, 68, 8, 8);
    ]

let suite =
  [
    Alcotest.test_case "chain shape" `Quick test_chain;
    Alcotest.test_case "diamond shape" `Quick test_diamond;
    Alcotest.test_case "arch sensitivity" `Quick test_arch_sensitivity;
    Alcotest.test_case "empty graph" `Quick test_empty;
    Alcotest.test_case "kernel ground truths" `Quick test_kernel_ground_truths;
  ]
