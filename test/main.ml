let () =
  Alcotest.run "vecsched"
    [
      ("fd.dom", T_dom.suite);
      ("fd.store", T_store.suite);
      ("fd.entail", T_entail.suite);
      ("fd.arith", T_arith.suite);
      ("fd.cumulative", T_cumulative.suite);
      ("fd.diff2", T_diff2.suite);
      ("fd.cond+geometry", T_cond_geometry.suite);
      ("fd.search", T_search.suite);
      ("fd.extra", T_fd_extra.suite);
      ("eit.cplx", T_cplx.suite);
      ("eit.opcode", T_opcode.suite);
      ("eit.arch+mem", T_arch_mem.suite);
      ("eit.machine", T_machine.suite);
      ("eit.asm", T_asm.suite);
      ("dsl.ir", T_ir.suite);
      ("dsl.dsl", T_dsl.suite);
      ("dsl.merge", T_merge.suite);
      ("dsl.xml+dot", T_xml_dot.suite);
      ("apps", T_apps.suite);
      ("sched.schedule", T_schedule.suite);
      ("sched.model", T_model_solve.suite);
      ("sched.codegen", T_codegen.suite);
      ("sched.overlap", T_overlap.suite);
      ("sched.modulo", T_modulo.suite);
      ("extensions", T_extensions.suite);
      ("sched.dynamic", T_dynamic.suite);
      ("sched.bounds", T_bounds_table.suite);
      ("sched.heuristic", T_heuristic.suite);
      ("integration", T_integration.suite);
      ("more", T_more.suite);
      ("robust", T_robust.suite);
      ("obs", T_obs.suite);
      ("obs.analyze", T_analyze.suite);
      ("dsl.stats", T_stats.suite);
    ]
