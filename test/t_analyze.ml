(* Obs.Analyze: span-forest reconstruction, folded stacks, utilization,
   trace diff / regression gate — plus a QCheck round-trip for the JSON
   layer both sides share. *)

module J = Obs.Json
module A = Obs.Analyze

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* --------------------- JSON round-trip (QCheck) ---------------------- *)

(* Finite floats only (the serializer maps non-finite to 0); cover
   integers, decimals and awkward precision cases. *)
let gen_num =
  QCheck2.Gen.(
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        float_bound_inclusive 1e9;
        map
          (fun (a, b) -> float_of_int a /. (10. ** float_of_int b))
          (pair (int_range (-10_000) 10_000) (int_bound 6));
        oneofl [ 0.; -0.; 0.1; 1e-7; 3.141592653589793; 1e15; 1e22 ];
      ])

let gen_str =
  QCheck2.Gen.(
    oneof
      [
        string_size ~gen:printable (int_bound 12);
        (* escapes and raw high bytes *)
        oneofl [ "a\"b"; "back\\slash"; "tab\tnl\n"; "\001ctrl"; "caf\xc3\xa9" ];
      ])

let gen_json =
  QCheck2.Gen.(
    sized_size (int_bound 3) @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return J.Null;
              map (fun b -> J.Bool b) bool;
              map (fun f -> J.Num f) gen_num;
              map (fun s -> J.Str s) gen_str;
            ]
        in
        if n = 0 then leaf
        else
          frequency
            [
              (2, leaf);
              ( 2,
                map (fun l -> J.Arr l) (list_size (int_bound 4) (self (n - 1)))
              );
              ( 2,
                map
                  (fun l -> J.Obj l)
                  (list_size (int_bound 4) (pair gen_str (self (n - 1)))) );
            ]))

(* Object round-trip goes through assoc lists: duplicate keys survive
   serialization, so equality is plain structural equality. *)
let json_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parse (to_string t) = Ok t" ~count:500 gen_json
       (fun t -> J.parse (J.to_string t) = Ok t))

(* --------------------- hand-built span forest ------------------------ *)

let obj fields = J.Obj fields

let span_ev ph name ts =
  obj
    [
      ("name", J.Str name); ("cat", J.Str "sched"); ("ph", J.Str ph);
      ("ts", J.Num ts); ("pid", J.Num 1.); ("tid", J.Num 0.);
      ("args", J.Obj []);
    ]

let trace ?(other = []) evs =
  obj [ ("traceEvents", J.Arr evs); ("otherData", J.Obj other) ]

(* a[0..100] containing b[10..30] and X x[40..45]:
   incl a=100 b=20 x=5; excl a=75. *)
let hand_trace () =
  trace
    ~other:[ ("kernel", J.Str "hand"); ("mode", J.Str "sequential") ]
    [
      span_ev "B" "a" 0.;
      span_ev "B" "b" 10.;
      span_ev "E" "b" 30.;
      obj
        [
          ("name", J.Str "x"); ("cat", J.Str "sched"); ("ph", J.Str "X");
          ("ts", J.Num 40.); ("dur", J.Num 5.); ("pid", J.Num 1.);
          ("tid", J.Num 0.); ("args", J.Obj []);
        ];
      span_ev "E" "a" 100.;
    ]

let summary_of_exn j =
  match A.of_json j with Ok s -> s | Error e -> Alcotest.fail e

let test_incl_excl () =
  let s = summary_of_exn (hand_trace ()) in
  let tr =
    match s.A.sm_tracks with [ t ] -> t | _ -> Alcotest.fail "one track"
  in
  let a =
    match tr.A.tr_roots with [ a ] -> a | _ -> Alcotest.fail "one root"
  in
  Alcotest.(check string) "root name" "a" a.A.n_name;
  Alcotest.(check (float 1e-9)) "a incl" 100. a.A.n_incl;
  Alcotest.(check (float 1e-9)) "a excl" 75. a.A.n_excl;
  (match a.A.n_children with
  | [ b; x ] ->
    Alcotest.(check string) "child order" "b" b.A.n_name;
    Alcotest.(check (float 1e-9)) "b incl" 20. b.A.n_incl;
    Alcotest.(check (float 1e-9)) "b excl" 20. b.A.n_excl;
    Alcotest.(check (float 1e-9)) "x incl" 5. x.A.n_incl
  | _ -> Alcotest.fail "two children");
  Alcotest.(check string) "otherData label" "kernel=hand mode=sequential"
    (A.label s);
  match A.critical_path s with
  | [ r; c ] ->
    Alcotest.(check string) "critical root" "a" r.A.n_name;
    Alcotest.(check string) "critical child" "b" c.A.n_name
  | p -> Alcotest.failf "critical path length %d" (List.length p)

(* An unclosed span is closed at the track's last timestamp instead of
   being dropped (Analyze is lenient where Check is strict). *)
let test_unclosed_lenient () =
  let s =
    summary_of_exn (trace [ span_ev "B" "a" 0.; span_ev "B" "b" 10. ])
  in
  let tr = List.hd s.A.sm_tracks in
  let a = List.hd tr.A.tr_roots in
  Alcotest.(check (float 1e-9)) "a closed at last ts" 10. a.A.n_incl

(* --------------------- folded stacks --------------------------------- *)

let test_folded () =
  let s = summary_of_exn (hand_trace ()) in
  let path = tmp "t_analyze.folded" in
  A.write_folded path s;
  let lines =
    In_channel.with_open_bin path In_channel.input_lines
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "three stacks" 3 (List.length lines);
  (* collapsed-stack grammar: "frame(;frame)* <int >= 0>"; the label
     frame of an unnamed pid-1 track is "pid1/tid0" *)
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "no value in %S" line
      | Some i ->
        let stack = String.sub line 0 i in
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        (match int_of_string_opt v with
        | Some n -> Alcotest.(check bool) "value >= 0" true (n >= 0)
        | None -> Alcotest.failf "non-integer value %S in %S" v line);
        Alcotest.(check bool) "frames non-empty" true
          (List.for_all
             (fun f -> String.length f > 0)
             (String.split_on_char ';' stack)))
    lines;
  let assoc = A.folded s in
  Alcotest.(check (float 1e-9)) "a excl" 75.
    (List.assoc "pid1/tid0;a" assoc);
  Alcotest.(check (float 1e-9)) "a;b excl" 20.
    (List.assoc "pid1/tid0;a;b" assoc)

(* --------------------- utilization ----------------------------------- *)

let machine_ev name ts args =
  obj
    ([
       ("name", J.Str name); ("cat", J.Str "machine"); ("ph", J.Str "C");
       ("ts", J.Num ts); ("pid", J.Num 2.); ("tid", J.Num 0.);
     ]
    @ [ ("args", J.Obj args) ])

(* Synthetic 2-lane timeline over 4 cycles: busy 2,2,1,0 -> 5 busy
   lane-cycles, util 5/(4*2) = 62.5%; peak accesses = max(r+w) = 3. *)
let test_utilization () =
  let evs =
    [
      machine_ev "lanes" 0. [ ("busy", J.Num 2.) ];
      machine_ev "lanes" 1. [ ("busy", J.Num 2.) ];
      machine_ev "lanes" 2. [ ("busy", J.Num 1.) ];
      machine_ev "lanes" 3. [ ("busy", J.Num 0.) ];
      machine_ev "bank-ports" 0. [ ("reads", J.Num 2.); ("writes", J.Num 1.) ];
      machine_ev "bank-ports" 1. [ ("reads", J.Num 1.); ("writes", J.Num 0.) ];
      obj
        [
          ("name", J.Str "vmul"); ("cat", J.Str "machine"); ("ph", J.Str "X");
          ("ts", J.Num 0.); ("dur", J.Num 2.); ("pid", J.Num 2.);
          ("tid", J.Num 0.); ("args", J.Obj []);
        ];
    ]
  in
  let s = summary_of_exn (trace evs) in
  match s.A.sm_machine with
  | None -> Alcotest.fail "expected machine stats"
  | Some m ->
    Alcotest.(check int) "cycles" 4 m.A.mc_cycles;
    Alcotest.(check int) "busy lane-cycles" 5 m.A.mc_busy_lane_cycles;
    Alcotest.(check int) "peak lanes" 2 m.A.mc_peak_lanes;
    Alcotest.(check (float 1e-9)) "avg lanes" 1.25 m.A.mc_avg_lanes;
    Alcotest.(check (float 1e-9)) "lane util %" 62.5 m.A.mc_lane_util;
    Alcotest.(check int) "peak accesses" 3 m.A.mc_peak_accesses;
    Alcotest.(check int) "peak reads" 2 m.A.mc_peak_reads;
    Alcotest.(check (list (pair int int))) "read histogram"
      [ (1, 1); (2, 1) ] m.A.mc_read_hist;
    (match m.A.mc_unit_busy with
    | [ (_, busy) ] -> Alcotest.(check int) "unit busy cycles" 2 busy
    | l -> Alcotest.failf "unit count %d" (List.length l))

(* --------------------- diff + regression gate ------------------------ *)

let prof_ev name runs =
  obj
    [
      ("name", J.Str name); ("cat", J.Str "propagator"); ("ph", J.Str "i");
      ("ts", J.Num 0.); ("pid", J.Num 1.); ("tid", J.Num 0.);
      ( "args",
        J.Obj
          [
            ("runs", J.Num (float_of_int runs)); ("wakes", J.Num 0.);
            ("prunes", J.Num 0.); ("time_ms", J.Num 0.);
          ] );
    ]

let instant_ev name =
  obj
    [
      ("name", J.Str name); ("cat", J.Str "search"); ("ph", J.Str "i");
      ("ts", J.Num 1.); ("pid", J.Num 1.); ("tid", J.Num 0.);
      ("args", J.Obj []);
    ]

let test_diff_gate () =
  let base = trace [ prof_ev "arith" 100; prof_ev "diff2" 40; instant_ev "branch" ] in
  let self = A.diff (summary_of_exn base) (summary_of_exn base) in
  Alcotest.(check (list string)) "self-diff has no regressions" []
    (A.regressions ~threshold:1. self);
  (* doctored: arith +50% runs must trip the 10% gate *)
  let doctored = trace [ prof_ev "arith" 150; prof_ev "diff2" 40; instant_ev "branch" ] in
  let d = A.diff (summary_of_exn base) (summary_of_exn doctored) in
  let rs = A.regressions d in
  Alcotest.(check bool) "doctored +50% flagged" true
    (List.exists
       (fun r ->
         let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length r && (String.sub r i n = sub || go (i + 1))
           in
           go 0
         in
         has "propagations/arith")
       rs);
  (* totals are watched too *)
  Alcotest.(check bool) "total flagged" true
    (List.exists
       (fun r -> String.length r >= 19 && String.sub r 0 19 = "propagations/total:")
       rs);
  (* a shrinking counter never gates *)
  let improved = trace [ prof_ev "arith" 50; prof_ev "diff2" 40; instant_ev "branch" ] in
  Alcotest.(check (list string)) "improvement passes" []
    (A.regressions (A.diff (summary_of_exn base) (summary_of_exn improved)))

let test_diff_structure () =
  let b =
    trace [ span_ev "B" "a" 0.; span_ev "E" "a" 10. ]
  in
  let a =
    trace
      [
        span_ev "B" "a" 0.; span_ev "E" "a" 30.;
        span_ev "B" "c" 30.; span_ev "E" "c" 40.;
      ]
  in
  let d = A.diff (summary_of_exn b) (summary_of_exn a) in
  (match d.A.df_spans with
  | [ sd ] ->
    Alcotest.(check (float 1e-9)) "before total" 10. sd.A.sd_total_b;
    Alcotest.(check (float 1e-9)) "after total" 30. sd.A.sd_total_a
  | l -> Alcotest.failf "matched spans %d" (List.length l));
  Alcotest.(check int) "one new span" 1 (List.length d.A.df_new);
  Alcotest.(check int) "no vanished spans" 0 (List.length d.A.df_gone)

(* --------------------- real trace: Agg agreement --------------------- *)

(* Acceptance: the report's root inclusive time (heaviest sched root,
   i.e. cp-search) matches Obs.Agg's span total within 1%. *)
let test_root_matches_agg () =
  let path = tmp "t_analyze_qrd.json" in
  let g =
    (Eit_dsl.Merge.run (Apps.Qrd.graph (Apps.Qrd.build ())))
      .Eit_dsl.Merge.graph
  in
  let agg = Obs.Agg.create () in
  let h_chrome = Obs.attach (Obs.Chrome.sink ~path ()) in
  let h_agg = Obs.attach (Obs.Agg.sink agg) in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
  Obs.detach h_agg;
  Obs.detach h_chrome;
  Alcotest.(check bool) "solved" true (o.Sched.Solve.schedule <> None);
  let s =
    match A.of_file path with Ok s -> s | Error e -> Alcotest.fail e
  in
  let root =
    match A.root_inclusive s with
    | Some r -> r
    | None -> Alcotest.fail "no critical path"
  in
  let agg_total =
    match List.assoc_opt "cp-search" (Obs.Agg.spans agg) with
    | Some st -> st.Obs.Agg.s_total_us
    | None -> Alcotest.fail "Agg has no cp-search span"
  in
  Alcotest.(check bool)
    (Printf.sprintf "analyze %.1f us vs agg %.1f us within 1%%" root agg_total)
    true
    (Float.abs (root -. agg_total) <= 0.01 *. agg_total);
  (* and the real folded output obeys the grammar *)
  let fpath = tmp "t_analyze_qrd.folded" in
  A.write_folded fpath s;
  List.iter
    (fun line ->
      if line <> "" then
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no value in %S" line
        | Some i -> (
          match
            int_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
          with
          | Some n when n >= 0 -> ()
          | _ -> Alcotest.failf "bad value in %S" line))
    (In_channel.with_open_bin fpath In_channel.input_lines)

let suite =
  [
    json_roundtrip;
    Alcotest.test_case "inclusive/exclusive times" `Quick test_incl_excl;
    Alcotest.test_case "unclosed span closed at last ts" `Quick
      test_unclosed_lenient;
    Alcotest.test_case "folded stacks grammar + values" `Quick test_folded;
    Alcotest.test_case "synthetic 2-lane utilization" `Quick test_utilization;
    Alcotest.test_case "diff regression gate" `Quick test_diff_gate;
    Alcotest.test_case "diff structure (new/changed spans)" `Quick
      test_diff_structure;
    Alcotest.test_case "root inclusive matches Agg within 1%" `Quick
      test_root_matches_agg;
  ]
