(* The CP model: small hand-built IRs with known optimal schedules, the
   memory constraints, and the memory-off ablation. *)

open Eit_dsl
open Eit

let solve ?(slots = None) ?(memory = true) ?(budget = 10_000.) g =
  let arch =
    match slots with None -> Arch.default | Some n -> Arch.with_slots Arch.default n
  in
  Sched.Solve.run ~budget:(Fd.Search.time_budget budget) ~memory ~arch g

let makespan o =
  match o.Sched.Solve.schedule with
  | Some sch -> sch.Sched.Schedule.makespan
  | None -> -1

(* chain of n dependent vector adds: optimal makespan = 7n *)
let chain n =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 1.; 1.; 1. ] in
  let v = ref a in
  for _ = 1 to n do
    v := Dsl.v_add ctx !v a
  done;
  Dsl.graph ctx

let test_chain_optimal () =
  let o = solve (chain 3) in
  Alcotest.(check bool) "optimal" true (o.Sched.Solve.status = Sched.Solve.Optimal);
  Alcotest.(check int) "makespan 21" 21 (makespan o)

(* k independent same-op vector adds: they all fit in ceil(k/4) cycles *)
let independent k =
  let ctx = Dsl.create () in
  for i = 0 to k - 1 do
    let a = Dsl.vector_input_f ctx [ float_of_int i; 0.; 0.; 0. ] in
    ignore (Dsl.v_add ctx a a)
  done;
  Dsl.graph ctx

let test_lane_packing () =
  (* 8 identical adds: 2 issue cycles; makespan = 1 + 7 = 8 *)
  let o = solve (independent 8) in
  Alcotest.(check int) "makespan" 8 (makespan o)

(* two ops with different configurations cannot share a cycle *)
let test_config_serialization () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let _ = Dsl.v_add ctx a a in
  let _ = Dsl.v_mul ctx a a in
  let o = solve (Dsl.graph ctx) in
  (* second op issues at cycle 1: makespan 1 + 7 *)
  Alcotest.(check int) "makespan" 8 (makespan o)

let test_same_config_parallel () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let _ = Dsl.v_add ctx a a in
  let _ = Dsl.v_add ctx a a in
  let o = solve (Dsl.graph ctx) in
  Alcotest.(check int) "co-issued" 7 (makespan o)

let test_matrix_exclusive () =
  (* a matrix op plus a vector op: cannot share the core *)
  let ctx = Dsl.create () in
  let m = Dsl.matrix_input_f ctx [ [1.;0.;0.;0.]; [0.;1.;0.;0.]; [0.;0.;1.;0.]; [0.;0.;0.;1.] ] in
  let _ = Dsl.m_squsum ctx m in
  let _ = Dsl.v_add ctx (Dsl.row m 0) (Dsl.row m 1) in
  let o = solve (Dsl.graph ctx) in
  Alcotest.(check int) "serialized" 8 (makespan o)

let test_scalar_unit_serial () =
  (* two independent sqrt ops share the single accelerator *)
  let ctx = Dsl.create () in
  let x = Dsl.scalar_input_f ctx 4. and y = Dsl.scalar_input_f ctx 9. in
  let _ = Dsl.s_sqrt ctx x in
  let _ = Dsl.s_sqrt ctx y in
  let o = solve (Dsl.graph ctx) in
  Alcotest.(check int) "makespan 8" 8 (makespan o)

let test_memory_infeasible () =
  (* 5 vectors alive simultaneously cannot fit in 2 slots *)
  let ctx = Dsl.create () in
  let inputs = List.init 5 (fun i -> Dsl.vector_input_f ctx [ float_of_int i; 0.; 0.; 0. ]) in
  (* one op consuming... keep all alive by a final chain of adds *)
  let acc = List.fold_left (fun acc v -> Dsl.v_add ctx acc v) (List.hd inputs) (List.tl inputs) in
  ignore acc;
  let g = Dsl.graph ctx in
  let o = solve ~slots:(Some 2) g in
  (match o.Sched.Solve.status with
  | Sched.Solve.Infeasible | Sched.Solve.Feasible_timeout -> ()
  | s ->
    Alcotest.failf "expected infeasible/feasible-timeout, got %a"
      Sched.Solve.pp_status s);
  (* the greedy fallback cannot conjure slots either *)
  Alcotest.(check bool) "no schedule" true (o.Sched.Solve.schedule = None)

let test_memory_off_ablation () =
  (* without memory constraints, 2 slots are no obstacle *)
  let ctx = Dsl.create () in
  let inputs = List.init 5 (fun i -> Dsl.vector_input_f ctx [ float_of_int i; 0.; 0.; 0. ]) in
  let _ = List.fold_left (fun acc v -> Dsl.v_add ctx acc v) (List.hd inputs) (List.tl inputs) in
  let g = Dsl.graph ctx in
  let o = solve ~slots:(Some 2) ~memory:false g in
  Alcotest.(check bool) "schedulable without memory model" true
    (o.Sched.Solve.schedule <> None)

let test_page_line_rule_enforced () =
  (* A matrix op reads 4 vectors at once; with a single line per bank
     group... force a tiny memory where the rule binds: 8 slots = 2
     pages? 8 slots over 16 banks = all on line 0 -> always same line.
     Instead check the model's allocation on a real kernel respects the
     operational checker. *)
  let g = (Merge.run (Apps.Matmul.graph (Apps.Matmul.build ()))).Merge.graph in
  let o = solve g in
  match o.Sched.Solve.schedule with
  | Some sch -> Alcotest.(check bool) "validator clean" true (Sched.Schedule.is_valid sch)
  | None -> Alcotest.fail "no schedule"

let test_makespan_equals_crp_when_uncontended () =
  let g = (Merge.run (Apps.Arf.graph (Apps.Arf.build ()))).Merge.graph in
  let o = solve ~budget:20_000. g in
  Alcotest.(check int) "ARF = critical path" (Ir.critical_path g Arch.default)
    (makespan o)

let test_horizon_estimate_safe () =
  let g = chain 4 in
  let h = Sched.Model.horizon_estimate g Arch.default in
  Alcotest.(check bool) "horizon covers optimum" true (h >= 28)

let suite =
  [
    Alcotest.test_case "chain optimal" `Quick test_chain_optimal;
    Alcotest.test_case "lane packing" `Quick test_lane_packing;
    Alcotest.test_case "config serialization" `Quick test_config_serialization;
    Alcotest.test_case "same-config parallel" `Quick test_same_config_parallel;
    Alcotest.test_case "matrix exclusivity" `Quick test_matrix_exclusive;
    Alcotest.test_case "scalar unit serial" `Quick test_scalar_unit_serial;
    Alcotest.test_case "memory infeasible" `Quick test_memory_infeasible;
    Alcotest.test_case "memory-off ablation" `Quick test_memory_off_ablation;
    Alcotest.test_case "page-line rule" `Quick test_page_line_rule_enforced;
    Alcotest.test_case "uncontended = critical path" `Quick test_makespan_equals_crp_when_uncontended;
    Alcotest.test_case "horizon estimate" `Quick test_horizon_estimate_safe;
  ]
