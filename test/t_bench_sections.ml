(* The shared bench-section passthrough list: sections the comparison
   gate must ignore and the report rewriters must carry over verbatim.
   Pinned here so adding a section without updating the gate fails a
   test instead of silently breaking `bench compare`. *)

module B = Vecsched_core.Bench_sections
module J = Obs.Json

let test_passthrough_pinned () =
  Alcotest.(check (list string))
    "exactly the service, cache and metrics sections pass through"
    [ "service"; "cache"; "metrics" ] B.passthrough

let test_is_passthrough () =
  Alcotest.(check bool) "service" true (B.is_passthrough "service");
  Alcotest.(check bool) "cache" true (B.is_passthrough "cache");
  Alcotest.(check bool) "metrics" true (B.is_passthrough "metrics");
  Alcotest.(check bool) "runs is gated" false (B.is_passthrough "runs");
  Alcotest.(check bool) "unknown" false (B.is_passthrough "nope")

let test_keep () =
  let doc =
    J.Obj
      [
        ("runs", J.Arr []);
        ("metrics", J.Obj [ ("p99_hist_ms", J.Num 2. ) ]);
        ("cache", J.Obj [ ("hit_rate", J.Num 0.5) ]);
        ("service", J.Obj [ ("p50", J.Num 1.) ]);
      ]
  in
  let kept = B.keep doc in
  Alcotest.(check (list string)) "kept in passthrough order"
    [ "service"; "cache"; "metrics" ]
    (List.map fst kept);
  Alcotest.(check (list string)) "nothing kept from an empty doc" []
    (List.map fst (B.keep (J.Obj [])))

let suite =
  [
    Alcotest.test_case "passthrough list is pinned" `Quick
      test_passthrough_pinned;
    Alcotest.test_case "is_passthrough" `Quick test_is_passthrough;
    Alcotest.test_case "keep extracts passthrough sections" `Quick test_keep;
  ]
