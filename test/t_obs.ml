(* Observability layer: trace well-formedness, aggregator/store
   agreement, and the zero-allocation disabled path. *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* ------------------------------------------------------------------ *)
(* JSON: parser/serializer round-trip including escapes                *)

let test_json_roundtrip () =
  let open Obs.Json in
  let src = {|{"a": [1, 2.5, -3, "xé\n\"q\"", true, false, null], "b": {}}|} in
  match parse src with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    (match member "a" j with
    | Some (Arr [ Num 1.; Num 2.5; Num -3.; Str s; Bool true; Bool false; Null ]) ->
      Alcotest.(check string) "unicode escape" "x\xc3\xa9\n\"q\"" s
    | _ -> Alcotest.fail "unexpected shape for a");
    (* serializing and reparsing is the identity *)
    match parse (to_string j) with
    | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
    | Error e -> Alcotest.fail e)

let test_json_rejects () =
  List.iter
    (fun src ->
      match Obs.Json.parse src with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" src
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Chrome trace of a real solve: parses, spans balanced and present    *)

let solve_with_trace path kernel =
  let g = (Eit_dsl.Merge.run kernel).Eit_dsl.Merge.graph in
  Obs.with_sink
    (Obs.Chrome.sink ~other_data:[ ("kernel", Obs.S "test") ] ~path ())
    (fun () -> Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g)

let test_trace_wellformed () =
  let path = tmp "t_obs_trace.json" in
  let o = solve_with_trace path (Apps.Matmul.graph (Apps.Matmul.build ())) in
  Alcotest.(check bool) "solved" true (o.Sched.Solve.schedule <> None);
  (match Obs.Check.trace_file path with
  | Ok n -> Alcotest.(check bool) "has events" true (n > 0)
  | Error e -> Alcotest.fail e);
  (* the phase spans and solution events the trace must cover *)
  match Obs.Json.parse_file path with
  | Error e -> Alcotest.fail e
  | Ok j ->
    let events =
      match Obs.Json.member "traceEvents" j with
      | Some (Obs.Json.Arr evs) -> evs
      | _ -> Alcotest.fail "no traceEvents"
    in
    let with_ph ph name =
      List.exists
        (fun ev ->
          Obs.Json.member "ph" ev = Some (Obs.Json.Str ph)
          && Obs.Json.member "name" ev = Some (Obs.Json.Str name))
        events
    in
    List.iter
      (fun name ->
        Alcotest.(check bool) ("span " ^ name) true (with_ph "B" name))
      [ "model-build"; "cp-search"; "search"; "validate" ];
    let objectives =
      List.filter_map
        (fun ev ->
          if Obs.Json.member "name" ev = Some (Obs.Json.Str "solution") then
            Option.bind (Obs.Json.member "args" ev) (Obs.Json.member "objective")
          else None)
        events
    in
    (* B&B objectives improve monotonically down to the optimum *)
    Alcotest.(check bool) "has solutions" true (objectives <> []);
    (match List.rev objectives with
    | Obs.Json.Num last :: _ ->
      Alcotest.(check int) "optimum" 11 (int_of_float last)
    | _ -> Alcotest.fail "no final objective");
    Sys.remove path

(* Nesting violations are detected, not just absence of crashes. *)
let test_check_catches_misnesting () =
  let bad =
    {|{"traceEvents": [
        {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
        {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 0}]}|}
  in
  (match Obs.Json.parse bad with
  | Ok j -> (
    match Obs.Check.trace_json j with
    | Ok _ -> Alcotest.fail "misnested trace accepted"
    | Error _ -> ())
  | Error e -> Alcotest.fail e);
  let unclosed =
    {|{"traceEvents": [{"name": "a", "ph": "B", "ts": 0}]}|}
  in
  match Obs.Json.parse unclosed with
  | Ok j -> (
    match Obs.Check.trace_json j with
    | Ok _ -> Alcotest.fail "unclosed span accepted"
    | Error _ -> ())
  | Error e -> Alcotest.fail e

(* Machine timeline: simulate a scheduled kernel under a sink and check
   the per-cycle lane/port counters and per-issue spans appear. *)
let test_machine_timeline () =
  let g =
    (Eit_dsl.Merge.run (Apps.Matmul.graph (Apps.Matmul.build ())))
      .Eit_dsl.Merge.graph
  in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
  let sch = Option.get o.Sched.Solve.schedule in
  let p = Sched.Codegen.program sch in
  let agg = Obs.Agg.create () in
  Obs.with_sink (Obs.Agg.sink agg) (fun () -> ignore (Eit.Machine.run p));
  let gauges = Obs.Agg.gauges agg in
  let has k = List.mem_assoc k gauges in
  Alcotest.(check bool) "lane gauge" true (has "lanes.busy");
  Alcotest.(check bool) "read-port gauge" true (has "bank-ports.reads");
  Alcotest.(check bool) "write-port gauge" true (has "bank-ports.writes");
  (* the read-port ceiling of the architecture is respected *)
  let _, max_reads = List.assoc "bank-ports.reads" gauges in
  Alcotest.(check bool) "reads within ports" true
    (int_of_float max_reads <= Eit.Arch.default.Eit.Arch.max_reads_per_cycle)

(* ------------------------------------------------------------------ *)
(* Aggregator vs Store.stats: run counts must agree exactly            *)

let test_agg_matches_store () =
  let open Fd in
  let s = Store.create () in
  let vars = List.init 6 (fun _ -> Store.interval_var s 0 5) in
  Arith.all_different s vars;
  let obj = Store.interval_var s 0 30 in
  Arith.max_of s vars obj;
  let agg = Obs.Agg.create () in
  (Obs.with_sink (Obs.Agg.sink agg) @@ fun () ->
   match
     Search.minimize s [ Search.phase vars ] ~objective:obj
       ~on_solution:(fun () -> ())
   with
   | Search.Solution _ -> ()
   | _ -> Alcotest.fail "expected optimum");
  (* profile rows reach the sink via emit_profile in the search-owning
     layer; here the store is driven directly, so emit explicitly *)
  Obs.with_sink (Obs.Agg.sink agg) (fun () -> Store.emit_profile s);
  let profiles = Obs.Agg.profiles agg in
  let store_stats = Store.stats s in
  Alcotest.(check int) "same classes" (List.length store_stats)
    (List.length profiles);
  List.iter
    (fun (name, runs) ->
      match List.assoc_opt name profiles with
      | Some p -> Alcotest.(check int) ("runs " ^ name) runs p.Obs.Agg.p_runs
      | None -> Alcotest.failf "class %s missing from Agg" name)
    store_stats;
  (* search events were counted too *)
  let counts = Obs.Agg.counts agg in
  Alcotest.(check bool) "branches counted" true
    (match List.assoc_opt "branch" counts with Some n -> n > 0 | None -> false)

(* Store.profile invariants: wakes >= runs (every execution was queued
   first), prune attribution only while running. *)
let test_profile_invariants () =
  let open Fd in
  let s = Store.create () in
  let x = Store.interval_var s 0 9 and y = Store.interval_var s 0 9 in
  Arith.plus s x y (Store.const s 9);
  Arith.leq_offset s x 0 y;
  ignore (Search.solve s [ Search.phase [ x; y ] ] ~on_solution:(fun () -> ()));
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Store.pr_name ^ " wakes>=runs")
        true
        (p.Store.pr_wakes >= p.Store.pr_runs);
      Alcotest.(check bool)
        (p.Store.pr_name ^ " counters non-negative")
        true
        (p.Store.pr_runs >= 0 && p.Store.pr_prunes >= 0);
      (* timing stays zero unless opted in *)
      Alcotest.(check (float 0.))
        (p.Store.pr_name ^ " untimed")
        0. p.Store.pr_time_ms)
    (Store.profile s)

(* ------------------------------------------------------------------ *)
(* Disabled path: no sink attached => no allocation at all             *)

let test_disabled_no_alloc () =
  Alcotest.(check bool) "no sink attached" false (Obs.enabled ());
  (* disabled metrics instruments: one atomic load per record, no alloc *)
  let module M = Obs.Metrics in
  let reg = M.create ~enabled:false () in
  let mc = M.counter reg "x" in
  let mh = M.histogram reg "y" in
  let mg = M.gauge reg "z" in
  let ms = M.slo reg "w" in
  (* warm up so the closures/externals are resolved *)
  Obs.instant "warm";
  Obs.span_begin "warm";
  Obs.span_end "warm";
  Obs.counter "warm" [];
  Obs.complete ~ts_us:0. ~dur_us:0. "warm";
  M.incr mc;
  M.observe mh 1.;
  M.set_gauge mg 1.;
  M.slo_record ms ~ok:true ~deadline_met:true;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.instant "x";
    Obs.span_begin "x";
    Obs.span_end "x";
    Obs.counter "x" [];
    Obs.complete ~ts_us:0. ~dur_us:0. "x";
    Obs.profile_row ~name:"x" ~runs:0 ~wakes:0 ~prunes:0 ~time_ms:0. ();
    M.incr mc;
    M.observe mh 1.;
    M.set_gauge mg 1.;
    M.slo_record ms ~ok:true ~deadline_met:true
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.)) "zero words allocated" 0. (w1 -. w0);
  Alcotest.(check int) "disabled counter untouched" 0 (M.counter_value mc)

(* span is exception-safe: the End event is emitted on raise, so the
   trace stays balanced. *)
let test_span_exception_safe () =
  let agg = Obs.Agg.create () in
  (try
     Obs.with_sink (Obs.Agg.sink agg) (fun () ->
         Obs.span "outer" (fun () ->
             Obs.span "inner" (fun () -> failwith "boom")))
   with Failure _ -> ());
  let spans = Obs.Agg.spans agg in
  List.iter
    (fun name ->
      match List.assoc_opt name spans with
      | Some st -> Alcotest.(check int) (name ^ " closed") 1 st.Obs.Agg.s_count
      | None -> Alcotest.failf "span %s not recorded" name)
    [ "outer"; "inner" ]

(* Jsonl sink: every emitted line is one parseable JSON object. *)
let test_jsonl_lines () =
  let path = tmp "t_obs_events.jsonl" in
  Obs.with_sink (Obs.Jsonl.sink ~path) (fun () ->
      Obs.instant ~args:[ ("k", Obs.S "v\"q") ] "a";
      Obs.counter "g" [ ("value", Obs.I 3) ];
      Obs.span "s" (fun () -> ()));
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match Obs.Json.parse line with
       | Ok (Obs.Json.Obj _) -> ()
       | Ok _ -> Alcotest.failf "line %d is not an object" !lines
       | Error e -> Alcotest.failf "line %d: %s" !lines e
     done
   with End_of_file -> ());
  close_in ic;
  Alcotest.(check int) "four events" 4 !lines;
  Sys.remove path

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects invalid" `Quick test_json_rejects;
    Alcotest.test_case "trace well-formed + spans" `Quick test_trace_wellformed;
    Alcotest.test_case "checker catches misnesting" `Quick
      test_check_catches_misnesting;
    Alcotest.test_case "machine timeline gauges" `Quick test_machine_timeline;
    Alcotest.test_case "agg agrees with Store.stats" `Quick
      test_agg_matches_store;
    Alcotest.test_case "profile invariants" `Quick test_profile_invariants;
    Alcotest.test_case "disabled path allocates nothing" `Quick
      test_disabled_no_alloc;
    Alcotest.test_case "span exception-safe" `Quick test_span_exception_safe;
    Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines;
  ]
