(* Additional coverage: serialization of every kernel, solver status
   edges, reconfiguration counting on schedules, overlap analysis. *)

open Eit_dsl
open Eit

let merged g = (Merge.run g).Merge.graph

let all_kernels () =
  [
    ("matmul", Apps.Matmul.graph (Apps.Matmul.build ()));
    ("matmul-matrix", Apps.Matmul.graph (Apps.Matmul.build_matrix_form ()));
    ("qrd", Apps.Qrd.graph (Apps.Qrd.build ()));
    ("qrd-sorted", Apps.Qrd.graph (Apps.Qrd.build ~sorted:true ()));
    ("arf", Apps.Arf.graph (Apps.Arf.build ()));
    ("fir", Apps.Fir.graph (Apps.Fir.build ()));
    ("corr", Apps.Corr.graph (Apps.Corr.build ()));
    ("detect", Apps.Detect.graph (Apps.Detect.build ()));
  ]

let test_xml_roundtrip_all () =
  List.iter
    (fun (name, g) ->
      let g' = Xml.of_string (Xml.to_string g) in
      Alcotest.(check int) (name ^ " |V|") (Ir.size g) (Ir.size g');
      Alcotest.(check int) (name ^ " |E|") (Ir.edge_count g) (Ir.edge_count g');
      let v = List.sort compare (Ir.eval g) in
      let v' = List.sort compare (Ir.eval g') in
      Alcotest.(check bool) (name ^ " evals equal") true
        (List.for_all2 (fun (i, a) (j, b) -> i = j && Value.equal ~eps:1e-12 a b) v v'))
    (all_kernels ())

let test_validate_all () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " raw valid") true (Ir.validate g = Ok ());
      Alcotest.(check bool) (name ^ " merged valid") true
        (Ir.validate (merged g) = Ok ()))
    (all_kernels ())

let test_merge_preserves_eval_all () =
  List.iter
    (fun (name, g) ->
      let m = merged g in
      let sinks gr =
        List.filter_map
          (fun d -> if Ir.succs gr d = [] then Some (List.assoc d (Ir.eval gr)) else None)
          (Ir.data_nodes gr)
      in
      Alcotest.(check bool) (name ^ " outputs preserved") true
        (List.for_all2 (Value.equal ~eps:1e-9) (sinks g) (sinks m)))
    (all_kernels ())

(* ---------------- solver status edges ---------------- *)

let test_status_timeout_vs_best () =
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  (* 1-node budget: CP finds nothing, the heuristic fallback rescues *)
  let o = Sched.Solve.run ~budget:(Fd.Search.node_budget 1) g in
  Alcotest.(check bool) "degraded to fallback" true
    (o.Sched.Solve.status = Sched.Solve.Feasible_timeout
    && o.Sched.Solve.engine = Sched.Solve.Fallback);
  Alcotest.(check bool) "fallback validated" true
    (match o.Sched.Solve.schedule with
    | Some sch -> Sched.Schedule.is_valid sch
    | None -> false);
  (* without the fallback, the same budget is an honest empty timeout *)
  let o = Sched.Solve.run ~budget:(Fd.Search.node_budget 1) ~fallback:false g in
  Alcotest.(check bool) "timeout, no schedule" true
    (o.Sched.Solve.status = Sched.Solve.Feasible_timeout
    && o.Sched.Solve.schedule = None);
  (* a budget large enough for a solution but not the proof *)
  let o = Sched.Solve.run ~budget:(Fd.Search.node_budget 2_000) g in
  Alcotest.(check bool) "feasible or optimal" true
    (match o.Sched.Solve.status with
    | Sched.Solve.Feasible_timeout | Sched.Solve.Optimal -> true
    | _ -> false);
  Alcotest.(check bool) "still validated" true
    (match o.Sched.Solve.schedule with
    | Some sch -> Sched.Schedule.is_valid sch
    | None -> false)

let test_unsat_at_tiny_memory () =
  (* matmul reads two distinct operands per dotp: 1 slot is unsat, and
     the greedy fallback cannot help either *)
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let arch = Arch.with_slots Arch.default 1 in
  let o = Sched.Solve.run ~arch ~budget:(Fd.Search.time_budget 5_000.) g in
  Alcotest.(check bool) "infeasible or empty timeout" true
    (match (o.Sched.Solve.status, o.Sched.Solve.schedule) with
    | Sched.Solve.Infeasible, None -> true
    | Sched.Solve.Feasible_timeout, None -> true
    | _ -> false)

(* ---------------- reconfiguration counting on schedules ------------ *)

let test_reconfig_counts () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  (* two configuration classes force at least one switch *)
  let x = Dsl.v_add ctx a a in
  let y = Dsl.v_mul ctx a a in
  let _ = Dsl.v_add ctx x y in
  let g = Dsl.graph ctx in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
  let sch = Option.get o.Sched.Solve.schedule in
  Alcotest.(check bool) "at least 2 switches (add,mul,add)" true
    (Sched.Reconfig.count sch >= 2);
  Alcotest.(check int) "lower bound" 2 (Sched.Reconfig.lower_bound g)

let test_matmul_zero_reconfigs () =
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
  let sch = Option.get o.Sched.Solve.schedule in
  Alcotest.(check int) "single config" 0 (Sched.Reconfig.count sch)

(* ---------------- overlap analysis ---------------- *)

let test_overlap_analysis () =
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
  let sch = Option.get o.Sched.Solve.schedule in
  let ov = Sched.Overlap.run sch ~m:8 in
  let a = Sched.Analysis.of_overlap g Arch.default ov in
  Alcotest.(check int) "span" ov.Sched.Overlap.length a.Sched.Analysis.span;
  (* overlapped matmul: 16 dotp x 8 iterations on 4 lanes, plus merges *)
  let vec =
    List.find
      (fun r -> r.Sched.Analysis.resource = Opcode.Vector_core)
      a.Sched.Analysis.per_resource
  in
  Alcotest.(check int) "lane-cycles" (16 * 8) vec.Sched.Analysis.issue_slots_used

(* ---------------- Gantt / memory map rendering ---------------- *)

let test_renderings_nonempty () =
  let g = merged (Apps.Detect.graph (Apps.Detect.build ())) in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
  let sch = Option.get o.Sched.Solve.schedule in
  let gantt = Format.asprintf "%a" Sched.Schedule.pp_gantt sch in
  let map = Format.asprintf "%a" Sched.Schedule.pp_memory_map sch in
  Alcotest.(check bool) "gantt has issues" true (String.contains gantt '#');
  Alcotest.(check bool) "map has writes" true (String.contains map '#');
  (* every op appears exactly once as '#' in the gantt *)
  let hashes = String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 gantt in
  Alcotest.(check int) "one # per op" (List.length (Ir.op_nodes g)) hashes

let suite =
  [
    Alcotest.test_case "xml round-trip all kernels" `Quick test_xml_roundtrip_all;
    Alcotest.test_case "validate all kernels" `Quick test_validate_all;
    Alcotest.test_case "merge preserves all outputs" `Quick test_merge_preserves_eval_all;
    Alcotest.test_case "timeout vs feasible" `Quick test_status_timeout_vs_best;
    Alcotest.test_case "unsat at 1 slot" `Quick test_unsat_at_tiny_memory;
    Alcotest.test_case "reconfig counts" `Quick test_reconfig_counts;
    Alcotest.test_case "matmul zero reconfigs" `Quick test_matmul_zero_reconfigs;
    Alcotest.test_case "overlap analysis" `Quick test_overlap_analysis;
    Alcotest.test_case "renderings" `Quick test_renderings_nonempty;
  ]

(* ---------------- blocked 8x8 matmul (future-work scale) ----------- *)

let test_blocked8_values () =
  let b = Apps.Matmul.build_blocked8 ~seed:2 () in
  let expect = Apps.Matmul.blocked8_reference ~seed:2 in
  let got = Apps.Matmul.blocked8_rows b in
  for i = 0 to 7 do
    for j = 0 to 7 do
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "C[%d][%d]" i j)
        expect.(i).(j).Cplx.re got.(i).(j).Cplx.re
    done
  done

let test_blocked8_schedules_and_simulates () =
  let b = Apps.Matmul.build_blocked8 () in
  let g = merged (Dsl.graph b.Apps.Matmul.bctx) in
  Alcotest.(check bool) "stress-sized graph" true (Ir.size g > 200);
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 30_000.) g in
  match o.Sched.Solve.schedule with
  | Some sch -> (
    Alcotest.(check bool) "valid" true (Sched.Schedule.is_valid sch);
    match Sched.Codegen.run_and_check sch with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | None -> Alcotest.failf "no schedule (%s)"
      (Format.asprintf "%a" Sched.Solve.pp_status o.Sched.Solve.status)

let suite =
  suite
  @ [
      Alcotest.test_case "blocked 8x8 values" `Quick test_blocked8_values;
      Alcotest.test_case "blocked 8x8 schedules" `Slow test_blocked8_schedules_and_simulates;
    ]
