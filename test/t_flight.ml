(* The tail-based flight recorder (Obs.Flight): ring capacity and
   overwrite order, retention dumps and their JSONL round-trip, the
   daemon-fatal merge, and the lenient trace checker that makes
   truncated ring dumps first-class inputs. *)

module J = Obs.Json
module F = Obs.Flight

let tmpdir name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "eitc-t-flight-%s-%d" name (Unix.getpid ()))

let cleanup d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Sys.rmdir d
  end

let with_dir name f =
  let d = tmpdir name in
  Fun.protect ~finally:(fun () -> cleanup d) (fun () -> f d)

let ev ?(tid = 5) ?(args = []) ?(ph = Obs.Instant) name ts =
  { Obs.name; cat = "test"; ts_us = ts; tid; ph; args }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let str_meta k meta =
  match List.assoc_opt k meta with Some (J.Str s) -> Some s | _ -> None

let num_meta k meta =
  match List.assoc_opt k meta with Some (J.Num f) -> Some f | _ -> None

(* ------------------- ring + retain + round-trip -------------------- *)

(* 20 events through a capacity-8 ring: retain keeps exactly the last
   8 (oldest first), records 12 overwritten, and the dump reloads into
   an analyzable trace. *)
let test_ring_retain () =
  with_dir "retain" (fun dir ->
      let fl = F.create ~capacity:8 ~dir () in
      F.start fl ~tid:5;
      for i = 1 to 20 do
        F.record fl
          (ev ~args:[ ("i", Obs.I i) ]
             (Printf.sprintf "e%02d" i)
             (float_of_int i))
      done;
      let path =
        F.retain fl ~tid:5 ~reason:"wedged" ~id:"req-1"
          ~meta:[ ("status", J.Str "wedged") ]
      in
      let path =
        match path with
        | Some p -> p
        | None -> Alcotest.fail "retain returned no path"
      in
      Alcotest.(check bool) "file exists" true (Sys.file_exists path);
      Alcotest.(check bool) "named for id and reason" true
        (Filename.check_suffix path ".jsonl"
        && contains path "-req-1-wedged");
      let d =
        match F.load_dump path with
        | Ok d -> d
        | Error e -> Alcotest.failf "load_dump: %s" e
      in
      Alcotest.(check int) "capacity events retained" 8
        (List.length d.F.d_events);
      Alcotest.(check int) "no skipped lines" 0 d.F.d_skipped;
      Alcotest.(check (option string)) "id" (Some "req-1")
        (str_meta "id" d.F.d_meta);
      Alcotest.(check (option string)) "reason" (Some "wedged")
        (str_meta "reason" d.F.d_meta);
      Alcotest.(check (option string)) "caller meta kept" (Some "wedged")
        (str_meta "status" d.F.d_meta);
      Alcotest.(check (option (float 0.))) "overflow counted" (Some 12.)
        (num_meta "overflow" d.F.d_meta);
      (* the survivors are e13..e20, oldest first *)
      let names =
        List.map
          (fun e ->
            match J.member "name" e with Some (J.Str s) -> s | _ -> "?")
          d.F.d_events
      in
      Alcotest.(check (list string)) "last 8, in order"
        (List.init 8 (fun i -> Printf.sprintf "e%02d" (i + 13)))
        names;
      (* a dump is an analyzable trace *)
      (match Obs.Analyze.of_json (F.trace_of_dump d) with
      | Ok s ->
        Alcotest.(check int) "all events analyzed" 8 s.Obs.Analyze.sm_events
      | Error e -> Alcotest.failf "analyze: %s" e);
      let st = F.stats fl in
      Alcotest.(check int) "kept" 1 st.F.kept;
      Alcotest.(check int) "dumped" 1 st.F.dumped;
      Alcotest.(check int) "dropped" 0 st.F.dropped)

(* Obs glue: events emitted through the attached sink land in the
   recorder; a drop resets the ring without serializing. *)
let test_sink_and_drop () =
  with_dir "sink" (fun dir ->
      let fl = F.create ~capacity:8 ~dir () in
      let h = Obs.attach (F.sink fl) in
      Fun.protect ~finally:(fun () -> Obs.detach h) (fun () ->
          Obs.instant ~cat:"test" ~tid:7 "through-sink";
          Obs.instant ~cat:"test" ~tid:7 "through-sink-2");
      F.drop fl ~tid:7;
      let st = F.stats fl in
      Alcotest.(check int) "dropped counted" 1 st.F.dropped;
      Alcotest.(check int) "nothing dumped" 0 st.F.dumped;
      (* ring was reset: a retain now writes a metadata-only dump *)
      let d =
        match F.retain fl ~tid:7 ~reason:"r" ~id:"x" ~meta:[] with
        | Some p -> (
          match F.load_dump p with
          | Ok d -> d
          | Error e -> Alcotest.failf "load_dump: %s" e)
        | None -> Alcotest.fail "retain returned no path"
      in
      Alcotest.(check int) "ring was reset by drop" 0
        (List.length d.F.d_events))

(* dump_all merges every live ring in timestamp order under id
   "daemon" and leaves the rings intact. *)
let test_dump_all () =
  with_dir "all" (fun dir ->
      let fl = F.create ~capacity:8 ~dir () in
      F.record fl (ev ~tid:1 "a1" 10.);
      F.record fl (ev ~tid:2 "b1" 5.);
      F.record fl (ev ~tid:1 "a2" 20.);
      F.record fl (ev ~tid:2 "b2" 15.);
      let p =
        match F.dump_all fl ~reason:"daemon-fatal" ~meta:[] with
        | Some p -> p
        | None -> Alcotest.fail "dump_all returned no path"
      in
      let d =
        match F.load_dump p with
        | Ok d -> d
        | Error e -> Alcotest.failf "load_dump: %s" e
      in
      Alcotest.(check (option string)) "daemon id" (Some "daemon")
        (str_meta "id" d.F.d_meta);
      let ts =
        List.map
          (fun e ->
            match J.member "ts" e with Some (J.Num f) -> f | _ -> -1.)
          d.F.d_events
      in
      Alcotest.(check (list (float 0.))) "merged in timestamp order"
        [ 5.; 10.; 15.; 20. ] ts;
      (* rings intact: a later retain still sees tid 1's events *)
      match F.retain fl ~tid:1 ~reason:"r" ~id:"y" ~meta:[] with
      | Some p2 -> (
        match F.load_dump p2 with
        | Ok d2 ->
          Alcotest.(check int) "ring left intact" 2 (List.length d2.F.d_events)
        | Error e -> Alcotest.failf "load_dump: %s" e)
      | None -> Alcotest.fail "retain returned no path")

(* ------------------------- error reporting ------------------------- *)

let test_load_dump_errors () =
  (match F.load_dump "/no/such/flight-dump.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must not load");
  with_dir "bad" (fun dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let p = Filename.concat dir "flight-0000-x-r.jsonl" in
      let oc = open_out p in
      output_string oc "{\"not\":\"a flight meta line\"}\n";
      close_out oc;
      (match F.load_dump p with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "non-flight first line must not load");
      Alcotest.(check (list string)) "dump_files still lists it" [ p ]
        (F.dump_files dir));
  Alcotest.(check (list string)) "unreadable dir is empty, not an error" []
    (F.dump_files "/no/such/dir")

(* --------------------- QCheck: capacity respected ------------------- *)

(* For any capacity and event count, the ring holds exactly the last
   min(count, capacity) events in order, the overflow count is exact,
   and the dump round-trips through Obs.Json (args included — integer
   args come back as numbers). *)
let gen_cap_count =
  QCheck2.Gen.(pair (int_range 1 32) (int_range 0 100))

let prop_ring_capacity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"ring keeps the last min(count,capacity) events"
       ~count:60 gen_cap_count (fun (capacity, count) ->
         let dir = tmpdir "qcheck" in
         Fun.protect ~finally:(fun () -> cleanup dir) (fun () ->
             let fl = F.create ~capacity ~dir () in
             for i = 1 to count do
               F.record fl
                 (ev
                    ~args:
                      [
                        ("f", Obs.F (float_of_int i /. 3.));
                        ("s", Obs.S (string_of_int i));
                        ("b", Obs.B (i mod 2 = 0));
                      ]
                    (Printf.sprintf "n%03d" i)
                    (float_of_int i))
             done;
             let d =
               match F.retain fl ~tid:5 ~reason:"q" ~id:"p" ~meta:[] with
               | Some p -> (
                 match F.load_dump p with
                 | Ok d -> d
                 | Error e -> Alcotest.failf "load_dump: %s" e)
               | None -> Alcotest.fail "retain returned no path"
             in
             let expect = min count capacity in
             let first = count - expect + 1 in
             List.length d.F.d_events = expect
             && num_meta "overflow" d.F.d_meta
                = Some (float_of_int (max 0 (count - capacity)))
             && List.for_all2
                  (fun e i ->
                    (match J.member "name" e with
                    | Some (J.Str s) -> s = Printf.sprintf "n%03d" i
                    | _ -> false)
                    && (match J.member "ts" e with
                       | Some (J.Num t) -> t = float_of_int i
                       | _ -> false)
                    &&
                    match J.member "args" e with
                    | Some a -> (
                      J.member "s" a = Some (J.Str (string_of_int i))
                      && J.member "b" a = Some (J.Bool (i mod 2 = 0))
                      &&
                      match J.member "f" a with
                      | Some (J.Num f) ->
                        Float.abs (f -. (float_of_int i /. 3.)) < 1e-6
                      | _ -> false)
                    | None -> false)
                  d.F.d_events
                  (List.init expect (fun k -> first + k)))))

(* --------------------- lenient trace checking ---------------------- *)

let trace evs = J.Obj [ ("traceEvents", J.Arr evs) ]

let jev name ph ts =
  J.Obj
    [
      ("name", J.Str name);
      ("cat", J.Str "t");
      ("ph", J.Str ph);
      ("ts", J.Num ts);
      ("pid", J.Num 1.);
      ("tid", J.Num 1.);
    ]

let test_check_lenient () =
  (* a ring-truncated stream: the End's Begin was overwritten, and a
     later span is still open at the cut *)
  let truncated =
    trace [ jev "outer" "E" 10.; jev "tail" "B" 20.; jev "i" "i" 21. ]
  in
  (match Obs.Check.trace_json truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict must reject a truncated trace");
  (match Obs.Check.trace_json ~lenient:true truncated with
  | Ok n -> Alcotest.(check int) "lenient counts all events" 3 n
  | Error e -> Alcotest.failf "lenient must accept truncation: %s" e);
  (* misnesting is corruption, not truncation: rejected either way *)
  let misnested =
    trace
      [ jev "a" "B" 1.; jev "b" "B" 2.; jev "a" "E" 3.; jev "b" "E" 4. ]
  in
  (match Obs.Check.trace_json ~lenient:true misnested with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lenient must still reject misnesting");
  (* so is a span that ends before it begins *)
  let backwards = trace [ jev "a" "B" 10.; jev "a" "E" 5. ] in
  match Obs.Check.trace_json ~lenient:true backwards with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lenient must still reject backwards timestamps"

let suite =
  [
    Alcotest.test_case "ring retain: last capacity events, overflow, \
                        round-trip" `Quick test_ring_retain;
    Alcotest.test_case "sink glue and drop reset" `Quick test_sink_and_drop;
    Alcotest.test_case "dump_all merges rings, leaves them intact" `Quick
      test_dump_all;
    Alcotest.test_case "load_dump error reporting" `Quick
      test_load_dump_errors;
    prop_ring_capacity;
    Alcotest.test_case "trace-check --lenient: truncation ok, corruption \
                        not" `Quick test_check_lenient;
  ]
