(* Obs.Metrics: the live telemetry registry.  The core property is the
   histogram's relative-error contract — any quantile estimate is
   within [relative_error h] of the exact sorted-sample quantile of
   the same rank (ceil(q*n)-th smallest) — pinned by QCheck over random
   sample sets and sig_bits.  The rest pins exact concurrent counting,
   snapshot JSON round-trips, merge, SLO window semantics and the
   disabled-registry no-op paths. *)

module M = Obs.Metrics
module J = Obs.Json

let fresh () = M.create ()

(* The histogram's own rank convention: the ceil(q*n)-th smallest,
   clamped to [1, n]. *)
let exact_q sorted q =
  let n = Array.length sorted in
  sorted.(max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) - 1)

(* ----------------------- QCheck: error bound ----------------------- *)

(* Positive floats across ~18 decades, mantissas everywhere in the
   sub-bucket range. *)
let gen_positive =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun (m, e) -> Float.ldexp (0.5 +. (m /. 2.)) e)
          (pair (float_bound_inclusive 0.9999) (int_range (-20) 40));
        map (fun f -> f +. 1e-3) (float_bound_inclusive 1e6);
        map float_of_int (int_range 1 1_000_000);
      ])

let quantile_bound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"quantile within relative_error of exact same-rank sample"
       ~count:300
       QCheck2.Gen.(
         pair (int_range 4 9) (list_size (int_range 1 300) gen_positive))
       (fun (bits, samples) ->
         let r = fresh () in
         let h = M.histogram ~sig_bits:bits r "q" in
         List.iter (M.observe h) samples;
         let sorted = Array.of_list samples in
         Array.sort compare sorted;
         let rel = M.relative_error h in
         List.for_all
           (fun q ->
             let exact = exact_q sorted q in
             let est = M.quantile h q in
             Float.abs (est -. exact) <= (rel *. exact) +. 1e-12)
           [ 0.5; 0.9; 0.95; 0.99; 0.999 ]))

(* hstats must agree with quantile (same ranks, one lock). *)
let test_hstats_matches_quantile () =
  let r = fresh () in
  let h = M.histogram r "h" in
  for i = 1 to 1000 do
    M.observe h (float_of_int i)
  done;
  let st = M.hstats h in
  Alcotest.(check int) "count" 1000 st.M.count;
  Alcotest.(check (float 0.)) "min exact" 1. st.M.vmin;
  Alcotest.(check (float 0.)) "max exact" 1000. st.M.vmax;
  List.iter
    (fun (q, v) ->
      Alcotest.(check (float 0.)) (Printf.sprintf "p%g" (q *. 1000.)) v
        (M.quantile h q))
    [ (0.5, st.M.p50); (0.9, st.M.p90); (0.95, st.M.p95); (0.99, st.M.p99);
      (0.999, st.M.p999) ];
  let rel = M.relative_error h in
  Alcotest.(check bool) "p99 near rank-990 sample" true
    (Float.abs (st.M.p99 -. 990.) <= (rel *. 990.) +. 1e-9)

(* ----------------------- concurrency: exactness -------------------- *)

let test_concurrent_exact () =
  let r = fresh () in
  let c = M.counter r "c" in
  let h = M.histogram r "h" in
  let s = M.slo r "s" in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              M.incr c;
              M.observe h 1.;
              M.slo_record s ~ok:true ~deadline_met:true
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "counter sums exactly" 40_000 (M.counter_value c);
  let st = M.hstats h in
  Alcotest.(check int) "histogram count exact" 40_000 st.M.count;
  Alcotest.(check (float 0.)) "histogram sum exact" 40_000. st.M.sum;
  Alcotest.(check int) "slo total exact" 40_000 (M.slo_stats s).M.total

(* ----------------------- snapshot round-trip ----------------------- *)

let test_snapshot_roundtrip () =
  let r = fresh () in
  M.incr ~by:7 (M.counter r "reqs");
  M.set_gauge (M.gauge r "depth") 3.5;
  let h = M.histogram r "lat_ms" in
  List.iter (M.observe h) [ 1.; 2.5; 40.; 0.; 999.9 ];
  let s = M.slo ~window:8 r "slo" in
  M.slo_record s ~ok:true ~deadline_met:false;
  let j = M.snapshot_json ~ts:123.5 r in
  (match J.parse (J.to_string j) with
  | Ok j' -> Alcotest.(check bool) "parse (to_string j) = Ok j" true (j' = j)
  | Error e -> Alcotest.failf "snapshot does not round-trip: %s" e);
  (* sections are present and sorted by instrument name *)
  (match J.member "histograms" j with
  | Some (J.Obj [ ("lat_ms", hj) ]) ->
    Alcotest.(check bool) "rel_err exported" true
      (J.member "rel_err" hj = Some (J.Num (M.relative_error h)))
  | _ -> Alcotest.fail "histograms section malformed");
  match J.member "ts_unix" j with
  | Some (J.Num 123.5) -> ()
  | _ -> Alcotest.fail "ts_unix not honoured"

(* ----------------------- merge ------------------------------------- *)

let test_merge () =
  let r = fresh () in
  let a = M.histogram r "a" in
  let b = M.histogram r "b" in
  let whole = M.histogram r "whole" in
  for i = 1 to 100 do
    M.observe a (float_of_int i);
    M.observe whole (float_of_int i)
  done;
  for i = 1000 to 1100 do
    M.observe b (float_of_int i);
    M.observe whole (float_of_int i)
  done;
  M.merge_into ~into:a b;
  Alcotest.(check bool) "merged hstats = single-histogram hstats" true
    (M.hstats a = M.hstats whole);
  Alcotest.(check int) "source unchanged" 101 (M.hstats b).M.count;
  let r2 = fresh () in
  let coarse = M.histogram ~sig_bits:4 r2 "coarse" in
  Alcotest.check_raises "sig_bits mismatch"
    (Invalid_argument "Obs.Metrics.merge_into: sig_bits differ") (fun () ->
      M.merge_into ~into:a coarse)

(* ----------------------- SLO window -------------------------------- *)

let test_slo_window () =
  let r = fresh () in
  let s = M.slo ~window:4 r "s" in
  List.iter
    (fun (ok, met) -> M.slo_record s ~ok ~deadline_met:met)
    [ (true, true); (true, true); (false, false); (false, false);
      (false, false); (true, false) ];
  let st = M.slo_stats s in
  Alcotest.(check int) "window" 4 st.M.window;
  Alcotest.(check int) "seen caps at window" 4 st.M.seen;
  Alcotest.(check int) "total is lifetime" 6 st.M.total;
  (* the window now holds the last four outcomes: F F F T *)
  Alcotest.(check int) "ok in window" 1 st.M.ok;
  Alcotest.(check int) "met in window" 0 st.M.met;
  Alcotest.(check (float 1e-9)) "error rate" 0.75 st.M.error_rate;
  Alcotest.(check (float 1e-9)) "deadline hit rate" 0. st.M.deadline_hit_rate;
  let empty = M.slo_stats (M.slo r "empty") in
  Alcotest.(check (float 0.)) "empty error rate" 0. empty.M.error_rate;
  Alcotest.(check (float 0.)) "empty hit rate" 1. empty.M.deadline_hit_rate

(* ----------------------- zero / negative values -------------------- *)

let test_zero_bucket () =
  let r = fresh () in
  let h = M.histogram r "h" in
  List.iter (M.observe h) [ 0.; -5.; 3. ];
  let st = M.hstats h in
  Alcotest.(check int) "count includes non-positives" 3 st.M.count;
  Alcotest.(check (float 0.)) "min is exact" (-5.) st.M.vmin;
  Alcotest.(check (float 0.)) "max is exact" 3. st.M.vmax;
  Alcotest.(check (float 0.)) "median is the zero bucket" 0. (M.quantile h 0.5);
  let top = M.quantile h 0.999 in
  Alcotest.(check bool) "top quantile is the positive sample" true
    (Float.abs (top -. 3.) <= (M.relative_error h *. 3.) +. 1e-12);
  Alcotest.(check (float 0.)) "empty histogram quantile" 0.
    (M.quantile (M.histogram r "empty") 0.5)

(* ----------------------- registry semantics ------------------------ *)

let test_disabled_noop () =
  let r = M.create ~enabled:false () in
  let c = M.counter r "c" in
  let h = M.histogram r "h" in
  let g = M.gauge r "g" in
  let s = M.slo r "s" in
  M.incr c;
  M.observe h 1.;
  M.set_gauge g 9.;
  M.slo_record s ~ok:false ~deadline_met:false;
  Alcotest.(check int) "counter untouched" 0 (M.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (M.hstats h).M.count;
  Alcotest.(check (float 0.)) "gauge untouched" 0. (M.gauge_value g);
  Alcotest.(check int) "slo untouched" 0 (M.slo_stats s).M.total;
  M.set_enabled r true;
  M.incr c;
  M.observe h 1.;
  Alcotest.(check int) "enable flips existing instruments" 1
    (M.counter_value c);
  Alcotest.(check int) "histogram records once enabled" 1 (M.hstats h).M.count

let test_kind_clash () =
  let r = fresh () in
  ignore (M.counter r "x");
  Alcotest.(check bool) "same-kind lookup finds the instrument" true
    (M.counter r "x" == M.counter r "x");
  match M.histogram r "x" with
  | _ -> Alcotest.fail "kind clash not detected"
  | exception Invalid_argument _ -> ()

let test_prometheus () =
  let r = fresh () in
  M.incr ~by:3 (M.counter r "serve.count");
  M.set_gauge (M.gauge r "queue.depth") 2.;
  let h = M.histogram r "serve.total_ms" in
  List.iter (M.observe h) [ 1.; 2.; 3. ];
  M.slo_record (M.slo r "serve.slo") ~ok:true ~deadline_met:true;
  let text = M.prometheus r in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (has needle))
    [
      "# TYPE serve_count counter"; "serve_count 3";
      "# TYPE queue_depth gauge"; "# TYPE serve_total_ms summary";
      "serve_total_ms{quantile=\"0.99\"}"; "serve_total_ms_count 3";
      "serve_slo_error_rate 0"; "serve_slo_deadline_hit_rate 1";
    ]

let suite =
  [
    quantile_bound;
    Alcotest.test_case "hstats agrees with quantile" `Quick
      test_hstats_matches_quantile;
    Alcotest.test_case "concurrent updates sum exactly" `Quick
      test_concurrent_exact;
    Alcotest.test_case "snapshot JSON round-trips" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "merge_into combines exactly" `Quick test_merge;
    Alcotest.test_case "slo rolling window" `Quick test_slo_window;
    Alcotest.test_case "zero/negative values" `Quick test_zero_bucket;
    Alcotest.test_case "disabled registry is a no-op" `Quick
      test_disabled_noop;
    Alcotest.test_case "instrument kind clash" `Quick test_kind_clash;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus;
  ]
