(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4) and, optionally, runs bechamel timing measurements.

     dune exec bench/main.exe            -- all tables and figures
     dune exec bench/main.exe table1     -- one experiment
     dune exec bench/main.exe bechamel   -- timing measurements

   Paper reference values are printed next to the measured ones; see
   EXPERIMENTS.md for the shape discussion. *)

module Vecsched = Vecsched_core.Vecsched
open Eit_dsl

let merged g = (Merge.run g).Merge.graph
let qrd () = merged (Apps.Qrd.graph (Apps.Qrd.build ()))
let qrd_sorted () = merged (Apps.Qrd.graph (Apps.Qrd.build ~sorted:true ()))
let arf () = merged (Apps.Arf.graph (Apps.Arf.build ()))
let matmul () = merged (Apps.Matmul.graph (Apps.Matmul.build ()))
let fir () = merged (Apps.Fir.graph (Apps.Fir.build ()))

let line = String.make 78 '-'

let header title = Format.printf "@.%s@.%s@.%s@." line title line

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(int_of_float (p /. 100. *. float_of_int (n - 1) +. 0.5))

let set_member name v = function
  | Obs.Json.Obj kvs ->
    Obs.Json.Obj (List.filter (fun (k, _) -> k <> name) kvs @ [ (name, v) ])
  | _ -> Obs.Json.Obj [ (name, v) ]

(* Sections owned by other generators ("service" from `load`, "cache"
   from `cache`) are carried through verbatim by the solver-row writers
   (`perfjson`, `profile`) so no generator clobbers another, and
   `compare` ignores them entirely.  The shared list lives in
   {!Vecsched_core.Bench_sections} and is pinned by a unit test. *)
let existing_sections path =
  match Obs.Json.parse_file path with
  | Ok j -> Vecsched_core.Bench_sections.keep j
  | Error _ -> []

(* ------------------------------------------------------------------ *)
(* Graph properties (§4.2 text + Table 3 column 2)                     *)

let graphs () =
  header
    "Graph properties (paper: QRD (143,194,169) #v_data=49, ARF (88,128,56), \
     MATMUL (44,68,8))";
  List.iter
    (fun (name, g) -> Format.printf "%-8s %a@." name Stats.pp (Stats.of_ir g))
    [ ("QRD", qrd ()); ("QRD-sorted", qrd_sorted ()); ("ARF", arf ());
      ("MATMUL", matmul ()) ]

(* ------------------------------------------------------------------ *)
(* Table 1: scheduling one QRD iteration under memory sweeps           *)

let table1 () =
  header
    "Table 1: QRD with memory allocation (paper: length 173 cc at 64/32/16/10 \
     slots using 33/28/16/10; timeout at 9; no solution at 8)";
  Format.printf "%-18s %-10s %-12s %-10s %-10s@." "slots available" "status"
    "length (cc)" "slots used" "opt. time (ms)";
  let g = qrd () in
  List.iter
    (fun slots ->
      let arch = Vecsched.Arch.with_slots Vecsched.Arch.default slots in
      let o = Sched.Solve.run ~arch ~budget:(Fd.Search.time_budget 30_000.) g in
      match o.Sched.Solve.schedule with
      | Some sch ->
        Format.printf "%-18d %-10s %-12d %-10d %-10.0f@." slots
          (Format.asprintf "%a" Sched.Solve.pp_status o.Sched.Solve.status)
          sch.Sched.Schedule.makespan
          (Sched.Schedule.slots_used sch)
          o.Sched.Solve.stats.Fd.Search.time_ms
      | None ->
        Format.printf "%-18d %-10s %-12s %-10s %-10.0f@." slots
          (Format.asprintf "%a" Sched.Solve.pp_status o.Sched.Solve.status)
          "-" "-" o.Sched.Solve.stats.Fd.Search.time_ms)
    [ 64; 32; 16; 10; 9; 8; 7 ]

(* ------------------------------------------------------------------ *)
(* Table 2: overlapped execution, manual vs automated                  *)

let table2 () =
  header
    "Table 2: overlapping 12 QRD iterations (paper: manual 460 cc / 18 rec / \
     0.026 it/cc vs automated 540 cc / 24 rec / 0.022 it/cc)";
  let g = qrd () in
  let m = 12 in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 30_000.) g in
  let rows =
    [
      ("Manual", Sched.Manual_baseline.overlapped g Eit.Arch.default ~m);
      ( "Automated",
        match o.Sched.Solve.schedule with
        | Some sch -> Sched.Overlap.run sch ~m
        | None -> failwith "table2: QRD scheduling failed" );
    ]
  in
  Format.printf "%-12s %-14s %-16s %-10s %-18s %-20s@." "" "length (cc)"
    "# instructions" "# reconf." "# reconf./iter" "throughput (it/cc)";
  List.iter
    (fun (name, ov) ->
      Format.printf "%-12s %-14d %-16d %-10d %-18.2f %-20.3f@." name
        ov.Sched.Overlap.length ov.Sched.Overlap.n_instructions
        ov.Sched.Overlap.reconfigurations
        (float_of_int ov.Sched.Overlap.reconfigurations /. float_of_int m)
        ov.Sched.Overlap.throughput)
    rows

(* ------------------------------------------------------------------ *)
(* Table 3: modulo scheduling with/without reconfigurations            *)

let table3 ?(budget_excl = 60_000.) ?(budget_incl = 120_000.) () =
  header
    "Table 3: pipelining via modulo scheduling (paper: QRD 32->55 actual \
     (0.018) vs 46 (0.022); ARF 16->32 (0.031) vs 24 (0.042); MATMUL 4 (0.250) \
     both)";
  Format.printf "%-8s %-22s %-11s %-7s %-10s %-12s | %-8s %-12s %-10s@." "app"
    "(|V|,|E|,|Cr.P|)" "initial II" "# rec" "actual II" "thr (it/cc)" "II incl"
    "thr (it/cc)" "time (ms)";
  List.iter
    (fun (name, g) ->
      let s = Stats.of_ir g in
      let excl = Sched.Modulo.solve_excluding ~budget_ms:budget_excl g in
      let incl = Sched.Modulo.solve_including ~budget_ms:budget_incl g in
      let shape = Printf.sprintf "(%d, %d, %d)" s.Stats.v s.Stats.e s.Stats.crp in
      match (excl, incl) with
      | Some e, Some i ->
        (match Sched.Modulo.validate g Eit.Arch.default e with
        | Ok () -> ()
        | Error msg -> Format.printf "!! excl kernel invalid: %s@." msg);
        (match Sched.Modulo.validate g Eit.Arch.default i with
        | Ok () -> ()
        | Error msg -> Format.printf "!! incl kernel invalid: %s@." msg);
        Format.printf
          "%-8s %-22s %-11d %-7d %-10d %-12.3f | %-8d %-12.3f %-10.0f@." name
          shape e.Sched.Modulo.ii e.Sched.Modulo.reconfigurations
          e.Sched.Modulo.actual_ii e.Sched.Modulo.throughput
          i.Sched.Modulo.actual_ii i.Sched.Modulo.throughput
          i.Sched.Modulo.time_ms
      | _ -> Format.printf "%-8s %-22s timeout@." name shape)
    [ ("QRD", qrd ()); ("ARF", arf ()); ("MATMUL", matmul ()) ]

(* ------------------------------------------------------------------ *)
(* Fig. 3: the IR of listing 1                                         *)

let fig3 () =
  header "Fig. 3: intermediate representation of listing 1 (MATMUL)";
  let g = Apps.Matmul.graph (Apps.Matmul.build ()) in
  Format.printf "%a@." Stats.pp (Stats.of_ir g);
  Format.printf "categories:";
  List.iter
    (fun (c, n) -> if n > 0 then Format.printf " %s=%d" (Ir.category_name c) n)
    (Stats.of_ir g).Stats.by_category;
  Format.printf "@.";
  let dot_path = "matmul_ir.dot" and xml_path = "matmul_ir.xml" in
  Dot.save dot_path g;
  Xml.save xml_path g;
  Format.printf "wrote %s and %s (render with: dot -Tpdf %s)@." dot_path
    xml_path dot_path

(* ------------------------------------------------------------------ *)
(* Figs. 4/5: matrix op vs vector expansion                            *)

let fig45 () =
  header "Figs. 4/5: A.m_squsum as one matrix op vs four vector ops + merge";
  let rows = [ [1.;2.;3.;4.]; [2.;3.;4.;5.]; [5.;6.;7.;8.]; [0.;1.;0.;1.] ] in
  let mctx = Dsl.create () in
  let m = Dsl.matrix_input_f mctx rows in
  let mr = Dsl.m_squsum mctx m in
  let vctx = Dsl.create () in
  let mv = Dsl.matrix_input_f vctx rows in
  let parts = List.init 4 (fun i -> Dsl.v_squsum vctx (Dsl.row mv i)) in
  let vr =
    match parts with [ a; b; c; d ] -> Dsl.merge vctx a b c d | _ -> assert false
  in
  Format.printf "matrix form:  %a -> %s@." Stats.pp
    (Stats.of_ir (Dsl.graph mctx))
    (Eit.Value.to_string (Eit.Value.Vector (Dsl.vector_value mr)));
  Format.printf "vector form:  %a -> %s@." Stats.pp
    (Stats.of_ir (Dsl.graph vctx))
    (Eit.Value.to_string (Eit.Value.Vector (Dsl.vector_value vr)));
  Format.printf
    "the matrix form removes the merge node and shrinks the graph, as §3.2.2 \
     describes@."

(* ------------------------------------------------------------------ *)
(* Fig. 6: the two merge-pass patterns                                 *)

let fig6 () =
  header "Fig. 6: pipeline fusion examples";
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let b = Dsl.vector_input_f ctx [ 2.; 2.; 2.; 2. ] in
  let c = Dsl.v_conj ctx a in
  let _ = Dsl.v_dotp ctx c b in
  let g = Dsl.graph ctx in
  let r = Merge.run g in
  Format.printf "left  (conj -> v_dotP):      %d -> %d nodes (%d fusion)@."
    (Ir.size g) (Ir.size r.Merge.graph) r.Merge.fusions;
  let ctx = Dsl.create () in
  let m =
    Dsl.matrix_input_f ctx
      [ [1.;2.;3.;4.]; [4.;3.;2.;1.]; [1.;1.;1.;1.]; [2.;2.;2.;2.] ]
  in
  let s = Dsl.m_squsum ctx m in
  let _ = Dsl.v_sort ctx s in
  let g = Dsl.graph ctx in
  let r = Merge.run g in
  Format.printf "right (m_squsum -> sort):    %d -> %d nodes (%d fusion)@."
    (Ir.size g) (Ir.size r.Merge.graph) r.Merge.fusions;
  List.iter
    (fun i ->
      Format.printf "  fused node: %s@."
        (Eit.Opcode.name (Ir.opcode r.Merge.graph i)))
    (Ir.op_nodes r.Merge.graph)

(* ------------------------------------------------------------------ *)
(* Fig. 8: memory access legality                                      *)

let fig8 () =
  header "Fig. 8: simultaneous access (paper: only C is accessible in one cycle)";
  let arch = { Eit.Arch.default with Eit.Arch.lines = 3 } in
  let slot ~bank ~line = Eit.Mem.slot_of arch ~bank ~line in
  let cases =
    [
      ( "A",
        [ slot ~bank:0 ~line:0; slot ~bank:1 ~line:0;
          slot ~bank:0 ~line:1; slot ~bank:1 ~line:1 ] );
      ( "B",
        [ slot ~bank:8 ~line:0; slot ~bank:9 ~line:0;
          slot ~bank:10 ~line:0; slot ~bank:11 ~line:1 ] );
      ( "C",
        [ slot ~bank:4 ~line:2; slot ~bank:5 ~line:2;
          slot ~bank:12 ~line:1; slot ~bank:13 ~line:1 ] );
    ]
  in
  List.iter
    (fun (name, slots) ->
      match Eit.Mem.check_access arch ~reads:slots ~writes:[] with
      | [] -> Format.printf "matrix %s: 1-cycle access OK@." name
      | vs ->
        Format.printf "matrix %s: needs reconfiguration -- %a@." name
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
             Eit.Mem.pp_violation)
          vs)
    cases

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)

(* A1: search heuristics (§3.5) — what the phase-1 variable selection
   buys on the QRD scheduling problem. *)
let ablation_heuristics () =
  header "Ablation A1: phase-1 variable selection heuristic (10 s budget each)";
  Format.printf "%-10s %-18s %-10s %-12s %-10s %-10s %-10s@." "kernel"
    "heuristic" "status" "makespan" "nodes" "failures" "time (ms)";
  List.iter (fun (kernel, g) ->
  List.iter
    (fun (name, var_select) ->
      let m = Sched.Model.build g Eit.Arch.default in
      let phases =
        match Sched.Model.phases m with
        | [ p1; p2; p3 ] -> [ { p1 with Fd.Search.var_select }; p2; p3 ]
        | other -> other
      in
      match
        Fd.Search.minimize
          ~budget:(Fd.Search.time_budget 10_000.)
          m.Sched.Model.store phases ~objective:m.Sched.Model.makespan
          ~on_solution:(fun () -> Sched.Model.extract m)
      with
      | Fd.Search.Solution (sch, st) | Fd.Search.Best (sch, st) ->
        Format.printf "%-10s %-18s %-10s %-12d %-10d %-10d %-10.0f@." kernel
          name
          (if st.Fd.Search.optimal then "optimal" else "best")
          sch.Sched.Schedule.makespan st.Fd.Search.nodes st.Fd.Search.failures
          st.Fd.Search.time_ms
      | Fd.Search.Unsat st | Fd.Search.Timeout st ->
        Format.printf "%-10s %-18s %-10s %-12s %-10d %-10d %-10.0f@." kernel
          name "none" "-" st.Fd.Search.nodes st.Fd.Search.failures
          st.Fd.Search.time_ms)
    [
      ("smallest_min", Fd.Search.smallest_min);
      ("first_fail", Fd.Search.first_fail);
      ("input_order", Fd.Search.input_order);
      ("most_constrained", Fd.Search.most_constrained);
    ])
    [ ("QRD", qrd ()); ("MATMUL", matmul ()) ]

(* A2: integrated memory allocation on/off — the cost of the paper's
   central modelling decision. *)
let ablation_memory () =
  header "Ablation A2: integrated memory allocation vs scheduling only";
  Format.printf "%-10s %-10s %-10s %-12s %-10s %-12s@." "kernel" "memory"
    "status" "makespan" "nodes" "time (ms)";
  List.iter
    (fun (name, g) ->
      List.iter
        (fun memory ->
          let o =
            Sched.Solve.run ~memory ~budget:(Fd.Search.time_budget 20_000.) g
          in
          match o.Sched.Solve.schedule with
          | Some sch ->
            Format.printf "%-10s %-10s %-10s %-12d %-10d %-12.0f@." name
              (if memory then "on" else "off")
              (Format.asprintf "%a" Sched.Solve.pp_status o.Sched.Solve.status)
              sch.Sched.Schedule.makespan o.Sched.Solve.stats.Fd.Search.nodes
              o.Sched.Solve.stats.Fd.Search.time_ms
          | None ->
            Format.printf "%-10s %-10s %-10s@." name
              (if memory then "on" else "off")
              (Format.asprintf "%a" Sched.Solve.pp_status o.Sched.Solve.status))
        [ true; false ])
    [ ("QRD", qrd ()); ("ARF", arf ()); ("MATMUL", matmul ()) ]

(* A3: merge pass on/off — Fig. 6's fusion on a fusion-heavy kernel. *)
let ablation_merge () =
  header "Ablation A3: pipeline fusion (Fig. 6) on the CORR kernel";
  let raw = Apps.Corr.graph (Apps.Corr.build ~hypotheses:8 ()) in
  let fused = merged raw in
  Format.printf "%-10s %-28s %-12s@." "" "graph" "makespan";
  List.iter
    (fun (name, g) ->
      let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
      match o.Sched.Solve.schedule with
      | Some sch ->
        Format.printf "%-10s %-28s %-12d@." name
          (Format.asprintf "%a" Stats.pp (Stats.of_ir g))
          sch.Sched.Schedule.makespan
      | None -> Format.printf "%-10s %-28s (none)@." name
          (Format.asprintf "%a" Stats.pp (Stats.of_ir g)))
    [ ("raw", raw); ("fused", fused) ]

(* A4: architecture presets — the paper's future-work direction. *)
let archsweep () =
  header "Architecture sweep: the same kernels on eit / wide / mini presets";
  Format.printf "%-10s %-8s %-10s %-12s %-12s@." "kernel" "arch" "status"
    "makespan" "slots used";
  List.iter
    (fun (kname, g) ->
      List.iter
        (fun (aname, arch) ->
          let o = Sched.Solve.run ~arch ~budget:(Fd.Search.time_budget 20_000.) g in
          match o.Sched.Solve.schedule with
          | Some sch ->
            Format.printf "%-10s %-8s %-10s %-12d %-12d@." kname aname
              (Format.asprintf "%a" Sched.Solve.pp_status o.Sched.Solve.status)
              sch.Sched.Schedule.makespan
              (Sched.Schedule.slots_used sch)
          | None ->
            Format.printf "%-10s %-8s %-10s@." kname aname
              (Format.asprintf "%a" Sched.Solve.pp_status o.Sched.Solve.status))
        Eit.Arch.presets)
    [
      ("MATMUL", matmul ());
      ("ARF", arf ());
      ("FIR-8", merged (Apps.Fir.graph (Apps.Fir.build ~taps:8 ())));
      ("CORR-8", merged (Apps.Corr.graph (Apps.Corr.build ~hypotheses:8 ())));
    ]

(* §4.2 narrative: the optimal one-shot schedule is heavily
   under-utilized because of the 7-cycle dependency gaps; overlapping
   and modulo scheduling recover the utilization. *)
let utilization () =
  header
    "Utilization (§4.2-4.3): vector-core usage across execution regimes";
  Format.printf "%-8s %-12s %-14s %-12s %-12s@." "kernel" "regime"
    "vector util." "busy cycles" "longest gap";
  List.iter
    (fun (name, g) ->
      let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
      match o.Sched.Solve.schedule with
      | None -> Format.printf "%-8s (no schedule)@." name
      | Some sch ->
        let report regime a =
          let vec =
            List.find
              (fun r -> r.Sched.Analysis.resource = Eit.Opcode.Vector_core)
              a.Sched.Analysis.per_resource
          in
          Format.printf "%-8s %-12s %-14.1f %-12s %-12d@." name regime
            (100. *. Sched.Analysis.vector_utilization a)
            (Printf.sprintf "%d/%d" vec.Sched.Analysis.busy_cycles
               a.Sched.Analysis.span)
            a.Sched.Analysis.longest_gap
        in
        report "one-shot" (Sched.Analysis.of_schedule sch);
        report "overlap-12"
          (Sched.Analysis.of_overlap g Eit.Arch.default
             (Sched.Overlap.run sch ~m:12));
        (match Sched.Modulo.solve_excluding ~budget_ms:30_000. g with
        | Some r -> report "modulo" (Sched.Analysis.of_modulo g Eit.Arch.default r)
        | None -> ()))
    [ ("QRD", qrd ()); ("ARF", arf ()); ("MATMUL", matmul ()) ]

(* Dynamic verification: §4.3's execution regimes actually executed on
   the simulator, every iteration's results compared to the reference. *)
let dynamic () =
  header
    "Dynamic verification: overlapped and modulo execution on the simulator";
  let big lines = { Eit.Arch.default with Eit.Arch.lines } in
  List.iter
    (fun (name, g, m, lines) ->
      let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
      match o.Sched.Solve.schedule with
      | None -> Format.printf "%-8s (no schedule)@." name
      | Some sch -> (
        (match Sched.Overlap_sim.run_and_check ~arch:(big lines) sch ~m with
        | Ok r ->
          Format.printf
            "%-8s overlap M=%-3d %5d results verified, port-clean=%b@." name m
            r.Sched.Overlap_sim.checked_values r.Sched.Overlap_sim.access_clean
        | Error e -> Format.printf "%-8s overlap M=%d FAILED: %s@." name m e);
        match Sched.Modulo.solve_excluding ~budget_ms:30_000. g with
        | None -> ()
        | Some r -> (
          match
            Sched.Modulo_sim.run_and_check ~arch:(big (2 * lines)) g r
              ~iterations:4
          with
          | Ok rep ->
            Format.printf
              "%-8s modulo  N=4   %5d results verified, port-clean=%b, \
               completion=%d (= span+3*II: %b)@."
              name rep.Sched.Modulo_sim.checked_values
              rep.Sched.Modulo_sim.access_clean rep.Sched.Modulo_sim.completion
              (rep.Sched.Modulo_sim.completion
              = r.Sched.Modulo.span + (3 * r.Sched.Modulo.ii))
          | Error e -> Format.printf "%-8s modulo FAILED: %s@." name e)))
    [
      ("MATMUL", matmul (), 8, 16);
      ("ARF", arf (), 7, 32);
      ("QRD", qrd (), 12, 16);
    ]

(* §4.2: "There are many different ways to express the same algorithm in
   the DSL, and these different expressions may result in different
   graphs, which in turn may result in different schedules." *)
let expressiveness () =
  header "Expressiveness (§4.2): MATMUL as 16 dot products vs 4 matrix ops";
  Format.printf "%-22s %-30s %-10s %-10s %-14s@." "expression" "graph"
    "makespan" "modulo II" "thr (it/cc)";
  List.iter
    (fun (name, g) ->
      let g = merged g in
      let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 15_000.) g in
      let mk =
        match o.Sched.Solve.schedule with
        | Some sch -> string_of_int sch.Sched.Schedule.makespan
        | None -> "-"
      in
      match Sched.Modulo.solve_excluding ~budget_ms:15_000. g with
      | Some r ->
        Format.printf "%-22s %-30s %-10s %-10d %-14.3f@." name
          (Format.asprintf "%a" Stats.pp (Stats.of_ir g))
          mk r.Sched.Modulo.actual_ii r.Sched.Modulo.throughput
      | None ->
        Format.printf "%-22s %-30s %-10s timeout@." name
          (Format.asprintf "%a" Stats.pp (Stats.of_ir g))
          mk)
    [
      ("16 x v_dotP + merges", Apps.Matmul.graph (Apps.Matmul.build ()));
      ("4 x m_vmul", Apps.Matmul.graph (Apps.Matmul.build_matrix_form ()));
    ]

(* A5: exact CP vs greedy list scheduling — why pay for a solver? *)
let ablation_exact_vs_greedy () =
  header "Ablation A5: exact CP model vs heuristic list scheduler";
  Format.printf "%-10s %-22s %-22s@." "kernel" "CP (makespan, ms)" "greedy (makespan, ms)";
  List.iter
    (fun (name, g) ->
      let t0 = Unix.gettimeofday () in
      let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
      let cp_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let cp =
        match o.Sched.Solve.schedule with
        | Some sch -> Printf.sprintf "%d, %.0f ms" sch.Sched.Schedule.makespan cp_ms
        | None -> "-"
      in
      let t1 = Unix.gettimeofday () in
      let greedy =
        match Sched.Heuristic.run g with
        | Ok sch ->
          Printf.sprintf "%d, %.1f ms" sch.Sched.Schedule.makespan
            ((Unix.gettimeofday () -. t1) *. 1000.)
        | Error e -> "failed: " ^ e
      in
      Format.printf "%-10s %-22s %-22s@." name cp greedy)
    [
      ("QRD", qrd ()); ("ARF", arf ()); ("MATMUL", matmul ());
      ("DETECT", merged (Apps.Detect.graph (Apps.Detect.build ())));
    ];
  Format.printf
    "@.Greedy matches the optimum on these CP-dominated kernels; the exact      model earns its cost on proofs, tight memories (Table 1's cliff) and      reconfiguration co-optimization (Table 3).@."

let ablations () =
  ablation_heuristics ();
  ablation_memory ();
  ablation_merge ();
  archsweep ();
  expressiveness ();
  ablation_exact_vs_greedy ()

(* ------------------------------------------------------------------ *)
(* Bechamel timing: one measurement per table                          *)

let bechamel () =
  let open Bechamel in
  let test_table1 =
    Test.make ~name:"table1:schedule-qrd-64slots"
      (Staged.stage (fun () ->
           let g = qrd () in
           ignore (Sched.Solve.run ~budget:(Fd.Search.time_budget 5_000.) g)))
  in
  let test_table2 =
    Test.make ~name:"table2:overlap-qrd-m12"
      (Staged.stage (fun () ->
           let g = qrd () in
           ignore (Sched.Manual_baseline.overlapped g Eit.Arch.default ~m:12)))
  in
  let test_table3 =
    Test.make ~name:"table3:modulo-matmul"
      (Staged.stage (fun () ->
           ignore (Sched.Modulo.solve_excluding ~budget_ms:5_000. (matmul ()))))
  in
  let test_merge =
    Test.make ~name:"fig6:merge-pass-qrd"
      (Staged.stage (fun () ->
           ignore (Merge.run (Apps.Qrd.graph (Apps.Qrd.build ())))))
  in
  let test_sim =
    let g = matmul () in
    let sch =
      Option.get
        (Sched.Solve.run ~budget:(Fd.Search.time_budget 5_000.) g)
          .Sched.Solve.schedule
    in
    let p = Sched.Codegen.program sch in
    Test.make ~name:"simulator:matmul"
      (Staged.stage (fun () -> ignore (Eit.Machine.run p)))
  in
  let tests =
    Test.make_grouped ~name:"vecsched"
      [ test_table1; test_table2; test_table3; test_merge; test_sim ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:8 ~quota:(Time.second 2.0) ~kde:(Some 10) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let results = analyze (benchmark tests) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Format.printf "%-36s %14.0f ns/run@." name est
      | _ -> Format.printf "%-36s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)
(* Robustness: anytime degradation under shrinking budgets             *)

let fallback_makespan ?(arch = Vecsched.Arch.default) g =
  match Sched.Heuristic.run ~arch g with
  | Ok sch -> Some sch.Sched.Schedule.makespan
  | Error _ -> None

let robustness () =
  header
    "Robustness: CP vs heuristic fallback under deadline pressure (exit \
     contract: 0 CP schedule, 2 fallback, 3 infeasible, 4 none)";
  Format.printf "%-8s %-12s %-18s %-10s %-14s %-6s@." "kernel" "budget (ms)"
    "status" "engine" "makespan (cc)" "exit";
  let kernels = [ ("QRD", qrd); ("ARF", arf); ("MATMUL", matmul) ] in
  List.iter
    (fun (name, build) ->
      List.iter
        (fun budget_ms ->
          let o = Sched.Solve.run ~budget:(Fd.Search.time_budget budget_ms) (build ()) in
          Format.printf "%-8s %-12.0f %-18s %-10s %-14s %-6d@." name budget_ms
            (Format.asprintf "%a" Sched.Solve.pp_status o.Sched.Solve.status)
            (Format.asprintf "%a" Sched.Solve.pp_engine o.Sched.Solve.engine)
            (match o.Sched.Solve.schedule with
            | Some sch -> string_of_int sch.Sched.Schedule.makespan
            | None -> "-")
            (Sched.Solve.exit_code o))
        [ 0.; 1.; 10.; 30_000. ])
    kernels;
  (* Fault injection: kill one portfolio worker mid-search; the others
     still deliver (and usually prove) the incumbent. *)
  Format.printf "@.chaos: 4-worker portfolio on QRD, worker 0 killed after 200 \
                 propagator executions@.";
  let chaos = Fd.Chaos.create ~kill_workers:[ 0 ] ~kill_after:200 ~seed:42 () in
  let o =
    Sched.Solve.run ~budget:(Fd.Search.time_budget 30_000.) ~parallel:4 ~chaos
      (qrd ())
  in
  Format.printf "  status=%a engine=%a makespan=%s crashes=%d validated=%b@."
    Sched.Solve.pp_status o.Sched.Solve.status Sched.Solve.pp_engine
    o.Sched.Solve.engine
    (match o.Sched.Solve.schedule with
    | Some sch -> string_of_int sch.Sched.Schedule.makespan
    | None -> "-")
    (List.length o.Sched.Solve.crashes)
    (o.Sched.Solve.validation = Ok ())

(* ------------------------------------------------------------------ *)
(* Per-propagator hot-spot profiles: one sequential solve per kernel
   with an [Obs.Agg] sink attached (store timing is auto-enabled by the
   search when a sink is live).  These runs are separate from the
   timed regression rows so the <5% instrumentation overhead never
   pollutes the tracked time_ms numbers. *)

let profile_rows ?(budget = Fd.Search.time_budget 10_000.) kernels =
  List.map
    (fun (kernel, g) ->
      let agg = Obs.Agg.create () in
      let optimal = ref false in
      Obs.with_sink (Obs.Agg.sink agg) (fun () ->
          let o = Sched.Solve.run ~budget g in
          optimal := o.Sched.Solve.stats.Fd.Search.optimal);
      (kernel, !optimal, Obs.Agg.profiles agg))
    kernels

let profile_json profiles =
  let open Obs.Json in
  Arr
    (List.map
       (fun (kernel, optimal, rows) ->
         Obj
           [
             ("kernel", Str kernel);
             ("optimal", Bool optimal);
             ( "rows",
               Arr
                 (List.map
                    (fun (name, p) ->
                      Obj
                        [
                          ("name", Str name);
                          ("runs", Num (float_of_int p.Obs.Agg.p_runs));
                          ("wakes", Num (float_of_int p.Obs.Agg.p_wakes));
                          ("prunes", Num (float_of_int p.Obs.Agg.p_prunes));
                          ("entails", Num (float_of_int p.Obs.Agg.p_entails));
                          ("time_ms", Num p.Obs.Agg.p_time_ms);
                        ])
                    rows) );
           ])
       profiles)

let print_profile_table profiles =
  List.iter
    (fun (kernel, _, rows) ->
      Format.printf "@.%s@.%-22s %8s %8s %8s %8s %12s@." kernel "propagator"
        "runs" "wakes" "prunes" "entails" "time (ms)";
      List.iter
        (fun (name, p) ->
          Format.printf "%-22s %8d %8d %8d %8d %12.2f@." name p.Obs.Agg.p_runs
            p.Obs.Agg.p_wakes p.Obs.Agg.p_prunes p.Obs.Agg.p_entails
            p.Obs.Agg.p_time_ms)
        rows)
    profiles

(* The `profile` subcommand: regenerate only the propagator_profiles
   section of BENCH_solver.json, keeping the regression rows already in
   the file (so a quick profile refresh needs no 30 s sweep). *)
let profile ?(path = "BENCH_solver.json") () =
  header (Printf.sprintf "Per-propagator hot-spot profiles -> %s" path);
  let profiles =
    profile_rows [ ("QRD", qrd ()); ("ARF", arf ()); ("MATMUL", matmul ()) ]
  in
  print_profile_table profiles;
  let suite, runs =
    match Obs.Json.parse_file path with
    | Ok j ->
      ( (match Obs.Json.member "suite" j with
        | Some (Obs.Json.Str s) -> s
        | _ -> "vecsched-solver"),
        match Obs.Json.member "runs" j with
        | Some (Obs.Json.Arr rs) -> rs
        | _ -> [] )
    | Error _ -> ("vecsched-solver", [])
  in
  let doc =
    Obs.Json.Obj
      ([
         ("suite", Obs.Json.Str suite);
         ("runs", Obs.Json.Arr runs);
         ("propagator_profiles", profile_json profiles);
       ]
      @ existing_sections path)
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Format.printf "@.wrote %d kernel profiles to %s (%d runs kept)@."
    (List.length profiles) path (List.length runs)

(* ------------------------------------------------------------------ *)
(* Service load generator: a replayable, seeded open-loop driver for
   the batch scheduling service (lib/serve).  Open-loop means arrivals
   follow the seeded exponential process regardless of completions, so
   an overloaded service sheds (visible in the shed rate) instead of
   silently slowing the generator down.  Results land in
   BENCH_solver.json under a "service" key, alongside (never
   replacing) the solver regression rows. *)

let load ?(path = "BENCH_solver.json") ?(requests = 200) ?(pool = 4)
    ?(queue = 64) ?(seed = 42) ?(chaos = false) ?(trace_sample = 0)
    ?(tail_keep = 0) ?flight_dir ?(flight_buf = 4096) () =
  header
    (Printf.sprintf
       "Service load: %d open-loop requests (mix qrd/arf/matmul/xml-import), \
        pool=%d queue=%d seed=%d chaos=%b%s"
       requests pool queue seed chaos
       (match flight_dir with
       | Some d ->
         Printf.sprintf " flight-dir=%s buf=%d tail-keep=%d" d flight_buf
           tail_keep
       | None -> ""));
  (* A survivable fault rate: the probabilities are per propagator
     execution, and a 40 ms attempt runs thousands of them, so even
     2e-5 crashes a visible minority of requests.  The point is a
     tail-retention-realistic mix — mostly healthy traffic with a
     scattering of crashed/retried anomalies — not the saturation soak
     (that lives in test/t_serve.ml with crash_prob 0.02). *)
  let chaos_t =
    if chaos then
      Some
        (Fd.Chaos.create ~crash_prob:1e-4 ~delay_prob:0.05 ~delay_ms:1. ~seed ())
    else None
  in
  let config =
    {
      Serve.Service.default_config with
      pool;
      queue;
      default_budget_ms = 40.;
      grace_ms = 300.;
      watchdog_tick_ms = 10.;
      seed;
      chaos = chaos_t;
      metrics = Some (Obs.Metrics.create ());
      trace_sample;
      tail_keep;
      flight_dir;
      flight_buf;
    }
  in
  let svc = Serve.Service.create ~config () in
  let fir_xml = Vecsched.Xml.to_string (fir ()) in
  let rng = Random.State.make [| seed; 0x10ad |] in
  let t0 = Unix.gettimeofday () in
  let tickets =
    List.init requests (fun i ->
        (* exponential inter-arrival, ~5 ms mean: about 2x the pool's
           service rate at the 40 ms budget, so shedding is exercised *)
        Unix.sleepf (-.0.005 *. log (1. -. Random.State.float rng 1.));
        let id = Printf.sprintf "r%03d" i in
        let workload =
          match i mod 4 with
          | 0 -> Serve.Service.Kernel "qrd"
          | 1 -> Serve.Service.Kernel "arf"
          | 2 -> Serve.Service.Kernel "matmul"
          | _ -> Serve.Service.Xml_text fir_xml
        in
        Serve.Service.submit svc
          (Serve.Service.request ~id ~budget_ms:40. ~deadline_ms:2_000. workload))
  in
  let responses = List.map Serve.Service.await tickets in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (* shut down before reading health: joining the pool guarantees every
     completion's metrics observation has landed, so the histogram
     count below equals the response count exactly *)
  Serve.Service.shutdown svc;
  let h = Serve.Service.health svc in
  let lat =
    Array.of_list (List.map (fun r -> r.Serve.Service.total_ms) responses)
  in
  Array.sort compare lat;
  let statuses =
    List.sort_uniq compare (List.map Serve.Service.status_string responses)
  in
  let count s =
    List.length
      (List.filter (fun r -> Serve.Service.status_string r = s) responses)
  in
  let throughput = float_of_int requests /. (wall_ms /. 1000.) in
  Format.printf "%-24s %10.1f req/s@." "throughput" throughput;
  Format.printf "%-24s %10.1f / %.1f / %.1f ms@." "latency p50/p95/p99"
    (percentile lat 50.) (percentile lat 95.) (percentile lat 99.);
  List.iter (fun s -> Format.printf "%-24s %10d@." s (count s)) statuses;
  Format.printf "%-24s %10d@." "retries" h.Serve.Service.retries;
  Format.printf "%-24s %10d@." "fallback rescues" h.Serve.Service.fallbacks;
  Format.printf "%-24s %10d@." "workers revived" h.Serve.Service.revived;
  (* Tail retention: kept + dropped = completed exactly (the winner-only
     completion chokepoint settles every ring once), and the retained
     fraction is the number the 10%-volume acceptance bound watches. *)
  let retained_fraction =
    if h.Serve.Service.completed = 0 then 0.
    else
      float_of_int h.Serve.Service.flight_kept
      /. float_of_int h.Serve.Service.completed
  in
  if Option.is_some flight_dir then begin
    Format.printf "%-24s %10d kept / %d dropped / %d dumped@." "flight traces"
      h.Serve.Service.flight_kept h.Serve.Service.flight_dropped
      h.Serve.Service.flight_dumped;
    Format.printf "%-24s %10.1f %% of completions@." "retained fraction"
      (100. *. retained_fraction)
  end;
  (* Cross-check the live latency histogram against ground truth: the
     exact p99 of the full retained sample, computed with the
     histogram's own rank convention (the ceil(q*n)-th smallest), must
     agree within the histogram's stated relative-error bound. *)
  let ht = h.Serve.Service.lat_total in
  let n = Array.length lat in
  let exact q =
    if n = 0 then 0.
    else lat.(max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) - 1)
  in
  let bound =
    Obs.Metrics.relative_error
      (Obs.Metrics.histogram (Serve.Service.metrics svc) "serve.total_ms")
  in
  let p99_exact = exact 0.99 in
  let p99_hist = ht.Obs.Metrics.p99 in
  let rel =
    if p99_exact > 0. then abs_float (p99_hist -. p99_exact) /. p99_exact
    else abs_float (p99_hist -. p99_exact)
  in
  let within = rel <= bound +. 1e-9 in
  Format.printf "%-24s %10.1f ms (exact %.1f; rel err %.5f <= %.5f: %s)@."
    "histogram p99" p99_hist p99_exact rel bound
    (if within then "OK" else "CROSS-CHECK FAILED");
  if ht.Obs.Metrics.count <> n then
    Format.printf "%-24s histogram count %d <> responses %d@." "WARNING"
      ht.Obs.Metrics.count n;
  Format.printf "%-24s %10.4f / %.4f@." "error / deadline-hit rate"
    h.Serve.Service.slo.Obs.Metrics.error_rate
    h.Serve.Service.slo.Obs.Metrics.deadline_hit_rate;
  let service_json =
    let num i = Obs.Json.Num (float_of_int i) in
    Obs.Json.Obj
      [
        ("requests", num requests);
        ("pool", num pool);
        ("queue", num queue);
        ("seed", num seed);
        ("chaos", Obs.Json.Bool chaos);
        ("wall_ms", Obs.Json.Num wall_ms);
        ("throughput_rps", Obs.Json.Num throughput);
        ("p50_ms", Obs.Json.Num (percentile lat 50.));
        ("p95_ms", Obs.Json.Num (percentile lat 95.));
        ("p99_ms", Obs.Json.Num (percentile lat 99.));
        ( "statuses",
          Obs.Json.Obj (List.map (fun s -> (s, num (count s))) statuses) );
        ("shed", num h.Serve.Service.shed);
        ("expired", num h.Serve.Service.expired);
        ("wedged", num h.Serve.Service.wedged);
        ("retries", num h.Serve.Service.retries);
        ("fallbacks", num h.Serve.Service.fallbacks);
        ("revived", num h.Serve.Service.revived);
        ("tail_keep", num tail_keep);
        ("trace_sample", num trace_sample);
        ( "flight_dir",
          match flight_dir with
          | Some d -> Obs.Json.Str d
          | None -> Obs.Json.Null );
      ]
  in
  let metrics_json =
    Obs.Json.Obj
      [
        ("count", Obs.Json.Num (float_of_int ht.Obs.Metrics.count));
        ("p50_hist_ms", Obs.Json.Num ht.Obs.Metrics.p50);
        ("p99_exact_ms", Obs.Json.Num p99_exact);
        ("p99_hist_ms", Obs.Json.Num p99_hist);
        ("rel_err", Obs.Json.Num rel);
        ("rel_err_bound", Obs.Json.Num bound);
        ("within_bound", Obs.Json.Bool within);
        ( "error_rate",
          Obs.Json.Num h.Serve.Service.slo.Obs.Metrics.error_rate );
        ( "deadline_hit_rate",
          Obs.Json.Num h.Serve.Service.slo.Obs.Metrics.deadline_hit_rate );
        ("flight_kept", Obs.Json.Num (float_of_int h.Serve.Service.flight_kept));
        ( "flight_dropped",
          Obs.Json.Num (float_of_int h.Serve.Service.flight_dropped) );
        ( "flight_dumped",
          Obs.Json.Num (float_of_int h.Serve.Service.flight_dumped) );
        ("retained_fraction", Obs.Json.Num retained_fraction);
      ]
  in
  let doc =
    match Obs.Json.parse_file path with
    | Ok j -> set_member "metrics" metrics_json (set_member "service" service_json j)
    | Error _ ->
      Obs.Json.Obj
        [
          ("suite", Obs.Json.Str "vecsched-solver");
          ("runs", Obs.Json.Arr []);
          ("service", service_json);
          ("metrics", metrics_json);
        ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Format.printf "@.merged \"service\" + \"metrics\" sections into %s@." path

(* ------------------------------------------------------------------ *)
(* Solution-cache benchmark: hit rate under a repeat-heavy request mix
   through a cache-enabled service, then warm-vs-cold re-solve
   speedups per kernel.  Results land in BENCH_solver.json under a
   "cache" key, which every other writer passes through
   (Vecsched_core.Bench_sections). *)

let cache_bench ?(path = "BENCH_solver.json") ?(requests = 120) ?(pool = 2)
    ?(seed = 42) () =
  header
    (Printf.sprintf
       "Solution cache: %d repeat-heavy requests (mix qrd/arf/matmul, \
        pool=%d, 64-entry cache), then warm-vs-cold re-solves"
       requests pool);
  let config =
    {
      Serve.Service.default_config with
      pool;
      queue = max 64 requests;
      default_budget_ms = 10_000.;
      grace_ms = 300.;
      watchdog_tick_ms = 10.;
      seed;
      cache_capacity = 64;
    }
  in
  let svc = Serve.Service.create ~config () in
  let mix = [| "qrd"; "arf"; "qrd"; "matmul"; "qrd"; "arf" |] in
  let t0 = Unix.gettimeofday () in
  let tickets =
    List.init requests (fun i ->
        let id = Printf.sprintf "c%03d" i in
        Serve.Service.submit svc
          (Serve.Service.request ~id ~budget_ms:10_000. ~deadline_ms:120_000.
             (Serve.Service.Kernel mix.(i mod Array.length mix))))
  in
  let responses = List.map Serve.Service.await tickets in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let h = Serve.Service.health svc in
  Serve.Service.shutdown svc;
  let cached_responses =
    List.length
      (List.filter
         (fun r ->
           match r.Serve.Service.reply with
           | Serve.Service.Solved s -> s.Serve.Service.cached
           | _ -> false)
         responses)
  in
  let lookups = h.Serve.Service.cache_hits + h.Serve.Service.cache_misses in
  let hit_rate =
    if lookups = 0 then 0.
    else float_of_int h.Serve.Service.cache_hits /. float_of_int lookups
  in
  Format.printf "%-24s %10d@." "requests" requests;
  Format.printf "%-24s %10d / %d@." "cache hits/misses"
    h.Serve.Service.cache_hits h.Serve.Service.cache_misses;
  Format.printf "%-24s %10.2f@." "hit rate" hit_rate;
  Format.printf "%-24s %10d@." "cached responses" cached_responses;
  Format.printf "%-24s %10.1f ms@." "wall" wall_ms;
  (* warm-vs-cold: seed each kernel's re-solve with its own optimum,
     the best case a shape hint can supply *)
  Format.printf "@.%-8s %9s %9s %8s | %9s %9s@." "kernel" "cold(ms)"
    "warm(ms)" "speedup" "nodes(c)" "nodes(w)";
  let warm_rows =
    List.filter_map
      (fun (name, g) ->
        let budget = Fd.Search.time_budget 60_000. in
        let cold = Sched.Solve.run ~budget g in
        match (cold.Sched.Solve.status, cold.Sched.Solve.schedule) with
        | Sched.Solve.Optimal, Some sch ->
          let warm =
            Sched.Solve.run ~budget
              ~warm_bound:sch.Sched.Schedule.makespan g
          in
          let cms = cold.Sched.Solve.stats.Fd.Search.time_ms
          and wms = warm.Sched.Solve.stats.Fd.Search.time_ms in
          let speedup = if wms > 0. then cms /. wms else 0. in
          Format.printf "%-8s %9.1f %9.1f %7.2fx | %9d %9d@." name cms wms
            speedup cold.Sched.Solve.stats.Fd.Search.nodes
            warm.Sched.Solve.stats.Fd.Search.nodes;
          Some
            (Obs.Json.Obj
               [
                 ("kernel", Obs.Json.Str name);
                 ("cold_ms", Obs.Json.Num cms);
                 ("warm_ms", Obs.Json.Num wms);
                 ("speedup", Obs.Json.Num speedup);
                 ( "cold_nodes",
                   Obs.Json.Num
                     (float_of_int cold.Sched.Solve.stats.Fd.Search.nodes) );
                 ( "warm_nodes",
                   Obs.Json.Num
                     (float_of_int warm.Sched.Solve.stats.Fd.Search.nodes) );
               ])
        | _ ->
          Format.printf "%-8s did not reach optimal; skipped@." name;
          None)
      [ ("qrd", qrd ()); ("arf", arf ()); ("matmul", matmul ()) ]
  in
  let cache_json =
    let num i = Obs.Json.Num (float_of_int i) in
    Obs.Json.Obj
      [
        ("requests", num requests);
        ("pool", num pool);
        ("hits", num h.Serve.Service.cache_hits);
        ("misses", num h.Serve.Service.cache_misses);
        ("evictions", num h.Serve.Service.cache_evictions);
        ("hit_rate", Obs.Json.Num hit_rate);
        ("cached_responses", num cached_responses);
        ("wall_ms", Obs.Json.Num wall_ms);
        ("warm", Obs.Json.Arr warm_rows);
      ]
  in
  let doc =
    match Obs.Json.parse_file path with
    | Ok j -> set_member "cache" cache_json j
    | Error _ ->
      Obs.Json.Obj
        [
          ("suite", Obs.Json.Str "vecsched-solver");
          ("runs", Obs.Json.Arr []);
          ("cache", cache_json);
        ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Format.printf "@.merged \"cache\" section into %s@." path

(* ------------------------------------------------------------------ *)
(* ------------------------------------------------------------------ *)
(* `bench history`: one CSV row per invocation — commit, the kernels'
   sequential optima and deterministic propagation counts, the service
   latency quantiles, the histogram cross-check estimate and the cache
   hit rate, all read from BENCH_solver.json's sections — plus a
   regenerated Markdown trend table next to it, so drift across
   commits is visible at a glance. *)

let git_commit () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ | (exception _) -> "unknown")

let history_columns =
  [ "commit"; "qrd_makespan"; "arf_makespan"; "matmul_makespan";
    "qrd_propagations"; "service_p50_ms"; "service_p95_ms";
    "service_p99_ms"; "hist_p99_ms"; "cache_hit_rate" ]

let history ?(path = "BENCH_solver.json") ?(csv = "bench_history.csv") () =
  let md = Filename.remove_extension csv ^ ".md" in
  header (Printf.sprintf "Bench history: %s -> %s + %s" path csv md);
  match Obs.Json.parse_file path with
  | Error e ->
    Format.printf "cannot read %s: %s (run `bench perfjson` / `bench load` \
                   first)@." path e;
    1
  | Ok j ->
    let module J = Obs.Json in
    let runs =
      match J.member "runs" j with Some (J.Arr rs) -> rs | _ -> []
    in
    (* the deterministic anchor rows: sequential, default 64 slots *)
    let runf kernel field =
      List.find_opt
        (fun r ->
          J.member "kernel" r = Some (J.Str kernel)
          && J.member "mode" r = Some (J.Str "sequential")
          && J.member "slots" r = Some (J.Num 64.))
        runs
      |> Option.map (J.member field)
      |> function Some (Some (J.Num f)) -> Some f | _ -> None
    in
    let sect name field =
      match J.member name j with
      | Some s -> (
        match J.member field s with Some (J.Num f) -> Some f | _ -> None)
      | None -> None
    in
    let cell = function
      | None -> ""
      | Some f ->
        if Float.is_integer f then Printf.sprintf "%.0f" f
        else Printf.sprintf "%.3f" f
    in
    let commit = git_commit () in
    let row =
      [
        commit;
        cell (runf "QRD" "makespan");
        cell (runf "ARF" "makespan");
        cell (runf "MATMUL" "makespan");
        cell (runf "QRD" "propagations");
        cell (sect "service" "p50_ms");
        cell (sect "service" "p95_ms");
        cell (sect "service" "p99_ms");
        cell (sect "metrics" "p99_hist_ms");
        cell (sect "cache" "hit_rate");
      ]
    in
    let fresh = not (Sys.file_exists csv) in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 csv in
    if fresh then output_string oc (String.concat "," history_columns ^ "\n");
    output_string oc (String.concat "," row ^ "\n");
    close_out oc;
    (* regenerate the Markdown table from the whole CSV, latest last *)
    let lines =
      let ic = open_in csv in
      let acc = ref [] in
      (try
         while true do
           let l = input_line ic in
           if String.trim l <> "" then acc := l :: !acc
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !acc
    in
    (match lines with
    | hd :: rows ->
      let cells l = String.split_on_char ',' l in
      let moc = open_out md in
      output_string moc "# Bench history\n\n";
      output_string moc
        "One row per `bench history` run; sections come from \
         `BENCH_solver.json` (`perfjson`, `load`, `cache`).\n\n";
      output_string moc ("| " ^ String.concat " | " (cells hd) ^ " |\n");
      output_string moc
        ("|" ^ String.concat "|" (List.map (fun _ -> "---") (cells hd))
        ^ "|\n");
      List.iter
        (fun l -> output_string moc ("| " ^ String.concat " | " (cells l) ^ " |\n"))
        rows;
      close_out moc
    | [] -> ());
    Format.printf "%-12s %s@." "commit" commit;
    List.iter2
      (fun k v -> if v <> "" then Format.printf "%-20s %s@." k v)
      (List.tl history_columns) (List.tl row);
    Format.printf "@.appended row to %s (%d total), wrote %s@." csv
      (List.length lines - 1) md;
    0

(* perfjson / compare: machine-readable solver metrics for regression
   tracking.  Both run the same in-memory suite; `perfjson` writes it
   to BENCH_solver.json, `compare` diffs it against the committed file
   and gates CI on deterministic-counter regressions. *)

type run_row = {
  r_kernel : string;
  r_mode : string;
  r_slots : int;
  r_status : string;
  r_engine : string;
  r_makespan : int option;
  r_fallback : int option;
  r_nodes : int;
  r_failures : int;
  r_propagations : int;
  r_time_ms : float;
  r_optimal : bool;
}

let row_key r = (r.r_kernel, r.r_mode, r.r_slots)

let run_row ~kernel ~mode ~slots ?(arch = Vecsched.Arch.default) ~g o =
  let st = o.Sched.Solve.stats in
  {
    r_kernel = kernel;
    r_mode = mode;
    r_slots = slots;
    r_status = Format.asprintf "%a" Sched.Solve.pp_status o.Sched.Solve.status;
    r_engine = Format.asprintf "%a" Sched.Solve.pp_engine o.Sched.Solve.engine;
    r_makespan =
      Option.map
        (fun sch -> sch.Sched.Schedule.makespan)
        o.Sched.Solve.schedule;
    r_fallback = fallback_makespan ~arch g;
    r_nodes = st.Fd.Search.nodes;
    r_failures = st.Fd.Search.failures;
    r_propagations = st.Fd.Search.propagations;
    r_time_ms = st.Fd.Search.time_ms;
    r_optimal = st.Fd.Search.optimal;
  }

(* The regression suite.  With a trace sink attached (bench --trace),
   every run gets its own named track ("QRD/sequential/64") so a whole
   sweep lands in one Perfetto-loadable file. *)
let suite_rows ?(budget = Fd.Search.time_budget 30_000.) () =
  let rows = ref [] in
  (* One row per (kernel, mode, slots): the Table-1 sweep and the
     per-kernel loop both produce (QRD, sequential, 64), which used to
     land in the file twice — the lazy run wins, the later duplicate is
     skipped. *)
  let seen = Hashtbl.create 16 in
  let idx = ref 0 in
  let add ~kernel ~mode ~slots mk_row =
    let key = (kernel, mode, slots) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let row =
        if Obs.enabled () then begin
          let tid = 100 + !idx in
          incr idx;
          let label = Printf.sprintf "%s/%s/%d" kernel mode slots in
          Obs.thread_name ~cat:"bench" ~tid label;
          Obs.span ~cat:"bench" ~tid label mk_row
        end
        else mk_row ()
      in
      rows := row :: !rows
    end
  in
  (* Table 1 sweep: the sequential engine across memory pressures. *)
  List.iter
    (fun slots ->
      let arch = Vecsched.Arch.with_slots Vecsched.Arch.default slots in
      let g = qrd () in
      add ~kernel:"QRD" ~mode:"sequential" ~slots (fun () ->
          run_row ~kernel:"QRD" ~mode:"sequential" ~slots ~arch ~g
            (Sched.Solve.run ~arch ~budget g)))
    [ 64; 32; 16; 10; 9 ];
  (* Every kernel, sequential vs 4-worker portfolio, default arch. *)
  List.iter
    (fun (kernel, g) ->
      add ~kernel ~mode:"sequential" ~slots:64 (fun () ->
          run_row ~kernel ~mode:"sequential" ~slots:64 ~g
            (Sched.Solve.run ~budget g));
      add ~kernel ~mode:"portfolio-4" ~slots:64 (fun () ->
          run_row ~kernel ~mode:"portfolio-4" ~slots:64 ~g
            (Sched.Solve.run ~budget ~parallel:4 g));
      (* the degraded path, measured: what a 0 ms deadline delivers *)
      add ~kernel ~mode:"fallback" ~slots:64 (fun () ->
          run_row ~kernel ~mode:"fallback" ~slots:64 ~g
            (Sched.Solve.run ~budget:(Fd.Search.time_budget 0.) g)))
    [ ("QRD", qrd ()); ("ARF", arf ()); ("MATMUL", matmul ()) ];
  List.rev !rows

let row_json r =
  let opt = function Some m -> string_of_int m | None -> "null" in
  Printf.sprintf
    "    { \"kernel\": %S, \"mode\": %S, \"slots\": %d, \"status\": %S,\n\
    \      \"engine\": %S, \"makespan\": %s, \"fallback_makespan\": %s,\n\
    \      \"nodes\": %d, \"failures\": %d,\n\
    \      \"propagations\": %d, \"time_ms\": %.1f, \"optimal\": %b }"
    r.r_kernel r.r_mode r.r_slots r.r_status r.r_engine (opt r.r_makespan)
    (opt r.r_fallback) r.r_nodes r.r_failures r.r_propagations r.r_time_ms
    r.r_optimal

let perfjson ?(path = "BENCH_solver.json") () =
  header (Printf.sprintf "Solver performance metrics -> %s" path);
  let rows = suite_rows () in
  (* The hot-spot table rides along in the same file (separate,
     instrumented runs -- see profile_rows). *)
  let profiles =
    profile_rows [ ("QRD", qrd ()); ("ARF", arf ()); ("MATMUL", matmul ()) ]
  in
  (* keep sections written by other generators (`load`, `cache`) *)
  let sections = existing_sections path in
  let oc = open_out path in
  output_string oc "{\n  \"suite\": \"vecsched-solver\",\n  \"runs\": [\n";
  output_string oc (String.concat ",\n" (List.map row_json rows));
  output_string oc "\n  ],\n  \"propagator_profiles\": ";
  output_string oc (Obs.Json.to_string (profile_json profiles));
  List.iter
    (fun (name, sec) ->
      output_string oc (Printf.sprintf ",\n  %S: " name);
      output_string oc (Obs.Json.to_string sec))
    sections;
  output_string oc "\n}\n";
  close_out oc;
  Format.printf "wrote %d runs and %d kernel profiles to %s@."
    (List.length rows) (List.length profiles) path

let parse_baseline path : (run_row list, string) result =
  match Obs.Json.parse_file path with
  | Error e -> Error e
  | Ok j -> (
    match Obs.Json.member "runs" j with
    | Some (Obs.Json.Arr rs) ->
      Ok
        (List.filter_map
           (fun r ->
             let str k =
               match Obs.Json.member k r with
               | Some (Obs.Json.Str s) -> Some s
               | _ -> None
             in
             let num k =
               match Obs.Json.member k r with
               | Some (Obs.Json.Num f) -> Some f
               | _ -> None
             in
             let int ?(default = 0) k =
               match num k with Some f -> int_of_float f | None -> default
             in
             match (str "kernel", str "mode", num "slots") with
             | Some kernel, Some mode, Some slots ->
               Some
                 {
                   r_kernel = kernel;
                   r_mode = mode;
                   r_slots = int_of_float slots;
                   r_status = Option.value ~default:"" (str "status");
                   r_engine = Option.value ~default:"" (str "engine");
                   r_makespan = Option.map int_of_float (num "makespan");
                   r_fallback =
                     Option.map int_of_float (num "fallback_makespan");
                   r_nodes = int "nodes";
                   r_failures = int "failures";
                   r_propagations = int "propagations";
                   r_time_ms = Option.value ~default:0. (num "time_ms");
                   r_optimal =
                     (match Obs.Json.member "optimal" r with
                     | Some (Obs.Json.Bool b) -> b
                     | _ -> false);
                 }
             | _ -> None)
           rs)
    | _ -> Error "missing \"runs\" array")

(* Per-kernel propagator run counts from the baseline's
   propagator_profiles section: (kernel, optimal, (name, runs) list).
   Baselines written before the "optimal" field existed were all
   proved-optimal sequential runs, so a missing field defaults to
   [true]. *)
let parse_profile_baseline path :
    ((string * bool * (string * int) list) list, string) result =
  match Obs.Json.parse_file path with
  | Error e -> Error e
  | Ok j -> (
    match Obs.Json.member "propagator_profiles" j with
    | Some (Obs.Json.Arr ks) ->
      Ok
        (List.filter_map
           (fun k ->
             match Obs.Json.member "kernel" k with
             | Some (Obs.Json.Str kernel) ->
               let optimal =
                 match Obs.Json.member "optimal" k with
                 | Some (Obs.Json.Bool b) -> b
                 | _ -> true
               in
               let rows =
                 match Obs.Json.member "rows" k with
                 | Some (Obs.Json.Arr rs) ->
                   List.filter_map
                     (fun r ->
                       match
                         (Obs.Json.member "name" r, Obs.Json.member "runs" r)
                       with
                       | Some (Obs.Json.Str n), Some (Obs.Json.Num f) ->
                         Some (n, int_of_float f)
                       | _ -> None)
                     rs
                 | _ -> []
               in
               Some (kernel, optimal, rows)
             | _ -> None)
           ks)
    | _ -> Error "missing \"propagator_profiles\"")

(* Only rows whose counters are reproducible can gate: portfolio rows
   race OCaml 5 domains (nodes/propagations vary run to run) and
   timeout rows stop on wall-clock, so both are advisory-only.  Time is
   always advisory — it's noisy in CI. *)
let gate_threshold = 25.

let compare_run ?(against = "BENCH_solver.json") () =
  header
    (Printf.sprintf
       "Regression compare vs %s (gate: propagations/nodes and \
        per-propagator runs +%.0f%% on deterministic rows)"
       against gate_threshold);
  match parse_baseline against with
  | Error e ->
    Format.printf "cannot load baseline %s: %s@." against e;
    1
  | Ok base ->
    let fresh = suite_rows () in
    let pct b a =
      if b = 0 then if a = 0 then 0. else infinity
      else 100. *. float_of_int (a - b) /. float_of_int b
    in
    let regressions = ref [] in
    Format.printf "%-8s %-12s %6s | %10s %10s %7s | %8s %8s %7s | %8s %8s@."
      "kernel" "mode" "slots" "props(b)" "props(a)" "d%" "nodes(b)"
      "nodes(a)" "d%" "ms(b)" "ms(a)";
    List.iter
      (fun b ->
        match List.find_opt (fun f -> row_key f = row_key b) fresh with
        | None ->
          Format.printf "%-8s %-12s %6d | row vanished from the suite@."
            b.r_kernel b.r_mode b.r_slots
        | Some f ->
          let deterministic =
            (not (String.length b.r_mode >= 9
                  && String.sub b.r_mode 0 9 = "portfolio"))
            && b.r_optimal && f.r_optimal
          in
          let dp = pct b.r_propagations f.r_propagations in
          let dn = pct b.r_nodes f.r_nodes in
          let flag metric d =
            if deterministic && d > gate_threshold then
              regressions :=
                Printf.sprintf "%s/%s/%d %s +%.1f%%" b.r_kernel b.r_mode
                  b.r_slots metric d
                :: !regressions
          in
          flag "propagations" dp;
          flag "nodes" dn;
          Format.printf
            "%-8s %-12s %6d | %10d %10d %+6.1f%% | %8d %8d %+6.1f%% | %8.1f \
             %8.1f%s@."
            b.r_kernel b.r_mode b.r_slots b.r_propagations f.r_propagations dp
            b.r_nodes f.r_nodes dn b.r_time_ms f.r_time_ms
            (if deterministic then "" else "  (advisory)"))
      base;
    List.iter
      (fun f ->
        if not (List.exists (fun b -> row_key b = row_key f) base) then
          Format.printf "%-8s %-12s %6d | new row (not in baseline)@."
            f.r_kernel f.r_mode f.r_slots)
      fresh;
    (* Per-propagator run counts: a retired propagator silently coming
       back to life (lost entailment, wake-event widening) shows up
       here long before it costs enough wall-clock to trip the row
       gate.  Sequential profile runs are deterministic whenever both
       sides proved optimality, so the same threshold gates them. *)
    (match parse_profile_baseline against with
    | Error e -> Format.printf "@.(no propagator-runs baseline: %s)@." e
    | Ok prof_base ->
      let prof_fresh =
        profile_rows [ ("QRD", qrd ()); ("ARF", arf ()); ("MATMUL", matmul ()) ]
      in
      Format.printf "@.%-8s %-22s %10s %10s %8s@." "kernel" "propagator"
        "runs(b)" "runs(a)" "d%";
      List.iter
        (fun (kernel, b_opt, b_rows) ->
          match
            List.find_opt (fun (k, _, _) -> k = kernel) prof_fresh
          with
          | None ->
            Format.printf "%-8s | kernel vanished from the profile suite@."
              kernel
          | Some (_, f_opt, f_rows) ->
            let deterministic = b_opt && f_opt in
            List.iter
              (fun (name, b_runs) ->
                let f_runs =
                  match List.find_opt (fun (n, _) -> n = name) f_rows with
                  | Some (_, p) -> p.Obs.Agg.p_runs
                  | None -> 0
                in
                let d = pct b_runs f_runs in
                if deterministic && d > gate_threshold then
                  regressions :=
                    Printf.sprintf "%s propagator %s runs +%.1f%%" kernel
                      name d
                    :: !regressions;
                Format.printf "%-8s %-22s %10d %10d %+7.1f%%%s@." kernel name
                  b_runs f_runs d
                  (if deterministic then "" else "  (advisory)"))
              b_rows)
        prof_base);
    (match !regressions with
    | [] ->
      Format.printf "@.no solver-counter regressions vs %s@." against;
      0
    | rs ->
      List.iter (fun r -> Format.printf "@.REGRESSION %s" r) (List.rev rs);
      Format.printf "@.";
      1)

(* ------------------------------------------------------------------ *)

let all () =
  graphs ();
  fig3 ();
  fig45 ();
  fig6 ();
  fig8 ();
  table1 ();
  table2 ();
  table3 ();
  utilization ();
  dynamic ()

(* `--trace FILE` (any experiment: the whole sweep lands in one
   Perfetto-loadable trace, one named track per suite run) and
   `--against PATH` (for `compare`) are extracted before dispatch. *)
let extract_opt name args =
  let rec go = function
    | [] -> (None, [])
    | k :: v :: rest when k = name ->
      let found, kept = go rest in
      ((if found = None then Some v else found), kept)
    | x :: rest ->
      let found, kept = go rest in
      (found, x :: kept)
  in
  go args

let () =
  let trace, args = extract_opt "--trace" (List.tl (Array.to_list Sys.argv)) in
  let against, args = extract_opt "--against" args in
  let requests, args = extract_opt "--requests" args in
  let pool, args = extract_opt "--pool" args in
  let lqueue, args = extract_opt "--queue" args in
  let seed, args = extract_opt "--seed" args in
  let lpath, args = extract_opt "--path" args in
  let csv, args = extract_opt "--csv" args in
  let trace_sample, args = extract_opt "--trace-sample" args in
  let tail_keep, args = extract_opt "--tail-keep" args in
  let flight_dir, args = extract_opt "--flight-dir" args in
  let flight_buf, args = extract_opt "--flight-buf" args in
  let chaos = List.mem "--chaos" args in
  let args = List.filter (fun a -> a <> "--chaos") args in
  let iopt = Option.map int_of_string in
  let dispatch () =
    match args with
    | [] | [ "all" ] -> all (); 0
    | [ "graphs" ] -> graphs (); 0
    | [ "table1" ] -> table1 (); 0
    | [ "table2" ] -> table2 (); 0
    | [ "table3" ] -> table3 (); 0
    | [ "table3-quick" ] ->
      table3 ~budget_excl:10_000. ~budget_incl:20_000. ();
      0
    | [ "fig3" ] -> fig3 (); 0
    | [ "fig45" ] -> fig45 (); 0
    | [ "fig6" ] -> fig6 (); 0
    | [ "fig8" ] -> fig8 (); 0
    | [ "ablations" ] -> ablations (); 0
    | [ "utilization" ] -> utilization (); 0
    | [ "dynamic" ] -> dynamic (); 0
    | [ "archsweep" ] -> archsweep (); 0
    | [ "expressiveness" ] -> expressiveness (); 0
    | [ "bechamel" ] -> bechamel (); 0
    | [ "perfjson" ] -> perfjson (); 0
    | [ "profile" ] -> profile (); 0
    | [ "robustness" ] -> robustness (); 0
    | [ "load" ] ->
      load ?path:lpath ?requests:(iopt requests) ?pool:(iopt pool)
        ?queue:(iopt lqueue) ?seed:(iopt seed) ~chaos
        ?trace_sample:(iopt trace_sample) ?tail_keep:(iopt tail_keep)
        ?flight_dir ?flight_buf:(iopt flight_buf) ();
      0
    | [ "cache" ] ->
      cache_bench ?path:lpath ?requests:(iopt requests) ?pool:(iopt pool)
        ?seed:(iopt seed) ();
      0
    | [ "history" ] -> history ?path:lpath ?csv ()
    | [ "compare" ] -> compare_run ?against ()
    | other ->
      Format.eprintf
        "unknown experiment %s (use: graphs table1 table2 table3 fig3 fig45 \
         fig6 fig8 utilization dynamic ablations archsweep bechamel perfjson \
         profile compare robustness load cache history; options: --trace \
         FILE, --against PATH, --path FILE, --csv FILE, \
         --requests/--pool/--queue/--seed N, --chaos, --trace-sample R, \
         --tail-keep N, --flight-dir DIR, --flight-buf EVENTS)@."
        (String.concat " " other);
      exit 2
  in
  let code =
    match trace with
    | None -> dispatch ()
    | Some path ->
      let code =
        Obs.with_sink
          (Obs.Chrome.sink
             ~other_data:
               [ ("bench", Obs.S (String.concat " " ("bench" :: args))) ]
             ~path ())
          dispatch
      in
      Format.printf "wrote trace %s@." path;
      code
  in
  exit code
