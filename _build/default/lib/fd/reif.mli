(** Reified constraints: 0/1 variables reflecting the truth of a
    relation, and boolean combinators over them.

    A boolean is an ordinary finite-domain variable with domain {0, 1}
    ({!bool_var}).  Reification propagates in all three directions: the
    relation forces the boolean, the boolean's value forces the relation
    or its negation. *)

open Store

val bool_var : ?name:string -> t -> var

val is_true : var -> bool
(** Fixed to 1. *)

val is_false : var -> bool

val leq_iff : t -> var -> var -> var -> unit
(** [leq_iff s x y b] posts [b = 1 <=> x <= y]. *)

val eq_iff : t -> var -> var -> var -> unit
(** [eq_iff s x y b] posts [b = 1 <=> x = y]. *)

val eq_const_iff : t -> var -> int -> var -> unit
(** [eq_const_iff s x k b] posts [b = 1 <=> x = k]. *)

val conj : t -> var list -> var -> unit
(** [conj s bs b] posts [b = 1 <=> all of bs are 1]. *)

val disj : t -> var list -> var -> unit
(** [disj s bs b] posts [b = 1 <=> at least one of bs is 1]. *)

val negation : t -> var -> var -> unit
(** [negation s a b] posts [b = 1 - a]. *)

val bool_sum : t -> var list -> var -> unit
(** [bool_sum s bs total]: cardinality of true booleans. *)
