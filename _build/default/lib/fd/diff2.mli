(** The Diff2 global constraint (Beldiceanu & Contejean, 1994):
    pairwise non-overlap of rectangles in 2-D space.

    A rectangle is [(ox, oy, lx, ly)]: origins [ox, oy] are finite-domain
    variables, lengths [lx, ly] may be variables too (the scheduler uses
    variable lifetimes as the x-length until phase 2 fixes them).

    Two rectangles [i], [j] do not overlap iff there is a dimension in
    which one ends at or before the other's origin.  Rectangles with a
    zero length in some dimension never overlap anything (the paper's
    lifetime model never produces them for live data, but tests do).

    Propagation: for every pair, if overlap in dimension [k] is
    unavoidable, the disjunction collapses to non-overlap in the other
    dimension, which is then propagated as two conditional bound updates
    (and as value removal when the lengths are 1). *)

open Store

type rect = { ox : var; oy : var; lx : var; ly : var }

val post : t -> rect list -> unit

val check : (int * int * int * int) list -> bool
(** Ground checker: [true] iff no two rectangles overlap. *)
