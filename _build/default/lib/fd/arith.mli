(** Primitive arithmetic constraints.

    Every [post_*] function registers one or more propagators in the
    store and runs them once immediately.  Bounds(Z) consistency unless
    stated otherwise. *)

open Store

val leq_offset : t -> var -> int -> var -> unit
(** [leq_offset s x c y] posts [x + c <= y]. *)

val lt : t -> var -> var -> unit
(** [lt s x y] posts [x < y]. *)

val leq : t -> var -> var -> unit

val eq_offset : t -> var -> int -> var -> unit
(** [eq_offset s x c y] posts [y = x + c]; domain consistent. *)

val eq : t -> var -> var -> unit
(** Domain-consistent equality. *)

val neq : t -> var -> var -> unit
(** Disequality: prunes when either side becomes fixed. *)

val neq_offset : t -> var -> int -> var -> unit
(** [neq_offset s x c y] posts [x + c <> y]. *)

val plus : t -> var -> var -> var -> unit
(** [plus s x y z] posts [z = x + y]. *)

val max_of : t -> var list -> var -> unit
(** [max_of s xs m] posts [m = max(xs)].  [xs] must be non-empty. *)

val min_of : t -> var list -> var -> unit

val mul_const : t -> int -> var -> var -> unit
(** [mul_const s c x y] posts [y = c * x] (any [c]); domain consistent. *)

val div_const : t -> var -> int -> var -> unit
(** [div_const s x c q] posts [q = x / c] (floor division, [c > 0]);
    domain consistent. *)

val mod_const : t -> var -> int -> var -> unit
(** [mod_const s x c r] posts [r = x mod c] ([c > 0], [x >= 0]);
    domain consistent. *)

val linear_leq : t -> (int * var) list -> int -> unit
(** [linear_leq s terms k] posts [sum(c_i * x_i) <= k]. *)

val linear_eq : t -> (int * var) list -> int -> unit
(** [linear_eq s terms k] posts [sum(c_i * x_i) = k]. *)

val sum : t -> var list -> var -> unit
(** [sum s xs total] posts [total = sum(xs)]. *)

val all_different : t -> var list -> unit
(** Pairwise disequality (value-based propagation). *)
