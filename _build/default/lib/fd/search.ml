open Store

type var_select = var list -> var option
type val_select = var -> int

let unfixed vars = List.filter (fun v -> not (is_fixed v)) vars

let input_order vars =
  List.find_opt (fun v -> not (is_fixed v)) vars

let best_by score vars =
  match unfixed vars with
  | [] -> None
  | v0 :: rest ->
    Some
      (List.fold_left
         (fun best v -> if score v < score best then v else best)
         v0 rest)

let first_fail vars = best_by (fun v -> Dom.size (dom v)) vars
let smallest_min vars = best_by (fun v -> vmin v) vars

let most_constrained vars =
  (* Domain size dominates; we approximate "most watchers" by preferring
     earlier creation order (models post structural constraints on the
     variables they create first). *)
  best_by (fun v -> (Dom.size (dom v) * 1_000_000) + id v) vars

let select_min v = vmin v
let select_max v = vmax v

let select_mid v =
  let d = dom v in
  let target = (Dom.min d + Dom.max d) / 2 in
  (* Closest value to the middle that is actually in the domain. *)
  let best = ref (Dom.min d) in
  Dom.iter
    (fun x -> if abs (x - target) < abs (!best - target) then best := x)
    d;
  !best

type phase = { vars : var list; var_select : var_select; val_select : val_select }

let phase ?(var_select = first_fail) ?(val_select = select_min) vars =
  { vars; var_select; val_select }

type stats = {
  nodes : int;
  failures : int;
  solutions : int;
  time_ms : float;
  optimal : bool;
}

type 'a outcome =
  | Solution of 'a * stats
  | Best of 'a * stats
  | Unsat of stats
  | Timeout of stats

type budget = { max_nodes : int option; max_time_ms : float option }

let no_budget = { max_nodes = None; max_time_ms = None }
let node_budget n = { max_nodes = Some n; max_time_ms = None }
let time_budget ms = { max_nodes = None; max_time_ms = Some ms }
let both_budget n ms = { max_nodes = Some n; max_time_ms = Some ms }

exception Found
exception Out_of_budget

(* [all] collects every solution (up to [limit]) instead of stopping at
   the first; the store is always unwound to its entry level so callers
   can reuse it (restarts, iterated bounds). *)
let run ?(budget = no_budget) ?(all = false) ?limit store phases ~objective
    ~on_solution =
  let t0 = Unix.gettimeofday () in
  let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
  let nodes = ref 0 and failures = ref 0 and solutions = ref 0 in
  let best : 'a option ref = ref None in
  let collected : 'a list ref = ref [] in
  let bound : int option ref = ref None in
  let entry_level = Store.level store in
  let check_budget () =
    (match budget.max_nodes with
    | Some n when !nodes >= n -> raise Out_of_budget
    | _ -> ());
    match budget.max_time_ms with
    | Some ms when !nodes land 63 = 0 && elapsed_ms () > ms ->
      raise Out_of_budget
    | _ -> ()
  in
  let apply_bound () =
    match (objective, !bound) with
    | Some obj, Some b -> remove_above store obj (b - 1)
    | _ -> ()
  in
  let record_solution () =
    incr solutions;
    let snap = on_solution () in
    best := Some snap;
    if all then begin
      collected := snap :: !collected;
      match limit with
      | Some l when !solutions >= l -> raise Found
      | _ ->
        (* keep enumerating by treating the solution as a failure *)
        raise (Fail "solve_all: next")
    end
    else
      match objective with
      | Some obj ->
        bound := Some (vmin obj);
        (* Continue branch & bound by treating the solution as a failure. *)
        raise (Fail "bnb: improve")
      | None -> raise Found
  in
  let rec label = function
    | [] -> record_solution ()
    | ph :: rest as phases -> (
      match ph.var_select ph.vars with
      | None -> label rest
      | Some v ->
        check_budget ();
        incr nodes;
        let k = ph.val_select v in
        try_branch phases (fun () -> assign store v k);
        try_branch phases (fun () -> remove_value store v k))
  and try_branch phases act =
    push_level store;
    (try
       apply_bound ();
       act ();
       propagate store;
       label phases
     with Fail _ -> incr failures);
    pop_level store
  in
  let stats optimal =
    {
      nodes = !nodes;
      failures = !failures;
      solutions = !solutions;
      time_ms = elapsed_ms ();
      optimal;
    }
  in
  let unwind () =
    while Store.level store > entry_level do
      pop_level store
    done
  in
  let outcome =
    match
      propagate store;
      label phases
    with
    | () -> (
      (* Search space exhausted. *)
      match !best with
      | Some sol -> Solution (sol, stats true)
      | None -> Unsat (stats true))
    | exception Fail _ -> (
      (* Root propagation failed. *)
      match !best with
      | Some sol -> Solution (sol, stats true)
      | None -> Unsat (stats true))
    | exception Found -> (
      match !best with
      | Some sol -> Solution (sol, stats false)
      | None -> assert false)
    | exception Out_of_budget -> (
      match !best with
      | Some sol -> Best (sol, stats false)
      | None -> Timeout (stats false))
  in
  unwind ();
  (outcome, List.rev !collected)

let solve ?budget store phases ~on_solution =
  fst (run ?budget store phases ~objective:None ~on_solution)

let minimize ?budget store phases ~objective ~on_solution =
  fst (run ?budget store phases ~objective:(Some objective) ~on_solution)

let solve_all ?budget ?limit store phases ~on_solution =
  match run ?budget ~all:true ?limit store phases ~objective:None ~on_solution with
  | Solution (_, st), sols | Best (_, st), sols -> (sols, st)
  | Unsat st, _ -> ([], st)
  | Timeout st, _ -> ([], st)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby i =
  let rec go i k =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i >= 1 lsl (k - 1) then go (i - ((1 lsl (k - 1)) - 1)) (k - 1)
    else go i (k - 1)
  in
  let rec find_k k = if (1 lsl k) - 1 >= i then k else find_k (k + 1) in
  go i (find_k 1)

let minimize_restarts ?(base = 64) ?(max_restarts = 32) ?budget store phases
    ~objective ~on_solution =
  let best = ref None in
  let total =
    ref { nodes = 0; failures = 0; solutions = 0; time_ms = 0.; optimal = false }
  in
  let deadline_budget run_idx =
    let node_cap = base * luby run_idx in
    match budget with
    | Some b -> { b with max_nodes = Some node_cap }
    | None -> node_budget node_cap
  in
  let merge st =
    total :=
      {
        nodes = !total.nodes + st.nodes;
        failures = !total.failures + st.failures;
        solutions = !total.solutions + st.solutions;
        time_ms = !total.time_ms +. st.time_ms;
        optimal = st.optimal;
      }
  in
  let rec go run_idx =
    if run_idx > max_restarts then
      match !best with
      | Some (sol, _) -> Best (sol, !total)
      | None -> Timeout !total
    else begin
      push_level store;
      (* carry the incumbent bound into this restart *)
      let ok =
        match !best with
        | Some (_, obj_val) -> (
          try
            remove_above store objective (obj_val - 1);
            propagate store;
            true
          with Fail _ -> false)
        | None -> true
      in
      if not ok then begin
        pop_level store;
        match !best with
        | Some (sol, _) -> Solution (sol, { !total with optimal = true })
        | None -> Unsat { !total with optimal = true }
      end
      else begin
        let outcome =
          run ~budget:(deadline_budget run_idx) store phases
            ~objective:(Some objective)
            ~on_solution:(fun () -> (on_solution (), vmin objective))
        in
        pop_level store;
        match outcome with
        | Solution ((sol, v), st), _ ->
          merge st;
          (* proven within this restart's bound: global optimum *)
          ignore v;
          Solution (sol, { !total with optimal = true })
        | Best ((sol, v), st), _ ->
          merge st;
          let better =
            match !best with Some (_, v0) -> v < v0 | None -> true
          in
          if better then best := Some (sol, v);
          go (run_idx + 1)
        | Unsat st, _ ->
          merge st;
          (match !best with
          | Some (sol, _) -> Solution (sol, { !total with optimal = true })
          | None -> Unsat { !total with optimal = true })
        | Timeout st, _ ->
          merge st;
          go (run_idx + 1)
      end
    end
  in
  go 1
