(** Global cardinality constraint: bound how many variables take each
    value.

    [post s vars cards] with [cards = [(v, lo, hi); ...]] constrains,
    for every listed value [v], the number of variables equal to [v] to
    lie in [lo .. hi].  Values not listed are unconstrained.

    Filtering (iterated with the store's fixpoint):
    - if the count of variables {e fixed} to [v] reaches [hi], [v] is
      removed from every unfixed variable;
    - if the count of variables that {e can} take [v] equals [lo],
      those variables are all fixed to [v];
    - failure when fixed counts exceed [hi] or possible counts drop
      below [lo].

    Subsumes all-different ([lo = 0, hi = 1] for every value), and is
    the natural way to cap how many operations of one configuration a
    schedule region may contain. *)

open Store

val post : t -> var list -> (int * int * int) list -> unit
(** @raise Invalid_argument on [lo > hi] or negative bounds. *)
