exception Fail of string

type var = {
  vid : int;
  vname : string;
  mutable vdom : Dom.t;
  mutable watchers : propagator list;
}

and propagator = {
  pid : int;
  pname : string;
  exec : t -> unit;
  mutable queued : bool;
  mutable entailed : bool;
}

and trail_entry =
  | Dom_change of var * Dom.t
  | Entailment of propagator
  | Mark

and t = {
  mutable vars : var list;
  mutable next_vid : int;
  mutable next_pid : int;
  mutable n_props : int;
  mutable trail : trail_entry list;
  mutable depth : int;
  queue : propagator Queue.t;
  mutable steps : int;
  mutable consts : (int * var) list;
}

let create () =
  {
    vars = [];
    next_vid = 0;
    next_pid = 0;
    n_props = 0;
    trail = [];
    depth = 0;
    queue = Queue.create ();
    steps = 0;
    consts = [];
  }

let var_count s = s.next_vid
let propagator_count s = s.n_props
let propagation_steps s = s.steps

let new_var ?name s dom =
  if Dom.is_empty dom then raise (Fail "new_var: empty domain");
  let vid = s.next_vid in
  s.next_vid <- vid + 1;
  let vname = match name with Some n -> n | None -> Printf.sprintf "_v%d" vid in
  let v = { vid; vname; vdom = dom; watchers = [] } in
  s.vars <- v :: s.vars;
  v

let interval_var ?name s lo hi = new_var ?name s (Dom.interval lo hi)

let const s k =
  match List.assoc_opt k s.consts with
  | Some v -> v
  | None ->
    let v = new_var ~name:(string_of_int k) s (Dom.singleton k) in
    s.consts <- (k, v) :: s.consts;
    v

let name v = v.vname
let id v = v.vid
let dom v = v.vdom
let vmin v = Dom.min v.vdom
let vmax v = Dom.max v.vdom
let is_fixed v = Dom.is_singleton v.vdom

let value v =
  if is_fixed v then Dom.min v.vdom
  else invalid_arg (Printf.sprintf "Store.value: %s not fixed" v.vname)

let schedule s p =
  if (not p.queued) && not p.entailed then begin
    p.queued <- true;
    Queue.add p s.queue
  end

let notify s v = List.iter (schedule s) v.watchers

let update s v d =
  let d' = Dom.inter v.vdom d in
  if Dom.is_empty d' then raise (Fail (v.vname ^ ": empty domain"));
  if not (Dom.equal d' v.vdom) then begin
    s.trail <- Dom_change (v, v.vdom) :: s.trail;
    v.vdom <- d';
    notify s v
  end

let assign s v k = update s v (Dom.singleton k)

let remove_value s v k =
  let d' = Dom.remove k v.vdom in
  if Dom.is_empty d' then raise (Fail (v.vname ^ ": empty domain"));
  if not (Dom.equal d' v.vdom) then begin
    s.trail <- Dom_change (v, v.vdom) :: s.trail;
    v.vdom <- d';
    notify s v
  end

let remove_below s v b = if b > Dom.min v.vdom then update s v (Dom.interval b max_int)
let remove_above s v b = if b < Dom.max v.vdom then update s v (Dom.interval min_int b)

let post ?name s ~watches exec =
  let pid = s.next_pid in
  s.next_pid <- pid + 1;
  s.n_props <- s.n_props + 1;
  let pname = match name with Some n -> n | None -> Printf.sprintf "_p%d" pid in
  let p = { pid; pname; exec; queued = false; entailed = false } in
  List.iter (fun v -> v.watchers <- p :: v.watchers) watches;
  p

let post_now ?name s ~watches exec =
  let p = post ?name s ~watches exec in
  schedule s p;
  p

let entail s p =
  if not p.entailed then begin
    p.entailed <- true;
    s.trail <- Entailment p :: s.trail
  end

let propagate s =
  while not (Queue.is_empty s.queue) do
    let p = Queue.pop s.queue in
    p.queued <- false;
    if not p.entailed then begin
      s.steps <- s.steps + 1;
      p.exec s
    end
  done

let push_level s =
  s.trail <- Mark :: s.trail;
  s.depth <- s.depth + 1

let pop_level s =
  (* A failed propagation can leave stale entries in the queue; they are
     harmless (propagators are monotone re-checks) but we flush them so a
     restored state starts clean. *)
  Queue.iter (fun p -> p.queued <- false) s.queue;
  Queue.clear s.queue;
  let rec unwind = function
    | [] -> failwith "Store.pop_level: no matching push_level"
    | Mark :: rest ->
      s.trail <- rest;
      s.depth <- s.depth - 1
    | Dom_change (v, d) :: rest ->
      v.vdom <- d;
      unwind rest
    | Entailment p :: rest ->
      p.entailed <- false;
      unwind rest
  in
  unwind s.trail

let level s = s.depth

let pp_var ppf v = Format.fprintf ppf "%s=%a" v.vname Dom.pp v.vdom
