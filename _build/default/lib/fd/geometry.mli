(** Channeling between a linear slot number and its (bank, line, page)
    coordinates in the banked vector memory (paper eq. 6).

    Slots are enumerated across banks first: slot [k] lives in bank
    [k mod banks] on line [k / banks]; the page of a slot is
    [(k mod banks) / page_size]. *)

open Store

type coords = { slot : var; bank : var; line : var; page : var }

val of_slot : t -> banks:int -> page_size:int -> var -> coords
(** [of_slot s ~banks ~page_size slot] creates [bank], [line] and [page]
    variables channeled (domain-consistently, in both directions) to
    [slot].  [banks] must be a positive multiple of [page_size]. *)

val line_of_slot : banks:int -> int -> int
val bank_of_slot : banks:int -> int -> int
val page_of_slot : banks:int -> page_size:int -> int -> int
(** Ground versions, shared with the memory checker. *)
