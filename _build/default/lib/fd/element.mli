(** The Element global constraint: [z = xs.(i)] with a finite-domain
    index.

    Used to model table lookups — e.g. selecting a configuration word or
    a latency by a decision variable — and a standard member of any FD
    solver's vocabulary.  Domain-consistent in both directions:

    - dom(z) is reduced to the union of dom(xs.(i)) over feasible [i];
    - an index value [i] is removed when dom(xs.(i)) and dom(z) are
      disjoint;
    - when the index is fixed, [z] and [xs.(i)] are unified. *)

open Store

val post : t -> index:var -> var array -> var -> unit
(** [post s ~index xs z] posts [z = xs.(index)].  The index is
    0-based; out-of-range index values are pruned immediately. *)

val post_const : t -> index:var -> int array -> var -> unit
(** Specialization for a constant table. *)
