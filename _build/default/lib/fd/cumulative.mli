(** The Cumulative global constraint (Aggoun & Beldiceanu, 1993).

    [post s ~starts ~durations ~resources ~limit] constrains the tasks
    [(starts.(i), durations.(i), resources.(i))] so that at every time
    point [t] the sum of [resources.(i)] over tasks with
    [starts.(i) <= t < starts.(i) + durations.(i)] does not exceed
    [limit].

    Durations and resource amounts are fixed integers here (the paper's
    model only ever uses fixed durations of one cycle and fixed lane
    counts); start times are finite-domain variables.

    Propagation is time-table based: compulsory parts
    [[max(start), min(start) + duration)] build a resource profile and
    every task's start domain is pruned against profile segments it
    cannot fit over.  This is the classic incomplete-but-sound filtering;
    completeness comes from search. *)

open Store

val post :
  t ->
  starts:var array ->
  durations:int array ->
  resources:int array ->
  limit:int ->
  unit
(** @raise Invalid_argument on length mismatch, negative durations or
    resources, or a task with [resource > limit] and [duration > 0]. *)

val check :
  starts:int array -> durations:int array -> resources:int array -> limit:int -> bool
(** Ground checker used by the validator and the test oracle. *)

val post_var :
  t ->
  starts:var array ->
  durations:var array ->
  resources:int array ->
  limit:int ->
  unit
(** The paper's full generality ("all parameters can be either domain
    variables or integers"): variable durations.  Compulsory parts use
    the minimal durations; additionally a duration is capped when its
    task sits on a profile peak it would overload by running longer.
    The scheduler itself only needs fixed durations (every EIT issue
    occupies its unit for one cycle), so this exists for model fidelity
    and reuse. *)
