lib/fd/table.ml: Array Dom List Store
