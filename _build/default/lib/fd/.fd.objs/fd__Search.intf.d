lib/fd/search.mli: Store
