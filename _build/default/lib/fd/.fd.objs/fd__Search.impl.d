lib/fd/search.ml: Dom List Store Unix
