lib/fd/reif.ml: Arith Dom List Store
