lib/fd/alldiff.ml: Array Dom List Store
