lib/fd/diff2.mli: Store
