lib/fd/geometry.mli: Store
