lib/fd/dom.ml: Format List Stdlib
