lib/fd/store.ml: Dom Format List Printf Queue
