lib/fd/gcc.ml: Dom List Store
