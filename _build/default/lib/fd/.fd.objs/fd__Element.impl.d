lib/fd/element.ml: Array Dom Store
