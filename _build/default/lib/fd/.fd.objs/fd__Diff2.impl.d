lib/fd/diff2.ml: Dom List Store
