lib/fd/gcc.mli: Store
