lib/fd/arith.ml: Dom List Stdlib Store
