lib/fd/alldiff.mli: Store
