lib/fd/cumulative.mli: Store
