lib/fd/dom.mli: Format
