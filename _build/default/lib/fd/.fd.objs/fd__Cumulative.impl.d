lib/fd/cumulative.ml: Array Dom List Stdlib Store
