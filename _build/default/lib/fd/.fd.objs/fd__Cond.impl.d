lib/fd/cond.ml: Dom Store
