lib/fd/geometry.ml: Dom Store
