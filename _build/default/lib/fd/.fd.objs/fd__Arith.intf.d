lib/fd/arith.mli: Store
