lib/fd/element.mli: Store
