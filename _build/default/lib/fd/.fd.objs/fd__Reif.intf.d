lib/fd/reif.mli: Store
