lib/fd/store.mli: Dom Format
