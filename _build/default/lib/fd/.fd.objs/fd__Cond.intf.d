lib/fd/cond.mli: Store
