lib/fd/table.mli: Store
