(* Sorted disjoint inclusive intervals.  Invariant: for consecutive
   intervals (_, h1) (l2, _) we have h1 + 2 <= l2, so representations are
   canonical and [equal] is structural. *)

type t = (int * int) list

exception Empty_domain

let empty : t = []

let interval lo hi : t = if lo > hi then [] else [ (lo, hi) ]

let singleton v : t = [ (v, v) ]

(* Normalize a list of intervals: sort by origin, merge overlapping or
   adjacent ones. *)
let normalize (ivs : (int * int) list) : t =
  let ivs = List.filter (fun (lo, hi) -> lo <= hi) ivs in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) ivs in
  let rec merge = function
    | [] -> []
    | [ iv ] -> [ iv ]
    | (l1, h1) :: (l2, h2) :: rest ->
      if l2 <= h1 + 1 then merge ((l1, Stdlib.max h1 h2) :: rest)
      else (l1, h1) :: merge ((l2, h2) :: rest)
  in
  merge sorted

let of_intervals ivs = normalize ivs

let of_list vs = normalize (List.map (fun v -> (v, v)) vs)

let is_empty d = d = []

let is_singleton = function [ (lo, hi) ] -> lo = hi | _ -> false

let rec mem v = function
  | [] -> false
  | (lo, hi) :: rest -> if v < lo then false else v <= hi || mem v rest

let min = function [] -> raise Empty_domain | (lo, _) :: _ -> lo

let rec max = function
  | [] -> raise Empty_domain
  | [ (_, hi) ] -> hi
  | _ :: rest -> max rest

let choose = min

let size d = List.fold_left (fun acc (lo, hi) -> acc + hi - lo + 1) 0 d

let equal (a : t) (b : t) = a = b

let is_interval = function [] | [ _ ] -> true | _ -> false

let intervals d = d

let to_list d =
  List.concat_map
    (fun (lo, hi) -> List.init (hi - lo + 1) (fun i -> lo + i))
    d

let rec remove v = function
  | [] -> []
  | ((lo, hi) as iv) :: rest ->
    if v < lo then iv :: rest
    else if v > hi then iv :: remove v rest
    else if lo = hi then rest
    else if v = lo then (lo + 1, hi) :: rest
    else if v = hi then (lo, hi - 1) :: rest
    else (lo, v - 1) :: (v + 1, hi) :: rest

let rec remove_below b = function
  | [] -> []
  | (lo, hi) :: rest ->
    if hi < b then remove_below b rest
    else if lo >= b then (lo, hi) :: rest
    else (b, hi) :: rest

let rec remove_above b = function
  | [] -> []
  | ((lo, hi) as iv) :: rest ->
    if lo > b then []
    else if hi <= b then iv :: remove_above b rest
    else [ (lo, b) ]

let rec remove_interval rlo rhi d =
  if rlo > rhi then d
  else
    match d with
    | [] -> []
    | ((lo, hi) as iv) :: rest ->
      if rhi < lo then iv :: rest
      else if rlo > hi then iv :: remove_interval rlo rhi rest
      else
        let left = if lo < rlo then [ (lo, rlo - 1) ] else [] in
        let right = remove_interval rlo rhi (if rhi < hi then (rhi + 1, hi) :: rest else rest) in
        left @ right

let rec inter (a : t) (b : t) : t =
  match (a, b) with
  | [], _ | _, [] -> []
  | (l1, h1) :: ra, (l2, h2) :: rb ->
    let lo = Stdlib.max l1 l2 and hi = Stdlib.min h1 h2 in
    let tail =
      if h1 < h2 then inter ra b
      else if h2 < h1 then inter a rb
      else inter ra rb
    in
    if lo <= hi then (lo, hi) :: tail else tail

let union a b = normalize (a @ b)

let diff a b =
  List.fold_left (fun acc (lo, hi) -> remove_interval lo hi acc) a b

let shift k d = List.map (fun (lo, hi) -> (lo + k, hi + k)) d

let neg d = List.rev_map (fun (lo, hi) -> (-hi, -lo)) d

let iter f d = List.iter (fun (lo, hi) -> for v = lo to hi do f v done) d

let fold f acc d =
  List.fold_left
    (fun acc (lo, hi) ->
      let r = ref acc in
      for v = lo to hi do
        r := f !r v
      done;
      !r)
    acc d

let for_all p d =
  List.for_all
    (fun (lo, hi) ->
      let rec go v = v > hi || (p v && go (v + 1)) in
      go lo)
    d

let exists p d = not (for_all (fun v -> not (p v)) d)

let filter p d = of_list (List.filter p (to_list d))

(* Exact image under a monotone map.  Interval endpoints alone are not
   enough (e.g. x -> 2x tears holes into intervals), so enumerate values
   but emit interval endpoints directly when f is gap-free there. *)
let map_monotone f d =
  normalize
    (List.concat_map
       (fun (lo, hi) ->
         if f hi - f lo = hi - lo then [ (f lo, f hi) ]  (* shift-like *)
         else List.init (hi - lo + 1) (fun i -> (f (lo + i), f (lo + i))))
       d)

let check_invariant d =
  let rec go = function
    | [] -> true
    | [ (lo, hi) ] -> lo <= hi
    | (l1, h1) :: ((l2, _) :: _ as rest) ->
      l1 <= h1 && h1 + 2 <= l2 && go rest
  in
  go d

let pp ppf d =
  let pp_iv ppf (lo, hi) =
    if lo = hi then Format.fprintf ppf "%d" lo
    else Format.fprintf ppf "%d..%d" lo hi
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_iv)
    d

let to_string d = Format.asprintf "%a" pp d
