(** Conditional constraints used by the memory-access model.

    The paper's access rules (eqs. 7-9) are implications of the shape
    [page_d = page_e  ==>  line_d = line_e], optionally guarded by a
    schedule condition [s_i = s_j] for pairs of simultaneously running
    vector operations (eqs. 8-9). *)

open Store

val implies_eq : t -> (var * var) -> (var * var) -> unit
(** [implies_eq s (p, q) (l, m)] posts [p = q ==> l = m].

    Propagation:
    - when [p] and [q] are fixed and equal, [l = m] is enforced
      (domain-consistent);
    - when dom([l]) and dom([m]) are disjoint, [p <> q] is enforced;
    - when dom([p]) and dom([q]) are disjoint the constraint is entailed. *)

val guarded_implies_eq :
  t -> guard:(var * var) -> (var * var) -> (var * var) -> unit
(** [guarded_implies_eq s ~guard:(a, b) (p, q) (l, m)] posts
    [a = b ==> (p = q ==> l = m)].

    Entailed as soon as dom([a]) and dom([b]) become disjoint; active
    (behaving like {!implies_eq}) once [a] and [b] are fixed and equal. *)

val same_guard_neq :
  t -> guard:(var * var) -> var -> var -> unit
(** [same_guard_neq s ~guard:(a, b) x y] posts [a = b ==> x <> y]. *)
