(** The extensional (table) constraint: the variable tuple must equal
    one of the listed rows.  Generalized arc consistency by direct
    support scanning — adequate for the configuration tables this
    codebase needs (tens of rows).

    Used to model irregular legal-combination sets that have no
    arithmetic structure, e.g. which (operation, pre, post) bundles a
    configuration memory image can express. *)

open Store

val post : t -> var list -> int array list -> unit
(** [post s vars rows] constrains the tuple [vars] to equal some row.
    @raise Invalid_argument if a row's length differs from the number of
    variables; an empty row list fails immediately. *)
