(** All-different with Hall-interval (bounds-consistent) filtering —
    strictly stronger than the pairwise disequality decomposition of
    {!Arith.all_different}.

    Filtering rules, iterated to fixpoint with value propagation:
    - a fixed variable's value is removed from every other domain;
    - pigeonhole: an interval [a, b] into which more than [b - a + 1]
      domains fit is a failure;
    - a Hall interval (exactly [b - a + 1] domains fit) is removed from
      every other variable's domain. *)

open Store

val post : t -> var list -> unit
