(** Complex arithmetic for the EIT data path.

    The vector core operates on complex-valued samples (the architecture
    is built for MIMO baseband processing); every scalar flowing through
    the DSL, the IR and the simulator is a complex number. *)

type t = { re : float; im : float }

val make : float -> float -> t
val of_float : float -> t
val zero : t
val one : t
val i : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val conj : t -> t
val scale : float -> t -> t

val mac : t -> t -> t -> t
(** [mac acc a b] is [acc + a * b] — the CMAC primitive. *)

val norm2 : t -> float
(** [|z|^2]. *)

val abs : t -> float
val sqrt : t -> t
(** Principal complex square root. *)

val inv : t -> t

val equal : ?eps:float -> t -> t -> bool
(** Componentwise comparison with tolerance (default [1e-9]). *)

val compare_by_norm : t -> t -> int
(** Total order by squared magnitude, then by real part, then imaginary —
    used by the post-processing sort unit. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
