type coords = { bank : int; line : int; page : int }

let coords_of_slot (a : Arch.t) k =
  if k < 0 || k >= Arch.slots a then
    invalid_arg (Printf.sprintf "Mem.coords_of_slot: slot %d out of range" k);
  { bank = k mod a.banks; line = k / a.banks; page = k mod a.banks / a.page_size }

let slot_of (a : Arch.t) ~bank ~line =
  if bank < 0 || bank >= a.banks || line < 0 || line >= a.lines then
    invalid_arg "Mem.slot_of: coordinates out of range";
  (line * a.banks) + bank

type violation =
  | Bank_conflict of { bank : int; slots : int list }
  | Page_line_conflict of { page : int; slots : int list }
  | Too_many_accesses of { kind : [ `Read | `Write ]; count : int; limit : int }
  | Slot_out_of_range of int

let pp_violation ppf = function
  | Bank_conflict { bank; slots } ->
    Format.fprintf ppf "bank %d accessed by slots [%s]" bank
      (String.concat "; " (List.map string_of_int slots))
  | Page_line_conflict { page; slots } ->
    Format.fprintf ppf "page %d accessed on several lines by slots [%s]" page
      (String.concat "; " (List.map string_of_int slots))
  | Too_many_accesses { kind; count; limit } ->
    Format.fprintf ppf "%d %s accesses exceed the per-cycle limit %d" count
      (match kind with `Read -> "read" | `Write -> "write")
      limit
  | Slot_out_of_range k -> Format.fprintf ppf "slot %d out of range" k

let dedup_sorted l = List.sort_uniq compare l

(* Group [slots] by [key]; return (key, members) lists. *)
let group_by key slots =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let k = key s in
      Hashtbl.replace tbl k (s :: (Option.value ~default:[] (Hashtbl.find_opt tbl k))))
    slots;
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []

let check_one_port (a : Arch.t) kind ~limit slots =
  let out_of_range = List.filter (fun k -> k < 0 || k >= Arch.slots a) slots in
  if out_of_range <> [] then List.map (fun k -> Slot_out_of_range k) out_of_range
  else begin
    let slots = dedup_sorted slots in
    let violations = ref [] in
    if List.length slots > limit then
      violations :=
        Too_many_accesses { kind; count = List.length slots; limit } :: !violations;
    let by_bank = group_by (fun k -> (coords_of_slot a k).bank) slots in
    List.iter
      (fun (bank, members) ->
        if List.length members > 1 then
          violations := Bank_conflict { bank; slots = members } :: !violations)
      by_bank;
    let by_page = group_by (fun k -> (coords_of_slot a k).page) slots in
    List.iter
      (fun (page, members) ->
        let lines = dedup_sorted (List.map (fun k -> (coords_of_slot a k).line) members) in
        if List.length lines > 1 then
          violations := Page_line_conflict { page; slots = members } :: !violations)
      by_page;
    List.rev !violations
  end

let check_access (a : Arch.t) ~reads ~writes =
  check_one_port a `Read ~limit:a.max_reads_per_cycle reads
  @ check_one_port a `Write ~limit:a.max_writes_per_cycle writes

let access_ok a ~reads ~writes = check_access a ~reads ~writes = []

type t = { a : Arch.t; cells : Cplx.t array option array }

let create a = { a; cells = Array.make (Arch.slots a) None }
let arch t = t.a

let read t k =
  if k < 0 || k >= Array.length t.cells then
    invalid_arg (Printf.sprintf "Mem.read: slot %d out of range" k);
  match t.cells.(k) with
  | Some v -> Array.copy v
  | None -> invalid_arg (Printf.sprintf "Mem.read: slot %d uninitialized" k)

let write t k v =
  if k < 0 || k >= Array.length t.cells then
    invalid_arg (Printf.sprintf "Mem.write: slot %d out of range" k);
  if Array.length v <> Value.vlen then invalid_arg "Mem.write: not a vector";
  t.cells.(k) <- Some (Array.copy v)

let is_initialized t k =
  k >= 0 && k < Array.length t.cells && t.cells.(k) <> None

let used_slots t =
  let acc = ref [] in
  Array.iteri (fun k c -> if c <> None then acc := k :: !acc) t.cells;
  List.rev !acc

let copy t = { a = t.a; cells = Array.map (Option.map Array.copy) t.cells }
