let vlen = 4

type t =
  | Scalar of Cplx.t
  | Vector of Cplx.t array
  | Matrix of Cplx.t array array

let scalar c = Scalar c

let vector a =
  if Array.length a <> vlen then
    invalid_arg (Printf.sprintf "Value.vector: length %d <> %d" (Array.length a) vlen);
  Vector (Array.copy a)

let matrix rows =
  if Array.length rows <> vlen then invalid_arg "Value.matrix: wrong row count";
  Array.iter
    (fun r -> if Array.length r <> vlen then invalid_arg "Value.matrix: wrong row length")
    rows;
  Matrix (Array.map Array.copy rows)

let vector_of_list l = vector (Array.of_list l)
let vector_of_floats l = vector_of_list (List.map Cplx.of_float l)
let matrix_of_floats rows = matrix (Array.of_list (List.map (fun r -> Array.of_list (List.map Cplx.of_float r)) rows))

let as_scalar = function
  | Scalar c -> c
  | v -> invalid_arg ("Value.as_scalar: got " ^ (match v with Vector _ -> "vector" | _ -> "matrix"))

let as_vector = function
  | Vector a -> a
  | v -> invalid_arg ("Value.as_vector: got " ^ (match v with Scalar _ -> "scalar" | _ -> "matrix"))

let as_matrix = function
  | Matrix m -> m
  | v -> invalid_arg ("Value.as_matrix: got " ^ (match v with Scalar _ -> "scalar" | _ -> "vector"))

let kind = function Scalar _ -> "scalar" | Vector _ -> "vector" | Matrix _ -> "matrix"

let zero_vector = Vector (Array.make vlen Cplx.zero)
let zero_scalar = Scalar Cplx.zero

let row m i =
  let m = as_matrix m in
  if i < 0 || i >= vlen then invalid_arg "Value.row: index out of range";
  Vector (Array.copy m.(i))

let col m j =
  let m = as_matrix m in
  if j < 0 || j >= vlen then invalid_arg "Value.col: index out of range";
  Vector (Array.init vlen (fun i -> m.(i).(j)))

let equal ?eps a b =
  match (a, b) with
  | Scalar x, Scalar y -> Cplx.equal ?eps x y
  | Vector x, Vector y ->
    Array.for_all2 (fun u v -> Cplx.equal ?eps u v) x y
  | Matrix x, Matrix y ->
    Array.for_all2 (fun r1 r2 -> Array.for_all2 (fun u v -> Cplx.equal ?eps u v) r1 r2) x y
  | _ -> false

let pp ppf = function
  | Scalar c -> Cplx.pp ppf c
  | Vector a ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Cplx.pp)
      (Array.to_list a)
  | Matrix m ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") (fun ppf r ->
           Format.fprintf ppf "[%a]"
             (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Cplx.pp)
             (Array.to_list r)))
      (Array.to_list m)

let to_string v = Format.asprintf "%a" pp v
