type t = { re : float; im : float }

let make re im = { re; im }
let of_float re = { re; im = 0. }
let zero = { re = 0.; im = 0. }
let one = { re = 1.; im = 0. }
let i = { re = 0.; im = 1. }

let add a b = { re = a.re +. b.re; im = a.im +. b.im }
let sub a b = { re = a.re -. b.re; im = a.im -. b.im }

let mul a b =
  { re = (a.re *. b.re) -. (a.im *. b.im); im = (a.re *. b.im) +. (a.im *. b.re) }

let neg a = { re = -.a.re; im = -.a.im }
let conj a = { re = a.re; im = -.a.im }
let scale k a = { re = k *. a.re; im = k *. a.im }
let mac acc a b = add acc (mul a b)
let norm2 a = (a.re *. a.re) +. (a.im *. a.im)
let abs a = Float.sqrt (norm2 a)

let div a b =
  let d = norm2 b in
  if d = 0. then invalid_arg "Cplx.div: division by zero";
  { re = ((a.re *. b.re) +. (a.im *. b.im)) /. d;
    im = ((a.im *. b.re) -. (a.re *. b.im)) /. d }

let inv a = div one a

let sqrt a =
  (* Principal branch, numerically stable formulation. *)
  let m = abs a in
  let re = Float.sqrt ((m +. a.re) /. 2.) in
  let im = Float.sqrt ((m -. a.re) /. 2.) in
  { re; im = (if a.im < 0. then -.im else im) }

let equal ?(eps = 1e-9) a b =
  Float.abs (a.re -. b.re) <= eps && Float.abs (a.im -. b.im) <= eps

let compare_by_norm a b =
  match Float.compare (norm2 a) (norm2 b) with
  | 0 -> (
    match Float.compare a.re b.re with
    | 0 -> Float.compare a.im b.im
    | c -> c)
  | c -> c

let pp ppf a =
  if a.im = 0. then Format.fprintf ppf "%g" a.re
  else if a.im > 0. then Format.fprintf ppf "%g+%gi" a.re a.im
  else Format.fprintf ppf "%g-%gi" a.re (-.a.im)

let to_string a = Format.asprintf "%a" pp a
