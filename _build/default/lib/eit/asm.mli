(** Textual assembly for EIT programs — the format an architect writing
    machine code by hand (the paper's §1 baseline practice) would use.

    {v
    ; matmul fragment
    .arch eit
    .input m[0] = 1, 2, 3, 4
    .input r9  = 0.5+1i
    .output n12 -> m[7]

    @0:
      V m[4] <- v_add(m[0], m[1]) @n10
      S r10  <- s_sqrt(r9)        @n11
    @7:
      M m[7] <- merge(r10, r10, r10, r10) @n12
    v}

    - [.arch] selects a preset (default [eit]);
    - [.input] preloads a slot (vector of 4 complex literals) or a
      register (one literal);
    - [.output] declares result locations (node id -> location);
    - [@c:] starts cycle [c]; each following line is one issue on unit
      [V]/[S]/[M] with an optional [@n<id>] node annotation (defaults to
      a fresh id);
    - complex literals: [1.5], [-2], [3+4i], [0.5-1i], [2i];
    - [;] starts a comment.

    [parse (print p)] reproduces [p] exactly. *)

val print : Instr.program -> string

val parse : string -> (Instr.program, string) result
(** Errors carry the offending line number. *)

val load : string -> (Instr.program, string) result
(** Parse a file. *)

val save : string -> Instr.program -> unit
