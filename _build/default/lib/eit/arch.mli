(** Architecture parameters of the EIT processor (paper §1.1).

    The vector block (PE2-4 + ME2) is a seven-stage pipeline — load,
    pre-process, 2x vector process, 2x post-process, write-back — with
    four homogeneous lanes of four CMAC units each.  The accelerator part
    (PE5-6) runs division / square root / CORDIC.  The vector memory has
    16 banks grouped in pages of 4 banks.

    Scalar-accelerator latencies are not published in the paper; the
    defaults below are calibrated so that the QRD critical path matches
    the reported 169 cycles (see DESIGN.md §5 and EXPERIMENTS.md). *)

type t = {
  n_lanes : int;            (** parallel vector lanes (4) *)
  vector_latency : int;     (** full pipeline latency in cycles (7) *)
  vector_duration : int;    (** issue slot occupancy (1) *)
  scalar_latency : int;     (** sqrt / div / CORDIC latency *)
  scalar_simple_latency : int; (** add / sub / mul on the accelerator *)
  scalar_duration : int;
  im_latency : int;         (** index / merge latency *)
  im_duration : int;
  banks : int;              (** memory banks (16) *)
  page_size : int;          (** banks per page (4) *)
  lines : int;              (** lines per bank *)
  slot_limit : int option;  (** restrict the usable slot count (Table 1
                                sweeps 64/32/16/10/9/8 available slots);
                                [None] means all [banks * lines] *)
  max_reads_per_cycle : int;   (** 8 vectors = two matrices *)
  max_writes_per_cycle : int;  (** 4 vectors = one matrix *)
  reconfig_cost : int;      (** cycles lost per reconfiguration *)
}

val default : t
(** The EIT instance used throughout the paper's evaluation
    (64 slots: 16 banks x 4 lines). *)

val wide : t
(** A hypothetical next-generation instance (paper §5 names "other
    vector architectures" as future work): 8 lanes, a deeper 9-stage
    pipeline, 32 banks in pages of 4, and double the per-cycle memory
    bandwidth. *)

val mini : t
(** A small embedded instance: 2 lanes, 8 banks in pages of 4, 2 lines,
    half the bandwidth — for studying how schedules degrade when the
    architecture shrinks. *)

val presets : (string * t) list
(** [("eit", default); ("wide", wide); ("mini", mini)]. *)

val with_slots : t -> int -> t
(** [with_slots a n] makes exactly [n] slots usable (slots are numbered
    linearly across banks, so the first [n] slot numbers stay legal).
    @raise Invalid_argument if [n <= 0] or [n > banks * lines]. *)

val slots : t -> int
(** Total usable slots. *)

val latency : t -> Opcode.t -> int
(** Latency (cycles from issue until the result is usable). *)

val duration : t -> Opcode.t -> int
(** Issue-slot occupancy on the owning resource. *)

val resource_limit : t -> Opcode.resource_class -> int

val pp : Format.formatter -> t -> unit
