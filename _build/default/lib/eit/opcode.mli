(** The EIT operation set.

    The DSL exposes a subset of the reconfigurable operations that the
    MIMO applications use (paper §3.1); each DSL operation corresponds to
    exactly one opcode here.  After the merge pass (paper Fig. 6) a
    vector-pipeline node carries an optional pre-processing (PE2) and
    post-processing (PE4) stage fused around its core (PE3) operation.

    Resource classes mirror the micro-architecture:
    - {!Vector_core}: the 4-lane pipeline (PE2-4 + ME2), latency 7;
      a vector op occupies 1 lane, a matrix op all 4;
    - {!Scalar_accel}: division / square root / CORDIC accelerator
      (PE5-6);
    - {!Index_merge}: the indexing-and-merging resource. *)

(** Core (PE3) vector operations.  All element types are complex. *)
type vcore =
  | Vid               (** pass-through (lets a pre/post op stand alone) *)
  | Vadd              (** elementwise [a + b] *)
  | Vsub              (** elementwise [a - b] *)
  | Vmul              (** elementwise [a * b] *)
  | Vscale            (** [a * s] for scalar [s] (broadcast) *)
  | Vmac              (** elementwise [a + b * c] (CMAC, 3 operands) *)
  | Vaxpy             (** [a + s * b], scalar [s] (3 operands) *)
  | Vnaxpy            (** [a - s * b], scalar [s] (3 operands) *)
  | Vdotp             (** dot product [sum a_k b_k] -> scalar *)
  | Vdoth             (** Hermitian dot product [sum a_k conj(b_k)] *)
  | Vsqsum            (** squared norm [sum |a_k|^2] -> scalar *)
  | Msqsum            (** per-row squared norms of a matrix -> vector *)
  | Mvmul             (** matrix (4 rows) x vector -> vector *)
  | Mhvmul            (** Hermitian-transposed matrix x vector -> vector *)

(** Pre-processing (PE2) stages.  A pre stage transforms the {e first}
    operand; the IR merge pass only fuses a pre-op whose output is
    operand 0 of the consumer, so fusion preserves semantics. *)
type vpre =
  | Pconj             (** conjugate the first operand *)
  | Pneg              (** negate the first operand *)
  | Pmask of int      (** 4-bit mask on the first operand: zero lanes
                          whose bit is unset *)

(** Post-processing (PE4) stages, applied to the result. *)
type vpost =
  | Qsort             (** sort vector result by descending magnitude *)
  | Qabs              (** elementwise magnitude (imaginary part dropped) *)
  | Qneg              (** negate result *)

(** Scalar accelerator operations. *)
type sop =
  | Ssqrt | Srsqrt | Sinv | Sdiv | Smul | Sadd | Ssub
  | Scordic           (** unit rotation [z / |z|] (CORDIC normalization) *)

(** Index / merge unit operations. *)
type imop =
  | Merge4            (** 4 scalars -> vector *)
  | Splat             (** scalar -> vector broadcast *)
  | Index of int      (** vector -> its [k]-th element *)

type t =
  | V of { pre : vpre option; core : vcore; post : vpost option }
  | S of sop
  | IM of imop

type resource_class = Vector_core | Scalar_accel | Index_merge

val v : vcore -> t
(** A bare vector-core op (no pre/post stage). *)

val resource : t -> resource_class

val is_matrix_core : vcore -> bool

val lanes : t -> int
(** Lanes occupied on the vector core: 4 for matrix ops, 1 for vector
    ops, 0 for non-vector-core ops. *)

val arity : t -> int
(** Number of data operands. *)

val produces : t -> [ `Scalar | `Vector ]

val config_equal : t -> t -> bool
(** Two vector-core ops can share a cycle iff their full configuration
    (pre, core, post) is identical — paper constraint (3). *)

val eval : t -> Value.t list -> Value.t
(** Reference semantics; the DSL evaluator and the machine simulator both
    defer here, so they agree by construction.
    @raise Invalid_argument on arity or kind mismatch. *)

val name : t -> string
(** Stable mnemonic, e.g. ["v_dotP"], ["conj;v_add"], ["s_sqrt"]. *)

val of_name : string -> t
(** Inverse of {!name}. @raise Invalid_argument on unknown mnemonics. *)

val pp : Format.formatter -> t -> unit

val all_cores : vcore list
val all_sops : sop list
(** Enumerations for property-based tests. *)
