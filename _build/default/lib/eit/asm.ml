(* ------------------------- printing ------------------------------- *)

let print_cplx (c : Cplx.t) =
  let fl f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f
  in
  if c.Cplx.im = 0. then fl c.Cplx.re
  else if c.Cplx.re = 0. then fl c.Cplx.im ^ "i"
  else if c.Cplx.im > 0. then Printf.sprintf "%s+%si" (fl c.Cplx.re) (fl c.Cplx.im)
  else Printf.sprintf "%s-%si" (fl c.Cplx.re) (fl (-.c.Cplx.im))

let print_operand = function
  | Instr.Slot k -> Printf.sprintf "m[%d]" k
  | Instr.Reg r -> Printf.sprintf "r%d" r
  | Instr.Imm c -> "#" ^ print_cplx c

let print_dest = function
  | Instr.Dslot k -> Printf.sprintf "m[%d]" k
  | Instr.Dreg r -> Printf.sprintf "r%d" r

let unit_letter op =
  match Opcode.resource op with
  | Opcode.Vector_core -> "V"
  | Opcode.Scalar_accel -> "S"
  | Opcode.Index_merge -> "M"

let print_issue (i : Instr.issue) =
  Printf.sprintf "  %s %s <- %s(%s) @n%d" (unit_letter i.Instr.op)
    (print_dest i.Instr.dest)
    (Opcode.name i.Instr.op)
    (String.concat ", " (List.map print_operand i.Instr.args))
    i.Instr.node

let arch_name arch =
  match List.find_opt (fun (_, a) -> a = arch) Arch.presets with
  | Some (n, _) -> n
  | None -> "eit"  (* custom instances print as the default preset *)

let print (p : Instr.program) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line ".arch %s" (arch_name p.Instr.arch);
  List.iter
    (function
      | Instr.In_slot (k, v) ->
        line ".input m[%d] = %s" k
          (String.concat ", " (Array.to_list (Array.map print_cplx v)))
      | Instr.In_reg (r, c) -> line ".input r%d = %s" r (print_cplx c))
    p.Instr.inputs;
  List.iter
    (fun (node, dest) -> line ".output n%d -> %s" node (print_dest dest))
    p.Instr.outputs;
  List.iter
    (fun ci ->
      line "@%d:" ci.Instr.cycle;
      List.iter (fun i -> line "%s" (print_issue i)) ci.Instr.vector;
      Option.iter (fun i -> line "%s" (print_issue i)) ci.Instr.scalar;
      Option.iter (fun i -> line "%s" (print_issue i)) ci.Instr.im)
    p.Instr.instrs;
  Buffer.contents buf

(* ------------------------- parsing -------------------------------- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_cplx s =
  let s = String.trim s in
  if s = "" then fail "empty complex literal";
  let parse_float t =
    match float_of_string_opt (String.trim t) with
    | Some f -> f
    | None -> fail "bad number %S" t
  in
  if s.[String.length s - 1] = 'i' then begin
    let body = String.sub s 0 (String.length s - 1) in
    (* split into re and im at the last +/- that is not an exponent or
       leading sign *)
    let split_at = ref None in
    String.iteri
      (fun idx ch ->
        if (ch = '+' || ch = '-') && idx > 0 then begin
          let prev = body.[idx - 1] in
          if prev <> 'e' && prev <> 'E' then split_at := Some idx
        end)
      body;
    match !split_at with
    | None ->
      let imag = if body = "" || body = "+" then 1. else if body = "-" then -1. else parse_float body in
      Cplx.make 0. imag
    | Some idx ->
      let re = parse_float (String.sub body 0 idx) in
      let im_str = String.sub body idx (String.length body - idx) in
      let im =
        if im_str = "+" then 1. else if im_str = "-" then -1. else parse_float im_str
      in
      Cplx.make re im
  end
  else Cplx.of_float (parse_float s)

let parse_location s =
  let s = String.trim s in
  if String.length s > 3 && String.sub s 0 2 = "m[" && s.[String.length s - 1] = ']'
  then `Slot (int_of_string (String.sub s 2 (String.length s - 3)))
  else if String.length s > 1 && s.[0] = 'r' then
    `Reg (int_of_string (String.sub s 1 (String.length s - 1)))
  else fail "bad location %S" s

let parse_operand s =
  let s = String.trim s in
  if String.length s > 0 && s.[0] = '#' then
    Instr.Imm (parse_cplx (String.sub s 1 (String.length s - 1)))
  else
    match parse_location s with
    | `Slot k -> Instr.Slot k
    | `Reg r -> Instr.Reg r

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let split1 sep s =
  match String.index_opt s sep with
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> None

let fresh_node = ref 1_000_000

let parse_issue body =
  (* "<U> <dest> <- <op>(<args>) [@n<id>]" ; unit letter already split *)
  match split1 '<' body with
  | Some (dest_s, rest) when String.length rest > 0 && rest.[0] = '-' ->
    let rest = String.sub rest 1 (String.length rest - 1) in
    let node, rest =
      match split1 '@' rest with
      | Some (r, ann) ->
        let ann = String.trim ann in
        if String.length ann > 1 && ann.[0] = 'n' then
          (int_of_string (String.sub ann 1 (String.length ann - 1)), r)
        else fail "bad node annotation %S" ann
      | None ->
        incr fresh_node;
        (!fresh_node, rest)
    in
    let rest = String.trim rest in
    let op_name, args_s =
      match split1 '(' rest with
      | Some (op_name, args) ->
        let args = String.trim args in
        if String.length args = 0 || args.[String.length args - 1] <> ')' then
          fail "missing closing parenthesis";
        (String.trim op_name, String.sub args 0 (String.length args - 1))
      | None -> fail "missing operand list"
    in
    let op =
      try Opcode.of_name op_name
      with Invalid_argument m -> fail "%s" m
    in
    let args =
      if String.trim args_s = "" then []
      else List.map parse_operand (String.split_on_char ',' args_s)
    in
    let dest =
      match parse_location dest_s with
      | `Slot k -> Instr.Dslot k
      | `Reg r -> Instr.Dreg r
    in
    { Instr.op; args; dest; node }
  | _ -> fail "expected '<dest> <- op(args)'"

let parse text =
  fresh_node := 1_000_000;
  let arch = ref Arch.default in
  let inputs = ref [] in
  let outputs = ref [] in
  let instrs = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some ci ->
      instrs := { ci with Instr.vector = List.rev ci.Instr.vector } :: !instrs;
      current := None
    | None -> ()
  in
  try
    List.iteri
      (fun lineno raw ->
        let line = String.trim (strip_comment raw) in
        let fail_line fmt =
          Printf.ksprintf (fun s -> fail "line %d: %s" (lineno + 1) s) fmt
        in
        try
          if line = "" then ()
          else if String.length line > 5 && String.sub line 0 5 = ".arch" then begin
            let name = String.trim (String.sub line 5 (String.length line - 5)) in
            match List.assoc_opt name Arch.presets with
            | Some a -> arch := a
            | None -> fail "unknown preset %S" name
          end
          else if String.length line > 6 && String.sub line 0 6 = ".input" then begin
            match split1 '=' (String.sub line 6 (String.length line - 6)) with
            | Some (loc, vals) -> (
              let vals = List.map parse_cplx (String.split_on_char ',' vals) in
              match parse_location loc with
              | `Slot k ->
                if List.length vals <> Value.vlen then fail "vector preload needs 4 values";
                inputs := Instr.In_slot (k, Array.of_list vals) :: !inputs
              | `Reg r -> (
                match vals with
                | [ c ] -> inputs := Instr.In_reg (r, c) :: !inputs
                | _ -> fail "register preload needs one value"))
            | None -> fail "expected '.input <loc> = <values>'"
          end
          else if String.length line > 7 && String.sub line 0 7 = ".output" then begin
            match split1 '>' line with
            | Some (lhs, loc) -> (
              let lhs = String.trim lhs in
              (* lhs looks like ".output n<id> -" *)
              let lhs = String.sub lhs 7 (String.length lhs - 7) in
              let lhs = String.trim lhs in
              let lhs =
                if String.length lhs > 0 && lhs.[String.length lhs - 1] = '-' then
                  String.trim (String.sub lhs 0 (String.length lhs - 1))
                else lhs
              in
              if String.length lhs < 2 || lhs.[0] <> 'n' then fail "expected n<id>";
              let node = int_of_string (String.sub lhs 1 (String.length lhs - 1)) in
              match parse_location loc with
              | `Slot k -> outputs := (node, Instr.Dslot k) :: !outputs
              | `Reg r -> outputs := (node, Instr.Dreg r) :: !outputs)
            | None -> fail "expected '.output n<id> -> <loc>'"
          end
          else if line.[0] = '@' then begin
            if line.[String.length line - 1] <> ':' then fail "cycle header needs ':'";
            flush ();
            let c = int_of_string (String.sub line 1 (String.length line - 2)) in
            current := Some (Instr.empty_cycle c)
          end
          else begin
            let unit, body =
              match split1 ' ' line with
              | Some (u, body) -> (String.trim u, body)
              | None -> fail "expected an issue line"
            in
            let issue = parse_issue body in
            if unit <> unit_letter issue.Instr.op then
              fail "unit letter %s does not match %s" unit
                (Opcode.name issue.Instr.op);
            match !current with
            | None -> fail "issue before any cycle header"
            | Some ci -> (
              match Opcode.resource issue.Instr.op with
              | Opcode.Vector_core ->
                current := Some { ci with Instr.vector = issue :: ci.Instr.vector }
              | Opcode.Scalar_accel ->
                if ci.Instr.scalar <> None then fail "two scalar issues in one cycle";
                current := Some { ci with Instr.scalar = Some issue }
              | Opcode.Index_merge ->
                if ci.Instr.im <> None then fail "two index/merge issues in one cycle";
                current := Some { ci with Instr.im = Some issue })
          end
        with
        | Parse_error _ as e -> raise e
        | Failure m -> fail_line "%s" m
        | Invalid_argument m -> fail_line "%s" m)
      (String.split_on_char '\n' text);
    flush ();
    Ok
      {
        Instr.arch = !arch;
        inputs = List.rev !inputs;
        instrs = List.rev !instrs;
        outputs = List.rev !outputs;
      }
  with Parse_error msg -> Error msg

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let save path p =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (print p))
