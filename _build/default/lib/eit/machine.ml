type error =
  | Read_uninitialized of { cycle : int; node : int; slot : int }
  | Read_unwritten_reg of { cycle : int; node : int; reg : int }
  | Access_violation of { cycle : int; violations : Mem.violation list }
  | Structural of string
  | Write_conflict of { cycle : int; dest : Instr.dest }

exception Sim_error of error

let pp_error ppf = function
  | Read_uninitialized { cycle; node; slot } ->
    Format.fprintf ppf "cycle %d, node %d: read of uninitialized slot %d" cycle node slot
  | Read_unwritten_reg { cycle; node; reg } ->
    Format.fprintf ppf "cycle %d, node %d: read of unwritten register r%d" cycle node reg
  | Access_violation { cycle; violations } ->
    Format.fprintf ppf "cycle %d: %a" cycle
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         Mem.pp_violation)
      violations
  | Structural msg -> Format.fprintf ppf "structural error: %s" msg
  | Write_conflict { cycle; dest } ->
    Format.fprintf ppf "cycle %d: conflicting write-backs to %s" cycle
      (match dest with
      | Instr.Dslot k -> Printf.sprintf "m[%d]" k
      | Instr.Dreg r -> Printf.sprintf "r%d" r)

type result = {
  memory : Mem.t;
  registers : (int * Cplx.t) list;
  node_values : (int * Value.t) list;
  cycles : int;
  reads_per_cycle : (int * int) list;
  reconfigurations : int;
}

type writeback = { wb_cycle : int; wb_dest : Instr.dest; wb_value : Value.t; wb_node : int }

type trace_event =
  | Ev_issue of { cycle : int; unit : string; issue : Instr.issue }
  | Ev_writeback of { cycle : int; node : int; dest : Instr.dest; value : Value.t }

let pp_dest ppf = function
  | Instr.Dslot k -> Format.fprintf ppf "m[%d]" k
  | Instr.Dreg r -> Format.fprintf ppf "r%d" r

let pp_trace_event ppf = function
  | Ev_issue { cycle; unit; issue } ->
    Format.fprintf ppf "%4d  issue %s  %a" cycle unit Instr.pp_issue issue
  | Ev_writeback { cycle; node; dest; value } ->
    Format.fprintf ppf "%4d  wb    n%d -> %a = %a" cycle node pp_dest dest
      Value.pp value

let run ?(check_access = true) ?(trace = fun _ -> ()) (p : Instr.program) =
  (match Instr.validate_structure p with
  | Ok () -> ()
  | Error msg -> raise (Sim_error (Structural msg)));
  let arch = p.arch in
  let mem = Mem.create arch in
  let regs : (int, Cplx.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (function
      | Instr.In_slot (k, v) -> Mem.write mem k v
      | Instr.In_reg (r, c) -> Hashtbl.replace regs r c)
    p.inputs;
  let node_values : (int, Value.t) Hashtbl.t = Hashtbl.create 64 in
  let pending : (int, writeback list) Hashtbl.t = Hashtbl.create 64 in
  let add_pending wb =
    Hashtbl.replace pending wb.wb_cycle
      (wb :: Option.value ~default:[] (Hashtbl.find_opt pending wb.wb_cycle))
  in
  let reads_per_cycle = ref [] in
  let last_wb = ref 0 in
  let by_cycle = Hashtbl.create 64 in
  List.iter (fun ci -> Hashtbl.replace by_cycle ci.Instr.cycle ci) p.instrs;
  let horizon =
    Instr.span p
    + List.fold_left
        (fun acc ci ->
          let ops =
            List.map (fun i -> i.Instr.op) ci.Instr.vector
            @ List.map (fun (i : Instr.issue) -> i.op)
                (Option.to_list ci.Instr.scalar @ Option.to_list ci.Instr.im)
          in
          List.fold_left (fun m op -> max m (Arch.latency arch op)) acc ops)
        0 p.instrs
  in
  for cycle = 0 to horizon do
    (* 1. Write-backs due this cycle (memory writes checked as this
       cycle's write traffic). *)
    let wbs = Option.value ~default:[] (Hashtbl.find_opt pending cycle) in
    Hashtbl.remove pending cycle;
    let write_slots =
      List.filter_map
        (fun wb -> match wb.wb_dest with Instr.Dslot k -> Some k | _ -> None)
        wbs
    in
    (* Detect two results landing in the same destination at once. *)
    let rec dup = function
      | [] -> None
      | k :: rest -> if List.mem k rest then Some k else dup rest
    in
    (match dup write_slots with
    | Some k -> raise (Sim_error (Write_conflict { cycle; dest = Instr.Dslot k }))
    | None -> ());
    (* 2. Issues this cycle: collect reads first. *)
    let ci = Hashtbl.find_opt by_cycle cycle in
    let issues =
      match ci with
      | None -> []
      | Some ci ->
        ci.Instr.vector @ Option.to_list ci.Instr.scalar @ Option.to_list ci.Instr.im
    in
    let read_slots =
      List.concat_map
        (fun (i : Instr.issue) ->
          List.filter_map
            (function Instr.Slot k -> Some k | _ -> None)
            i.args)
        issues
    in
    if check_access then begin
      let violations = Mem.check_access arch ~reads:read_slots ~writes:write_slots in
      if violations <> [] then raise (Sim_error (Access_violation { cycle; violations }))
    end;
    (* Apply write-backs before reads: a datum written back in cycle c is
       readable by an op issued in cycle c (s_j >= s_i + l_i). *)
    List.iter
      (fun wb ->
        (match wb.wb_dest with
        | Instr.Dslot k -> Mem.write mem k (Value.as_vector wb.wb_value)
        | Instr.Dreg r -> Hashtbl.replace regs r (Value.as_scalar wb.wb_value));
        Hashtbl.replace node_values wb.wb_node wb.wb_value;
        trace (Ev_writeback { cycle; node = wb.wb_node; dest = wb.wb_dest; value = wb.wb_value });
        last_wb := max !last_wb cycle)
      wbs;
    if read_slots <> [] then
      reads_per_cycle := (cycle, List.length (List.sort_uniq compare read_slots)) :: !reads_per_cycle;
    (* Execute issues. *)
    List.iter
      (fun (i : Instr.issue) ->
        let fetch = function
          | Instr.Slot k ->
            if not (Mem.is_initialized mem k) then
              raise (Sim_error (Read_uninitialized { cycle; node = i.node; slot = k }));
            Value.Vector (Mem.read mem k)
          | Instr.Reg r -> (
            match Hashtbl.find_opt regs r with
            | Some c -> Value.Scalar c
            | None ->
              raise (Sim_error (Read_unwritten_reg { cycle; node = i.node; reg = r })))
          | Instr.Imm c -> Value.Scalar c
        in
        let unit =
          match Opcode.resource i.op with
          | Opcode.Vector_core -> "V"
          | Opcode.Scalar_accel -> "S"
          | Opcode.Index_merge -> "M"
        in
        trace (Ev_issue { cycle; unit; issue = i });
        let args = List.map fetch i.args in
        let value = Opcode.eval i.op args in
        add_pending
          {
            wb_cycle = cycle + Arch.latency arch i.op;
            wb_dest = i.dest;
            wb_value = value;
            wb_node = i.node;
          })
      issues
  done;
  if Hashtbl.length pending > 0 then
    raise (Sim_error (Structural "pending write-backs after horizon"));
  {
    memory = mem;
    registers = Hashtbl.fold (fun r c acc -> (r, c) :: acc) regs [];
    node_values = Hashtbl.fold (fun n v acc -> (n, v) :: acc) node_values [];
    cycles = !last_wb;
    reads_per_cycle = List.rev !reads_per_cycle;
    reconfigurations = Instr.reconfigurations p;
  }

let output_values result (p : Instr.program) =
  List.map
    (fun (node, dest) ->
      match dest with
      | Instr.Dslot k -> (node, Value.Vector (Mem.read result.memory k))
      | Instr.Dreg r -> (node, Value.Scalar (List.assoc r result.registers)))
    p.outputs
