type t = {
  n_lanes : int;
  vector_latency : int;
  vector_duration : int;
  scalar_latency : int;
  scalar_simple_latency : int;
  scalar_duration : int;
  im_latency : int;
  im_duration : int;
  banks : int;
  page_size : int;
  lines : int;
  slot_limit : int option;
  max_reads_per_cycle : int;
  max_writes_per_cycle : int;
  reconfig_cost : int;
}

let default =
  {
    n_lanes = 4;
    vector_latency = 7;
    vector_duration = 1;
    (* Calibrated: with sqrt/div at 7 cycles the MGS-QRD critical path
       lands at the paper's reported 169 cycles. *)
    scalar_latency = 7;
    scalar_simple_latency = 2;
    scalar_duration = 1;
    im_latency = 1;
    im_duration = 1;
    banks = 16;
    page_size = 4;
    lines = 4;
    slot_limit = None;
    max_reads_per_cycle = 8;
    max_writes_per_cycle = 4;
    reconfig_cost = 1;
  }

let wide =
  {
    default with
    n_lanes = 8;
    vector_latency = 9;
    banks = 32;
    lines = 4;
    max_reads_per_cycle = 16;
    max_writes_per_cycle = 8;
  }

let mini =
  {
    default with
    n_lanes = 2;
    banks = 8;
    lines = 2;
    max_reads_per_cycle = 4;
    max_writes_per_cycle = 2;
  }

let presets = [ ("eit", default); ("wide", wide); ("mini", mini) ]

let slots a =
  let full = a.banks * a.lines in
  match a.slot_limit with None -> full | Some n -> min n full

let with_slots a n =
  if n <= 0 || n > a.banks * a.lines then
    invalid_arg (Printf.sprintf "Arch.with_slots: %d out of range" n);
  { a with slot_limit = Some n }

let latency a (op : Opcode.t) =
  match op with
  | V _ -> a.vector_latency
  | S (Ssqrt | Srsqrt | Sinv | Sdiv | Scordic) -> a.scalar_latency
  | S (Smul | Sadd | Ssub) -> a.scalar_simple_latency
  | IM _ -> a.im_latency

let duration a (op : Opcode.t) =
  match op with
  | V _ -> a.vector_duration
  | S _ -> a.scalar_duration
  | IM _ -> a.im_duration

let resource_limit a = function
  | Opcode.Vector_core -> a.n_lanes
  | Opcode.Scalar_accel -> 1
  | Opcode.Index_merge -> 1

let pp ppf a =
  Format.fprintf ppf
    "EIT{lanes=%d; vlat=%d; slat=%d; banks=%d; page=%d; lines=%d; slots=%d}"
    a.n_lanes a.vector_latency a.scalar_latency a.banks a.page_size a.lines
    (slots a)
