type vcore =
  | Vid
  | Vadd
  | Vsub
  | Vmul
  | Vscale
  | Vmac
  | Vaxpy
  | Vnaxpy
  | Vdotp
  | Vdoth
  | Vsqsum
  | Msqsum
  | Mvmul
  | Mhvmul

type vpre = Pconj | Pneg | Pmask of int
type vpost = Qsort | Qabs | Qneg

type sop = Ssqrt | Srsqrt | Sinv | Sdiv | Smul | Sadd | Ssub | Scordic

type imop = Merge4 | Splat | Index of int

type t =
  | V of { pre : vpre option; core : vcore; post : vpost option }
  | S of sop
  | IM of imop

type resource_class = Vector_core | Scalar_accel | Index_merge

let v core = V { pre = None; core; post = None }

let resource = function
  | V _ -> Vector_core
  | S _ -> Scalar_accel
  | IM _ -> Index_merge

let is_matrix_core = function
  | Msqsum | Mvmul | Mhvmul -> true
  | Vid | Vadd | Vsub | Vmul | Vscale | Vmac | Vaxpy | Vnaxpy | Vdotp
  | Vdoth | Vsqsum ->
    false

let lanes = function
  | V { core; _ } -> if is_matrix_core core then 4 else 1
  | S _ | IM _ -> 0

let core_arity = function
  | Vid -> 1
  | Vadd | Vsub | Vmul | Vscale | Vdotp | Vdoth -> 2
  | Vmac | Vaxpy | Vnaxpy -> 3
  | Vsqsum -> 1
  | Msqsum -> 4
  | Mvmul | Mhvmul -> 5

let arity = function
  | V { core; _ } -> core_arity core
  | S (Ssqrt | Srsqrt | Sinv | Scordic) -> 1
  | S (Sdiv | Smul | Sadd | Ssub) -> 2
  | IM Merge4 -> 4
  | IM Splat -> 1
  | IM (Index _) -> 1

let produces = function
  | V { core = Vdotp | Vdoth | Vsqsum; _ } -> `Scalar
  | V _ -> `Vector
  | S _ -> `Scalar
  | IM (Merge4 | Splat) -> `Vector
  | IM (Index _) -> `Scalar

let config_equal a b =
  match (a, b) with
  | V x, V y -> x.pre = y.pre && x.core = y.core && x.post = y.post
  | S x, S y -> x = y
  | IM x, IM y -> x = y
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)

(* The PE2 stage transforms the operand stream entering lane port 0; the
   merge pass relies on this so fusing a pre-op into a multi-operand
   consumer keeps the semantics (the pre-op's output must be operand 0). *)
let apply_pre pre (vals : Value.t list) =
  let on_first f = function
    | first :: rest -> f first :: rest
    | [] -> []
  in
  let on_vec f = function
    | Value.Vector a -> Value.Vector (Array.map f a)
    | other -> other
  in
  match pre with
  | None -> vals
  | Some Pconj -> on_first (on_vec Cplx.conj) vals
  | Some Pneg -> on_first (on_vec Cplx.neg) vals
  | Some (Pmask m) ->
    on_first
      (function
        | Value.Vector a ->
          Value.Vector
            (Array.mapi (fun i x -> if m land (1 lsl i) <> 0 then x else Cplx.zero) a)
        | other -> other)
      vals

let apply_post post (v : Value.t) =
  match (post, v) with
  | None, _ -> v
  | Some Qsort, Value.Vector a ->
    let b = Array.copy a in
    Array.sort (fun x y -> Cplx.compare_by_norm y x) b;
    Value.Vector b
  | Some Qabs, Value.Vector a ->
    Value.Vector (Array.map (fun x -> Cplx.of_float (Cplx.abs x)) a)
  | Some Qneg, Value.Vector a -> Value.Vector (Array.map Cplx.neg a)
  | Some Qneg, Value.Scalar c -> Value.Scalar (Cplx.neg c)
  | Some (Qsort | Qabs), Value.Scalar _ -> v
  | Some _, Value.Matrix _ -> invalid_arg "Opcode: post stage on matrix value"

let dot a b =
  let acc = ref Cplx.zero in
  Array.iteri (fun i x -> acc := Cplx.mac !acc x b.(i)) a;
  !acc

let eval_core core (vals : Value.t list) : Value.t =
  let vec = Value.as_vector and sca = Value.as_scalar in
  match (core, vals) with
  | Vid, [ x ] -> x
  | Vadd, [ a; b ] -> Value.vector (Array.map2 Cplx.add (vec a) (vec b))
  | Vsub, [ a; b ] -> Value.vector (Array.map2 Cplx.sub (vec a) (vec b))
  | Vmul, [ a; b ] -> Value.vector (Array.map2 Cplx.mul (vec a) (vec b))
  | Vscale, [ a; s ] ->
    let s = sca s in
    Value.vector (Array.map (fun x -> Cplx.mul x s) (vec a))
  | Vmac, [ a; b; c ] ->
    let b = vec b and c = vec c in
    Value.vector (Array.mapi (fun i x -> Cplx.mac x b.(i) c.(i)) (vec a))
  | Vaxpy, [ a; s; b ] ->
    let s = sca s and b = vec b in
    Value.vector (Array.mapi (fun i x -> Cplx.mac x s b.(i)) (vec a))
  | Vnaxpy, [ a; s; b ] ->
    let s = Cplx.neg (sca s) and b = vec b in
    Value.vector (Array.mapi (fun i x -> Cplx.mac x s b.(i)) (vec a))
  | Vdotp, [ a; b ] -> Value.scalar (dot (vec a) (vec b))
  | Vdoth, [ a; b ] -> Value.scalar (dot (vec a) (Array.map Cplx.conj (vec b)))
  | Vsqsum, [ a ] ->
    Value.scalar
      (Cplx.of_float (Array.fold_left (fun acc x -> acc +. Cplx.norm2 x) 0. (vec a)))
  | Msqsum, [ r0; r1; r2; r3 ] ->
    let sq r = Cplx.of_float (Array.fold_left (fun acc x -> acc +. Cplx.norm2 x) 0. (vec r)) in
    Value.vector [| sq r0; sq r1; sq r2; sq r3 |]
  | Mvmul, [ r0; r1; r2; r3; x ] ->
    let x = vec x in
    Value.vector (Array.map (fun r -> dot (vec r) x) [| r0; r1; r2; r3 |])
  | Mhvmul, [ r0; r1; r2; r3; x ] ->
    (* rows are the rows of M; computes M^H x: entry j = sum_i conj(M_ij) x_i *)
    let rows = [| vec r0; vec r1; vec r2; vec r3 |] in
    let x = vec x in
    Value.vector
      (Array.init Value.vlen (fun j ->
           let acc = ref Cplx.zero in
           Array.iteri (fun i r -> acc := Cplx.mac !acc (Cplx.conj r.(j)) x.(i)) rows;
           !acc))
  | _ ->
    invalid_arg "Opcode.eval: arity mismatch for vector core op"

let eval_sop op (vals : Value.t list) : Value.t =
  let sca = Value.as_scalar in
  match (op, vals) with
  | Ssqrt, [ a ] -> Value.scalar (Cplx.sqrt (sca a))
  | Srsqrt, [ a ] -> Value.scalar (Cplx.inv (Cplx.sqrt (sca a)))
  | Sinv, [ a ] -> Value.scalar (Cplx.inv (sca a))
  | Scordic, [ a ] ->
    let z = sca a in
    let m = Cplx.abs z in
    if m = 0. then Value.scalar Cplx.zero
    else Value.scalar (Cplx.scale (1. /. m) z)
  | Sdiv, [ a; b ] -> Value.scalar (Cplx.div (sca a) (sca b))
  | Smul, [ a; b ] -> Value.scalar (Cplx.mul (sca a) (sca b))
  | Sadd, [ a; b ] -> Value.scalar (Cplx.add (sca a) (sca b))
  | Ssub, [ a; b ] -> Value.scalar (Cplx.sub (sca a) (sca b))
  | _ -> invalid_arg "Opcode.eval: arity mismatch for scalar op"

let eval_imop op (vals : Value.t list) : Value.t =
  match (op, vals) with
  | Merge4, [ a; b; c; d ] ->
    Value.vector
      [| Value.as_scalar a; Value.as_scalar b; Value.as_scalar c; Value.as_scalar d |]
  | Splat, [ a ] -> Value.vector (Array.make Value.vlen (Value.as_scalar a))
  | Index k, [ a ] ->
    let arr = Value.as_vector a in
    if k < 0 || k >= Value.vlen then invalid_arg "Opcode.eval: index out of range";
    Value.scalar arr.(k)
  | _ -> invalid_arg "Opcode.eval: arity mismatch for index/merge op"

let eval op vals =
  if List.length vals <> arity op then
    invalid_arg
      (Printf.sprintf "Opcode.eval: expected %d operands, got %d" (arity op)
         (List.length vals));
  match op with
  | V { pre; core; post } -> apply_post post (eval_core core (apply_pre pre vals))
  | S sop -> eval_sop sop vals
  | IM imop -> eval_imop imop vals

(* ------------------------------------------------------------------ *)
(* Names                                                               *)

let core_name = function
  | Vid -> "v_id"
  | Vadd -> "v_add"
  | Vsub -> "v_sub"
  | Vmul -> "v_mul"
  | Vscale -> "v_scale"
  | Vmac -> "v_mac"
  | Vaxpy -> "v_axpy"
  | Vnaxpy -> "v_naxpy"
  | Vdotp -> "v_dotP"
  | Vdoth -> "v_dotH"
  | Vsqsum -> "v_squsum"
  | Msqsum -> "m_squsum"
  | Mvmul -> "m_vmul"
  | Mhvmul -> "m_hvmul"

let pre_name = function
  | Pconj -> "conj"
  | Pneg -> "neg"
  | Pmask m -> Printf.sprintf "mask%d" m

let post_name = function Qsort -> "sort" | Qabs -> "abs" | Qneg -> "negp"

let sop_name = function
  | Ssqrt -> "s_sqrt"
  | Srsqrt -> "s_rsqrt"
  | Sinv -> "s_inv"
  | Sdiv -> "s_div"
  | Smul -> "s_mul"
  | Sadd -> "s_add"
  | Ssub -> "s_sub"
  | Scordic -> "s_cordic"

let imop_name = function
  | Merge4 -> "merge"
  | Splat -> "splat"
  | Index k -> Printf.sprintf "index%d" k

let name = function
  | V { pre; core; post } ->
    String.concat ";"
      (Option.to_list (Option.map pre_name pre)
      @ [ core_name core ]
      @ Option.to_list (Option.map post_name post))
  | S s -> sop_name s
  | IM m -> imop_name m

let all_cores =
  [ Vid; Vadd; Vsub; Vmul; Vscale; Vmac; Vaxpy; Vnaxpy; Vdotp; Vdoth;
    Vsqsum; Msqsum; Mvmul; Mhvmul ]

let all_sops = [ Ssqrt; Srsqrt; Sinv; Sdiv; Smul; Sadd; Ssub; Scordic ]

let core_of_name s =
  match List.find_opt (fun c -> core_name c = s) all_cores with
  | Some c -> c
  | None -> invalid_arg ("Opcode.of_name: unknown core op " ^ s)

let pre_of_name s =
  match s with
  | "conj" -> Pconj
  | "neg" -> Pneg
  | _ ->
    if String.length s > 4 && String.sub s 0 4 = "mask" then
      Pmask (int_of_string (String.sub s 4 (String.length s - 4)))
    else invalid_arg ("Opcode.of_name: unknown pre op " ^ s)

let post_of_name = function
  | "sort" -> Qsort
  | "abs" -> Qabs
  | "negp" -> Qneg
  | s -> invalid_arg ("Opcode.of_name: unknown post op " ^ s)

let of_name s =
  match List.find_opt (fun o -> sop_name o = s) all_sops with
  | Some o -> S o
  | None -> (
    match s with
    | "merge" -> IM Merge4
    | "splat" -> IM Splat
    | _ when String.length s > 5 && String.sub s 0 5 = "index" ->
      IM (Index (int_of_string (String.sub s 5 (String.length s - 5))))
    | _ -> (
      match String.split_on_char ';' s with
      | [ c ] -> V { pre = None; core = core_of_name c; post = None }
      | [ a; b ] -> (
        (* either pre;core or core;post *)
        match core_of_name b with
        | core -> V { pre = Some (pre_of_name a); core; post = None }
        | exception Invalid_argument _ ->
          V { pre = None; core = core_of_name a; post = Some (post_of_name b) })
      | [ a; b; c ] ->
        V { pre = Some (pre_of_name a); core = core_of_name b; post = Some (post_of_name c) }
      | _ -> invalid_arg ("Opcode.of_name: cannot parse " ^ s)))

let pp ppf op = Format.pp_print_string ppf (name op)
