type operand = Slot of int | Reg of int | Imm of Cplx.t

type dest = Dslot of int | Dreg of int

type issue = { op : Opcode.t; args : operand list; dest : dest; node : int }

type cycle_instr = {
  cycle : int;
  vector : issue list;
  scalar : issue option;
  im : issue option;
}

type input_binding =
  | In_slot of int * Cplx.t array
  | In_reg of int * Cplx.t

type program = {
  arch : Arch.t;
  inputs : input_binding list;
  instrs : cycle_instr list;
  outputs : (int * dest) list;
}

let empty_cycle cycle = { cycle; vector = []; scalar = None; im = None }

let length p = List.length p.instrs

let span p =
  List.fold_left (fun acc ci -> max acc (ci.cycle + 1)) 0 p.instrs

let vector_config ci =
  match ci.vector with [] -> None | i :: _ -> Some i.op

let configs p =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ci ->
      match vector_config ci with
      | Some op -> Hashtbl.replace tbl ci.cycle op
      | None -> ())
    p.instrs;
  List.init (span p) (fun c -> Hashtbl.find_opt tbl c)

let reconfigurations p = Config.count_reconfigs (configs p)

let validate_structure p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec check_cycles last = function
    | [] -> Ok ()
    | ci :: rest ->
      if ci.cycle <= last then err "cycle %d not strictly increasing" ci.cycle
      else check_cycles ci.cycle rest
  in
  let check_issue i =
    if List.length i.args <> Opcode.arity i.op then
      err "issue node %d (%s): %d args, arity %d" i.node (Opcode.name i.op)
        (List.length i.args) (Opcode.arity i.op)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let rec check_all f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      check_all f rest
  in
  let check_cycle ci =
    let issues =
      ci.vector @ Option.to_list ci.scalar @ Option.to_list ci.im
    in
    let* () = check_all check_issue issues in
    let lanes =
      List.fold_left (fun acc i -> acc + Opcode.lanes i.op) 0 ci.vector
    in
    let* () =
      if lanes > p.arch.Arch.n_lanes then
        err "cycle %d: %d lanes used, only %d available" ci.cycle lanes
          p.arch.Arch.n_lanes
      else Ok ()
    in
    let* () =
      match ci.vector with
      | [] | [ _ ] -> Ok ()
      | first :: rest ->
        if List.for_all (fun i -> Opcode.config_equal i.op first.op) rest then
          Ok ()
        else err "cycle %d: mixed vector-core configurations" ci.cycle
    in
    let* () =
      check_all
        (fun i ->
          if Opcode.resource i.op = Opcode.Vector_core then Ok ()
          else err "cycle %d: non-vector op %s in vector bundle" ci.cycle (Opcode.name i.op))
        ci.vector
    in
    let* () =
      match ci.scalar with
      | Some i when Opcode.resource i.op <> Opcode.Scalar_accel ->
        err "cycle %d: %s is not a scalar-accelerator op" ci.cycle (Opcode.name i.op)
      | _ -> Ok ()
    in
    match ci.im with
    | Some i when Opcode.resource i.op <> Opcode.Index_merge ->
      err "cycle %d: %s is not an index/merge op" ci.cycle (Opcode.name i.op)
    | _ -> Ok ()
  in
  let* () = check_cycles (-1) p.instrs in
  check_all check_cycle p.instrs

let pp_operand ppf = function
  | Slot k -> Format.fprintf ppf "m[%d]" k
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm c -> Format.fprintf ppf "#%a" Cplx.pp c

let pp_dest ppf = function
  | Dslot k -> Format.fprintf ppf "m[%d]" k
  | Dreg r -> Format.fprintf ppf "r%d" r

let pp_issue ppf i =
  Format.fprintf ppf "%a <- %s(%a)" pp_dest i.dest (Opcode.name i.op)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_operand)
    i.args

let pp ppf p =
  Format.fprintf ppf "; %a@." Arch.pp p.arch;
  List.iter
    (fun ci ->
      Format.fprintf ppf "%4d:" ci.cycle;
      List.iter (fun i -> Format.fprintf ppf "  V %a" pp_issue i) ci.vector;
      Option.iter (fun i -> Format.fprintf ppf "  S %a" pp_issue i) ci.scalar;
      Option.iter (fun i -> Format.fprintf ppf "  M %a" pp_issue i) ci.im;
      Format.fprintf ppf "@.")
    p.instrs
