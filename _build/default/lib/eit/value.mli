(** Runtime values of the EIT data path: complex scalars, 4-element
    vectors and 4x4 matrices (a matrix is exactly four row vectors, as in
    the paper's DSL). *)

val vlen : int
(** Hardware vector length: 4. *)

type t =
  | Scalar of Cplx.t
  | Vector of Cplx.t array   (** length {!vlen} *)
  | Matrix of Cplx.t array array  (** {!vlen} rows of length {!vlen} *)

val scalar : Cplx.t -> t
val vector : Cplx.t array -> t
(** @raise Invalid_argument if the array length differs from {!vlen}. *)

val matrix : Cplx.t array array -> t
(** @raise Invalid_argument unless it is {!vlen} rows of {!vlen}. *)

val vector_of_list : Cplx.t list -> t
val vector_of_floats : float list -> t
val matrix_of_floats : float list list -> t

val as_scalar : t -> Cplx.t
val as_vector : t -> Cplx.t array
val as_matrix : t -> Cplx.t array array
(** @raise Invalid_argument on kind mismatch. *)

val kind : t -> string
(** ["scalar"], ["vector"] or ["matrix"]. *)

val zero_vector : t
val zero_scalar : t

val row : t -> int -> t
(** [row m i]: the [i]-th row of a matrix as a vector. *)

val col : t -> int -> t
(** [col m j]: the [j]-th column of a matrix as a vector. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
