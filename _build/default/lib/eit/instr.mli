(** Machine instructions: the code-generation target.

    One {!cycle_instr} bundles everything issued in a clock cycle, VLIW
    style: up to [n_lanes] vector-core issues sharing one configuration
    (or a single matrix issue occupying all lanes), at most one scalar
    accelerator issue and at most one index/merge issue.

    Vector data lives in memory slots; scalar data lives in the
    accelerator register file (the paper assumes optimal allocation and
    access for scalar data, so registers are virtual and unbounded). *)

type operand =
  | Slot of int        (** vector in memory slot *)
  | Reg of int         (** scalar register *)
  | Imm of Cplx.t      (** immediate scalar (program constants) *)

type dest = Dslot of int | Dreg of int

type issue = {
  op : Opcode.t;
  args : operand list;
  dest : dest;
  node : int;          (** originating IR node id, for tracing *)
}

type cycle_instr = {
  cycle : int;
  vector : issue list;
  scalar : issue option;
  im : issue option;
}

type input_binding =
  | In_slot of int * Cplx.t array   (** preloaded vector *)
  | In_reg of int * Cplx.t          (** preloaded scalar *)

type program = {
  arch : Arch.t;
  inputs : input_binding list;
  instrs : cycle_instr list;        (** strictly increasing cycles *)
  outputs : (int * dest) list;      (** IR node id -> final location *)
}

val empty_cycle : int -> cycle_instr

val length : program -> int
(** Number of non-empty instruction cycles. *)

val span : program -> int
(** Last issue cycle + 1 (0 for an empty program). *)

val vector_config : cycle_instr -> Opcode.t option
(** The vector-core configuration of the cycle, if any vector issue. *)

val configs : program -> Opcode.t option list
(** Per-cycle vector configuration over [0 .. span-1] (for
    reconfiguration counting). *)

val reconfigurations : program -> int

val validate_structure : program -> (unit, string) result
(** Static checks: cycle ordering, lane capacity, configuration
    exclusivity (paper constraint 3), single scalar/IM issue, operand
    arity. *)

val pp_issue : Format.formatter -> issue -> unit
val pp : Format.formatter -> program -> unit
(** Assembly-like listing. *)
