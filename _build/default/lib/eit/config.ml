type t = Opcode.t option

let effective l = List.filter_map Fun.id l

let count_switches ops =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      go (if Opcode.config_equal a b then acc else acc + 1) rest
    | [ _ ] | [] -> acc
  in
  go 0 ops

let count_reconfigs l = count_switches (effective l)

let count_reconfigs_cyclic l =
  match effective l with
  | [] | [ _ ] -> 0
  | first :: _ as ops ->
    let last = List.nth ops (List.length ops - 1) in
    count_switches ops + if Opcode.config_equal last first then 0 else 1

let of_schedule ~cycle_op ~cycles = List.init cycles cycle_op
