(** Vector-core configuration tracking (paper §4.3).

    The vector block's operation mode is set by configuration memories
    reloadable every cycle.  A *reconfiguration* happens whenever the
    configuration active in one effective cycle differs from the one in
    the previous effective cycle; idle cycles keep the last
    configuration.  The paper counts reconfigurations of the vector core
    only (MATMUL "uses only one type of operation ... therefore no
    reconfiguration is needed after the first instruction"). *)

type t = Opcode.t option
(** The configuration in force during one cycle; [None] = idle/nop. *)

val count_reconfigs : t list -> int
(** Number of configuration switches in a linear cycle sequence.  The
    initial load is not counted (matching the paper's MATMUL remark);
    idle cycles are transparent. *)

val count_reconfigs_cyclic : t list -> int
(** Same over a cyclic (steady-state modulo-schedule kernel) sequence:
    the wrap-around transition from the last effective configuration
    back to the first one also counts when they differ. *)

val effective : t list -> Opcode.t list
(** The sequence with idle cycles dropped. *)

val of_schedule : cycle_op:(int -> Opcode.t option) -> cycles:int -> t list
(** Sample a schedule: configuration at cycle [c] is the vector-core op
    issued at [c] (if any). *)
