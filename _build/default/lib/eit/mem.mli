(** The specialized vector memory (paper §3.4, Figs. 7-8).

    The memory is organized in [banks] banks; [page_size] consecutive
    banks form a *page*; the slots at the same depth across all banks
    form a *line*.  A slot holds one 4-element vector.  Slots are
    enumerated linearly across banks: slot [k] is in bank [k mod banks],
    line [k / banks], page [(k mod banks) / page_size].

    Per-cycle access rules:
    - every bank supports one read and one write per cycle;
    - at most [max_reads] vectors read and [max_writes] written per
      cycle (8 and 4 on EIT = two matrices in, one out);
    - within one page, simultaneously accessed slots must lie on the
      same line (page descriptors are shared; violating this needs a
      costly access reconfiguration).

    Reads and writes use separate ports, so the page rule applies to the
    read set and the write set independently. *)

type coords = { bank : int; line : int; page : int }

val coords_of_slot : Arch.t -> int -> coords
(** @raise Invalid_argument if the slot is outside the usable range. *)

val slot_of : Arch.t -> bank:int -> line:int -> int

type violation =
  | Bank_conflict of { bank : int; slots : int list }
  | Page_line_conflict of { page : int; slots : int list }
  | Too_many_accesses of { kind : [ `Read | `Write ]; count : int; limit : int }
  | Slot_out_of_range of int

val pp_violation : Format.formatter -> violation -> unit

val check_access : Arch.t -> reads:int list -> writes:int list -> violation list
(** All rule violations for one cycle's accesses ([[]] = legal).
    Duplicate reads of the same slot count once (single bank fetch). *)

val access_ok : Arch.t -> reads:int list -> writes:int list -> bool

(** {1 Memory contents}

    A mutable slot store used by the simulator. *)

type t

val create : Arch.t -> t
val arch : t -> Arch.t

val read : t -> int -> Cplx.t array
(** @raise Invalid_argument on out-of-range or uninitialized slots. *)

val write : t -> int -> Cplx.t array -> unit

val is_initialized : t -> int -> bool

val used_slots : t -> int list
(** Slots holding data, ascending. *)

val copy : t -> t
