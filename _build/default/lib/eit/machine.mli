(** Cycle-accurate simulator for {!Instr.program}s.

    Executes a program on the modelled micro-architecture: operands are
    read in the issue cycle, results are written back [latency] cycles
    later, and every cycle's memory traffic is checked against the access
    rules of {!Mem} (bank ports, read/write limits, page-line rule).

    The simulator is the ground truth that closes the loop the paper
    could not: a schedule produced by the CP model is code-generated and
    *run*, and its results compared against the DSL's reference
    evaluation. *)

type error =
  | Read_uninitialized of { cycle : int; node : int; slot : int }
  | Read_unwritten_reg of { cycle : int; node : int; reg : int }
  | Access_violation of { cycle : int; violations : Mem.violation list }
  | Structural of string
  | Write_conflict of { cycle : int; dest : Instr.dest }

exception Sim_error of error

val pp_error : Format.formatter -> error -> unit

type result = {
  memory : Mem.t;                       (** final memory image *)
  registers : (int * Cplx.t) list;      (** final register file *)
  node_values : (int * Value.t) list;   (** value produced per IR node *)
  cycles : int;                         (** completion cycle (last write-back) *)
  reads_per_cycle : (int * int) list;   (** cycle -> #vector reads (telemetry) *)
  reconfigurations : int;
}

type trace_event =
  | Ev_issue of { cycle : int; unit : string; issue : Instr.issue }
  | Ev_writeback of { cycle : int; node : int; dest : Instr.dest; value : Value.t }

val run :
  ?check_access:bool ->
  ?trace:(trace_event -> unit) ->
  Instr.program ->
  result
(** Execute to completion.
    [check_access] (default [true]) enforces the per-cycle memory rules.
    [trace] receives every issue and write-back in cycle order (used by
    the CLI's [--trace] and by tests asserting pipeline timing).
    @raise Sim_error on any dynamic rule violation. *)

val pp_trace_event : Format.formatter -> trace_event -> unit

val output_values : result -> Instr.program -> (int * Value.t) list
(** The program's declared outputs, resolved against the {e final}
    machine state.  Meaningful only when output slots are not reused
    afterwards; schedules from the paper's model stream results out at
    write-back (lifetime 1), so prefer [result.node_values] for those. *)
