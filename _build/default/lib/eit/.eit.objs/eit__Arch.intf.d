lib/eit/arch.mli: Format Opcode
