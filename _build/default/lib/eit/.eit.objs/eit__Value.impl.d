lib/eit/value.ml: Array Cplx Format List Printf
