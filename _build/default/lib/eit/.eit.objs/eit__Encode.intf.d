lib/eit/encode.mli: Arch Cplx Format Instr
