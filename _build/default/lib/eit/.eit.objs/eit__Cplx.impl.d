lib/eit/cplx.ml: Float Format
