lib/eit/config.ml: Fun List Opcode
