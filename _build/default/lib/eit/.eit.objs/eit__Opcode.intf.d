lib/eit/opcode.mli: Format Value
