lib/eit/mem.ml: Arch Array Cplx Format Hashtbl List Option Printf String Value
