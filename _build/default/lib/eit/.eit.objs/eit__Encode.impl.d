lib/eit/encode.ml: Array Cplx Format Instr Int64 List Opcode Option
