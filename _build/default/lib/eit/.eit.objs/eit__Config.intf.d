lib/eit/config.mli: Opcode
