lib/eit/instr.ml: Arch Config Cplx Format Hashtbl List Opcode Option Result
