lib/eit/asm.ml: Arch Array Buffer Cplx Float Fun Instr List Opcode Option Printf String Value
