lib/eit/machine.mli: Cplx Format Instr Mem Value
