lib/eit/cplx.mli: Format
