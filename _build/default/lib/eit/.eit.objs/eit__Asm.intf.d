lib/eit/asm.mli: Instr
