lib/eit/opcode.ml: Array Cplx Format List Option Printf String Value
