lib/eit/machine.ml: Arch Cplx Format Hashtbl Instr List Mem Opcode Option Printf Value
