lib/eit/instr.mli: Arch Cplx Format Opcode
