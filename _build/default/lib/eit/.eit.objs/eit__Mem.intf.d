lib/eit/mem.mli: Arch Cplx Format
