lib/eit/arch.ml: Format Opcode Printf
