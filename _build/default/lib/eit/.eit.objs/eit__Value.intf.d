lib/eit/value.mli: Cplx Format
