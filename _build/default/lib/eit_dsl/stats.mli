(** Graph statistics in the paper's notation: (|V|, |E|, |Cr.P|) and the
    vector-data count — the numbers reported in §4.2 and Tables 1/3. *)

type t = {
  v : int;       (** node count |V| *)
  e : int;       (** edge count |E| *)
  crp : int;     (** critical path length in clock cycles |Cr.P| *)
  v_data : int;  (** number of [vector_data] nodes (#v_data) *)
  by_category : (Ir.category * int) list;
}

val of_ir : ?arch:Eit.Arch.t -> Ir.t -> t
(** Defaults to {!Eit.Arch.default} for latencies. *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. [|V|=143, |E|=194, |Cr.P|=169, #v_data=49]. *)
