let quote s =
  "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let to_string ?(name = "ir") g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=TB;\n" name);
  List.iter
    (fun nd ->
      let shape = if Ir.is_data nd.Ir.cat then "box" else "ellipse" in
      let label =
        match nd.Ir.op with
        | Some op -> Eit.Opcode.name op
        | None -> nd.Ir.label
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=%s, label=%s];\n" nd.Ir.id shape (quote label)))
    (Ir.nodes g);
  List.iter
    (fun nd ->
      List.iter
        (fun p -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p nd.Ir.id))
        (Ir.preds g nd.Ir.id))
    (Ir.nodes g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))
