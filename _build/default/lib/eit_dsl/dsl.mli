(** The embedded domain-specific language (paper §3.1, listing 1).

    The DSL mirrors the paper's Scala library in OCaml: programs are
    written against architecture-specific data types ({!scalar},
    {!vector}, {!matrix}); *running* a DSL program both evaluates it
    concretely (the paper's "debugging run") and traces it into the IR
    dataflow graph that the scheduler consumes.

    A {!matrix} is a bundle of four row vectors and creates no IR node by
    itself — matrix data is expanded into four vector data nodes
    (paper §3.2.1).  Matrix operations create one [matrix_op] node whose
    operands are the four row-vector nodes. *)

type ctx
type scalar
type vector
type matrix

val create : unit -> ctx

(** {1 Inputs and constants} *)

val vector_input : ctx -> ?name:string -> Eit.Cplx.t array -> vector
val vector_input_f : ctx -> ?name:string -> float list -> vector
val scalar_input : ctx -> ?name:string -> Eit.Cplx.t -> scalar
val scalar_input_f : ctx -> ?name:string -> float -> scalar
val matrix_input : ctx -> ?name:string -> Eit.Cplx.t array array -> matrix
val matrix_input_f : ctx -> ?name:string -> float list list -> matrix

val matrix_of_rows : vector -> vector -> vector -> vector -> matrix
(** Group four existing vectors into a matrix (no IR node). *)

val rows : matrix -> vector * vector * vector * vector
val row : matrix -> int -> vector

(** {1 Vector-core operations} *)

val v_add : ctx -> vector -> vector -> vector
val v_sub : ctx -> vector -> vector -> vector
val v_mul : ctx -> vector -> vector -> vector
val v_scale : ctx -> vector -> scalar -> vector
val v_mac : ctx -> vector -> vector -> vector -> vector
(** [v_mac ctx a b c = a + b .* c]. *)

val v_axpy : ctx -> vector -> scalar -> vector -> vector
(** [v_axpy ctx a s b = a + s * b]. *)

val v_naxpy : ctx -> vector -> scalar -> vector -> vector
(** [v_naxpy ctx a s b = a - s * b]. *)

val v_dotp : ctx -> vector -> vector -> scalar
(** Plain dot product (listing 1's [v_dotP]). *)

val v_doth : ctx -> vector -> vector -> scalar
(** Hermitian dot product [sum a_k conj(b_k)]. *)

val v_squsum : ctx -> vector -> scalar

(** {2 Standalone pre/post-processing operations}

    These occupy the vector pipeline on their own until the merge pass
    fuses them into a neighbouring core operation (paper Fig. 6). *)

val v_conj : ctx -> vector -> vector
val v_neg : ctx -> vector -> vector
val v_mask : ctx -> vector -> int -> vector
val v_sort : ctx -> vector -> vector
val v_abs : ctx -> vector -> vector

(** {1 Matrix operations} *)

val m_squsum : ctx -> matrix -> vector
val m_vmul : ctx -> matrix -> vector -> vector
val m_hvmul : ctx -> matrix -> vector -> vector

(** {1 Scalar accelerator operations} *)

val s_sqrt : ctx -> scalar -> scalar
val s_rsqrt : ctx -> scalar -> scalar
val s_inv : ctx -> scalar -> scalar
val s_div : ctx -> scalar -> scalar -> scalar
val s_mul : ctx -> scalar -> scalar -> scalar
val s_add : ctx -> scalar -> scalar -> scalar
val s_sub : ctx -> scalar -> scalar -> scalar
val s_cordic : ctx -> scalar -> scalar

(** {1 Index / merge} *)

val merge : ctx -> scalar -> scalar -> scalar -> scalar -> vector
val splat : ctx -> scalar -> vector
val index : ctx -> vector -> int -> scalar

(** {1 Outputs and results} *)

val mark_output : ctx -> vector -> unit
val mark_output_scalar : ctx -> scalar -> unit
(** Declare application outputs (recorded in the IR / used by codegen).
    Declaring none means "every sink data node is an output". *)

val scalar_value : scalar -> Eit.Cplx.t
val vector_value : vector -> Eit.Cplx.t array
val matrix_value : matrix -> Eit.Cplx.t array array
(** Concrete values from the debugging evaluation. *)

val node_of_scalar : scalar -> int
val node_of_vector : vector -> int
(** IR data-node ids of the handles. *)

val graph : ctx -> Ir.t
(** Freeze the traced program into an IR graph.
    @raise Invalid_argument if the trace violates IR invariants. *)

val declared_outputs : ctx -> int list
(** Node ids passed to {!mark_output} / {!mark_output_scalar}. *)
