lib/eit_dsl/dot.mli: Ir
