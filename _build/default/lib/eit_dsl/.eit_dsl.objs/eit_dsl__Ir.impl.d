lib/eit_dsl/ir.ml: Array Eit Format List Option Printf Queue
