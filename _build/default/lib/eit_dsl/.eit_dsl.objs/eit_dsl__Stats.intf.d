lib/eit_dsl/stats.mli: Eit Format Ir
