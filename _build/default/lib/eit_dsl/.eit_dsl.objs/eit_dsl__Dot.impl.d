lib/eit_dsl/dot.ml: Buffer Eit Fun Ir List Printf String
