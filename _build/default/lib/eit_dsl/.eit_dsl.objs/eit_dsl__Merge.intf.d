lib/eit_dsl/merge.mli: Ir
