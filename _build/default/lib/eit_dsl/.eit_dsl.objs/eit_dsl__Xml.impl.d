lib/eit_dsl/xml.ml: Array Buffer Eit Fun Ir List Option Printf String
