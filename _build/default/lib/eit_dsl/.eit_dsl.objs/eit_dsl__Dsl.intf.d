lib/eit_dsl/dsl.mli: Eit Ir
