lib/eit_dsl/merge.ml: Eit Hashtbl Ir List
