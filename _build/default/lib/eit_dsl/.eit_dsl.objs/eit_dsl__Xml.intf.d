lib/eit_dsl/xml.mli: Ir
