lib/eit_dsl/stats.ml: Eit Format Ir List
