lib/eit_dsl/dsl.ml: Array Cplx Eit Ir List Opcode Option Printf Value
