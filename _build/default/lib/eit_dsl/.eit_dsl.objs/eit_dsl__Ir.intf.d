lib/eit_dsl/ir.mli: Eit Format
