(* The pass works on a mutable view: one record per operation node, plus
   liveness flags for data nodes.  Graphs are small (hundreds of nodes),
   so the quadratic fixpoint loop is immaterial. *)

type mop = {
  mutable op : Eit.Opcode.t;
  mutable args : int list;   (* data node ids, operand order *)
  mutable result : int;      (* data node id *)
  mutable alive : bool;
}

type remap = { graph : Ir.t; data_map : (int * int) list; fusions : int }

let map_data r i = List.assoc i r.data_map

(* Standalone pipeline stages created by the DSL. *)
let as_standalone_pre (op : Eit.Opcode.t) =
  match op with
  | V { pre = Some p; core = Vid; post = None } -> Some p
  | _ -> None

let as_standalone_post (op : Eit.Opcode.t) =
  match op with
  | V { pre = None; core = Vid; post = Some q } -> Some q
  | _ -> None

let run ?(protect = []) g =
  let protected i = List.mem i protect in
  let ops =
    List.map
      (fun i ->
        let result = match Ir.succs g i with [ r ] -> r | _ -> assert false in
        { op = Ir.opcode g i; args = Ir.preds g i; result; alive = true })
      (Ir.op_nodes g)
  in
  let live = List.filter (fun o -> o.alive) in
  (* How many operand positions (across all live ops) read datum [d]. *)
  let consumers d =
    List.concat_map
      (fun o -> List.filter_map (fun a -> if a = d then Some o else None) o.args)
      (live ops)
  in
  let fusions = ref 0 in
  let dead_data = Hashtbl.create 16 in
  let try_pre_fusion o =
    match (as_standalone_pre o.op, o.args) with
    | Some pre, [ x ] when not (protected o.result) -> (
      match consumers o.result with
      | [ c ] -> (
        match c.op with
        | V ({ pre = None; _ } as r) when List.nth c.args 0 = o.result -> (
          (* operand 0 only, and only once, so the pre stage transforms
             exactly the datum the standalone op did *)
          match List.filter (fun a -> a = o.result) c.args with
          | [ _ ] ->
            c.op <- V { r with pre = Some pre };
            c.args <- x :: List.tl c.args;
            o.alive <- false;
            Hashtbl.replace dead_data o.result ();
            incr fusions;
            true
          | _ -> false)
        | _ -> false)
      | _ -> false)
    | _ -> false
  in
  let try_post_fusion o =
    (* [o] is the standalone post node; fuse into the producer of its
       operand. *)
    match (as_standalone_post o.op, o.args) with
    | Some post, [ d ] when not (protected d) -> (
      match List.find_opt (fun p -> p.result = d) (live ops) with
      | Some producer -> (
        match (producer.op, consumers d) with
        | V ({ post = None; _ } as r), [ _ ] ->
          producer.op <- V { r with post = Some post };
          producer.result <- o.result;
          o.alive <- false;
          Hashtbl.replace dead_data d ();
          incr fusions;
          true
        | _ -> false)
      | None -> false)
    | _ -> false
  in
  let rec fixpoint () =
    let changed =
      List.exists (fun o -> o.alive && (try_pre_fusion o || try_post_fusion o)) ops
    in
    if changed then fixpoint ()
  in
  fixpoint ();
  (* Rebuild. *)
  let b = Ir.builder () in
  let data_map = Hashtbl.create 64 in
  List.iter
    (fun i ->
      if not (Hashtbl.mem dead_data i) then begin
        let nd = Ir.node g i in
        let kind = match nd.Ir.cat with Ir.Vector_data -> `Vector | _ -> `Scalar in
        let id = Ir.add_data b ~label:nd.Ir.label ?value:nd.Ir.value kind in
        Hashtbl.replace data_map i id
      end)
    (Ir.data_nodes g);
  List.iter
    (fun o ->
      if o.alive then
        ignore
          (Ir.add_op b o.op
             ~args:(List.map (Hashtbl.find data_map) o.args)
             ~result:(Hashtbl.find data_map o.result)))
    ops;
  {
    graph = Ir.freeze b;
    data_map = Hashtbl.fold (fun k v acc -> (k, v) :: acc) data_map [];
    fusions = !fusions;
  }
