(** The intermediate representation (paper §3.2): a bipartite dataflow
    DAG of *operation* nodes and *data* nodes.

    Invariants (checked by {!validate}):
    - the graph is acyclic;
    - edges alternate: operation -> data and data -> operation only;
    - every data node has at most one predecessor (its producer); data
      nodes without a predecessor are application inputs;
    - every operation node has exactly one successor (the datum it
      produces) and [Opcode.arity op] ordered predecessors;
    - data nodes carry a value kind consistent with their producer. *)

type category =
  | Vector_op
  | Matrix_op
  | Scalar_op
  | Index
  | Merge
  | Vector_data
  | Scalar_data

val category_name : category -> string
val category_of_name : string -> category
val is_data : category -> bool
val is_op : category -> bool

type node = {
  id : int;
  cat : category;
  op : Eit.Opcode.t option;     (** [Some] iff operation node *)
  label : string;
  value : Eit.Value.t option;   (** trace value (inputs always have one) *)
}

type t

(** {1 Construction} *)

type builder

val builder : unit -> builder

val add_data :
  builder -> ?label:string -> ?value:Eit.Value.t -> [ `Vector | `Scalar ] -> int
(** Fresh data node; returns its id. *)

val add_op :
  builder -> ?label:string -> Eit.Opcode.t -> args:int list -> result:int -> int
(** Operation node consuming the (data) nodes [args] in operand order and
    producing the (data) node [result].
    @raise Invalid_argument on arity mismatch, non-data arguments, or a
    [result] that already has a producer. *)

val freeze : builder -> t
(** @raise Invalid_argument if the graph violates an IR invariant. *)

(** {1 Accessors} *)

val size : t -> int
(** Node count |V|. *)

val edge_count : t -> int
(** Edge count |E|. *)

val node : t -> int -> node
val nodes : t -> node list

val preds : t -> int -> int list
(** Predecessors; in operand order for operation nodes. *)

val succs : t -> int -> int list

val producer : t -> int -> int option
(** The operation producing a data node, if any. *)

val category : t -> int -> category

val opcode : t -> int -> Eit.Opcode.t
(** @raise Invalid_argument on data nodes. *)

val op_nodes : t -> int list
val data_nodes : t -> int list

val inputs : t -> int list
(** Data nodes without a producer. *)

val outputs : t -> int list
(** Data nodes without consumers. *)

val count : t -> category -> int

(** {1 Analyses} *)

val topo_order : t -> int list
(** Topological order (inputs first). *)

val validate : t -> (unit, string) result

val critical_path : t -> Eit.Arch.t -> int
(** Length (in clock cycles) of the longest latency-weighted path: data
    nodes weigh 0, operation nodes weigh [Arch.latency].  This is the
    paper's |Cr.P|. *)

val eval : ?inputs:(int * Eit.Value.t) list -> t -> (int * Eit.Value.t) list
(** Reference evaluation: compute every data node's value from the input
    nodes' trace values, ignoring any recorded intermediate values.
    [inputs] overrides trace values per input node id — used to replay
    the same kernel on a stream of different data.
    @raise Invalid_argument if an input lacks a value, or if [inputs]
    names a non-input node or carries the wrong value kind. *)

val pp_node : Format.formatter -> node -> unit
val pp_summary : Format.formatter -> t -> unit
(** e.g. [|V|=44 |E|=68 ops=20 data=24]. *)
