type t = {
  v : int;
  e : int;
  crp : int;
  v_data : int;
  by_category : (Ir.category * int) list;
}

let all_categories =
  [ Ir.Vector_op; Ir.Matrix_op; Ir.Scalar_op; Ir.Index; Ir.Merge;
    Ir.Vector_data; Ir.Scalar_data ]

let of_ir ?(arch = Eit.Arch.default) g =
  {
    v = Ir.size g;
    e = Ir.edge_count g;
    crp = Ir.critical_path g arch;
    v_data = Ir.count g Ir.Vector_data;
    by_category = List.map (fun c -> (c, Ir.count g c)) all_categories;
  }

let pp ppf t =
  Format.fprintf ppf "|V|=%d, |E|=%d, |Cr.P|=%d, #v_data=%d" t.v t.e t.crp
    t.v_data
