(** Graphviz export of the IR, in the style of the paper's Fig. 3:
    data nodes as rectangles, operation nodes as ovals. *)

val to_string : ?name:string -> Ir.t -> string
val save : string -> Ir.t -> unit
