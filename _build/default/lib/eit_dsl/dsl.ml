open Eit

type ctx = { b : Ir.builder; mutable outs : int list }

type scalar = { s_node : int; s_val : Cplx.t }
type vector = { v_node : int; v_val : Cplx.t array }
type matrix = { m_rows : vector array }

let create () = { b = Ir.builder (); outs = [] }

(* ------------------------------------------------------------------ *)
(* Inputs                                                              *)

let vector_input ctx ?name arr =
  if Array.length arr <> Value.vlen then invalid_arg "Dsl.vector_input: wrong length";
  let id = Ir.add_data ctx.b ?label:name ~value:(Value.vector arr) `Vector in
  { v_node = id; v_val = Array.copy arr }

let vector_input_f ctx ?name l =
  vector_input ctx ?name (Array.of_list (List.map Cplx.of_float l))

let scalar_input ctx ?name c =
  let id = Ir.add_data ctx.b ?label:name ~value:(Value.scalar c) `Scalar in
  { s_node = id; s_val = c }

let scalar_input_f ctx ?name f = scalar_input ctx ?name (Cplx.of_float f)

let matrix_input ctx ?name m =
  if Array.length m <> Value.vlen then invalid_arg "Dsl.matrix_input: wrong row count";
  let rows =
    Array.mapi
      (fun i r ->
        let name = Option.map (fun n -> Printf.sprintf "%s[%d]" n i) name in
        vector_input ctx ?name r)
      m
  in
  { m_rows = rows }

let matrix_input_f ctx ?name rows =
  matrix_input ctx ?name
    (Array.of_list
       (List.map (fun r -> Array.of_list (List.map Cplx.of_float r)) rows))

let matrix_of_rows r0 r1 r2 r3 = { m_rows = [| r0; r1; r2; r3 |] }

let rows m = (m.m_rows.(0), m.m_rows.(1), m.m_rows.(2), m.m_rows.(3))

let row m i =
  if i < 0 || i >= Value.vlen then invalid_arg "Dsl.row: index out of range";
  m.m_rows.(i)

(* ------------------------------------------------------------------ *)
(* Generic op application: evaluate concretely + extend the trace.     *)

type arg = Av of vector | As of scalar

let arg_node = function Av v -> v.v_node | As s -> s.s_node
let arg_value = function
  | Av v -> Value.Vector (Array.copy v.v_val)
  | As s -> Value.Scalar s.s_val

let apply ctx op args =
  let value = Opcode.eval op (List.map arg_value args) in
  let kind = match Opcode.produces op with `Vector -> `Vector | `Scalar -> `Scalar in
  let result = Ir.add_data ctx.b kind in
  let (_ : int) =
    Ir.add_op ctx.b op ~args:(List.map arg_node args) ~result
  in
  (result, value)

let vec_op ctx op args =
  match apply ctx op args with
  | id, Value.Vector a -> { v_node = id; v_val = a }
  | _ -> assert false

let sca_op ctx op args =
  match apply ctx op args with
  | id, Value.Scalar c -> { s_node = id; s_val = c }
  | _ -> assert false

let vc core = Opcode.v core

(* ------------------------------------------------------------------ *)
(* Vector ops                                                          *)

let v_add ctx a b = vec_op ctx (vc Vadd) [ Av a; Av b ]
let v_sub ctx a b = vec_op ctx (vc Vsub) [ Av a; Av b ]
let v_mul ctx a b = vec_op ctx (vc Vmul) [ Av a; Av b ]
let v_scale ctx a s = vec_op ctx (vc Vscale) [ Av a; As s ]
let v_mac ctx a b c = vec_op ctx (vc Vmac) [ Av a; Av b; Av c ]
let v_axpy ctx a s b = vec_op ctx (vc Vaxpy) [ Av a; As s; Av b ]
let v_naxpy ctx a s b = vec_op ctx (vc Vnaxpy) [ Av a; As s; Av b ]
let v_dotp ctx a b = sca_op ctx (vc Vdotp) [ Av a; Av b ]
let v_doth ctx a b = sca_op ctx (vc Vdoth) [ Av a; Av b ]
let v_squsum ctx a = sca_op ctx (vc Vsqsum) [ Av a ]

let standalone_pre pre = Opcode.V { pre = Some pre; core = Vid; post = None }
let standalone_post post = Opcode.V { pre = None; core = Vid; post = Some post }

let v_conj ctx a = vec_op ctx (standalone_pre Pconj) [ Av a ]
let v_neg ctx a = vec_op ctx (standalone_pre Pneg) [ Av a ]

let v_mask ctx a m =
  if m < 0 || m > 15 then invalid_arg "Dsl.v_mask: mask out of range";
  vec_op ctx (standalone_pre (Pmask m)) [ Av a ]

let v_sort ctx a = vec_op ctx (standalone_post Qsort) [ Av a ]
let v_abs ctx a = vec_op ctx (standalone_post Qabs) [ Av a ]

(* ------------------------------------------------------------------ *)
(* Matrix ops                                                          *)

let matrix_args m = Array.to_list (Array.map (fun r -> Av r) m.m_rows)

let m_squsum ctx m = vec_op ctx (vc Msqsum) (matrix_args m)
let m_vmul ctx m x = vec_op ctx (vc Mvmul) (matrix_args m @ [ Av x ])
let m_hvmul ctx m x = vec_op ctx (vc Mhvmul) (matrix_args m @ [ Av x ])

(* ------------------------------------------------------------------ *)
(* Scalar ops                                                          *)

let s_sqrt ctx a = sca_op ctx (S Ssqrt) [ As a ]
let s_rsqrt ctx a = sca_op ctx (S Srsqrt) [ As a ]
let s_inv ctx a = sca_op ctx (S Sinv) [ As a ]
let s_div ctx a b = sca_op ctx (S Sdiv) [ As a; As b ]
let s_mul ctx a b = sca_op ctx (S Smul) [ As a; As b ]
let s_add ctx a b = sca_op ctx (S Sadd) [ As a; As b ]
let s_sub ctx a b = sca_op ctx (S Ssub) [ As a; As b ]
let s_cordic ctx a = sca_op ctx (S Scordic) [ As a ]

(* ------------------------------------------------------------------ *)
(* Index / merge                                                       *)

let merge ctx a b c d = vec_op ctx (IM Merge4) [ As a; As b; As c; As d ]
let splat ctx a = vec_op ctx (IM Splat) [ As a ]

let index ctx v k =
  if k < 0 || k >= Value.vlen then invalid_arg "Dsl.index: out of range";
  sca_op ctx (IM (Index k)) [ Av v ]

(* ------------------------------------------------------------------ *)
(* Outputs                                                             *)

let mark_output ctx v = ctx.outs <- v.v_node :: ctx.outs
let mark_output_scalar ctx s = ctx.outs <- s.s_node :: ctx.outs

let scalar_value s = s.s_val
let vector_value v = Array.copy v.v_val
let matrix_value m = Array.map (fun r -> Array.copy r.v_val) m.m_rows

let node_of_scalar s = s.s_node
let node_of_vector v = v.v_node

let graph ctx = Ir.freeze ctx.b
let declared_outputs ctx = List.rev ctx.outs
