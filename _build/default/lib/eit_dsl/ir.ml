type category =
  | Vector_op
  | Matrix_op
  | Scalar_op
  | Index
  | Merge
  | Vector_data
  | Scalar_data

let category_name = function
  | Vector_op -> "vector_op"
  | Matrix_op -> "matrix_op"
  | Scalar_op -> "scalar_op"
  | Index -> "index"
  | Merge -> "merge"
  | Vector_data -> "vector_data"
  | Scalar_data -> "scalar_data"

let category_of_name = function
  | "vector_op" -> Vector_op
  | "matrix_op" -> Matrix_op
  | "scalar_op" -> Scalar_op
  | "index" -> Index
  | "merge" -> Merge
  | "vector_data" -> Vector_data
  | "scalar_data" -> Scalar_data
  | s -> invalid_arg ("Ir.category_of_name: " ^ s)

let is_data = function
  | Vector_data | Scalar_data -> true
  | Vector_op | Matrix_op | Scalar_op | Index | Merge -> false

let is_op c = not (is_data c)

type node = {
  id : int;
  cat : category;
  op : Eit.Opcode.t option;
  label : string;
  value : Eit.Value.t option;
}

type t = {
  node_arr : node array;
  pred_arr : int list array;  (* operand order for ops *)
  succ_arr : int list array;
  n_edges : int;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

type builder = {
  mutable b_nodes : node list;  (* reversed *)
  mutable b_count : int;
  mutable b_edges : (int * int) list;  (* (from, to), reversed; operand
                                          order = edge insertion order *)
}

let builder () = { b_nodes = []; b_count = 0; b_edges = [] }

let fresh_id b =
  let id = b.b_count in
  b.b_count <- id + 1;
  id

let add_data b ?label ?value kind =
  let id = fresh_id b in
  let cat = match kind with `Vector -> Vector_data | `Scalar -> Scalar_data in
  let label = Option.value label ~default:(Printf.sprintf "d%d" id) in
  (match (value, kind) with
  | Some (Eit.Value.Vector _), `Vector | Some (Eit.Value.Scalar _), `Scalar | None, _ -> ()
  | Some _, _ -> invalid_arg "Ir.add_data: value kind mismatch");
  b.b_nodes <- { id; cat; op = None; label; value } :: b.b_nodes;
  id

let category_of_op op =
  match (op : Eit.Opcode.t) with
  | V { core; _ } -> if Eit.Opcode.is_matrix_core core then Matrix_op else Vector_op
  | S _ -> Scalar_op
  | IM (Merge4 | Splat) -> Merge
  | IM (Index _) -> Index

let add_op b ?label op ~args ~result =
  if List.length args <> Eit.Opcode.arity op then
    invalid_arg
      (Printf.sprintf "Ir.add_op: %s expects %d operands, got %d"
         (Eit.Opcode.name op) (Eit.Opcode.arity op) (List.length args));
  let id = fresh_id b in
  let label = Option.value label ~default:(Eit.Opcode.name op) in
  b.b_nodes <- { id; cat = category_of_op op; op = Some op; label; value = None } :: b.b_nodes;
  List.iter (fun a -> b.b_edges <- (a, id) :: b.b_edges) args;
  b.b_edges <- (id, result) :: b.b_edges;
  id

(* ------------------------------------------------------------------ *)
(* Freeze + validation                                                 *)

let validate_frozen g =
  let n = Array.length g.node_arr in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let exception E of string in
  try
    for i = 0 to n - 1 do
      let nd = g.node_arr.(i) in
      let fail fmt = Format.kasprintf (fun s -> raise (E s)) fmt in
      if is_data nd.cat then begin
        if nd.op <> None then fail "data node %d carries an opcode" i;
        (match g.pred_arr.(i) with
        | [] | [ _ ] -> ()
        | _ -> fail "data node %d has several producers" i);
        List.iter
          (fun p ->
            if not (is_op g.node_arr.(p).cat) then
              fail "edge %d->%d between two data nodes" p i)
          g.pred_arr.(i);
        (* producer kind consistency *)
        match (g.pred_arr.(i), nd.cat) with
        | [ p ], cat -> (
          match (g.node_arr.(p).op, cat) with
          | Some op, Vector_data when Eit.Opcode.produces op = `Vector -> ()
          | Some op, Scalar_data when Eit.Opcode.produces op = `Scalar -> ()
          | Some op, _ ->
            fail "node %d: %s produces %s but feeds a %s node" p
              (Eit.Opcode.name op)
              (match Eit.Opcode.produces op with `Vector -> "vector" | `Scalar -> "scalar")
              (category_name cat)
          | None, _ -> fail "producer %d of %d has no opcode" p i)
        | _ -> ()
      end
      else begin
        let op = match nd.op with Some op -> op | None -> raise (E (Printf.sprintf "op node %d lacks an opcode" i)) in
        if List.length g.pred_arr.(i) <> Eit.Opcode.arity op then
          fail "op node %d (%s): %d operands, arity %d" i (Eit.Opcode.name op)
            (List.length g.pred_arr.(i)) (Eit.Opcode.arity op);
        (match g.succ_arr.(i) with
        | [ _ ] -> ()
        | l -> fail "op node %d has %d results (expected 1)" i (List.length l));
        List.iter
          (fun p ->
            if not (is_data g.node_arr.(p).cat) then
              fail "edge %d->%d between two op nodes" p i)
          g.pred_arr.(i);
        if category_of_op op <> nd.cat then
          fail "op node %d: category %s inconsistent with opcode %s" i
            (category_name nd.cat) (Eit.Opcode.name op)
      end
    done;
    (* acyclicity via Kahn *)
    let indeg = Array.map List.length g.pred_arr in
    let q = Queue.create () in
    Array.iteri (fun i d -> if d = 0 then Queue.add i q) indeg;
    let seen = ref 0 in
    while not (Queue.is_empty q) do
      let i = Queue.pop q in
      incr seen;
      List.iter
        (fun s ->
          indeg.(s) <- indeg.(s) - 1;
          if indeg.(s) = 0 then Queue.add s q)
        g.succ_arr.(i)
    done;
    if !seen <> n then raise (E "graph has a cycle");
    Ok ()
  with E msg -> err "%s" msg

let freeze b =
  let n = b.b_count in
  let node_arr = Array.make n { id = 0; cat = Vector_data; op = None; label = ""; value = None } in
  List.iter (fun nd -> node_arr.(nd.id) <- nd) b.b_nodes;
  let pred_arr = Array.make n [] and succ_arr = Array.make n [] in
  (* b_edges is reversed insertion order; restore order so operand lists
     come out in insertion (operand) order. *)
  List.iter
    (fun (f, t) ->
      pred_arr.(t) <- f :: pred_arr.(t);
      succ_arr.(f) <- t :: succ_arr.(f))
    b.b_edges;
  let g = { node_arr; pred_arr; succ_arr; n_edges = List.length b.b_edges } in
  match validate_frozen g with
  | Ok () -> g
  | Error msg -> invalid_arg ("Ir.freeze: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let size g = Array.length g.node_arr
let edge_count g = g.n_edges
let node g i = g.node_arr.(i)
let nodes g = Array.to_list g.node_arr
let preds g i = g.pred_arr.(i)
let succs g i = g.succ_arr.(i)

let producer g i =
  match g.pred_arr.(i) with
  | [ p ] when is_data g.node_arr.(i).cat -> Some p
  | _ -> None

let category g i = g.node_arr.(i).cat

let opcode g i =
  match g.node_arr.(i).op with
  | Some op -> op
  | None -> invalid_arg (Printf.sprintf "Ir.opcode: node %d is a data node" i)

let ids_where p g =
  Array.to_list (Array.map (fun nd -> nd.id) g.node_arr)
  |> List.filter (fun i -> p g.node_arr.(i))

let op_nodes g = ids_where (fun nd -> is_op nd.cat) g
let data_nodes g = ids_where (fun nd -> is_data nd.cat) g
let inputs g = ids_where (fun nd -> is_data nd.cat) g |> List.filter (fun i -> g.pred_arr.(i) = [])
let outputs g = ids_where (fun nd -> is_data nd.cat) g |> List.filter (fun i -> g.succ_arr.(i) = [])
let count g cat = ids_where (fun nd -> nd.cat = cat) g |> List.length

let validate g = validate_frozen g

let topo_order g =
  let n = size g in
  let indeg = Array.map List.length g.pred_arr in
  let q = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i q
  done;
  let order = ref [] in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    order := i :: !order;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s q)
      g.succ_arr.(i)
  done;
  List.rev !order

let node_latency g arch i =
  match g.node_arr.(i).op with
  | Some op -> Eit.Arch.latency arch op
  | None -> 0

let critical_path g arch =
  let n = size g in
  let start = Array.make n 0 in
  let finish = ref 0 in
  List.iter
    (fun i ->
      let est =
        List.fold_left
          (fun acc p -> max acc (start.(p) + node_latency g arch p))
          0 (preds g i)
      in
      start.(i) <- est;
      finish := max !finish (est + node_latency g arch i))
    (topo_order g);
  !finish

let eval ?(inputs = []) g =
  let n = size g in
  List.iter
    (fun (i, v) ->
      if i < 0 || i >= n then invalid_arg "Ir.eval: override out of range";
      let nd = g.node_arr.(i) in
      if (not (is_data nd.cat)) || preds g i <> [] then
        invalid_arg (Printf.sprintf "Ir.eval: node %d is not an input" i);
      match (nd.cat, v) with
      | Vector_data, Eit.Value.Vector _ | Scalar_data, Eit.Value.Scalar _ -> ()
      | _ -> invalid_arg (Printf.sprintf "Ir.eval: wrong value kind for input %d" i))
    inputs;
  let values : Eit.Value.t option array = Array.make n None in
  List.iter
    (fun i ->
      let nd = g.node_arr.(i) in
      if is_data nd.cat then
        match preds g i with
        | [] -> (
          match
            match List.assoc_opt i inputs with
            | Some v -> Some v
            | None -> nd.value
          with
          | Some v -> values.(i) <- Some v
          | None ->
            invalid_arg (Printf.sprintf "Ir.eval: input node %d (%s) has no value" i nd.label))
        | [ p ] -> values.(i) <- values.(p)
        | _ -> assert false
      else
        let op = Option.get nd.op in
        let args =
          List.map
            (fun p ->
              match values.(p) with
              | Some v -> v
              | None -> invalid_arg (Printf.sprintf "Ir.eval: operand %d not computed" p))
            (preds g i)
        in
        values.(i) <- Some (Eit.Opcode.eval op args))
    (topo_order g);
  List.filter_map
    (fun i -> Option.map (fun v -> (i, v)) values.(i))
    (data_nodes g)

let pp_node ppf nd =
  Format.fprintf ppf "%d:%s[%s]%s" nd.id nd.label (category_name nd.cat)
    (match nd.value with
    | Some v when is_data nd.cat -> Format.asprintf "=%a" Eit.Value.pp v
    | _ -> "")

let pp_summary ppf g =
  Format.fprintf ppf "|V|=%d |E|=%d ops=%d data=%d v_data=%d"
    (size g) (edge_count g)
    (List.length (op_nodes g))
    (List.length (data_nodes g))
    (count g Vector_data)
