(** The pipeline-fusion pass (paper §3.3.1, Fig. 6).

    Vector operations that follow the pre- / core- / post-processing
    pattern of the seven-stage pipeline are merged into a single node so
    the scheduler can treat the pipeline as one unit with latency 7:

    - a standalone pre-processing node (e.g. [conj]) whose single
      consumer is a vector-core operation without a pre stage, and whose
      output enters that consumer as operand 0, is fused into it;
    - a standalone post-processing node (e.g. [sort]) consuming the
      result of a vector-core operation without a post stage — and being
      its only consumer — is fused into the producer (this is the
      matrix-op example on the right of Fig. 6).

    Each fusion removes two nodes (the standalone op and the
    intermediate datum).  The pass iterates to fixpoint, so chains
    [conj -> op -> sort] collapse into a single
    [{pre=conj; core=op; post=sort}] node. *)

type remap = {
  graph : Ir.t;
  data_map : (int * int) list;
      (** surviving old data-node id -> new id (old ids of fused-away
          intermediate data do not appear) *)
  fusions : int;  (** number of fusions performed *)
}

val run : ?protect:int list -> Ir.t -> remap
(** [protect] lists data-node ids that must survive (e.g. declared
    application outputs); fusions that would remove them are skipped. *)

val map_data : remap -> int -> int
(** @raise Not_found if the old data node was fused away. *)
