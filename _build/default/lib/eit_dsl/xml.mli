(** XML serialization of the IR (the paper's DSL emits the dataflow
    graph in XML as the interface to the code-generation tool chain).

    The format is self-contained:

    {v
    <graph>
      <node id="0" cat="vector_data" label="A[0]" value="1,0;2,0;3,0;4,0"/>
      <node id="4" cat="vector_op" op="v_dotP"/>
      <edge from="0" to="4" pos="0"/>
      ...
    </graph>
    v}

    [value] attributes record trace values of input data nodes (pairs
    [re,im] separated by [;] for vectors); [pos] is the operand
    position, so operand order survives the round-trip. *)

val to_string : Ir.t -> string
val output : out_channel -> Ir.t -> unit

val of_string : string -> Ir.t
(** @raise Failure on malformed input. *)

val load : string -> Ir.t
(** Read a graph from a file path. *)

val save : string -> Ir.t -> unit
