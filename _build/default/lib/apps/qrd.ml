open Eit_dsl
open Eit

type t = {
  ctx : Dsl.ctx;
  h_top : Dsl.matrix;
  h_bot : Dsl.matrix;
  q_top : Dsl.vector array;
  q_bot : Dsl.vector array;
  r_rows : Dsl.vector array;
  perm : int array;
}

(* A fixed, well-conditioned complex 4x4 test channel. *)
let default_h =
  let c re im = Cplx.make re im in
  [|
    [| c 1.0 0.2; c 0.3 (-0.1); c 0.2 0.4; c 0.5 0.0 |];
    [| c 0.1 (-0.3); c 1.2 0.1; c 0.4 (-0.2); c 0.3 0.2 |];
    [| c 0.2 0.1; c 0.3 0.3; c 1.1 (-0.1); c 0.2 (-0.4) |];
    [| c 0.4 0.0; c 0.1 0.2; c 0.3 0.1; c 0.9 0.3 |];
  |]

let n = Value.vlen

let transpose m =
  Array.init n (fun i -> Array.init n (fun j -> m.(j).(i)))

let build ?(h = default_h) ?(sigma = 0.5) ?(sorted = false) () =
  let ctx = Dsl.create () in
  (* MGS works on columns.  The specialized memory reads matrix columns
     as easily as rows (two full matrices per cycle), which the IR models
     by storing H column-major: vector node j of [h_top] is column j. *)
  let h_top = Dsl.matrix_input ctx ~name:"H" (transpose h) in
  let reg =
    Array.init n (fun i ->
        Array.init n (fun j -> if i = j then Cplx.of_float sigma else Cplx.zero))
  in
  let h_bot = Dsl.matrix_input ctx ~name:"sI" reg in
  let zero = Dsl.scalar_input_f ctx ~name:"zero" 0. in
  (* Sorted MMSE-QRD (Luethi et al.): process the columns in decreasing
     energy order.  The energy computation and the ranking run on the
     hardware (two m_squsum, one v_add, one sort in the post-processing
     stage); the column permutation itself is resolved at trace time —
     the DSL specializes the kernel to the concrete channel, exactly as
     the debugging-run semantics of §3.1 prescribe. *)
  let perm =
    if not sorted then Array.init n Fun.id
    else begin
      let et = Dsl.m_squsum ctx h_top in
      let eb = Dsl.m_squsum ctx h_bot in
      let e = Dsl.v_add ctx et eb in
      let ranked = Dsl.v_sort ctx e in
      Dsl.mark_output ctx ranked;
      let energies = Dsl.vector_value e in
      let order = List.init n Fun.id in
      Array.of_list
        (List.sort
           (fun i j -> compare energies.(j).Cplx.re energies.(i).Cplx.re)
           order)
    end
  in
  (* Working columns of the extended matrix in processing (sorted)
     order: position p holds original column perm.(p). *)
  let col_top = Array.init n (fun p -> ref (Dsl.row h_top perm.(p))) in
  let col_bot = Array.init n (fun p -> ref (Dsl.row h_bot perm.(p))) in
  let q_top = Array.make n (Dsl.row h_top 0) in
  let q_bot = Array.make n (Dsl.row h_bot 0) in
  (* r.(k).(j) for j >= k *)
  let r = Array.make_matrix n n None in
  for k = 0 to n - 1 do
    (* ||a_k||^2 over both halves *)
    let nt = Dsl.v_squsum ctx !(col_top.(k)) in
    let nb = Dsl.v_squsum ctx !(col_bot.(k)) in
    let norm2 = Dsl.s_add ctx nt nb in
    let r_kk = Dsl.s_sqrt ctx norm2 in
    r.(k).(k) <- Some r_kk;
    let inv_r = Dsl.s_inv ctx r_kk in
    q_top.(k) <- Dsl.v_scale ctx !(col_top.(k)) inv_r;
    q_bot.(k) <- Dsl.v_scale ctx !(col_bot.(k)) inv_r;
    for j = k + 1 to n - 1 do
      (* r_kj = q_k^H a_j, over both halves *)
      let pt = Dsl.v_doth ctx !(col_top.(j)) q_top.(k) in
      let pb = Dsl.v_doth ctx !(col_bot.(j)) q_bot.(k) in
      let r_kj = Dsl.s_add ctx pt pb in
      r.(k).(j) <- Some r_kj;
      (* a_j <- a_j - r_kj q_k *)
      col_top.(j) := Dsl.v_naxpy ctx !(col_top.(j)) r_kj q_top.(k);
      col_bot.(j) := Dsl.v_naxpy ctx !(col_bot.(j)) r_kj q_bot.(k)
    done
  done;
  let r_rows =
    Array.init n (fun k ->
        let elt j = match r.(k).(j) with Some s -> s | None -> zero in
        let row = Dsl.merge ctx (elt 0) (elt 1) (elt 2) (elt 3) in
        Dsl.mark_output ctx row;
        row)
  in
  Array.iter (fun v -> Dsl.mark_output ctx v) q_top;
  Array.iter (fun v -> Dsl.mark_output ctx v) q_bot;
  { ctx; h_top; h_bot; q_top; q_bot; r_rows; perm }

let graph t = Dsl.graph t.ctx
