(** DETECT — the MMSE data-detection stage that the QRD pre-processing
    exists for (paper §4.1: QRD "is used as part of the pre-processing
    in data detection in multiple-input multiple-output (MIMO)
    systems").

    Given the decomposition [ [H; sigma I] = Q R ] produced by
    {!Qrd}, detecting a received vector [y] amounts to

    + [z = Q_top^H y]  — rotate the observation into the R basis
      (one [m_hvmul] on the top half of Q);
    + back-substitution [R s_hat = z] — solved column by column with
      [index] extractions, scalar divisions on the accelerator and
      [v_naxpy] updates.

    The kernel chains all three EIT resources (vector core, scalar
    accelerator, index/merge) through a data-dependent recurrence — a
    very different schedule shape from QRD's wide parallel updates. *)

open Eit_dsl

type t = {
  ctx : Dsl.ctx;
  s_hat : Dsl.scalar array;  (** detected symbol estimates, s_hat.(i) *)
  s_vec : Dsl.vector;        (** the estimates merged into one vector *)
}

val build :
  ?h:Eit.Cplx.t array array ->
  ?sigma:float ->
  ?y:Eit.Cplx.t array ->
  unit ->
  t
(** Performs the QRD of [[H; sigma I]] numerically (host side — the
    kernel under study is the detection, which consumes Q/R as inputs)
    and builds the detection dataflow for the received vector [y]. *)

val graph : t -> Ir.t

val reference :
  h:Eit.Cplx.t array array -> sigma:float -> y:Eit.Cplx.t array -> Eit.Cplx.t array
(** Golden detection: [R^-1 Q_top^H y] by plain back-substitution. *)

val default_y : Eit.Cplx.t array
