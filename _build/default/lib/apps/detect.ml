open Eit_dsl
open Eit

type t = {
  ctx : Dsl.ctx;
  s_hat : Dsl.scalar array;
  s_vec : Dsl.vector;
}

let n = Value.vlen

let default_y =
  [| Cplx.make 0.8 0.1; Cplx.make (-0.2) 0.4; Cplx.make 0.3 (-0.3); Cplx.make 0.5 0.2 |]

let build ?(h = Qrd.default_h) ?(sigma = 0.5) ?(y = default_y) () =
  let qr = Reference.mgs_qrd h ~sigma in
  let ctx = Dsl.create () in
  (* Q_top row-major: row i as a vector (m_hvmul consumes matrix rows) *)
  let q_rows =
    Array.init n (fun i -> Array.init n (fun j -> qr.Reference.q.(i).(j)))
  in
  let q = Dsl.matrix_input ctx ~name:"Qtop" q_rows in
  let r_rows =
    Array.init n (fun k ->
        Dsl.vector_input ctx ~name:(Printf.sprintf "R%d" k)
          (Array.init n (fun j -> qr.Reference.r.(k).(j))))
  in
  let y_vec = Dsl.vector_input ctx ~name:"y" y in
  (* z = Q_top^H y *)
  let z = Dsl.m_hvmul ctx q y_vec in
  (* back-substitution, bottom row first *)
  let s_opt : Dsl.scalar option array = Array.make n None in
  let s k = Option.get s_opt.(k) in
  for k = n - 1 downto 0 do
    let zk = Dsl.index ctx z k in
    let acc = ref zk in
    for j = n - 1 downto k + 1 do
      let rkj = Dsl.index ctx r_rows.(k) j in
      acc := Dsl.s_sub ctx !acc (Dsl.s_mul ctx rkj (s j))
    done;
    let rkk = Dsl.index ctx r_rows.(k) k in
    s_opt.(k) <- Some (Dsl.s_div ctx !acc rkk)
  done;
  let s_hat = Array.init n s in
  let s_vec = Dsl.merge ctx s_hat.(0) s_hat.(1) s_hat.(2) s_hat.(3) in
  Dsl.mark_output ctx s_vec;
  { ctx; s_hat; s_vec }

let graph t = Dsl.graph t.ctx

let reference ~h ~sigma ~y =
  let qr = Reference.mgs_qrd h ~sigma in
  (* z = Q_top^H y *)
  let z =
    Array.init n (fun j ->
        let acc = ref Cplx.zero in
        for i = 0 to n - 1 do
          acc := Cplx.mac !acc (Cplx.conj qr.Reference.q.(i).(j)) y.(i)
        done;
        !acc)
  in
  let s = Array.make n Cplx.zero in
  for k = n - 1 downto 0 do
    let acc = ref z.(k) in
    for j = k + 1 to n - 1 do
      acc := Cplx.sub !acc (Cplx.mul qr.Reference.r.(k).(j) s.(j))
    done;
    s.(k) <- Cplx.div !acc qr.Reference.r.(k).(k)
  done;
  s
