(** FIR — a block finite-impulse-response filter, a further kernel in
    the spirit of the paper's future work ("more complex applications").

    The filter convolves a stream of 4-sample blocks with [taps] complex
    coefficients: one output block combines [taps] delayed input blocks,

      y = sum_t c_t * x_{-t}

    computed as a balanced tree: [taps] coefficient multiplications
    ([v_scale]) reduced by [taps - 1] additions, so the critical path
    grows logarithmically with the tap count — a different shape from
    ARF's linear ladder, which exercises the scheduler's lane packing
    instead of its latency hiding. *)

open Eit_dsl

type t = {
  ctx : Dsl.ctx;
  output : Dsl.vector;
  taps : int;
}

val build : ?taps:int -> ?seed:int -> unit -> t
(** [taps] defaults to 8; must be at least 1. *)

val graph : t -> Ir.t

val reference : taps:int -> seed:int -> Eit.Cplx.t array
(** Golden output block for the same deterministic inputs. *)
