open Eit_dsl

type t = { ctx : Dsl.ctx; outputs : Dsl.vector list }

(* Small deterministic pseudo-random stream for inputs/coefficients. *)
let stream seed =
  let state = ref (seed * 2654435761 land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int (!state mod 2000 - 1000) /. 500.

(* One lattice half: an alternating multiply/add ladder of depth 8
   using 8 coefficient multiplications and 4 additions.

     t1 = x1*c1 + x2*c2          (depth 3)
     t2 = t1*c3 + x3*c4          (depth 5)
     t3 = t2*c5 + x4*c6          (depth 7)
     t4 = t3*c7 + x5*c8          (depth 9 is avoided: the final mul/add
                                  pair reuses depth-7 t3 directly)

   Concretely each rung is: s = v_scale(prev, c); t = v_add(s, x*c'). *)
let half ctx next tag =
  let vec i =
    Dsl.vector_input_f ctx
      ~name:(Printf.sprintf "x%s%d" tag i)
      [ next (); next (); next (); next () ]
  in
  let coef i =
    Dsl.scalar_input_f ctx ~name:(Printf.sprintf "c%s%d" tag i) (next ())
  in
  let x = Array.init 5 vec in
  let c = Array.init 8 coef in
  let rung prev xi ci cj =
    (* depth +2: scale then add *)
    let s = Dsl.v_scale ctx prev c.(ci) in
    let m = Dsl.v_scale ctx xi c.(cj) in
    (Dsl.v_add ctx s m, [])
  in
  let t1 =
    let m1 = Dsl.v_scale ctx x.(0) c.(0) in
    let m2 = Dsl.v_scale ctx x.(1) c.(1) in
    Dsl.v_add ctx m1 m2
  in
  let t2, _ = rung t1 x.(2) 2 3 in
  let t3, _ = rung t2 x.(3) 4 5 in
  (* final rung keeps depth at 8: two parallel scales of t3, one add *)
  let m7 = Dsl.v_scale ctx t3 c.(6) in
  let m8 = Dsl.v_scale ctx x.(4) c.(7) in
  let t4 = Dsl.v_add ctx m7 m8 in
  (t1, t2, t3, t4)

let build ?(seed = 1) () =
  let ctx = Dsl.create () in
  let next = stream seed in
  let a1, a2, a3, a4 = half ctx next "a" in
  let b1, b2, b3, b4 = half ctx next "b" in
  (* Cross-combination taps (keep overall depth at 8). *)
  let u1 = Dsl.v_add ctx a1 b1 in
  let u2 = Dsl.v_add ctx a2 b2 in
  let u3 = Dsl.v_add ctx a3 b3 in
  let u4 = Dsl.v_add ctx u1 u2 in
  let outputs = [ a4; b4; u3; u4 ] in
  List.iter (fun v -> Dsl.mark_output ctx v) outputs;
  { ctx; outputs }

let graph t = Dsl.graph t.ctx
