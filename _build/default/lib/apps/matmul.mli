(** MATMUL — the paper's listing 1: multiply a 4x4 matrix with its
    transpose using 16 vector dot products and 4 merges.

    Because [(A A^T)_{ij} = row_i(A) . row_j(A)], accessing "the j-th
    vector of A as a column vector" (listing 1, line 16) reads row [j]
    of [A]: the specialized memory supports the transposed access
    pattern and no index nodes appear in the IR (paper Fig. 3).

    The resulting graph has |V| = 44, |E| = 68, |Cr.P| = 8 — exactly the
    properties reported in Table 3. *)

open Eit_dsl

type t = {
  ctx : Dsl.ctx;
  input : Dsl.matrix;
  result : Dsl.matrix;   (** rows of A * A^T *)
}

val build : ?a:float list list -> unit -> t
(** Defaults to the hard-coded input of listing 1
    ([[1;2;3;4] [2;3;4;5] [3;4;5;6] [4;5;6;7]]). *)

val build_complex : Eit.Cplx.t array array -> t

val build_matrix_form : ?a:float list list -> unit -> t
(** The same computation expressed with matrix operations instead of 16
    dot products: since [A A^T] is symmetric, its row [i] equals
    [A * row_i(A)], so four [m_vmul] nodes produce the result with no
    merges at all.  §4.2 notes that "different expressions may result in
    different graphs, which in turn may result in different schedules" —
    this is the comparison subject (see the [expressiveness] bench). *)

val graph : t -> Ir.t
val default_input : float list list

(** {1 Blocked 8x8 (future-work scale)} *)

type blocked = {
  bctx : Dsl.ctx;
  c_rows : Dsl.vector array array;
      (** [c_rows.(bi).(bj)] holds rows of block C_{bi,bj}... flattened:
          row [i] of the left/right block half of output row band [bi] *)
}

val build_blocked8 : ?seed:int -> unit -> blocked
(** [A A^T] for an 8x8 matrix via 2x2 block decomposition over the 4x4
    primitives: each output block [C_{ij} = A_{i0} A_{j0}^T + A_{i1}
    A_{j1}^T] costs two 4x4 block products (16 [v_dotP] + 4 merges
    each) plus four [v_add] — the paper's §5 "more complex
    applications" at the scale the 4-lane core natively supports.
    Graph: ~270 nodes, a scheduler stress test. *)

val blocked8_reference : seed:int -> Eit.Cplx.t array array
(** The 8x8 product [A A^T] for the same deterministic input. *)

val blocked8_rows : blocked -> Eit.Cplx.t array array
(** The traced result rows, assembled back into an 8x8 matrix. *)
