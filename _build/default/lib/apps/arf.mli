(** ARF — the auto-regression filter benchmark, modified (as in the
    paper, §4.3) to operate on vectors as basic units so the vector
    capabilities of the architecture are exercised.

    The dataflow is the classic two-lattice ARF kernel: two symmetric
    halves, each an alternating multiply/accumulate ladder of depth 8
    (8 coefficient multiplications + 4 additions per half), plus four
    cross-combination additions, for 16 multiplications and 12 additions
    total — all on 4-element complex vectors.  The critical path is 8
    dependent vector operations = 56 cycles, matching Table 3's
    |Cr.P| = 56. *)

open Eit_dsl

type t = {
  ctx : Dsl.ctx;
  outputs : Dsl.vector list;
}

val build : ?seed:int -> unit -> t
(** [seed] varies the (deterministic) input samples and coefficients. *)

val graph : t -> Ir.t
