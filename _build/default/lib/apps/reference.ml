open Eit

let n = Value.vlen

let matmul_aat a =
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref Cplx.zero in
          for k = 0 to n - 1 do
            acc := Cplx.mac !acc a.(i).(k) a.(j).(k)
          done;
          !acc))

type qr = { q : Cplx.t array array; r : Cplx.t array array }

let extended h ~sigma =
  Array.init (2 * n) (fun i ->
      Array.init n (fun j ->
          if i < n then h.(i).(j)
          else if i - n = j then Cplx.of_float sigma
          else Cplx.zero))

let mgs_qrd h ~sigma =
  let a = extended h ~sigma in
  let m = 2 * n in
  (* columns as mutable vectors *)
  let col = Array.init n (fun j -> Array.init m (fun i -> a.(i).(j))) in
  let q = Array.make_matrix m n Cplx.zero in
  let r = Array.make_matrix n n Cplx.zero in
  for k = 0 to n - 1 do
    let norm =
      Float.sqrt (Array.fold_left (fun acc x -> acc +. Cplx.norm2 x) 0. col.(k))
    in
    r.(k).(k) <- Cplx.of_float norm;
    let qk = Array.map (fun x -> Cplx.scale (1. /. norm) x) col.(k) in
    for i = 0 to m - 1 do
      q.(i).(k) <- qk.(i)
    done;
    for j = k + 1 to n - 1 do
      (* r_kj = q_k^H a_j *)
      let acc = ref Cplx.zero in
      for i = 0 to m - 1 do
        acc := Cplx.mac !acc (Cplx.conj qk.(i)) col.(j).(i)
      done;
      r.(k).(j) <- !acc;
      for i = 0 to m - 1 do
        col.(j).(i) <- Cplx.sub col.(j).(i) (Cplx.mul !acc qk.(i))
      done
    done
  done;
  { q; r }

let mul_ext { q; r } =
  let m = 2 * n in
  Array.init m (fun i ->
      Array.init n (fun j ->
          let acc = ref Cplx.zero in
          for k = 0 to n - 1 do
            acc := Cplx.mac !acc q.(i).(k) r.(k).(j)
          done;
          !acc))

let check_qr h ~sigma qr ~eps =
  let a = extended h ~sigma in
  let qr_prod = mul_ext qr in
  let m = 2 * n in
  let err = ref None in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      if not (Cplx.equal ~eps a.(i).(j) qr_prod.(i).(j)) then
        err :=
          Some
            (Printf.sprintf "QR(%d,%d)=%s <> A(%d,%d)=%s" i j
               (Cplx.to_string qr_prod.(i).(j))
               i j
               (Cplx.to_string a.(i).(j)))
    done
  done;
  (* orthonormality *)
  for j1 = 0 to n - 1 do
    for j2 = 0 to n - 1 do
      let acc = ref Cplx.zero in
      for i = 0 to m - 1 do
        acc := Cplx.mac !acc (Cplx.conj qr.q.(i).(j1)) qr.q.(i).(j2)
      done;
      let expect = if j1 = j2 then Cplx.one else Cplx.zero in
      if not (Cplx.equal ~eps !acc expect) then
        err := Some (Printf.sprintf "Q^H Q (%d,%d) = %s" j1 j2 (Cplx.to_string !acc))
    done
  done;
  match !err with None -> Ok () | Some msg -> Error msg
