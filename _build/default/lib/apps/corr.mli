(** CORR — correlation peak search: correlate a received block against
    [n] stored hypotheses and rank the scores.

    Structure: per hypothesis a conjugation (standalone pre-processing
    node) feeding a dot product; the scores are merged into vectors and
    sorted (standalone post-processing).  The kernel is deliberately
    fusion-heavy: the merge pass removes two nodes per hypothesis plus
    one per result vector (paper Fig. 6), making it the natural subject
    of the merge-pass ablation study. *)

open Eit_dsl

type t = {
  ctx : Dsl.ctx;
  ranked : Dsl.vector list;  (** one sorted score vector per 4 hypotheses *)
}

val build : ?hypotheses:int -> ?seed:int -> unit -> t
(** [hypotheses] defaults to 8 and must be a positive multiple of 4. *)

val graph : t -> Ir.t
