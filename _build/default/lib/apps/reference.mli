(** Plain-OCaml golden implementations used to cross-check the DSL
    evaluation, the IR evaluator and the machine simulator. *)

open Eit

val matmul_aat : Cplx.t array array -> Cplx.t array array
(** [A * A^T] (plain transpose, no conjugation — listing 1 semantics). *)

type qr = { q : Cplx.t array array; r : Cplx.t array array }
(** [q]: 8x4 (extended), [r]: 4x4 upper triangular. *)

val mgs_qrd : Cplx.t array array -> sigma:float -> qr
(** Modified Gram-Schmidt QR of the MMSE-extended matrix
    [[H; sigma I]]. *)

val check_qr : Cplx.t array array -> sigma:float -> qr -> eps:float -> (unit, string) result
(** Verifies [Q R = [H; sigma I]] and [Q^H Q = I] within [eps]. *)

val mul_ext : qr -> Cplx.t array array
(** Reconstruct the 8x4 extended matrix from a {!qr} (i.e. [Q * R]). *)
