open Eit_dsl
type t = { ctx : Dsl.ctx; input : Dsl.matrix; result : Dsl.matrix }

let default_input =
  [ [ 1.; 2.; 3.; 4. ]; [ 2.; 3.; 4.; 5. ]; [ 3.; 4.; 5.; 6. ]; [ 4.; 5.; 6.; 7. ] ]

let build_complex rows =
  let ctx = Dsl.create () in
  let a = Dsl.matrix_input ctx ~name:"A" rows in
  (* for i <- 0 until 4; for j <- 0 until 4:
       scalars(j) = A(i) v_dotP A(j)    -- A(j) read as a column of A^T *)
  let result_rows =
    List.init Eit.Value.vlen (fun i ->
        let scalars =
          List.init Eit.Value.vlen (fun j ->
              Dsl.v_dotp ctx (Dsl.row a i) (Dsl.row a j))
        in
        match scalars with
        | [ s0; s1; s2; s3 ] ->
          let v = Dsl.merge ctx s0 s1 s2 s3 in
          Dsl.mark_output ctx v;
          v
        | _ -> assert false)
  in
  let result =
    match result_rows with
    | [ r0; r1; r2; r3 ] -> Dsl.matrix_of_rows r0 r1 r2 r3
    | _ -> assert false
  in
  { ctx; input = a; result }

let build ?(a = default_input) () =
  build_complex
    (Array.of_list
       (List.map (fun r -> Array.of_list (List.map Eit.Cplx.of_float r)) a))

(* A A^T is symmetric, so row i = A * row_i(A): four m_vmul nodes. *)
let build_matrix_form ?(a = default_input) () =
  let rows =
    Array.of_list (List.map (fun r -> Array.of_list (List.map Eit.Cplx.of_float r)) a)
  in
  let ctx = Dsl.create () in
  let m = Dsl.matrix_input ctx ~name:"A" rows in
  let result_rows =
    List.init Eit.Value.vlen (fun i ->
        let v = Dsl.m_vmul ctx m (Dsl.row m i) in
        Dsl.mark_output ctx v;
        v)
  in
  let result =
    match result_rows with
    | [ r0; r1; r2; r3 ] -> Dsl.matrix_of_rows r0 r1 r2 r3
    | _ -> assert false
  in
  { ctx; input = m; result }

let graph t = Dsl.graph t.ctx

(* ---------------- blocked 8x8 ---------------- *)

type blocked = {
  bctx : Dsl.ctx;
  c_rows : Dsl.vector array array;
}

let input8 ~seed =
  let state = ref ((seed * 75) land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int ((!state mod 100) - 50) /. 10.
  in
  Array.init 8 (fun _ -> Array.init 8 (fun _ -> next ()))

let build_blocked8 ?(seed = 1) () =
  let a8 = input8 ~seed in
  let ctx = Dsl.create () in
  (* block (bi, bk) of A: rows 4bi..4bi+3, columns 4bk..4bk+3 *)
  let block bi bk =
    Dsl.matrix_input ctx
      ~name:(Printf.sprintf "A%d%d" bi bk)
      (Array.init 4 (fun i ->
           Array.init 4 (fun j -> Eit.Cplx.of_float a8.((4 * bi) + i).((4 * bk) + j))))
  in
  let blocks = Array.init 2 (fun bi -> Array.init 2 (fun bk -> block bi bk)) in
  (* C_{bi,bj} = A_{bi,0} A_{bj,0}^T + A_{bi,1} A_{bj,1}^T; the 4x4
     block product (X Y^T)_{ij} = row_i(X) . row_j(Y) as in listing 1 *)
  let block_product x y =
    Array.init 4 (fun i ->
        let s =
          Array.init 4 (fun j -> Dsl.v_dotp ctx (Dsl.row x i) (Dsl.row y j))
        in
        Dsl.merge ctx s.(0) s.(1) s.(2) s.(3))
  in
  let c_rows =
    Array.init 2 (fun bi ->
        Array.init 2 (fun bj ->
            let p0 = block_product blocks.(bi).(0) blocks.(bj).(0) in
            let p1 = block_product blocks.(bi).(1) blocks.(bj).(1) in
            Array.init 4 (fun i ->
                let r = Dsl.v_add ctx p0.(i) p1.(i) in
                Dsl.mark_output ctx r;
                r)))
  in
  (* flatten to [band].[column-block] of 4 rows each *)
  let flat =
    Array.init 4 (fun k ->
        let bi = k / 2 and bj = k mod 2 in
        c_rows.(bi).(bj))
  in
  { bctx = ctx; c_rows = flat }

let blocked8_reference ~seed =
  let a8 = input8 ~seed in
  Array.init 8 (fun i ->
      Array.init 8 (fun j ->
          let acc = ref 0. in
          for k = 0 to 7 do
            acc := !acc +. (a8.(i).(k) *. a8.(j).(k))
          done;
          Eit.Cplx.of_float !acc))

let blocked8_rows b =
  Array.init 8 (fun i ->
      let bi = i / 4 in
      Array.init 8 (fun j ->
          let bj = j / 4 in
          let rows = b.c_rows.((2 * bi) + bj) in
          (Dsl.vector_value rows.(i mod 4)).(j mod 4)))
