open Eit_dsl
open Eit

type t = { ctx : Dsl.ctx; output : Dsl.vector; taps : int }

(* Deterministic inputs shared by the DSL build and the reference. *)
let stream seed =
  let state = ref ((seed * 69069) land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int ((!state mod 1000) - 500) /. 250.

let inputs ~taps ~seed =
  let next = stream seed in
  let blocks =
    Array.init taps (fun _ -> Array.init Value.vlen (fun _ -> Cplx.of_float (next ())))
  in
  let coefs = Array.init taps (fun _ -> Cplx.of_float (next ())) in
  (blocks, coefs)

let build ?(taps = 8) ?(seed = 1) () =
  if taps < 1 then invalid_arg "Fir.build: taps must be positive";
  let ctx = Dsl.create () in
  let blocks, coefs = inputs ~taps ~seed in
  let terms =
    List.init taps (fun t ->
        let x =
          Dsl.vector_input ctx ~name:(Printf.sprintf "x-%d" t) blocks.(t)
        in
        let c = Dsl.scalar_input ctx ~name:(Printf.sprintf "c%d" t) coefs.(t) in
        Dsl.v_scale ctx x c)
  in
  (* balanced reduction tree *)
  let rec reduce = function
    | [] -> invalid_arg "Fir.build: empty"
    | [ x ] -> x
    | l ->
      let rec pair = function
        | a :: b :: rest -> Dsl.v_add ctx a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      reduce (pair l)
  in
  let output = reduce terms in
  Dsl.mark_output ctx output;
  { ctx; output; taps }

let graph t = Dsl.graph t.ctx

let reference ~taps ~seed =
  let blocks, coefs = inputs ~taps ~seed in
  let acc = Array.make Value.vlen Cplx.zero in
  Array.iteri
    (fun t block ->
      Array.iteri (fun i x -> acc.(i) <- Cplx.mac acc.(i) x coefs.(t)) block)
    blocks;
  acc
