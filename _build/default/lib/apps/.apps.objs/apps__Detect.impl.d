lib/apps/detect.ml: Array Cplx Dsl Eit Eit_dsl Option Printf Qrd Reference Value
