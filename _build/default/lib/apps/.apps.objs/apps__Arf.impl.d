lib/apps/arf.ml: Array Dsl Eit_dsl List Printf
