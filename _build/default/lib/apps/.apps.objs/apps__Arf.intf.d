lib/apps/arf.mli: Dsl Eit_dsl Ir
