lib/apps/fir.mli: Dsl Eit Eit_dsl Ir
