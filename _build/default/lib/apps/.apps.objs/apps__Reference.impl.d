lib/apps/reference.ml: Array Cplx Eit Float Printf Value
