lib/apps/reference.mli: Cplx Eit
