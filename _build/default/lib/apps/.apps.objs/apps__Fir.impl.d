lib/apps/fir.ml: Array Cplx Dsl Eit Eit_dsl List Printf Value
