lib/apps/corr.mli: Dsl Eit_dsl Ir
