lib/apps/matmul.ml: Array Dsl Eit Eit_dsl List Printf
