lib/apps/matmul.mli: Dsl Eit Eit_dsl Ir
