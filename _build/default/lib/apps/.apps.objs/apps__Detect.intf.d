lib/apps/detect.mli: Dsl Eit Eit_dsl Ir
