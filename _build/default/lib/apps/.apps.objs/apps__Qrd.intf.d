lib/apps/qrd.mli: Dsl Eit Eit_dsl Ir
