lib/apps/qrd.ml: Array Cplx Dsl Eit Eit_dsl Fun List Value
