open Eit_dsl
open Eit

type t = { ctx : Dsl.ctx; ranked : Dsl.vector list }

let stream seed =
  let state = ref ((seed * 22695477) land 0x3FFFFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int ((!state mod 1000) - 500) /. 500.

let build ?(hypotheses = 8) ?(seed = 1) () =
  if hypotheses <= 0 || hypotheses mod Value.vlen <> 0 then
    invalid_arg "Corr.build: hypotheses must be a positive multiple of 4";
  let ctx = Dsl.create () in
  let next = stream seed in
  let fresh_vec name =
    Dsl.vector_input ctx ~name
      (Array.init Value.vlen (fun _ -> Cplx.make (next ()) (next ())))
  in
  let rx = fresh_vec "rx" in
  let scores =
    List.init hypotheses (fun k ->
        let h = fresh_vec (Printf.sprintf "h%d" k) in
        (* conj(rx) enters the dot product as operand 0: fusible *)
        let c = Dsl.v_conj ctx rx in
        Dsl.v_dotp ctx c h)
  in
  let rec group4 = function
    | a :: b :: c :: d :: rest -> [ a; b; c; d ] :: group4 rest
    | [] -> []
    | _ -> assert false
  in
  let ranked =
    List.map
      (fun quad ->
        match quad with
        | [ a; b; c; d ] ->
          let v = Dsl.merge ctx a b c d in
          let sorted = Dsl.v_sort ctx v in
          Dsl.mark_output ctx sorted;
          sorted
        | _ -> assert false)
      (group4 scores)
  in
  { ctx; ranked }

let graph t = Dsl.graph t.ctx
