(** QRD — Modified Gram-Schmidt based MMSE QR decomposition of a 4x4
    MIMO channel matrix (paper §4.1; algorithm after Luethi et al. 2007
    and Zhang 2014).

    MMSE formulation: the channel matrix [H] (4x4) is extended with a
    regularization block [sigma * I] to the 8x4 matrix
    [H_ext = [H; sigma I]], whose thin QR factorization
    [H_ext = Q R] yields the MMSE pre-processing operators.  Each 8-row
    column is held as two 4-vectors (a top and a bottom part), so every
    column operation costs two vector operations plus a scalar
    combination — exactly the structure the EIT vector core is built
    for.

    Per MGS step [k]:
    + column norm: two [v_squsum] + one [s_add];
    + [r_kk = sqrt(.)], [1/r_kk] on the accelerator;
    + column normalization: two [v_scale];
    + for each remaining column [j]: projections [r_kj] via two
      [v_dotH] + [s_add], then column update via two [v_naxpy].

    The four rows of [R] are assembled with [merge] nodes. *)

open Eit_dsl

type t = {
  ctx : Dsl.ctx;
  h_top : Dsl.matrix;        (** H, stored column-major: vector j is
                                 column j (the memory reads columns
                                 directly) *)
  h_bot : Dsl.matrix;        (** sigma I (bottom block, column-major) *)
  q_top : Dsl.vector array;  (** Q columns, top half *)
  q_bot : Dsl.vector array;  (** Q columns, bottom half *)
  r_rows : Dsl.vector array; (** rows of R *)
  perm : int array;          (** processing order: position p handles
                                 original column [perm.(p)] (identity
                                 unless [sorted]) *)
}

val build : ?h:Eit.Cplx.t array array -> ?sigma:float -> ?sorted:bool -> unit -> t
(** Defaults: a fixed well-conditioned complex test channel,
    [sigma = 0.5], unsorted.  [sorted] enables the sorted MMSE-QRD of
    Luethi et al.: column energies are computed on the hardware
    (m_squsum / v_add / sort) and the MGS loop processes columns in
    decreasing energy order — the decomposition then satisfies
    [Q R = [H; sigma I] P] for the column permutation [P] recorded in
    [perm]. *)

val graph : t -> Ir.t
val default_h : Eit.Cplx.t array array
