lib/core/vecsched.mli: Eit Eit_dsl Sched
