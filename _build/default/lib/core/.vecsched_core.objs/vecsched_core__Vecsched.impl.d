lib/core/vecsched.ml: Eit Eit_dsl Fd Sched
