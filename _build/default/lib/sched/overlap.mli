(** Overlapped execution — the architects' ad-hoc two-phase technique
    (paper §4.3, Table 2).

    Phase 1 orders the instructions (issue bundles) of a single
    iteration; phase 2 issues the k-th instruction of all M iterations
    in consecutive cycles before advancing to instruction k+1.  With M
    at least the pipeline depth, every data dependency's latency is
    masked: dependent instructions of one iteration are at least M
    cycles apart.

    Reconfigurations collapse to (almost) one per instruction: within a
    group of M copies the configuration never changes; it can only
    change between the last copy of instruction k and the first copy of
    instruction k+1. *)

type t = {
  bundles : (int * int list) list;
      (** ordered instruction bundles: (original cycle, op node ids) *)
  m : int;                 (** iterations overlapped *)
  n_instructions : int;    (** effective (non-nop) instructions N *)
  length : int;            (** total schedule length: N*M + drain *)
  drain : int;             (** pipeline drain after the last issue *)
  reconfigurations : int;  (** vector-core reconfigurations, whole run *)
  throughput : float;      (** iterations per clock cycle: M / length *)
}

val min_overlap : Schedule.t -> int
(** Smallest M that masks all latencies (the longest producer-consumer
    latency in the schedule). *)

val run : Schedule.t -> m:int -> t
(** @raise Invalid_argument if [m < min_overlap] (dependencies would be
    violated). *)

val of_bundles :
  Eit_dsl.Ir.t -> Eit.Arch.t -> int list list -> m:int -> t
(** Overlap an explicit ordered bundle sequence (used by the manual
    baseline, which has no latency-placed schedule).  Bundle order must
    respect dependencies; [m] must be at least the largest masked
    latency. *)

val issue_cycle : t -> instr:int -> iter:int -> int
(** Cycle at which iteration [iter]'s copy of instruction [instr]
    issues: [instr * m + iter]. *)

val pp : Format.formatter -> t -> unit
