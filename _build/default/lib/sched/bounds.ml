open Eit_dsl

type t = {
  critical_path : int;
  vector_load : int;
  scalar_load : int;
  im_load : int;
  makespan : int;
}

let load_bound g arch rc =
  let ops =
    List.filter
      (fun i -> Eit.Opcode.resource (Ir.opcode g i) = rc)
      (Ir.op_nodes g)
  in
  if ops = [] then 0
  else begin
    let issue_cycles =
      match rc with
      | Eit.Opcode.Vector_core ->
        (* per configuration class: classes cannot share cycles (eq. 3) *)
        let classes = ref [] in
        List.iter
          (fun i ->
            let op = Ir.opcode g i in
            match
              List.find_opt
                (fun (rep, _, _) -> Eit.Opcode.config_equal rep op)
                !classes
            with
            | Some (rep, cnt, lanes) ->
              classes :=
                (rep, cnt + 1, lanes)
                :: List.filter
                     (fun (r, _, _) -> not (Eit.Opcode.config_equal r rep))
                     !classes
            | None -> classes := (op, 1, Eit.Opcode.lanes op) :: !classes)
          ops;
        List.fold_left
          (fun acc (_, cnt, lanes) ->
            acc + (((cnt * lanes) + arch.Eit.Arch.n_lanes - 1) / arch.Eit.Arch.n_lanes))
          0 !classes
      | Eit.Opcode.Scalar_accel | Eit.Opcode.Index_merge -> List.length ops
    in
    let min_latency =
      List.fold_left
        (fun acc i -> min acc (Eit.Arch.latency arch (Ir.opcode g i)))
        max_int ops
    in
    issue_cycles - 1 + min_latency
  end

let compute g arch =
  let critical_path = Ir.critical_path g arch in
  let vector_load = load_bound g arch Eit.Opcode.Vector_core in
  let scalar_load = load_bound g arch Eit.Opcode.Scalar_accel in
  let im_load = load_bound g arch Eit.Opcode.Index_merge in
  {
    critical_path;
    vector_load;
    scalar_load;
    im_load;
    makespan = max critical_path (max vector_load (max scalar_load im_load));
  }

let gap t sched = sched.Schedule.makespan - t.makespan

let pp ppf t =
  Format.fprintf ppf
    "LB: makespan >= %d (critical path %d, vector load %d, scalar load %d, \
     idx/merge load %d)"
    t.makespan t.critical_path t.vector_load t.scalar_load t.im_load
