open Eit_dsl

type t = {
  ir : Ir.t;
  arch : Eit.Arch.t;
  start : int array;
  slot : (int * int) list;
  makespan : int;
}

let start_of t i = t.start.(i)
let slot_of t i = List.assoc i t.slot

let latency_of t i =
  match (Ir.node t.ir i).Ir.op with
  | Some op -> Eit.Arch.latency t.arch op
  | None -> 0

(* Paper eq. 10 extended by one cycle: the slot stays occupied through
   the cycle of the last read, so a successor write can never race it. *)
let lifetime t i =
  let s = t.start.(i) in
  let last_use =
    List.fold_left (fun acc c -> max acc t.start.(c)) s (Ir.succs t.ir i)
  in
  last_use + 1 - s

let ops_at t cycle =
  List.filter (fun i -> t.start.(i) = cycle) (Ir.op_nodes t.ir)

let slots_used t =
  List.sort_uniq compare (List.map snd t.slot) |> List.length

type violation = { where : string; msg : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.where v.msg

let validate t =
  let violations = ref [] in
  let add where fmt =
    Format.kasprintf (fun msg -> violations := { where; msg } :: !violations) fmt
  in
  let g = t.ir and arch = t.arch in
  let n = Ir.size g in
  if Array.length t.start <> n then
    add "structure" "start array length %d <> node count %d" (Array.length t.start) n;
  (* eq. 1: precedence with latency *)
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if t.start.(i) + latency_of t i > t.start.(j) then
            add "precedence" "edge %d->%d: %d + %d > %d" i j t.start.(i)
              (latency_of t i) t.start.(j))
        (Ir.succs g i))
    (List.init n Fun.id);
  (* eq. 4: data nodes start exactly when produced; inputs at 0 *)
  List.iter
    (fun d ->
      match Ir.producer g d with
      | Some p ->
        if t.start.(d) <> t.start.(p) + latency_of t p then
          add "data-start" "data %d starts at %d, producer %d completes at %d" d
            t.start.(d) p (t.start.(p) + latency_of t p)
      | None ->
        if t.start.(d) <> 0 then add "data-start" "input %d starts at %d" d t.start.(d))
    (Ir.data_nodes g);
  (* eq. 2 + scalar/IM resources: ground cumulative *)
  let check_resource rc limit =
    let ops =
      List.filter (fun i -> Eit.Opcode.resource (Ir.opcode g i) = rc) (Ir.op_nodes g)
    in
    if ops <> [] then begin
      let starts = Array.of_list (List.map (fun i -> t.start.(i)) ops) in
      let durations =
        Array.of_list (List.map (fun i -> Eit.Arch.duration arch (Ir.opcode g i)) ops)
      in
      let resources =
        Array.of_list
          (List.map
             (fun i ->
               match rc with
               | Eit.Opcode.Vector_core -> Eit.Opcode.lanes (Ir.opcode g i)
               | _ -> 1)
             ops)
      in
      if not (Fd.Cumulative.check ~starts ~durations ~resources ~limit) then
        add "resource"
          "%s capacity %d exceeded"
          (match rc with
          | Eit.Opcode.Vector_core -> "vector core"
          | Eit.Opcode.Scalar_accel -> "scalar accelerator"
          | Eit.Opcode.Index_merge -> "index/merge unit")
          limit
    end
  in
  check_resource Eit.Opcode.Vector_core arch.Eit.Arch.n_lanes;
  check_resource Eit.Opcode.Scalar_accel 1;
  check_resource Eit.Opcode.Index_merge 1;
  (* eq. 3: co-scheduled vector-core ops share one configuration *)
  let vops =
    List.filter
      (fun i -> Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core)
      (Ir.op_nodes g)
  in
  let rec config_pairs = function
    | [] -> ()
    | i :: rest ->
      List.iter
        (fun j ->
          if
            t.start.(i) = t.start.(j)
            && not (Eit.Opcode.config_equal (Ir.opcode g i) (Ir.opcode g j))
          then
            add "configuration" "ops %d (%s) and %d (%s) co-scheduled at %d" i
              (Eit.Opcode.name (Ir.opcode g i))
              j
              (Eit.Opcode.name (Ir.opcode g j))
              t.start.(i))
        rest;
      config_pairs rest
  in
  config_pairs vops;
  (* memory: every vector datum has a slot in range *)
  let vdata = List.filter (fun d -> Ir.category g d = Ir.Vector_data) (Ir.data_nodes g) in
  List.iter
    (fun d ->
      match List.assoc_opt d t.slot with
      | None -> add "memory" "vector data %d has no slot" d
      | Some k ->
        if k < 0 || k >= Eit.Arch.slots arch then
          add "memory" "vector data %d allocated out-of-range slot %d" d k)
    vdata;
  let slot_ok d = List.mem_assoc d t.slot in
  (* eqs. 10-11: lifetimes of data sharing a slot must not overlap *)
  let rects =
    List.filter_map
      (fun d ->
        if slot_ok d then Some (t.start.(d), List.assoc d t.slot, lifetime t d, 1)
        else None)
      vdata
  in
  if not (Fd.Diff2.check rects) then
    add "slot-reuse" "overlapping lifetimes share a slot";
  (* eqs. 7-9 + port limits, checked operationally: per cycle, gather the
     slots read (inputs of ops issued) and written (data nodes starting),
     and run the architecture's access checker *)
  let horizon = Array.fold_left max 0 t.start + 1 in
  for cycle = 0 to horizon - 1 do
    let reads =
      List.concat_map
        (fun i ->
          if t.start.(i) = cycle then
            List.filter_map
              (fun p ->
                if Ir.category g p = Ir.Vector_data && slot_ok p then
                  Some (List.assoc p t.slot)
                else None)
              (Ir.preds g i)
          else [])
        (Ir.op_nodes g)
    in
    let writes =
      List.filter_map
        (fun d ->
          if t.start.(d) = cycle && Ir.producer g d <> None && slot_ok d then
            Some (List.assoc d t.slot)
          else None)
        vdata
    in
    List.iter
      (fun v -> add "memory-access" "cycle %d: %a" cycle Eit.Mem.pp_violation v)
      (Eit.Mem.check_access arch ~reads ~writes)
  done;
  (* makespan consistency *)
  let real =
    List.fold_left
      (fun acc i -> max acc (t.start.(i) + latency_of t i))
      0 (List.init n Fun.id)
  in
  if real <> t.makespan then
    add "makespan" "recorded %d, actual %d" t.makespan real;
  List.rev !violations

let is_valid t = validate t = []

let pp_gantt ppf t =
  let span = t.makespan + 1 in
  let rows =
    [ ("vector", Eit.Opcode.Vector_core); ("scalar", Eit.Opcode.Scalar_accel);
      ("idx/mg", Eit.Opcode.Index_merge) ]
  in
  let cells =
    List.map
      (fun (label, rc) ->
        let line = Bytes.make span '.' in
        List.iter
          (fun i ->
            let op = Ir.opcode t.ir i in
            if Eit.Opcode.resource op = rc then begin
              let s = t.start.(i) in
              let l = Eit.Arch.latency t.arch op in
              for c = s + 1 to min (s + l - 1) (span - 1) do
                if Bytes.get line c = '.' then Bytes.set line c '='
              done;
              Bytes.set line s '#'
            end)
          (Ir.op_nodes t.ir);
        (label, Bytes.to_string line))
      rows
  in
  let band = 72 in
  let rec emit offset =
    if offset < span then begin
      Format.fprintf ppf "cycles %d..%d@." offset (min (offset + band - 1) (span - 1));
      List.iter
        (fun (label, line) ->
          let len = min band (span - offset) in
          Format.fprintf ppf "  %-7s %s@." label (String.sub line offset len))
        cells;
      emit (offset + band)
    end
  in
  emit 0

let pp_memory_map ppf t =
  let span = t.makespan + 2 in
  let slots = List.sort_uniq compare (List.map snd t.slot) in
  let lines =
    List.map
      (fun slot ->
        let line = Bytes.make span '.' in
        List.iter
          (fun (d, s') ->
            if s' = slot then begin
              let birth = t.start.(d) in
              let death = birth + lifetime t d in
              for c = birth + 1 to min (death - 1) (span - 1) do
                Bytes.set line c '='
              done;
              Bytes.set line birth '#'
            end)
          t.slot;
        (slot, Bytes.to_string line))
      slots
  in
  let band = 72 in
  let rec emit offset =
    if offset < span then begin
      Format.fprintf ppf "cycles %d..%d@." offset (min (offset + band - 1) (span - 1));
      List.iter
        (fun (slot, line) ->
          let len = min band (span - offset) in
          Format.fprintf ppf "  slot %-3d %s@." slot (String.sub line offset len))
        lines;
      emit (offset + band)
    end
  in
  emit 0

let pp ppf t =
  Format.fprintf ppf "schedule: makespan=%d, %d slots used@." t.makespan
    (slots_used t);
  let by_cycle = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let c = t.start.(i) in
      Hashtbl.replace by_cycle c (i :: Option.value ~default:[] (Hashtbl.find_opt by_cycle c)))
    (Ir.op_nodes t.ir);
  let cycles = List.sort_uniq compare (Hashtbl.fold (fun c _ acc -> c :: acc) by_cycle []) in
  List.iter
    (fun c ->
      let ops = List.rev (Hashtbl.find by_cycle c) in
      Format.fprintf ppf "%4d: %s@." c
        (String.concat "  "
           (List.map (fun i -> Printf.sprintf "%d:%s" i (Eit.Opcode.name (Ir.opcode t.ir i))) ops)))
    cycles
