open Eit_dsl

type t = {
  bundles : int list list;
  n_instructions : int;
  reconfigurations : int;
}

type bundle = {
  mutable config : Eit.Opcode.t option;  (* vector-core configuration *)
  mutable lanes : int;
  mutable scalar : bool;
  mutable im : bool;
  mutable ops : int list;  (* reversed *)
}

let fresh_bundle () =
  { config = None; lanes = 0; scalar = false; im = false; ops = [] }

let accepts arch b op =
  match Eit.Opcode.resource op with
  | Eit.Opcode.Vector_core ->
    let l = Eit.Opcode.lanes op in
    b.lanes + l <= arch.Eit.Arch.n_lanes
    && (match b.config with
       | None -> true
       | Some c -> Eit.Opcode.config_equal c op)
  | Eit.Opcode.Scalar_accel -> not b.scalar
  | Eit.Opcode.Index_merge -> not b.im

let insert b i op =
  (match Eit.Opcode.resource op with
  | Eit.Opcode.Vector_core ->
    b.config <- Some op;
    b.lanes <- b.lanes + Eit.Opcode.lanes op
  | Eit.Opcode.Scalar_accel -> b.scalar <- true
  | Eit.Opcode.Index_merge -> b.im <- true);
  b.ops <- i :: b.ops

let run g arch =
  (* Op-level dependency: producer of any operand datum. *)
  let producer_ops i =
    List.filter_map (fun d -> Ir.producer g d) (Ir.preds g i)
  in
  let bundle_of = Hashtbl.create 64 in
  let bundles = ref [||] in
  let ensure k =
    while Array.length !bundles <= k do
      bundles := Array.append !bundles [| fresh_bundle () |]
    done
  in
  (* Topological order over ops: IR topo order restricted to op nodes. *)
  let order = List.filter (fun i -> Ir.is_op (Ir.category g i)) (Ir.topo_order g) in
  List.iter
    (fun i ->
      let op = Ir.opcode g i in
      let earliest =
        List.fold_left
          (fun acc p -> max acc (Hashtbl.find bundle_of p + 1))
          0 (producer_ops i)
      in
      ensure earliest;
      let rec place k =
        ensure k;
        if accepts arch !bundles.(k) op then begin
          insert !bundles.(k) i op;
          Hashtbl.replace bundle_of i k
        end
        else place (k + 1)
      in
      place earliest)
    order;
  let bundle_list =
    Array.to_list !bundles
    |> List.filter_map (fun b -> match b.ops with [] -> None | ops -> Some (List.rev ops))
  in
  let configs =
    List.map
      (fun ops ->
        List.find_map
          (fun i ->
            let op = Ir.opcode g i in
            if Eit.Opcode.resource op = Eit.Opcode.Vector_core then Some op else None)
          ops)
      bundle_list
  in
  {
    bundles = bundle_list;
    n_instructions = List.length bundle_list;
    reconfigurations = Eit.Config.count_reconfigs configs;
  }

let overlapped g arch ~m =
  let manual = run g arch in
  Overlap.of_bundles g arch manual.bundles ~m
