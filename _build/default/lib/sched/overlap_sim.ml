open Eit_dsl
open Eit

type report = {
  program : Instr.program;
  iterations : int;
  checked_values : int;
  access_clean : bool;
}

let used_slots sched = List.sort_uniq compare (List.map snd sched.Schedule.slot)

let lines_needed sched =
  let banks = sched.Schedule.arch.Arch.banks in
  match used_slots sched with
  | [] -> 0
  | slots -> (List.fold_left (fun acc k -> max acc (k / banks)) 0 slots) + 1

(* The one-shot allocation's slot reuse is computed against one-shot
   lifetimes; overlapping rewrites all issue times (instruction [k] of
   iteration [r] issues at [k*m + r]), so the reuse pattern must be
   recomputed against the overlapped lifetimes.  Iterations are
   structurally identical modulo the [+r] shift, so one interval-graph
   coloring (greedy first-fit over birth-ordered lifetimes) serves every
   iteration; iterations are then separated by a whole-line offset. *)
let overlap_allocation g arch (ov : Overlap.t) =
  let m = ov.Overlap.m in
  let bundle_of = Hashtbl.create 64 in
  List.iteri
    (fun k (_, ops) -> List.iter (fun i -> Hashtbl.replace bundle_of i k) ops)
    ov.Overlap.bundles;
  let node_latency i =
    match (Ir.node g i).Ir.op with
    | Some op -> Arch.latency arch op
    | None -> 0
  in
  let interval d =
    let birth =
      match Ir.producer g d with
      | Some p -> (Hashtbl.find bundle_of p * m) + node_latency p
      | None -> 0
    in
    let death =
      List.fold_left
        (fun acc c -> max acc (Hashtbl.find bundle_of c * m))
        birth (Ir.succs g d)
    in
    (d, birth, death + 1 (* hold through the last-read cycle *))
  in
  let vdata =
    List.filter (fun d -> Ir.category g d = Ir.Vector_data) (Ir.data_nodes g)
  in
  Interval_alloc.color (List.map interval vdata)

let to_program ~arch sched ~m =
  let g = sched.Schedule.ir in
  let ov = Overlap.run sched ~m in
  let banks = arch.Arch.banks in
  let assignment, slots_per_iter = overlap_allocation g arch ov in
  (* whole-line iteration stride preserves bank/page coordinates *)
  let stride = (slots_per_iter + banks - 1) / banks * banks in
  if stride * m > Arch.slots arch then
    invalid_arg
      (Printf.sprintf
         "Overlap_sim.to_program: %d iterations x %d-slot stride exceed %d slots"
         m stride (Arch.slots arch));
  let nnodes = Ir.size g in
  let slot_of iter d = Hashtbl.find assignment d + (iter * stride) in
  let reg_of iter d = (iter * nnodes) + d in
  let operand iter d =
    match Ir.category g d with
    | Ir.Vector_data -> Instr.Slot (slot_of iter d)
    | Ir.Scalar_data -> Instr.Reg (reg_of iter d)
    | _ -> invalid_arg "Overlap_sim: operand is not a datum"
  in
  let dest iter d =
    match operand iter d with
    | Instr.Slot k -> Instr.Dslot k
    | Instr.Reg r -> Instr.Dreg r
    | Instr.Imm _ -> assert false
  in
  let inputs =
    List.concat_map
      (fun d ->
        let v =
          match (Ir.node g d).Ir.value with
          | Some v -> v
          | None -> invalid_arg "Overlap_sim: input without trace value"
        in
        List.init m (fun iter ->
            match (v, operand iter d) with
            | Value.Vector a, Instr.Slot k -> Instr.In_slot (k, a)
            | Value.Scalar c, Instr.Reg r -> Instr.In_reg (r, c)
            | _ -> invalid_arg "Overlap_sim: input kind mismatch"))
      (Ir.inputs g)
  in
  let instrs =
    List.concat
      (List.mapi
         (fun bundle_idx (_, ops) ->
           List.init m (fun iter ->
               let cycle = (bundle_idx * m) + iter in
               let issues =
                 List.map
                   (fun i ->
                     let out =
                       match Ir.succs g i with [ d ] -> d | _ -> assert false
                     in
                     {
                       Instr.op = Ir.opcode g i;
                       args = List.map (operand iter) (Ir.preds g i);
                       dest = dest iter out;
                       node = (iter * nnodes) + i;
                     })
                   ops
               in
               let vector, rest =
                 List.partition
                   (fun i -> Opcode.resource i.Instr.op = Opcode.Vector_core)
                   issues
               in
               let scalar, im =
                 List.partition
                   (fun i -> Opcode.resource i.Instr.op = Opcode.Scalar_accel)
                   rest
               in
               let one = function
                 | [] -> None
                 | [ x ] -> Some x
                 | _ -> invalid_arg "Overlap_sim: oversubscribed unit"
               in
               { Instr.cycle; vector; scalar = one scalar; im = one im }))
         ov.Overlap.bundles)
  in
  {
    Instr.arch;
    inputs;
    instrs;
    outputs =
      List.concat_map
        (fun d -> List.init m (fun iter -> ((iter * nnodes) + d, dest iter d)))
        (Ir.outputs g);
  }

let check_values g ~m result =
  let nnodes = Ir.size g in
  let reference = Ir.eval g in
  let checked = ref 0 in
  let rec go_ops iter = function
    | [] -> Ok ()
    | i :: rest -> (
      let d = match Ir.succs g i with [ d ] -> d | _ -> assert false in
      let expect = List.assoc d reference in
      match List.assoc_opt ((iter * nnodes) + i) result.Machine.node_values with
      | None -> Error (Printf.sprintf "iteration %d node %d: no value" iter i)
      | Some got ->
        if Value.equal ~eps:1e-6 expect got then begin
          incr checked;
          go_ops iter rest
        end
        else
          Error
            (Printf.sprintf "iteration %d node %d: expected %s, got %s" iter i
               (Value.to_string expect) (Value.to_string got)))
  in
  let rec go_iters iter =
    if iter >= m then Ok !checked
    else
      match go_ops iter (Ir.op_nodes g) with
      | Ok () -> go_iters (iter + 1)
      | Error e -> Error e
  in
  go_iters 0

let run_and_check ~arch sched ~m =
  match to_program ~arch sched ~m with
  | exception Invalid_argument msg -> Error msg
  | program -> (
    let simulate check_access =
      match Machine.run ~check_access program with
      | result -> (
        match check_values sched.Schedule.ir ~m result with
        | Ok checked ->
          Ok
            {
              program;
              iterations = m;
              checked_values = checked;
              access_clean = check_access;
            }
        | Error e -> Error e)
      | exception Machine.Sim_error e ->
        Error (Format.asprintf "%a" Machine.pp_error e)
    in
    match simulate true with
    | Ok r -> Ok r
    | Error _ -> simulate false)
