(** One-stop kernel report: everything the toolchain knows about a
    kernel, rendered as markdown-ish text — graph statistics, lower
    bounds, the schedule with its Gantt chart and memory map,
    utilization, code image size, and the §4.3 pipelining options.

    Used by `eitc report <kernel>` and handy as a regression artifact:
    the report is deterministic for a fixed kernel and budget. *)

open Eit_dsl

type t = {
  name : string;
  stats : Stats.t;
  bounds : Bounds.t;
  outcome : Solve.outcome;
  analysis : Analysis.t option;
  code_bytes : int option;
  overlap : Overlap.t option;        (** at m = 12 when feasible *)
  modulo : Modulo.result option;     (** excluding-reconfigurations *)
}

val build :
  ?budget_ms:float ->
  ?arch:Eit.Arch.t ->
  name:string ->
  Ir.t ->
  t
(** Schedules the (already merged) graph and gathers every artifact the
    budget allows; missing pieces (timeouts) are [None]. *)

val pp : Format.formatter -> t -> unit
