(** Executable overlapped schedules: materialize M lock-step iterations
    (paper §4.3) as a machine program and verify them on the simulator.

    Memory follows the paper's prescription: "memory allocation boils
    down to repeating the allocation of the original schedule for each
    iteration, with a certain offset".  The offset is a whole number of
    memory *lines*, so bank and page coordinates — and therefore the
    legality structure of each bundle's accesses — are preserved
    iteration to iteration.  The caller must supply an architecture with
    enough lines to hold all M copies ([lines_needed] helps).

    A finding this module surfaces (see EXPERIMENTS.md): the ad-hoc
    overlapped scheme can put write-backs of units with different
    latencies (vector pipeline vs. merge) from different iterations into
    the same cycle and bank, violating the one-write-per-bank rule that
    the CP model enforces within one iteration.  [run_and_check] reports
    this as [`Access_violation] when strict checking is on. *)

type report = {
  program : Eit.Instr.program;
  iterations : int;
  checked_values : int;      (** op results compared, across iterations *)
  access_clean : bool;       (** executed under strict port checking *)
}

val lines_needed : Schedule.t -> int
(** Memory lines the original allocation spans (offset unit). *)

val to_program :
  arch:Eit.Arch.t -> Schedule.t -> m:int -> Eit.Instr.program
(** @raise Invalid_argument if the memory cannot hold [m] copies or the
    overlap preconditions fail (see {!Overlap.run}). *)

val run_and_check :
  arch:Eit.Arch.t -> Schedule.t -> m:int -> (report, string) result
(** Execute all [m] iterations and compare every operation result of
    every iteration against the IR reference evaluation.  Tries strict
    access checking first and falls back to value-only checking
    ([access_clean = false]) when the ad-hoc scheme produces a port
    conflict. *)
