(** The architects' manual flow (paper §4.3, Table 2, "Manual").

    The paper describes the hand-coding practice precisely: select and
    order the instructions of a single iteration with the objective of
    minimizing the number of effective (non-nop) instructions — without
    memory allocation — and then overlap M iterations in lock-step.

    We reproduce that flow with a greedy list scheduler that packs
    operations into as few VLIW bundles as possible:
    - bundles are processed in dependency order (a consumer's bundle
      strictly follows all of its producers' bundles; the M-wide
      overlap masks the actual latencies);
    - a bundle holds up to four identically-configured vector ops (or
      one matrix op), one scalar-accelerator op and one index/merge op;
    - each op goes into the earliest compatible bundle, preferring
      bundles that already hold its configuration (keeping
      reconfigurations low), else a new bundle is opened.

    The result is converted into a {!Schedule.t} with one cycle per
    bundle (a compressed schedule that is only meaningful as input to
    {!Overlap.run}) — exactly how the architects' code behaves: it is
    not a latency-correct single-iteration schedule, it only becomes
    correct once overlapped. *)

type t = {
  bundles : int list list;   (** op node ids per instruction, in order *)
  n_instructions : int;
  reconfigurations : int;    (** over the linear instruction sequence *)
}

val run : Eit_dsl.Ir.t -> Eit.Arch.t -> t

val overlapped :
  Eit_dsl.Ir.t -> Eit.Arch.t -> m:int -> Overlap.t
(** The full manual flow: greedy instruction minimization followed by
    M-way lock-step overlap. *)
