(** Schedules with memory allocation: the output of the CP model
    (paper §3.3-3.4) and the input to code generation.

    A schedule assigns every IR node a start time and every vector data
    node a memory slot.  {!validate} re-checks all paper constraints
    from scratch, independently of the solver — precedences (eq. 1),
    lane capacity (eq. 2), configuration exclusivity (eq. 3), the data
    start rule (eq. 4), the page-line access rules (eqs. 7-9) and
    lifetime-disjoint slot reuse (eqs. 10-11). *)

open Eit_dsl

type t = {
  ir : Ir.t;
  arch : Eit.Arch.t;
  start : int array;            (** indexed by node id *)
  slot : (int * int) list;      (** vector-data node id -> slot *)
  makespan : int;               (** max over nodes of start + latency *)
}

val start_of : t -> int -> int
val slot_of : t -> int -> int
(** @raise Not_found for nodes without a slot. *)

val latency_of : t -> int -> int
(** 0 for data nodes, [Arch.latency] for ops. *)

val lifetime : t -> int -> int
(** Paper eq. 10 for a vector data node, extended by one cycle: the slot
    is held from the datum's start through the cycle of its last read
    (data without consumers live 1 cycle: written once, streamed out).
    The extension closes a write-after-read race the published formula
    permits; see DESIGN.md §5. *)

val ops_at : t -> int -> int list
(** Operation nodes starting at the given cycle. *)

val slots_used : t -> int
(** Number of distinct slots referenced. *)

type violation = { where : string; msg : string }

val validate : t -> violation list
(** Empty iff the schedule satisfies every constraint of the paper's
    model.  Each violation names the constraint group it breaks. *)

val is_valid : t -> bool

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
(** Cycle-by-cycle rendering. *)

val pp_gantt : Format.formatter -> t -> unit
(** ASCII Gantt chart: one row per execution resource, one column per
    cycle ([#] = issue, [=] = results still in flight, [.] = idle).
    Wide schedules are split into 80-column bands. *)

val pp_memory_map : Format.formatter -> t -> unit
(** ASCII slot-occupancy map: one row per used memory slot, one column
    per cycle ([#] = written, [=] = live, [.] = free) — the Fig. 7
    layout over time, showing the Diff2 reuse pattern. *)
