(** Makespan lower bounds, used to certify schedule quality without an
    exhaustive optimality proof.

    Two families:
    - the {e critical path} (latency-weighted longest path, the paper's
      |Cr.P|) — dominant for dependency-bound kernels like QRD/ARF;
    - {e resource load}: each execution resource needs a minimum number
      of issue cycles (for the vector core, per configuration class,
      since different configurations cannot share a cycle — eq. 3), and
      the last issue still needs its latency — dominant for
      contention-bound kernels like MATMUL. *)

open Eit_dsl

type t = {
  critical_path : int;
  vector_load : int;   (** load bound of the vector core, 0 if unused *)
  scalar_load : int;
  im_load : int;
  makespan : int;      (** the max of all bounds *)
}

val compute : Ir.t -> Eit.Arch.t -> t

val gap : t -> Schedule.t -> int
(** [makespan(schedule) - bound]; 0 certifies optimality even when the
    solver stopped at [Feasible]. *)

val pp : Format.formatter -> t -> unit
