(** A heuristic list scheduler with greedy memory allocation — the
    classic alternative to the paper's exact CP formulation (cf. the
    related-work contrast with resource-aware heuristic CGRA mapping
    [Dimitroulakos et al.]).

    Priority-based list scheduling: operations become ready when their
    operands' producers have completed; among ready operations the one
    with the longest remaining latency-weighted path (critical-path
    priority) issues first, bundling up to four identically-configured
    vector operations per cycle.  Slots are allocated greedily at write
    time with first-fit subject to the page/line access rules and
    released when the last reader has issued.

    Produces the same {!Schedule.t} as the CP solver, so the validator,
    code generator and simulator all apply — the bench compares quality
    (makespan, slots) and speed against the exact model. *)

open Eit_dsl

val run : ?arch:Eit.Arch.t -> Ir.t -> (Schedule.t, string) result
(** [Error] when the greedy allocator paints itself into a corner (no
    legal slot for a result) — the CP model's integrated allocation
    exists precisely because this can happen. *)
