open Eit_dsl

type t = {
  name : string;
  stats : Stats.t;
  bounds : Bounds.t;
  outcome : Solve.outcome;
  analysis : Analysis.t option;
  code_bytes : int option;
  overlap : Overlap.t option;
  modulo : Modulo.result option;
}

let build ?(budget_ms = 15_000.) ?(arch = Eit.Arch.default) ~name g =
  let stats = Stats.of_ir ~arch g in
  let bounds = Bounds.compute g arch in
  let outcome =
    Solve.run ~budget:(Fd.Search.time_budget budget_ms) ~arch g
  in
  let analysis = Option.map Analysis.of_schedule outcome.Solve.schedule in
  let code_bytes =
    Option.map
      (fun sch -> Eit.Encode.size_bytes (Eit.Encode.encode (Codegen.program sch)))
      outcome.Solve.schedule
  in
  let overlap =
    Option.bind outcome.Solve.schedule (fun sch ->
        match Overlap.run sch ~m:12 with
        | ov -> Some ov
        | exception Invalid_argument _ -> None)
  in
  let modulo = Modulo.solve_excluding ~budget_ms ~arch g in
  { name; stats; bounds; outcome; analysis; code_bytes; overlap; modulo }

let pp ppf r =
  Format.fprintf ppf "# %s@.@." r.name;
  Format.fprintf ppf "graph: %a@." Stats.pp r.stats;
  Format.fprintf ppf "%a@.@." Bounds.pp r.bounds;
  (match r.outcome.Solve.schedule with
  | Some sch ->
    Format.fprintf ppf "## schedule (%a)@.@." Solve.pp_status
      r.outcome.Solve.status;
    Format.fprintf ppf "makespan %d cc (gap to bound: %d), %d memory slots@."
      sch.Schedule.makespan
      (Bounds.gap r.bounds sch)
      (Schedule.slots_used sch);
    Option.iter
      (fun bytes -> Format.fprintf ppf "code image: %d bytes@." bytes)
      r.code_bytes;
    Format.fprintf ppf "@.%a@." Schedule.pp_gantt sch;
    Format.fprintf ppf "memory map:@.%a@." Schedule.pp_memory_map sch
  | None ->
    Format.fprintf ppf "## schedule: %a within budget@.@." Solve.pp_status
      r.outcome.Solve.status);
  Option.iter
    (fun a -> Format.fprintf ppf "## utilization@.@.%a@." Analysis.pp a)
    r.analysis;
  (match r.overlap with
  | Some ov -> Format.fprintf ppf "## overlapped execution@.@.%a@.@." Overlap.pp ov
  | None -> ());
  match r.modulo with
  | Some m -> Format.fprintf ppf "## modulo schedule@.@.%a@." Modulo.pp m
  | None -> ()
