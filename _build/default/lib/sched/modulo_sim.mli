(** Executable modulo schedules: materialize N iterations of a
    modulo-scheduled kernel (initiated every II cycles) as a machine
    program and verify them on the simulator.

    As in the paper (§4.3 closing remark), memory allocation repeats the
    per-iteration allocation at an offset; the per-iteration allocation
    is recomputed against the kernel's cycle-level lifetimes with
    {!Interval_alloc}, and iterations get disjoint whole-line regions
    (steady-state wrap-around reuse would need [ceil(span / II)] regions
    only, but disjoint regions keep the checker exact for finite N). *)

type report = {
  program : Eit.Instr.program;
  iterations : int;
  ii : int;
  checked_values : int;
  access_clean : bool;
  completion : int;    (** write-back cycle of the last result *)
}

val to_program :
  ?stream:(int -> (int * Eit.Value.t) list) ->
  arch:Eit.Arch.t ->
  Eit_dsl.Ir.t ->
  Modulo.result ->
  iterations:int ->
  Eit.Instr.program
(** [stream iter] supplies per-iteration input overrides (input node id
    -> value), so each initiation can process different data — the
    streaming regime the paper's kernels exist for.  Defaults to the
    trace inputs for every iteration.
    @raise Invalid_argument when the memory cannot hold the iterations
    or a cycle oversubscribes a serial unit (which would mean the
    kernel is invalid). *)

val run_and_check :
  ?stream:(int -> (int * Eit.Value.t) list) ->
  arch:Eit.Arch.t ->
  Eit_dsl.Ir.t ->
  Modulo.result ->
  iterations:int ->
  (report, string) result
(** Execute and compare every operation result of every iteration
    against that iteration's reference evaluation (honouring [stream]);
    strict access checking with a value-only fallback, as in
    {!Overlap_sim}. *)
