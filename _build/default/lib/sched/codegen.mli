(** Code generation: turn a schedule with memory allocation into an
    executable {!Eit.Instr.program}.

    Vector data live in the allocated memory slots; scalar data live in
    virtual accelerator registers named after their IR node (the paper
    assumes optimal scalar allocation).  Input data nodes become preload
    bindings; declared outputs (or all sink data nodes) become the
    program's outputs. *)


val program : ?outputs:int list -> Schedule.t -> Eit.Instr.program
(** @raise Invalid_argument if the schedule lacks a slot for some vector
    datum or an input lacks a trace value. *)

val run_and_check :
  ?outputs:int list -> Schedule.t -> (unit, string) result
(** Generate, simulate ({!Eit.Machine.run} with access checking), and
    compare every produced node value against the IR reference
    evaluation.  The full verification loop the paper leaves to the
    (unpublished) downstream toolchain. *)
