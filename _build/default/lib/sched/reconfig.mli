(** Reconfiguration analysis of schedules (paper §4.3).

    A reconfiguration happens when the vector core's configuration in
    one effective cycle differs from the previous one; idle cycles hold
    the last configuration, and only the vector core counts (MATMUL's
    merges cause none). *)

val configs : Schedule.t -> Eit.Config.t list
(** Per-cycle vector-core configuration over the schedule's span. *)

val count : Schedule.t -> int
(** Linear reconfiguration count of a single-iteration schedule. *)

val count_cyclic : Schedule.t -> ii:int -> int
(** Reconfigurations of a modulo-schedule kernel: configurations are
    folded onto the [ii] residue cycles (by start time mod [ii]) and
    counted cyclically, including the wrap-around transition. *)

val lower_bound : Eit_dsl.Ir.t -> int
(** Minimum reconfigurations any cyclic schedule of this graph needs:
    the number of distinct vector-core configurations (0 when there are
    fewer than two). *)
