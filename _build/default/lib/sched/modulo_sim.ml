open Eit_dsl
open Eit

type report = {
  program : Instr.program;
  iterations : int;
  ii : int;
  checked_values : int;
  access_clean : bool;
  completion : int;
}

let no_stream (_ : int) : (int * Value.t) list = []

let to_program ?(stream = no_stream) ~arch g (r : Modulo.result) ~iterations =
  let banks = arch.Arch.banks in
  (* per-iteration allocation from the kernel's cycle-level lifetimes *)
  let vdata =
    List.filter (fun d -> Ir.category g d = Ir.Vector_data) (Ir.data_nodes g)
  in
  let interval d =
    let birth = r.Modulo.start.(d) in
    let death =
      List.fold_left
        (fun acc c -> max acc r.Modulo.start.(c))
        birth (Ir.succs g d)
    in
    (d, birth, death + 1)
  in
  let assignment, slots_per_iter = Interval_alloc.color (List.map interval vdata) in
  let stride = (slots_per_iter + banks - 1) / banks * banks in
  if stride * iterations > Arch.slots arch then
    invalid_arg
      (Printf.sprintf
         "Modulo_sim.to_program: %d iterations x %d-slot stride exceed %d slots"
         iterations stride (Arch.slots arch));
  let nnodes = Ir.size g in
  let slot_of iter d = Hashtbl.find assignment d + (iter * stride) in
  let reg_of iter d = (iter * nnodes) + d in
  let operand iter d =
    match Ir.category g d with
    | Ir.Vector_data -> Instr.Slot (slot_of iter d)
    | Ir.Scalar_data -> Instr.Reg (reg_of iter d)
    | _ -> invalid_arg "Modulo_sim: operand is not a datum"
  in
  let dest iter d =
    match operand iter d with
    | Instr.Slot k -> Instr.Dslot k
    | Instr.Reg rg -> Instr.Dreg rg
    | Instr.Imm _ -> assert false
  in
  let inputs =
    List.concat_map
      (fun d ->
        List.init iterations (fun iter ->
            let v =
              match List.assoc_opt d (stream iter) with
              | Some v -> v
              | None -> (
                match (Ir.node g d).Ir.value with
                | Some v -> v
                | None -> invalid_arg "Modulo_sim: input without trace value")
            in
            match (v, operand iter d) with
            | Value.Vector a, Instr.Slot k -> Instr.In_slot (k, a)
            | Value.Scalar c, Instr.Reg rg -> Instr.In_reg (rg, c)
            | _ -> invalid_arg "Modulo_sim: input kind mismatch"))
      (Ir.inputs g)
  in
  (* group all issues by absolute cycle *)
  let by_cycle : (int, Instr.issue list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let out = match Ir.succs g i with [ d ] -> d | _ -> assert false in
      for iter = 0 to iterations - 1 do
        let cycle = r.Modulo.start.(i) + (iter * r.Modulo.ii) in
        let issue =
          {
            Instr.op = Ir.opcode g i;
            args = List.map (operand iter) (Ir.preds g i);
            dest = dest iter out;
            node = (iter * nnodes) + i;
          }
        in
        Hashtbl.replace by_cycle cycle
          (issue :: Option.value ~default:[] (Hashtbl.find_opt by_cycle cycle))
      done)
    (Ir.op_nodes g);
  let cycles =
    List.sort compare (Hashtbl.fold (fun c _ acc -> c :: acc) by_cycle [])
  in
  let instrs =
    List.map
      (fun cycle ->
        let issues = List.rev (Hashtbl.find by_cycle cycle) in
        let vector, rest =
          List.partition
            (fun i -> Opcode.resource i.Instr.op = Opcode.Vector_core)
            issues
        in
        let scalar, im =
          List.partition
            (fun i -> Opcode.resource i.Instr.op = Opcode.Scalar_accel)
            rest
        in
        let one which = function
          | [] -> None
          | [ x ] -> Some x
          | _ ->
            invalid_arg
              (Printf.sprintf "Modulo_sim: cycle %d oversubscribes the %s unit"
                 cycle which)
        in
        {
          Instr.cycle;
          vector;
          scalar = one "scalar" scalar;
          im = one "index/merge" im;
        })
      cycles
  in
  {
    Instr.arch;
    inputs;
    instrs;
    outputs =
      List.concat_map
        (fun d ->
          List.init iterations (fun iter -> ((iter * nnodes) + d, dest iter d)))
        (Ir.outputs g);
  }

let run_and_check ?(stream = no_stream) ~arch g r ~iterations =
  match to_program ~stream ~arch g r ~iterations with
  | exception Invalid_argument msg -> Error msg
  | program -> (
    let nnodes = Ir.size g in
    let references =
      Array.init iterations (fun iter -> Ir.eval ~inputs:(stream iter) g)
    in
    let completion_bound =
      r.Modulo.span + ((iterations - 1) * r.Modulo.ii)
    in
    let simulate check_access =
      match Machine.run ~check_access program with
      | exception Machine.Sim_error e ->
        Error (Format.asprintf "%a" Machine.pp_error e)
      | result -> (
        let checked = ref 0 in
        let rec go = function
          | [] ->
            Ok
              {
                program;
                iterations;
                ii = r.Modulo.ii;
                checked_values = !checked;
                access_clean = check_access;
                completion = result.Machine.cycles;
              }
          | (iter, i) :: rest -> (
            let d = match Ir.succs g i with [ d ] -> d | _ -> assert false in
            let expect = List.assoc d references.(iter) in
            match
              List.assoc_opt ((iter * nnodes) + i) result.Machine.node_values
            with
            | None -> Error (Printf.sprintf "iteration %d node %d: no value" iter i)
            | Some got ->
              if Value.equal ~eps:1e-6 expect got then begin
                incr checked;
                go rest
              end
              else
                Error
                  (Printf.sprintf "iteration %d node %d: expected %s, got %s"
                     iter i (Value.to_string expect) (Value.to_string got)))
        in
        let work =
          List.concat_map
            (fun iter -> List.map (fun i -> (iter, i)) (Ir.op_nodes g))
            (List.init iterations Fun.id)
        in
        match go work with
        | Ok rep ->
          if rep.completion > completion_bound + Arch.latency arch (Opcode.v Vid)
          then Error "completion later than span + (N-1)*II allows"
          else Ok rep
        | Error e -> Error e)
    in
    match simulate true with
    | Ok rep -> Ok rep
    | Error _ -> simulate false)
