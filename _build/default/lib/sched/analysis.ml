open Eit_dsl

type resource_report = {
  resource : Eit.Opcode.resource_class;
  busy_cycles : int;
  issue_slots_used : int;
  issue_slots_total : int;
  utilization : float;
}

type gap = { gap_start : int; gap_length : int }

type t = {
  span : int;
  per_resource : resource_report list;
  vector_gaps : gap list;
  longest_gap : int;
}

let all_resources =
  [ Eit.Opcode.Vector_core; Eit.Opcode.Scalar_accel; Eit.Opcode.Index_merge ]

(* Generic core: a list of (cycle, resource_class, slots_consumed)
   issues over a span, against the architecture's capacities. *)
let analyze arch ~span issues =
  let per_resource =
    List.map
      (fun rc ->
        let mine = List.filter (fun (_, r, _) -> r = rc) issues in
        let busy =
          List.length (List.sort_uniq compare (List.map (fun (c, _, _) -> c) mine))
        in
        let used = List.fold_left (fun acc (_, _, k) -> acc + k) 0 mine in
        let cap = Eit.Arch.resource_limit arch rc in
        let total = cap * span in
        {
          resource = rc;
          busy_cycles = busy;
          issue_slots_used = used;
          issue_slots_total = total;
          utilization = (if total = 0 then 0. else float_of_int used /. float_of_int total);
        })
      all_resources
  in
  (* gap structure of the vector core *)
  let vbusy = Array.make (max span 1) false in
  List.iter
    (fun (c, r, _) ->
      if r = Eit.Opcode.Vector_core && c >= 0 && c < span then vbusy.(c) <- true)
    issues;
  let gaps = ref [] in
  let cur = ref None in
  for c = 0 to span - 1 do
    match (vbusy.(c), !cur) with
    | false, None -> cur := Some c
    | false, Some _ -> ()
    | true, Some s ->
      gaps := { gap_start = s; gap_length = c - s } :: !gaps;
      cur := None
    | true, None -> ()
  done;
  (match !cur with
  | Some s when s < span -> gaps := { gap_start = s; gap_length = span - s } :: !gaps
  | _ -> ());
  let vector_gaps = List.rev !gaps in
  let longest_gap =
    List.fold_left (fun acc g -> max acc g.gap_length) 0 vector_gaps
  in
  { span; per_resource; vector_gaps; longest_gap }

let issue_of g i =
  let op = Ir.opcode g i in
  let slots =
    match Eit.Opcode.resource op with
    | Eit.Opcode.Vector_core -> Eit.Opcode.lanes op
    | Eit.Opcode.Scalar_accel | Eit.Opcode.Index_merge -> 1
  in
  (Eit.Opcode.resource op, slots)

let of_schedule sched =
  let g = sched.Schedule.ir in
  let issues =
    List.map
      (fun i ->
        let rc, k = issue_of g i in
        (sched.Schedule.start.(i), rc, k))
      (Ir.op_nodes g)
  in
  analyze sched.Schedule.arch ~span:(sched.Schedule.makespan + 1) issues

let of_modulo g arch (r : Modulo.result) =
  (* Steady state: fold every op onto its residue. *)
  let issues =
    List.map
      (fun i ->
        let rc, k = issue_of g i in
        (r.Modulo.start.(i) mod r.Modulo.ii, rc, k))
      (Ir.op_nodes g)
  in
  analyze arch ~span:r.Modulo.ii issues

let of_overlap g arch (ov : Overlap.t) =
  let issues =
    List.concat_map
      (fun (bundle_idx, (_, ops)) ->
        List.concat_map
          (fun i ->
            let rc, k = issue_of g i in
            List.init ov.Overlap.m (fun iter ->
                ((bundle_idx * ov.Overlap.m) + iter, rc, k)))
          ops)
      (List.mapi (fun k b -> (k, b)) ov.Overlap.bundles)
  in
  analyze arch ~span:ov.Overlap.length issues

let vector_utilization t =
  match
    List.find_opt (fun r -> r.resource = Eit.Opcode.Vector_core) t.per_resource
  with
  | Some r -> r.utilization
  | None -> 0.

let resource_name = function
  | Eit.Opcode.Vector_core -> "vector core"
  | Eit.Opcode.Scalar_accel -> "scalar accel"
  | Eit.Opcode.Index_merge -> "index/merge"

let pp ppf t =
  Format.fprintf ppf "span %d cc@." t.span;
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-13s busy %d/%d cycles, %d/%d issue slots (%.1f%%)@."
        (resource_name r.resource) r.busy_cycles t.span r.issue_slots_used
        r.issue_slots_total (100. *. r.utilization))
    t.per_resource;
  Format.fprintf ppf "  vector-core gaps: %d (longest %d cc)@."
    (List.length t.vector_gaps) t.longest_gap
