(** CP-based modulo scheduling (paper §4.3, Table 3).

    Modulo scheduling finds a schedule for one iteration that can be
    re-initiated every II cycles: resource use is constrained on the
    residues [s mod II].  The kernels are DAGs (no feedback edges), so
    there is no recurrence-induced lower bound and
    [MinII = ResMII]; the vector core's bound also accounts for
    configuration exclusivity (eq. 3): operations with different
    configurations cannot share a residue cycle, so each configuration
    class [c] with [n_c] operations of [l_c] lanes needs
    [ceil(n_c * l_c / lanes)] residues.

    Two optimization modes, as in the paper:
    - {!solve_excluding}: find the minimum II ignoring reconfiguration
      costs, then count the kernel's (cyclic) reconfigurations in a
      post-processing step; the *actual* initiation interval is
      [II + reconfigurations] and throughput [1 / actual II];
    - {!solve_including}: minimize [II + reconfigurations] jointly; for
      each candidate II a branch & bound minimizes the reconfiguration
      count (a custom objective evaluated through the residue
      configuration sequence), and candidate IIs grow until they cannot
      beat the incumbent total.

    Memory allocation is excluded, as in the paper: with enough memory,
    the allocation of the original schedule repeats per iteration at an
    offset. *)

open Eit_dsl

type result = {
  ii : int;                 (** initiation interval of the kernel *)
  reconfigurations : int;   (** cyclic reconfigurations of the kernel *)
  actual_ii : int;          (** ii + reconfigurations *)
  throughput : float;       (** 1 / actual_ii *)
  start : int array;        (** per-node start times of one iteration *)
  span : int;               (** schedule length of one iteration *)
  time_ms : float;
  proven : bool;            (** optimality proven within the budget *)
}

val res_mii : Ir.t -> Eit.Arch.t -> int
(** The resource-constrained lower bound described above. *)

val solve_excluding :
  ?budget_ms:float -> ?arch:Eit.Arch.t -> Ir.t -> result option
(** Minimum-II modulo schedule with reconfigurations counted
    post-factum.  [None] if even the first feasible II search timed
    out. *)

val solve_including :
  ?budget_ms:float -> ?arch:Eit.Arch.t -> Ir.t -> result option
(** Minimize [II + reconfigurations]. *)

val validate : Ir.t -> Eit.Arch.t -> result -> (unit, string) Stdlib.result
(** Re-check the kernel over an unrolled window: precedences within the
    iteration, per-residue resource capacities and configuration
    exclusivity across overlapping iterations. *)

val pp : Format.formatter -> result -> unit
