lib/sched/model.ml: Array Bounds Eit Eit_dsl Fd Fun Ir List Printf Schedule
