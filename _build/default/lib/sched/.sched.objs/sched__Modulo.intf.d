lib/sched/modulo.mli: Eit Eit_dsl Format Ir Stdlib
