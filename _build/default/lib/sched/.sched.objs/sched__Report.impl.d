lib/sched/report.ml: Analysis Bounds Codegen Eit Eit_dsl Fd Format Modulo Option Overlap Schedule Solve Stats
