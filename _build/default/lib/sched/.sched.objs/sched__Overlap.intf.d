lib/sched/overlap.mli: Eit Eit_dsl Format Schedule
