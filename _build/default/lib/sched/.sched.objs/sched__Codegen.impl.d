lib/sched/codegen.ml: Array Eit Eit_dsl Format Instr Ir List Machine Opcode Printf Schedule Value
