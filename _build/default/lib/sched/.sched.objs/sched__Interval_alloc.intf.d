lib/sched/interval_alloc.mli: Hashtbl
