lib/sched/manual_baseline.ml: Array Eit Eit_dsl Hashtbl Ir List Overlap
