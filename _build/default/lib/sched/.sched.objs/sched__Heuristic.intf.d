lib/sched/heuristic.mli: Eit Eit_dsl Ir Schedule
