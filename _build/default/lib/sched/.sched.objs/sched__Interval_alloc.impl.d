lib/sched/interval_alloc.ml: Hashtbl List
