lib/sched/report.mli: Analysis Bounds Eit Eit_dsl Format Ir Modulo Overlap Solve Stats
