lib/sched/reconfig.ml: Array Eit Eit_dsl Hashtbl Ir List Schedule
