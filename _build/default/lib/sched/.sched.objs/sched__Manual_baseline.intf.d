lib/sched/manual_baseline.mli: Eit Eit_dsl Overlap
