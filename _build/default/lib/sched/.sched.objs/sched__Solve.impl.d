lib/sched/solve.ml: Eit Fd Format List Model Schedule
