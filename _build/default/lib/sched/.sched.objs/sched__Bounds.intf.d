lib/sched/bounds.mli: Eit Eit_dsl Format Ir Schedule
