lib/sched/modulo_sim.ml: Arch Array Eit Eit_dsl Format Fun Hashtbl Instr Interval_alloc Ir List Machine Modulo Opcode Option Printf Value
