lib/sched/modulo.ml: Array Eit Eit_dsl Fd Float Format Hashtbl Ir List Option Printf Reconfig Unix
