lib/sched/codegen.mli: Eit Schedule
