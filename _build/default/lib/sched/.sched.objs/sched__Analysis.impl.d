lib/sched/analysis.ml: Array Eit Eit_dsl Format Ir List Modulo Overlap Schedule
