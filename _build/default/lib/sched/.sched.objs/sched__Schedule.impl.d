lib/sched/schedule.ml: Array Bytes Eit Eit_dsl Fd Format Fun Hashtbl Ir List Option Printf String
