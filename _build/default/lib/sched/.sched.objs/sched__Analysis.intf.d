lib/sched/analysis.mli: Eit Eit_dsl Format Ir Modulo Overlap Schedule
