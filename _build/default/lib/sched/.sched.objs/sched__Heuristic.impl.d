lib/sched/heuristic.ml: Array Eit Eit_dsl Fun Hashtbl Ir List Model Option Printf Schedule
