lib/sched/overlap_sim.ml: Arch Eit Eit_dsl Format Hashtbl Instr Interval_alloc Ir List Machine Opcode Overlap Printf Schedule Value
