lib/sched/overlap_sim.mli: Eit Schedule
