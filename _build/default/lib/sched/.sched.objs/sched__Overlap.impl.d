lib/sched/overlap.ml: Array Eit Eit_dsl Format Hashtbl Ir List Option Printf Schedule
