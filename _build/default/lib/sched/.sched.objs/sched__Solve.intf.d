lib/sched/solve.mli: Eit Eit_dsl Fd Format Ir Schedule
