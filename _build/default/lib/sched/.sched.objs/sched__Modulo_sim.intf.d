lib/sched/modulo_sim.mli: Eit Eit_dsl Modulo
