lib/sched/bounds.ml: Eit Eit_dsl Format Ir List Schedule
