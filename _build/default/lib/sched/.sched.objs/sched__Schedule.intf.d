lib/sched/schedule.mli: Eit Eit_dsl Format Ir
