lib/sched/model.mli: Eit Eit_dsl Fd Ir Schedule
