lib/sched/reconfig.mli: Eit Eit_dsl Schedule
