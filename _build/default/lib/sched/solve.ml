
type status = Optimal | Feasible | Unsat | Timeout

type outcome = {
  status : status;
  schedule : Schedule.t option;
  stats : Fd.Search.stats;
}

let pp_status ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Feasible -> Format.pp_print_string ppf "feasible"
  | Unsat -> Format.pp_print_string ppf "unsat"
  | Timeout -> Format.pp_print_string ppf "timeout"

let run ?(budget = Fd.Search.time_budget 10_000.) ?(memory = true)
    ?(arch = Eit.Arch.default) ?(validate = true) g =
  let outcome =
    match Model.build ~memory g arch with
    | m -> (
      match
        Fd.Search.minimize ~budget m.Model.store (Model.phases m)
          ~objective:m.Model.makespan
          ~on_solution:(fun () -> Model.extract m)
      with
      | Fd.Search.Solution (sched, stats) ->
        { status = Optimal; schedule = Some sched; stats }
      | Fd.Search.Best (sched, stats) ->
        { status = Feasible; schedule = Some sched; stats }
      | Fd.Search.Unsat stats -> { status = Unsat; schedule = None; stats }
      | Fd.Search.Timeout stats -> { status = Timeout; schedule = None; stats })
    | exception Fd.Store.Fail _ ->
      {
        status = Unsat;
        schedule = None;
        stats =
          { nodes = 0; failures = 0; solutions = 0; time_ms = 0.; optimal = true };
      }
  in
  (match (validate, outcome.schedule) with
  | true, Some sched ->
    let violations = Schedule.validate sched in
    (* Without the memory part of the model, memory-related rules are
       not enforced and must not be re-checked. *)
    let relevant =
      if memory then violations
      else
        List.filter
          (fun v ->
            not
              (List.mem v.Schedule.where
                 [ "memory"; "memory-access"; "slot-reuse" ]))
          violations
    in
    if relevant <> [] then
      failwith
        (Format.asprintf "Solve.run: solver produced an invalid schedule: %a"
           (Format.pp_print_list ~pp_sep:Format.pp_print_space
              Schedule.pp_violation)
           relevant)
  | _ -> ());
  outcome
