open Eit_dsl

let node_latency g arch i =
  match (Ir.node g i).Ir.op with
  | Some op -> Eit.Arch.latency arch op
  | None -> 0

(* Critical-path priorities: latency-weighted longest path to a sink. *)
let priorities g arch =
  let n = Ir.size g in
  let prio = Array.make n 0 in
  List.iter
    (fun i ->
      let tail =
        List.fold_left (fun acc s -> max acc prio.(s)) 0 (Ir.succs g i)
      in
      prio.(i) <- node_latency g arch i + tail)
    (List.rev (Ir.topo_order g));
  prio

(* ---------------- phase 1: list scheduling ---------------- *)

let schedule_times g arch =
  let n = Ir.size g in
  let prio = priorities g arch in
  let start = Array.make n (-1) in
  List.iter (fun d -> if Ir.producer g d = None then start.(d) <- 0) (Ir.data_nodes g);
  let unscheduled = ref (Ir.op_nodes g) in
  let horizon = Model.horizon_estimate g arch + 1 in
  let cycle = ref 0 in
  while !unscheduled <> [] && !cycle < horizon do
    let c = !cycle in
    let ready =
      List.filter
        (fun i ->
          List.for_all (fun p -> start.(p) >= 0 && start.(p) <= c) (Ir.preds g i))
        !unscheduled
    in
    let by_prio = List.sort (fun a b -> compare prio.(b) prio.(a)) ready in
    let of_rc rc =
      List.filter
        (fun i -> Eit.Opcode.resource (Ir.opcode g i) = rc)
        by_prio
    in
    let issue i =
      start.(i) <- c;
      (match Ir.succs g i with
      | [ d ] -> start.(d) <- c + node_latency g arch i
      | _ -> assert false);
      unscheduled := List.filter (fun j -> j <> i) !unscheduled
    in
    (* vector bundle: leader by priority, fill with its configuration *)
    (match of_rc Eit.Opcode.Vector_core with
    | [] -> ()
    | leader :: _ ->
      let config = Ir.opcode g leader in
      let lanes = ref 0 in
      List.iter
        (fun i ->
          let op = Ir.opcode g i in
          if
            Eit.Opcode.config_equal op config
            && !lanes + Eit.Opcode.lanes op <= arch.Eit.Arch.n_lanes
          then begin
            lanes := !lanes + Eit.Opcode.lanes op;
            issue i
          end)
        (of_rc Eit.Opcode.Vector_core));
    (match of_rc Eit.Opcode.Scalar_accel with [] -> () | i :: _ -> issue i);
    (match of_rc Eit.Opcode.Index_merge with [] -> () | i :: _ -> issue i);
    incr cycle
  done;
  if !unscheduled <> [] then Error "list scheduling exceeded the horizon"
  else Ok start

(* ---------------- phase 2: greedy slot allocation ---------------- *)

let allocate g arch start =
  let vdata =
    List.filter (fun d -> Ir.category g d = Ir.Vector_data) (Ir.data_nodes g)
  in
  let lifetime d =
    let s = start.(d) in
    let last = List.fold_left (fun acc c -> max acc start.(c)) s (Ir.succs g d) in
    last + 1 - s
  in
  (* cycles in which a datum is read / written *)
  let read_cycles d = List.map (fun i -> start.(i)) (Ir.succs g d) in
  let write_cycle d = if Ir.producer g d = None then None else Some start.(d) in
  let assignment = Hashtbl.create 64 in
  (* occupancy: slot -> (birth, death) list *)
  let occupancy = Hashtbl.create 64 in
  let overlaps (b1, d1) (b2, d2) = max b1 b2 < min d1 d2 in
  let slot_free k interval =
    List.for_all
      (fun iv -> not (overlaps iv interval))
      (Option.value ~default:[] (Hashtbl.find_opt occupancy k))
  in
  (* access legality of giving datum d slot k, against assigned data *)
  let access_ok d k =
    let reads_at c =
      List.concat_map
        (fun d' ->
          match Hashtbl.find_opt assignment d' with
          | Some k' when List.mem c (read_cycles d') -> [ k' ]
          | _ -> [])
        vdata
    in
    let writes_at c =
      List.concat_map
        (fun d' ->
          match (Hashtbl.find_opt assignment d', write_cycle d') with
          | Some k', Some c' when c' = c -> [ k' ]
          | _ -> [])
        vdata
    in
    List.for_all
      (fun c ->
        Eit.Mem.access_ok arch ~reads:(k :: reads_at c) ~writes:(writes_at c))
      (read_cycles d)
    && match write_cycle d with
       | None -> true
       | Some c ->
         Eit.Mem.access_ok arch ~reads:(reads_at c) ~writes:(k :: writes_at c)
  in
  let in_birth_order =
    List.sort (fun a b -> compare start.(a) start.(b)) vdata
  in
  let ok = ref (Ok ()) in
  List.iter
    (fun d ->
      if !ok = Ok () then begin
        let interval = (start.(d), start.(d) + lifetime d) in
        let rec try_slot k =
          if k >= Eit.Arch.slots arch then
            ok := Error (Printf.sprintf "no legal slot for datum %d" d)
          else if slot_free k interval && access_ok d k then begin
            Hashtbl.replace assignment d k;
            Hashtbl.replace occupancy k
              (interval :: Option.value ~default:[] (Hashtbl.find_opt occupancy k))
          end
          else try_slot (k + 1)
        in
        try_slot 0
      end)
    in_birth_order;
  match !ok with
  | Ok () -> Ok (List.map (fun d -> (d, Hashtbl.find assignment d)) vdata)
  | Error e -> Error e

let run ?(arch = Eit.Arch.default) g =
  match schedule_times g arch with
  | Error e -> Error e
  | Ok start -> (
    match allocate g arch start with
    | Error e -> Error e
    | Ok slot ->
      let makespan =
        List.fold_left
          (fun acc i -> max acc (start.(i) + node_latency g arch i))
          0
          (List.init (Ir.size g) Fun.id)
      in
      Ok { Schedule.ir = g; arch; start; slot; makespan })
