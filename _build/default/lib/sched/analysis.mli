(** Utilization and gap analysis of schedules.

    §4.2 motivates everything after Table 1 with utilization: the
    optimal one-iteration QRD schedule "includes a lot of gaps, mainly
    because of the data dependencies between vector operations ... the
    processor becomes heavily under-utilized".  This module quantifies
    that: per-resource busy cycles, utilization ratios, and the gap
    structure of the vector pipeline, for one-shot schedules and for the
    steady state of overlapped/modulo execution. *)

open Eit_dsl

type resource_report = {
  resource : Eit.Opcode.resource_class;
  busy_cycles : int;       (** cycles with at least one issue *)
  issue_slots_used : int;  (** lane-cycles actually consumed *)
  issue_slots_total : int; (** capacity x span *)
  utilization : float;     (** used / total *)
}

type gap = { gap_start : int; gap_length : int }

type t = {
  span : int;
  per_resource : resource_report list;
  vector_gaps : gap list;   (** idle stretches of the vector core *)
  longest_gap : int;
}

val of_schedule : Schedule.t -> t

val of_modulo : Ir.t -> Eit.Arch.t -> Modulo.result -> t
(** Steady-state analysis over one kernel window of [ii] cycles with all
    overlapping iterations folded in. *)

val of_overlap : Ir.t -> Eit.Arch.t -> Overlap.t -> t
(** Analysis of the overlapped schedule: each instruction bundle
    occupies [m] consecutive cycles. *)

val vector_utilization : t -> float
(** Shorthand: utilization of the vector core (0 when it is unused). *)

val pp : Format.formatter -> t -> unit
