open Eit_dsl

type t = {
  bundles : (int * int list) list;
  m : int;
  n_instructions : int;
  length : int;
  drain : int;
  reconfigurations : int;
  throughput : float;
}

let bundles_of sched =
  let g = sched.Schedule.ir in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let c = sched.Schedule.start.(i) in
      Hashtbl.replace tbl c (i :: Option.value ~default:[] (Hashtbl.find_opt tbl c)))
    (Ir.op_nodes g);
  Hashtbl.fold (fun c ops acc -> (c, List.rev ops) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let node_latency g arch i =
  match (Ir.node g i).Ir.op with
  | Some op -> Eit.Arch.latency arch op
  | None -> 0

(* The latency that must be masked between two dependent instructions:
   any op whose result is consumed downstream. *)
let min_overlap_of g arch =
  List.fold_left
    (fun acc i ->
      List.fold_left
        (fun acc d -> if Ir.succs g d = [] then acc else max acc (node_latency g arch i))
        acc (Ir.succs g i))
    1 (Ir.op_nodes g)

let min_overlap sched = min_overlap_of sched.Schedule.ir sched.Schedule.arch

let build g arch bundles ~m =
  let needed = min_overlap_of g arch in
  if m < needed then
    invalid_arg
      (Printf.sprintf "Overlap: m = %d does not mask the %d-cycle latency" m needed);
  let n = List.length bundles in
  (* Drain: after the last copy of the last instruction issues (cycle
     n*m - 1), its results need the unit latency to retire. *)
  let drain =
    match List.rev bundles with
    | (_, ops) :: _ ->
      List.fold_left (fun acc i -> max acc (node_latency g arch i)) 0 ops
    | [] -> 0
  in
  let length = (n * m) + drain in
  let vector_config ops =
    List.find_map
      (fun i ->
        let op = Ir.opcode g i in
        if Eit.Opcode.resource op = Eit.Opcode.Vector_core then Some op else None)
      ops
  in
  let configs = List.map (fun (_, ops) -> vector_config ops) bundles in
  {
    bundles;
    m;
    n_instructions = n;
    length;
    drain;
    reconfigurations = Eit.Config.count_reconfigs configs;
    throughput = float_of_int m /. float_of_int length;
  }

let run sched ~m =
  build sched.Schedule.ir sched.Schedule.arch (bundles_of sched) ~m

let of_bundles g arch bundles ~m =
  build g arch (List.mapi (fun k ops -> (k, ops)) bundles) ~m

let issue_cycle t ~instr ~iter =
  if instr < 0 || instr >= t.n_instructions || iter < 0 || iter >= t.m then
    invalid_arg "Overlap.issue_cycle: out of range";
  (instr * t.m) + iter

let pp ppf t =
  Format.fprintf ppf
    "overlap(M=%d): N=%d instructions, length=%d cc (drain %d), %d reconfigs \
     (%.2f/iter), throughput=%.3f iter/cc"
    t.m t.n_instructions t.length t.drain t.reconfigurations
    (float_of_int t.reconfigurations /. float_of_int t.m)
    t.throughput
