open Eit_dsl
open Eit

let operand sched d =
  match Ir.category sched.Schedule.ir d with
  | Ir.Vector_data -> (
    match List.assoc_opt d sched.Schedule.slot with
    | Some k -> Instr.Slot k
    | None ->
      invalid_arg (Printf.sprintf "Codegen: vector datum %d has no slot" d))
  | Ir.Scalar_data -> Instr.Reg d
  | _ -> invalid_arg (Printf.sprintf "Codegen: node %d is not a datum" d)

let dest sched d =
  match operand sched d with
  | Instr.Slot k -> Instr.Dslot k
  | Instr.Reg r -> Instr.Dreg r
  | Instr.Imm _ -> assert false

let program ?outputs sched =
  let g = sched.Schedule.ir in
  let inputs =
    List.map
      (fun d ->
        let v =
          match (Ir.node g d).Ir.value with
          | Some v -> v
          | None ->
            invalid_arg (Printf.sprintf "Codegen: input %d has no trace value" d)
        in
        match (v, operand sched d) with
        | Value.Vector a, Instr.Slot k -> Instr.In_slot (k, a)
        | Value.Scalar c, Instr.Reg r -> Instr.In_reg (r, c)
        | _ -> invalid_arg "Codegen: input kind mismatch")
      (Ir.inputs g)
  in
  let issues =
    List.map
      (fun i ->
        let out = match Ir.succs g i with [ d ] -> d | _ -> assert false in
        ( sched.Schedule.start.(i),
          {
            Instr.op = Ir.opcode g i;
            args = List.map (operand sched) (Ir.preds g i);
            dest = dest sched out;
            node = i;
          } ))
      (Ir.op_nodes g)
  in
  let cycles = List.sort_uniq compare (List.map fst issues) in
  let instrs =
    List.map
      (fun c ->
        let here = List.filter_map (fun (c', i) -> if c' = c then Some i else None) issues in
        let vector, rest =
          List.partition (fun i -> Opcode.resource i.Instr.op = Opcode.Vector_core) here
        in
        let scalar, im =
          List.partition (fun i -> Opcode.resource i.Instr.op = Opcode.Scalar_accel) rest
        in
        let one = function
          | [] -> None
          | [ i ] -> Some i
          | i :: _ ->
            invalid_arg
              (Printf.sprintf "Codegen: cycle %d oversubscribes a unit (node %d)" c
                 i.Instr.node)
        in
        { Instr.cycle = c; vector; scalar = one scalar; im = one im })
      cycles
  in
  let outs =
    match outputs with Some l -> l | None -> Ir.outputs g
  in
  {
    Instr.arch = sched.Schedule.arch;
    inputs;
    instrs;
    outputs = List.map (fun d -> (d, dest sched d)) outs;
  }

let run_and_check ?outputs sched =
  let g = sched.Schedule.ir in
  match program ?outputs sched with
  | exception Invalid_argument msg -> Error msg
  | prog -> (
    match Machine.run prog with
    | exception Machine.Sim_error e ->
      Error (Format.asprintf "simulation: %a" Machine.pp_error e)
    | result -> (
      let reference = Ir.eval g in
      (* Compare op results via the data node each op produces; a datum
         whose slot was later reused is checked through the recorded
         node value, not the final memory image. *)
      let mismatches =
        List.filter_map
          (fun i ->
            let d = match Ir.succs g i with [ d ] -> d | _ -> assert false in
            let expect = List.assoc d reference in
            match List.assoc_opt i result.Machine.node_values with
            | None -> Some (Printf.sprintf "node %d produced no value" i)
            | Some got ->
              if Value.equal ~eps:1e-6 expect got then None
              else
                Some
                  (Printf.sprintf "node %d: expected %s, got %s" i
                     (Value.to_string expect) (Value.to_string got)))
          (Ir.op_nodes g)
      in
      match mismatches with
      | [] -> Ok ()
      | m :: _ -> Error m))
