let color intervals =
  let sorted =
    List.sort (fun (_, b1, _) (_, b2, _) -> compare b1 b2) intervals
  in
  let free_at = ref [] in
  let assignment = Hashtbl.create 64 in
  let next_slot = ref 0 in
  List.iter
    (fun (key, birth, death) ->
      let death = max death (birth + 1) in
      let rec find = function
        | (slot, free) :: rest ->
          if free <= birth then begin
            free_at := (slot, death) :: List.remove_assoc slot !free_at;
            Some slot
          end
          else find rest
        | [] -> None
      in
      let slot =
        match find !free_at with
        | Some s -> s
        | None ->
          let s = !next_slot in
          incr next_slot;
          free_at := (s, death) :: !free_at;
          s
      in
      Hashtbl.replace assignment key slot)
    sorted;
  (assignment, !next_slot)
