(** Greedy interval-graph coloring for slot allocation.

    Used when a transformation (overlapped or modulo execution) rewrites
    issue times and the CP model's slot-reuse pattern must be recomputed
    against the new lifetimes.  First-fit over birth-ordered intervals:
    optimal for interval graphs, so the slot count equals the maximum
    number of simultaneously live data. *)

val color : (int * int * int) list -> (int, int) Hashtbl.t * int
(** [color intervals] with each element [(key, birth, death)] (live on
    [birth .. death-1]) returns the key->slot assignment and the number
    of slots used.  Zero-length intervals still occupy their slot for
    one allocation step. *)
