open Eit_dsl

let vector_ops sched =
  List.filter
    (fun i ->
      Eit.Opcode.resource (Ir.opcode sched.Schedule.ir i) = Eit.Opcode.Vector_core)
    (Ir.op_nodes sched.Schedule.ir)

let configs sched =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun i -> Hashtbl.replace tbl sched.Schedule.start.(i) (Ir.opcode sched.Schedule.ir i))
    (vector_ops sched);
  List.init (sched.Schedule.makespan + 1) (fun c -> Hashtbl.find_opt tbl c)

let count sched = Eit.Config.count_reconfigs (configs sched)

let count_cyclic sched ~ii =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      Hashtbl.replace tbl
        (sched.Schedule.start.(i) mod ii)
        (Ir.opcode sched.Schedule.ir i))
    (vector_ops sched);
  Eit.Config.count_reconfigs_cyclic (List.init ii (fun c -> Hashtbl.find_opt tbl c))

let lower_bound g =
  let configs =
    List.filter_map
      (fun i ->
        let op = Ir.opcode g i in
        if Eit.Opcode.resource op = Eit.Opcode.Vector_core then Some op else None)
      (Ir.op_nodes g)
  in
  let distinct =
    List.fold_left
      (fun acc op -> if List.exists (Eit.Opcode.config_equal op) acc then acc else op :: acc)
      [] configs
  in
  match distinct with [] | [ _ ] -> 0 | l -> List.length l
