(* Writing a new kernel: correlation peak search with pipeline fusion.

   A kernel the DSL was not shipped with: correlate a received block
   against four hypotheses (Hermitian dot products), combine the scores
   into one vector, and sort it by magnitude for the detector.  It
   exercises the standalone pre/post-processing operations (conj, sort)
   that the merge pass (paper Fig. 6) fuses into the vector pipeline.

   Run with:  dune exec examples/custom_kernel.exe *)

module Vecsched = Vecsched_core.Vecsched
module Dsl = Vecsched.Dsl

let () =
  let ctx = Dsl.create () in
  let rx = Dsl.vector_input_f ctx ~name:"rx" [ 0.9; -0.3; 0.4; 0.1 ] in
  let hyp =
    List.mapi
      (fun k v -> Dsl.vector_input_f ctx ~name:(Printf.sprintf "h%d" k) v)
      [ [ 1.; 0.; 0.; 0. ]; [ 0.7; 0.7; 0.; 0. ]; [ 0.5; 0.5; 0.5; 0.5 ];
        [ 0.; 0.; 0.7; 0.7 ] ]
  in
  (* conj(rx) is a standalone pre-processing node; because its output
     feeds each dot product as operand 0, the merge pass fuses it into
     the consumer - watch the node count drop. *)
  let scores =
    List.map
      (fun h ->
        let c = Dsl.v_conj ctx rx in
        Dsl.v_dotp ctx c h)
      hyp
  in
  let merged_scores =
    match scores with
    | [ a; b; c; d ] -> Dsl.merge ctx a b c d
    | _ -> assert false
  in
  (* sort is a standalone post-processing node; it has a single producer
     and fuses backwards into it. *)
  let ranked = Dsl.v_sort ctx merged_scores in
  Dsl.mark_output ctx ranked;

  Format.printf "ranked correlations: [%a]@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Vecsched.Cplx.pp)
    (Array.to_list (Dsl.vector_value ranked));

  let raw = Dsl.graph ctx in
  let compiled = Vecsched.compile_dsl ctx in
  Format.printf "raw IR:    %a@." Vecsched.Stats.pp (Vecsched.Stats.of_ir raw);
  Format.printf "after fusion: %a (%d fusions)@." Vecsched.Stats.pp
    compiled.Vecsched.stats compiled.Vecsched.fusions;

  match Vecsched.schedule compiled with
  | { schedule = Some sch; _ } ->
    Format.printf "schedule: %d cycles, %d slots@." sch.Vecsched.Schedule.makespan
      (Vecsched.Schedule.slots_used sch);
    (match Vecsched.run_on_simulator sch with
    | Ok () -> Format.printf "simulator agrees with the DSL evaluation@."
    | Error e -> Format.printf "mismatch: %s@." e)
  | { status; _ } -> Format.printf "no schedule: %a@." Vecsched.Solve.pp_status status
