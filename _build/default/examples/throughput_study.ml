(* Throughput study across all three kernels and all execution regimes.

   Reproduces the experiment structure of the paper's §4.3 as one
   programmatic sweep: for QRD, ARF and MATMUL, compare

     one-shot        1 / makespan
     overlapped      M / (N*M + drain)          (ad-hoc lock-step)
     modulo (excl)   1 / (II + post-hoc reconfigurations)
     modulo (incl)   1 / (II + optimized reconfigurations)

   and report the burstiness the paper warns about for overlapped
   execution: the span of cycles in which outputs retire.

   Run with:  dune exec examples/throughput_study.exe *)

module Vecsched = Vecsched_core.Vecsched

let study name g =
  let compiled = Vecsched.compile g in
  Format.printf "@.=== %s (%a) ===@." name Vecsched.Stats.pp
    compiled.Vecsched.stats;
  match Vecsched.schedule ~budget_ms:15_000. compiled with
  | { schedule = Some sch; _ } ->
    let mk = sch.Vecsched.Schedule.makespan in
    Format.printf "one-shot:      %.4f iter/cc (makespan %d)@."
      (1. /. float_of_int mk) mk;
    let m = 12 in
    let ov = Vecsched.Overlap.run sch ~m in
    (* Burstiness: every iteration's last instruction retires within the
       final M cycles of the overlapped schedule. *)
    Format.printf
      "overlapped:    %.4f iter/cc (N=%d, length %d, %d reconfigs; all %d \
       outputs retire in the last %d cycles)@."
      ov.Vecsched.Overlap.throughput ov.Vecsched.Overlap.n_instructions
      ov.Vecsched.Overlap.length ov.Vecsched.Overlap.reconfigurations m
      (m + ov.Vecsched.Overlap.drain);
    (match Vecsched.Modulo.solve_excluding ~budget_ms:30_000. compiled.Vecsched.ir with
    | Some r ->
      Format.printf "modulo (excl): %.4f iter/cc (II %d + %d reconfigs = %d)@."
        r.Vecsched.Modulo.throughput r.Vecsched.Modulo.ii
        r.Vecsched.Modulo.reconfigurations r.Vecsched.Modulo.actual_ii
    | None -> Format.printf "modulo (excl): timeout@.");
    (match Vecsched.Modulo.solve_including ~budget_ms:30_000. compiled.Vecsched.ir with
    | Some r ->
      Format.printf
        "modulo (incl): %.4f iter/cc (II %d + %d reconfigs = %d) — steady, \
         one output every %d cycles@."
        r.Vecsched.Modulo.throughput r.Vecsched.Modulo.ii
        r.Vecsched.Modulo.reconfigurations r.Vecsched.Modulo.actual_ii
        r.Vecsched.Modulo.actual_ii
    | None -> Format.printf "modulo (incl): timeout@.")
  | { status; _ } ->
    Format.printf "scheduling failed: %a@." Vecsched.Solve.pp_status status

let () =
  study "QRD" (Apps.Qrd.graph (Apps.Qrd.build ()));
  study "ARF" (Apps.Arf.graph (Apps.Arf.build ()));
  study "MATMUL" (Apps.Matmul.graph (Apps.Matmul.build ()))
