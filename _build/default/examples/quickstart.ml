(* Quickstart: write a kernel in the DSL, compile, schedule, simulate.

   The kernel is the paper's listing 1 — multiply a 4x4 matrix with its
   transpose — written directly against the DSL API.

   Run with:  dune exec examples/quickstart.exe *)

module Vecsched = Vecsched_core.Vecsched
module Dsl = Vecsched.Dsl

let () =
  (* 1. Write the program in the DSL (listing 1). *)
  let ctx = Dsl.create () in
  let a =
    Dsl.matrix_input_f ctx ~name:"A"
      [ [ 1.; 2.; 3.; 4. ]; [ 2.; 3.; 4.; 5. ]; [ 3.; 4.; 5.; 6. ]; [ 4.; 5.; 6.; 7. ] ]
  in
  let result_rows =
    List.init 4 (fun i ->
        let s = Array.init 4 (fun j -> Dsl.v_dotp ctx (Dsl.row a i) (Dsl.row a j)) in
        let row = Dsl.merge ctx s.(0) s.(1) s.(2) s.(3) in
        Dsl.mark_output ctx row;
        row)
  in
  (* Running the DSL program evaluates it concretely — the paper's
     "debugging run".  Inspect the first result row right away: *)
  let r0 = Dsl.vector_value (List.hd result_rows) in
  Format.printf "row 0 of A*A^T = [%a]@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Vecsched.Cplx.pp)
    (Array.to_list r0);

  (* 2. Compile: trace -> IR -> pipeline-fusion pass. *)
  let compiled = Vecsched.compile_dsl ctx in
  Format.printf "IR: %a@." Vecsched.Stats.pp compiled.Vecsched.stats;

  (* 3. Schedule with integrated memory allocation. *)
  (match Vecsched.schedule compiled with
  | { schedule = Some sch; status; _ } ->
    Format.printf "schedule (%a): %d cycles, %d memory slots@."
      Vecsched.Solve.pp_status status sch.Vecsched.Schedule.makespan
      (Vecsched.Schedule.slots_used sch);
    (* 4. Generate machine code and verify on the simulator. *)
    (match Vecsched.run_on_simulator sch with
    | Ok () -> Format.printf "simulation matches the reference evaluation@."
    | Error e -> Format.printf "simulation mismatch: %s@." e)
  | { status; _ } ->
    Format.printf "no schedule: %a@." Vecsched.Solve.pp_status status)
