examples/throughput_study.ml: Apps Format Vecsched_core
