examples/detection_chain.mli:
