examples/quickstart.mli:
