examples/memory_exploration.ml: Apps Arch Eit Eit_dsl Fd Format List Mem Sched
