examples/solver_tour.ml: Alldiff Arith Array Cumulative Diff2 Fd Format List Printf Search Store String
