examples/mimo_pipeline.ml: Apps Array Cplx Eit Format List Vecsched_core
