examples/streaming.ml: Apps Arch Array Cplx Eit Fd Format List Sched Value Vecsched_core
