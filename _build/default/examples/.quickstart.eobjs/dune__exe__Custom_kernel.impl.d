examples/custom_kernel.ml: Array Format List Printf Vecsched_core
