examples/mimo_pipeline.mli:
