examples/detection_chain.ml: Apps Array Cplx Eit Format List Sched Vecsched_core
