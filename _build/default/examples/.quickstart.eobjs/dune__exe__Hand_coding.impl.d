examples/hand_coding.ml: Asm Eit Format Instr List Machine Value Vecsched_core
