examples/memory_exploration.mli:
