examples/hand_coding.mli:
