examples/quickstart.ml: Array Format List Vecsched_core
