examples/streaming.mli:
