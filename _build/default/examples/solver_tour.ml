(* A tour of the fd constraint solver on classic problems.

   The scheduler's substrate (lib/fd) is a general finite-domain solver;
   this example uses it standalone on three textbook problems — the same
   machinery (Cumulative, Diff2, branch & bound) that powers the paper's
   model.

   Run with:  dune exec examples/solver_tour.exe *)

open Fd

(* --- 1. N-queens with the Hall-interval alldifferent ---------------- *)

let queens n =
  let s = Store.create () in
  let cols = List.init n (fun i -> Store.interval_var s 0 (n - 1) ~name:(Printf.sprintf "q%d" i)) in
  Alldiff.post s cols;
  (* diagonals: q_i + i and q_i - i all different *)
  let diag shift =
    List.mapi
      (fun i q ->
        let d = Store.interval_var s (-n) (2 * n) in
        Arith.eq_offset s q (shift * i) d;
        d)
      cols
  in
  Alldiff.post s (diag 1);
  Alldiff.post s (diag (-1));
  match
    Search.solve s
      [ Search.phase ~var_select:Search.first_fail ~val_select:Search.select_mid cols ]
      ~on_solution:(fun () -> List.map Store.value cols)
  with
  | Search.Solution (sol, st) -> Some (sol, st)
  | _ -> None

(* --- 2. A small job shop with Cumulative ---------------------------- *)

let job_shop () =
  (* 6 tasks, durations and resource demands, capacity 3; chains:
     t0 -> t2 -> t4 and t1 -> t3 -> t5 *)
  let s = Store.create () in
  let durations = [| 3; 2; 4; 3; 2; 3 |] in
  let demands = [| 2; 1; 1; 2; 2; 1 |] in
  let starts = Array.init 6 (fun i -> Store.interval_var s 0 30 ~name:(Printf.sprintf "t%d" i)) in
  Arith.leq_offset s starts.(0) durations.(0) starts.(2);
  Arith.leq_offset s starts.(2) durations.(2) starts.(4);
  Arith.leq_offset s starts.(1) durations.(1) starts.(3);
  Arith.leq_offset s starts.(3) durations.(3) starts.(5);
  Cumulative.post s ~starts ~durations ~resources:demands ~limit:3;
  let makespan = Store.interval_var s 0 40 ~name:"makespan" in
  let ends =
    Array.to_list
      (Array.mapi
         (fun i st ->
           let e = Store.interval_var s 0 40 in
           Arith.eq_offset s st durations.(i) e;
           e)
         starts)
  in
  Arith.max_of s ends makespan;
  match
    Search.minimize s
      [ Search.phase ~var_select:Search.smallest_min (Array.to_list starts) ]
      ~objective:makespan
      ~on_solution:(fun () -> (Array.map Store.value starts, Store.vmin makespan))
  with
  | Search.Solution ((sol, mk), _) -> Some (sol, mk)
  | _ -> None

(* --- 3. Square packing with Diff2 ----------------------------------- *)

let packing () =
  (* pack squares of sizes 3, 2, 2, 1 into a 5x4 box *)
  let s = Store.create () in
  let sizes = [ 3; 2; 2; 1 ] in
  let rects =
    List.map
      (fun size ->
        let x = Store.interval_var s 0 (5 - size) in
        let y = Store.interval_var s 0 (4 - size) in
        ((x, y), size))
      sizes
  in
  Diff2.post s
    (List.map
       (fun ((x, y), size) ->
         { Diff2.ox = x; oy = y; lx = Store.const s size; ly = Store.const s size })
       rects);
  let vars = List.concat_map (fun ((x, y), _) -> [ x; y ]) rects in
  match
    Search.solve s [ Search.phase vars ] ~on_solution:(fun () ->
        List.map (fun ((x, y), size) -> (Store.value x, Store.value y, size)) rects)
  with
  | Search.Solution (sol, _) -> Some sol
  | _ -> None

let () =
  (match queens 12 with
  | Some (sol, st) ->
    Format.printf "12-queens: %s  (%d nodes)@."
      (String.concat " " (List.map string_of_int sol))
      st.Search.nodes
  | None -> Format.printf "12-queens: no solution?!@.");
  (match job_shop () with
  | Some (starts, mk) ->
    Format.printf "job shop: makespan %d, starts %s@." mk
      (String.concat " " (Array.to_list (Array.map string_of_int starts)))
  | None -> Format.printf "job shop: failed@.");
  (match packing () with
  | Some placements ->
    Format.printf "packing: %s@."
      (String.concat ", "
         (List.map (fun (x, y, s) -> Printf.sprintf "%dx%d@(%d,%d)" s s x y) placements))
  | None -> Format.printf "packing: failed@.");
  (* and the same engine under a restart policy *)
  let s = Store.create () in
  let vars = List.init 8 (fun _ -> Store.interval_var s 0 10) in
  Alldiff.post s vars;
  let obj = Store.interval_var s 0 100 in
  Arith.sum s vars obj;
  match
    Search.minimize_restarts ~base:512 s [ Search.phase vars ] ~objective:obj
      ~on_solution:(fun () -> Store.vmin obj)
  with
  | Search.Solution (v, st) ->
    Format.printf
      "restart B&B: min sum of 8 distinct values in 0..10 = %d, proven (%d nodes)@."
      v st.Search.nodes
  | Search.Best (v, st) ->
    Format.printf
      "restart B&B: min sum of 8 distinct values in 0..10 = %d, best found \
       within the restart caps (%d nodes)@."
      v st.Search.nodes
  | _ -> Format.printf "restart B&B: failed@."
