(* Streaming execution: a modulo-scheduled kernel processing different
   data on every initiation — the regime the paper's MIMO kernels exist
   for ("kernel programs that are run many times for each piece of
   data", §1).

   The MATMUL kernel is modulo-scheduled once (II = 4); then a stream of
   distinct matrices is pushed through the pipelined kernel on the
   cycle-accurate simulator, one initiation every II cycles, and every
   iteration's 16 products are checked against that iteration's own
   reference result.

   Run with:  dune exec examples/streaming.exe *)

module Vecsched = Vecsched_core.Vecsched
open Eit

let () =
  let app = Apps.Matmul.build () in
  let g =
    (Vecsched.Merge.run (Apps.Matmul.graph app)).Vecsched.Merge.graph
  in
  match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | None -> Format.printf "modulo scheduling timed out@."
  | Some r ->
    Format.printf "kernel: one 4x4 matrix product every %d cycles@."
      r.Vecsched.Modulo.actual_ii;
    let iterations = 6 in
    (* a fresh matrix per initiation *)
    let matrix_for iter =
      Array.init 4 (fun i ->
          Array.init 4 (fun j ->
              Cplx.of_float (float_of_int (((iter * 7) + (i * 4) + j) mod 9))))
    in
    let inputs = Vecsched.Ir.inputs g in
    let stream iter =
      let m = matrix_for iter in
      List.mapi (fun row d -> (d, Value.vector m.(row))) inputs
    in
    let arch = { Arch.default with Arch.lines = 16 } in
    (match
       Sched.Modulo_sim.run_and_check ~stream ~arch g r ~iterations
     with
    | Ok rep ->
      Format.printf
        "simulated %d initiations: %d results verified against per-iteration \
         references; last write-back at cycle %d (= span %d + %d x II)@."
        iterations rep.Sched.Modulo_sim.checked_values
        rep.Sched.Modulo_sim.completion r.Vecsched.Modulo.span
        (iterations - 1);
      (* show one detected row to make it tangible *)
      let m = matrix_for (iterations - 1) in
      let expect = Apps.Reference.matmul_aat m in
      Format.printf "last iteration, row 0 of A*A^T = [%a]@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Cplx.pp)
        (Array.to_list expect.(0))
    | Error e -> Format.printf "stream check FAILED: %s@." e);
    (* steady-state throughput vs one-shot, in matrices per 1000 cycles *)
    let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
    (match o.Sched.Solve.schedule with
    | Some sch ->
      Format.printf
        "@.throughput: %.0f matrices / 1000 cc pipelined vs %.0f one-shot@."
        (1000. *. r.Vecsched.Modulo.throughput)
        (1000. /. float_of_int sch.Vecsched.Schedule.makespan)
    | None -> ())
