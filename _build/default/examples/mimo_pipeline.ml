(* MIMO pre-processing pipeline: the paper's motivating workload.

   In a MIMO receiver the MMSE-QRD kernel runs once per channel
   realization, for every subcarrier — thousands of times per frame — so
   kernel throughput dominates (paper §1).  This example walks the whole
   story for a batch of channels:

   1. decompose a stream of channel matrices with the QRD kernel,
      verifying each result against a plain-OCaml reference;
   2. compare the three execution regimes on throughput: one-shot
      schedules, lock-step overlapped execution, and modulo scheduling.

   Run with:  dune exec examples/mimo_pipeline.exe *)

module Vecsched = Vecsched_core.Vecsched
open Eit

(* A small deterministic stream of channel matrices. *)
let channel seed =
  let state = ref (seed * 48271 mod 0x7FFFFFFF) in
  let next () =
    state := !state * 48271 mod 0x7FFFFFFF;
    float_of_int (!state mod 1000 - 500) /. 1000.
  in
  Array.init 4 (fun i ->
      Array.init 4 (fun j ->
          let base = if i = j then 1.0 else 0.0 in
          Cplx.make (base +. next ()) (next ())))

let () =
  let sigma = 0.5 in
  (* --- 1. correctness over a batch of channels ---------------------- *)
  let channels = List.init 5 (fun k -> channel (k + 1)) in
  List.iteri
    (fun k h ->
      let app = Apps.Qrd.build ~h ~sigma () in
      let reference = Apps.Reference.mgs_qrd h ~sigma in
      (match Apps.Reference.check_qr h ~sigma reference ~eps:1e-9 with
      | Ok () -> ()
      | Error e -> failwith ("reference QR inconsistent: " ^ e));
      (* DSL trace values vs reference, for R's diagonal *)
      let ok = ref true in
      Array.iteri
        (fun i row ->
          let v = Vecsched.Dsl.vector_value row in
          for j = 0 to 3 do
            if not (Cplx.equal ~eps:1e-9 v.(j) reference.Apps.Reference.r.(i).(j))
            then ok := false
          done)
        app.Apps.Qrd.r_rows;
      Format.printf "channel %d: R matches reference: %b@." k !ok)
    channels;

  (* --- 2. throughput of the three regimes --------------------------- *)
  let app = Apps.Qrd.build ~sigma () in
  let compiled = Vecsched.compile_dsl app.Apps.Qrd.ctx in
  match Vecsched.schedule ~budget_ms:15_000. compiled with
  | { schedule = Some sch; _ } ->
    let one_shot = 1. /. float_of_int sch.Vecsched.Schedule.makespan in
    Format.printf "@.one-shot:   %d cc/iteration  -> %.4f iter/cc@."
      sch.Vecsched.Schedule.makespan one_shot;
    let m = 12 in
    let ov = Vecsched.Overlap.run sch ~m in
    Format.printf "overlapped:  M=%d, length %d cc -> %.4f iter/cc (%d reconfigs)@."
      m ov.Vecsched.Overlap.length ov.Vecsched.Overlap.throughput
      ov.Vecsched.Overlap.reconfigurations;
    (match Vecsched.Modulo.solve_including ~budget_ms:30_000. compiled.Vecsched.ir with
    | Some r ->
      Format.printf "modulo:      II=%d (+%d reconfigs) -> %.4f iter/cc@."
        r.Vecsched.Modulo.ii r.Vecsched.Modulo.reconfigurations
        r.Vecsched.Modulo.throughput
    | None -> Format.printf "modulo:      (no kernel within budget)@.");
    Format.printf
      "@.A frame of 1200 subcarriers therefore needs %.0f cc one-shot vs %.0f cc \
       modulo-pipelined.@."
      (1200. /. one_shot)
      (match Vecsched.Modulo.solve_including ~budget_ms:1_000. compiled.Vecsched.ir with
      | Some r -> 1200. *. float_of_int r.Vecsched.Modulo.actual_ii
      | None -> nan)
  | { status; _ } ->
    Format.printf "scheduling failed: %a@." Vecsched.Solve.pp_status status
