(* The full MIMO receiver chain the paper's kernels belong to:
   channel estimate -> MMSE-QRD pre-processing -> per-vector detection.

   §4.1 places QRD "as part of the pre-processing in data detection";
   this example runs the complete story on concrete data:

   1. decompose the (sorted) MMSE-extended channel;
   2. detect a burst of received vectors by rotating them with Q^H and
      back-substituting against R;
   3. schedule + simulate the detection kernel and compare the pipeline
      regimes — detection is a recurrence (back-substitution), so its
      schedule leans on the scalar accelerator and index/merge unit
      where QRD leaned on the vector core.

   Run with:  dune exec examples/detection_chain.exe *)

module Vecsched = Vecsched_core.Vecsched
open Eit

let pp_cvec ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Cplx.pp)
    (Array.to_list v)

let () =
  let h = Apps.Qrd.default_h and sigma = 0.3 in
  (* --- transmit a known burst through the channel ------------------- *)
  let symbols =
    [
      [| Cplx.one; Cplx.make (-1.) 0.; Cplx.i; Cplx.make 0. (-1.) |];
      [| Cplx.make (-1.) 0.; Cplx.i; Cplx.one; Cplx.make 0. (-1.) |];
      [| Cplx.i; Cplx.i; Cplx.make (-1.) 0.; Cplx.one |];
    ]
  in
  let transmit s =
    Array.init 4 (fun i ->
        let acc = ref Cplx.zero in
        for j = 0 to 3 do
          acc := Cplx.mac !acc h.(i).(j) s.(j)
        done;
        !acc)
  in
  List.iteri
    (fun k s ->
      let y = transmit s in
      let est = Apps.Detect.reference ~h ~sigma ~y in
      let err =
        Array.fold_left max 0.
          (Array.mapi (fun i e -> Cplx.abs (Cplx.sub e s.(i))) est)
      in
      Format.printf "vector %d: sent %a -> detected %a (max err %.3f)@." k
        pp_cvec s pp_cvec est err)
    symbols;

  (* --- the detection kernel on the EIT ----------------------------- *)
  let y = transmit (List.hd symbols) in
  let app = Apps.Detect.build ~h ~sigma ~y () in
  let compiled = Vecsched.compile_dsl app.Apps.Detect.ctx in
  Format.printf "@.detection kernel: %a@." Vecsched.Stats.pp
    compiled.Vecsched.stats;
  match Vecsched.schedule ~budget_ms:15_000. compiled with
  | { schedule = Some sch; _ } ->
    Format.printf "schedule: %d cycles, %d slots@."
      sch.Vecsched.Schedule.makespan
      (Vecsched.Schedule.slots_used sch);
    (match Vecsched.run_on_simulator sch with
    | Ok () -> Format.printf "simulator matches reference back-substitution@."
    | Error e -> Format.printf "MISMATCH: %s@." e);
    Format.printf "@.unit occupancy (detection is recurrence-bound):@.%a"
      Sched.Analysis.pp
      (Sched.Analysis.of_schedule sch);
    (* throughput when pipelining detections of a burst *)
    (match Vecsched.Modulo.solve_including ~budget_ms:20_000. compiled.Vecsched.ir with
    | Some r ->
      Format.printf "@.pipelined detection: one vector every %d cycles (%.3f it/cc)@."
        r.Vecsched.Modulo.actual_ii r.Vecsched.Modulo.throughput
    | None -> ())
  | { status; _ } ->
    Format.printf "scheduling failed: %a@." Vecsched.Solve.pp_status status
