(* Memory layout exploration: the Fig. 7/8 access rules in practice.

   First replays the paper's Fig. 8 example — three matrices allocated
   three different ways, of which only one is accessible in a single
   cycle — then sweeps the available memory size for the QRD kernel
   (Table 1) to show that the schedule length is governed by the
   critical path, not by memory, until the allocation becomes
   infeasible.

   Run with:  dune exec examples/memory_exploration.exe *)

open Eit

let () =
  (* Fig. 8 uses a miniature memory: 12 banks would not match the real
     architecture, so we keep 16 banks / 4-bank pages and 3 lines, and
     allocate analogously.  slot = line * banks + bank. *)
  let arch = { Arch.default with lines = 3 } in
  let slot ~bank ~line = Mem.slot_of arch ~bank ~line in
  (* A: vectors 1&3 share bank 0, vectors 2&4 share bank 1. *)
  let a = [ slot ~bank:0 ~line:0; slot ~bank:1 ~line:0;
            slot ~bank:0 ~line:1; slot ~bank:1 ~line:1 ] in
  (* B: all in page 2 (banks 8-11) but B4 on another line. *)
  let b = [ slot ~bank:8 ~line:0; slot ~bank:9 ~line:0;
            slot ~bank:10 ~line:0; slot ~bank:11 ~line:1 ] in
  (* C: different pages, lines may differ across pages. *)
  let c = [ slot ~bank:4 ~line:2; slot ~bank:5 ~line:2;
            slot ~bank:12 ~line:1; slot ~bank:13 ~line:1 ] in
  List.iter
    (fun (name, slots) ->
      match Mem.check_access arch ~reads:slots ~writes:[] with
      | [] -> Format.printf "matrix %s: accessible in one cycle@." name
      | vs ->
        Format.printf "matrix %s: NOT accessible in one cycle (%a)@." name
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
             Mem.pp_violation)
          vs)
    [ ("A", a); ("B", b); ("C", c) ];

  (* ----- Table 1 style sweep on QRD ------------------------------- *)
  Format.printf "@.QRD schedule length vs available memory slots:@.";
  let g =
    (Eit_dsl.Merge.run (Apps.Qrd.graph (Apps.Qrd.build ()))).Eit_dsl.Merge.graph
  in
  List.iter
    (fun slots ->
      let arch = Arch.with_slots Arch.default slots in
      let o =
        Sched.Solve.run ~arch ~budget:(Fd.Search.time_budget 10_000.) g
      in
      match o.Sched.Solve.schedule with
      | Some sch ->
        Format.printf "  %2d slots available: length %d cc, %d used (%a)@." slots
          sch.Sched.Schedule.makespan
          (Sched.Schedule.slots_used sch)
          Sched.Solve.pp_status o.Sched.Solve.status
      | None ->
        Format.printf "  %2d slots available: %a@." slots Sched.Solve.pp_status
          o.Sched.Solve.status)
    [ 64; 32; 16; 10; 8 ]
