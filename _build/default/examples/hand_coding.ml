(* Hand-writing machine code vs the automated flow — the paper's §1
   motivation, experienced directly.

   "A popular approach is to write machine code by hand.  However ...
   coding becomes extremely hard.  The programmer has to select the
   instructions ... come up with a schedule that parallelizes the code
   as much as possible, while respecting the resource and data storage
   limits."

   This example hand-writes an assembly kernel for a small computation,
   makes the classic pipeline-hazard mistake, watches the toolchain
   catch it, fixes it, and then lets the DSL + scheduler produce the
   same kernel automatically.

   Run with:  dune exec examples/hand_coding.exe *)

module Vecsched = Vecsched_core.Vecsched
open Eit

(* The computation: e = (a+b) . (c+d) — two adds, one dot product. *)

let buggy =
  {|
; first attempt: forgot the 7-cycle pipeline latency
.input m[0] = 1, 2, 3, 4
.input m[1] = 4, 3, 2, 1
.input m[2] = 2, 2, 2, 2
.input m[3] = 1, 1, 1, 1
.output n3 -> r0

@0:
  V m[4] <- v_add(m[0], m[1]) @n1
  ; the second add shares the configuration: same cycle is fine
  V m[5] <- v_add(m[2], m[3]) @n2
@3:
  V r0 <- v_dotP(m[4], m[5]) @n3   ; too early!
|}

let fixed =
  {|
.input m[0] = 1, 2, 3, 4
.input m[1] = 4, 3, 2, 1
.input m[2] = 2, 2, 2, 2
.input m[3] = 1, 1, 1, 1
.output n3 -> r0

@0:
  V m[4] <- v_add(m[0], m[1]) @n1
  V m[5] <- v_add(m[2], m[3]) @n2
@7:
  V r0 <- v_dotP(m[4], m[5]) @n3
|}

let try_program label src =
  match Asm.parse src with
  | Error e -> Format.printf "%s: parse error: %s@." label e
  | Ok p -> (
    match Instr.validate_structure p with
    | Error e -> Format.printf "%s: structurally invalid: %s@." label e
    | Ok () -> (
      match Machine.run p with
      | r ->
        let v = List.assoc 3 r.Machine.node_values in
        Format.printf "%s: runs, result %s at cycle %d@." label
          (Value.to_string v) r.Machine.cycles
      | exception Machine.Sim_error e ->
        Format.printf "%s: caught by the simulator -- %a@." label
          Machine.pp_error e))

let () =
  Format.printf "== hand-written, with the classic latency bug ==@.";
  try_program "buggy" buggy;
  Format.printf "@.== hand-written, corrected ==@.";
  try_program "fixed" fixed;

  (* the automated flow: same computation in the DSL *)
  Format.printf "@.== the automated flow (§3) ==@.";
  let ctx = Vecsched.Dsl.create () in
  let a = Vecsched.Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let b = Vecsched.Dsl.vector_input_f ctx [ 4.; 3.; 2.; 1. ] in
  let c = Vecsched.Dsl.vector_input_f ctx [ 2.; 2.; 2.; 2. ] in
  let d = Vecsched.Dsl.vector_input_f ctx [ 1.; 1.; 1.; 1. ] in
  let e = Vecsched.Dsl.v_dotp ctx (Vecsched.Dsl.v_add ctx a b) (Vecsched.Dsl.v_add ctx c d) in
  Vecsched.Dsl.mark_output_scalar ctx e;
  let compiled = Vecsched.compile_dsl ctx in
  match Vecsched.schedule compiled with
  | { schedule = Some sch; _ } ->
    Format.printf
      "scheduler found the same %d-cycle schedule, with memory allocation, \
       automatically:@."
      sch.Vecsched.Schedule.makespan;
    print_string (Asm.print (Vecsched.Codegen.program sch));
    (match Vecsched.run_on_simulator sch with
    | Ok () -> Format.printf "...and it verifies on the simulator.@."
    | Error err -> Format.printf "mismatch: %s@." err)
  | { status; _ } -> Format.printf "no schedule: %a@." Vecsched.Solve.pp_status status
