(* The pipeline-fusion pass (Fig. 6): both patterns, chains, guards, and
   semantics preservation on random programs. *)

open Eit_dsl
open Eit

let outputs_of g =
  List.sort compare
    (List.filter_map
       (fun d ->
         if Ir.succs g d = [] then Some (List.assoc d (Ir.eval g)) else None)
       (Ir.data_nodes g))

let test_pre_fusion () =
  (* conj -> dotp (operand 0): Fig. 6 left *)
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let b = Dsl.vector_input_f ctx [ 2.; 2.; 2.; 2. ] in
  let c = Dsl.v_conj ctx a in
  let _ = Dsl.v_dotp ctx c b in
  let g = Dsl.graph ctx in
  let r = Merge.run g in
  Alcotest.(check int) "one fusion" 1 r.Merge.fusions;
  Alcotest.(check int) "two nodes gone" (Ir.size g - 2) (Ir.size r.Merge.graph);
  (* fused op carries the pre stage *)
  let fused =
    List.find_map
      (fun i ->
        match Ir.opcode r.Merge.graph i with
        | V { pre = Some Pconj; core = Vdotp; _ } -> Some i
        | _ -> None)
      (Ir.op_nodes r.Merge.graph)
  in
  Alcotest.(check bool) "conj;v_dotP present" true (fused <> None);
  Alcotest.(check bool) "values preserved" true
    (List.for_all2 (Value.equal ~eps:1e-9) (outputs_of g) (outputs_of r.Merge.graph))

let test_post_fusion () =
  (* matrix op -> sort on its vector output: Fig. 6 right *)
  let ctx = Dsl.create () in
  let m = Dsl.matrix_input_f ctx [ [1.;2.;3.;4.]; [4.;3.;2.;1.]; [1.;1.;1.;1.]; [2.;2.;2.;2.] ] in
  let s = Dsl.m_squsum ctx m in
  let _sorted = Dsl.v_sort ctx s in
  let g = Dsl.graph ctx in
  let r = Merge.run g in
  Alcotest.(check int) "one fusion" 1 r.Merge.fusions;
  let fused =
    List.exists
      (fun i ->
        match Ir.opcode r.Merge.graph i with
        | V { core = Msqsum; post = Some Qsort; _ } -> true
        | _ -> false)
      (Ir.op_nodes r.Merge.graph)
  in
  Alcotest.(check bool) "m_squsum;sort present" true fused;
  Alcotest.(check bool) "values preserved" true
    (List.for_all2 (Value.equal ~eps:1e-9) (outputs_of g) (outputs_of r.Merge.graph))

let test_chain_fusion () =
  (* conj -> add -> sort collapses to one node *)
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; -2.; 3.; -4. ] in
  let b = Dsl.vector_input_f ctx [ 0.; 1.; 0.; 1. ] in
  let c = Dsl.v_conj ctx a in
  let s = Dsl.v_add ctx c b in
  let _ = Dsl.v_sort ctx s in
  let g = Dsl.graph ctx in
  let r = Merge.run g in
  Alcotest.(check int) "two fusions" 2 r.Merge.fusions;
  Alcotest.(check int) "one op left" 1 (List.length (Ir.op_nodes r.Merge.graph));
  match Ir.opcode r.Merge.graph (List.hd (Ir.op_nodes r.Merge.graph)) with
  | V { pre = Some Pconj; core = Vadd; post = Some Qsort } -> ()
  | op -> Alcotest.failf "unexpected fused op %s" (Opcode.name op)

let test_no_fusion_on_shared_data () =
  (* the pre-op's output is consumed twice: cannot fuse *)
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let c = Dsl.v_conj ctx a in
  let _ = Dsl.v_add ctx c c in
  (* also used as operand 1 *)
  let g = Dsl.graph ctx in
  let r = Merge.run g in
  Alcotest.(check int) "no fusion" 0 r.Merge.fusions

let test_no_fusion_wrong_position () =
  (* pre-op output is operand 1, not operand 0 *)
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let b = Dsl.vector_input_f ctx [ 5.; 6.; 7.; 8. ] in
  let c = Dsl.v_conj ctx a in
  let _ = Dsl.v_sub ctx b c in
  let g = Dsl.graph ctx in
  let r = Merge.run g in
  Alcotest.(check int) "no fusion" 0 r.Merge.fusions

let test_protect () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let c = Dsl.v_conj ctx a in
  let d = Dsl.v_add ctx c a in
  Dsl.mark_output ctx d;
  let g = Dsl.graph ctx in
  let unprotected = Merge.run g in
  Alcotest.(check int) "fusible" 1 unprotected.Merge.fusions;
  let protected_run = Merge.run ~protect:[ Dsl.node_of_vector c ] g in
  Alcotest.(check int) "protected intermediate survives" 0 protected_run.Merge.fusions

let test_data_map () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let c = Dsl.v_conj ctx a in
  let d = Dsl.v_add ctx c a in
  let g = Dsl.graph ctx in
  let r = Merge.run g in
  (* the surviving output maps to a node with the same evaluated value *)
  let new_d = Merge.map_data r (Dsl.node_of_vector d) in
  let v = List.assoc new_d (Ir.eval r.Merge.graph) in
  Alcotest.(check bool) "mapped value" true
    (Value.equal ~eps:1e-9 v (Value.Vector (Dsl.vector_value d)));
  Alcotest.(check bool) "fused intermediate unmapped" true
    (match Merge.map_data r (Dsl.node_of_vector c) with
    | exception Not_found -> true
    | _ -> false)

(* Random programs (reusing the t_dsl generator shape): outputs are
   preserved by fusion, and fusion is idempotent. *)
let random_fusion_preserves =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random fusion preserves outputs" ~count:100
       QCheck2.Gen.(list_size (int_range 1 20) (int_bound 9))
       (fun script ->
         let ctx = Dsl.create () in
         let v0 = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
         let s0 = Dsl.scalar_input_f ctx 3. in
         let vecs = ref [ v0 ] and scas = ref [ s0 ] in
         let pick l k = List.nth l (k mod List.length l) in
         List.iteri
           (fun i op ->
             let v () = pick !vecs (i + 1) and sc () = pick !scas (i + 2) in
             match op with
             | 0 -> vecs := Dsl.v_conj ctx (v ()) :: !vecs
             | 1 -> vecs := Dsl.v_sort ctx (v ()) :: !vecs
             | 2 -> vecs := Dsl.v_neg ctx (v ()) :: !vecs
             | 3 -> vecs := Dsl.v_add ctx (v ()) (v ()) :: !vecs
             | 4 -> vecs := Dsl.v_mul ctx (v ()) (v ()) :: !vecs
             | 5 -> scas := Dsl.v_dotp ctx (v ()) (v ()) :: !scas
             | 6 -> vecs := Dsl.v_scale ctx (v ()) (sc ()) :: !vecs
             | 7 -> vecs := Dsl.v_mask ctx (v ()) 5 :: !vecs
             | 8 -> vecs := Dsl.v_abs ctx (v ()) :: !vecs
             | _ -> scas := Dsl.v_squsum ctx (v ()) :: !scas)
           script;
         let g = Dsl.graph ctx in
         let r = Merge.run g in
         Ir.validate r.Merge.graph = Ok ()
         && List.for_all2 (Value.equal ~eps:1e-6) (outputs_of g)
              (outputs_of r.Merge.graph)
         &&
         (* idempotent: second pass finds nothing *)
         (Merge.run r.Merge.graph).Merge.fusions = 0))

let suite =
  [
    Alcotest.test_case "pre fusion (Fig. 6 left)" `Quick test_pre_fusion;
    Alcotest.test_case "post fusion (Fig. 6 right)" `Quick test_post_fusion;
    Alcotest.test_case "chain fusion" `Quick test_chain_fusion;
    Alcotest.test_case "shared data blocks fusion" `Quick test_no_fusion_on_shared_data;
    Alcotest.test_case "operand position guard" `Quick test_no_fusion_wrong_position;
    Alcotest.test_case "protect" `Quick test_protect;
    Alcotest.test_case "data map" `Quick test_data_map;
    random_fusion_preserves;
  ]
