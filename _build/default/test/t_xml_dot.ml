(* XML round-trips and DOT output sanity. *)

open Eit_dsl
open Eit

let graphs_equal g1 g2 =
  Ir.size g1 = Ir.size g2
  && Ir.edge_count g1 = Ir.edge_count g2
  && List.for_all2
       (fun n1 n2 ->
         n1.Ir.id = n2.Ir.id && n1.Ir.cat = n2.Ir.cat && n1.Ir.label = n2.Ir.label
         && (match (n1.Ir.op, n2.Ir.op) with
            | Some a, Some b -> Opcode.config_equal a b
            | None, None -> true
            | _ -> false)
         && Ir.preds g1 n1.Ir.id = Ir.preds g2 n2.Ir.id)
       (Ir.nodes g1) (Ir.nodes g2)

let test_roundtrip_matmul () =
  let g = Apps.Matmul.graph (Apps.Matmul.build ()) in
  let g' = Xml.of_string (Xml.to_string g) in
  Alcotest.(check bool) "structurally equal" true (graphs_equal g g');
  (* values survive: evaluation agrees *)
  let v = List.sort compare (Ir.eval g) in
  let v' = List.sort compare (Ir.eval g') in
  Alcotest.(check bool) "evaluates identically" true
    (List.for_all2 (fun (i, a) (j, b) -> i = j && Value.equal ~eps:1e-12 a b) v v')

let test_roundtrip_qrd () =
  let g = Apps.Qrd.graph (Apps.Qrd.build ()) in
  Alcotest.(check bool) "qrd round-trips" true
    (graphs_equal g (Xml.of_string (Xml.to_string g)))

let test_escaping () =
  let b = Ir.builder () in
  let a =
    Ir.add_data b ~label:"we<ird & \"names\">" ~value:(Value.vector_of_floats [1.;2.;3.;4.]) `Vector
  in
  let r = Ir.add_data b `Scalar in
  ignore (Ir.add_op b (Opcode.v Vsqsum) ~args:[ a ] ~result:r);
  let g = Ir.freeze b in
  let g' = Xml.of_string (Xml.to_string g) in
  Alcotest.(check string) "label preserved" "we<ird & \"names\">"
    (Ir.node g' 0).Ir.label

let test_file_io () =
  let g = Apps.Arf.graph (Apps.Arf.build ()) in
  let path = Filename.temp_file "vecsched" ".xml" in
  Xml.save path g;
  let g' = Xml.load path in
  Sys.remove path;
  Alcotest.(check bool) "file round-trip" true (graphs_equal g g')

let test_malformed () =
  Alcotest.(check bool) "garbage rejected" true
    (match Xml.of_string "<graph><node id=\"0\"/></graph>" with
    | exception Failure _ -> true
    | _ -> false)

let test_dot_output () =
  let g = Apps.Matmul.graph (Apps.Matmul.build ()) in
  let dot = Dot.to_string g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  (* one node line per IR node, one edge line per IR edge *)
  let contains_sub line sub =
    let n = String.length sub and m = String.length line in
    let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
    go 0
  in
  let lines = String.split_on_char '\n' dot in
  let node_lines = List.filter (fun l -> contains_sub l "[shape=") lines in
  let edge_lines = List.filter (fun l -> contains_sub l " -> ") lines in
  Alcotest.(check int) "node lines" (Ir.size g) (List.length node_lines);
  Alcotest.(check int) "edge lines" (Ir.edge_count g) (List.length edge_lines)

let suite =
  [
    Alcotest.test_case "matmul xml round-trip" `Quick test_roundtrip_matmul;
    Alcotest.test_case "qrd xml round-trip" `Quick test_roundtrip_qrd;
    Alcotest.test_case "attribute escaping" `Quick test_escaping;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "malformed input" `Quick test_malformed;
    Alcotest.test_case "dot output" `Quick test_dot_output;
  ]
