(* Schedule validator: accepts solver output, rejects every kind of
   corruption (failure injection). *)

open Eit_dsl

let solved_qrd =
  lazy
    (let g = (Merge.run (Apps.Qrd.graph (Apps.Qrd.build ()))).Merge.graph in
     let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
     Option.get o.Sched.Solve.schedule)

let copy sch =
  { sch with Sched.Schedule.start = Array.copy sch.Sched.Schedule.start }

let has_violation where sch =
  List.exists
    (fun v -> v.Sched.Schedule.where = where)
    (Sched.Schedule.validate sch)

let test_valid () =
  let sch = Lazy.force solved_qrd in
  Alcotest.(check (list string)) "no violations" []
    (List.map
       (fun v -> Format.asprintf "%a" Sched.Schedule.pp_violation v)
       (Sched.Schedule.validate sch))

let test_precedence_injection () =
  let sch = copy (Lazy.force solved_qrd) in
  (* pull some operation before its operands are ready *)
  let g = sch.Sched.Schedule.ir in
  let victim =
    List.find
      (fun i -> List.exists (fun p -> Ir.producer g p <> None) (Ir.preds g i))
      (Ir.op_nodes g)
  in
  sch.Sched.Schedule.start.(victim) <- 0;
  Alcotest.(check bool) "caught" true
    (Sched.Schedule.validate sch <> [])

let test_lane_overload_injection () =
  let sch = copy (Lazy.force solved_qrd) in
  let g = sch.Sched.Schedule.ir in
  (* put five vector ops in the same cycle *)
  let vops =
    List.filter
      (fun i -> Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core)
      (Ir.op_nodes g)
  in
  List.iteri
    (fun k i -> if k < 5 then sch.Sched.Schedule.start.(i) <- 500 + 0)
    vops;
  Alcotest.(check bool) "caught" true (Sched.Schedule.validate sch <> [])

let test_config_injection () =
  let sch = copy (Lazy.force solved_qrd) in
  let g = sch.Sched.Schedule.ir in
  (* co-schedule two differently-configured vector ops far from others *)
  let a =
    List.find
      (fun i -> Eit.Opcode.config_equal (Ir.opcode g i) (Eit.Opcode.v Vsqsum))
      (Ir.op_nodes g)
  in
  let b =
    List.find
      (fun i -> Eit.Opcode.config_equal (Ir.opcode g i) (Eit.Opcode.v Vscale))
      (Ir.op_nodes g)
  in
  sch.Sched.Schedule.start.(a) <- 700;
  sch.Sched.Schedule.start.(b) <- 700;
  Alcotest.(check bool) "caught" true (has_violation "configuration" sch
                                       || Sched.Schedule.validate sch <> [])

let test_slot_corruption () =
  let base = Lazy.force solved_qrd in
  (* map every vector datum to slot 0: lifetimes must clash *)
  let sch =
    { base with Sched.Schedule.slot = List.map (fun (d, _) -> (d, 0)) base.Sched.Schedule.slot }
  in
  Alcotest.(check bool) "caught" true
    (has_violation "slot-reuse" sch || has_violation "memory-access" sch)

let test_out_of_range_slot () =
  let base = Lazy.force solved_qrd in
  let sch =
    { base with
      Sched.Schedule.slot =
        (match base.Sched.Schedule.slot with
        | (d, _) :: rest -> (d, 9999) :: rest
        | [] -> []) }
  in
  Alcotest.(check bool) "caught" true (has_violation "memory" sch)

let test_missing_slot () =
  let base = Lazy.force solved_qrd in
  let sch = { base with Sched.Schedule.slot = List.tl base.Sched.Schedule.slot } in
  Alcotest.(check bool) "caught" true (has_violation "memory" sch)

let test_makespan_lie () =
  let base = Lazy.force solved_qrd in
  let sch = { base with Sched.Schedule.makespan = base.Sched.Schedule.makespan + 5 } in
  Alcotest.(check bool) "caught" true (has_violation "makespan" sch)

let test_data_start_lie () =
  let sch = copy (Lazy.force solved_qrd) in
  let g = sch.Sched.Schedule.ir in
  let d = List.find (fun d -> Ir.producer g d <> None) (Ir.data_nodes g) in
  sch.Sched.Schedule.start.(d) <- sch.Sched.Schedule.start.(d) + 1;
  Alcotest.(check bool) "caught" true (has_violation "data-start" sch)

let test_lifetime_and_slots_used () =
  let sch = Lazy.force solved_qrd in
  let g = sch.Sched.Schedule.ir in
  List.iter
    (fun d ->
      if Ir.category g d = Ir.Vector_data then begin
        let life = Sched.Schedule.lifetime sch d in
        Alcotest.(check bool) "positive" true (life >= 1);
        List.iter
          (fun c ->
            Alcotest.(check bool) "covers uses" true
              (sch.Sched.Schedule.start.(d) + life > sch.Sched.Schedule.start.(c)))
          (Ir.succs g d)
      end)
    (Ir.data_nodes g);
  Alcotest.(check bool) "slots used sane" true
    (Sched.Schedule.slots_used sch >= 1
    && Sched.Schedule.slots_used sch <= Eit.Arch.slots sch.Sched.Schedule.arch)

let suite =
  [
    Alcotest.test_case "solver output validates" `Quick test_valid;
    Alcotest.test_case "precedence injection" `Quick test_precedence_injection;
    Alcotest.test_case "lane overload injection" `Quick test_lane_overload_injection;
    Alcotest.test_case "config injection" `Quick test_config_injection;
    Alcotest.test_case "slot corruption" `Quick test_slot_corruption;
    Alcotest.test_case "out-of-range slot" `Quick test_out_of_range_slot;
    Alcotest.test_case "missing slot" `Quick test_missing_slot;
    Alcotest.test_case "makespan lie" `Quick test_makespan_lie;
    Alcotest.test_case "data-start lie" `Quick test_data_start_lie;
    Alcotest.test_case "lifetimes + slots used" `Quick test_lifetime_and_slots_used;
  ]
