(* Conditional constraints (eqs. 7-9 building blocks) and the slot
   geometry channeling (eq. 6). *)

open Fd

let test_implies_eq_forward () =
  let s = Store.create () in
  let p = Store.interval_var s 0 3 and q = Store.interval_var s 0 3 in
  let l = Store.interval_var s 0 3 and m = Store.interval_var s 0 3 in
  Cond.implies_eq s (p, q) (l, m);
  Store.assign s p 2;
  Store.assign s q 2;
  Store.assign s l 1;
  Store.propagate s;
  Alcotest.(check int) "m forced equal" 1 (Store.value m)

let test_implies_eq_contrapositive () =
  let s = Store.create () in
  let p = Store.interval_var s 0 3 and q = Store.interval_var s 0 3 in
  let l = Store.interval_var s 0 1 and m = Store.interval_var s 2 3 in
  (* lines can never be equal -> pages must differ *)
  Cond.implies_eq s (p, q) (l, m);
  Store.assign s p 1;
  Store.propagate s;
  Alcotest.(check bool) "q <> 1" false (Dom.mem 1 (Store.dom q))

let test_guarded_inactive () =
  let s = Store.create () in
  let a = Store.interval_var s 0 1 and b = Store.interval_var s 2 3 in
  let p = Store.interval_var s 0 0 and q = Store.interval_var s 0 0 in
  let l = Store.interval_var s 0 1 and m = Store.interval_var s 2 3 in
  (* guard domains disjoint: implication never fires even though pages
     are equal and lines cannot be *)
  Cond.guarded_implies_eq s ~guard:(a, b) (p, q) (l, m);
  Store.propagate s;
  Alcotest.(check int) "l untouched" 0 (Store.vmin l);
  Alcotest.(check int) "m untouched" 2 (Store.vmin m)

let test_guarded_active () =
  let s = Store.create () in
  let a = Store.interval_var s 0 3 and b = Store.interval_var s 0 3 in
  let p = Store.const s 1 and q = Store.const s 1 in
  let l = Store.interval_var s 0 3 and m = Store.interval_var s 0 3 in
  Cond.guarded_implies_eq s ~guard:(a, b) (p, q) (l, m);
  Store.assign s a 2;
  Store.assign s b 2;
  Store.assign s m 3;
  Store.propagate s;
  Alcotest.(check int) "l forced" 3 (Store.value l)

let test_same_guard_neq () =
  let s = Store.create () in
  let a = Store.interval_var s 0 3 and b = Store.interval_var s 0 3 in
  let x = Store.interval_var s 0 3 and y = Store.interval_var s 0 3 in
  Cond.same_guard_neq s ~guard:(a, b) x y;
  Store.assign s a 1;
  Store.assign s b 1;
  Store.assign s x 2;
  Store.propagate s;
  Alcotest.(check bool) "y <> 2" false (Dom.mem 2 (Store.dom y))

(* geometry: slot <-> (bank, line, page), EIT parameters *)

let test_geometry_forward () =
  let s = Store.create () in
  let slot = Store.interval_var s 0 63 in
  let g = Geometry.of_slot s ~banks:16 ~page_size:4 slot in
  Store.assign s slot 37;
  Store.propagate s;
  Alcotest.(check int) "bank" 5 (Store.value g.Geometry.bank);
  Alcotest.(check int) "line" 2 (Store.value g.Geometry.line);
  Alcotest.(check int) "page" 1 (Store.value g.Geometry.page)

let test_geometry_backward () =
  let s = Store.create () in
  let slot = Store.interval_var s 0 63 in
  let g = Geometry.of_slot s ~banks:16 ~page_size:4 slot in
  Store.assign s g.Geometry.page 3;
  Store.propagate s;
  (* page 3 = banks 12..15, any line: slots 12..15, 28..31, 44..47, 60..63 *)
  Alcotest.(check int) "count" 16 (Dom.size (Store.dom slot));
  Alcotest.(check bool) "12 in" true (Dom.mem 12 (Store.dom slot));
  Alcotest.(check bool) "16 out" false (Dom.mem 16 (Store.dom slot))

let geometry_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"geometry channeling is exact" ~count:200
       QCheck2.Gen.(int_range 0 63)
       (fun k ->
         let s = Store.create () in
         let slot = Store.interval_var s 0 63 in
         let g = Geometry.of_slot s ~banks:16 ~page_size:4 slot in
         Store.assign s slot k;
         Store.propagate s;
         Store.value g.Geometry.bank = k mod 16
         && Store.value g.Geometry.line = k / 16
         && Store.value g.Geometry.page = k mod 16 / 4))

let test_ground_helpers () =
  Alcotest.(check int) "line" 3 (Geometry.line_of_slot ~banks:16 55);
  Alcotest.(check int) "bank" 7 (Geometry.bank_of_slot ~banks:16 55);
  Alcotest.(check int) "page" 1 (Geometry.page_of_slot ~banks:16 ~page_size:4 55)

let suite =
  [
    Alcotest.test_case "implies_eq forward" `Quick test_implies_eq_forward;
    Alcotest.test_case "implies_eq contrapositive" `Quick test_implies_eq_contrapositive;
    Alcotest.test_case "guarded inactive" `Quick test_guarded_inactive;
    Alcotest.test_case "guarded active" `Quick test_guarded_active;
    Alcotest.test_case "same_guard_neq" `Quick test_same_guard_neq;
    Alcotest.test_case "geometry forward" `Quick test_geometry_forward;
    Alcotest.test_case "geometry backward" `Quick test_geometry_backward;
    Alcotest.test_case "geometry helpers" `Quick test_ground_helpers;
    geometry_oracle;
  ]
