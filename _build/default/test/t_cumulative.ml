(* Cumulative: ground checker correctness and solver completeness on
   random task sets, compared against brute force. *)

open Fd

let test_check_basic () =
  Alcotest.(check bool) "fits" true
    (Cumulative.check ~starts:[| 0; 0; 1 |] ~durations:[| 1; 1; 1 |]
       ~resources:[| 2; 2; 4 |] ~limit:4);
  Alcotest.(check bool) "overload" false
    (Cumulative.check ~starts:[| 0; 0 |] ~durations:[| 2; 1 |]
       ~resources:[| 3; 2 |] ~limit:4);
  Alcotest.(check bool) "empty" true
    (Cumulative.check ~starts:[||] ~durations:[||] ~resources:[||] ~limit:1)

let test_post_rejects_oversized () =
  let s = Store.create () in
  let x = Store.interval_var s 0 5 in
  Alcotest.check_raises "task wider than limit"
    (Invalid_argument "Cumulative.post: task exceeds resource limit") (fun () ->
      Cumulative.post s ~starts:[| x |] ~durations:[| 1 |] ~resources:[| 5 |]
        ~limit:4)

let test_serializes_unit_resource () =
  (* 3 unit tasks on capacity 1: optimal makespan 3 *)
  let s = Store.create () in
  let vars = Array.init 3 (fun _ -> Store.interval_var s 0 10) in
  Cumulative.post s ~starts:vars ~durations:[| 1; 1; 1 |] ~resources:[| 1; 1; 1 |]
    ~limit:1;
  let obj = Store.interval_var s 0 20 in
  Arith.max_of s (Array.to_list vars) obj;
  match
    Search.minimize s
      [ Search.phase ~var_select:Search.smallest_min (Array.to_list vars) ]
      ~objective:obj
      ~on_solution:(fun () -> Array.map Store.value vars)
  with
  | Search.Solution (starts, _) ->
    let l = List.sort compare (Array.to_list starts) in
    Alcotest.(check (list int)) "serialized" [ 0; 1; 2 ] l
  | _ -> Alcotest.fail "expected optimal solution"

(* Random instances: solutions found by exhaustive labelling equal the
   brute-force solutions of the cumulative definition. *)
let gen_instance =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* durations = list_repeat n (int_range 0 3) in
    let* resources = list_repeat n (int_range 0 3) in
    let* limit = int_range 1 4 in
    let* dmax = int_range 1 4 in
    return (durations, resources, limit, dmax))

let oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"cumulative = brute force" ~count:150 gen_instance
       (fun (durations, resources, limit, dmax) ->
         QCheck2.assume (List.for_all (fun r -> r <= limit) resources);
         let n = List.length durations in
         let domains = List.init n (fun _ -> List.init (dmax + 1) Fun.id) in
         let expected =
           T_arith.brute domains (fun starts ->
               Cumulative.check ~starts:(Array.of_list starts)
                 ~durations:(Array.of_list durations)
                 ~resources:(Array.of_list resources)
                 ~limit)
         in
         let s = Store.create () in
         let vars = List.init n (fun _ -> Store.interval_var s 0 dmax) in
         match
           Cumulative.post s
             ~starts:(Array.of_list vars)
             ~durations:(Array.of_list durations)
             ~resources:(Array.of_list resources)
             ~limit
         with
         | () -> T_arith.all_solutions s vars = expected
         | exception Store.Fail _ -> expected = []))

let suite =
  [
    Alcotest.test_case "ground checker" `Quick test_check_basic;
    Alcotest.test_case "rejects oversized task" `Quick test_post_rejects_oversized;
    Alcotest.test_case "serializes on unit resource" `Quick test_serializes_unit_resource;
    oracle;
  ]

(* ---------------- variable durations (paper: "all parameters can be
   either domain variables or integers") ---------------- *)

let gen_var_instance =
  QCheck2.Gen.(
    let* n = int_range 1 3 in
    let* resources = list_repeat n (int_range 0 3) in
    let* limit = int_range 1 4 in
    let* smax = int_range 1 3 in
    let* dmax = int_range 1 3 in
    return (n, resources, limit, smax, dmax))

let var_duration_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"variable-duration cumulative = brute force"
       ~count:100 gen_var_instance (fun (n, resources, limit, smax, dmax) ->
         QCheck2.assume (List.for_all (fun r -> r <= limit) resources);
         let domains =
           List.concat
             (List.init n (fun _ ->
                  [ List.init (smax + 1) Fun.id; List.init (dmax + 1) Fun.id ]))
         in
         let expected =
           T_arith.brute domains (fun vals ->
               let rec unpack = function
                 | s :: d :: rest ->
                   let ss, ds = unpack rest in
                   (s :: ss, d :: ds)
                 | [] -> ([], [])
                 | _ -> assert false
               in
               let ss, ds = unpack vals in
               Cumulative.check ~starts:(Array.of_list ss)
                 ~durations:(Array.of_list ds)
                 ~resources:(Array.of_list resources)
                 ~limit)
         in
         let s = Store.create () in
         let starts = Array.init n (fun _ -> Store.interval_var s 0 smax) in
         let durations = Array.init n (fun _ -> Store.interval_var s 0 dmax) in
         let vars =
           List.concat (List.init n (fun i -> [ starts.(i); durations.(i) ]))
         in
         match
           Cumulative.post_var s ~starts ~durations
             ~resources:(Array.of_list resources) ~limit
         with
         | () -> T_arith.all_solutions s vars = expected
         | exception Store.Fail _ -> expected = []))

let test_var_duration_pruning () =
  (* two tasks, capacity 1: t0 fixed at [0, d) with d in 1..5; t1 fixed
     at start 3 -> d <= 3 *)
  let s = Store.create () in
  let s0 = Store.const s 0 and s1 = Store.const s 3 in
  let d0 = Store.interval_var s 1 5 and d1 = Store.const s 2 in
  Cumulative.post_var s ~starts:[| s0; s1 |] ~durations:[| d0; d1 |]
    ~resources:[| 1; 1 |] ~limit:1;
  Store.propagate s;
  Alcotest.(check int) "duration capped" 3 (Store.vmax d0)

let suite =
  suite @ [ var_duration_oracle;
            Alcotest.test_case "variable duration pruning" `Quick test_var_duration_pruning ]
