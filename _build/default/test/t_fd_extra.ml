(* Element, reified booleans, Hall-interval alldiff, solve_all and
   restart search — all against brute-force oracles. *)

open Fd

(* ---------------- Element ---------------- *)

let element_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"element = brute force" ~count:200
       QCheck2.Gen.(
         pair
           (list_size (int_range 1 4) (list_size (int_range 1 3) (int_range 0 6)))
           (list_size (int_range 1 3) (int_range 0 6)))
       (fun (table, zdom) ->
         let table = List.map (List.sort_uniq compare) table in
         let zdom = List.sort_uniq compare zdom in
         let n = List.length table in
         let s = Store.create () in
         let xs = Array.of_list (List.map (fun d -> Store.new_var s (Dom.of_list d)) table) in
         let index = Store.interval_var s 0 (n + 1) in
         let z = Store.new_var s (Dom.of_list zdom) in
         let vars = (index :: z :: Array.to_list xs) in
         let expected =
           let domains =
             List.init (n + 2) Fun.id :: zdom :: table
           in
           T_arith.brute domains (function
             | i :: zv :: xvals -> i < n && List.nth xvals i = zv
             | _ -> assert false)
         in
         match Element.post s ~index xs z with
         | () -> T_arith.all_solutions s vars = expected
         | exception Store.Fail _ -> expected = []))

let test_element_const () =
  let s = Store.create () in
  let index = Store.interval_var s 0 3 in
  let z = Store.interval_var s 0 100 in
  Element.post_const s ~index [| 10; 20; 30; 40 |] z;
  Store.remove_below s z 25;
  Store.propagate s;
  Alcotest.(check int) "index pruned" 2 (Store.vmin index);
  Store.assign s index 3;
  Store.propagate s;
  Alcotest.(check int) "z fixed" 40 (Store.value z)

(* ---------------- Reified ---------------- *)

let reif_oracle name post pred =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:200
       QCheck2.Gen.(
         pair
           (list_size (int_range 1 3) (int_range (-4) 4))
           (list_size (int_range 1 3) (int_range (-4) 4)))
       (fun (xd, yd) ->
         let xd = List.sort_uniq compare xd and yd = List.sort_uniq compare yd in
         let s = Store.create () in
         let x = Store.new_var s (Dom.of_list xd) in
         let y = Store.new_var s (Dom.of_list yd) in
         let b = Reif.bool_var s in
         post s x y b;
         let expected =
           T_arith.brute [ xd; yd; [ 0; 1 ] ] (function
             | [ xv; yv; bv ] -> bv = (if pred xv yv then 1 else 0)
             | _ -> assert false)
         in
         T_arith.all_solutions s [ x; y; b ] = expected))

let test_conj_disj () =
  let s = Store.create () in
  let a = Reif.bool_var s and b = Reif.bool_var s and c = Reif.bool_var s in
  let r = Reif.bool_var s in
  Reif.conj s [ a; b; c ] r;
  Store.assign s r 1;
  Store.propagate s;
  Alcotest.(check bool) "all forced" true
    (Reif.is_true a && Reif.is_true b && Reif.is_true c);
  let s = Store.create () in
  let a = Reif.bool_var s and b = Reif.bool_var s in
  let r = Reif.bool_var s in
  Reif.disj s [ a; b ] r;
  Store.assign s r 0;
  Store.propagate s;
  Alcotest.(check bool) "all false" true (Reif.is_false a && Reif.is_false b);
  let s = Store.create () in
  let a = Reif.bool_var s and b = Reif.bool_var s in
  let r = Reif.bool_var s in
  Reif.disj s [ a; b ] r;
  Store.assign s r 1;
  Store.assign s a 0;
  Store.propagate s;
  Alcotest.(check bool) "last one forced" true (Reif.is_true b)

let test_negation_cardinality () =
  let s = Store.create () in
  let a = Reif.bool_var s and b = Reif.bool_var s in
  Reif.negation s a b;
  Store.assign s a 1;
  Store.propagate s;
  Alcotest.(check bool) "negated" true (Reif.is_false b);
  let s = Store.create () in
  let bs = List.init 4 (fun _ -> Reif.bool_var s) in
  let total = Store.interval_var s 3 3 in
  Reif.bool_sum s bs total;
  List.iteri (fun i x -> if i < 1 then Store.assign s x 0) bs;
  Store.propagate s;
  Alcotest.(check bool) "rest forced true" true
    (List.for_all Reif.is_true (List.tl bs))

(* ---------------- Alldiff ---------------- *)

let alldiff_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"hall alldiff = brute force" ~count:200
       QCheck2.Gen.(list_size (int_range 2 4) (list_size (int_range 1 4) (int_range 0 5)))
       (fun raw ->
         let domains = List.map (List.sort_uniq compare) raw in
         let s = Store.create () in
         let vars = List.map (fun d -> Store.new_var s (Dom.of_list d)) domains in
         let expected =
           T_arith.brute domains (fun vals ->
               List.length (List.sort_uniq compare vals) = List.length vals)
         in
         match Alldiff.post s vars with
         | () -> T_arith.all_solutions s vars = expected
         | exception Store.Fail _ -> expected = []))

let test_hall_pruning_strength () =
  (* x, y in {1,2}; z in {1,2,3}: Hall set {x,y} forces z = 3 — the
     pairwise decomposition cannot see this without search *)
  let s = Store.create () in
  let x = Store.interval_var s 1 2 in
  let y = Store.interval_var s 1 2 in
  let z = Store.interval_var s 1 3 in
  Alldiff.post s [ x; y; z ];
  Store.propagate s;
  Alcotest.(check int) "z forced by Hall interval" 3 (Store.value z)

let test_pigeonhole_detected_at_root () =
  let s = Store.create () in
  let vars = List.init 4 (fun _ -> Store.interval_var s 1 3) in
  Alcotest.(check bool) "4 pigeons, 3 holes" true
    (match Alldiff.post s vars with
    | exception Store.Fail _ -> true
    | () -> false)

(* ---------------- solve_all / restarts ---------------- *)

let test_solve_all () =
  let s = Store.create () in
  let x = Store.interval_var s 0 2 and y = Store.interval_var s 0 2 in
  Arith.neq s x y;
  let sols, st =
    Search.solve_all s [ Search.phase [ x; y ] ] ~on_solution:(fun () ->
        (Store.value x, Store.value y))
  in
  Alcotest.(check int) "six solutions" 6 (List.length sols);
  Alcotest.(check bool) "exhaustive" true st.Search.optimal;
  Alcotest.(check bool) "store restored" true
    (Dom.size (Store.dom x) = 3 && Dom.size (Store.dom y) = 3)

let test_solve_all_limit () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let sols, st =
    Search.solve_all ~limit:4 s [ Search.phase [ x ] ] ~on_solution:(fun () ->
        Store.value x)
  in
  Alcotest.(check int) "limited" 4 (List.length sols);
  Alcotest.(check bool) "not exhaustive" false st.Search.optimal

let test_luby () =
  Alcotest.(check (list int)) "prefix"
    [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ]
    (List.init 15 (fun i -> Search.luby (i + 1)))

let test_minimize_restarts () =
  (* same optimum as plain minimize on a small problem *)
  let build () =
    let s = Store.create () in
    let vars = List.init 5 (fun _ -> Store.interval_var s 0 8) in
    Arith.all_different s vars;
    let obj = Store.interval_var s 0 100 in
    Arith.sum s vars obj;
    (s, vars, obj)
  in
  let s1, v1, o1 = build () in
  let plain =
    match
      Search.minimize s1 [ Search.phase v1 ] ~objective:o1 ~on_solution:(fun () ->
          Store.vmin o1)
    with
    | Search.Solution (v, _) -> v
    | _ -> Alcotest.fail "plain failed"
  in
  let s2, v2, o2 = build () in
  match
    Search.minimize_restarts ~base:16 s2 [ Search.phase v2 ] ~objective:o2
      ~on_solution:(fun () -> Store.vmin o2)
  with
  | Search.Solution (v, st) ->
    Alcotest.(check int) "same optimum" plain v;
    Alcotest.(check bool) "proof" true st.Search.optimal
  | _ -> Alcotest.fail "restarts failed"

let suite =
  [
    element_oracle;
    Alcotest.test_case "element const table" `Quick test_element_const;
    reif_oracle "leq_iff = brute force" Reif.leq_iff (fun x y -> x <= y);
    reif_oracle "eq_iff = brute force" Reif.eq_iff (fun x y -> x = y);
    Alcotest.test_case "conj/disj" `Quick test_conj_disj;
    Alcotest.test_case "negation/cardinality" `Quick test_negation_cardinality;
    alldiff_oracle;
    Alcotest.test_case "Hall pruning strength" `Quick test_hall_pruning_strength;
    Alcotest.test_case "pigeonhole at root" `Quick test_pigeonhole_detected_at_root;
    Alcotest.test_case "solve_all" `Quick test_solve_all;
    Alcotest.test_case "solve_all limit" `Quick test_solve_all_limit;
    Alcotest.test_case "luby sequence" `Quick test_luby;
    Alcotest.test_case "minimize with restarts" `Quick test_minimize_restarts;
  ]

(* ---------------- global cardinality ---------------- *)

let gcc_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"gcc = brute force" ~count:200
       QCheck2.Gen.(
         pair
           (list_repeat 3 (list_size (int_range 1 3) (int_range 0 3)))
           (list_size (int_range 1 3)
              (triple (int_range 0 3) (int_range 0 2) (int_range 0 3))))
       (fun (domains, raw_cards) ->
         let domains = List.map (List.sort_uniq compare) domains in
         let cards =
           List.map (fun (v, lo, hi) -> (v, min lo hi, max lo hi)) raw_cards
         in
         let count v vals = List.length (List.filter (( = ) v) vals) in
         let expected =
           T_arith.brute domains (fun vals ->
               List.for_all
                 (fun (v, lo, hi) -> count v vals >= lo && count v vals <= hi)
                 cards)
         in
         let s = Store.create () in
         let vars = List.map (fun d -> Store.new_var s (Dom.of_list d)) domains in
         match Gcc.post s vars cards with
         | () -> T_arith.all_solutions s vars = expected
         | exception Store.Fail _ -> expected = []))

let test_gcc_propagation () =
  (* three vars over {0,1}; value 0 capped at 1; once one var is 0 the
     others lose it *)
  let s = Store.create () in
  let vars = List.init 3 (fun _ -> Store.interval_var s 0 1) in
  Gcc.post s vars [ (0, 0, 1) ];
  Store.assign s (List.hd vars) 0;
  Store.propagate s;
  List.iter
    (fun x -> Alcotest.(check int) "forced to 1" 1 (Store.value x))
    (List.tl vars);
  (* lower bound: value 5 needed twice but only two vars can take it *)
  let s = Store.create () in
  let a = Store.new_var s (Dom.of_list [ 4; 5 ]) in
  let b = Store.new_var s (Dom.of_list [ 5; 6 ]) in
  let c = Store.new_var s (Dom.of_list [ 7 ]) in
  Gcc.post s [ a; b; c ] [ (5, 2, 3) ];
  Store.propagate s;
  Alcotest.(check int) "a forced" 5 (Store.value a);
  Alcotest.(check int) "b forced" 5 (Store.value b)

let suite =
  suite
  @ [ gcc_oracle; Alcotest.test_case "gcc propagation" `Quick test_gcc_propagation ]
