test/t_modulo.ml: Alcotest Apps Arch Array Eit Eit_dsl Fun Ir Lazy List Merge Opcode Result Sched
