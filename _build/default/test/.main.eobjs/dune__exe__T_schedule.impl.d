test/t_schedule.ml: Alcotest Apps Array Eit Eit_dsl Fd Format Ir Lazy List Merge Option Sched
