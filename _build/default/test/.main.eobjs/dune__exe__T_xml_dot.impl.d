test/t_xml_dot.ml: Alcotest Apps Dot Eit Eit_dsl Filename Ir List Opcode String Sys Value Xml
