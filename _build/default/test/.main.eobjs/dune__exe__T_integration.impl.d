test/t_integration.ml: Alcotest Apps Fd Format List Option QCheck2 QCheck_alcotest Sched String Vecsched_core
