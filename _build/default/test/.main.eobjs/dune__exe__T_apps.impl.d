test/t_apps.ml: Alcotest Apps Array Cplx Dsl Eit Eit_dsl Fd Ir List Printf QCheck2 QCheck_alcotest Sched Stats Value
