test/t_model_solve.ml: Alcotest Apps Arch Dsl Eit Eit_dsl Fd Ir List Merge Sched
