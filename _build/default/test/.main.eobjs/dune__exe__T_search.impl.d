test/t_search.ml: Alcotest Arith Array Cumulative Dom Fd Fun List QCheck2 QCheck_alcotest Search Store T_arith
