test/t_cond_geometry.ml: Alcotest Cond Dom Fd Geometry QCheck2 QCheck_alcotest Store
