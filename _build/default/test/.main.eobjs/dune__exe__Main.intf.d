test/main.mli:
