test/t_opcode.ml: Alcotest Array Cplx Eit List Opcode Printf Value
