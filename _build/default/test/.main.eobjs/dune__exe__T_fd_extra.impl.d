test/t_fd_extra.ml: Alcotest Alldiff Arith Array Dom Element Fd Fun Gcc List QCheck2 QCheck_alcotest Reif Search Store T_arith
