test/t_ir.ml: Alcotest Arch Array Cplx Eit Eit_dsl Fun Ir List Opcode Value
