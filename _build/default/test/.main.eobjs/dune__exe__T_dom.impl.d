test/t_dom.ml: Alcotest Dom Fd List QCheck2 QCheck_alcotest
