test/t_arch_mem.ml: Alcotest Arch Array Cplx Eit List Mem Opcode QCheck2 QCheck_alcotest Value
