test/t_cumulative.ml: Alcotest Arith Array Cumulative Fd Fun List QCheck2 QCheck_alcotest Search Store T_arith
