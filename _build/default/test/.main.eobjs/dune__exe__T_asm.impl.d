test/t_asm.ml: Alcotest Apps Arch Asm Cplx Eit Eit_dsl Fd Instr List Machine Option Printf Result Sched String Value
