test/t_codegen.ml: Alcotest Apps Array Dsl Eit Eit_dsl Fd Ir List Merge Option Printf Sched
