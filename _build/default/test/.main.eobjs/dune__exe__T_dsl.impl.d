test/t_dsl.ml: Alcotest Array Cplx Dsl Eit Eit_dsl Ir List QCheck2 QCheck_alcotest Value
