test/t_merge.ml: Alcotest Dsl Eit Eit_dsl Ir List Merge Opcode QCheck2 QCheck_alcotest Value
