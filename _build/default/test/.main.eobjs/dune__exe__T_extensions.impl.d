test/t_extensions.ml: Alcotest Apps Arch Array Cplx Dsl Eit Eit_dsl Fd Ir List Merge Printf Sched
