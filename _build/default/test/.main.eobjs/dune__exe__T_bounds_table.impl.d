test/t_bounds_table.ml: Alcotest Apps Array Dsl Eit Eit_dsl Fd Fun Ir List Merge Option QCheck2 QCheck_alcotest Sched T_arith
