test/t_arith.ml: Alcotest Arith Dom Fd List QCheck2 QCheck_alcotest Store
