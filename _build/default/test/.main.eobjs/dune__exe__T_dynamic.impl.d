test/t_dynamic.ml: Alcotest Apps Arch Array Cplx Dsl Eit Eit_dsl Fd Hashtbl Ir List Merge Opcode Option QCheck2 QCheck_alcotest Sched String Value
