test/t_store.ml: Alcotest Fd Store
