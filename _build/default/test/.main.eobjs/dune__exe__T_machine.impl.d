test/t_machine.ml: Alcotest Apps Arch Array Config Cplx Eit Eit_dsl Fd Instr Int64 List Machine Opcode Option Result Sched Value
