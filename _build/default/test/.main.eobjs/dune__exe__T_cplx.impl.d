test/t_cplx.ml: Alcotest Cplx Eit QCheck2 QCheck_alcotest
