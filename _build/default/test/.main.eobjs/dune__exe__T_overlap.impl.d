test/t_overlap.ml: Alcotest Apps Array Eit Eit_dsl Fd Hashtbl Ir Lazy List Merge Option Sched
