test/t_heuristic.ml: Alcotest Apps Dsl Eit Eit_dsl Fd Format List Merge Printf QCheck2 QCheck_alcotest Sched Unix
