test/t_diff2.ml: Alcotest Diff2 Fd Fun List QCheck2 QCheck_alcotest Search Store T_arith
