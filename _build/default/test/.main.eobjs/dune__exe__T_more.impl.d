test/t_more.ml: Alcotest Apps Arch Array Cplx Dsl Eit Eit_dsl Fd Format Ir List Merge Opcode Option Printf Sched String Value Xml
