(* Domain representation: unit tests + properties against a sorted-list
   model of integer sets. *)

open Fd

let check_inv d = Alcotest.(check bool) "invariant" true (Dom.check_invariant d)

let test_interval () =
  let d = Dom.interval 1 5 in
  check_inv d;
  Alcotest.(check int) "size" 5 (Dom.size d);
  Alcotest.(check int) "min" 1 (Dom.min d);
  Alcotest.(check int) "max" 5 (Dom.max d);
  Alcotest.(check bool) "mem 3" true (Dom.mem 3 d);
  Alcotest.(check bool) "mem 6" false (Dom.mem 6 d);
  Alcotest.(check bool) "empty iv" true (Dom.is_empty (Dom.interval 5 1))

let test_remove () =
  let d = Dom.remove 3 (Dom.interval 1 5) in
  check_inv d;
  Alcotest.(check (list int)) "values" [ 1; 2; 4; 5 ] (Dom.to_list d);
  Alcotest.(check bool) "is_interval" false (Dom.is_interval d);
  let d2 = Dom.remove 1 (Dom.singleton 1) in
  Alcotest.(check bool) "empty" true (Dom.is_empty d2)

let test_remove_bounds () =
  let d = Dom.of_list [ 1; 2; 5; 6; 9 ] in
  Alcotest.(check (list int)) "below" [ 5; 6; 9 ] (Dom.to_list (Dom.remove_below 4 d));
  Alcotest.(check (list int)) "above" [ 1; 2; 5; 6 ] (Dom.to_list (Dom.remove_above 7 d));
  Alcotest.(check (list int)) "interval" [ 1; 9 ] (Dom.to_list (Dom.remove_interval 2 6 d))

let test_empty_access () =
  Alcotest.check_raises "min" Dom.Empty_domain (fun () -> ignore (Dom.min Dom.empty));
  Alcotest.check_raises "max" Dom.Empty_domain (fun () -> ignore (Dom.max Dom.empty))

let test_merge_adjacent () =
  (* of_list must merge adjacent values into one interval *)
  let d = Dom.of_list [ 3; 1; 2 ] in
  Alcotest.(check bool) "single interval" true (Dom.is_interval d);
  Alcotest.(check int) "size" 3 (Dom.size d);
  let u = Dom.union (Dom.interval 1 3) (Dom.interval 4 6) in
  Alcotest.(check bool) "union adjacent merges" true (Dom.is_interval u)

let test_shift_neg () =
  let d = Dom.of_list [ 1; 3; 4 ] in
  Alcotest.(check (list int)) "shift" [ 11; 13; 14 ] (Dom.to_list (Dom.shift 10 d));
  Alcotest.(check (list int)) "neg" [ -4; -3; -1 ] (Dom.to_list (Dom.neg d));
  check_inv (Dom.neg d)

(* ---------------- properties ---------------- *)

let gen_dom =
  QCheck2.Gen.(
    let* vals = list_size (int_bound 12) (int_range (-20) 20) in
    return (Dom.of_list vals, List.sort_uniq compare vals))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:500 gen f)

let props =
  [
    prop "of_list = sorted set" gen_dom (fun (d, model) ->
        Dom.to_list d = model && Dom.check_invariant d);
    prop "inter is set intersection"
      QCheck2.Gen.(pair gen_dom gen_dom)
      (fun ((d1, m1), (d2, m2)) ->
        let inter = Dom.inter d1 d2 in
        Dom.check_invariant inter
        && Dom.to_list inter = List.filter (fun v -> List.mem v m2) m1);
    prop "union is set union"
      QCheck2.Gen.(pair gen_dom gen_dom)
      (fun ((d1, m1), (d2, m2)) ->
        Dom.to_list (Dom.union d1 d2) = List.sort_uniq compare (m1 @ m2));
    prop "diff is set difference"
      QCheck2.Gen.(pair gen_dom gen_dom)
      (fun ((d1, m1), (d2, m2)) ->
        let diff = Dom.diff d1 d2 in
        Dom.check_invariant diff
        && Dom.to_list diff = List.filter (fun v -> not (List.mem v m2)) m1);
    prop "remove removes exactly one value"
      QCheck2.Gen.(pair gen_dom (int_range (-20) 20))
      (fun ((d, m), v) ->
        Dom.to_list (Dom.remove v d) = List.filter (fun x -> x <> v) m);
    prop "size agrees with to_list" gen_dom (fun (d, m) ->
        Dom.size d = List.length m);
    prop "filter = list filter" gen_dom (fun (d, m) ->
        let p x = x mod 3 = 0 in
        Dom.to_list (Dom.filter p d) = List.filter p m);
    prop "map_monotone with x->2x" gen_dom (fun (d, m) ->
        Dom.to_list (Dom.map_monotone (fun x -> 2 * x) d) = List.map (fun x -> 2 * x) m);
    prop "fold counts" gen_dom (fun (d, m) ->
        Dom.fold (fun acc _ -> acc + 1) 0 d = List.length m);
  ]

let suite =
  [
    Alcotest.test_case "interval basics" `Quick test_interval;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "remove bounds" `Quick test_remove_bounds;
    Alcotest.test_case "empty access raises" `Quick test_empty_access;
    Alcotest.test_case "adjacent merge" `Quick test_merge_adjacent;
    Alcotest.test_case "shift/neg" `Quick test_shift_neg;
  ]
  @ props
