(* Modulo scheduling (Table 3 machinery): bounds, validation, and the
   two optimization modes. *)

open Eit_dsl
open Eit

let merged g = (Merge.run g).Merge.graph
let matmul = lazy (merged (Apps.Matmul.graph (Apps.Matmul.build ())))
let arf = lazy (merged (Apps.Arf.graph (Apps.Arf.build ())))

let test_res_mii () =
  (* MATMUL: 16 dotp / 4 lanes = 4, 4 merges on the IM unit = 4 *)
  Alcotest.(check int) "matmul" 4 (Sched.Modulo.res_mii (Lazy.force matmul) Arch.default);
  (* ARF: 16 v_scale -> 4 residues, 12 v_add -> 3 residues => 7 *)
  Alcotest.(check int) "arf" 7 (Sched.Modulo.res_mii (Lazy.force arf) Arch.default)

let test_matmul_exact_paper_row () =
  (* Table 3 MATMUL row: II = 4, no reconfigurations, throughput 0.250,
     identical in both modes *)
  let g = Lazy.force matmul in
  (match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | Some r ->
    Alcotest.(check int) "II" 4 r.Sched.Modulo.ii;
    Alcotest.(check int) "reconfigs" 0 r.Sched.Modulo.reconfigurations;
    Alcotest.(check int) "actual" 4 r.Sched.Modulo.actual_ii;
    Alcotest.(check (float 1e-9)) "throughput" 0.25 r.Sched.Modulo.throughput;
    Alcotest.(check bool) "valid" true (Sched.Modulo.validate g Arch.default r = Ok ())
  | None -> Alcotest.fail "excluding timed out");
  match Sched.Modulo.solve_including ~budget_ms:20_000. g with
  | Some r -> Alcotest.(check int) "incl actual" 4 r.Sched.Modulo.actual_ii
  | None -> Alcotest.fail "including timed out"

let test_arf_modes () =
  let g = Lazy.force arf in
  match
    ( Sched.Modulo.solve_excluding ~budget_ms:20_000. g,
      Sched.Modulo.solve_including ~budget_ms:20_000. g )
  with
  | Some ex, Some inc ->
    Alcotest.(check bool) "II >= ResMII" true
      (ex.Sched.Modulo.ii >= Sched.Modulo.res_mii g Arch.default);
    Alcotest.(check bool) "including never worse" true
      (inc.Sched.Modulo.actual_ii <= ex.Sched.Modulo.actual_ii);
    Alcotest.(check bool) "excl valid" true (Sched.Modulo.validate g Arch.default ex = Ok ());
    Alcotest.(check bool) "incl valid" true (Sched.Modulo.validate g Arch.default inc = Ok ())
  | _ -> Alcotest.fail "timeout"

let test_validate_catches_bad_kernel () =
  let g = Lazy.force matmul in
  match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | Some r ->
    (* break a precedence *)
    let bad_start = Array.copy r.Sched.Modulo.start in
    let op =
      List.find (fun i -> Ir.preds g i <> [] &&
                          List.exists (fun d -> Ir.producer g d <> None) (Ir.preds g i))
        (Ir.op_nodes g)
    in
    bad_start.(op) <- 0;
    let bad = { r with Sched.Modulo.start = bad_start } in
    Alcotest.(check bool) "caught" true
      (Result.is_error (Sched.Modulo.validate g Arch.default bad));
    (* break residue capacity: everything at residue 0 *)
    let squash = Array.map (fun s -> s - (s mod r.Sched.Modulo.ii)) r.Sched.Modulo.start in
    let bad2 = { r with Sched.Modulo.start = squash } in
    Alcotest.(check bool) "overload caught" true
      (Result.is_error (Sched.Modulo.validate g Arch.default bad2))
  | None -> Alcotest.fail "timeout"

let test_reconfig_lower_bound () =
  Alcotest.(check int) "matmul single config" 0
    (Sched.Reconfig.lower_bound (Lazy.force matmul));
  Alcotest.(check int) "arf two configs" 2 (Sched.Reconfig.lower_bound (Lazy.force arf))

let test_throughput_formula () =
  let g = Lazy.force arf in
  match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | Some r ->
    Alcotest.(check (float 1e-9)) "1/actual"
      (1. /. float_of_int r.Sched.Modulo.actual_ii)
      r.Sched.Modulo.throughput;
    Alcotest.(check int) "actual = ii + rec"
      (r.Sched.Modulo.ii + r.Sched.Modulo.reconfigurations)
      r.Sched.Modulo.actual_ii
  | None -> Alcotest.fail "timeout"

(* The steady-state interpretation: unroll 3 iterations of the ARF
   kernel and check per-cycle resource usage directly. *)
let test_unrolled_consistency () =
  let g = Lazy.force arf in
  match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | Some r ->
    let ii = r.Sched.Modulo.ii in
    let iters = 3 in
    let horizon = r.Sched.Modulo.span + (iters * ii) in
    for cycle = 0 to horizon do
      let here =
        List.concat_map
          (fun it ->
            List.filter
              (fun i -> r.Sched.Modulo.start.(i) + (it * ii) = cycle)
              (Ir.op_nodes g))
          (List.init iters Fun.id)
      in
      let vec =
        List.filter
          (fun i -> Opcode.resource (Ir.opcode g i) = Opcode.Vector_core)
          here
      in
      let lanes = List.fold_left (fun acc i -> acc + Opcode.lanes (Ir.opcode g i)) 0 vec in
      Alcotest.(check bool) "lane capacity" true (lanes <= 4);
      match vec with
      | first :: rest ->
        List.iter
          (fun i ->
            Alcotest.(check bool) "config exclusive" true
              (Opcode.config_equal (Ir.opcode g first) (Ir.opcode g i)))
          rest
      | [] -> ()
    done
  | None -> Alcotest.fail "timeout"

let suite =
  [
    Alcotest.test_case "res_mii" `Quick test_res_mii;
    Alcotest.test_case "matmul = paper row" `Quick test_matmul_exact_paper_row;
    Alcotest.test_case "arf both modes" `Quick test_arf_modes;
    Alcotest.test_case "validator catches corruption" `Quick test_validate_catches_bad_kernel;
    Alcotest.test_case "reconfig lower bound" `Quick test_reconfig_lower_bound;
    Alcotest.test_case "throughput formula" `Quick test_throughput_formula;
    Alcotest.test_case "unrolled steady state" `Quick test_unrolled_consistency;
  ]
