(* Instruction structure validation, configuration counting and the
   cycle-accurate simulator, including failure injection. *)

open Eit

let v4 f = Array.make Value.vlen (Cplx.of_float f)

let issue ?(node = 0) op args dest = { Instr.op; args; dest; node }

let prog ?(inputs = []) ?(outputs = []) instrs =
  { Instr.arch = Arch.default; inputs; instrs; outputs }

let test_config_counting () =
  let add = Some (Opcode.v Vadd) and mul = Some (Opcode.v Vmul) in
  Alcotest.(check int) "no change" 0 (Config.count_reconfigs [ add; add; add ]);
  Alcotest.(check int) "idle transparent" 1
    (Config.count_reconfigs [ add; None; add; None; mul ]);
  Alcotest.(check int) "alternating" 3 (Config.count_reconfigs [ add; mul; add; mul ]);
  Alcotest.(check int) "cyclic wrap" 2 (Config.count_reconfigs_cyclic [ add; mul ]);
  Alcotest.(check int) "cyclic same" 0 (Config.count_reconfigs_cyclic [ add; None; add ]);
  Alcotest.(check int) "empty" 0 (Config.count_reconfigs [])

let simple_add_program () =
  prog
    ~inputs:[ Instr.In_slot (0, v4 1.); Instr.In_slot (1, v4 2.) ]
    ~outputs:[ (100, Instr.Dslot 2) ]
    [
      {
        Instr.cycle = 0;
        vector = [ issue ~node:100 (Opcode.v Vadd) [ Instr.Slot 0; Instr.Slot 1 ] (Instr.Dslot 2) ];
        scalar = None;
        im = None;
      };
    ]

let test_simple_run () =
  let r = Machine.run (simple_add_program ()) in
  Alcotest.(check int) "completion cycle" 7 r.Machine.cycles;
  let out = Machine.output_values r (simple_add_program ()) in
  match out with
  | [ (100, Value.Vector a) ] -> Alcotest.(check (float 0.)) "sum" 3. a.(0).Cplx.re
  | _ -> Alcotest.fail "unexpected outputs"

let test_dependent_chain () =
  (* add at 0 -> result usable at 7; consumer at 7 reads it *)
  let p =
    prog
      ~inputs:[ Instr.In_slot (0, v4 1.); Instr.In_slot (1, v4 2.) ]
      [
        { (Instr.empty_cycle 0) with
          vector = [ issue ~node:1 (Opcode.v Vadd) [ Instr.Slot 0; Instr.Slot 1 ] (Instr.Dslot 2) ] };
        { (Instr.empty_cycle 7) with
          vector = [ issue ~node:2 (Opcode.v Vadd) [ Instr.Slot 2; Instr.Slot 2 ] (Instr.Dslot 3) ] };
      ]
  in
  let r = Machine.run p in
  let v = List.assoc 2 r.Machine.node_values in
  Alcotest.(check (float 0.)) "chained" 6. (Value.as_vector v).(0).Cplx.re

let test_read_too_early () =
  let p =
    prog
      ~inputs:[ Instr.In_slot (0, v4 1.); Instr.In_slot (1, v4 2.) ]
      [
        { (Instr.empty_cycle 0) with
          vector = [ issue ~node:1 (Opcode.v Vadd) [ Instr.Slot 0; Instr.Slot 1 ] (Instr.Dslot 2) ] };
        { (Instr.empty_cycle 6) with
          vector = [ issue ~node:2 (Opcode.v Vadd) [ Instr.Slot 2; Instr.Slot 2 ] (Instr.Dslot 3) ] };
      ]
  in
  match Machine.run p with
  | exception Machine.Sim_error (Machine.Read_uninitialized { cycle = 6; slot = 2; _ }) -> ()
  | exception Machine.Sim_error e ->
    Alcotest.failf "wrong error: %a" Machine.pp_error e
  | _ -> Alcotest.fail "expected read-too-early failure"

let test_bank_conflict_detected () =
  (* slots 0 and 16 share bank 0 *)
  let p =
    prog
      ~inputs:[ Instr.In_slot (0, v4 1.); Instr.In_slot (16, v4 2.) ]
      [
        { (Instr.empty_cycle 0) with
          vector = [ issue (Opcode.v Vadd) [ Instr.Slot 0; Instr.Slot 16 ] (Instr.Dslot 2) ] };
      ]
  in
  (match Machine.run p with
  | exception Machine.Sim_error (Machine.Access_violation _) -> ()
  | _ -> Alcotest.fail "expected access violation");
  (* and is tolerated with checking off *)
  match Machine.run ~check_access:false p with
  | _ -> ()

let test_mixed_config_rejected () =
  let p =
    prog
      ~inputs:[ Instr.In_slot (0, v4 1.); Instr.In_slot (1, v4 2.) ]
      [
        { (Instr.empty_cycle 0) with
          vector =
            [
              issue (Opcode.v Vadd) [ Instr.Slot 0; Instr.Slot 1 ] (Instr.Dslot 2);
              issue (Opcode.v Vmul) [ Instr.Slot 0; Instr.Slot 1 ] (Instr.Dslot 3);
            ] };
      ]
  in
  match Machine.run p with
  | exception Machine.Sim_error (Machine.Structural _) -> ()
  | _ -> Alcotest.fail "expected structural rejection"

let test_lane_overflow_rejected () =
  let mk d = issue (Opcode.v Vadd) [ Instr.Slot 0; Instr.Slot 1 ] (Instr.Dslot d) in
  let p =
    prog
      ~inputs:[ Instr.In_slot (0, v4 1.); Instr.In_slot (1, v4 2.) ]
      [ { (Instr.empty_cycle 0) with vector = [ mk 2; mk 3; mk 4; mk 5; mk 6 ] } ]
  in
  match Machine.run ~check_access:false p with
  | exception Machine.Sim_error (Machine.Structural _) -> ()
  | _ -> Alcotest.fail "expected lane overflow rejection"

let test_four_same_config_ok () =
  (* 4 identically-configured adds on distinct banks: legal VLIW bundle *)
  let inputs =
    List.init 8 (fun i -> Instr.In_slot (i, v4 (float_of_int i)))
  in
  let mk k =
    issue ~node:k (Opcode.v Vadd)
      [ Instr.Slot (2 * k); Instr.Slot ((2 * k) + 1) ]
      (Instr.Dslot (8 + k))
  in
  let p =
    prog ~inputs [ { (Instr.empty_cycle 0) with vector = List.init 4 mk } ]
  in
  let r = Machine.run p in
  Alcotest.(check int) "all four results" 4 (List.length r.Machine.node_values)

let test_scalar_and_im_units () =
  let p =
    prog
      ~inputs:[ Instr.In_reg (0, Cplx.of_float 9.) ]
      [
        { (Instr.empty_cycle 0) with
          scalar = Some (issue ~node:1 (S Ssqrt) [ Instr.Reg 0 ] (Instr.Dreg 1)) };
        { (Instr.empty_cycle 7) with
          im = Some (issue ~node:2 (IM Splat) [ Instr.Reg 1 ] (Instr.Dslot 0)) };
      ]
  in
  let r = Machine.run p in
  let v = List.assoc 2 r.Machine.node_values in
  Alcotest.(check (float 1e-9)) "sqrt splatted" 3. (Value.as_vector v).(0).Cplx.re

let test_reconfig_count_in_program () =
  let add d = issue (Opcode.v Vadd) [ Instr.Slot 0; Instr.Slot 1 ] (Instr.Dslot d) in
  let mul d = issue (Opcode.v Vmul) [ Instr.Slot 0; Instr.Slot 1 ] (Instr.Dslot d) in
  let p =
    prog
      ~inputs:[ Instr.In_slot (0, v4 1.); Instr.In_slot (1, v4 2.) ]
      [
        { (Instr.empty_cycle 0) with vector = [ add 2 ] };
        { (Instr.empty_cycle 1) with vector = [ add 3 ] };
        { (Instr.empty_cycle 5) with vector = [ mul 4 ] };
      ]
  in
  Alcotest.(check int) "one reconfiguration" 1 (Instr.reconfigurations p)

let test_structure_validation () =
  let ok = simple_add_program () in
  Alcotest.(check bool) "valid" true (Instr.validate_structure ok = Ok ());
  let bad_order =
    prog
      [ Instr.empty_cycle 3; Instr.empty_cycle 3 ]
  in
  Alcotest.(check bool) "non-increasing cycles" true
    (Result.is_error (Instr.validate_structure bad_order))

let suite =
  [
    Alcotest.test_case "configuration counting" `Quick test_config_counting;
    Alcotest.test_case "simple run" `Quick test_simple_run;
    Alcotest.test_case "dependent chain" `Quick test_dependent_chain;
    Alcotest.test_case "read too early" `Quick test_read_too_early;
    Alcotest.test_case "bank conflict" `Quick test_bank_conflict_detected;
    Alcotest.test_case "mixed config rejected" `Quick test_mixed_config_rejected;
    Alcotest.test_case "lane overflow rejected" `Quick test_lane_overflow_rejected;
    Alcotest.test_case "4-wide same config" `Quick test_four_same_config_ok;
    Alcotest.test_case "scalar + IM units" `Quick test_scalar_and_im_units;
    Alcotest.test_case "reconfig count" `Quick test_reconfig_count_in_program;
    Alcotest.test_case "structure validation" `Quick test_structure_validation;
  ]

(* ---------------- binary encoding ---------------- *)

let test_encode_roundtrip_simple () =
  let p = simple_add_program () in
  let img = Eit.Encode.encode p in
  let p' = Eit.Encode.decode ~arch:p.Instr.arch ~inputs:p.Instr.inputs
      ~outputs:p.Instr.outputs img in
  Alcotest.(check bool) "same instruction stream" true (p' = p);
  Alcotest.(check bool) "nonzero size" true (Eit.Encode.size_bytes img > 0)

let test_encode_roundtrip_kernels () =
  (* full kernels: decode(encode p) runs and produces the same values *)
  List.iter
    (fun gname ->
      let g =
        match gname with
        | `M -> (Eit_dsl.Merge.run (Apps.Matmul.graph (Apps.Matmul.build ()))).Eit_dsl.Merge.graph
        | `Q -> (Eit_dsl.Merge.run (Apps.Qrd.graph (Apps.Qrd.build ()))).Eit_dsl.Merge.graph
      in
      let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
      let sch = Option.get o.Sched.Solve.schedule in
      let p = Sched.Codegen.program sch in
      let img = Eit.Encode.encode p in
      let p' = Eit.Encode.decode ~arch:p.Instr.arch ~inputs:p.Instr.inputs
          ~outputs:p.Instr.outputs img in
      Alcotest.(check bool) "stream identical" true (p'.Instr.instrs = p.Instr.instrs);
      let r = Machine.run p and r' = Machine.run p' in
      Alcotest.(check int) "same completion" r.Machine.cycles r'.Machine.cycles;
      List.iter (fun (node, v) ->
        let v' = List.assoc node r'.Machine.node_values in
        Alcotest.(check bool) "same value" true (Value.equal ~eps:0. v v'))
        r.Machine.node_values)
    [ `M; `Q ]

let test_encode_imm_pool () =
  let p =
    prog
      ~inputs:[]
      [
        { (Instr.empty_cycle 0) with
          scalar = Some (issue ~node:1 (S Smul)
            [ Instr.Imm (Cplx.make 2. 1.); Instr.Imm (Cplx.make 2. 1.) ] (Instr.Dreg 0)) };
      ]
  in
  let img = Eit.Encode.encode p in
  (* identical immediates share one pool entry *)
  Alcotest.(check int) "pool deduplicated" 1 (Array.length img.Eit.Encode.pool);
  let p' = Eit.Encode.decode ~arch:p.Instr.arch ~inputs:[] ~outputs:[] img in
  Alcotest.(check bool) "roundtrip" true (p'.Instr.instrs = p.Instr.instrs)

let test_encode_malformed () =
  Alcotest.(check bool) "truncated rejected" true
    (let img = { Eit.Encode.words = [| Int64.shift_left 1L 62 |]; pool = [||] } in
     match Eit.Encode.decode ~arch:Arch.default ~inputs:[] ~outputs:[] img with
     | exception Failure _ -> true
     | _ -> false)

let test_trace_events () =
  let events = ref [] in
  let _ = Machine.run ~trace:(fun e -> events := e :: !events) (simple_add_program ()) in
  let issues = List.filter (function Machine.Ev_issue _ -> true | _ -> false) !events in
  let wbs = List.filter (function Machine.Ev_writeback _ -> true | _ -> false) !events in
  Alcotest.(check int) "one issue" 1 (List.length issues);
  Alcotest.(check int) "one writeback" 1 (List.length wbs);
  match wbs with
  | [ Machine.Ev_writeback { cycle; _ } ] -> Alcotest.(check int) "wb at 7" 7 cycle
  | _ -> Alcotest.fail "unexpected"

let suite =
  suite
  @ [
      Alcotest.test_case "encode roundtrip simple" `Quick test_encode_roundtrip_simple;
      Alcotest.test_case "encode roundtrip kernels" `Slow test_encode_roundtrip_kernels;
      Alcotest.test_case "encode imm pool" `Quick test_encode_imm_pool;
      Alcotest.test_case "encode malformed" `Quick test_encode_malformed;
      Alcotest.test_case "trace events" `Quick test_trace_events;
    ]
