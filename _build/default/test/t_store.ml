(* Store: trailing, propagation queue, entailment. *)

open Fd

let test_var_basics () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 ~name:"x" in
  Alcotest.(check int) "min" 0 (Store.vmin x);
  Alcotest.(check int) "max" 9 (Store.vmax x);
  Alcotest.(check bool) "fixed" false (Store.is_fixed x);
  Store.assign s x 4;
  Alcotest.(check bool) "fixed after assign" true (Store.is_fixed x);
  Alcotest.(check int) "value" 4 (Store.value x)

let test_empty_domain_fails () =
  let s = Store.create () in
  let x = Store.interval_var s 0 3 in
  Store.assign s x 2;
  Alcotest.check_raises "conflicting assign" (Store.Fail "x: empty domain")
    (fun () ->
      try Store.assign s x 3
      with Store.Fail _ -> raise (Store.Fail "x: empty domain"))

let test_backtracking () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let y = Store.interval_var s 0 9 in
  Store.push_level s;
  Store.assign s x 1;
  Store.remove_below s y 5;
  Alcotest.(check int) "y min pruned" 5 (Store.vmin y);
  Store.push_level s;
  Store.assign s y 7;
  Store.pop_level s;
  Alcotest.(check bool) "y unfixed again" false (Store.is_fixed y);
  Alcotest.(check int) "y min preserved" 5 (Store.vmin y);
  Store.pop_level s;
  Alcotest.(check int) "x restored" 0 (Store.vmin x);
  Alcotest.(check int) "y restored" 0 (Store.vmin y)

let test_propagation_runs () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let y = Store.interval_var s 0 9 in
  let runs = ref 0 in
  let _p =
    Store.post_now s ~watches:[ x ] (fun st ->
        incr runs;
        Store.remove_below st y (Store.vmin x))
  in
  Store.propagate s;
  let before = !runs in
  Store.remove_below s x 4;
  Store.propagate s;
  Alcotest.(check bool) "propagator re-ran" true (!runs > before);
  Alcotest.(check int) "y follows x" 4 (Store.vmin y)

let test_entailment_trailing () =
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let runs = ref 0 in
  let handle = ref None in
  let p =
    Store.post_now s ~watches:[ x ] (fun st ->
        incr runs;
        match !handle with Some h -> Store.entail st h | None -> ())
  in
  handle := Some p;
  Store.propagate s;
  let after_first = !runs in
  Store.push_level s;
  (* entailed inside this level: no more runs *)
  Store.remove_value s x 3;
  Store.propagate s;
  Alcotest.(check int) "entailed: not re-run" after_first !runs;
  Store.pop_level s;
  (* Entailment must be undone by pop_level... but it was entailed at the
     root run (before push), so it stays entailed.  Re-entail inside a
     level instead: *)
  let s2 = Store.create () in
  let x2 = Store.interval_var s2 0 9 in
  let runs2 = ref 0 in
  let h2 = ref None in
  let p2 =
    Store.post s2 ~watches:[ x2 ] (fun st ->
        incr runs2;
        if Store.vmin x2 >= 5 then
          match !h2 with Some h -> Store.entail st h | None -> ())
  in
  h2 := Some p2;
  Store.push_level s2;
  Store.remove_below s2 x2 5;
  Store.propagate s2;
  let mid = !runs2 in
  Store.remove_below s2 x2 6;
  Store.propagate s2;
  Alcotest.(check int) "no run while entailed" mid !runs2;
  Store.pop_level s2;
  Store.remove_below s2 x2 2;
  Store.propagate s2;
  Alcotest.(check bool) "runs again after pop" true (!runs2 > mid)

let test_const_cached () =
  let s = Store.create () in
  let a = Store.const s 5 and b = Store.const s 5 in
  Alcotest.(check int) "same id" (Store.id a) (Store.id b)

let suite =
  [
    Alcotest.test_case "variable basics" `Quick test_var_basics;
    Alcotest.test_case "empty domain fails" `Quick test_empty_domain_fails;
    Alcotest.test_case "trail backtracking" `Quick test_backtracking;
    Alcotest.test_case "propagation" `Quick test_propagation_runs;
    Alcotest.test_case "entailment trailing" `Quick test_entailment_trailing;
    Alcotest.test_case "const cache" `Quick test_const_cached;
  ]
