(* The paper's kernels: graph shapes, reference numerics. *)

open Eit_dsl
open Eit

let stats g = Stats.of_ir g

let test_matmul_shape () =
  (* exactly the properties reported in Table 3 *)
  let s = stats (Apps.Matmul.graph (Apps.Matmul.build ())) in
  Alcotest.(check int) "|V|" 44 s.Stats.v;
  Alcotest.(check int) "|E|" 68 s.Stats.e;
  Alcotest.(check int) "|Cr.P|" 8 s.Stats.crp;
  Alcotest.(check int) "16 dotp" 16 (List.assoc Ir.Vector_op s.Stats.by_category);
  Alcotest.(check int) "4 merges" 4 (List.assoc Ir.Merge s.Stats.by_category)

let test_arf_shape () =
  let s = stats (Apps.Arf.graph (Apps.Arf.build ())) in
  (* paper: (88, 128, 56); our reconstruction preserves the critical
     path exactly and the 16-mul/12-add structure *)
  Alcotest.(check int) "|Cr.P|" 56 s.Stats.crp;
  Alcotest.(check int) "28 vector ops" 28 (List.assoc Ir.Vector_op s.Stats.by_category)

let test_qrd_shape () =
  let s = stats (Apps.Qrd.graph (Apps.Qrd.build ())) in
  (* paper: (143, 194, 169); ours lands within a few nodes *)
  Alcotest.(check bool) "|V| close" true (abs (s.Stats.v - 143) <= 15);
  Alcotest.(check bool) "|E| close" true (abs (s.Stats.e - 194) <= 15);
  Alcotest.(check bool) "|Cr.P| close" true (abs (s.Stats.crp - 169) <= 5)

let test_matmul_values () =
  let app = Apps.Matmul.build () in
  let a =
    Array.of_list
      (List.map (fun r -> Array.of_list (List.map Cplx.of_float r))
         Apps.Matmul.default_input)
  in
  let expect = Apps.Reference.matmul_aat a in
  Array.iteri
    (fun i row ->
      let got = Dsl.vector_value row in
      Array.iteri
        (fun j x ->
          Alcotest.(check (float 1e-9)) (Printf.sprintf "(%d,%d)" i j)
            expect.(i).(j).Cplx.re x.Cplx.re)
        got)
    [| Dsl.row app.Apps.Matmul.result 0; Dsl.row app.Apps.Matmul.result 1;
       Dsl.row app.Apps.Matmul.result 2; Dsl.row app.Apps.Matmul.result 3 |]

let test_qrd_full_numerics () =
  let h = Apps.Qrd.default_h and sigma = 0.5 in
  let app = Apps.Qrd.build ~h ~sigma () in
  let reference = Apps.Reference.mgs_qrd h ~sigma in
  (match Apps.Reference.check_qr h ~sigma reference ~eps:1e-9 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reference inconsistent: %s" e);
  (* Q (both halves) *)
  Array.iteri
    (fun k col ->
      let v = Dsl.vector_value col in
      Array.iteri
        (fun i x ->
          Alcotest.(check (float 1e-9)) (Printf.sprintf "Qtop[%d][%d]" i k)
            reference.Apps.Reference.q.(i).(k).Cplx.re x.Cplx.re)
        v)
    app.Apps.Qrd.q_top;
  Array.iteri
    (fun k col ->
      let v = Dsl.vector_value col in
      Array.iteri
        (fun i x ->
          Alcotest.(check (float 1e-9)) (Printf.sprintf "Qbot[%d][%d]" i k)
            reference.Apps.Reference.q.(i + 4).(k).Cplx.re x.Cplx.re)
        v)
    app.Apps.Qrd.q_bot;
  (* R rows *)
  Array.iteri
    (fun k row ->
      let v = Dsl.vector_value row in
      Array.iteri
        (fun j x ->
          Alcotest.(check (float 1e-9)) (Printf.sprintf "R[%d][%d]" k j)
            reference.Apps.Reference.r.(k).(j).Cplx.re x.Cplx.re)
        v)
    app.Apps.Qrd.r_rows

let test_qrd_r_upper_triangular () =
  let app = Apps.Qrd.build () in
  Array.iteri
    (fun k row ->
      let v = Dsl.vector_value row in
      for j = 0 to k - 1 do
        Alcotest.(check (float 0.)) (Printf.sprintf "R[%d][%d]=0" k j) 0. v.(j).Cplx.re
      done;
      (* MGS produces a real positive diagonal *)
      Alcotest.(check bool) (Printf.sprintf "R[%d][%d]>0" k k) true (v.(k).Cplx.re > 0.))
    app.Apps.Qrd.r_rows

let test_qrd_random_channels =
  (* property: QR of random channels always reconstructs and stays
     orthonormal *)
  let gen =
    QCheck2.Gen.(
      array_size (return 4)
        (array_size (return 4)
           (map (fun (a, b) -> Cplx.make a b)
              (pair (float_range (-2.) 2.) (float_range (-2.) 2.)))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random channel QR" ~count:50 gen (fun h ->
         (* regularization keeps columns independent even for singular H *)
         let qr = Apps.Reference.mgs_qrd h ~sigma:0.7 in
         Apps.Reference.check_qr h ~sigma:0.7 qr ~eps:1e-6 = Ok ()))

let test_arf_linearity () =
  (* same seed is deterministic; different seeds differ *)
  let g1 = Apps.Arf.graph (Apps.Arf.build ~seed:1 ()) in
  let g2 = Apps.Arf.graph (Apps.Arf.build ~seed:1 ()) in
  let g3 = Apps.Arf.graph (Apps.Arf.build ~seed:2 ()) in
  let outs g =
    List.filter_map
      (fun d -> if Ir.succs g d = [] then Some (List.assoc d (Ir.eval g)) else None)
      (Ir.data_nodes g)
  in
  Alcotest.(check bool) "deterministic" true
    (List.for_all2 (Value.equal ~eps:0.) (outs g1) (outs g2));
  Alcotest.(check bool) "seed-dependent" false
    (List.for_all2 (Value.equal ~eps:0.) (outs g1) (outs g3))

let suite =
  [
    Alcotest.test_case "matmul shape (Table 3)" `Quick test_matmul_shape;
    Alcotest.test_case "arf shape" `Quick test_arf_shape;
    Alcotest.test_case "qrd shape" `Quick test_qrd_shape;
    Alcotest.test_case "matmul numerics" `Quick test_matmul_values;
    Alcotest.test_case "qrd full numerics" `Quick test_qrd_full_numerics;
    Alcotest.test_case "R upper triangular" `Quick test_qrd_r_upper_triangular;
    Alcotest.test_case "arf determinism" `Quick test_arf_linearity;
    test_qrd_random_channels;
  ]

(* ---------------- sorted QRD (Luethi et al.) ---------------- *)

let test_sorted_qrd () =
  let h = Apps.Qrd.default_h and sigma = 0.5 in
  let app = Apps.Qrd.build ~h ~sigma ~sorted:true () in
  let perm = app.Apps.Qrd.perm in
  (* the permutation is decreasing in column energy *)
  let energy j =
    let top = Array.fold_left (fun acc i -> acc +. Cplx.norm2 h.(i).(j)) 0.
        [|0;1;2;3|] in
    top +. (sigma *. sigma)
  in
  for p = 0 to 2 do
    Alcotest.(check bool) "energy decreasing" true
      (energy perm.(p) >= energy perm.(p + 1) -. 1e-12)
  done;
  (* decomposition of the permuted channel matches the reference *)
  let permuted = Array.map (fun row -> Array.map (fun j -> row.(j)) perm) h in
  let reference = Apps.Reference.mgs_qrd permuted ~sigma in
  Array.iteri
    (fun k col ->
      let v = Dsl.vector_value col in
      Array.iteri
        (fun i x ->
          Alcotest.(check (float 1e-9)) (Printf.sprintf "sorted Q[%d][%d]" i k)
            reference.Apps.Reference.q.(i).(k).Cplx.re x.Cplx.re)
        v)
    app.Apps.Qrd.q_top;
  Array.iteri
    (fun k row ->
      let v = Dsl.vector_value row in
      Array.iteri
        (fun j x ->
          Alcotest.(check (float 1e-9)) (Printf.sprintf "sorted R[%d][%d]" k j)
            reference.Apps.Reference.r.(k).(j).Cplx.re x.Cplx.re)
        v)
    app.Apps.Qrd.r_rows

let test_sorted_qrd_bigger_graph () =
  let plain = Eit_dsl.Stats.of_ir (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let sorted = Eit_dsl.Stats.of_ir (Apps.Qrd.graph (Apps.Qrd.build ~sorted:true ())) in
  Alcotest.(check bool) "sorting adds nodes" true
    (sorted.Eit_dsl.Stats.v > plain.Eit_dsl.Stats.v)

let test_sorted_qrd_end_to_end () =
  let g = (Eit_dsl.Merge.run (Apps.Qrd.graph (Apps.Qrd.build ~sorted:true ()))).Eit_dsl.Merge.graph in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
  match o.Sched.Solve.schedule with
  | Some sch -> (
    match Sched.Codegen.run_and_check sch with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "no schedule"

let suite =
  suite
  @ [
      Alcotest.test_case "sorted QRD numerics" `Quick test_sorted_qrd;
      Alcotest.test_case "sorted QRD graph" `Quick test_sorted_qrd_bigger_graph;
      Alcotest.test_case "sorted QRD end-to-end" `Quick test_sorted_qrd_end_to_end;
    ]
