(* IR graph: builder invariants, analyses, evaluation. *)

open Eit_dsl
open Eit

let v4 f = Value.vector_of_floats [ f; f; f; f ]

(* a + b, then squsum of the result *)
let small_graph () =
  let b = Ir.builder () in
  let a = Ir.add_data b ~label:"a" ~value:(v4 1.) `Vector in
  let bb = Ir.add_data b ~label:"b" ~value:(v4 2.) `Vector in
  let sum = Ir.add_data b `Vector in
  let add = Ir.add_op b (Opcode.v Vadd) ~args:[ a; bb ] ~result:sum in
  let sq = Ir.add_data b `Scalar in
  let squ = Ir.add_op b (Opcode.v Vsqsum) ~args:[ sum ] ~result:sq in
  (Ir.freeze b, a, bb, sum, add, sq, squ)

let test_structure () =
  let g, a, b, sum, add, sq, squ = small_graph () in
  Alcotest.(check int) "|V|" 6 (Ir.size g);
  Alcotest.(check int) "|E|" 5 (Ir.edge_count g);
  Alcotest.(check (list int)) "inputs" [ a; b ] (Ir.inputs g);
  Alcotest.(check (list int)) "outputs" [ sq ] (Ir.outputs g);
  Alcotest.(check (list int)) "op nodes" [ add; squ ] (Ir.op_nodes g);
  Alcotest.(check (option int)) "producer" (Some add) (Ir.producer g sum);
  Alcotest.(check (list int)) "operand order" [ a; b ] (Ir.preds g add);
  Alcotest.(check bool) "validate" true (Ir.validate g = Ok ())

let test_categories () =
  let g, a, _, _, add, sq, _ = small_graph () in
  Alcotest.(check bool) "vector data" true (Ir.category g a = Ir.Vector_data);
  Alcotest.(check bool) "vector op" true (Ir.category g add = Ir.Vector_op);
  Alcotest.(check bool) "scalar data" true (Ir.category g sq = Ir.Scalar_data);
  Alcotest.(check int) "count v_data" 3 (Ir.count g Ir.Vector_data)

let test_topo_and_critical_path () =
  let g, _, _, _, _, _, _ = small_graph () in
  let order = Ir.topo_order g in
  let pos = Array.make (Ir.size g) 0 in
  List.iteri (fun i n -> pos.(n) <- i) order;
  List.iter
    (fun n -> List.iter (fun s -> assert (pos.(n) < pos.(s))) (Ir.succs g n))
    (List.init (Ir.size g) Fun.id);
  (* two chained 7-cycle vector ops *)
  Alcotest.(check int) "critical path" 14 (Ir.critical_path g Arch.default)

let test_eval () =
  let g, _, _, sum, _, sq, _ = small_graph () in
  let vals = Ir.eval g in
  (match List.assoc sum vals with
  | Value.Vector a -> Alcotest.(check (float 0.)) "sum" 3. a.(0).Cplx.re
  | _ -> Alcotest.fail "kind");
  match List.assoc sq vals with
  | Value.Scalar c -> Alcotest.(check (float 0.)) "sqsum" 36. c.Cplx.re
  | _ -> Alcotest.fail "kind"

let test_arity_check () =
  let b = Ir.builder () in
  let a = Ir.add_data b `Vector in
  let r = Ir.add_data b `Vector in
  Alcotest.(check bool) "arity mismatch rejected" true
    (match Ir.add_op b (Opcode.v Vadd) ~args:[ a ] ~result:r with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_double_producer_rejected () =
  let b = Ir.builder () in
  let a = Ir.add_data b ~value:(v4 1.) `Vector in
  let r = Ir.add_data b `Vector in
  ignore (Ir.add_op b (Opcode.v Vid) ~args:[ a ] ~result:r);
  ignore (Ir.add_op b (Opcode.v Vid) ~args:[ a ] ~result:r);
  Alcotest.(check bool) "freeze rejects" true
    (match Ir.freeze b with exception Invalid_argument _ -> true | _ -> false)

let test_kind_mismatch_rejected () =
  (* dotp produces a scalar; feeding a vector datum must be rejected *)
  let b = Ir.builder () in
  let a = Ir.add_data b ~value:(v4 1.) `Vector in
  let r = Ir.add_data b `Vector in
  ignore (Ir.add_op b (Opcode.v Vdotp) ~args:[ a; a ] ~result:r);
  Alcotest.(check bool) "freeze rejects" true
    (match Ir.freeze b with exception Invalid_argument _ -> true | _ -> false)

let test_cycle_rejected () =
  (* two Vid ops consuming each other's outputs *)
  let b = Ir.builder () in
  let d1 = Ir.add_data b `Vector in
  let d2 = Ir.add_data b `Vector in
  ignore (Ir.add_op b (Opcode.v Vid) ~args:[ d1 ] ~result:d2);
  ignore (Ir.add_op b (Opcode.v Vid) ~args:[ d2 ] ~result:d1);
  Alcotest.(check bool) "freeze rejects cycle" true
    (match Ir.freeze b with exception Invalid_argument _ -> true | _ -> false)

let test_repeated_operand () =
  (* same datum used twice as operand is legal (dotp (a, a)) *)
  let b = Ir.builder () in
  let a = Ir.add_data b ~value:(v4 2.) `Vector in
  let r = Ir.add_data b `Scalar in
  ignore (Ir.add_op b (Opcode.v Vdotp) ~args:[ a; a ] ~result:r);
  let g = Ir.freeze b in
  match List.assoc r (Ir.eval g) with
  | Value.Scalar c -> Alcotest.(check (float 0.)) "a.a" 16. c.Cplx.re
  | _ -> Alcotest.fail "kind"

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "categories" `Quick test_categories;
    Alcotest.test_case "topo + critical path" `Quick test_topo_and_critical_path;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "arity check" `Quick test_arity_check;
    Alcotest.test_case "double producer" `Quick test_double_producer_rejected;
    Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "repeated operand" `Quick test_repeated_operand;
  ]
