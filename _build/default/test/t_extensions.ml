(* Extension features beyond the paper's evaluation: the FIR and CORR
   kernels and the wide/mini architecture presets. *)

open Eit_dsl
open Eit

let merged g = (Merge.run g).Merge.graph

let test_fir_values () =
  List.iter
    (fun taps ->
      let app = Apps.Fir.build ~taps ~seed:3 () in
      let expect = Apps.Fir.reference ~taps ~seed:3 in
      let got = Dsl.vector_value app.Apps.Fir.output in
      Array.iteri
        (fun i x ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "taps=%d y[%d]" taps i)
            expect.(i).Cplx.re x.Cplx.re)
        got)
    [ 1; 2; 5; 8; 16 ]

let test_fir_tree_depth () =
  (* 8 taps: scale (7) + 3 tree levels of add (21) = 28 cycles *)
  let g = Apps.Fir.graph (Apps.Fir.build ~taps:8 ()) in
  Alcotest.(check int) "log-depth critical path" 28 (Ir.critical_path g Arch.default);
  (* 15 ops: 8 scale + 7 add *)
  Alcotest.(check int) "ops" 15 (List.length (Ir.op_nodes g))

let test_fir_end_to_end () =
  let g = merged (Apps.Fir.graph (Apps.Fir.build ~taps:8 ())) in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 15_000.) g in
  match o.Sched.Solve.schedule with
  | Some sch -> (
    match Sched.Codegen.run_and_check sch with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "no schedule"

let test_corr_fusions () =
  let raw = Apps.Corr.graph (Apps.Corr.build ~hypotheses:8 ()) in
  let r = Merge.run raw in
  (* one conj fusion per hypothesis; sorts stay (their producer is the
     merge unit, not the vector pipeline) *)
  Alcotest.(check int) "8 fusions" 8 r.Merge.fusions;
  Alcotest.(check int) "16 nodes removed" (Ir.size raw - 16) (Ir.size r.Merge.graph)

let test_corr_end_to_end () =
  let g = merged (Apps.Corr.graph (Apps.Corr.build ~hypotheses:8 ())) in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 15_000.) g in
  match o.Sched.Solve.schedule with
  | Some sch -> (
    match Sched.Codegen.run_and_check sch with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "no schedule"

let test_corr_bad_args () =
  Alcotest.(check bool) "multiple of 4 enforced" true
    (match Apps.Corr.build ~hypotheses:6 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_presets () =
  Alcotest.(check int) "wide lanes" 8 Arch.wide.Arch.n_lanes;
  Alcotest.(check int) "mini slots" 16 (Arch.slots Arch.mini);
  Alcotest.(check int) "three presets" 3 (List.length Arch.presets)

let schedule_on arch g =
  (Sched.Solve.run ~arch ~budget:(Fd.Search.time_budget 15_000.) g)
    .Sched.Solve.schedule

let test_matmul_on_wide () =
  (* 8 lanes: the 16 dot products need only 2 issue cycles, but the
     9-stage pipeline costs 2 extra latency cycles *)
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  match schedule_on Arch.wide g with
  | Some sch ->
    Alcotest.(check bool) "valid on wide" true (Sched.Schedule.is_valid sch);
    (* 2 issue cycles of dotp (0,1), results at 9/10; merges 9..12; +1 *)
    Alcotest.(check bool) "wide makespan sane" true
      (sch.Sched.Schedule.makespan >= 11 && sch.Sched.Schedule.makespan <= 14)
  | None -> Alcotest.fail "no schedule on wide"

let test_matmul_on_mini () =
  (* 2 lanes: at least 8 issue cycles for 16 dotp *)
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  match schedule_on Arch.mini g with
  | Some sch ->
    Alcotest.(check bool) "valid on mini" true (Sched.Schedule.is_valid sch);
    Alcotest.(check bool) "mini slower than eit" true
      (sch.Sched.Schedule.makespan >= 11)
  | None -> Alcotest.fail "no schedule on mini"

let test_simulator_respects_preset () =
  (* the simulator enforces the preset's access rules too *)
  let g = merged (Apps.Fir.graph (Apps.Fir.build ~taps:4 ())) in
  match schedule_on Arch.mini g with
  | Some sch -> (
    match Sched.Codegen.run_and_check sch with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "no schedule"

let suite =
  [
    Alcotest.test_case "fir values" `Quick test_fir_values;
    Alcotest.test_case "fir tree depth" `Quick test_fir_tree_depth;
    Alcotest.test_case "fir end-to-end" `Quick test_fir_end_to_end;
    Alcotest.test_case "corr fusions" `Quick test_corr_fusions;
    Alcotest.test_case "corr end-to-end" `Quick test_corr_end_to_end;
    Alcotest.test_case "corr bad args" `Quick test_corr_bad_args;
    Alcotest.test_case "presets" `Quick test_presets;
    Alcotest.test_case "matmul on wide" `Quick test_matmul_on_wide;
    Alcotest.test_case "matmul on mini" `Quick test_matmul_on_mini;
    Alcotest.test_case "simulator respects preset" `Quick test_simulator_respects_preset;
  ]

(* ---------------- DETECT (MMSE detection stage) ---------------- *)

let test_detect_values () =
  let h = Apps.Qrd.default_h and sigma = 0.5 and y = Apps.Detect.default_y in
  let app = Apps.Detect.build ~h ~sigma ~y () in
  let expect = Apps.Detect.reference ~h ~sigma ~y in
  Array.iteri
    (fun k s ->
      let got = Dsl.scalar_value s in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "s[%d].re" k) expect.(k).Cplx.re got.Cplx.re;
      Alcotest.(check (float 1e-9)) (Printf.sprintf "s[%d].im" k) expect.(k).Cplx.im got.Cplx.im)
    app.Apps.Detect.s_hat

let test_detect_recovers_clean_signal () =
  (* with a noiseless observation y = H s and tiny regularization, the
     detector recovers s *)
  let h = Apps.Qrd.default_h in
  let s_true = [| Cplx.one; Cplx.make (-1.) 0.; Cplx.i; Cplx.make 0. (-1.) |] in
  let y =
    Array.init 4 (fun i ->
        let acc = ref Cplx.zero in
        for j = 0 to 3 do
          acc := Cplx.mac !acc h.(i).(j) s_true.(j)
        done;
        !acc)
  in
  let est = Apps.Detect.reference ~h ~sigma:1e-6 ~y in
  Array.iteri
    (fun k e ->
      Alcotest.(check bool) (Printf.sprintf "recovered s[%d]" k) true
        (Cplx.equal ~eps:1e-3 e s_true.(k)))
    est

let test_detect_end_to_end () =
  let g = merged (Apps.Detect.graph (Apps.Detect.build ())) in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
  match o.Sched.Solve.schedule with
  | Some sch -> (
    match Sched.Codegen.run_and_check sch with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "no schedule"

let test_detect_uses_all_units () =
  let g = Apps.Detect.graph (Apps.Detect.build ()) in
  let count rc =
    List.length
      (List.filter
         (fun i -> Eit.Opcode.resource (Ir.opcode g i) = rc)
         (Ir.op_nodes g))
  in
  Alcotest.(check bool) "vector core used" true (count Eit.Opcode.Vector_core >= 1);
  Alcotest.(check bool) "scalar accel used" true (count Eit.Opcode.Scalar_accel >= 10);
  Alcotest.(check bool) "index/merge used" true (count Eit.Opcode.Index_merge >= 10)

let suite =
  suite
  @ [
      Alcotest.test_case "detect numerics" `Quick test_detect_values;
      Alcotest.test_case "detect recovers signal" `Quick test_detect_recovers_clean_signal;
      Alcotest.test_case "detect end-to-end" `Quick test_detect_end_to_end;
      Alcotest.test_case "detect unit mix" `Quick test_detect_uses_all_units;
    ]
