(* Architecture parameters and the vector-memory access rules, including
   the paper's Fig. 8 example. *)

open Eit

let arch = Arch.default

let test_defaults () =
  Alcotest.(check int) "lanes" 4 arch.Arch.n_lanes;
  Alcotest.(check int) "pipeline" 7 arch.Arch.vector_latency;
  Alcotest.(check int) "banks" 16 arch.Arch.banks;
  Alcotest.(check int) "page" 4 arch.Arch.page_size;
  Alcotest.(check int) "slots" 64 (Arch.slots arch);
  Alcotest.(check int) "reads" 8 arch.Arch.max_reads_per_cycle;
  Alcotest.(check int) "writes" 4 arch.Arch.max_writes_per_cycle

let test_with_slots () =
  Alcotest.(check int) "restricted" 10 (Arch.slots (Arch.with_slots arch 10));
  Alcotest.check_raises "zero" (Invalid_argument "Arch.with_slots: 0 out of range")
    (fun () -> ignore (Arch.with_slots arch 0))

let test_latencies () =
  Alcotest.(check int) "vector" 7 (Arch.latency arch (Opcode.v Vdotp));
  Alcotest.(check int) "matrix" 7 (Arch.latency arch (Opcode.v Mvmul));
  Alcotest.(check int) "sqrt" 7 (Arch.latency arch (S Ssqrt));
  Alcotest.(check int) "sadd cheap" 2 (Arch.latency arch (S Sadd));
  Alcotest.(check int) "merge" 1 (Arch.latency arch (IM Merge4));
  Alcotest.(check int) "duration" 1 (Arch.duration arch (Opcode.v Vadd))

let test_coords () =
  let c = Mem.coords_of_slot arch 37 in
  Alcotest.(check int) "bank" 5 c.Mem.bank;
  Alcotest.(check int) "line" 2 c.Mem.line;
  Alcotest.(check int) "page" 1 c.Mem.page;
  Alcotest.(check int) "slot_of inverse" 37 (Mem.slot_of arch ~bank:5 ~line:2);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Mem.coords_of_slot: slot 64 out of range") (fun () ->
      ignore (Mem.coords_of_slot arch 64))

(* Fig. 8: A has bank conflicts, B has a page/line conflict, C is clean. *)
let test_fig8 () =
  let arch3 = { arch with Arch.lines = 3 } in
  let slot ~bank ~line = Mem.slot_of arch3 ~bank ~line in
  let a = [ slot ~bank:0 ~line:0; slot ~bank:1 ~line:0;
            slot ~bank:0 ~line:1; slot ~bank:1 ~line:1 ] in
  let b = [ slot ~bank:8 ~line:0; slot ~bank:9 ~line:0;
            slot ~bank:10 ~line:0; slot ~bank:11 ~line:1 ] in
  let c = [ slot ~bank:4 ~line:2; slot ~bank:5 ~line:2;
            slot ~bank:12 ~line:1; slot ~bank:13 ~line:1 ] in
  let has_bank_conflict vs =
    List.exists (function Mem.Bank_conflict _ -> true | _ -> false) vs
  in
  let has_page_conflict vs =
    List.exists (function Mem.Page_line_conflict _ -> true | _ -> false) vs
  in
  let va = Mem.check_access arch3 ~reads:a ~writes:[] in
  Alcotest.(check bool) "A bank conflict" true (has_bank_conflict va);
  let vb = Mem.check_access arch3 ~reads:b ~writes:[] in
  Alcotest.(check bool) "B page/line conflict" true (has_page_conflict vb);
  Alcotest.(check bool) "B no bank conflict" false (has_bank_conflict vb);
  Alcotest.(check bool) "C accessible" true (Mem.access_ok arch3 ~reads:c ~writes:[])

let test_port_limits () =
  (* 9 reads across distinct banks on one line: exceeds the 8-read port *)
  let reads = List.init 9 (fun b -> Mem.slot_of arch ~bank:b ~line:0) in
  let vs = Mem.check_access arch ~reads ~writes:[] in
  Alcotest.(check bool) "too many reads" true
    (List.exists (function Mem.Too_many_accesses { kind = `Read; _ } -> true | _ -> false) vs);
  let writes = List.init 5 (fun b -> Mem.slot_of arch ~bank:b ~line:0) in
  let vs = Mem.check_access arch ~reads:[] ~writes in
  Alcotest.(check bool) "too many writes" true
    (List.exists (function Mem.Too_many_accesses { kind = `Write; _ } -> true | _ -> false) vs)

let test_duplicate_reads_count_once () =
  let s = Mem.slot_of arch ~bank:3 ~line:1 in
  Alcotest.(check bool) "same slot twice is one fetch" true
    (Mem.access_ok arch ~reads:[ s; s ] ~writes:[])

let test_read_write_same_bank_ok () =
  (* one read port and one write port per bank *)
  let r = Mem.slot_of arch ~bank:3 ~line:0 in
  let w = Mem.slot_of arch ~bank:3 ~line:2 in
  Alcotest.(check bool) "1R+1W same bank" true
    (Mem.access_ok arch ~reads:[ r ] ~writes:[ w ])

let test_two_matrices_one_write () =
  (* the headline capability: read two 4x4 matrices, write one, same cycle *)
  let m1 = List.init 4 (fun b -> Mem.slot_of arch ~bank:b ~line:0) in
  let m2 = List.init 4 (fun b -> Mem.slot_of arch ~bank:(b + 4) ~line:1) in
  let out = List.init 4 (fun b -> Mem.slot_of arch ~bank:(b + 8) ~line:2) in
  Alcotest.(check bool) "2 reads + 1 write matrices" true
    (Mem.access_ok arch ~reads:(m1 @ m2) ~writes:out)

let test_memory_cells () =
  let m = Mem.create arch in
  Alcotest.(check bool) "uninit" false (Mem.is_initialized m 3);
  let v = Array.make Value.vlen (Cplx.of_float 2.) in
  Mem.write m 3 v;
  Alcotest.(check bool) "init" true (Mem.is_initialized m 3);
  Alcotest.(check (float 0.)) "read back" 2. (Mem.read m 3).(0).Cplx.re;
  Alcotest.(check (list int)) "used" [ 3 ] (Mem.used_slots m);
  let m2 = Mem.copy m in
  Mem.write m 3 (Array.make Value.vlen Cplx.zero);
  Alcotest.(check (float 0.)) "copy isolated" 2. (Mem.read m2 3).(0).Cplx.re;
  Alcotest.check_raises "read uninit"
    (Invalid_argument "Mem.read: slot 5 uninitialized") (fun () ->
      ignore (Mem.read m 5))

(* property: any single-slot access is legal; any two distinct slots in
   the same bank conflict *)
let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"single access always legal" ~count:200
         QCheck2.Gen.(int_bound 63)
         (fun k -> Mem.access_ok arch ~reads:[ k ] ~writes:[]));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"same-bank distinct slots conflict" ~count:200
         QCheck2.Gen.(pair (int_bound 15) (pair (int_bound 3) (int_bound 3)))
         (fun (bank, (l1, l2)) ->
           QCheck2.assume (l1 <> l2);
           let s1 = Mem.slot_of arch ~bank ~line:l1 in
           let s2 = Mem.slot_of arch ~bank ~line:l2 in
           not (Mem.access_ok arch ~reads:[ s1; s2 ] ~writes:[])));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"same line never page-conflicts" ~count:200
         QCheck2.Gen.(pair (int_bound 3) (list_size (int_range 1 8) (int_bound 15)))
         (fun (line, banks) ->
           let banks = List.sort_uniq compare banks in
           let reads = List.map (fun bank -> Mem.slot_of arch ~bank ~line) banks in
           Mem.access_ok arch ~reads ~writes:[]));
  ]

let suite =
  [
    Alcotest.test_case "default parameters" `Quick test_defaults;
    Alcotest.test_case "with_slots" `Quick test_with_slots;
    Alcotest.test_case "latencies" `Quick test_latencies;
    Alcotest.test_case "slot coordinates" `Quick test_coords;
    Alcotest.test_case "Fig. 8" `Quick test_fig8;
    Alcotest.test_case "port limits" `Quick test_port_limits;
    Alcotest.test_case "duplicate reads" `Quick test_duplicate_reads_count_once;
    Alcotest.test_case "1R+1W per bank" `Quick test_read_write_same_bank_ok;
    Alcotest.test_case "two matrices in, one out" `Quick test_two_matrices_one_write;
    Alcotest.test_case "memory cells" `Quick test_memory_cells;
  ]
  @ props
