(* Dynamic execution of the §4.3 regimes: overlapped and modulo
   schedules materialized as machine programs and verified on the
   simulator, plus the utilization analysis and interval allocator. *)

open Eit_dsl
open Eit

let merged g = (Merge.run g).Merge.graph

let sched_of ?(budget = 20_000.) g =
  Option.get
    (Sched.Solve.run ~budget:(Fd.Search.time_budget budget) g).Sched.Solve.schedule

(* ---------------- Interval_alloc ---------------- *)

let test_interval_alloc_basic () =
  (* three nested intervals need three slots; disjoint ones reuse *)
  let a, n = Sched.Interval_alloc.color [ (0, 0, 10); (1, 2, 8); (2, 3, 5) ] in
  Alcotest.(check int) "nested: 3 slots" 3 n;
  Alcotest.(check bool) "all assigned" true
    (List.for_all (fun k -> Hashtbl.mem a k) [ 0; 1; 2 ]);
  let _, n2 = Sched.Interval_alloc.color [ (0, 0, 5); (1, 5, 9); (2, 9, 12) ] in
  Alcotest.(check int) "disjoint: 1 slot" 1 n2

let test_interval_alloc_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"coloring never overlaps" ~count:200
       QCheck2.Gen.(
         list_size (int_range 1 15) (pair (int_bound 20) (int_bound 10)))
       (fun raw ->
         let intervals =
           List.mapi (fun k (b, len) -> (k, b, b + len)) raw
         in
         let a, n = Sched.Interval_alloc.color intervals in
         (* no two same-slot intervals overlap *)
         List.for_all
           (fun (k1, b1, d1) ->
             List.for_all
               (fun (k2, b2, d2) ->
                 k1 = k2
                 || Hashtbl.find a k1 <> Hashtbl.find a k2
                 || max b1 b2 >= min (max d1 (b1 + 1)) (max d2 (b2 + 1)))
               intervals)
           intervals
         && n <= List.length intervals))

(* ---------------- Analysis ---------------- *)

let test_analysis_one_shot () =
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let sch = sched_of g in
  let a = Sched.Analysis.of_schedule sch in
  Alcotest.(check int) "span" (sch.Sched.Schedule.makespan + 1) a.Sched.Analysis.span;
  (* §4.2: the one-shot QRD schedule is heavily under-utilized *)
  Alcotest.(check bool) "under-utilized" true
    (Sched.Analysis.vector_utilization a < 0.25);
  Alcotest.(check bool) "has gaps" true (a.Sched.Analysis.longest_gap >= 7)

let test_analysis_modulo_improves () =
  let g = merged (Apps.Arf.graph (Apps.Arf.build ())) in
  let sch = sched_of g in
  let one_shot = Sched.Analysis.of_schedule sch in
  match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | Some r ->
    let steady = Sched.Analysis.of_modulo g Arch.default r in
    Alcotest.(check bool) "modulo utilization higher" true
      (Sched.Analysis.vector_utilization steady
      > Sched.Analysis.vector_utilization one_shot);
    Alcotest.(check int) "window = II" r.Sched.Modulo.ii steady.Sched.Analysis.span
  | None -> Alcotest.fail "modulo timeout"

let test_analysis_counts () =
  (* hand-made: 2 vector ops in one cycle over a 1-cycle... build chain *)
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 1.; 1.; 1. ] in
  let x = Dsl.v_add ctx a a in
  let _ = Dsl.v_mul ctx x x in
  let g = Dsl.graph ctx in
  let sch = sched_of g in
  let an = Sched.Analysis.of_schedule sch in
  let vec =
    List.find
      (fun r -> r.Sched.Analysis.resource = Opcode.Vector_core)
      an.Sched.Analysis.per_resource
  in
  Alcotest.(check int) "busy cycles" 2 vec.Sched.Analysis.busy_cycles;
  Alcotest.(check int) "lane-cycles" 2 vec.Sched.Analysis.issue_slots_used;
  Alcotest.(check int) "capacity" (4 * an.Sched.Analysis.span)
    vec.Sched.Analysis.issue_slots_total

(* ---------------- Overlap_sim ---------------- *)

let big_arch lines = { Arch.default with Arch.lines }

let test_overlap_sim_kernels () =
  List.iter
    (fun (name, g, m, lines) ->
      let sch = sched_of g in
      match Sched.Overlap_sim.run_and_check ~arch:(big_arch lines) sch ~m with
      | Ok r ->
        Alcotest.(check int)
          (name ^ " values checked")
          (m * List.length (Ir.op_nodes g))
          r.Sched.Overlap_sim.checked_values
      | Error e -> Alcotest.failf "%s: %s" name e)
    [
      ("matmul", merged (Apps.Matmul.graph (Apps.Matmul.build ())), 8, 16);
      ("arf", merged (Apps.Arf.graph (Apps.Arf.build ())), 7, 32);
      ("qrd", merged (Apps.Qrd.graph (Apps.Qrd.build ())), 12, 16);
    ]

let test_overlap_sim_matmul_strict () =
  (* MATMUL's single-configuration kernel overlaps without any port
     violation even under strict checking *)
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let sch = sched_of g in
  match Sched.Overlap_sim.run_and_check ~arch:(big_arch 16) sch ~m:8 with
  | Ok r -> Alcotest.(check bool) "strict" true r.Sched.Overlap_sim.access_clean
  | Error e -> Alcotest.fail e

let test_overlap_sim_memory_guard () =
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let sch = sched_of g in
  (* default memory (4 lines) cannot hold 12 iterations *)
  match Sched.Overlap_sim.to_program ~arch:Arch.default sch ~m:12 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected memory guard"

(* ---------------- Modulo_sim ---------------- *)

let test_modulo_sim_kernels () =
  List.iter
    (fun (name, g, n, lines) ->
      match Sched.Modulo.solve_excluding ~budget_ms:30_000. g with
      | None -> Alcotest.failf "%s: modulo timeout" name
      | Some r -> (
        match
          Sched.Modulo_sim.run_and_check ~arch:(big_arch lines) g r ~iterations:n
        with
        | Ok rep ->
          Alcotest.(check int)
            (name ^ " values")
            (n * List.length (Ir.op_nodes g))
            rep.Sched.Modulo_sim.checked_values
        | Error e -> Alcotest.failf "%s: %s" name e))
    [
      ("matmul", merged (Apps.Matmul.graph (Apps.Matmul.build ())), 6, 16);
      ("arf", merged (Apps.Arf.graph (Apps.Arf.build ())), 5, 32);
      ("qrd", merged (Apps.Qrd.graph (Apps.Qrd.build ())), 4, 32);
    ]

let test_modulo_sim_completion () =
  (* steady state: completion = span + (N-1)*II exactly for MATMUL *)
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | None -> Alcotest.fail "timeout"
  | Some r -> (
    match Sched.Modulo_sim.run_and_check ~arch:(big_arch 16) g r ~iterations:6 with
    | Ok rep ->
      Alcotest.(check int) "completion"
        (r.Sched.Modulo.span + (5 * r.Sched.Modulo.ii))
        rep.Sched.Modulo_sim.completion
    | Error e -> Alcotest.fail e)

let suite =
  [
    Alcotest.test_case "interval alloc basics" `Quick test_interval_alloc_basic;
    test_interval_alloc_property;
    Alcotest.test_case "analysis one-shot QRD" `Quick test_analysis_one_shot;
    Alcotest.test_case "analysis modulo improves" `Quick test_analysis_modulo_improves;
    Alcotest.test_case "analysis counts" `Quick test_analysis_counts;
    Alcotest.test_case "overlap sim kernels" `Slow test_overlap_sim_kernels;
    Alcotest.test_case "overlap sim matmul strict" `Quick test_overlap_sim_matmul_strict;
    Alcotest.test_case "overlap sim memory guard" `Quick test_overlap_sim_memory_guard;
    Alcotest.test_case "modulo sim kernels" `Slow test_modulo_sim_kernels;
    Alcotest.test_case "modulo sim completion" `Quick test_modulo_sim_completion;
  ]

(* ---------------- streaming inputs ---------------- *)

let test_streaming_modulo () =
  (* a stream of different matrices through the modulo-scheduled MATMUL:
     every iteration's 16 products must match that iteration's input *)
  let app = Apps.Matmul.build () in
  let g = merged (Apps.Matmul.graph app) in
  match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | None -> Alcotest.fail "timeout"
  | Some r ->
    let inputs = Ir.inputs g in
    let stream iter =
      List.mapi
        (fun row d ->
          ( d,
            Value.vector
              (Array.init 4 (fun col ->
                   Cplx.of_float (float_of_int ((iter * 16) + (row * 4) + col))))
          ))
        inputs
    in
    (match
       Sched.Modulo_sim.run_and_check ~stream ~arch:(big_arch 16) g r
         ~iterations:5
     with
    | Ok rep ->
      Alcotest.(check int) "all values" (5 * 20) rep.Sched.Modulo_sim.checked_values
    | Error e -> Alcotest.fail e)

let test_ir_eval_override () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let s = Dsl.v_squsum ctx a in
  let g = Dsl.graph ctx in
  let d = Dsl.node_of_scalar s in
  (* default: 30; overridden: 4 *)
  (match List.assoc d (Ir.eval g) with
  | Value.Scalar c -> Alcotest.(check (float 1e-9)) "default" 30. c.Cplx.re
  | _ -> Alcotest.fail "kind");
  let ones = Value.vector (Array.make 4 Cplx.one) in
  (match List.assoc d (Ir.eval ~inputs:[ (Dsl.node_of_vector a, ones) ] g) with
  | Value.Scalar c -> Alcotest.(check (float 1e-9)) "overridden" 4. c.Cplx.re
  | _ -> Alcotest.fail "kind");
  (* bad override rejected *)
  Alcotest.(check bool) "non-input rejected" true
    (match Ir.eval ~inputs:[ (d, ones) ] g with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "streaming modulo inputs" `Quick test_streaming_modulo;
      Alcotest.test_case "Ir.eval input override" `Quick test_ir_eval_override;
    ]

let test_streaming_qrd () =
  (* different channels per initiation through the modulo QRD kernel *)
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  match Sched.Modulo.solve_excluding ~budget_ms:20_000. g with
  | None -> Alcotest.fail "timeout"
  | Some r ->
    (* override the H columns (rows of the column-major input); keep sI *)
    let h_inputs =
      List.filter
        (fun d ->
          let label = (Ir.node g d).Ir.label in
          String.length label >= 1 && label.[0] = 'H')
        (Ir.inputs g)
    in
    Alcotest.(check int) "four H columns" 4 (List.length h_inputs);
    let stream iter =
      List.mapi
        (fun j d ->
          ( d,
            Value.vector
              (Array.init 4 (fun i ->
                   Cplx.make
                     (1. +. float_of_int ((iter + j + i) mod 3))
                     (0.1 *. float_of_int iter))) ))
        h_inputs
    in
    (match
       Sched.Modulo_sim.run_and_check ~stream ~arch:(big_arch 32) g r
         ~iterations:3
     with
    | Ok rep ->
      Alcotest.(check bool) "values verified per iteration" true
        (rep.Sched.Modulo_sim.checked_values = 3 * List.length (Ir.op_nodes g))
    | Error e -> Alcotest.fail e)

let suite = suite @ [ Alcotest.test_case "streaming qrd channels" `Quick test_streaming_qrd ]
