(* The heuristic list scheduler: validity, quality vs the exact model,
   and the corner where greed fails but CP knows better. *)

open Eit_dsl

let merged g = (Merge.run g).Merge.graph

let kernels =
  [
    ("matmul", fun () -> merged (Apps.Matmul.graph (Apps.Matmul.build ())));
    ("qrd", fun () -> merged (Apps.Qrd.graph (Apps.Qrd.build ())));
    ("arf", fun () -> merged (Apps.Arf.graph (Apps.Arf.build ())));
    ("detect", fun () -> merged (Apps.Detect.graph (Apps.Detect.build ())));
  ]

let test_valid_schedules () =
  List.iter
    (fun (name, g) ->
      match Sched.Heuristic.run (g ()) with
      | Ok sch ->
        Alcotest.(check (list string)) (name ^ " violations") []
          (List.map
             (fun v -> Format.asprintf "%a" Sched.Schedule.pp_violation v)
             (Sched.Schedule.validate sch))
      | Error e -> Alcotest.failf "%s: %s" name e)
    kernels

let test_never_beats_optimum () =
  List.iter
    (fun (name, g) ->
      let g = g () in
      match Sched.Heuristic.run g with
      | Ok heur -> (
        let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
        match (o.Sched.Solve.status, o.Sched.Solve.schedule) with
        | Sched.Solve.Optimal, Some exact ->
          Alcotest.(check bool) (name ^ " heuristic >= optimum") true
            (heur.Sched.Schedule.makespan >= exact.Sched.Schedule.makespan)
        | _ -> ())
      | Error e -> Alcotest.failf "%s: %s" name e)
    kernels

let test_simulates () =
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  match Sched.Heuristic.run g with
  | Ok sch -> (
    match Sched.Codegen.run_and_check sch with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

let test_tight_memory_degrades () =
  (* at the smallest memories, greedy allocation gives up where the CP
     model can still reason (or prove infeasibility) *)
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let at slots = Sched.Heuristic.run ~arch:(Eit.Arch.with_slots Eit.Arch.default slots) g in
  (match at 64 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "full memory should work: %s" e);
  (* find the smallest memory the heuristic still handles; below it, it
     must fail gracefully with an Error, never an invalid schedule *)
  List.iter
    (fun slots ->
      match at slots with
      | Ok sch ->
        Alcotest.(check bool)
          (Printf.sprintf "valid at %d slots" slots)
          true
          (Sched.Schedule.is_valid sch)
      | Error _ -> ())
    [ 16; 10; 8; 6; 4; 2 ]

let test_greedy_is_fast () =
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let t0 = Unix.gettimeofday () in
  (match Sched.Heuristic.run g with Ok _ -> () | Error e -> Alcotest.fail e);
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "sub-second" true (dt < 1.0)

let suite =
  [
    Alcotest.test_case "valid schedules" `Quick test_valid_schedules;
    Alcotest.test_case "never beats optimum" `Slow test_never_beats_optimum;
    Alcotest.test_case "simulates" `Quick test_simulates;
    Alcotest.test_case "tight memory degrades gracefully" `Quick test_tight_memory_degrades;
    Alcotest.test_case "greedy is fast" `Quick test_greedy_is_fast;
  ]

(* Random-program cross-check: on arbitrary DSL programs the greedy
   scheduler must stay valid and never beat a proven CP optimum. *)
let random_cross_check =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random programs: greedy valid, >= optimum"
       ~count:30
       QCheck2.Gen.(list_size (int_range 1 10) (int_bound 9))
       (fun script ->
         let ctx = Dsl.create () in
         let v0 = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
         let s0 = Dsl.scalar_input_f ctx 2. in
         let vecs = ref [ v0 ] and scas = ref [ s0 ] in
         let pick l k = List.nth l (k mod List.length l) in
         List.iteri
           (fun i op ->
             let v () = pick !vecs (i + 1) and sc () = pick !scas (i + 2) in
             match op with
             | 0 -> vecs := Dsl.v_add ctx (v ()) (v ()) :: !vecs
             | 1 -> vecs := Dsl.v_mul ctx (v ()) (v ()) :: !vecs
             | 2 -> scas := Dsl.v_dotp ctx (v ()) (v ()) :: !scas
             | 3 -> vecs := Dsl.v_scale ctx (v ()) (sc ()) :: !vecs
             | 4 -> scas := Dsl.s_add ctx (sc ()) (sc ()) :: !scas
             | 5 -> scas := Dsl.s_sqrt ctx (sc ()) :: !scas
             | 6 -> vecs := Dsl.splat ctx (sc ()) :: !vecs
             | 7 -> scas := Dsl.v_squsum ctx (v ()) :: !scas
             | 8 -> vecs := Dsl.v_naxpy ctx (v ()) (sc ()) (v ()) :: !vecs
             | _ -> scas := Dsl.index ctx (v ()) 2 :: !scas)
           script;
         let g = Dsl.graph ctx in
         match Sched.Heuristic.run g with
         | Error _ -> false
         | Ok heur -> (
           Sched.Schedule.is_valid heur
           && Sched.Codegen.run_and_check heur = Ok ()
           &&
           let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 5_000.) g in
           match (o.Sched.Solve.status, o.Sched.Solve.schedule) with
           | Sched.Solve.Optimal, Some exact ->
             heur.Sched.Schedule.makespan >= exact.Sched.Schedule.makespan
           | _ -> true)))

let suite = suite @ [ random_cross_check ]
