(* DSL: concrete evaluation agrees with direct computation and with the
   IR evaluator; matrix expansion; random-program consistency. *)

open Eit_dsl
open Eit

let test_vector_ops_values () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  let b = Dsl.vector_input_f ctx [ 4.; 3.; 2.; 1. ] in
  let s = Dsl.v_add ctx a b in
  Alcotest.(check (float 0.)) "add" 5. (Dsl.vector_value s).(0).Cplx.re;
  let d = Dsl.v_dotp ctx a b in
  Alcotest.(check (float 0.)) "dotp" 20. (Dsl.scalar_value d).Cplx.re;
  let sc = Dsl.s_sqrt ctx (Dsl.v_squsum ctx a) in
  Alcotest.(check (float 1e-9)) "norm" (sqrt 30.) (Dsl.scalar_value sc).Cplx.re

let test_matrix_expansion () =
  (* a matrix input contributes four vector data nodes, no matrix node *)
  let ctx = Dsl.create () in
  let m = Dsl.matrix_input_f ctx [ [1.;0.;0.;0.]; [0.;1.;0.;0.]; [0.;0.;1.;0.]; [0.;0.;0.;1.] ] in
  let _ = Dsl.m_squsum ctx m in
  let g = Dsl.graph ctx in
  Alcotest.(check int) "vector data" 5 (Ir.count g Ir.Vector_data);
  Alcotest.(check int) "matrix op" 1 (Ir.count g Ir.Matrix_op);
  Alcotest.(check int) "edges: 4 in + 1 out" 5 (Ir.edge_count g)

let test_matrix_op_vs_vector_expansion () =
  (* Fig. 4/5: m_squsum == four v_squsum + merge, on values *)
  let rows = [ [1.;2.;3.;4.]; [2.;3.;4.;5.]; [5.;6.;7.;8.]; [0.;1.;0.;1.] ] in
  let ctx = Dsl.create () in
  let m = Dsl.matrix_input_f ctx rows in
  let direct = Dsl.m_squsum ctx m in
  let parts = List.init 4 (fun i -> Dsl.v_squsum ctx (Dsl.row m i)) in
  let merged =
    match parts with
    | [ a; b; c; d ] -> Dsl.merge ctx a b c d
    | _ -> assert false
  in
  Alcotest.(check bool) "same result" true
    (Value.equal ~eps:1e-9
       (Value.Vector (Dsl.vector_value direct))
       (Value.Vector (Dsl.vector_value merged)));
  (* and the matrix version uses fewer nodes: 1 op + 1 data vs 4+4+1+1 *)
  let g = Dsl.graph ctx in
  Alcotest.(check int) "merge nodes" 1 (Ir.count g Ir.Merge)

let test_trace_matches_ir_eval () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; -2.; 3.; -4. ] in
  let b = Dsl.vector_input_f ctx [ 0.5; 0.25; -1.; 2. ] in
  let x = Dsl.v_mul ctx a b in
  let y = Dsl.v_axpy ctx x (Dsl.v_dotp ctx a b) b in
  let z = Dsl.v_sort ctx y in
  Dsl.mark_output ctx z;
  let g = Dsl.graph ctx in
  let vals = Ir.eval g in
  let traced = Dsl.vector_value z in
  match List.assoc (Dsl.node_of_vector z) vals with
  | Value.Vector evaluated ->
    Alcotest.(check bool) "trace = replay" true
      (Value.equal ~eps:1e-9 (Value.Vector traced) (Value.Vector evaluated))
  | _ -> Alcotest.fail "kind"

let test_outputs_declared () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 1.; 1.; 1. ] in
  let r = Dsl.v_add ctx a a in
  Dsl.mark_output ctx r;
  Alcotest.(check (list int)) "declared" [ Dsl.node_of_vector r ]
    (Dsl.declared_outputs ctx)

let test_index_and_splat () =
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 9.; 8.; 7.; 6. ] in
  let s = Dsl.index ctx a 2 in
  Alcotest.(check (float 0.)) "index" 7. (Dsl.scalar_value s).Cplx.re;
  let v = Dsl.splat ctx s in
  Alcotest.(check (float 0.)) "splat" 7. (Dsl.vector_value v).(3).Cplx.re;
  Alcotest.(check bool) "bad index rejected" true
    (match Dsl.index ctx a 7 with exception Invalid_argument _ -> true | _ -> false)

(* Random DSL programs: the graph always freezes, always validates, and
   IR evaluation matches the traced values on every data node. *)
let gen_program =
  QCheck2.Gen.(list_size (int_range 1 25) (int_bound 9))

let random_program_consistency =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random programs: trace = IR eval" ~count:100
       gen_program (fun script ->
         let ctx = Dsl.create () in
         let v0 = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
         let s0 = Dsl.scalar_input_f ctx 2. in
         let vecs = ref [ v0 ] and scas = ref [ s0 ] in
         let pick l k = List.nth l (k mod List.length l) in
         List.iteri
           (fun i op ->
             let v () = pick !vecs (i + 1) and sc () = pick !scas (i + 2) in
             match op with
             | 0 -> vecs := Dsl.v_add ctx (v ()) (v ()) :: !vecs
             | 1 -> vecs := Dsl.v_mul ctx (v ()) (v ()) :: !vecs
             | 2 -> scas := Dsl.v_dotp ctx (v ()) (v ()) :: !scas
             | 3 -> vecs := Dsl.v_scale ctx (v ()) (sc ()) :: !vecs
             | 4 -> scas := Dsl.s_add ctx (sc ()) (sc ()) :: !scas
             | 5 -> vecs := Dsl.v_conj ctx (v ()) :: !vecs
             | 6 -> vecs := Dsl.v_sort ctx (v ()) :: !vecs
             | 7 -> scas := Dsl.v_squsum ctx (v ()) :: !scas
             | 8 -> vecs := Dsl.splat ctx (sc ()) :: !vecs
             | _ -> vecs := Dsl.v_naxpy ctx (v ()) (sc ()) (v ()) :: !vecs)
           script;
         let g = Dsl.graph ctx in
         Ir.validate g = Ok ()
         &&
         let vals = Ir.eval g in
         List.for_all
           (fun v ->
             match List.assoc_opt (Dsl.node_of_vector v) vals with
             | Some got ->
               Value.equal ~eps:1e-6 got (Value.Vector (Dsl.vector_value v))
             | None -> false)
           !vecs))

let suite =
  [
    Alcotest.test_case "vector op values" `Quick test_vector_ops_values;
    Alcotest.test_case "matrix expansion" `Quick test_matrix_expansion;
    Alcotest.test_case "Fig. 4/5 equivalence" `Quick test_matrix_op_vs_vector_expansion;
    Alcotest.test_case "trace = IR eval" `Quick test_trace_matches_ir_eval;
    Alcotest.test_case "declared outputs" `Quick test_outputs_declared;
    Alcotest.test_case "index/splat" `Quick test_index_and_splat;
    random_program_consistency;
  ]
