(* The assembler: round-trips, hand-written programs, error reporting. *)

open Eit

let test_roundtrip_kernels () =
  let merged g = (Eit_dsl.Merge.run g).Eit_dsl.Merge.graph in
  List.iter
    (fun (name, g) ->
      let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
      let sch = Option.get o.Sched.Solve.schedule in
      let p = Sched.Codegen.program sch in
      match Asm.parse (Asm.print p) with
      | Ok p' ->
        Alcotest.(check bool) (name ^ " instrs") true (p'.Instr.instrs = p.Instr.instrs);
        Alcotest.(check bool) (name ^ " outputs") true (p'.Instr.outputs = p.Instr.outputs);
        (* inputs contain floats: compare through the simulator *)
        let r = Machine.run p and r' = Machine.run p' in
        List.iter
          (fun (node, v) ->
            Alcotest.(check bool) (name ^ " value") true
              (Value.equal ~eps:0. v (List.assoc node r'.Machine.node_values)))
          r.Machine.node_values
      | Error e -> Alcotest.failf "%s: %s" name e)
    [
      ("matmul", merged (Apps.Matmul.graph (Apps.Matmul.build ())));
      ("detect", merged (Apps.Detect.graph (Apps.Detect.build ())));
    ]

let hand_written =
  {|
; hand-written kernel: (a + b) . (a + b)
.arch eit
.input m[0] = 1, 2, 3, 4
.input m[1] = 4, 3, 2, 1
.output n3 -> r0

@0:
  V m[2] <- v_add(m[0], m[1]) @n1
@7:
  V m[3] <- v_add(m[2], m[2]) @n2   ; double it, why not
@14:
  V r0 <- v_dotP(m[3], m[3]) @n3
|}

let test_hand_written () =
  match Asm.parse hand_written with
  | Error e -> Alcotest.fail e
  | Ok p -> (
    Alcotest.(check int) "three cycles" 3 (List.length p.Instr.instrs);
    let r = Machine.run p in
    (* (2*(a+b)) . (2*(a+b)) with a+b = [5;5;5;5]: 4 * 100 = 400 *)
    match List.assoc 3 r.Machine.node_values with
    | Value.Scalar c -> Alcotest.(check (float 1e-9)) "dot" 400. c.Cplx.re
    | _ -> Alcotest.fail "kind")

let test_complex_literals () =
  List.iter
    (fun (text, re, im) ->
      let src =
        Printf.sprintf ".input r0 = %s\n@0:\n  S r1 <- s_add(r0, #0) @n1\n" text
      in
      match Asm.parse src with
      | Ok p -> (
        match p.Instr.inputs with
        | [ Instr.In_reg (0, c) ] ->
          Alcotest.(check (float 1e-12)) (text ^ " re") re c.Cplx.re;
          Alcotest.(check (float 1e-12)) (text ^ " im") im c.Cplx.im
        | _ -> Alcotest.fail "inputs")
      | Error e -> Alcotest.failf "%s: %s" text e)
    [
      ("1.5", 1.5, 0.); ("-2", -2., 0.); ("3+4i", 3., 4.); ("0.5-1i", 0.5, -1.);
      ("2i", 0., 2.); ("-i", 0., -1.); ("1e-3+2e2i", 0.001, 200.);
    ]

let test_errors_carry_line_numbers () =
  List.iter
    (fun (src, expect_frag) ->
      match Asm.parse src with
      | Ok _ -> Alcotest.failf "expected failure for %S" src
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S (got %S)" src expect_frag e)
          true
          (let rec contains i =
             i + String.length expect_frag <= String.length e
             && (String.sub e i (String.length expect_frag) = expect_frag
                || contains (i + 1))
           in
           contains 0))
    [
      ("@0:\n  V m[0] <- v_bogus(m[1])", "v_bogus");
      ("  V m[0] <- v_add(m[1], m[2])", "cycle header");
      (".arch quantum", "quantum");
      ("@0:\n  S r0 <- s_sqrt(r1)\n  S r2 <- s_sqrt(r1)", "two scalar");
      (".input m[0] = 1, 2", "4 values");
    ]

let test_preset_roundtrip () =
  let src = ".arch wide\n@0:\n  V m[0] <- v_id(m[1]) @n1\n" in
  match Asm.parse src with
  | Ok p ->
    Alcotest.(check int) "wide lanes" 8 p.Instr.arch.Arch.n_lanes;
    Alcotest.(check bool) "prints back" true
      (match Asm.parse (Asm.print p) with
      | Ok p' -> p'.Instr.arch = p.Instr.arch
      | Error _ -> false)
  | Error e -> Alcotest.fail e

let test_handwritten_validates () =
  (* the assembler + simulator give the hand-coder the same checks the
     compiler path gets *)
  let bad =
    "@0:\n  V m[2] <- v_add(m[0], m[1]) @n1\n  V m[3] <- v_mul(m[0], m[1]) @n2\n"
  in
  match Asm.parse bad with
  | Ok p ->
    Alcotest.(check bool) "mixed configs rejected" true
      (Result.is_error (Instr.validate_structure p))
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "kernel round-trips" `Slow test_roundtrip_kernels;
    Alcotest.test_case "hand-written kernel" `Quick test_hand_written;
    Alcotest.test_case "complex literals" `Quick test_complex_literals;
    Alcotest.test_case "error messages" `Quick test_errors_carry_line_numbers;
    Alcotest.test_case "presets" `Quick test_preset_roundtrip;
    Alcotest.test_case "hand-written validates" `Quick test_handwritten_validates;
  ]
