(* Complex arithmetic: algebraic properties. *)

open Eit

let gen_cplx =
  QCheck2.Gen.(
    let* re = float_range (-10.) 10. in
    let* im = float_range (-10.) 10. in
    return (Cplx.make re im))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:500 gen f)
let eqc = Cplx.equal ~eps:1e-6

let props =
  [
    prop "add commutative" QCheck2.Gen.(pair gen_cplx gen_cplx) (fun (a, b) ->
        eqc (Cplx.add a b) (Cplx.add b a));
    prop "mul commutative" QCheck2.Gen.(pair gen_cplx gen_cplx) (fun (a, b) ->
        eqc (Cplx.mul a b) (Cplx.mul b a));
    prop "mul associative" QCheck2.Gen.(triple gen_cplx gen_cplx gen_cplx)
      (fun (a, b, c) ->
        Cplx.equal ~eps:1e-3 (Cplx.mul a (Cplx.mul b c)) (Cplx.mul (Cplx.mul a b) c));
    prop "distributivity" QCheck2.Gen.(triple gen_cplx gen_cplx gen_cplx)
      (fun (a, b, c) ->
        Cplx.equal ~eps:1e-3
          (Cplx.mul a (Cplx.add b c))
          (Cplx.add (Cplx.mul a b) (Cplx.mul a c)));
    prop "conj involutive" gen_cplx (fun a -> eqc (Cplx.conj (Cplx.conj a)) a);
    prop "z * conj z = |z|^2" gen_cplx (fun a ->
        Cplx.equal ~eps:1e-4 (Cplx.mul a (Cplx.conj a)) (Cplx.of_float (Cplx.norm2 a)));
    prop "sqrt squares back" gen_cplx (fun a ->
        let r = Cplx.sqrt a in
        Cplx.equal ~eps:1e-4 (Cplx.mul r r) a);
    prop "sqrt principal branch" gen_cplx (fun a -> (Cplx.sqrt a).Cplx.re >= -1e-12);
    prop "div inverts mul" QCheck2.Gen.(pair gen_cplx gen_cplx) (fun (a, b) ->
        QCheck2.assume (Cplx.norm2 b > 1e-6);
        Cplx.equal ~eps:1e-4 (Cplx.div (Cplx.mul a b) b) a);
    prop "mac = add mul" QCheck2.Gen.(triple gen_cplx gen_cplx gen_cplx)
      (fun (acc, a, b) -> eqc (Cplx.mac acc a b) (Cplx.add acc (Cplx.mul a b)));
    prop "inv . inv = id" gen_cplx (fun a ->
        QCheck2.assume (Cplx.norm2 a > 1e-4);
        Cplx.equal ~eps:1e-3 (Cplx.inv (Cplx.inv a)) a);
    prop "compare_by_norm total order consistent" QCheck2.Gen.(pair gen_cplx gen_cplx)
      (fun (a, b) -> Cplx.compare_by_norm a b = -Cplx.compare_by_norm b a);
  ]

let test_constants () =
  Alcotest.(check bool) "i*i = -1" true
    (eqc (Cplx.mul Cplx.i Cplx.i) (Cplx.of_float (-1.)));
  Alcotest.(check bool) "one neutral" true (eqc (Cplx.mul Cplx.one (Cplx.make 3. 4.)) (Cplx.make 3. 4.));
  Alcotest.(check (float 1e-12)) "abs 3+4i" 5. (Cplx.abs (Cplx.make 3. 4.))

let test_div_by_zero () =
  Alcotest.check_raises "div by zero" (Invalid_argument "Cplx.div: division by zero")
    (fun () -> ignore (Cplx.div Cplx.one Cplx.zero))

let test_pp () =
  Alcotest.(check string) "real" "3" (Cplx.to_string (Cplx.of_float 3.));
  Alcotest.(check string) "pos im" "1+2i" (Cplx.to_string (Cplx.make 1. 2.));
  Alcotest.(check string) "neg im" "1-2i" (Cplx.to_string (Cplx.make 1. (-2.)))

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "printing" `Quick test_pp;
  ]
  @ props
