(* Arithmetic constraints checked against brute-force enumeration: the
   solutions reachable through propagation + search must be exactly the
   assignments satisfying the constraint's mathematical definition. *)

open Fd

(* Enumerate all solutions of the store over [vars] by exhaustive
   labelling with propagation. *)
let all_solutions s vars =
  let sols = ref [] in
  let rec go = function
    | [] -> sols := List.map Store.value vars :: !sols
    | v :: rest ->
      if Store.is_fixed v then go rest
      else
        List.iter
          (fun k ->
            Store.push_level s;
            (try
               Store.assign s v k;
               Store.propagate s;
               go rest
             with Store.Fail _ -> ());
            Store.pop_level s)
          (Dom.to_list (Store.dom v))
  in
  (try
     Store.propagate s;
     go vars
   with Store.Fail _ -> ());
  List.sort compare !sols

(* Brute force over the ORIGINAL domains. *)
let brute domains pred =
  let rec go acc = function
    | [] -> if pred (List.rev acc) then [ List.rev acc ] else []
    | d :: rest -> List.concat_map (fun v -> go (v :: acc) rest) d
  in
  List.sort compare (go [] domains)

(* One randomized comparison: build fresh store with [k] vars over the
   given domains, post the constraint, compare solution sets. *)
let oracle_test ~name ~vars:k ~post ~pred =
  let gen =
    QCheck2.Gen.(
      list_repeat k (list_size (int_range 1 4) (int_range (-6) 6)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:200 gen (fun raw_domains ->
         let domains = List.map (List.sort_uniq compare) raw_domains in
         let s = Store.create () in
         let vars = List.map (fun d -> Store.new_var s (Dom.of_list d)) domains in
         match post s vars with
         | () -> all_solutions s vars = brute domains pred
         | exception Store.Fail _ ->
           (* Root propagation failed: there must be no solution. *)
           brute domains pred = []))

let two f = function [ a; b ] -> f a b | _ -> assert false
let three f = function [ a; b; c ] -> f a b c | _ -> assert false

let oracles =
  [
    oracle_test ~name:"leq_offset (x+2<=y)" ~vars:2
      ~post:(fun s -> two (fun x y -> Arith.leq_offset s x 2 y))
      ~pred:(two (fun x y -> x + 2 <= y));
    oracle_test ~name:"lt" ~vars:2
      ~post:(fun s -> two (Arith.lt s))
      ~pred:(two (fun x y -> x < y));
    oracle_test ~name:"eq_offset (y=x+3)" ~vars:2
      ~post:(fun s -> two (fun x y -> Arith.eq_offset s x 3 y))
      ~pred:(two (fun x y -> y = x + 3));
    oracle_test ~name:"eq" ~vars:2
      ~post:(fun s -> two (Arith.eq s))
      ~pred:(two (fun x y -> x = y));
    oracle_test ~name:"neq" ~vars:2
      ~post:(fun s -> two (Arith.neq s))
      ~pred:(two (fun x y -> x <> y));
    oracle_test ~name:"neq_offset (x+1<>y)" ~vars:2
      ~post:(fun s -> two (fun x y -> Arith.neq_offset s x 1 y))
      ~pred:(two (fun x y -> x + 1 <> y));
    oracle_test ~name:"plus (z=x+y)" ~vars:3
      ~post:(fun s -> three (Arith.plus s))
      ~pred:(three (fun x y z -> z = x + y));
    oracle_test ~name:"max_of" ~vars:3
      ~post:(fun s -> three (fun x y m -> Arith.max_of s [ x; y ] m))
      ~pred:(three (fun x y m -> m = max x y));
    oracle_test ~name:"min_of" ~vars:3
      ~post:(fun s -> three (fun x y m -> Arith.min_of s [ x; y ] m))
      ~pred:(three (fun x y m -> m = min x y));
    oracle_test ~name:"mul_const (y=3x)" ~vars:2
      ~post:(fun s -> two (fun x y -> Arith.mul_const s 3 x y))
      ~pred:(two (fun x y -> y = 3 * x));
    oracle_test ~name:"mul_const (y=-2x)" ~vars:2
      ~post:(fun s -> two (fun x y -> Arith.mul_const s (-2) x y))
      ~pred:(two (fun x y -> y = -2 * x));
    oracle_test ~name:"linear_leq (2x - y <= 3)" ~vars:2
      ~post:(fun s -> two (fun x y -> Arith.linear_leq s [ (2, x); (-1, y) ] 3))
      ~pred:(two (fun x y -> (2 * x) - y <= 3));
    oracle_test ~name:"linear_eq (x + 2y = 4)" ~vars:2
      ~post:(fun s -> two (fun x y -> Arith.linear_eq s [ (1, x); (2, y) ] 4))
      ~pred:(two (fun x y -> x + (2 * y) = 4));
    oracle_test ~name:"sum" ~vars:3
      ~post:(fun s -> three (fun x y t -> Arith.sum s [ x; y ] t))
      ~pred:(three (fun x y t -> t = x + y));
    oracle_test ~name:"all_different" ~vars:3
      ~post:(fun s vars -> Arith.all_different s vars)
      ~pred:(three (fun x y z -> x <> y && y <> z && x <> z));
  ]

(* div/mod need non-negative operands. *)
let div_mod_oracles =
  let gen =
    QCheck2.Gen.(list_repeat 2 (list_size (int_range 1 4) (int_range 0 20)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"div_const (q=x/4)" ~count:200 gen (fun raw ->
           let domains = List.map (List.sort_uniq compare) raw in
           let s = Store.create () in
           let vars = List.map (fun d -> Store.new_var s (Dom.of_list d)) domains in
           match List.iter2 (fun _ _ -> ()) vars vars; vars with
           | [ x; q ] -> (
             match Arith.div_const s x 4 q with
             | () -> all_solutions s vars = brute domains (two (fun x q -> q = x / 4))
             | exception Store.Fail _ -> brute domains (two (fun x q -> q = x / 4)) = [])
           | _ -> assert false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"mod_const (r=x mod 5)" ~count:200 gen (fun raw ->
           let domains = List.map (List.sort_uniq compare) raw in
           let s = Store.create () in
           let vars = List.map (fun d -> Store.new_var s (Dom.of_list d)) domains in
           match vars with
           | [ x; r ] -> (
             match Arith.mod_const s x 5 r with
             | () -> all_solutions s vars = brute domains (two (fun x r -> r = x mod 5))
             | exception Store.Fail _ ->
               brute domains (two (fun x r -> r = x mod 5)) = [])
           | _ -> assert false));
  ]

let test_propagation_strength () =
  (* leq chain: x + 1 <= y, y + 1 <= z with z <= 2 forces x = 0 *)
  let s = Store.create () in
  let x = Store.interval_var s 0 9 in
  let y = Store.interval_var s 0 9 in
  let z = Store.interval_var s 0 2 in
  Arith.leq_offset s x 1 y;
  Arith.leq_offset s y 1 z;
  Store.propagate s;
  Alcotest.(check int) "x max" 0 (Store.vmax x);
  Alcotest.(check int) "y max" 1 (Store.vmax y)

let suite =
  (Alcotest.test_case "bounds chain" `Quick test_propagation_strength :: oracles)
  @ div_mod_oracles
