(* Diff2: ground checker + solver completeness against brute force. *)

open Fd

let test_check () =
  Alcotest.(check bool) "disjoint" true
    (Diff2.check [ (0, 0, 2, 1); (2, 0, 2, 1) ]);
  Alcotest.(check bool) "overlap" false
    (Diff2.check [ (0, 0, 2, 2); (1, 1, 2, 2) ]);
  Alcotest.(check bool) "zero width never overlaps" true
    (Diff2.check [ (0, 0, 0, 5); (0, 0, 3, 3) ]);
  Alcotest.(check bool) "touching edges ok" true
    (Diff2.check [ (0, 0, 2, 2); (0, 2, 2, 2) ])

let test_forced_separation () =
  (* Same x interval, heights 1, y in 0..1: y's must differ. *)
  let s = Store.create () in
  let one = Store.const s 1 and zero = Store.const s 0 in
  let y1 = Store.interval_var s 0 1 and y2 = Store.interval_var s 0 1 in
  Diff2.post s
    [
      { Diff2.ox = zero; oy = y1; lx = one; ly = one };
      { Diff2.ox = zero; oy = y2; lx = one; ly = one };
    ];
  Store.assign s y1 0;
  Store.propagate s;
  Alcotest.(check int) "y2 pushed away" 1 (Store.vmin y2)

let test_infeasible () =
  (* Three 1x1 rectangles, same x, y domain of size two: unsat. *)
  let s = Store.create () in
  let one = Store.const s 1 and zero = Store.const s 0 in
  let ys = List.init 3 (fun _ -> Store.interval_var s 0 1) in
  Diff2.post s
    (List.map (fun y -> { Diff2.ox = zero; oy = y; lx = one; ly = one }) ys);
  match Search.solve s [ Search.phase ys ] ~on_solution:(fun () -> ()) with
  | Search.Unsat _ -> ()
  | _ -> Alcotest.fail "expected unsat"

let gen_instance =
  QCheck2.Gen.(
    let* n = int_range 2 3 in
    let* sizes = list_repeat n (pair (int_range 1 2) (int_range 1 2)) in
    return (n, sizes))

let oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"diff2 = brute force" ~count:100 gen_instance
       (fun (n, sizes) ->
         let bound = 2 in
         let s = Store.create () in
         let vars =
           List.map
             (fun (w, h) ->
               let x = Store.interval_var s 0 bound in
               let y = Store.interval_var s 0 bound in
               ((x, y), (w, h)))
             sizes
         in
         Diff2.post s
           (List.map
              (fun ((x, y), (w, h)) ->
                { Diff2.ox = x; oy = y; lx = Store.const s w; ly = Store.const s h })
              vars);
         let flat = List.concat_map (fun ((x, y), _) -> [ x; y ]) vars in
         let found = T_arith.all_solutions s flat in
         let domains = List.init (2 * n) (fun _ -> List.init (bound + 1) Fun.id) in
         let expected =
           T_arith.brute domains (fun assignment ->
               let rec pack = function
                 | x :: y :: rest, (w, h) :: srest ->
                   (x, y, w, h) :: pack (rest, srest)
                 | [], [] -> []
                 | _ -> assert false
               in
               Diff2.check (pack (assignment, sizes)))
         in
         found = expected))

let suite =
  [
    Alcotest.test_case "ground checker" `Quick test_check;
    Alcotest.test_case "forced separation" `Quick test_forced_separation;
    Alcotest.test_case "infeasible packing" `Quick test_infeasible;
    oracle;
  ]

(* ---------------- variable lengths (the scheduler's lifetime use) --- *)

let var_length_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"diff2 with variable lengths = brute force"
       ~count:100
       QCheck2.Gen.(pair (int_range 1 2) (int_range 1 2))
       (fun (lmax1, lmax2) ->
         let bound = 2 in
         let s = Store.create () in
         let x1 = Store.interval_var s 0 bound in
         let l1 = Store.interval_var s 0 lmax1 in
         let x2 = Store.interval_var s 0 bound in
         let l2 = Store.interval_var s 0 lmax2 in
         let y1 = Store.interval_var s 0 1 and y2 = Store.interval_var s 0 1 in
         let one = Store.const s 1 in
         Diff2.post s
           [
             { Diff2.ox = x1; oy = y1; lx = l1; ly = one };
             { Diff2.ox = x2; oy = y2; lx = l2; ly = one };
           ];
         let domains =
           [ List.init (bound + 1) Fun.id; List.init (lmax1 + 1) Fun.id;
             List.init 2 Fun.id;
             List.init (bound + 1) Fun.id; List.init (lmax2 + 1) Fun.id;
             List.init 2 Fun.id ]
         in
         let expected =
           T_arith.brute domains (function
             | [ a; la; ya; b; lb; yb ] ->
               Diff2.check [ (a, ya, la, 1); (b, yb, lb, 1) ]
             | _ -> assert false)
         in
         T_arith.all_solutions s [ x1; l1; y1; x2; l2; y2 ] = expected))

let test_variable_length_pruning () =
  (* both rectangles pinned to row 0 and x-overlapping starts: the
     second one's length is driven to zero or it must move *)
  let s = Store.create () in
  let zero = Store.const s 0 and one = Store.const s 1 in
  let l = Store.interval_var s 0 5 in
  Diff2.post s
    [
      { Diff2.ox = zero; oy = zero; lx = Store.const s 3; ly = one };
      { Diff2.ox = Store.const s 1; oy = zero; lx = l; ly = one };
    ];
  Store.propagate s;
  Alcotest.(check int) "length forced to 0" 0 (Store.vmax l)

let suite =
  suite
  @ [ var_length_oracle;
      Alcotest.test_case "variable length pruning" `Quick test_variable_length_pruning ]
