(* Overlapped execution and the manual baseline (Table 2 machinery). *)

open Eit_dsl

let merged g = (Merge.run g).Merge.graph

let qrd_sched =
  lazy
    (let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
     let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
     Option.get o.Sched.Solve.schedule)

let test_min_overlap () =
  let sch = Lazy.force qrd_sched in
  Alcotest.(check int) "pipeline depth" 7 (Sched.Overlap.min_overlap sch)

let test_rejects_small_m () =
  let sch = Lazy.force qrd_sched in
  Alcotest.(check bool) "m=3 rejected" true
    (match Sched.Overlap.run sch ~m:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_overlap_structure () =
  let sch = Lazy.force qrd_sched in
  let ov = Sched.Overlap.run sch ~m:12 in
  Alcotest.(check int) "length = N*M + drain"
    ((ov.Sched.Overlap.n_instructions * 12) + ov.Sched.Overlap.drain)
    ov.Sched.Overlap.length;
  Alcotest.(check bool) "throughput consistent" true
    (abs_float (ov.Sched.Overlap.throughput -. (12. /. float_of_int ov.Sched.Overlap.length))
    < 1e-9);
  (* instruction count = number of distinct issue cycles *)
  let cycles =
    List.sort_uniq compare
      (List.map (fun i -> sch.Sched.Schedule.start.(i)) (Ir.op_nodes sch.Sched.Schedule.ir))
  in
  Alcotest.(check int) "N = issue cycles" (List.length cycles)
    ov.Sched.Overlap.n_instructions

let test_issue_cycle () =
  let sch = Lazy.force qrd_sched in
  let ov = Sched.Overlap.run sch ~m:8 in
  Alcotest.(check int) "instr 0 iter 0" 0 (Sched.Overlap.issue_cycle ov ~instr:0 ~iter:0);
  Alcotest.(check int) "instr 2 iter 3" 19 (Sched.Overlap.issue_cycle ov ~instr:2 ~iter:3);
  Alcotest.(check bool) "out of range" true
    (match Sched.Overlap.issue_cycle ov ~instr:0 ~iter:9 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* dependencies between instructions are masked: for every dependent op
   pair in the same iteration, bundle indices are strictly increasing,
   so the M-cycle gap covers the 7-cycle latency when M >= 7 *)
let test_dependency_masking () =
  let sch = Lazy.force qrd_sched in
  let ov = Sched.Overlap.run sch ~m:7 in
  let g = sch.Sched.Schedule.ir in
  let index_of = Hashtbl.create 64 in
  List.iteri
    (fun k (_, ops) -> List.iter (fun i -> Hashtbl.replace index_of i k) ops)
    ov.Sched.Overlap.bundles;
  List.iter
    (fun i ->
      List.iter
        (fun d ->
          List.iter
            (fun j ->
              let ki = Hashtbl.find index_of i and kj = Hashtbl.find index_of j in
              Alcotest.(check bool) "producer before consumer" true (ki < kj);
              let gap = (kj - ki) * ov.Sched.Overlap.m in
              Alcotest.(check bool) "latency masked" true
                (gap >= Sched.Schedule.latency_of sch i))
            (Ir.succs g d))
        (Ir.succs g i))
    (Ir.op_nodes g)

let test_manual_baseline_structure () =
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let man = Sched.Manual_baseline.run g Eit.Arch.default in
  (* every op appears exactly once *)
  let all = List.concat man.Sched.Manual_baseline.bundles in
  Alcotest.(check int) "all ops bundled" (List.length (Ir.op_nodes g)) (List.length all);
  Alcotest.(check (list int)) "no duplicates" (List.sort compare all)
    (List.sort compare (List.sort_uniq compare all));
  (* bundle capacity and configuration rules *)
  List.iter
    (fun bundle ->
      let vector =
        List.filter
          (fun i -> Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core)
          bundle
      in
      let lanes =
        List.fold_left (fun acc i -> acc + Eit.Opcode.lanes (Ir.opcode g i)) 0 vector
      in
      Alcotest.(check bool) "lanes" true (lanes <= 4);
      (match vector with
      | first :: rest ->
        List.iter
          (fun i ->
            Alcotest.(check bool) "same config" true
              (Eit.Opcode.config_equal (Ir.opcode g first) (Ir.opcode g i)))
          rest
      | [] -> ());
      let count rc =
        List.length
          (List.filter (fun i -> Eit.Opcode.resource (Ir.opcode g i) = rc) bundle)
      in
      Alcotest.(check bool) "one scalar" true (count Eit.Opcode.Scalar_accel <= 1);
      Alcotest.(check bool) "one im" true (count Eit.Opcode.Index_merge <= 1))
    man.Sched.Manual_baseline.bundles;
  (* dependencies respected across bundles *)
  let index_of = Hashtbl.create 64 in
  List.iteri
    (fun k ops -> List.iter (fun i -> Hashtbl.replace index_of i k) ops)
    man.Sched.Manual_baseline.bundles;
  List.iter
    (fun i ->
      List.iter
        (fun d ->
          List.iter
            (fun j ->
              Alcotest.(check bool) "dep order" true
                (Hashtbl.find index_of i < Hashtbl.find index_of j))
            (Ir.succs g d))
        (Ir.succs g i))
    (Ir.op_nodes g)

let test_manual_at_most_automated_instructions () =
  (* the whole point of the manual flow: it minimizes instruction count *)
  let g = merged (Apps.Qrd.graph (Apps.Qrd.build ())) in
  let man = Sched.Manual_baseline.overlapped g Eit.Arch.default ~m:12 in
  let auto = Sched.Overlap.run (Lazy.force qrd_sched) ~m:12 in
  Alcotest.(check bool) "manual <= automated instructions" true
    (man.Sched.Overlap.n_instructions <= auto.Sched.Overlap.n_instructions);
  Alcotest.(check bool) "manual throughput >= automated" true
    (man.Sched.Overlap.throughput >= auto.Sched.Overlap.throughput)

let test_matmul_overlap_reconfigs () =
  (* MATMUL has a single vector configuration: overlapping never
     reconfigures *)
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 10_000.) g in
  let sch = Option.get o.Sched.Solve.schedule in
  let ov = Sched.Overlap.run sch ~m:8 in
  Alcotest.(check int) "no reconfig" 0 ov.Sched.Overlap.reconfigurations

let suite =
  [
    Alcotest.test_case "min_overlap" `Quick test_min_overlap;
    Alcotest.test_case "rejects small M" `Quick test_rejects_small_m;
    Alcotest.test_case "overlap structure" `Quick test_overlap_structure;
    Alcotest.test_case "issue_cycle" `Quick test_issue_cycle;
    Alcotest.test_case "dependency masking" `Quick test_dependency_masking;
    Alcotest.test_case "manual baseline structure" `Quick test_manual_baseline_structure;
    Alcotest.test_case "manual minimizes instructions" `Quick test_manual_at_most_automated_instructions;
    Alcotest.test_case "matmul zero reconfigs" `Quick test_matmul_overlap_reconfigs;
  ]
