(* Code generation + simulation: the end-to-end verification loop on all
   three kernels and hand-made cases. *)

open Eit_dsl

let merged g = (Merge.run g).Merge.graph

let schedule_of g =
  let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
  Option.get o.Sched.Solve.schedule

let check_kernel name g =
  Alcotest.test_case name `Slow (fun () ->
      let sch = schedule_of (merged g) in
      match Sched.Codegen.run_and_check sch with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)

let test_program_structure () =
  let sch = schedule_of (merged (Apps.Matmul.graph (Apps.Matmul.build ()))) in
  let p = Sched.Codegen.program sch in
  Alcotest.(check bool) "structurally valid" true
    (Eit.Instr.validate_structure p = Ok ());
  (* inputs: 4 vector rows preloaded *)
  let slots_preloaded =
    List.filter (function Eit.Instr.In_slot _ -> true | _ -> false) p.Eit.Instr.inputs
  in
  Alcotest.(check int) "preloaded vectors" 4 (List.length slots_preloaded);
  Alcotest.(check int) "non-empty cycles = bundles" (Eit.Instr.length p)
    (List.length
       (List.sort_uniq compare
          (List.map (fun i -> sch.Sched.Schedule.start.(i)) (Ir.op_nodes sch.Sched.Schedule.ir))))

let test_matmul_output_values () =
  let app = Apps.Matmul.build () in
  let sch = schedule_of (merged (Apps.Matmul.graph app)) in
  let p = Sched.Codegen.program sch in
  let r = Eit.Machine.run p in
  (* compare against the plain reference: rows of A * A^T *)
  let a =
    Array.of_list
      (List.map (fun row -> Array.of_list (List.map Eit.Cplx.of_float row))
         Apps.Matmul.default_input)
  in
  let expect = Apps.Reference.matmul_aat a in
  (* Outputs are streamed at write-back (their slots may be reused
     afterwards), so read the recorded per-node values, not the final
     memory image. *)
  let g = sch.Sched.Schedule.ir in
  let outs =
    List.filter_map
      (fun d ->
        match Ir.producer g d with
        | Some op when Ir.succs g d = [] ->
          Some (d, List.assoc op r.Eit.Machine.node_values)
        | _ -> None)
      (Ir.data_nodes g)
  in
  Alcotest.(check int) "four rows" 4 (List.length outs);
  (* output nodes are the merged rows in creation order *)
  let sorted = List.sort compare outs in
  List.iteri
    (fun i (_, v) ->
      let row = Eit.Value.as_vector v in
      Array.iteri
        (fun j x ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "C[%d][%d]" i j)
            expect.(i).(j).Eit.Cplx.re x.Eit.Cplx.re)
        row)
    sorted

let test_missing_slot_rejected () =
  let sch = schedule_of (merged (Apps.Matmul.graph (Apps.Matmul.build ()))) in
  let broken = { sch with Sched.Schedule.slot = [] } in
  Alcotest.(check bool) "rejected" true
    (match Sched.Codegen.program broken with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_qrd_q_columns () =
  (* full numeric check: simulated Q columns = reference Q *)
  let app = Apps.Qrd.build () in
  let g = merged (Apps.Qrd.graph app) in
  let sch = schedule_of g in
  let p = Sched.Codegen.program sch in
  let r = Eit.Machine.run p in
  let reference = Apps.Reference.mgs_qrd Apps.Qrd.default_h ~sigma:0.5 in
  (* node ids survive the merge pass via the data map; QRD has no
     fusions, but map anyway for robustness *)
  let remap = Merge.run (Apps.Qrd.graph app) in
  Array.iteri
    (fun k col ->
      let old_id = Dsl.node_of_vector col in
      let new_id = Merge.map_data remap old_id in
      match Ir.producer g new_id with
      | Some op ->
        let v = Eit.Value.as_vector (List.assoc op r.Eit.Machine.node_values) in
        Array.iteri
          (fun i x ->
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "Q[%d][%d].re" i k)
              reference.Apps.Reference.q.(i).(k).Eit.Cplx.re x.Eit.Cplx.re)
          v
      | None -> Alcotest.fail "q column has no producer")
    app.Apps.Qrd.q_top

let suite =
  [
    Alcotest.test_case "program structure" `Quick test_program_structure;
    Alcotest.test_case "matmul values" `Quick test_matmul_output_values;
    Alcotest.test_case "missing slot rejected" `Quick test_missing_slot_rejected;
    Alcotest.test_case "qrd Q columns" `Quick test_qrd_q_columns;
    check_kernel "matmul end-to-end" (Apps.Matmul.graph (Apps.Matmul.build ()));
    check_kernel "arf end-to-end" (Apps.Arf.graph (Apps.Arf.build ()));
    check_kernel "qrd end-to-end" (Apps.Qrd.graph (Apps.Qrd.build ()));
  ]
