(* Makespan lower bounds, the Table constraint, and the tiny-graph
   scheduling oracle (solver optimum = brute force). *)

open Eit_dsl

let merged g = (Merge.run g).Merge.graph

(* ---------------- Bounds ---------------- *)

let test_bounds_kernels () =
  List.iter
    (fun (name, g, expect_dominant) ->
      let b = Sched.Bounds.compute g Eit.Arch.default in
      let o = Sched.Solve.run ~budget:(Fd.Search.time_budget 20_000.) g in
      let sch = Option.get o.Sched.Solve.schedule in
      Alcotest.(check bool) (name ^ " bound sound") true
        (sch.Sched.Schedule.makespan >= b.Sched.Bounds.makespan);
      match expect_dominant with
      | `Cp ->
        Alcotest.(check int) (name ^ " CP-dominant") b.Sched.Bounds.critical_path
          b.Sched.Bounds.makespan;
        (* CP-dominated kernels: zero gap certifies optimality *)
        Alcotest.(check int) (name ^ " gap") 0 (Sched.Bounds.gap b sch)
      | `Any ->
        (* the bound families are independent, so a small slack can
           remain (MATMUL: load says >= 10, the merge chain makes 11) *)
        Alcotest.(check bool) (name ^ " gap small") true
          (Sched.Bounds.gap b sch <= 1))
    [
      ("qrd", merged (Apps.Qrd.graph (Apps.Qrd.build ())), `Cp);
      ("arf", merged (Apps.Arf.graph (Apps.Arf.build ())), `Cp);
      ("matmul", merged (Apps.Matmul.graph (Apps.Matmul.build ())), `Any);
    ]

let test_bounds_matmul_structure () =
  let g = merged (Apps.Matmul.graph (Apps.Matmul.build ())) in
  let b = Sched.Bounds.compute g Eit.Arch.default in
  (* 16 dotp on 4 lanes: 4 issue cycles - 1 + 7 latency = 10 *)
  Alcotest.(check int) "vector load" 10 b.Sched.Bounds.vector_load;
  (* 4 merges on the serial unit: 4 - 1 + 1 = 4 *)
  Alcotest.(check int) "im load" 4 b.Sched.Bounds.im_load;
  Alcotest.(check int) "critical path" 8 b.Sched.Bounds.critical_path;
  Alcotest.(check int) "combined" 10 b.Sched.Bounds.makespan

let test_bounds_config_classes () =
  (* 4 adds + 4 muls: 2 classes x 1 cycle each = 2 issues - 1 + 7 = 8 *)
  let ctx = Dsl.create () in
  let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
  for _ = 1 to 4 do
    ignore (Dsl.v_add ctx a a);
    ignore (Dsl.v_mul ctx a a)
  done;
  let b = Sched.Bounds.compute (Dsl.graph ctx) Eit.Arch.default in
  Alcotest.(check int) "two classes" 8 b.Sched.Bounds.vector_load

(* ---------------- Table ---------------- *)

let table_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"table = brute force" ~count:200
       QCheck2.Gen.(
         pair
           (list_size (int_range 1 6) (array_size (return 3) (int_range 0 3)))
           (list_repeat 3 (list_size (int_range 1 3) (int_range 0 3))))
       (fun (rows, domains) ->
         let domains = List.map (List.sort_uniq compare) domains in
         let s = Fd.Store.create () in
         let vars = List.map (fun d -> Fd.Store.new_var s (Fd.Dom.of_list d)) domains in
         let expected =
           T_arith.brute domains (fun vals ->
               List.exists (fun row -> Array.to_list row = vals) rows)
         in
         match Fd.Table.post s vars rows with
         | () -> T_arith.all_solutions s vars = expected
         | exception Fd.Store.Fail _ -> expected = []))

let test_table_gac () =
  (* GAC: unsupported values disappear at the root *)
  let s = Fd.Store.create () in
  let x = Fd.Store.interval_var s 0 5 in
  let y = Fd.Store.interval_var s 0 5 in
  Fd.Table.post s [ x; y ] [ [| 1; 2 |]; [| 1; 4 |]; [| 3; 0 |] ];
  Alcotest.(check (list int)) "x support" [ 1; 3 ] (Fd.Dom.to_list (Fd.Store.dom x));
  Alcotest.(check (list int)) "y support" [ 0; 2; 4 ] (Fd.Dom.to_list (Fd.Store.dom y));
  Fd.Store.assign s x 3;
  Fd.Store.propagate s;
  Alcotest.(check int) "y follows" 0 (Fd.Store.value y)

(* ---------------- tiny-graph scheduling oracle ---------------- *)

(* Brute-force optimal makespan of a tiny IR by enumerating all start
   assignments up to a horizon and checking the ground rules. *)
let brute_makespan g arch horizon =
  let ops = Ir.op_nodes g in
  let nops = List.length ops in
  let lat i = Eit.Arch.latency arch (Ir.opcode g i) in
  let valid starts =
    let start_of = List.combine ops starts in
    (* data-edge precedence through the data nodes *)
    List.for_all
      (fun i ->
        match Ir.succs g i with
        | [ d ] ->
          List.for_all
            (fun j -> List.assoc i start_of + lat i <= List.assoc j start_of)
            (Ir.succs g d)
        | _ -> false)
      ops
    && (* per-cycle rules *)
    List.for_all
      (fun c ->
        let here = List.filter (fun i -> List.assoc i start_of = c) ops in
        let vec =
          List.filter
            (fun i -> Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core)
            here
        in
        let lanes =
          List.fold_left (fun acc i -> acc + Eit.Opcode.lanes (Ir.opcode g i)) 0 vec
        in
        lanes <= arch.Eit.Arch.n_lanes
        && (match vec with
           | f :: rest ->
             List.for_all
               (fun i -> Eit.Opcode.config_equal (Ir.opcode g f) (Ir.opcode g i))
               rest
           | [] -> true)
        && List.length
             (List.filter
                (fun i -> Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Scalar_accel)
                here)
           <= 1
        && List.length
             (List.filter
                (fun i -> Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Index_merge)
                here)
           <= 1)
      (List.init (horizon + 1) Fun.id)
  in
  let best = ref max_int in
  let rec go acc = function
    | 0 ->
      let starts = List.rev acc in
      if valid starts then
        best :=
          min !best
            (List.fold_left2 (fun m i s -> max m (s + lat i)) 0 ops starts)
    | k ->
      for c = 0 to horizon do
        go (c :: acc) (k - 1)
      done
  in
  go [] nops;
  !best

let scheduling_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"tiny graphs: solver = brute force" ~count:15
       QCheck2.Gen.(list_size (int_range 1 3) (int_bound 3))
       (fun script ->
         let ctx = Dsl.create () in
         let a = Dsl.vector_input_f ctx [ 1.; 2.; 3.; 4. ] in
         let vecs = ref [ a ] in
         let pick k = List.nth !vecs (k mod List.length !vecs) in
         List.iteri
           (fun i op ->
             match op with
             | 0 -> vecs := Dsl.v_add ctx (pick i) (pick (i + 1)) :: !vecs
             | 1 -> vecs := Dsl.v_mul ctx (pick i) (pick (i + 1)) :: !vecs
             | 2 -> ignore (Dsl.v_squsum ctx (pick i))
             | _ -> vecs := Dsl.v_sort ctx (pick i) :: !vecs)
           script;
         let g = Dsl.graph ctx in
         (* memory off: the brute force enumerates time only *)
         let o =
           Sched.Solve.run ~memory:false
             ~budget:(Fd.Search.time_budget 10_000.)
             g
         in
         match o.Sched.Solve.schedule with
         | Some sch when o.Sched.Solve.status = Sched.Solve.Optimal ->
           let horizon = 21 in
           sch.Sched.Schedule.makespan = brute_makespan g Eit.Arch.default horizon
         | _ -> false))

let suite =
  [
    Alcotest.test_case "bounds on kernels" `Slow test_bounds_kernels;
    Alcotest.test_case "bounds matmul structure" `Quick test_bounds_matmul_structure;
    Alcotest.test_case "bounds config classes" `Quick test_bounds_config_classes;
    table_oracle;
    Alcotest.test_case "table GAC" `Quick test_table_gac;
    scheduling_oracle;
  ]
