(* Opcode semantics, arities, names and configuration equality. *)

open Eit

let c = Cplx.of_float
let vec l = Value.vector_of_floats l
let sca f = Value.scalar (c f)

let eqv = Value.equal ~eps:1e-9

let test_elementwise () =
  let a = vec [ 1.; 2.; 3.; 4. ] and b = vec [ 10.; 20.; 30.; 40. ] in
  Alcotest.(check bool) "add" true
    (eqv (Opcode.eval (Opcode.v Vadd) [ a; b ]) (vec [ 11.; 22.; 33.; 44. ]));
  Alcotest.(check bool) "sub" true
    (eqv (Opcode.eval (Opcode.v Vsub) [ b; a ]) (vec [ 9.; 18.; 27.; 36. ]));
  Alcotest.(check bool) "mul" true
    (eqv (Opcode.eval (Opcode.v Vmul) [ a; b ]) (vec [ 10.; 40.; 90.; 160. ]))

let test_dot_products () =
  let a = vec [ 1.; 2.; 3.; 4. ] and b = vec [ 1.; 1.; 1.; 1. ] in
  Alcotest.(check bool) "dotp" true
    (eqv (Opcode.eval (Opcode.v Vdotp) [ a; b ]) (sca 10.));
  (* Hermitian: sum a * conj b; with complex b *)
  let bi = Value.vector [| Cplx.i; Cplx.i; Cplx.i; Cplx.i |] in
  let r = Value.as_scalar (Opcode.eval (Opcode.v Vdoth) [ a; bi ]) in
  Alcotest.(check (float 1e-9)) "doth im" (-10.) r.Cplx.im;
  Alcotest.(check bool) "sqsum" true
    (eqv (Opcode.eval (Opcode.v Vsqsum) [ a ]) (sca 30.))

let test_three_operand () =
  let a = vec [ 1.; 1.; 1.; 1. ] in
  let b = vec [ 2.; 2.; 2.; 2. ] and d = vec [ 3.; 4.; 5.; 6. ] in
  Alcotest.(check bool) "mac" true
    (eqv (Opcode.eval (Opcode.v Vmac) [ a; b; d ]) (vec [ 7.; 9.; 11.; 13. ]));
  Alcotest.(check bool) "axpy" true
    (eqv (Opcode.eval (Opcode.v Vaxpy) [ a; sca 2.; d ]) (vec [ 7.; 9.; 11.; 13. ]));
  Alcotest.(check bool) "naxpy" true
    (eqv (Opcode.eval (Opcode.v Vnaxpy) [ a; sca 2.; d ]) (vec [ -5.; -7.; -9.; -11. ]))

let test_matrix_ops () =
  let r0 = vec [ 1.; 0.; 0.; 0. ] and r1 = vec [ 0.; 1.; 0.; 0. ] in
  let r2 = vec [ 0.; 0.; 1.; 0. ] and r3 = vec [ 0.; 0.; 0.; 1. ] in
  let x = vec [ 5.; 6.; 7.; 8. ] in
  Alcotest.(check bool) "identity mvmul" true
    (eqv (Opcode.eval (Opcode.v Mvmul) [ r0; r1; r2; r3; x ]) x);
  Alcotest.(check bool) "msqsum" true
    (eqv (Opcode.eval (Opcode.v Msqsum) [ x; r0; r1; r2 ])
       (vec [ 174.; 1.; 1.; 1. ]));
  (* Mhvmul on identity is also identity *)
  Alcotest.(check bool) "identity mhvmul" true
    (eqv (Opcode.eval (Opcode.v Mhvmul) [ r0; r1; r2; r3; x ]) x)

let test_pre_post () =
  let a = Value.vector [| Cplx.make 1. 2.; Cplx.make 3. (-4.); Cplx.zero; Cplx.one |] in
  let conj_id = Opcode.V { pre = Some Pconj; core = Vid; post = None } in
  let r = Value.as_vector (Opcode.eval conj_id [ a ]) in
  Alcotest.(check (float 0.)) "conjugated" (-2.) r.(0).Cplx.im;
  let mask = Opcode.V { pre = Some (Pmask 0b0101); core = Vid; post = None } in
  let m = Value.as_vector (Opcode.eval mask [ vec [ 1.; 2.; 3.; 4. ] ]) in
  Alcotest.(check (float 0.)) "lane 0 kept" 1. m.(0).Cplx.re;
  Alcotest.(check (float 0.)) "lane 1 zeroed" 0. m.(1).Cplx.re;
  let sort = Opcode.V { pre = None; core = Vid; post = Some Qsort } in
  let sorted = Value.as_vector (Opcode.eval sort [ vec [ 2.; 4.; 1.; 3. ] ]) in
  Alcotest.(check (float 0.)) "descending magnitude" 4. sorted.(0).Cplx.re;
  Alcotest.(check (float 0.)) "last" 1. sorted.(3).Cplx.re;
  (* pre applies to the FIRST operand only: conj;v_add conjugates a, not b *)
  let conj_add = Opcode.V { pre = Some Pconj; core = Vadd; post = None } in
  let ai = Value.vector (Array.make 4 Cplx.i) in
  let bi = Value.vector (Array.make 4 Cplx.i) in
  let s = Value.as_vector (Opcode.eval conj_add [ ai; bi ]) in
  Alcotest.(check (float 1e-12)) "(-i) + i = 0" 0. s.(0).Cplx.im

let test_scalar_ops () =
  Alcotest.(check bool) "sqrt" true (eqv (Opcode.eval (S Ssqrt) [ sca 9. ]) (sca 3.));
  Alcotest.(check bool) "rsqrt" true (eqv (Opcode.eval (S Srsqrt) [ sca 4. ]) (sca 0.5));
  Alcotest.(check bool) "inv" true (eqv (Opcode.eval (S Sinv) [ sca 4. ]) (sca 0.25));
  Alcotest.(check bool) "div" true (eqv (Opcode.eval (S Sdiv) [ sca 8.; sca 2. ]) (sca 4.));
  let z = Value.scalar (Cplx.make 3. 4.) in
  let r = Value.as_scalar (Opcode.eval (S Scordic) [ z ]) in
  Alcotest.(check (float 1e-9)) "cordic unit magnitude" 1. (Cplx.abs r)

let test_index_merge () =
  let m =
    Opcode.eval (IM Merge4) [ sca 1.; sca 2.; sca 3.; sca 4. ]
  in
  Alcotest.(check bool) "merge" true (eqv m (vec [ 1.; 2.; 3.; 4. ]));
  Alcotest.(check bool) "index" true (eqv (Opcode.eval (IM (Index 2)) [ m ]) (sca 3.));
  Alcotest.(check bool) "splat" true
    (eqv (Opcode.eval (IM Splat) [ sca 7. ]) (vec [ 7.; 7.; 7.; 7. ]))

let test_arity_mismatch () =
  Alcotest.check_raises "too few args"
    (Invalid_argument "Opcode.eval: expected 2 operands, got 1") (fun () ->
      ignore (Opcode.eval (Opcode.v Vadd) [ vec [ 1.; 2.; 3.; 4. ] ]))

let all_ops =
  List.map Opcode.v Opcode.all_cores
  @ List.map (fun s -> Opcode.S s) Opcode.all_sops
  @ [ Opcode.IM Merge4; Opcode.IM Splat; Opcode.IM (Index 0); Opcode.IM (Index 3) ]
  @ [
      Opcode.V { pre = Some Pconj; core = Vadd; post = None };
      Opcode.V { pre = Some (Pmask 5); core = Vdotp; post = None };
      Opcode.V { pre = Some Pneg; core = Vid; post = Some Qsort };
      Opcode.V { pre = None; core = Vmul; post = Some Qabs };
      Opcode.V { pre = Some Pconj; core = Vmac; post = Some Qneg };
    ]

let test_name_roundtrip () =
  List.iter
    (fun op ->
      let n = Opcode.name op in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" n)
        true
        (Opcode.config_equal op (Opcode.of_name n)))
    all_ops

let test_lanes_resources () =
  Alcotest.(check int) "vector op 1 lane" 1 (Opcode.lanes (Opcode.v Vadd));
  Alcotest.(check int) "matrix op 4 lanes" 4 (Opcode.lanes (Opcode.v Mvmul));
  Alcotest.(check int) "scalar 0 lanes" 0 (Opcode.lanes (S Ssqrt));
  Alcotest.(check bool) "config differs by post" false
    (Opcode.config_equal (Opcode.v Vadd)
       (Opcode.V { pre = None; core = Vadd; post = Some Qsort }))

let test_produces () =
  Alcotest.(check bool) "dotp scalar" true (Opcode.produces (Opcode.v Vdotp) = `Scalar);
  Alcotest.(check bool) "add vector" true (Opcode.produces (Opcode.v Vadd) = `Vector);
  Alcotest.(check bool) "merge vector" true (Opcode.produces (IM Merge4) = `Vector);
  Alcotest.(check bool) "index scalar" true (Opcode.produces (IM (Index 1)) = `Scalar)

let suite =
  [
    Alcotest.test_case "elementwise" `Quick test_elementwise;
    Alcotest.test_case "dot products" `Quick test_dot_products;
    Alcotest.test_case "three-operand" `Quick test_three_operand;
    Alcotest.test_case "matrix ops" `Quick test_matrix_ops;
    Alcotest.test_case "pre/post stages" `Quick test_pre_post;
    Alcotest.test_case "scalar ops" `Quick test_scalar_ops;
    Alcotest.test_case "index/merge" `Quick test_index_merge;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "name round-trip" `Quick test_name_roundtrip;
    Alcotest.test_case "lanes/resources" `Quick test_lanes_resources;
    Alcotest.test_case "produces" `Quick test_produces;
  ]
