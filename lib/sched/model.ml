open Eit_dsl
module St = Fd.Store

type t = {
  store : St.t;
  ir : Ir.t;
  arch : Eit.Arch.t;
  start : St.var array;
  slot : (int * St.var) list;
  life : (int * St.var) list;
  makespan : St.var;
  horizon : int;
}

let latency_of g arch i =
  match (Ir.node g i).Ir.op with
  | Some op -> Eit.Arch.latency arch op
  | None -> 0

let horizon_estimate g arch =
  List.fold_left (fun acc i -> acc + latency_of g arch i) 1 (Ir.op_nodes g)

(* Ops that read the vector memory: their vector-data operands. *)
let vector_reads g i =
  List.filter (fun p -> Ir.category g p = Ir.Vector_data) (Ir.preds g i)

let build ?horizon ?(deadline = Fd.Deadline.none) ?(memory = true) g arch =
  let horizon =
    match horizon with Some h -> h | None -> horizon_estimate g arch
  in
  let s = St.create () in
  (* Root propagation below can be the longest single sweep of the whole
     solve; it must observe the deadline too. *)
  if Fd.Deadline.is_finite deadline then
    St.set_poll s
      (Some
         (fun () ->
           if Fd.Deadline.expired deadline then
             raise (St.Interrupted "deadline")));
  let n = Ir.size g in
  let start =
    Array.init n (fun i ->
        St.interval_var s ~name:(Printf.sprintf "s%d" i) 0 horizon)
  in
  (* eq. 4 / inputs: data start = producer completion; inputs at 0. *)
  List.iter
    (fun d ->
      match Ir.producer g d with
      | Some p -> Fd.Arith.eq_offset s start.(p) (latency_of g arch p) start.(d)
      | None -> St.assign s start.(d) 0)
    (Ir.data_nodes g);
  (* eq. 1: data -> op precedence (data latency is 0). *)
  List.iter
    (fun i ->
      List.iter (fun p -> Fd.Arith.leq_offset s start.(p) 0 start.(i)) (Ir.preds g i))
    (Ir.op_nodes g);
  (* eq. 2 + the other execution resources. *)
  let post_cumulative rc limit resource_of =
    let ops =
      List.filter (fun i -> Eit.Opcode.resource (Ir.opcode g i) = rc) (Ir.op_nodes g)
    in
    if ops <> [] then
      Fd.Cumulative.post s
        ~starts:(Array.of_list (List.map (fun i -> start.(i)) ops))
        ~durations:
          (Array.of_list (List.map (fun i -> Eit.Arch.duration arch (Ir.opcode g i)) ops))
        ~resources:(Array.of_list (List.map resource_of ops))
        ~limit
  in
  post_cumulative Eit.Opcode.Vector_core arch.Eit.Arch.n_lanes (fun i ->
      Eit.Opcode.lanes (Ir.opcode g i));
  post_cumulative Eit.Opcode.Scalar_accel 1 (fun _ -> 1);
  post_cumulative Eit.Opcode.Index_merge 1 (fun _ -> 1);
  (* eq. 3: differently-configured vector-core ops never share a cycle. *)
  let vops =
    List.filter
      (fun i -> Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core)
      (Ir.op_nodes g)
  in
  let rec neq_pairs = function
    | [] -> ()
    | i :: rest ->
      List.iter
        (fun j ->
          if not (Eit.Opcode.config_equal (Ir.opcode g i) (Ir.opcode g j)) then
            Fd.Arith.neq s start.(i) start.(j))
        rest;
      neq_pairs rest
  in
  neq_pairs vops;
  (* eq. 5: makespan = max completion.  Seeding the lower bound (critical
     path + per-resource loads) lets branch & bound prove optimality as
     soon as it matches, instead of exhausting the subtree below it. *)
  let lb = (Bounds.compute g arch).Bounds.makespan in
  let makespan = St.interval_var s ~name:"makespan" (min lb horizon) horizon in
  let completions =
    List.map
      (fun i ->
        let c =
          St.interval_var s ~name:(Printf.sprintf "c%d" i) 0 horizon
        in
        Fd.Arith.eq_offset s start.(i) (latency_of g arch i) c;
        c)
      (Ir.op_nodes g)
  in
  Fd.Arith.max_of s completions makespan;
  (* ---------------- memory allocation ---------------- *)
  let slot = ref [] and life = ref [] in
  if memory then begin
    let vdata =
      List.filter (fun d -> Ir.category g d = Ir.Vector_data) (Ir.data_nodes g)
    in
    let nslots = Eit.Arch.slots arch in
    let geom =
      List.map
        (fun d ->
          let sv =
            St.interval_var s ~name:(Printf.sprintf "slot%d" d) 0 (nslots - 1)
          in
          slot := (d, sv) :: !slot;
          ( d,
            Fd.Geometry.of_slot s ~banks:arch.Eit.Arch.banks
              ~page_size:arch.Eit.Arch.page_size sv ))
        vdata
    in
    let coords d = List.assoc d geom in
    (* eq. 7: operands of one op are accessed together. *)
    let readers =
      List.filter (fun i -> vector_reads g i <> []) (Ir.op_nodes g)
    in
    List.iter
      (fun i ->
        let rec pairs = function
          | [] -> ()
          | d :: rest ->
            List.iter
              (fun e ->
                if d <> e then begin
                  let cd = coords d and ce = coords e in
                  Fd.Cond.implies_eq s
                    (cd.Fd.Geometry.page, ce.Fd.Geometry.page)
                    (cd.Fd.Geometry.line, ce.Fd.Geometry.line)
                end)
              rest;
            pairs rest
        in
        pairs (vector_reads g i))
      readers;
    (* eq. 8 (generalized): reads of two ops that may issue in the same
       cycle.  Pairs whose start times are forced apart (different
       configurations, eq. 3) are skipped up front. *)
    (* One hub per reader op, watching only its own start; partners are
       posted symmetrically so pair (i, j) is rechecked at both guard
       fixes (see {!Fd.Cond.guarded_implies_eq_hub}). *)
    let read_pairs_between i j =
      List.concat_map
        (fun d ->
          List.filter_map
            (fun e ->
              if d <> e then begin
                let cd = coords d and ce = coords e in
                Some
                  ( (cd.Fd.Geometry.page, ce.Fd.Geometry.page),
                    (cd.Fd.Geometry.line, ce.Fd.Geometry.line) )
              end
              else None)
            (vector_reads g j))
        (vector_reads g i)
    in
    List.iter
      (fun i ->
        let partners =
          List.filter_map
            (fun j ->
              let skip =
                j = i
                || Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core
                   && Eit.Opcode.resource (Ir.opcode g j)
                      = Eit.Opcode.Vector_core
                   && not
                        (Eit.Opcode.config_equal (Ir.opcode g i)
                           (Ir.opcode g j))
              in
              if skip then None
              else
                match read_pairs_between i j with
                | [] -> None
                | pairs -> Some (start.(j), pairs))
            readers
        in
        if partners <> [] then
          Fd.Cond.guarded_implies_eq_hub s start.(i) partners)
      readers;
    (* eq. 9 (generalized): results written in the same cycle.  Data
       start variables are exactly the write times, so the guard is on
       the data nodes themselves — this also covers write collisions
       between units with different latencies (e.g. merge vs vector
       pipeline), which the paper's same-category formulation implies. *)
    let produced =
      List.filter (fun d -> Ir.producer g d <> None) vdata
    in
    List.iter
      (fun d ->
        let cd = coords d in
        let partners =
          List.filter_map
            (fun e ->
              if e = d then None
              else
                let ce = coords e in
                Some
                  ( start.(e),
                    [
                      ( (cd.Fd.Geometry.page, ce.Fd.Geometry.page),
                        (cd.Fd.Geometry.line, ce.Fd.Geometry.line) );
                    ] ))
            produced
        in
        if partners <> [] then
          Fd.Cond.guarded_implies_eq_hub s start.(d) partners)
      produced;
    (* Port width limits (implied in §1.1: two matrices read, one
       written per cycle).  Conservative: simultaneous reads of the same
       slot by different ops count once in hardware but twice here. *)
    if readers <> [] then
      Fd.Cumulative.post s
        ~starts:(Array.of_list (List.map (fun i -> start.(i)) readers))
        ~durations:(Array.of_list (List.map (fun _ -> 1) readers))
        ~resources:
          (Array.of_list (List.map (fun i -> List.length (vector_reads g i)) readers))
        ~limit:arch.Eit.Arch.max_reads_per_cycle;
    if produced <> [] then
      Fd.Cumulative.post s
        ~starts:(Array.of_list (List.map (fun d -> start.(d)) produced))
        ~durations:(Array.of_list (List.map (fun _ -> 1) produced))
        ~resources:(Array.of_list (List.map (fun _ -> 1) produced))
        ~limit:arch.Eit.Arch.max_writes_per_cycle;
    (* eq. 10: lifetimes.  The published formula (max U_i - s_i) lets a
       new datum be written in the very cycle of the previous occupant's
       last read; we extend every lifetime by one cycle (the write-back
       stage) so the allocation is hazard-free under the simulator's
       read-after-write-back semantics (see DESIGN.md). *)
    List.iter
      (fun d ->
        let lv =
          St.interval_var s ~name:(Printf.sprintf "life%d" d) 1 (horizon + 2)
        in
        life := (d, lv) :: !life;
        let last_use = St.interval_var s ~name:(Printf.sprintf "lu%d" d) 0 (horizon + 1) in
        Fd.Arith.max_of s
          (start.(d) :: List.map (fun c -> start.(c)) (Ir.succs g d))
          last_use;
        (* life = last_use + 1 - start *)
        let lu1 = St.interval_var s 1 (horizon + 2) in
        Fd.Arith.eq_offset s last_use 1 lu1;
        Fd.Arith.plus s start.(d) lv lu1)
      vdata;
    (* eq. 11: slot reuse as non-overlapping rectangles. *)
    let one = St.const s 1 in
    Fd.Diff2.post s
      (List.map
         (fun d ->
           {
             Fd.Diff2.ox = start.(d);
             oy = List.assoc d !slot;
             lx = List.assoc d !life;
             ly = one;
           })
         vdata)
  end;
  St.propagate s;
  { store = s; ir = g; arch; start; slot = !slot; life = !life; makespan; horizon }

let phases m =
  let g = m.ir in
  let op_starts = List.map (fun i -> m.start.(i)) (Ir.op_nodes g) in
  let data_starts = List.map (fun d -> m.start.(d)) (Ir.data_nodes g) in
  let slots = List.map snd m.slot in
  [
    Fd.Search.phase ~var_select:Fd.Search.smallest_min
      ~val_select:Fd.Search.select_min op_starts;
    Fd.Search.phase ~var_select:Fd.Search.input_order
      ~val_select:Fd.Search.select_min data_starts;
    Fd.Search.phase ~var_select:Fd.Search.first_fail
      ~val_select:Fd.Search.select_min slots;
  ]

let extract m =
  let n = Ir.size m.ir in
  let start = Array.init n (fun i -> St.vmin m.start.(i)) in
  let slot = List.map (fun (d, v) -> (d, St.vmin v)) m.slot in
  let makespan =
    List.fold_left
      (fun acc i -> max acc (start.(i) + latency_of m.ir m.arch i))
      0 (List.init n Fun.id)
  in
  { Schedule.ir = m.ir; arch = m.arch; start; slot; makespan }
