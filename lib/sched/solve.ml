(* The status taxonomy is shared with the solver layer so callers can
   pattern-match either name. *)
type status = Fd.Search.status =
  | Optimal
  | Feasible_timeout
  | Infeasible
  | Crashed

let pp_status = Fd.Search.pp_status

type engine = Cp | Fallback

let pp_engine ppf = function
  | Cp -> Format.pp_print_string ppf "cp"
  | Fallback -> Format.pp_print_string ppf "fallback"

type outcome = {
  status : status;
  engine : engine;
  schedule : Schedule.t option;
  stats : Fd.Search.stats;
  crashes : Fd.Portfolio.worker_crash list;
  validation : (unit, Validate.report) result;
  from_cache : bool;
  validate_ms : float;
}

(* One observation per solve into the live-metrics registry (the
   caller's, or the process default, which is disabled unless someone
   turned it on) — work-per-solve distributions for the serving layer,
   one atomic load for everyone else. *)
let record_metrics metrics (o : outcome) =
  let reg = match metrics with Some r -> r | None -> Obs.Metrics.default in
  if Obs.Metrics.is_enabled reg then begin
    let h name = Obs.Metrics.histogram reg name in
    Obs.Metrics.observe (h "solve.nodes") (float_of_int o.stats.Fd.Search.nodes);
    Obs.Metrics.observe (h "solve.propagations")
      (float_of_int o.stats.Fd.Search.propagations);
    Obs.Metrics.observe (h "solve.time_ms") o.stats.Fd.Search.time_ms;
    Obs.Metrics.observe (h "solve.validate_ms") o.validate_ms;
    Obs.Metrics.incr (Obs.Metrics.counter reg "solve.count");
    if o.from_cache then
      Obs.Metrics.incr (Obs.Metrics.counter reg "solve.cache_hits")
  end;
  o

(* The portfolio's strategy templates, in fixed order.  Strategy 0 is
   the sequential default (paper §3.5 phases), so a portfolio run
   subsumes the sequential one; the others diversify the first phase's
   heuristics and add a Luby-restart worker. *)
let strategy_templates =
  [
    ("default", None, false);
    ("first-fail", Some (Fd.Search.first_fail, Fd.Search.select_min), false);
    ("most-constrained-mid", Some (Fd.Search.most_constrained, Fd.Search.select_mid), false);
    ("input-order-luby", Some (Fd.Search.input_order, Fd.Search.select_min), true);
  ]

let portfolio_strategies ?deadline ~memory g arch n =
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  (* cycle the templates if more workers than templates are requested *)
  let templates =
    let rec cycle acc k =
      if k <= 0 then List.rev acc
      else
        let needed = take (min k (List.length strategy_templates)) strategy_templates in
        cycle (List.rev_append needed acc) (k - List.length needed)
    in
    cycle [] n
  in
  List.map
    (fun (_, override, restarts) () ->
      let m = Model.build ?deadline ~memory g arch in
      let phases =
        match (override, Model.phases m) with
        | Some (var_select, val_select), p1 :: rest ->
          { p1 with Fd.Search.var_select; val_select } :: rest
        | _, phases -> phases
      in
      {
        Fd.Portfolio.store = m.Model.store;
        phases;
        objective = m.Model.makespan;
        snapshot = (fun () -> Model.extract m);
        restarts;
      })
    templates

(* The CP attempt, repackaged so nothing escapes: status + optional
   incumbent + stats + worker crashes.  The phases of the solve — model
   build, CP search, fallback, validation — are each wrapped in an
   [Obs] span (cat "sched"), so `--trace` shows where the wall-clock
   went. *)
(* [ext_bound] is the warm-start seed: an upper bound on the optimum
   taken from a previous solve.  It enters the search as an external
   incumbent of [ext_bound + 1], which lets the engine keep solutions
   with makespan <= ext_bound while pruning everything above — so a
   proof of optimality under the seed is a genuine global proof.  An
   [Unsat] under the seed only means "nothing at or below the seed"
   and must NOT surface as [Infeasible]; [run] re-solves cold in that
   case.  The portfolio path ignores the seed (its workers already
   share an incumbent, and its trajectories are nondeterministic). *)
let run_cp ?ext_bound ?metrics ~budget ~deadline ~chaos ~chaos_base ~memory
    ~arch ~parallel ~tid g =
  if parallel >= 2 then
    let r =
      Obs.span ~cat:"sched" ~tid "cp-search" (fun () ->
          Fd.Portfolio.minimize_result ~budget ~deadline ?chaos ~chaos_base
            (portfolio_strategies ~deadline ~memory g arch parallel))
    in
    (r.Fd.Portfolio.r_status, r.Fd.Portfolio.incumbent, r.Fd.Portfolio.r_stats,
     r.Fd.Portfolio.crashes)
  else
    match
      Obs.span ~cat:"sched" ~tid "model-build" (fun () ->
          Model.build ~deadline ~memory g arch)
    with
    | exception Fd.Store.Fail _ ->
      (Infeasible, None, Fd.Search.zero_stats ~optimal:true, [])
    | exception Fd.Store.Interrupted _ ->
      (Feasible_timeout, None, Fd.Search.zero_stats ~optimal:false, [])
    | exception e ->
      ( Crashed,
        None,
        Fd.Search.zero_stats ~optimal:false,
        [ { Fd.Portfolio.worker = 0; reason = Printexc.to_string e } ] )
    | m ->
      (match chaos with
      | Some c -> Fd.Chaos.instrument c ~worker:chaos_base m.Model.store
      | None -> ());
      let bound_get =
        Option.map (fun b () -> Some (b + 1)) ext_bound
      in
      let a =
        Obs.span ~cat:"sched" ~tid "cp-search" (fun () ->
            Fd.Search.minimize_anytime ~budget ~deadline ?bound_get ~tid
              ?metrics
              m.Model.store (Model.phases m) ~objective:m.Model.makespan
              ~on_solution:(fun () -> Model.extract m))
      in
      Fd.Store.emit_profile ~tid m.Model.store;
      let crashes =
        match a.Fd.Search.crash with
        | Some reason -> [ { Fd.Portfolio.worker = 0; reason } ]
        | None -> []
      in
      (a.Fd.Search.a_status, a.Fd.Search.incumbent, a.Fd.Search.a_stats, crashes)

let add_stats (a : Fd.Search.stats) (b : Fd.Search.stats) =
  {
    Fd.Search.nodes = a.Fd.Search.nodes + b.Fd.Search.nodes;
    failures = a.Fd.Search.failures + b.Fd.Search.failures;
    solutions = a.Fd.Search.solutions + b.Fd.Search.solutions;
    propagations = a.Fd.Search.propagations + b.Fd.Search.propagations;
    time_ms = a.Fd.Search.time_ms +. b.Fd.Search.time_ms;
    optimal = b.Fd.Search.optimal;
  }

(* Rebuild a cached schedule onto the requesting graph: the payload
   lives in canonical index space, so an isomorphic request maps it
   through its own canonical permutation.  Every hit is re-validated
   from scratch before anyone sees it; anything that fails — a corrupt
   persisted entry, a mismatched size — is reported as [None] and the
   caller drops the entry and solves cold.  The slot list is rebuilt in
   descending node-id order, matching what [Model.extract] produces, so
   a hit is byte-identical to the cold solve it replays. *)
let replay_hit ~memory ~arch ~tid ~vms g (canon : Cache.Key.canon) payload =
  match payload with
  | Cache.Infeasible -> Some (Infeasible, None)
  | Cache.Schedule { start; slot; makespan } -> (
    let rebuilt =
      try
        let n = Eit_dsl.Ir.size g in
        if
          Array.length start <> n
          || Array.length canon.Cache.Key.to_canon <> n
        then None
        else
          let start =
            Array.init n (fun id -> start.(canon.Cache.Key.to_canon.(id)))
          in
          let slot =
            List.map (fun (ci, s) -> (canon.Cache.Key.of_canon.(ci), s)) slot
            |> List.sort (fun (a, _) (b, _) -> compare b a)
          in
          Some { Schedule.ir = g; arch; start; slot; makespan }
      with _ -> None
    in
    match rebuilt with
    | None -> None
    | Some sch -> (
      let t0 = Obs.now_us () in
      let fin r =
        vms := !vms +. ((Obs.now_us () -. t0) /. 1000.);
        r
      in
      match
        Obs.span ~cat:"sched" ~tid "cache-validate" (fun () ->
            Validate.schedule ~memory sch)
      with
      | Ok () -> fin (Some (Optimal, Some sch))
      | Error _ | (exception _) -> fin None))

let run ?(budget = Fd.Search.time_budget 10_000.) ?(deadline = Fd.Deadline.none)
    ?(memory = true) ?(arch = Eit.Arch.default) ?(validate = true)
    ?(parallel = 0) ?chaos ?(chaos_base = 0) ?(fallback = true) ?(tid = 0)
    ?cache ?(warm = false) ?warm_bound ?metrics g =
  (* Wall-clock spent in the independent validator for this request
     (normal, fallback and cache-hit validations all accumulate). *)
  let vms = ref 0. in
  let deadline =
    Fd.Deadline.earliest deadline
      (Fd.Deadline.of_time_budget budget.Fd.Search.max_time_ms)
  in
  (* Fault injection makes a run's result a fact about the injected
     faults, not the problem — chaos runs neither consult nor populate
     the cache, and never warm-start. *)
  let canon_key =
    match cache with
    | Some _ when chaos = None ->
      let canon =
        Obs.span ~cat:"sched" ~tid "cache-key" (fun () ->
            Cache.Key.canonicalize g)
      in
      let opts =
        {
          Cache.Key.memory;
          parallel;
          max_nodes = budget.Fd.Search.max_nodes;
          max_time_ms = budget.Fd.Search.max_time_ms;
          validate;
        }
      in
      Some (canon, Cache.Key.make canon arch opts)
    | _ -> None
  in
  let hit =
    match (cache, canon_key) with
    | Some c, Some (canon, key) -> (
      match Cache.find c key with
      | None -> None
      | Some payload -> (
        match replay_hit ~memory ~arch ~tid ~vms g canon payload with
        | Some (status, schedule) ->
          Some
            {
              status;
              engine = Cp;
              schedule;
              stats = Fd.Search.zero_stats ~optimal:true;
              crashes = [];
              validation = Ok ();
              from_cache = true;
              validate_ms = !vms;
            }
        | None ->
          Cache.remove c key;
          None))
    | _ -> None
  in
  match hit with
  | Some o -> record_metrics metrics o
  | None ->
  let warm_seed =
    if parallel >= 2 || chaos <> None then None
    else
      match warm_bound with
      | Some b -> Some b
      | None -> (
        if not warm then None
        else
          match cache with
          | Some c -> Cache.hint c ~shape:(Cache.Key.shape_digest g)
          | None -> None)
  in
  let cp_status, cp_incumbent, stats, crashes =
    (* A deadline already in the past and a zero time budget are the
       same request — "no search time at all" — and must behave the
       same: go straight to the degradation ladder without touching the
       engine (previously the past-deadline case still entered model
       build only to be interrupted mid-root-propagation, while budget 0
       short-circuited differently; a request that expired while queued
       must not burn solver time). *)
    if Fd.Deadline.expired deadline then
      (Feasible_timeout, None, Fd.Search.zero_stats ~optimal:false, [])
    else
      match warm_seed with
      | None ->
        run_cp ?metrics ~budget ~deadline ~chaos ~chaos_base ~memory ~arch
          ~parallel ~tid g
      | Some b ->
        (* Warm-start soundness: [Infeasible] under a warm seed only
           proves "no schedule at or below the seed" — the seed may
           simply sit below the true optimum.  Re-solve cold (stats
           accumulate), so a warm run can never claim infeasibility,
           or miss the optimum, because of a stale hint. *)
        let st, inc, s1, cr1 =
          run_cp ~ext_bound:b ?metrics ~budget ~deadline ~chaos ~chaos_base
            ~memory ~arch ~parallel ~tid g
        in
        if st = Infeasible then begin
          if Obs.enabled () then
            Obs.instant ~cat:"sched" ~tid
              ~args:[ ("seed", Obs.I b) ]
              "warm-seed-rejected";
          let st2, inc2, s2, cr2 =
            run_cp ?metrics ~budget ~deadline ~chaos ~chaos_base ~memory ~arch
              ~parallel ~tid g
          in
          (st2, inc2, add_stats s1 s2, cr1 @ cr2)
        end
        else (st, inc, s1, cr1)
  in
  let check sch ~memory =
    if validate then begin
      let t0 = Obs.now_us () in
      let r =
        Obs.span ~cat:"sched" ~tid "validate" (fun () ->
            Validate.schedule ~memory sch)
      in
      vms := !vms +. ((Obs.now_us () -. t0) /. 1000.);
      r
    end
    else Ok ()
  in
  (* Degradation ladder: a CP incumbent that passes the independent
     validator wins; otherwise the heuristic fallback is tried (also
     validated); an infeasibility proof needs no schedule at all. *)
  let cp_checked =
    match cp_incumbent with
    | Some sch -> Some (sch, check sch ~memory)
    | None -> None
  in
  let o =
    match (cp_status, cp_checked) with
    | Infeasible, _ ->
      { status = Infeasible; engine = Cp; schedule = None; stats; crashes;
        validation = Ok (); from_cache = false; validate_ms = !vms }
    | _, Some (sch, Ok ()) ->
      { status = cp_status; engine = Cp; schedule = Some sch; stats; crashes;
        validation = Ok (); from_cache = false; validate_ms = !vms }
    | _, cp_checked -> (
      (* Either CP found nothing, or what it found fails validation (a
         solver or chaos casualty).  Keep the bad schedule's report. *)
      let cp_report =
        match cp_checked with Some (_, Error r) -> Some r | _ -> None
      in
      let fb =
        if fallback then
          Obs.span ~cat:"sched" ~tid "fallback" (fun () -> Heuristic.run ~arch g)
        else Error "fallback disabled"
      in
      match fb with
      | Ok sch -> (
        match check sch ~memory:true with
        | Ok () ->
          (* A fallback result is never optimal and never hides a crash:
             the status says the degradation path was taken. *)
          { status = Feasible_timeout; engine = Fallback; schedule = Some sch;
            stats; crashes; validation = Ok (); from_cache = false; validate_ms = !vms }
        | Error r ->
          { status = Crashed; engine = Fallback; schedule = None; stats;
            crashes; validation = Error r; from_cache = false; validate_ms = !vms })
      | Error reason ->
        let validation =
          match cp_report with Some r -> Error r | None -> Ok ()
        in
        let crashes =
          if fallback then
            crashes @ [ { Fd.Portfolio.worker = -1; reason = "fallback: " ^ reason } ]
          else crashes
        in
        let status =
          match cp_status with
          | Crashed -> Crashed
          | _ when cp_report <> None ->
            Crashed (* CP produced garbage and no fallback rescued it *)
          | _ -> Feasible_timeout (* an honest timeout, nothing crashed *)
        in
        { status; engine = Cp; schedule = None; stats; crashes; validation;
          from_cache = false; validate_ms = !vms })
  in
  (* Populate the cache only with deadline-independent facts about the
     problem: a proven-optimal schedule that passed validation, or a
     crash-free infeasibility proof from the CP engine.  Timeouts,
     fallback rescues and crashed runs never enter — a poisoned entry
     would outlive the incident that caused it. *)
  (match (cache, canon_key) with
  | Some c, Some (canon, key) -> (
    match (o.status, o.engine, o.schedule) with
    | Optimal, Cp, Some sch ->
      let sound =
        if validate then o.validation = Ok ()
        else (
          (* the run skipped validation; never cache an unchecked
             schedule *)
          match Validate.schedule ~memory sch with
          | Ok () -> true
          | Error _ | (exception _) -> false)
      in
      if sound then begin
        let n = Eit_dsl.Ir.size g in
        let start =
          Array.init n (fun ci ->
              sch.Schedule.start.(canon.Cache.Key.of_canon.(ci)))
        in
        let slot =
          List.map
            (fun (id, s) -> (canon.Cache.Key.to_canon.(id), s))
            sch.Schedule.slot
          |> List.sort compare
        in
        Cache.store c key
          (Cache.Schedule { start; slot; makespan = sch.Schedule.makespan })
      end
    | Infeasible, Cp, None when o.crashes = [] ->
      Cache.store c key Cache.Infeasible
    | _ -> ())
  | _ -> ());
  (* Any validated schedule — optimal, timeout incumbent or fallback —
     is a true feasible makespan, hence a sound warm seed for the next
     solve of this shape. *)
  (if chaos = None then
     match (cache, o.schedule) with
     | Some c, Some sch when o.validation = Ok () ->
       Cache.note_hint c ~shape:(Cache.Key.shape_digest g)
         sch.Schedule.makespan
     | _ -> ());
  record_metrics metrics o

let exit_code o =
  match (o.status, o.schedule, o.engine) with
  | Optimal, _, _ -> 0
  | Feasible_timeout, Some _, Cp -> 0
  | Feasible_timeout, Some _, Fallback -> 2
  | Infeasible, _, _ -> 3
  | (Feasible_timeout | Crashed), _, _ -> 4 (* no usable schedule *)
