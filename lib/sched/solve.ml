
type status = Optimal | Feasible | Unsat | Timeout

type outcome = {
  status : status;
  schedule : Schedule.t option;
  stats : Fd.Search.stats;
}

let pp_status ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Feasible -> Format.pp_print_string ppf "feasible"
  | Unsat -> Format.pp_print_string ppf "unsat"
  | Timeout -> Format.pp_print_string ppf "timeout"

(* The portfolio's strategy templates, in fixed order.  Strategy 0 is
   the sequential default (paper §3.5 phases), so a portfolio run
   subsumes the sequential one; the others diversify the first phase's
   heuristics and add a Luby-restart worker. *)
let strategy_templates =
  [
    ("default", None, false);
    ("first-fail", Some (Fd.Search.first_fail, Fd.Search.select_min), false);
    ("most-constrained-mid", Some (Fd.Search.most_constrained, Fd.Search.select_mid), false);
    ("input-order-luby", Some (Fd.Search.input_order, Fd.Search.select_min), true);
  ]

let portfolio_strategies ~memory g arch n =
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  (* cycle the templates if more workers than templates are requested *)
  let templates =
    let rec cycle acc k =
      if k <= 0 then List.rev acc
      else
        let needed = take (min k (List.length strategy_templates)) strategy_templates in
        cycle (List.rev_append needed acc) (k - List.length needed)
    in
    cycle [] n
  in
  List.map
    (fun (_, override, restarts) () ->
      let m = Model.build ~memory g arch in
      let phases =
        match (override, Model.phases m) with
        | Some (var_select, val_select), p1 :: rest ->
          { p1 with Fd.Search.var_select; val_select } :: rest
        | _, phases -> phases
      in
      {
        Fd.Portfolio.store = m.Model.store;
        phases;
        objective = m.Model.makespan;
        snapshot = (fun () -> Model.extract m);
        restarts;
      })
    templates

let run ?(budget = Fd.Search.time_budget 10_000.) ?(memory = true)
    ?(arch = Eit.Arch.default) ?(validate = true) ?(parallel = 0) g =
  let search_outcome =
    if parallel >= 2 then
      Fd.Portfolio.minimize ~budget (portfolio_strategies ~memory g arch parallel)
    else
      match Model.build ~memory g arch with
      | m ->
        Fd.Search.minimize ~budget m.Model.store (Model.phases m)
          ~objective:m.Model.makespan
          ~on_solution:(fun () -> Model.extract m)
      | exception Fd.Store.Fail _ ->
        Fd.Search.Unsat (Fd.Search.zero_stats ~optimal:true)
  in
  let outcome =
    match search_outcome with
    | Fd.Search.Solution (sched, stats) ->
      { status = Optimal; schedule = Some sched; stats }
    | Fd.Search.Best (sched, stats) ->
      { status = Feasible; schedule = Some sched; stats }
    | Fd.Search.Unsat stats -> { status = Unsat; schedule = None; stats }
    | Fd.Search.Timeout stats -> { status = Timeout; schedule = None; stats }
  in
  (match (validate, outcome.schedule) with
  | true, Some sched ->
    let violations = Schedule.validate sched in
    (* Without the memory part of the model, memory-related rules are
       not enforced and must not be re-checked. *)
    let relevant =
      if memory then violations
      else
        List.filter
          (fun v ->
            not
              (List.mem v.Schedule.where
                 [ "memory"; "memory-access"; "slot-reuse" ]))
          violations
    in
    if relevant <> [] then
      failwith
        (Format.asprintf "Solve.run: solver produced an invalid schedule: %a"
           (Format.pp_print_list ~pp_sep:Format.pp_print_space
              Schedule.pp_violation)
           relevant)
  | _ -> ());
  outcome
