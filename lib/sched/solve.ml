(* The status taxonomy is shared with the solver layer so callers can
   pattern-match either name. *)
type status = Fd.Search.status =
  | Optimal
  | Feasible_timeout
  | Infeasible
  | Crashed

let pp_status = Fd.Search.pp_status

type engine = Cp | Fallback

let pp_engine ppf = function
  | Cp -> Format.pp_print_string ppf "cp"
  | Fallback -> Format.pp_print_string ppf "fallback"

type outcome = {
  status : status;
  engine : engine;
  schedule : Schedule.t option;
  stats : Fd.Search.stats;
  crashes : Fd.Portfolio.worker_crash list;
  validation : (unit, Validate.report) result;
}

(* The portfolio's strategy templates, in fixed order.  Strategy 0 is
   the sequential default (paper §3.5 phases), so a portfolio run
   subsumes the sequential one; the others diversify the first phase's
   heuristics and add a Luby-restart worker. *)
let strategy_templates =
  [
    ("default", None, false);
    ("first-fail", Some (Fd.Search.first_fail, Fd.Search.select_min), false);
    ("most-constrained-mid", Some (Fd.Search.most_constrained, Fd.Search.select_mid), false);
    ("input-order-luby", Some (Fd.Search.input_order, Fd.Search.select_min), true);
  ]

let portfolio_strategies ?deadline ~memory g arch n =
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  (* cycle the templates if more workers than templates are requested *)
  let templates =
    let rec cycle acc k =
      if k <= 0 then List.rev acc
      else
        let needed = take (min k (List.length strategy_templates)) strategy_templates in
        cycle (List.rev_append needed acc) (k - List.length needed)
    in
    cycle [] n
  in
  List.map
    (fun (_, override, restarts) () ->
      let m = Model.build ?deadline ~memory g arch in
      let phases =
        match (override, Model.phases m) with
        | Some (var_select, val_select), p1 :: rest ->
          { p1 with Fd.Search.var_select; val_select } :: rest
        | _, phases -> phases
      in
      {
        Fd.Portfolio.store = m.Model.store;
        phases;
        objective = m.Model.makespan;
        snapshot = (fun () -> Model.extract m);
        restarts;
      })
    templates

(* The CP attempt, repackaged so nothing escapes: status + optional
   incumbent + stats + worker crashes.  The phases of the solve — model
   build, CP search, fallback, validation — are each wrapped in an
   [Obs] span (cat "sched"), so `--trace` shows where the wall-clock
   went. *)
let run_cp ~budget ~deadline ~chaos ~chaos_base ~memory ~arch ~parallel ~tid g =
  if parallel >= 2 then
    let r =
      Obs.span ~cat:"sched" ~tid "cp-search" (fun () ->
          Fd.Portfolio.minimize_result ~budget ~deadline ?chaos ~chaos_base
            (portfolio_strategies ~deadline ~memory g arch parallel))
    in
    (r.Fd.Portfolio.r_status, r.Fd.Portfolio.incumbent, r.Fd.Portfolio.r_stats,
     r.Fd.Portfolio.crashes)
  else
    match
      Obs.span ~cat:"sched" ~tid "model-build" (fun () ->
          Model.build ~deadline ~memory g arch)
    with
    | exception Fd.Store.Fail _ ->
      (Infeasible, None, Fd.Search.zero_stats ~optimal:true, [])
    | exception Fd.Store.Interrupted _ ->
      (Feasible_timeout, None, Fd.Search.zero_stats ~optimal:false, [])
    | exception e ->
      ( Crashed,
        None,
        Fd.Search.zero_stats ~optimal:false,
        [ { Fd.Portfolio.worker = 0; reason = Printexc.to_string e } ] )
    | m ->
      (match chaos with
      | Some c -> Fd.Chaos.instrument c ~worker:chaos_base m.Model.store
      | None -> ());
      let a =
        Obs.span ~cat:"sched" ~tid "cp-search" (fun () ->
            Fd.Search.minimize_anytime ~budget ~deadline ~tid m.Model.store
              (Model.phases m) ~objective:m.Model.makespan
              ~on_solution:(fun () -> Model.extract m))
      in
      Fd.Store.emit_profile ~tid m.Model.store;
      let crashes =
        match a.Fd.Search.crash with
        | Some reason -> [ { Fd.Portfolio.worker = 0; reason } ]
        | None -> []
      in
      (a.Fd.Search.a_status, a.Fd.Search.incumbent, a.Fd.Search.a_stats, crashes)

let run ?(budget = Fd.Search.time_budget 10_000.) ?(deadline = Fd.Deadline.none)
    ?(memory = true) ?(arch = Eit.Arch.default) ?(validate = true)
    ?(parallel = 0) ?chaos ?(chaos_base = 0) ?(fallback = true) ?(tid = 0) g =
  let deadline =
    Fd.Deadline.earliest deadline
      (Fd.Deadline.of_time_budget budget.Fd.Search.max_time_ms)
  in
  let cp_status, cp_incumbent, stats, crashes =
    (* A deadline already in the past and a zero time budget are the
       same request — "no search time at all" — and must behave the
       same: go straight to the degradation ladder without touching the
       engine (previously the past-deadline case still entered model
       build only to be interrupted mid-root-propagation, while budget 0
       short-circuited differently; a request that expired while queued
       must not burn solver time). *)
    if Fd.Deadline.expired deadline then
      (Feasible_timeout, None, Fd.Search.zero_stats ~optimal:false, [])
    else run_cp ~budget ~deadline ~chaos ~chaos_base ~memory ~arch ~parallel ~tid g
  in
  let check sch ~memory =
    if validate then
      Obs.span ~cat:"sched" ~tid "validate" (fun () ->
          Validate.schedule ~memory sch)
    else Ok ()
  in
  (* Degradation ladder: a CP incumbent that passes the independent
     validator wins; otherwise the heuristic fallback is tried (also
     validated); an infeasibility proof needs no schedule at all. *)
  let cp_checked =
    match cp_incumbent with
    | Some sch -> Some (sch, check sch ~memory)
    | None -> None
  in
  match (cp_status, cp_checked) with
  | Infeasible, _ ->
    { status = Infeasible; engine = Cp; schedule = None; stats; crashes;
      validation = Ok () }
  | _, Some (sch, Ok ()) ->
    { status = cp_status; engine = Cp; schedule = Some sch; stats; crashes;
      validation = Ok () }
  | _, cp_checked -> (
    (* Either CP found nothing, or what it found fails validation (a
       solver or chaos casualty).  Keep the bad schedule's report. *)
    let cp_report =
      match cp_checked with Some (_, Error r) -> Some r | _ -> None
    in
    let fb =
      if fallback then
        Obs.span ~cat:"sched" ~tid "fallback" (fun () -> Heuristic.run ~arch g)
      else Error "fallback disabled"
    in
    match fb with
    | Ok sch -> (
      match check sch ~memory:true with
      | Ok () ->
        (* A fallback result is never optimal and never hides a crash:
           the status says the degradation path was taken. *)
        { status = Feasible_timeout; engine = Fallback; schedule = Some sch;
          stats; crashes; validation = Ok () }
      | Error r ->
        { status = Crashed; engine = Fallback; schedule = None; stats;
          crashes; validation = Error r })
    | Error reason ->
      let validation =
        match cp_report with Some r -> Error r | None -> Ok ()
      in
      let crashes =
        if fallback then
          crashes @ [ { Fd.Portfolio.worker = -1; reason = "fallback: " ^ reason } ]
        else crashes
      in
      let status =
        match cp_status with
        | Crashed -> Crashed
        | _ when cp_report <> None ->
          Crashed (* CP produced garbage and no fallback rescued it *)
        | _ -> Feasible_timeout (* an honest timeout, nothing crashed *)
      in
      { status; engine = Cp; schedule = None; stats; crashes; validation })

let exit_code o =
  match (o.status, o.schedule, o.engine) with
  | Optimal, _, _ -> 0
  | Feasible_timeout, Some _, Cp -> 0
  | Feasible_timeout, Some _, Fallback -> 2
  | Infeasible, _, _ -> 3
  | (Feasible_timeout | Crashed), _, _ -> 4 (* no usable schedule *)
