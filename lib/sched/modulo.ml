open Eit_dsl
module St = Fd.Store

type result = {
  ii : int;
  reconfigurations : int;
  actual_ii : int;
  throughput : float;
  start : int array;
  span : int;
  time_ms : float;
  proven : bool;
}

let node_latency g arch i =
  match (Ir.node g i).Ir.op with
  | Some op -> Eit.Arch.latency arch op
  | None -> 0

(* Configuration classes of the vector-core ops: (representative, count,
   lanes). *)
let config_classes g =
  let classes = ref [] in
  List.iter
    (fun i ->
      let op = Ir.opcode g i in
      if Eit.Opcode.resource op = Eit.Opcode.Vector_core then
        match
          List.find_opt (fun (rep, _, _) -> Eit.Opcode.config_equal rep op) !classes
        with
        | Some (rep, n, l) ->
          classes :=
            (rep, n + 1, l)
            :: List.filter (fun (r, _, _) -> not (Eit.Opcode.config_equal r rep)) !classes
        | None -> classes := (op, 1, Eit.Opcode.lanes op) :: !classes)
    (Ir.op_nodes g);
  !classes

let count_resource g rc =
  List.length
    (List.filter (fun i -> Eit.Opcode.resource (Ir.opcode g i) = rc) (Ir.op_nodes g))

let res_mii g arch =
  let ceil_div a b = (a + b - 1) / b in
  let vector =
    List.fold_left
      (fun acc (_, n, l) -> acc + ceil_div (n * l) arch.Eit.Arch.n_lanes)
      0 (config_classes g)
  in
  max 1 (max vector (max (count_resource g Eit.Opcode.Scalar_accel)
                       (count_resource g Eit.Opcode.Index_merge)))

(* Dependencies between op nodes (through their data nodes), with the
   producer's latency. *)
let op_deps g arch =
  List.concat_map
    (fun i ->
      match Ir.succs g i with
      | [ d ] ->
        List.map (fun j -> (i, node_latency g arch i, j)) (Ir.succs g d)
      | _ -> [])
    (Ir.op_nodes g)

(* One decision/optimization problem for a fixed II.  [minimize_rec]
   selects the "including reconfigurations" mode. *)
let solve_one g arch ~ii ~minimize_rec ~budget_ms =
  let ops = Ir.op_nodes g in
  let horizon = Ir.critical_path g arch + (2 * ii) in
  let s = St.create () in
  let start_tbl = Hashtbl.create 64 in
  let vops = ref [] in
  List.iter
    (fun i ->
      let v = St.interval_var s ~name:(Printf.sprintf "s%d" i) 0 horizon in
      Hashtbl.replace start_tbl i v;
      if Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core then
        vops := i :: !vops)
    ops;
  let sv i = Hashtbl.find start_tbl i in
  List.iter (fun (i, lat, j) -> Fd.Arith.leq_offset s (sv i) lat (sv j)) (op_deps g arch);
  (* Residue variables. *)
  let res_tbl = Hashtbl.create 64 in
  List.iter
    (fun i ->
      let m = St.interval_var s ~name:(Printf.sprintf "m%d" i) 0 (ii - 1) in
      Fd.Arith.mod_const s (sv i) ii m;
      Hashtbl.replace res_tbl i m)
    ops;
  let mv i = Hashtbl.find res_tbl i in
  (* Per-residue capacities. *)
  let post_residue_cumulative rc limit resource_of =
    let group = List.filter (fun i -> Eit.Opcode.resource (Ir.opcode g i) = rc) ops in
    if group <> [] then
      Fd.Cumulative.post s
        ~starts:(Array.of_list (List.map mv group))
        ~durations:(Array.of_list (List.map (fun _ -> 1) group))
        ~resources:(Array.of_list (List.map resource_of group))
        ~limit
  in
  post_residue_cumulative Eit.Opcode.Vector_core arch.Eit.Arch.n_lanes (fun i ->
      Eit.Opcode.lanes (Ir.opcode g i));
  post_residue_cumulative Eit.Opcode.Scalar_accel 1 (fun _ -> 1);
  post_residue_cumulative Eit.Opcode.Index_merge 1 (fun _ -> 1);
  (* eq. 3 on residues. *)
  let rec neq_pairs = function
    | [] -> ()
    | i :: rest ->
      List.iter
        (fun j ->
          if not (Eit.Opcode.config_equal (Ir.opcode g i) (Ir.opcode g j)) then
            Fd.Arith.neq s (mv i) (mv j))
        rest;
      neq_pairs rest
  in
  neq_pairs !vops;
  (* Cyclic reconfiguration count of the kernel, as a variable.  Lower
     bound: each distinct configuration contributes at least one block
     boundary (when there are >= 2).  Exact value once all residues are
     fixed. *)
  let rec_lb = Reconfig.lower_bound g in
  let max_rec = List.length !vops + 1 in
  let recvar = St.interval_var s ~name:"reconfigs" rec_lb max_rec in
  let vop_list = !vops in
  let rec_prop st =
    let fixed, unfixed = List.partition (fun i -> St.is_fixed (mv i)) vop_list in
    let tbl = Hashtbl.create 16 in
    List.iter (fun i -> Hashtbl.replace tbl (St.value (mv i)) (Ir.opcode g i)) fixed;
    let seq = List.init ii (fun c -> Hashtbl.find_opt tbl c) in
    if unfixed = [] then St.update st recvar (Fd.Dom.singleton (Eit.Config.count_reconfigs_cyclic seq))
    else
      (* Sound lower bound from the fixed residues alone: between two
         cyclically-consecutive fixed cells with different
         configurations at least one reconfiguration must happen, no
         matter what fills the residues in between. *)
      St.remove_below st recvar (Eit.Config.count_reconfigs_cyclic seq)
  in
  ignore
    (St.post_now s ~name:"rec_count" ~priority:St.prio_channel ~event:St.On_fix ~watches:(List.map mv vop_list) rec_prop);
  let phases =
    if minimize_rec then begin
      (* Branch on the residues of the vector ops first, grouped by
         configuration class, assigning smallest residues first: classes
         then occupy contiguous residue blocks whenever precedences
         allow, which drives the reconfiguration count towards its lower
         bound (one boundary per class). *)
      let by_class =
        List.concat_map
          (fun (rep, _, _) ->
            List.filter
              (fun i -> Eit.Opcode.config_equal (Ir.opcode g i) rep)
              vop_list)
          (config_classes g)
      in
      [
        Fd.Search.phase ~var_select:Fd.Search.input_order
          ~val_select:Fd.Search.select_min
          (List.map mv by_class);
        Fd.Search.phase ~var_select:Fd.Search.smallest_min
          ~val_select:Fd.Search.select_min
          (List.map sv ops);
      ]
    end
    else
      [
        Fd.Search.phase ~var_select:Fd.Search.smallest_min
          ~val_select:Fd.Search.select_min
          (List.map sv ops);
      ]
  in
  let budget = Fd.Search.time_budget budget_ms in
  let snapshot () =
    let starts = List.map (fun i -> (i, St.vmin (sv i))) ops in
    let r = St.vmin recvar in
    (starts, r)
  in
  let outcome =
    try
      if minimize_rec then
        Fd.Search.minimize ~budget s phases ~objective:recvar ~on_solution:snapshot
      else Fd.Search.solve ~budget s phases ~on_solution:snapshot
    with St.Fail _ ->
      Fd.Search.Unsat (Fd.Search.zero_stats ~optimal:true)
  in
  outcome

(* Expand op starts to a full per-node start array. *)
let full_starts g arch op_starts =
  let n = Ir.size g in
  let start = Array.make n 0 in
  List.iter (fun (i, v) -> start.(i) <- v) op_starts;
  List.iter
    (fun d ->
      match Ir.producer g d with
      | Some p -> start.(d) <- start.(p) + node_latency g arch p
      | None -> start.(d) <- 0)
    (Ir.data_nodes g);
  start

let make_result g arch ~ii ~rec_count ~op_starts ~time_ms ~proven =
  let start = full_starts g arch op_starts in
  let span =
    List.fold_left
      (fun acc i -> max acc (start.(i) + node_latency g arch i))
      0 (Ir.op_nodes g)
  in
  let actual_ii = ii + rec_count in
  {
    ii;
    reconfigurations = rec_count;
    actual_ii;
    throughput = 1. /. float_of_int actual_ii;
    start;
    span;
    time_ms;
    proven;
  }

let solve_excluding ?(budget_ms = 60_000.) ?(arch = Eit.Arch.default) g =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. (budget_ms /. 1000.) in
  let rec try_ii ii =
    let remaining = (deadline -. Unix.gettimeofday ()) *. 1000. in
    if remaining <= 0. then None
    else
      match solve_one g arch ~ii ~minimize_rec:false ~budget_ms:remaining with
      | Fd.Search.Solution ((op_starts, _), _) ->
        (* Count the kernel's reconfigurations post-factum. *)
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (i, v) ->
            if Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core then
              Hashtbl.replace tbl (v mod ii) (Ir.opcode g i))
          op_starts;
        let seq = List.init ii (fun c -> Hashtbl.find_opt tbl c) in
        let rc = Eit.Config.count_reconfigs_cyclic seq in
        Some
          (make_result g arch ~ii ~rec_count:rc ~op_starts
             ~time_ms:((Unix.gettimeofday () -. t0) *. 1000.)
             ~proven:true)
      | Fd.Search.Unsat _ -> try_ii (ii + 1)
      | Fd.Search.Best _ | Fd.Search.Timeout _ -> None
  in
  try_ii (res_mii g arch)

let solve_including ?(budget_ms = 600_000.) ?(arch = Eit.Arch.default) g =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. (budget_ms /. 1000.) in
  let best = ref None in
  let best_total = ref max_int in
  let proven = ref true in
  (* Budget is sliced per candidate II so that one hard instance cannot
     starve the II sweep (the paper's solver likewise times out per
     search at 10 minutes). *)
  let slice = Float.max 2_000. (budget_ms /. 8.) in
  let rec try_ii ii =
    if ii >= !best_total then ()  (* cannot beat the incumbent *)
    else begin
      let remaining = (deadline -. Unix.gettimeofday ()) *. 1000. in
      if remaining <= 0. then proven := false
      else begin
        (match
           solve_one g arch ~ii ~minimize_rec:true
             ~budget_ms:(Float.min slice remaining)
         with
        | Fd.Search.Solution ((op_starts, rc), _) ->
          if ii + rc < !best_total then begin
            best_total := ii + rc;
            best := Some (ii, rc, op_starts)
          end
        | Fd.Search.Best ((op_starts, rc), _) ->
          proven := false;
          if ii + rc < !best_total then begin
            best_total := ii + rc;
            best := Some (ii, rc, op_starts)
          end
        | Fd.Search.Unsat _ -> ()
        | Fd.Search.Timeout _ -> proven := false);
        try_ii (ii + 1)
      end
    end
  in
  try_ii (res_mii g arch);
  Option.map
    (fun (ii, rc, op_starts) ->
      make_result g arch ~ii ~rec_count:rc ~op_starts
        ~time_ms:((Unix.gettimeofday () -. t0) *. 1000.)
        ~proven:!proven)
    !best

let validate g arch r =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let exception E of string in
  try
    (* precedence within the iteration *)
    List.iter
      (fun (i, lat, j) ->
        if r.start.(i) + lat > r.start.(j) then
          raise (E (Printf.sprintf "dep %d -> %d violated" i j)))
      (op_deps g arch);
    (* steady state: per-residue capacities *)
    let residues rc =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun i ->
          if Eit.Opcode.resource (Ir.opcode g i) = rc then begin
            let c = r.start.(i) mod r.ii in
            Hashtbl.replace tbl c (i :: Option.value ~default:[] (Hashtbl.find_opt tbl c))
          end)
        (Ir.op_nodes g);
      tbl
    in
    let vec = residues Eit.Opcode.Vector_core in
    Hashtbl.iter
      (fun c ops ->
        let lanes =
          List.fold_left (fun acc i -> acc + Eit.Opcode.lanes (Ir.opcode g i)) 0 ops
        in
        if lanes > arch.Eit.Arch.n_lanes then
          raise (E (Printf.sprintf "residue %d: %d lanes" c lanes));
        match ops with
        | first :: rest ->
          List.iter
            (fun j ->
              if not (Eit.Opcode.config_equal (Ir.opcode g first) (Ir.opcode g j)) then
                raise (E (Printf.sprintf "residue %d: mixed configurations" c)))
            rest
        | [] -> ())
      vec;
    List.iter
      (fun rc ->
        Hashtbl.iter
          (fun c ops ->
            if List.length ops > 1 then
              raise (E (Printf.sprintf "residue %d: serial unit overloaded" c)))
          (residues rc))
      [ Eit.Opcode.Scalar_accel; Eit.Opcode.Index_merge ];
    Ok ()
  with E msg -> err "%s" msg

let pp ppf r =
  Format.fprintf ppf
    "II=%d, %d reconfigs, actual II=%d, throughput=%.3f iter/cc, span=%d, \
     %.0f ms%s"
    r.ii r.reconfigurations r.actual_ii r.throughput r.span r.time_ms
    (if r.proven then "" else " (not proven)")
