(** End-to-end scheduling: build the model, run the three-phase branch &
    bound (paper §3.5), return a validated schedule. *)

open Eit_dsl

type status =
  | Optimal     (** proven shortest schedule *)
  | Feasible    (** budget hit; best schedule found so far *)
  | Unsat       (** no schedule exists (e.g. too few memory slots) *)
  | Timeout     (** budget hit before any solution *)

type outcome = {
  status : status;
  schedule : Schedule.t option;
  stats : Fd.Search.stats;
}

val run :
  ?budget:Fd.Search.budget ->
  ?memory:bool ->
  ?arch:Eit.Arch.t ->
  ?validate:bool ->
  ?parallel:int ->
  Ir.t ->
  outcome
(** Defaults: 10-second time budget, memory allocation on,
    {!Eit.Arch.default}, validation on, [parallel = 0] (sequential).
    [parallel >= 2] runs a cooperative portfolio of that many diversified
    search strategies on OCaml domains (see {!Fd.Portfolio}), each over
    an independently-built model, sharing one atomic incumbent bound.
    @raise Failure if [validate] and the produced schedule violates the
    independent checker (a solver bug — should never happen). *)

val pp_status : Format.formatter -> status -> unit
