(** End-to-end scheduling with graceful degradation: build the model,
    run the (possibly parallel) branch & bound under a deadline, fall
    back to the heuristic list scheduler when the CP engine produced
    nothing usable, and re-check whatever came out with the independent
    validator ({!Validate}) before anyone downstream sees it.

    [run] never raises: every failure mode — deadline, root
    infeasibility, a crashing propagator, an invalid solver schedule —
    is reported through the typed {!status} / {!engine} / [validation]
    fields. *)

open Eit_dsl

type status = Fd.Search.status =
  | Optimal           (** proven shortest schedule *)
  | Feasible_timeout  (** budget/deadline hit; best schedule returned
                          (from the CP engine or the fallback) *)
  | Infeasible        (** proven: no schedule exists (e.g. too few
                          memory slots) — requires a crash-free run *)
  | Crashed           (** the engine failed (crash or invalid schedule)
                          {e and} the degradation path could not produce
                          a validated schedule *)

type engine =
  | Cp        (** the schedule came from the constraint solver *)
  | Fallback  (** the heuristic list scheduler rescued the run *)

type outcome = {
  status : status;
  engine : engine;
  schedule : Schedule.t option;
      (** invariant: [Some] implies [status] is [Optimal] or
          [Feasible_timeout]; always validated when [validate] is on.
          [Feasible_timeout] with [None] is an honest timeout whose
          fallback also (legitimately) failed *)
  stats : Fd.Search.stats;
  crashes : Fd.Portfolio.worker_crash list;
      (** every isolated failure: portfolio workers by index, [0] for a
          sequential solve, [-1] for the fallback itself *)
  validation : (unit, Validate.report) result;
      (** the report of the last validation performed; [Error] only
          when an invalid schedule was produced and discarded *)
  from_cache : bool;
      (** the outcome was replayed from the solution cache: no search
          ran ([stats] is all-zero) and the schedule was re-validated
          on the way out *)
  validate_ms : float;
      (** total wall-clock spent in the independent validator for this
          request — normal, fallback and cache-hit re-validations all
          accumulate; [0.] when [validate] was off and no cache hit
          occurred *)
}

val run :
  ?budget:Fd.Search.budget ->
  ?deadline:Fd.Deadline.t ->
  ?memory:bool ->
  ?arch:Eit.Arch.t ->
  ?validate:bool ->
  ?parallel:int ->
  ?chaos:Fd.Chaos.t ->
  ?chaos_base:int ->
  ?fallback:bool ->
  ?tid:int ->
  ?cache:Cache.t ->
  ?warm:bool ->
  ?warm_bound:int ->
  ?metrics:Obs.Metrics.registry ->
  Ir.t ->
  outcome
(** Defaults: 10-second time budget, no extra deadline, memory
    allocation on, {!Eit.Arch.default}, validation on, [parallel = 0]
    (sequential), no fault injection, fallback on, trace [tid] 0.

    The effective deadline is the earlier of [deadline] and the
    budget's time component; it is observed inside propagation sweeps
    (including root propagation), so the engine cannot overshoot it by
    one long fixpoint.  An effective deadline that is {e already}
    expired (equivalently, a zero time budget) goes straight to the
    degradation ladder without entering model build or search — the
    two spellings of "no search time" behave identically.

    [parallel >= 2] runs a cooperative portfolio of that many
    diversified search strategies on OCaml domains (see
    {!Fd.Portfolio}), each over an independently-built model, sharing
    one atomic incumbent bound; a crashing worker is isolated and
    recorded in [crashes].

    [chaos] instruments every store (sequential or portfolio) for fault
    injection — see {!Fd.Chaos}.  [chaos_base] offsets the
    instrumentation site ids (sequential solve = [chaos_base],
    portfolio worker [i] = [chaos_base + i]) so a serving layer can
    give every request attempt a disjoint fault-target range.

    [tid] is the Obs track the sched-phase spans (and a sequential
    search's events) are emitted on; a pool running several solves
    concurrently gives each worker its own [tid] so spans still nest
    per track.  (Portfolio workers keep their own 0-based tids.)

    [fallback = false] disables the heuristic rescue (for measuring the
    CP engine alone); a no-incumbent timeout then reports
    [Feasible_timeout] with no schedule.

    [cache] consults (and populates) a shared {!Cache.t} keyed on the
    canonical form of the problem ({!Cache.Key}): an identical request
    — up to alpha-renaming of node ids — replays the stored schedule
    with zero search work ([from_cache = true], all-zero [stats]),
    after re-validating it from scratch.  Only proven-optimal validated
    schedules and crash-free infeasibility proofs are stored; timeouts,
    fallback rescues, crashed runs and all chaos runs never populate
    the cache, and chaos runs do not consult it either.

    [warm] seeds a sequential solve of a {e near-miss} — same node
    multiset (shape), edited edges or arch knobs — with the best
    validated makespan previously recorded for that shape, as an
    external upper bound.  [warm_bound] supplies the seed explicitly
    (and implies [warm]).  Soundness: a proof of optimality under the
    seed is a genuine global proof, and an [Infeasible] under the seed
    triggers an automatic cold re-solve (stats accumulate across both
    runs) — a stale seed can cost time, never correctness.  Portfolio
    solves ([parallel >= 2]) ignore the seed.

    [metrics] receives one observation per call into the
    [solve.nodes] / [solve.propagations] / [solve.time_ms] /
    [solve.validate_ms] histograms and bumps [solve.count] (plus
    [solve.cache_hits] on a replay); it is also threaded into the
    sequential engine's own [search.*] instruments.  Defaults to
    {!Obs.Metrics.default}, which is disabled unless the process
    enabled it — a standalone solve then pays one atomic load. *)

val exit_code : outcome -> int
(** The process exit code contract (also used by [eitc schedule]):
    [0] optimal or CP-feasible, [2] fallback schedule (degraded),
    [3] infeasible, [4] crashed / no usable schedule. *)

val pp_status : Format.formatter -> status -> unit
val pp_engine : Format.formatter -> engine -> unit
