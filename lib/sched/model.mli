(** The unified constraint model for scheduling with memory allocation
    (paper §3.3-3.4).

    One model instance owns a {!Fd.Store.t} with:
    - a start-time variable per IR node (eq. 1 precedences on edges,
      eq. 4 for data nodes);
    - Cumulative over the four vector lanes (eq. 2), the scalar
      accelerator and the index/merge unit;
    - pairwise start disequality for differently-configured vector ops
      (eq. 3);
    - the makespan objective variable (eq. 5);
    - per vector-datum: a slot variable channeled to line and page
      variables (eq. 6), the page=>line access implications for operands
      of one op (eq. 7) and for operands/results of potentially
      co-scheduled op pairs (eqs. 8-9), lifetime variables (eq. 10) and
      the Diff2 slot-reuse constraint (eq. 11). *)

open Eit_dsl

type t = {
  store : Fd.Store.t;
  ir : Ir.t;
  arch : Eit.Arch.t;
  start : Fd.Store.var array;       (** per node *)
  slot : (int * Fd.Store.var) list; (** per vector-data node *)
  life : (int * Fd.Store.var) list;
  makespan : Fd.Store.var;
  horizon : int;
}

val horizon_estimate : Ir.t -> Eit.Arch.t -> int
(** A safe upper bound on the optimal makespan: serialize everything. *)

val build :
  ?horizon:int -> ?deadline:Fd.Deadline.t -> ?memory:bool -> Ir.t -> Eit.Arch.t -> t
(** Construct the model and run root propagation.
    [memory] (default [true]) includes the slot-allocation part; turning
    it off reproduces a scheduling-only model (used as ablation and by
    the manual baseline).  A finite [deadline] installs a store poll, so
    even the root propagation sweep is interruptible.
    @raise Fd.Store.Fail if the root model is inconsistent.
    @raise Fd.Store.Interrupted if [deadline] expires during root
    propagation. *)

val phases : t -> Fd.Search.phase list
(** The paper's three search phases (§3.5): operation starts, then data
    starts, then slots. *)

val extract : t -> Schedule.t
(** Snapshot the current (fully assigned) store into a schedule. *)
