(** The independent schedule validator — the trust anchor of the
    degradation path.

    Whatever produced a result — the CP solver, the heuristic fallback,
    the overlapped-execution transform or the modulo scheduler — it is
    re-checked here from the IR and architecture description alone,
    before anything downstream (code generation, reporting) consumes
    it.  The checks share no code with the solvers: precedences with
    latencies, lane/unit capacities (ground cumulative), configuration
    exclusivity, memory slot ranges, lifetime-disjoint slot reuse and
    the page/line access rules.

    All entry points return a {!report} instead of raising, so a buggy
    or fault-injected solver can never push an invalid schedule past
    this point silently. *)

open Eit_dsl

type report = {
  subject : string;  (** what was validated: "schedule" / "overlap" / "modulo" *)
  violations : Schedule.violation list;
}

val pp_report : Format.formatter -> report -> unit

val schedule : ?memory:bool -> Schedule.t -> (unit, report) result
(** Full re-check of a flat schedule ({!Schedule.validate}).
    [memory = false] (for schedules produced without the allocation
    part of the model) skips the memory constraint groups, which such a
    schedule never promised to satisfy. *)

val overlap : Ir.t -> Eit.Arch.t -> Overlap.t -> (unit, report) result
(** Re-derive an overlapped execution's guarantees from its bundle list
    alone: every op issued exactly once per iteration, all dependency
    latencies masked by the [(kc - kp) * M] issue gap, ground resource
    capacities over the full overlapped stream, one configuration per
    bundle, and the recorded length / instruction / reconfiguration
    figures. *)

val modulo : Ir.t -> Eit.Arch.t -> Modulo.result -> (unit, report) result
(** {!Modulo.validate}, repackaged as a report. *)
