open Eit_dsl

type report = { subject : string; violations : Schedule.violation list }

let pp_report ppf r =
  Format.fprintf ppf "%s: %d violation(s):@,  @[<v>%a@]" r.subject
    (List.length r.violations)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Schedule.pp_violation)
    r.violations

let to_result subject violations =
  if violations = [] then Ok () else Error { subject; violations }

(* The memory-free model does not enforce allocation rules, so a
   schedule produced without it must not be held to them. *)
let memory_groups = [ "memory"; "memory-access"; "slot-reuse" ]

let schedule ?(memory = true) sch =
  let violations = Schedule.validate sch in
  let relevant =
    if memory then violations
    else
      List.filter
        (fun v -> not (List.mem v.Schedule.where memory_groups))
        violations
  in
  to_result "schedule" relevant

let node_latency g arch i =
  match (Ir.node g i).Ir.op with
  | Some op -> Eit.Arch.latency arch op
  | None -> 0

(* Re-derive every property of an overlapped execution from the bundle
   list alone — nothing is trusted from [Overlap.run]'s own
   bookkeeping. *)
let overlap g arch (t : Overlap.t) =
  let violations = ref [] in
  let add where fmt =
    Format.kasprintf
      (fun msg -> violations := { Schedule.where; msg } :: !violations)
      fmt
  in
  let bundles = List.map snd t.Overlap.bundles in
  let m = t.Overlap.m in
  if m < 1 then add "overlap" "M = %d is not positive" m;
  (* Coverage: each operation is issued exactly once per iteration. *)
  let bundle_of = Hashtbl.create 64 in
  List.iteri
    (fun k ops ->
      List.iter
        (fun i ->
          if Hashtbl.mem bundle_of i then
            add "overlap" "op %d appears in more than one bundle" i
          else Hashtbl.add bundle_of i k)
        ops)
    bundles;
  List.iter
    (fun i ->
      if not (Hashtbl.mem bundle_of i) then
        add "overlap" "op %d missing from the bundle sequence" i)
    (Ir.op_nodes g);
  (* Masked dependencies: iteration [i]'s copy of instruction [k]
     issues at [k*M + i], so a producer in bundle [kp] and a consumer
     in bundle [kc] of the same iteration are [(kc - kp) * M] cycles
     apart — that gap must cover the producer's latency. *)
  List.iter
    (fun p ->
      match Hashtbl.find_opt bundle_of p with
      | None -> ()
      | Some kp ->
        List.iter
          (fun d ->
            List.iter
              (fun c ->
                match Hashtbl.find_opt bundle_of c with
                | None -> ()
                | Some kc ->
                  if (kc - kp) * m < node_latency g arch p then
                    add "precedence"
                      "ops %d (bundle %d) -> %d (bundle %d): gap %d does not \
                       mask latency %d"
                      p kp c kc
                      ((kc - kp) * m)
                      (node_latency g arch p))
              (Ir.succs g d))
          (Ir.succs g p))
    (Ir.op_nodes g);
  (* Ground resource check over the full overlapped stream: every copy
     of every instruction, at its actual issue cycle. *)
  let stream rc =
    List.concat
      (List.mapi
         (fun k ops ->
           List.concat_map
             (fun i ->
               if Eit.Opcode.resource (Ir.opcode g i) = rc then
                 List.init m (fun iter -> (i, (k * m) + iter))
               else [])
             ops)
         bundles)
  in
  let check_resource rc limit label =
    let issues = stream rc in
    if issues <> [] then begin
      let starts = Array.of_list (List.map snd issues) in
      let durations =
        Array.of_list
          (List.map (fun (i, _) -> Eit.Arch.duration arch (Ir.opcode g i)) issues)
      in
      let resources =
        Array.of_list
          (List.map
             (fun (i, _) ->
               match rc with
               | Eit.Opcode.Vector_core -> Eit.Opcode.lanes (Ir.opcode g i)
               | _ -> 1)
             issues)
      in
      if not (Fd.Cumulative.check ~starts ~durations ~resources ~limit) then
        add "resource" "%s capacity %d exceeded in the overlapped stream"
          label limit
    end
  in
  check_resource Eit.Opcode.Vector_core arch.Eit.Arch.n_lanes "vector core";
  check_resource Eit.Opcode.Scalar_accel 1 "scalar accelerator";
  check_resource Eit.Opcode.Index_merge 1 "index/merge unit";
  (* Configuration grouping: all M copies of one bundle issue in
     consecutive cycles under one configuration, so the bundle's
     vector-core ops must agree on it (eq. 3). *)
  List.iteri
    (fun k ops ->
      let vops =
        List.filter
          (fun i ->
            Eit.Opcode.resource (Ir.opcode g i) = Eit.Opcode.Vector_core)
          ops
      in
      match vops with
      | [] | [ _ ] -> ()
      | first :: rest ->
        List.iter
          (fun j ->
            if not (Eit.Opcode.config_equal (Ir.opcode g first) (Ir.opcode g j))
            then
              add "configuration"
                "bundle %d mixes configurations (%s vs %s)" k
                (Eit.Opcode.name (Ir.opcode g first))
                (Eit.Opcode.name (Ir.opcode g j)))
          rest)
    bundles;
  (* Book-keeping: recompute the derived figures. *)
  let n = List.length bundles in
  if t.Overlap.n_instructions <> n then
    add "overlap" "records %d instructions, bundle list has %d"
      t.Overlap.n_instructions n;
  let drain =
    match List.rev bundles with
    | ops :: _ ->
      List.fold_left (fun acc i -> max acc (node_latency g arch i)) 0 ops
    | [] -> 0
  in
  if t.Overlap.length <> (n * m) + drain then
    add "overlap" "length %d <> N*M + drain = %d" t.Overlap.length
      ((n * m) + drain);
  let configs =
    List.map
      (fun ops ->
        List.find_map
          (fun i ->
            let op = Ir.opcode g i in
            if Eit.Opcode.resource op = Eit.Opcode.Vector_core then Some op
            else None)
          ops)
      bundles
  in
  let reconfigs = Eit.Config.count_reconfigs configs in
  if t.Overlap.reconfigurations <> reconfigs then
    add "configuration" "records %d reconfigurations, recount gives %d"
      t.Overlap.reconfigurations reconfigs;
  to_result "overlap" (List.rev !violations)

let modulo g arch r =
  match Modulo.validate g arch r with
  | Ok () -> Ok ()
  | Error msg ->
    Error { subject = "modulo"; violations = [ { where = "modulo"; msg } ] }
