(* Word layout (64 bit):

   record tag: bits 62-63
     0 = cycle marker   bits 0-31: cycle
     1 = issue header   bits 0-15:  op configuration
                        bit  16:    dest kind (0 slot, 1 reg)
                        bits 17-32: dest address
                        bits 33-35: operand count
                        bits 36-55: IR node id (trace metadata)
     2 = operand        bits 60-61: kind (0 slot, 1 reg, 2 imm-pool)
                        bits 0-31:  address / pool index

   op configuration (16 bit):
     bits 14-15: unit (0 = vector core, 1 = scalar accel, 2 = idx/merge)
     vector:  bits 0-3 core, bits 4-5 pre kind (0 none, 1 conj, 2 neg,
              3 mask), bits 6-9 mask, bits 10-11 post (0 none, 1 sort,
              2 abs, 3 neg)
     scalar:  bits 0-3 sop
     idx/mg:  bits 0-1 kind (0 merge, 1 splat, 2 index), bits 2-3 k *)

let ( <<< ) x n = Int64.shift_left x n
let ( >>> ) x n = Int64.shift_right_logical x n
let ( ||| ) = Int64.logor
let ( &&& ) = Int64.logand

let mask_bits n = Int64.sub (1L <<< n) 1L
let field x ~lo ~bits = Int64.to_int ((x >>> lo) &&& mask_bits bits)
let put v ~lo = Int64.of_int v <<< lo

let index_of x l =
  let rec go i = function
    | [] -> invalid_arg "Encode: unknown enum value"
    | y :: rest -> if y = x then i else go (i + 1) rest
  in
  go 0 l

let encode_op (op : Opcode.t) =
  match op with
  | V { pre; core; post } ->
    let core_id = index_of core Opcode.all_cores in
    let pre_kind, m =
      match pre with
      | None -> (0, 0)
      | Some Opcode.Pconj -> (1, 0)
      | Some Opcode.Pneg -> (2, 0)
      | Some (Opcode.Pmask m) -> (3, m)
    in
    let post_id =
      match post with
      | None -> 0
      | Some Opcode.Qsort -> 1
      | Some Opcode.Qabs -> 2
      | Some Opcode.Qneg -> 3
    in
    core_id lor (pre_kind lsl 4) lor (m lsl 6) lor (post_id lsl 10)
  | S sop -> (1 lsl 14) lor index_of sop Opcode.all_sops
  | IM imop ->
    let kind, k =
      match imop with
      | Opcode.Merge4 -> (0, 0)
      | Opcode.Splat -> (1, 0)
      | Opcode.Index k -> (2, k)
    in
    (2 lsl 14) lor kind lor (k lsl 2)

let decode_op bits =
  match bits lsr 14 with
  | 0 ->
    let core = List.nth Opcode.all_cores (bits land 0xF) in
    let pre =
      match (bits lsr 4) land 0x3 with
      | 0 -> None
      | 1 -> Some Opcode.Pconj
      | 2 -> Some Opcode.Pneg
      | _ -> Some (Opcode.Pmask ((bits lsr 6) land 0xF))
    in
    let post =
      match (bits lsr 10) land 0x3 with
      | 0 -> None
      | 1 -> Some Opcode.Qsort
      | 2 -> Some Opcode.Qabs
      | _ -> Some Opcode.Qneg
    in
    Opcode.V { pre; core; post }
  | 1 -> Opcode.S (List.nth Opcode.all_sops (bits land 0xF))
  | 2 -> (
    match bits land 0x3 with
    | 0 -> Opcode.IM Opcode.Merge4
    | 1 -> Opcode.IM Opcode.Splat
    | _ -> Opcode.IM (Opcode.Index ((bits lsr 2) land 0x3)))
  | _ -> failwith "Encode.decode_op: bad unit tag"

type image = { words : int64 array; pool : Cplx.t array }

let encode (p : Instr.program) =
  let words = ref [] in
  let pool = ref [] in
  let pool_index c =
    let rec go i = function
      | [] ->
        pool := !pool @ [ c ];
        i
      | c' :: rest -> if Cplx.equal ~eps:0. c c' then i else go (i + 1) rest
    in
    go 0 !pool
  in
  let emit w = words := w :: !words in
  let emit_issue (i : Instr.issue) =
    let dest_kind, dest_addr =
      match i.Instr.dest with Instr.Dslot k -> (0, k) | Instr.Dreg r -> (1, r)
    in
    emit
      ((1L <<< 62)
      ||| put (encode_op i.Instr.op) ~lo:0
      ||| put dest_kind ~lo:16
      ||| put dest_addr ~lo:17
      ||| put (List.length i.Instr.args) ~lo:33
      ||| put i.Instr.node ~lo:36);
    List.iter
      (fun arg ->
        let kind, v =
          match arg with
          | Instr.Slot k -> (0, k)
          | Instr.Reg r -> (1, r)
          | Instr.Imm c -> (2, pool_index c)
        in
        emit ((2L <<< 62) ||| put kind ~lo:60 ||| put v ~lo:0))
      i.Instr.args
  in
  List.iter
    (fun ci ->
      emit (put ci.Instr.cycle ~lo:0);
      List.iter emit_issue ci.Instr.vector;
      Option.iter emit_issue ci.Instr.scalar;
      Option.iter emit_issue ci.Instr.im)
    p.Instr.instrs;
  { words = Array.of_list (List.rev !words); pool = Array.of_list !pool }

let decode ~arch ~inputs ~outputs img =
  let n = Array.length img.words in
  let instrs = ref [] in
  let current : Instr.cycle_instr option ref = ref None in
  let flush () =
    match !current with
    | Some ci ->
      instrs :=
        { ci with Instr.vector = List.rev ci.Instr.vector } :: !instrs;
      current := None
    | None -> ()
  in
  let pos = ref 0 in
  (* Every malformed-image message names the offending word, so a
     truncated or corrupted dump is locatable. *)
  let bad fmt = Printf.ksprintf (fun m -> failwith ("Encode.decode: " ^ m)) fmt in
  let next () =
    if !pos >= n then bad "truncated image at word %d" !pos;
    let w = img.words.(!pos) in
    incr pos;
    w
  in
  while !pos < n do
    let w = next () in
    match Int64.to_int (w >>> 62) with
    | 0 ->
      flush ();
      current := Some (Instr.empty_cycle (field w ~lo:0 ~bits:32))
    | 1 -> (
      let op =
        try decode_op (field w ~lo:0 ~bits:16)
        with Failure m -> bad "word %d: %s" (!pos - 1) m
      in
      let dest =
        let addr = field w ~lo:17 ~bits:16 in
        if field w ~lo:16 ~bits:1 = 0 then Instr.Dslot addr else Instr.Dreg addr
      in
      let nargs = field w ~lo:33 ~bits:3 in
      let node = field w ~lo:36 ~bits:20 in
      let args =
        List.init nargs (fun _ ->
            let aw = next () in
            if Int64.to_int (aw >>> 62) <> 2 then
              bad "word %d: expected operand word" (!pos - 1);
            let v = field aw ~lo:0 ~bits:32 in
            match field aw ~lo:60 ~bits:2 with
            | 0 -> Instr.Slot v
            | 1 -> Instr.Reg v
            | 2 ->
              if v >= Array.length img.pool then
                bad "word %d: pool index %d out of range (pool has %d)"
                  (!pos - 1) v (Array.length img.pool);
              Instr.Imm img.pool.(v)
            | _ -> bad "word %d: bad operand kind" (!pos - 1))
      in
      let issue = { Instr.op; args; dest; node } in
      match !current with
      | None -> bad "word %d: issue before cycle marker" (!pos - 1)
      | Some ci -> (
        match Opcode.resource op with
        | Opcode.Vector_core ->
          current := Some { ci with Instr.vector = issue :: ci.Instr.vector }
        | Opcode.Scalar_accel -> current := Some { ci with Instr.scalar = Some issue }
        | Opcode.Index_merge -> current := Some { ci with Instr.im = Some issue }))
    | _ -> bad "word %d: unexpected record tag" (!pos - 1)
  done;
  flush ();
  { Instr.arch; inputs; instrs = List.rev !instrs; outputs }

let encode_result p =
  match encode p with
  | img -> Ok img
  | exception (Failure m | Invalid_argument m) -> Error m

let decode_result ~arch ~inputs ~outputs img =
  match decode ~arch ~inputs ~outputs img with
  | p -> Ok p
  | exception (Failure m | Invalid_argument m) -> Error m

let size_bytes img = 8 * (Array.length img.words + (2 * Array.length img.pool))

let pp_word ppf w =
  match Int64.to_int (w >>> 62) with
  | 0 -> Format.fprintf ppf "CYCLE %d" (field w ~lo:0 ~bits:32)
  | 1 ->
    let op = try Opcode.name (decode_op (field w ~lo:0 ~bits:16)) with _ -> "?" in
    Format.fprintf ppf "ISSUE %s dest=%s%d nargs=%d node=%d" op
      (if field w ~lo:16 ~bits:1 = 0 then "m" else "r")
      (field w ~lo:17 ~bits:16) (field w ~lo:33 ~bits:3) (field w ~lo:36 ~bits:20)
  | 2 ->
    Format.fprintf ppf "ARG %s %d"
      (match field w ~lo:60 ~bits:2 with 0 -> "slot" | 1 -> "reg" | _ -> "imm")
      (field w ~lo:0 ~bits:32)
  | _ -> Format.fprintf ppf "???"
