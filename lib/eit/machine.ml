type error =
  | Read_uninitialized of { cycle : int; node : int; slot : int }
  | Read_unwritten_reg of { cycle : int; node : int; reg : int }
  | Access_violation of { cycle : int; violations : Mem.violation list }
  | Structural of string
  | Write_conflict of { cycle : int; dest : Instr.dest }

exception Sim_error of error

let pp_error ppf = function
  | Read_uninitialized { cycle; node; slot } ->
    Format.fprintf ppf "cycle %d, node %d: read of uninitialized slot %d" cycle node slot
  | Read_unwritten_reg { cycle; node; reg } ->
    Format.fprintf ppf "cycle %d, node %d: read of unwritten register r%d" cycle node reg
  | Access_violation { cycle; violations } ->
    Format.fprintf ppf "cycle %d: %a" cycle
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         Mem.pp_violation)
      violations
  | Structural msg -> Format.fprintf ppf "structural error: %s" msg
  | Write_conflict { cycle; dest } ->
    Format.fprintf ppf "cycle %d: conflicting write-backs to %s" cycle
      (match dest with
      | Instr.Dslot k -> Printf.sprintf "m[%d]" k
      | Instr.Dreg r -> Printf.sprintf "r%d" r)

type result = {
  memory : Mem.t;
  registers : (int * Cplx.t) list;
  node_values : (int * Value.t) list;
  cycles : int;
  reads_per_cycle : (int * int) list;
  reconfigurations : int;
}

type writeback = { wb_cycle : int; wb_dest : Instr.dest; wb_value : Value.t; wb_node : int }

type trace_event =
  | Ev_issue of { cycle : int; unit : string; issue : Instr.issue }
  | Ev_writeback of { cycle : int; node : int; dest : Instr.dest; value : Value.t }

let pp_dest ppf = function
  | Instr.Dslot k -> Format.fprintf ppf "m[%d]" k
  | Instr.Dreg r -> Format.fprintf ppf "r%d" r

let pp_trace_event ppf = function
  | Ev_issue { cycle; unit; issue } ->
    Format.fprintf ppf "%4d  issue %s  %a" cycle unit Instr.pp_issue issue
  | Ev_writeback { cycle; node; dest; value } ->
    Format.fprintf ppf "%4d  wb    n%d -> %a = %a" cycle node pp_dest dest
      Value.pp value

(* Per-cycle occupancy accumulators for the Obs timeline: lane-cycles
   of the vector core plus bank-port traffic, indexed by cycle.  Only
   allocated when a sink is attached. *)
type occupancy = {
  occ_lanes : int array;
  occ_reads : int array;
  occ_writes : int array;
}

let emit_timeline occ horizon =
  (* The machine's track uses simulated time: 1 us = 1 cycle (pid 2 in
     the Chrome sink, so the scale never mixes with wall-clock spans). *)
  for cycle = 0 to horizon do
    let ts_us = float_of_int cycle in
    Obs.counter ~cat:"machine" ~ts_us "lanes"
      [ ("busy", Obs.I occ.occ_lanes.(cycle)) ];
    Obs.counter ~cat:"machine" ~ts_us "bank-ports"
      [ ("reads", Obs.I occ.occ_reads.(cycle));
        ("writes", Obs.I occ.occ_writes.(cycle)) ]
  done

let unit_tid = function
  | Opcode.Vector_core -> 0
  | Opcode.Scalar_accel -> 1
  | Opcode.Index_merge -> 2

let run ?(check_access = true) ?(trace = fun _ -> ()) (p : Instr.program) =
  (match Instr.validate_structure p with
  | Ok () -> ()
  | Error msg -> raise (Sim_error (Structural msg)));
  let arch = p.arch in
  let mem = Mem.create arch in
  let regs : (int, Cplx.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (function
      | Instr.In_slot (k, v) -> Mem.write mem k v
      | Instr.In_reg (r, c) -> Hashtbl.replace regs r c)
    p.inputs;
  let node_values : (int, Value.t) Hashtbl.t = Hashtbl.create 64 in
  let pending : (int, writeback list) Hashtbl.t = Hashtbl.create 64 in
  let add_pending wb =
    Hashtbl.replace pending wb.wb_cycle
      (wb :: Option.value ~default:[] (Hashtbl.find_opt pending wb.wb_cycle))
  in
  let reads_per_cycle = ref [] in
  let last_wb = ref 0 in
  let by_cycle = Hashtbl.create 64 in
  List.iter (fun ci -> Hashtbl.replace by_cycle ci.Instr.cycle ci) p.instrs;
  let horizon =
    Instr.span p
    + List.fold_left
        (fun acc ci ->
          let ops =
            List.map (fun i -> i.Instr.op) ci.Instr.vector
            @ List.map (fun (i : Instr.issue) -> i.op)
                (Option.to_list ci.Instr.scalar @ Option.to_list ci.Instr.im)
          in
          List.fold_left (fun m op -> max m (Arch.latency arch op)) acc ops)
        0 p.instrs
  in
  let occ =
    if Obs.enabled () then
      Some
        {
          occ_lanes = Array.make (horizon + 1) 0;
          occ_reads = Array.make (horizon + 1) 0;
          occ_writes = Array.make (horizon + 1) 0;
        }
    else None
  in
  for cycle = 0 to horizon do
    (* 1. Write-backs due this cycle (memory writes checked as this
       cycle's write traffic). *)
    let wbs = Option.value ~default:[] (Hashtbl.find_opt pending cycle) in
    Hashtbl.remove pending cycle;
    let write_slots =
      List.filter_map
        (fun wb -> match wb.wb_dest with Instr.Dslot k -> Some k | _ -> None)
        wbs
    in
    (* Detect two results landing in the same destination at once. *)
    let rec dup = function
      | [] -> None
      | k :: rest -> if List.mem k rest then Some k else dup rest
    in
    (match dup write_slots with
    | Some k -> raise (Sim_error (Write_conflict { cycle; dest = Instr.Dslot k }))
    | None -> ());
    (* 2. Issues this cycle: collect reads first. *)
    let ci = Hashtbl.find_opt by_cycle cycle in
    let issues =
      match ci with
      | None -> []
      | Some ci ->
        ci.Instr.vector @ Option.to_list ci.Instr.scalar @ Option.to_list ci.Instr.im
    in
    let read_slots =
      List.concat_map
        (fun (i : Instr.issue) ->
          List.filter_map
            (function Instr.Slot k -> Some k | _ -> None)
            i.args)
        issues
    in
    if check_access then begin
      let violations = Mem.check_access arch ~reads:read_slots ~writes:write_slots in
      if violations <> [] then raise (Sim_error (Access_violation { cycle; violations }))
    end;
    (* Apply write-backs before reads: a datum written back in cycle c is
       readable by an op issued in cycle c (s_j >= s_i + l_i). *)
    List.iter
      (fun wb ->
        (match wb.wb_dest with
        | Instr.Dslot k -> Mem.write mem k (Value.as_vector wb.wb_value)
        | Instr.Dreg r -> Hashtbl.replace regs r (Value.as_scalar wb.wb_value));
        Hashtbl.replace node_values wb.wb_node wb.wb_value;
        trace (Ev_writeback { cycle; node = wb.wb_node; dest = wb.wb_dest; value = wb.wb_value });
        last_wb := max !last_wb cycle)
      wbs;
    if read_slots <> [] then
      reads_per_cycle := (cycle, List.length (List.sort_uniq compare read_slots)) :: !reads_per_cycle;
    (match occ with
    | Some occ ->
      occ.occ_reads.(cycle) <-
        List.length (List.sort_uniq compare read_slots);
      occ.occ_writes.(cycle) <- List.length wbs
    | None -> ());
    (* Execute issues. *)
    List.iter
      (fun (i : Instr.issue) ->
        let fetch = function
          | Instr.Slot k ->
            if not (Mem.is_initialized mem k) then
              raise (Sim_error (Read_uninitialized { cycle; node = i.node; slot = k }));
            Value.Vector (Mem.read mem k)
          | Instr.Reg r -> (
            match Hashtbl.find_opt regs r with
            | Some c -> Value.Scalar c
            | None ->
              raise (Sim_error (Read_unwritten_reg { cycle; node = i.node; reg = r })))
          | Instr.Imm c -> Value.Scalar c
        in
        let unit =
          match Opcode.resource i.op with
          | Opcode.Vector_core -> "V"
          | Opcode.Scalar_accel -> "S"
          | Opcode.Index_merge -> "M"
        in
        trace (Ev_issue { cycle; unit; issue = i });
        (match occ with
        | Some occ ->
          (* one Complete span per issue on the unit's track, plus lane
             occupancy over the op's pipeline duration *)
          let dur = max 1 (Arch.duration arch i.op) in
          Obs.complete ~cat:"machine"
            ~tid:(unit_tid (Opcode.resource i.op))
            ~ts_us:(float_of_int cycle)
            ~dur_us:(float_of_int (Arch.latency arch i.op))
            ~args:[ ("node", Obs.I i.node); ("unit", Obs.S unit) ]
            (Opcode.name i.op);
          if Opcode.resource i.op = Opcode.Vector_core then
            for d = 0 to dur - 1 do
              if cycle + d <= horizon then
                occ.occ_lanes.(cycle + d) <-
                  occ.occ_lanes.(cycle + d) + Opcode.lanes i.op
            done
        | None -> ());
        let args = List.map fetch i.args in
        let value = Opcode.eval i.op args in
        add_pending
          {
            wb_cycle = cycle + Arch.latency arch i.op;
            wb_dest = i.dest;
            wb_value = value;
            wb_node = i.node;
          })
      issues
  done;
  if Hashtbl.length pending > 0 then
    raise (Sim_error (Structural "pending write-backs after horizon"));
  (match occ with Some occ -> emit_timeline occ horizon | None -> ());
  {
    memory = mem;
    registers = Hashtbl.fold (fun r c acc -> (r, c) :: acc) regs [];
    node_values = Hashtbl.fold (fun n v acc -> (n, v) :: acc) node_values [];
    cycles = !last_wb;
    reads_per_cycle = List.rev !reads_per_cycle;
    reconfigurations = Instr.reconfigurations p;
  }

let output_values result (p : Instr.program) =
  List.map
    (fun (node, dest) ->
      match dest with
      | Instr.Dslot k -> (node, Value.Vector (Mem.read result.memory k))
      | Instr.Dreg r -> (node, Value.Scalar (List.assoc r result.registers)))
    p.outputs
