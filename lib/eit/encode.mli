(** Binary encoding of instruction streams — the configuration-memory
    image (paper §1.1: operation modes "are specified in embedded
    configuration memories, which are re-loadable in every clock
    cycle"; the master node PE1 sequences them from instructions stored
    in ME1).

    The encoding is word-oriented (64-bit):

    - a {e cycle} word sets the issue cycle for the records that follow;
    - an {e issue} word carries the unit, the operation configuration,
      the destination and the operand count, followed by one {e operand}
      word per operand;
    - immediate scalars live in a constant pool referenced by index.

    [decode (encode p)] reproduces the program's instruction stream
    exactly (inputs/outputs metadata are carried alongside, not in the
    code image). *)

type image = {
  words : int64 array;
  pool : Cplx.t array;       (** immediate constant pool *)
}

val encode : Instr.program -> image
(** @raise Invalid_argument on an unencodable program (unknown enum). *)

val decode :
  arch:Arch.t ->
  inputs:Instr.input_binding list ->
  outputs:(int * Instr.dest) list ->
  image ->
  Instr.program
(** @raise Failure on a malformed image; messages name the offending
    word index. *)

val encode_result : Instr.program -> (image, string) result
(** Total {!encode}: encoding failures become [Error]. *)

val decode_result :
  arch:Arch.t ->
  inputs:Instr.input_binding list ->
  outputs:(int * Instr.dest) list ->
  image ->
  (Instr.program, string) result
(** Total {!decode}: malformed images become [Error] with the offending
    word index in the message, never an exception. *)

val size_bytes : image -> int
(** Code image footprint (words + pool). *)

val pp_word : Format.formatter -> int64 -> unit
(** Disassembler-style rendering of one word (for dumps). *)
