(* An absolute point on the process clock, in milliseconds; [infinity]
   encodes "no deadline".  The representation keeps [expired] down to
   one clock read and one comparison, cheap enough for the propagation
   fixpoint loop to poll.

   A deadline may additionally carry a {e switch}: a shared cell that
   (a) lets an external supervisor cancel the computation early and
   (b) records the time of the last [expired] poll.  Since every
   cooperative layer (search nodes, propagation sweeps, root
   propagation) already polls [expired], the switch's poll timestamp is
   a free progress heartbeat: a propagator that wedges inside one
   execution stops polling, and a watchdog reading [idle_ms] sees the
   stall without any extra instrumentation in the engine. *)

type switch = {
  sw_cancelled : bool Atomic.t;
  sw_reason : string option Atomic.t;
  sw_beat_ms : int Atomic.t;  (* process clock, whole milliseconds *)
}

type t = { at : float; sw : switch option }

let now_ms () = Unix.gettimeofday () *. 1000.

let none = { at = infinity; sw = None }
let after_ms ms = { at = now_ms () +. ms; sw = None }

let switch () =
  {
    sw_cancelled = Atomic.make false;
    sw_reason = Atomic.make None;
    sw_beat_ms = Atomic.make (int_of_float (now_ms ()));
  }

let with_switch t sw = { t with sw = Some sw }

let cancel ?(reason = "cancelled") sw =
  (* reason before flag: a poller that observes [cancelled] finds the
     reason already published *)
  Atomic.set sw.sw_reason (Some reason);
  Atomic.set sw.sw_cancelled true

let cancelled sw = Atomic.get sw.sw_cancelled
let cancel_reason sw = Atomic.get sw.sw_reason
let beat sw = Atomic.set sw.sw_beat_ms (int_of_float (now_ms ()))
let idle_ms sw = now_ms () -. float_of_int (Atomic.get sw.sw_beat_ms)

let earliest a b =
  {
    at = Stdlib.min a.at b.at;
    (* at most one switch survives composition; in practice only the
       serving layer attaches one, and it composes with switch-free
       budget deadlines *)
    sw = (match a.sw with Some _ -> a.sw | None -> b.sw);
  }

let of_time_budget = function Some ms -> after_ms ms | None -> none

(* A switched deadline can always expire (by cancellation), so the
   engine must install its polls even when the time bound is infinite. *)
let is_finite t = t.at < infinity || t.sw <> None

let expired t =
  (match t.sw with
  | Some sw ->
    beat sw;
    Atomic.get sw.sw_cancelled
  | None -> false)
  || (t.at < infinity && now_ms () >= t.at)

let remaining_ms t = if t.at < infinity then Some (t.at -. now_ms ()) else None

let pp ppf t =
  let swtxt =
    match t.sw with
    | Some sw when Atomic.get sw.sw_cancelled -> " (cancelled)"
    | Some _ -> " (switched)"
    | None -> ""
  in
  if t.at < infinity then
    Format.fprintf ppf "deadline in %.1f ms%s" (t.at -. now_ms ()) swtxt
  else Format.fprintf ppf "no deadline%s" swtxt
