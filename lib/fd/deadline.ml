(* An absolute point on the process clock, in milliseconds; [infinity]
   encodes "no deadline".  Keeping the representation a bare float makes
   [expired] one clock read and one comparison, cheap enough for the
   propagation fixpoint loop to poll. *)

type t = float

let now_ms () = Unix.gettimeofday () *. 1000.
let none = infinity
let after_ms ms = now_ms () +. ms
let earliest a b = Stdlib.min a b
let of_time_budget = function Some ms -> after_ms ms | None -> none
let is_finite t = t < infinity
let expired t = t < infinity && now_ms () >= t
let remaining_ms t = if is_finite t then Some (t -. now_ms ()) else None

let pp ppf t =
  if is_finite t then
    Format.fprintf ppf "deadline in %.1f ms" (t -. now_ms ())
  else Format.pp_print_string ppf "no deadline"
