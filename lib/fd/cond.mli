(** Conditional constraints used by the memory-access model.

    The paper's access rules (eqs. 7-9) are implications of the shape
    [page_d = page_e  ==>  line_d = line_e], optionally guarded by a
    schedule condition [s_i = s_j] for pairs of simultaneously running
    vector operations (eqs. 8-9). *)

open Store

val implies_eq : t -> (var * var) -> (var * var) -> unit
(** [implies_eq s (p, q) (l, m)] posts [p = q ==> l = m].

    Propagation:
    - when [p] and [q] are fixed and equal, [l = m] is enforced
      (domain-consistent);
    - when dom([l]) and dom([m]) are disjoint, [p <> q] is enforced;
    - when dom([p]) and dom([q]) are disjoint the constraint is entailed. *)

val guarded_implies_eq :
  t -> guard:(var * var) -> (var * var) -> (var * var) -> unit
(** [guarded_implies_eq s ~guard:(a, b) (p, q) (l, m)] posts
    [a = b ==> (p = q ==> l = m)].

    Entailed as soon as dom([a]) and dom([b]) become disjoint; active
    (behaving like {!implies_eq}) once [a] and [b] are fixed and equal.

    Staged: until the guard is decided the propagator watches only
    [(a, b)] with [On_fix] — it is not on the watcher lists of [p], [q],
    [l], [m] at all, so narrowings of those variables cost nothing while
    no prune of this constraint can apply. *)

val guarded_implies_eq_all :
  t -> guard:(var * var) -> ((var * var) * (var * var)) list -> unit
(** [guarded_implies_eq_all s ~guard pairs] posts
    [a = b ==> (p = q ==> l = m)] for every [((p, q), (l, m))] in
    [pairs], batched into a single staged propagator.  Equivalent in
    filtering to one {!guarded_implies_eq} per element, but a guard fix
    wakes one propagator instead of [List.length pairs] copies.
    Entailed when the guard is refuted or every implication in the
    batch is decided. *)

val guarded_implies_eq_hub :
  t -> var -> (var * ((var * var) * (var * var)) list) list -> unit
(** [guarded_implies_eq_hub s a partners] posts, for every
    [(b, pairs)] in [partners] and every [((p, q), (l, m))] in [pairs],
    the constraint [a = b ==> (p = q ==> l = m)] — all carried by a
    {e single} propagator watching only [(On_fix, a)].  A fix of [a]
    wakes one hub regardless of the partner count; pair [(a, b)] is
    also rechecked when [b] fixes, provided the caller posts hubs
    {e symmetrically} (a hub for [b] listing [a] as a partner), which
    is required for completeness.  Active pairs (guard fixed-equal)
    widen the watch set to their page/line variables, trailed via
    {!Store.resubscribe}. *)

val same_guard_neq :
  t -> guard:(var * var) -> var -> var -> unit
(** [same_guard_neq s ~guard:(a, b) x y] posts [a = b ==> x <> y]. *)
