open Store

type coords = { slot : var; bank : var; line : var; page : var }

let line_of_slot ~banks k = k / banks
let bank_of_slot ~banks k = k mod banks
let page_of_slot ~banks ~page_size k = k mod banks / page_size

let of_slot s ~banks ~page_size slot =
  if banks <= 0 || page_size <= 0 || banks mod page_size <> 0 then
    invalid_arg "Geometry.of_slot: banks must be a positive multiple of page_size";
  if vmin slot < 0 then invalid_arg "Geometry.of_slot: negative slot";
  let base = name slot in
  let lift f =
    Dom.of_list (Dom.fold (fun acc v -> f v :: acc) [] (dom slot))
  in
  let bank = new_var ~name:(base ^ ".bank") s (lift (bank_of_slot ~banks)) in
  let line = new_var ~name:(base ^ ".line") s (lift (line_of_slot ~banks)) in
  let page =
    new_var ~name:(base ^ ".page") s (lift (page_of_slot ~banks ~page_size))
  in
  let prop st =
    (* slot -> coordinates *)
    let db = ref Dom.empty and dl = ref Dom.empty and dp = ref Dom.empty in
    Dom.iter
      (fun k ->
        db := Dom.union !db (Dom.singleton (bank_of_slot ~banks k));
        dl := Dom.union !dl (Dom.singleton (line_of_slot ~banks k));
        dp := Dom.union !dp (Dom.singleton (page_of_slot ~banks ~page_size k)))
      (dom slot);
    update st bank !db;
    update st line !dl;
    update st page !dp;
    (* coordinates -> slot *)
    let keep k =
      Dom.mem (bank_of_slot ~banks k) (dom bank)
      && Dom.mem (line_of_slot ~banks k) (dom line)
      && Dom.mem (page_of_slot ~banks ~page_size k) (dom page)
    in
    update st slot (Dom.filter keep (dom slot));
    (* a fixed slot fixes every coordinate (the slot -> coordinate maps
       are functions), and the channeling can never prune again *)
    if is_fixed slot then entail_now st
  in
  ignore (post_now s ~name:"slot_geometry" ~priority:prio_channel ~watches:[ slot; bank; line; page ] prop);
  propagate s;
  { slot; bank; line; page }
