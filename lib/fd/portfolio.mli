(** Parallel portfolio branch & bound on OCaml 5 domains.

    Runs several diversified search strategies concurrently, each over
    its own independently-built model (stores are not shared between
    domains).  Workers cooperate through a single atomic incumbent
    bound: every improving solution is published, and every worker
    re-reads the global bound at each choice point, pruning its tree
    with the best solution found anywhere.

    Guarantee: under a node budget, the returned bound is never worse
    than running the first strategy alone with the same budget —
    cooperative pruning only skips subtrees that cannot contain a
    strictly better solution.  (Under a wall-clock budget on an
    oversubscribed machine, time slicing can still cost nodes.)

    Crash isolation: a worker that raises mid-search (propagator bug,
    {!Chaos} injection) is contained to its own domain — its crash is
    recorded, the last incumbent it snapshotted is salvaged, and the
    remaining workers continue unaffected.  Optimality is claimed only
    when the surviving incumbent is at least as good as the best bound
    ever published, so a proof obtained by pruning against a crashed
    worker's (lost) better solution never mislabels a worse one. *)

type 'a task = {
  store : Store.t;
  phases : Search.phase list;
  objective : Store.var;
  snapshot : unit -> 'a;       (** called on each improving solution *)
  restarts : bool;             (** run under a Luby restart policy *)
}

type 'a strategy = unit -> 'a task
(** Evaluated inside the worker's domain; must build a fresh store.
    May raise {!Store.Fail} to signal root infeasibility. *)

type worker_crash = { worker : int; reason : string }

type 'a result = {
  incumbent : 'a option;
  r_status : Search.status;
  r_stats : Search.stats;
  crashes : worker_crash list;
}

val minimize_result :
  ?budget:Search.budget ->
  ?deadline:Deadline.t ->
  ?chaos:Chaos.t ->
  ?chaos_base:int ->
  ?workers:int ->
  'a strategy list ->
  'a result
(** The anytime portfolio: never raises.  Runs one worker per strategy
    (limited to the first [workers] strategies when given); each worker
    observes the budget and the absolute [deadline] cooperatively.

    Status semantics:
    - [Optimal]: some worker exhausted its search space and the
      returned incumbent matches the best published bound;
    - [Feasible_timeout]: an incumbent exists but optimality could not
      be (safely) claimed, or nothing was found before the deadline;
    - [Infeasible]: proven — requires that {e no} worker crashed;
    - [Crashed]: every worker crashed before finding a solution.

    [chaos] instruments every worker's store for fault injection;
    worker [i]'s instrumentation site is [chaos_base + i] (default
    base 0), so a caller serving many requests through one chaos
    instance can give each request a disjoint fault-target range.
    @raise Invalid_argument on an empty strategy list. *)

val minimize :
  ?budget:Search.budget ->
  ?deadline:Deadline.t ->
  ?workers:int ->
  'a strategy list ->
  'a Search.outcome
(** Compatibility wrapper over {!minimize_result}: [Solution] is a
    proven-optimal incumbent, [Best] an unproven one, [Unsat] a
    crash-free infeasibility proof, [Timeout] no solution.

    Each worker receives the full [budget]; with more workers than
    cores, wall-clock time is shared.
    @raise Invalid_argument on an empty strategy list. *)
