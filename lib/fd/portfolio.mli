(** Parallel portfolio branch & bound on OCaml 5 domains.

    Runs several diversified search strategies concurrently, each over
    its own independently-built model (stores are not shared between
    domains).  Workers cooperate through a single atomic incumbent
    bound: every improving solution is published, and every worker
    re-reads the global bound at each choice point, pruning its tree
    with the best solution found anywhere.

    Guarantee: under a node budget, the returned bound is never worse
    than running the first strategy alone with the same budget —
    cooperative pruning only skips subtrees that cannot contain a
    strictly better solution.  (Under a wall-clock budget on an
    oversubscribed machine, time slicing can still cost nodes.) *)

type 'a task = {
  store : Store.t;
  phases : Search.phase list;
  objective : Store.var;
  snapshot : unit -> 'a;       (** called on each improving solution *)
  restarts : bool;             (** run under a Luby restart policy *)
}

type 'a strategy = unit -> 'a task
(** Evaluated inside the worker's domain; must build a fresh store.
    May raise {!Store.Fail} to signal root infeasibility. *)

val minimize :
  ?budget:Search.budget ->
  ?workers:int ->
  'a strategy list ->
  'a Search.outcome
(** Run one worker per strategy (limited to the first [workers]
    strategies when given).  [Solution] means some worker exhausted its
    search space, which proves the returned incumbent globally optimal;
    [Best] a budget expired first; [Unsat] no solution exists.

    Each worker receives the full [budget]; with more workers than
    cores, wall-clock time is shared.
    @raise Invalid_argument on an empty strategy list. *)
