open Store

let post s vars =
  let n = List.length vars in
  if n > 1 then begin
    let arr = Array.of_list vars in
    let prop st =
      (* value propagation *)
      Array.iter
        (fun v ->
          if is_fixed v then
            Array.iter
              (fun w -> if w != v then remove_value st w (value v))
              arr)
        arr;
      (* Hall intervals over candidate bounds *)
      let los = Array.to_list (Array.map vmin arr) in
      let his = Array.to_list (Array.map vmax arr) in
      let lo_set = List.sort_uniq compare los in
      let hi_set = List.sort_uniq compare his in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a <= b then begin
                let inside =
                  Array.to_list arr
                  |> List.filter (fun v -> vmin v >= a && vmax v <= b)
                in
                let k = List.length inside in
                let width = b - a + 1 in
                if k > width then raise (Fail "alldiff: pigeonhole");
                if k = width then
                  (* Hall interval: prune it from everyone outside *)
                  Array.iter
                    (fun v ->
                      if not (List.memq v inside) then
                        update st v (Dom.remove_interval a b (dom v)))
                    arr
              end)
            hi_set)
        lo_set
    in
    ignore (post_now s ~name:"alldiff" ~priority:prio_global ~event:On_bounds ~watches:vars prop);
    propagate s
  end
