open Store

(* Variable selection is a closed set of incremental heuristics plus a
   [Custom] escape hatch.  The built-ins run over a backtrackable sparse
   set of possibly-unfixed variables (no List.filter per node) and break
   ties exactly like the seed engine: by original list position. *)
type var_select =
  | Input_order
  | First_fail
  | Smallest_min
  | Most_constrained
  | Custom of (var list -> var option)

let input_order = Input_order
let first_fail = First_fail
let smallest_min = Smallest_min
let most_constrained = Most_constrained
let custom f = Custom f

type val_select = var -> int

let select_min v = vmin v
let select_max v = vmax v

let select_mid v =
  let d = dom v in
  Dom.closest ((Dom.min d + Dom.max d) / 2) d

type phase = { vars : var list; var_select : var_select; val_select : val_select }

let phase ?(var_select = First_fail) ?(val_select = select_min) vars =
  { vars; var_select; val_select }

(* ------------------------------------------------------------------ *)
(* Runtime phase state: a sparse set over the phase's variables.  The
   prefix [0, n_active) of [arr] holds every possibly-unfixed variable;
   fixed variables are swapped out to the suffix during selection.
   Because variables only become fixed while descending and only become
   unfixed again on backtracking, restoring [n_active] on backtrack
   restores exactly the previous membership (order inside the prefix is
   irrelevant: tie-breaking uses the original index in [orig]). *)

type rt_phase = {
  arr : var array;
  orig : int array;  (* arr.(i)'s position in the user's list *)
  mutable n_active : int;
  sel : var_select;
  value_of : val_select;
}

let rt_of_phase ph =
  let arr = Array.of_list ph.vars in
  {
    arr;
    orig = Array.init (Array.length arr) Fun.id;
    n_active = Array.length arr;
    sel = ph.var_select;
    value_of = ph.val_select;
  }

(* Scan the active prefix once: compact newly-fixed variables out and
   return the best variable under [key] (smaller is better, ties to the
   smallest original index). *)
let scan_best rp key =
  let best = ref None in
  let best_key = ref (max_int, max_int) in
  let i = ref 0 in
  while !i < rp.n_active do
    let v = rp.arr.(!i) in
    if is_fixed v then begin
      let last = rp.n_active - 1 in
      rp.arr.(!i) <- rp.arr.(last);
      rp.arr.(last) <- v;
      let o = rp.orig.(!i) in
      rp.orig.(!i) <- rp.orig.(last);
      rp.orig.(last) <- o;
      rp.n_active <- last
    end
    else begin
      let k = (key v, rp.orig.(!i)) in
      if k < !best_key then begin
        best_key := k;
        best := Some v
      end;
      incr i
    end
  done;
  !best

let rt_select rp =
  match rp.sel with
  | Input_order -> scan_best rp (fun _ -> 0)
  | First_fail -> scan_best rp (fun v -> Dom.size (dom v))
  | Smallest_min -> scan_best rp vmin
  | Most_constrained ->
    (* Domain size dominates; we approximate "most watchers" by
       preferring earlier creation order (models post structural
       constraints on the variables they create first). *)
    scan_best rp (fun v -> (Dom.size (dom v) * 1_000_000) + id v)
  | Custom f ->
    (* No sparse-set bookkeeping: the closure sees the original list. *)
    f (Array.to_list rp.arr |> List.filter (fun v -> not (is_fixed v)))

(* List-based selection, for callers that use heuristics outside a
   search (kept for the public API). *)
let unfixed vars = List.filter (fun v -> not (is_fixed v)) vars

let best_by score vars =
  match unfixed vars with
  | [] -> None
  | v0 :: rest ->
    Some
      (List.fold_left
         (fun best v -> if score v < score best then v else best)
         v0 rest)

let select_var sel vars =
  match sel with
  | Input_order -> List.find_opt (fun v -> not (is_fixed v)) vars
  | First_fail -> best_by (fun v -> Dom.size (dom v)) vars
  | Smallest_min -> best_by vmin vars
  | Most_constrained -> best_by (fun v -> (Dom.size (dom v) * 1_000_000) + id v) vars
  | Custom f -> f vars

(* ------------------------------------------------------------------ *)

type stats = {
  nodes : int;
  failures : int;
  solutions : int;
  propagations : int;
  time_ms : float;
  optimal : bool;
}

let zero_stats ~optimal =
  { nodes = 0; failures = 0; solutions = 0; propagations = 0; time_ms = 0.; optimal }

type 'a outcome =
  | Solution of 'a * stats
  | Best of 'a * stats
  | Unsat of stats
  | Timeout of stats

type budget = { max_nodes : int option; max_time_ms : float option }

let no_budget = { max_nodes = None; max_time_ms = None }
let node_budget n = { max_nodes = Some n; max_time_ms = None }
let time_budget ms = { max_nodes = None; max_time_ms = Some ms }
let both_budget n ms = { max_nodes = Some n; max_time_ms = Some ms }

exception Found
exception Out_of_budget

(* [all] collects every solution (up to [limit]) instead of stopping at
   the first; the store is always unwound to its entry level so callers
   can reuse it (restarts, iterated bounds).

   [bound_get]/[bound_put] connect this search to an external incumbent
   (the portfolio's shared atomic bound): the effective bound is the
   minimum of the local and external ones, and every improving solution
   is published through [bound_put]. *)
let run ?(budget = no_budget) ?(deadline = Deadline.none) ?(all = false) ?limit
    ?bound_get ?bound_put ?(tid = 0) store phases ~objective ~on_solution =
  let t0 = Unix.gettimeofday () in
  (* With a trace sink attached, also clock propagator executions so the
     per-class profile carries cumulative time. *)
  if Obs.enabled () && not (Store.timed store) then Store.set_timed store true;
  let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
  (* One absolute cancellation point: the caller's deadline and the
     local time budget compose by taking the earliest. *)
  let dl = Deadline.earliest deadline (Deadline.of_time_budget budget.max_time_ms) in
  let steps0 = Store.propagation_steps store in
  let nodes = ref 0 and failures = ref 0 and solutions = ref 0 in
  let best : 'a option ref = ref None in
  let collected : 'a list ref = ref [] in
  let bound : int option ref = ref None in
  let entry_level = Store.level store in
  let rts = List.map rt_of_phase phases in
  let rts_arr = Array.of_list rts in
  let check_budget () =
    (match budget.max_nodes with
    | Some n when !nodes >= n -> raise Out_of_budget
    | _ -> ());
    if !nodes land 63 = 0 && Deadline.expired dl then raise Out_of_budget
  in
  (* The propagation fixpoint loop polls the same deadline, so a single
     long sweep cannot blow past it (it used to be checked only between
     search nodes). *)
  let saved_poll = Store.poll_of store in
  if Deadline.is_finite dl then
    Store.set_poll store
      (Some
         (fun () ->
           if Deadline.expired dl then raise (Store.Interrupted "deadline")));
  let effective_bound () =
    let ext = match bound_get with Some get -> get () | None -> None in
    match (!bound, ext) with
    | Some a, Some b -> Some (Stdlib.min a b)
    | (Some _ as b), None | None, (Some _ as b) -> b
    | None, None -> None
  in
  let apply_bound () =
    match (objective, effective_bound ()) with
    | Some obj, Some b -> remove_above store obj (b - 1)
    | _ -> ()
  in
  let record_solution () =
    incr solutions;
    if Obs.enabled () then
      Obs.instant ~cat:"search" ~tid "solution"
        ~args:
          (( "n", Obs.I !solutions )
          ::
          (match objective with
          | Some obj -> [ ("objective", Obs.I (vmin obj)) ]
          | None -> []));
    let snap = on_solution () in
    best := Some snap;
    if all then begin
      collected := snap :: !collected;
      match limit with
      | Some l when !solutions >= l -> raise Found
      | _ ->
        (* keep enumerating by treating the solution as a failure *)
        raise (Fail "solve_all: next")
    end
    else
      match objective with
      | Some obj ->
        let v = vmin obj in
        bound := Some v;
        (match bound_put with Some put -> put v | None -> ());
        (* Continue branch & bound by treating the solution as a failure. *)
        raise (Fail "bnb: improve")
      | None -> raise Found
  in
  let rec label = function
    | [] -> record_solution ()
    | rp :: rest as rps -> (
      match rt_select rp with
      | None -> label rest
      | Some v ->
        check_budget ();
        incr nodes;
        let k = rp.value_of v in
        if Obs.enabled () then
          Obs.instant ~cat:"search" ~tid "branch"
            ~args:
              [ ("var", Obs.S (name v)); ("val", Obs.I k);
                ("node", Obs.I !nodes); ("depth", Obs.I (Store.level store)) ];
        try_branch rps (fun () -> assign store v k);
        try_branch rps (fun () -> remove_value store v k))
  and try_branch rps act =
    let saved = Array.map (fun rp -> rp.n_active) rts_arr in
    push_level store;
    (try
       apply_bound ();
       act ();
       propagate store;
       label rps
     with Fail _ ->
       incr failures;
       if Obs.enabled () then
         Obs.instant ~cat:"search" ~tid "fail"
           ~args:[ ("node", Obs.I !nodes); ("depth", Obs.I (Store.level store)) ]);
    pop_level store;
    if Obs.enabled () then
      Obs.instant ~cat:"search" ~tid "backtrack"
        ~args:[ ("depth", Obs.I (Store.level store)) ];
    Array.iteri (fun i rp -> rp.n_active <- saved.(i)) rts_arr
  in
  let stats optimal =
    {
      nodes = !nodes;
      failures = !failures;
      solutions = !solutions;
      propagations = Store.propagation_steps store - steps0;
      time_ms = elapsed_ms ();
      optimal;
    }
  in
  let unwind () =
    while Store.level store > entry_level do
      pop_level store
    done
  in
  let compute () =
    match
      propagate store;
      label rts
    with
    | () -> (
      (* Search space exhausted. *)
      match !best with
      | Some sol -> Solution (sol, stats true)
      | None -> Unsat (stats true))
    | exception Fail _ -> (
      (* Root propagation failed. *)
      match !best with
      | Some sol -> Solution (sol, stats true)
      | None -> Unsat (stats true))
    | exception Found -> (
      match !best with
      | Some sol -> Solution (sol, stats false)
      | None -> assert false)
    | exception Out_of_budget -> (
      match !best with
      | Some sol -> Best (sol, stats false)
      | None -> Timeout (stats false))
    | exception Store.Interrupted _ -> (
      (* The deadline fired inside a propagation sweep. *)
      match !best with
      | Some sol -> Best (sol, stats false)
      | None -> Timeout (stats false))
  in
  let outcome =
    (* Obs.span closes the search span even if a propagator crashes out
       of [compute] (the anytime wrapper catches that one level up). *)
    if Obs.enabled () then Obs.span ~cat:"search" ~tid "search" compute
    else compute ()
  in
  Store.set_poll store saved_poll;
  unwind ();
  (outcome, List.rev !collected)

let solve ?budget ?deadline ?tid store phases ~on_solution =
  fst (run ?budget ?deadline ?tid store phases ~objective:None ~on_solution)

let minimize ?budget ?deadline ?bound_get ?bound_put ?tid store phases
    ~objective ~on_solution =
  fst (run ?budget ?deadline ?bound_get ?bound_put ?tid store phases
         ~objective:(Some objective) ~on_solution)

let solve_all ?budget ?deadline ?limit store phases ~on_solution =
  match
    run ?budget ?deadline ~all:true ?limit store phases ~objective:None
      ~on_solution
  with
  | Solution (_, st), sols | Best (_, st), sols -> (sols, st)
  | Unsat st, _ -> ([], st)
  | Timeout st, _ -> ([], st)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby i =
  let rec go i k =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i >= 1 lsl (k - 1) then go (i - ((1 lsl (k - 1)) - 1)) (k - 1)
    else go i (k - 1)
  in
  let rec find_k k = if (1 lsl k) - 1 >= i then k else find_k (k + 1) in
  go i (find_k 1)

let minimize_restarts ?(base = 64) ?(max_restarts = 32) ?budget
    ?(deadline = Deadline.none) ?bound_get ?bound_put ?(tid = 0) store phases
    ~objective ~on_solution =
  let best = ref None in
  let total = ref (zero_stats ~optimal:false) in
  let deadline_budget run_idx =
    let node_cap = base * luby run_idx in
    match budget with
    | Some b -> { b with max_nodes = Some node_cap }
    | None -> node_budget node_cap
  in
  let merge st =
    total :=
      {
        nodes = !total.nodes + st.nodes;
        failures = !total.failures + st.failures;
        solutions = !total.solutions + st.solutions;
        propagations = !total.propagations + st.propagations;
        time_ms = !total.time_ms +. st.time_ms;
        optimal = st.optimal;
      }
  in
  let incumbent () =
    (* carry the better of the local and the external bound into the
       next restart *)
    let local = match !best with Some (_, v) -> Some v | None -> None in
    let ext = match bound_get with Some get -> get () | None -> None in
    match (local, ext) with
    | Some a, Some b -> Some (Stdlib.min a b)
    | (Some _ as b), None | None, (Some _ as b) -> b
    | None, None -> None
  in
  let rec go run_idx =
    if run_idx > max_restarts || Deadline.expired deadline then
      match !best with
      | Some (sol, _) -> Best (sol, !total)
      | None -> Timeout !total
    else begin
      push_level store;
      let ok =
        match incumbent () with
        | Some obj_val -> (
          try
            remove_above store objective (obj_val - 1);
            propagate store;
            true
          with Fail _ -> false)
        | None -> true
      in
      if not ok then begin
        pop_level store;
        match !best with
        | Some (sol, _) -> Solution (sol, { !total with optimal = true })
        | None -> Unsat { !total with optimal = true }
      end
      else begin
        if Obs.enabled () then
          Obs.instant ~cat:"search" ~tid "restart"
            ~args:[ ("run", Obs.I run_idx) ];
        let outcome =
          run ~budget:(deadline_budget run_idx) ~deadline ?bound_get ?bound_put
            ~tid store phases
            ~objective:(Some objective)
            ~on_solution:(fun () -> (on_solution (), vmin objective))
        in
        pop_level store;
        match outcome with
        | Solution ((sol, v), st), _ ->
          merge st;
          (* proven within this restart's bound: global optimum *)
          ignore v;
          Solution (sol, { !total with optimal = true })
        | Best ((sol, v), st), _ ->
          merge st;
          let better =
            match !best with Some (_, v0) -> v < v0 | None -> true
          in
          if better then best := Some (sol, v);
          go (run_idx + 1)
        | Unsat st, _ ->
          merge st;
          (match !best with
          | Some (sol, _) -> Solution (sol, { !total with optimal = true })
          | None -> Unsat { !total with optimal = true })
        | Timeout st, _ ->
          merge st;
          go (run_idx + 1)
      end
    end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Anytime interface: typed status, never raises.                      *)

type status = Optimal | Feasible_timeout | Infeasible | Crashed

let pp_status ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Feasible_timeout -> Format.pp_print_string ppf "feasible-timeout"
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Crashed -> Format.pp_print_string ppf "crashed"

type 'a anytime = {
  a_status : status;
  incumbent : 'a option;
  a_stats : stats;
  crash : string option;
}

(* Per-search work distributions, fed into the live-metrics registry
   (the caller's, or the process default when it is enabled) — the
   "how much search does a solve cost" histograms behind
   `eitc metrics-report`.  One observation per search, never inside
   the engine's hot loop. *)
let record_metrics metrics (st : stats) =
  let reg = match metrics with Some r -> r | None -> Obs.Metrics.default in
  if Obs.Metrics.is_enabled reg then begin
    let h name = Obs.Metrics.histogram reg name in
    Obs.Metrics.observe (h "search.nodes") (float_of_int st.nodes);
    Obs.Metrics.observe (h "search.propagations") (float_of_int st.propagations);
    Obs.Metrics.observe (h "search.time_ms") st.time_ms;
    Obs.Metrics.incr (Obs.Metrics.counter reg "search.runs")
  end

let minimize_anytime ?budget ?deadline ?bound_get ?bound_put ?tid ?metrics store
    phases ~objective ~on_solution =
  (* Keep the latest snapshot outside the engine so it survives a
     crash: [on_solution] already runs at every improving solution. *)
  let last = ref None in
  let snap () =
    let s = on_solution () in
    last := Some s;
    s
  in
  let a =
    match
      minimize ?budget ?deadline ?bound_get ?bound_put ?tid store phases
        ~objective ~on_solution:snap
    with
  | Solution (s, st) ->
    { a_status = Optimal; incumbent = Some s; a_stats = st; crash = None }
  | Best (s, st) ->
    { a_status = Feasible_timeout; incumbent = Some s; a_stats = st; crash = None }
  | Unsat st ->
    { a_status = Infeasible; incumbent = None; a_stats = st; crash = None }
  | Timeout st ->
    { a_status = Feasible_timeout; incumbent = None; a_stats = st; crash = None }
    | exception e ->
      (* A propagator, heuristic or snapshot crashed (or a fault was
         injected): degrade to the best incumbent found so far.  The
         store is left as-is — a crashed store is not reused. *)
      {
        a_status = Crashed;
        incumbent = !last;
        a_stats = zero_stats ~optimal:false;
        crash = Some (Printexc.to_string e);
      }
  in
  record_metrics metrics a.a_stats;
  a
