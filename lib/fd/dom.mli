(** Finite integer domains represented as sorted lists of disjoint,
    non-adjacent, inclusive intervals, with cached bounds and size.

    This is the value representation used by every finite-domain variable
    in the solver.  All operations are purely functional; the solver's
    {!Store} handles mutation and trailing on top of this module.

    {!min}, {!max} and {!size} are O(1) (cached at construction); this
    matters because they dominate the solver's propagation and
    variable-selection hot paths.

    Invariant (checked by {!check_invariant} and enforced by all
    constructors): intervals [(lo, hi)] satisfy [lo <= hi], are sorted in
    strictly increasing order, and consecutive intervals are separated by
    a gap of at least one value (i.e. [hi1 + 2 <= lo2]). *)

type t

exception Empty_domain
(** Raised by accessors ({!min}, {!max}, {!choose}) on the empty domain. *)

(** {1 Construction} *)

val empty : t
(** The domain containing no value. *)

val interval : int -> int -> t
(** [interval lo hi] is the domain [{lo, ..., hi}]; empty if [lo > hi]. *)

val singleton : int -> t
(** [singleton v] is the domain [{v}]. *)

val of_list : int list -> t
(** Domain containing exactly the listed values (duplicates allowed). *)

val of_intervals : (int * int) list -> t
(** Domain that is the union of the given (possibly overlapping,
    unsorted) inclusive intervals. *)

(** {1 Observation} *)

val is_empty : t -> bool
val is_singleton : t -> bool

val mem : int -> t -> bool

val min : t -> int
(** Smallest value, O(1). @raise Empty_domain on the empty domain. *)

val max : t -> int
(** Largest value, O(1). @raise Empty_domain on the empty domain. *)

val closest : int -> t -> int
(** [closest target d] is the member of [d] nearest to [target], ties
    resolved to the smaller value.  O(number of intervals).
    @raise Empty_domain on the empty domain. *)

val choose : t -> int
(** An arbitrary value (the minimum). @raise Empty_domain if empty. *)

val size : t -> int
(** Number of values in the domain. *)

val equal : t -> t -> bool

val is_interval : t -> bool
(** [true] iff the domain is a single contiguous interval (or empty). *)

val intervals : t -> (int * int) list
(** The underlying sorted interval list. *)

val to_list : t -> int list
(** All values in increasing order.  Linear in {!size}. *)

(** {1 Pruning operations} *)

val remove : int -> t -> t
(** Remove one value. *)

val remove_below : int -> t -> t
(** [remove_below b d] keeps values [>= b]. *)

val remove_above : int -> t -> t
(** [remove_above b d] keeps values [<= b]. *)

val remove_interval : int -> int -> t -> t
(** [remove_interval lo hi d] removes all values in [lo..hi]. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val shift : int -> t -> t
(** [shift k d] is [{v + k | v in d}]. *)

val neg : t -> t
(** [neg d] is [{-v | v in d}]. *)

(** {1 Iteration} *)

val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t

val map_monotone : (int -> int) -> t -> t
(** [map_monotone f d] is the exact image of [d] under a (non-strictly)
    monotonically increasing function.  Shift-like stretches of [f] are
    handled per-interval without enumeration. *)

(** {1 Misc} *)

val check_invariant : t -> bool
(** [true] iff the representation invariant holds (used in tests). *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. [{1..3, 7, 9..12}]. *)

val to_string : t -> string
