exception Fail of string
exception Interrupted of string

(* Wake events: which kind of domain change re-schedules a watcher.
   [On_change] is any narrowing; [On_bounds] only min/max changes (which
   includes becoming fixed); [On_fix] only the transition to a
   singleton.  Bounds-consistent propagators subscribe with [On_bounds]
   and are therefore never re-run for interior hole removals. *)
type event = On_change | On_bounds | On_fix

type var = {
  vid : int;
  vname : string;
  mutable vdom : Dom.t;
  mutable w_change : propagator list;
  mutable w_bounds : propagator list;
  mutable w_fix : propagator list;
}

and propagator = {
  pid : int;
  pname : string;
  prio : int;
  exec : t -> unit;
  mutable psubs : (event * var) list;
      (* watcher-list subscriptions, kept so entailment can detach the
         propagator and [pop_level] can re-attach it; mutable so a
         propagator can rewrite its watch set as it changes phase
         (see [resubscribe]) *)
  mutable queued : bool;
  mutable entailed : bool;
  mutable runs : int;
  mutable wakes : int;   (* false->true queued transitions *)
  mutable prunes : int;  (* domain commits made while executing *)
  mutable entails : int; (* entailment reports (≤1 per live subtree) *)
  mutable time_s : float;  (* cumulative execution time, only when timed *)
}

and trail_entry =
  | Dom_change of var * Dom.t
  | Entailment of propagator
  | Resubscription of propagator * (event * var) list
      (* previous watch set, restored on backtrack *)
  | Mark

and t = {
  mutable vars : var list;
  mutable next_vid : int;
  mutable next_pid : int;
  mutable n_props : int;
  mutable props : propagator list;
  mutable trail : trail_entry list;
  mutable depth : int;
  queues : propagator Queue.t array;  (* one FIFO bucket per priority *)
  mutable steps : int;
  consts : (int, var) Hashtbl.t;
  mutable poll : (unit -> unit) option;
      (* cancellation poll, run every [poll_period] fixpoint iterations;
         raises (e.g. [Interrupted]) to abandon the sweep *)
  mutable poll_countdown : int;
  mutable hook : (t -> string -> unit) option;
      (* instrumentation, run before every propagator execution (fault
         injection, tracing); receives the propagator's name *)
  mutable running : propagator option;
      (* the propagator currently executing, so [commit] can attribute
         prunes to it *)
  mutable timed : bool;
      (* clock every execution into [time_s]; off by default — reading
         the clock (and boxing the float) is not free on the hot path *)
  mutable generation : int;
      (* bumped by every [pop_level]: equality certifies "no backtrack
         happened in between", which incremental propagators use to
         validate caches built from monotonically narrowing domains *)
  mutable entail_on : bool;
      (* when false, [entail] is a no-op; lets tests compare fixpoints
         with and without entailment-removal *)
}

(* How many fixpoint-loop iterations pass between two cancellation
   polls.  Small enough that even one long sweep observes a deadline
   within microseconds, large enough that the clock read disappears in
   the propagation cost. *)
let poll_period = 64

(* Priority buckets: 0 = cheap arithmetic/reification, 1 = channeling and
   table-style propagators, 2 = expensive globals (Cumulative, Alldiff,
   Diff2).  Cheap propagators reach their fixpoint before any global
   re-runs, so the globals see already-tightened bounds. *)
let n_priorities = 3

let prio_arith = 0
let prio_channel = 1
let prio_global = n_priorities - 1

let create () =
  {
    vars = [];
    next_vid = 0;
    next_pid = 0;
    n_props = 0;
    props = [];
    trail = [];
    depth = 0;
    queues = Array.init n_priorities (fun _ -> Queue.create ());
    steps = 0;
    consts = Hashtbl.create 32;
    poll = None;
    poll_countdown = poll_period;
    hook = None;
    running = None;
    timed = false;
    generation = 0;
    entail_on = true;
  }

let set_poll s f = s.poll <- f
let poll_of s = s.poll
let set_hook s f = s.hook <- f
let set_timed s b = s.timed <- b
let timed s = s.timed
let generation s = s.generation
let set_entail s b = s.entail_on <- b

let var_count s = s.next_vid
let propagator_count s = s.n_props
let propagation_steps s = s.steps

let new_var ?name s dom =
  if Dom.is_empty dom then raise (Fail "new_var: empty domain");
  let vid = s.next_vid in
  s.next_vid <- vid + 1;
  let vname = match name with Some n -> n | None -> Printf.sprintf "_v%d" vid in
  let v = { vid; vname; vdom = dom; w_change = []; w_bounds = []; w_fix = [] } in
  s.vars <- v :: s.vars;
  v

let interval_var ?name s lo hi = new_var ?name s (Dom.interval lo hi)

let const s k =
  match Hashtbl.find_opt s.consts k with
  | Some v -> v
  | None ->
    let v = new_var ~name:(string_of_int k) s (Dom.singleton k) in
    Hashtbl.add s.consts k v;
    v

let name v = v.vname
let id v = v.vid
let dom v = v.vdom
let vmin v = Dom.min v.vdom
let vmax v = Dom.max v.vdom
let is_fixed v = Dom.is_singleton v.vdom

let value v =
  if is_fixed v then Dom.min v.vdom
  else invalid_arg (Printf.sprintf "Store.value: %s not fixed" v.vname)

let schedule s p =
  if (not p.queued) && not p.entailed then begin
    p.queued <- true;
    p.wakes <- p.wakes + 1;
    Queue.add p s.queues.(p.prio)
  end

(* Wake watchers according to what actually changed.  A variable that
   became fixed necessarily changed a bound, so [fixed] implies
   [bounds]. *)
let notify s v ~bounds ~fixed =
  List.iter (schedule s) v.w_change;
  if bounds then List.iter (schedule s) v.w_bounds;
  if fixed then List.iter (schedule s) v.w_fix

(* Install domain [d'] (already a subset check is the caller's concern:
   d' must be the intersection of the old domain with the update). *)
let commit s v d' =
  if Dom.is_empty d' then raise (Fail (v.vname ^ ": empty domain"));
  let old = v.vdom in
  if not (Dom.equal d' old) then begin
    (match s.running with
    | Some p -> p.prunes <- p.prunes + 1
    | None -> ());
    s.trail <- Dom_change (v, old) :: s.trail;
    v.vdom <- d';
    let bounds = Dom.min d' <> Dom.min old || Dom.max d' <> Dom.max old in
    let fixed = Dom.is_singleton d' && not (Dom.is_singleton old) in
    notify s v ~bounds ~fixed
  end

let update s v d = commit s v (Dom.inter v.vdom d)

let assign s v k = update s v (Dom.singleton k)

let remove_value s v k = commit s v (Dom.remove k v.vdom)

let remove_below s v b =
  if b > Dom.min v.vdom then commit s v (Dom.remove_below b v.vdom)

let remove_above s v b =
  if b < Dom.max v.vdom then commit s v (Dom.remove_above b v.vdom)

let attach p (event, v) =
  match event with
  | On_change -> v.w_change <- p :: v.w_change
  | On_bounds -> v.w_bounds <- p :: v.w_bounds
  | On_fix -> v.w_fix <- p :: v.w_fix

let detach p (event, v) =
  let rm l = List.filter (fun q -> q != p) l in
  match event with
  | On_change -> v.w_change <- rm v.w_change
  | On_bounds -> v.w_bounds <- rm v.w_bounds
  | On_fix -> v.w_fix <- rm v.w_fix

let post_on ?name ?(priority = prio_arith) s ~watches exec =
  let pid = s.next_pid in
  s.next_pid <- pid + 1;
  s.n_props <- s.n_props + 1;
  let pname = match name with Some n -> n | None -> Printf.sprintf "_p%d" pid in
  let priority =
    if priority < 0 then 0
    else if priority >= n_priorities then n_priorities - 1
    else priority
  in
  let p =
    { pid; pname; prio = priority; exec; psubs = watches; queued = false;
      entailed = false; runs = 0; wakes = 0; prunes = 0; entails = 0;
      time_s = 0. }
  in
  s.props <- p :: s.props;
  List.iter (attach p) watches;
  p

let post ?name ?priority ?(event = On_change) s ~watches exec =
  post_on ?name ?priority s
    ~watches:(List.map (fun v -> (event, v)) watches)
    exec

let post_now_on ?name ?priority s ~watches exec =
  let p = post_on ?name ?priority s ~watches exec in
  schedule s p;
  p

let post_now ?name ?priority ?event s ~watches exec =
  let p = post ?name ?priority ?event s ~watches exec in
  schedule s p;
  p

(* Entailment removes the propagator from every watcher list it is
   subscribed to, so it costs nothing on subsequent wakes of those
   variables.  The removal is trailed: backtracking past this point
   re-attaches the propagator (and clears the flag), so it resumes
   firing in the wider state where its constraint may prune again. *)
let entail s p =
  if s.entail_on && not p.entailed then begin
    p.entailed <- true;
    p.entails <- p.entails + 1;
    List.iter (detach p) p.psubs;
    s.trail <- Entailment p :: s.trail
  end

let entail_now s =
  match s.running with Some p -> entail s p | None -> ()

(* Phase change: replace the propagator's watch set.  A staged
   propagator starts out watching a small trigger set (say, a guard
   pair) and widens to its full watch set only once the trigger fires,
   keeping it off the watcher lists of high-traffic variables until its
   prunes can actually apply.  The rewrite is trailed so backtracking
   past the phase change restores the trigger set.  Physical equality
   of [watches] with the current set makes the call a no-op, so a
   propagator may re-assert its phase on every run with a closure-
   allocated list and pay nothing when already in that phase. *)
let resubscribe s p watches =
  if watches != p.psubs && not p.entailed then begin
    List.iter (detach p) p.psubs;
    s.trail <- Resubscription (p, p.psubs) :: s.trail;
    p.psubs <- watches;
    List.iter (attach p) watches
  end

let resubscribe_now s watches =
  match s.running with Some p -> resubscribe s p watches | None -> ()

let queue_depth_gauge s =
  Obs.counter ~cat:"store" "queue-depth"
    (List.concat
       [
         Array.to_list
           (Array.mapi
              (fun i q -> (Printf.sprintf "p%d" i, Obs.I (Queue.length q)))
              s.queues);
         [ ("steps", Obs.I s.steps); ("depth", Obs.I s.depth) ];
       ])

let propagate s =
  let rec drain () =
    (* Cancellation poll: runs while the pending propagator is still
       queued, so an abandoned sweep loses no wake-ups — a later
       [propagate] resumes exactly where this one stopped.  The same
       countdown paces the queue-depth gauge when a trace sink is
       attached. *)
    s.poll_countdown <- s.poll_countdown - 1;
    if s.poll_countdown <= 0 then begin
      s.poll_countdown <- poll_period;
      if Obs.enabled () then queue_depth_gauge s;
      match s.poll with Some f -> f () | None -> ()
    end;
    (* lowest-priority-index bucket first; restart the scan after every
       execution because cheap propagators may have been re-scheduled *)
    let rec find i =
      if i >= n_priorities then None
      else if Queue.is_empty s.queues.(i) then find (i + 1)
      else Some (Queue.pop s.queues.(i))
    in
    match find 0 with
    | None -> ()
    | Some p ->
      p.queued <- false;
      if not p.entailed then begin
        (match s.hook with Some h -> h s p.pname | None -> ());
        s.steps <- s.steps + 1;
        p.runs <- p.runs + 1;
        s.running <- Some p;
        (if s.timed then begin
           let t0 = Unix.gettimeofday () in
           match p.exec s with
           | () -> p.time_s <- p.time_s +. Unix.gettimeofday () -. t0
           | exception e ->
             p.time_s <- p.time_s +. Unix.gettimeofday () -. t0;
             s.running <- None;
             raise e
         end
         else
           match p.exec s with
           | () -> ()
           | exception e ->
             s.running <- None;
             raise e);
        s.running <- None
      end;
      drain ()
  in
  drain ()

(* Re-schedule every propagator (ignoring events): running [propagate]
   afterwards re-checks the fixpoint from scratch.  Used by tests to
   assert that event-filtered propagation reached the same fixpoint a
   full sweep would. *)
let reschedule_all s = List.iter (schedule s) s.props

let stats s =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let k = p.pname in
      Hashtbl.replace tbl k (p.runs + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    s.props;
  List.sort
    (fun (_, a) (_, b) -> compare b a)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

type profile = {
  pr_name : string;
  pr_count : int;
  pr_runs : int;
  pr_wakes : int;
  pr_prunes : int;
  pr_entails : int;
  pr_time_ms : float;
}

(* Aggregate the per-propagator instrumentation by propagator class
   (the [~name] given at [post] time), hottest first. *)
let profile s =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let acc =
        match Hashtbl.find_opt tbl p.pname with
        | Some a -> a
        | None ->
          { pr_name = p.pname; pr_count = 0; pr_runs = 0; pr_wakes = 0;
            pr_prunes = 0; pr_entails = 0; pr_time_ms = 0. }
      in
      Hashtbl.replace tbl p.pname
        {
          acc with
          pr_count = acc.pr_count + 1;
          pr_runs = acc.pr_runs + p.runs;
          pr_wakes = acc.pr_wakes + p.wakes;
          pr_prunes = acc.pr_prunes + p.prunes;
          pr_entails = acc.pr_entails + p.entails;
          pr_time_ms = acc.pr_time_ms +. (p.time_s *. 1000.);
        })
    s.props;
  List.sort
    (fun a b ->
      match compare b.pr_time_ms a.pr_time_ms with
      | 0 -> compare b.pr_runs a.pr_runs
      | c -> c)
    (Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])

let emit_profile ?(tid = 0) s =
  if Obs.enabled () then
    List.iter
      (fun p ->
        Obs.profile_row ~tid ~name:p.pr_name ~runs:p.pr_runs ~wakes:p.pr_wakes
          ~prunes:p.pr_prunes ~entails:p.pr_entails ~time_ms:p.pr_time_ms ())
      (profile s)

let push_level s =
  s.trail <- Mark :: s.trail;
  s.depth <- s.depth + 1

let pop_level s =
  (* A failed propagation can leave stale entries in the queues; they are
     harmless (propagators are monotone re-checks) but we flush them so a
     restored state starts clean. *)
  Array.iter
    (fun q ->
      Queue.iter (fun p -> p.queued <- false) q;
      Queue.clear q)
    s.queues;
  let rec unwind = function
    | [] -> failwith "Store.pop_level: no matching push_level"
    | Mark :: rest ->
      s.trail <- rest;
      s.depth <- s.depth - 1
    | Dom_change (v, d) :: rest ->
      v.vdom <- d;
      unwind rest
    | Entailment p :: rest ->
      p.entailed <- false;
      List.iter (attach p) p.psubs;
      unwind rest
    | Resubscription (p, old) :: rest ->
      (* entailment below this entry has already been unwound (trail
         order), so the propagator is attached under its current set *)
      List.iter (detach p) p.psubs;
      p.psubs <- old;
      List.iter (attach p) old;
      unwind rest
  in
  unwind s.trail;
  s.generation <- s.generation + 1

let level s = s.depth

let pp_var ppf v = Format.fprintf ppf "%s=%a" v.vname Dom.pp v.vdom
