(* Parallel portfolio search on OCaml 5 domains.

   Each strategy thunk builds its own independent store/model (stores
   are not thread-safe; sharing one across domains is unsound) and runs
   branch & bound over it.  The only shared state is one atomic
   incumbent bound: every worker publishes improving objective values
   and re-reads the global bound at each choice point, so one worker's
   solution prunes everyone else's tree (cooperative B&B).

   Under a node budget the portfolio's best bound is never worse than
   running the first strategy alone with the same budget: pruning with a
   foreign incumbent only skips subtrees that cannot contain a strictly
   better solution. *)

type 'a task = {
  store : Store.t;
  phases : Search.phase list;
  objective : Store.var;
  snapshot : unit -> 'a;
  restarts : bool;  (* run under a Luby restart policy *)
}

type 'a strategy = unit -> 'a task

(* The shared incumbent: max_int encodes "no solution yet". *)
let atomic_min cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v < cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

type 'a worker_result = {
  outcome : ('a * int) Search.outcome option;  (* None: task build failed *)
  proof : bool;      (* exhausted its search space *)
  infeasible : bool; (* model construction already failed *)
  wstats : Search.stats;
}

let run_worker incumbent budget strat =
  let bound_get () =
    let b = Atomic.get incumbent in
    if b = max_int then None else Some b
  in
  let bound_put v = atomic_min incumbent v in
  match strat () with
  | exception Store.Fail _ ->
    {
      outcome = None;
      proof = true;
      infeasible = true;
      wstats = Search.zero_stats ~optimal:true;
    }
  | task ->
    let on_solution () = (task.snapshot (), Store.vmin task.objective) in
    let outcome =
      if task.restarts then
        Search.minimize_restarts ?budget ~bound_get ~bound_put task.store
          task.phases ~objective:task.objective ~on_solution
      else
        Search.minimize ?budget ~bound_get ~bound_put task.store task.phases
          ~objective:task.objective ~on_solution
    in
    let proof, wstats =
      match outcome with
      | Search.Solution (_, st) | Search.Unsat st -> (st.Search.optimal, st)
      | Search.Best (_, st) | Search.Timeout st -> (false, st)
    in
    { outcome = Some outcome; proof; infeasible = false; wstats }

let minimize ?budget ?workers strategies =
  let strategies =
    match workers with
    | Some n when n >= 1 && n < List.length strategies ->
      List.filteri (fun i _ -> i < n) strategies
    | _ -> strategies
  in
  if strategies = [] then invalid_arg "Portfolio.minimize: no strategies";
  let t0 = Unix.gettimeofday () in
  let incumbent = Atomic.make max_int in
  let results =
    match strategies with
    | [ only ] -> [ run_worker incumbent budget only ]
    | _ ->
      let domains =
        List.map
          (fun strat -> Domain.spawn (fun () -> run_worker incumbent budget strat))
          strategies
      in
      List.map Domain.join domains
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (* Merge: nodes/failures/propagations sum across workers; time is the
     portfolio's wall clock; optimal if any worker exhausted its tree. *)
  let any_proof = List.exists (fun r -> r.proof) results in
  let all_infeasible = List.for_all (fun r -> r.infeasible) results in
  let stats =
    List.fold_left
      (fun acc r ->
        {
          acc with
          Search.nodes = acc.Search.nodes + r.wstats.Search.nodes;
          failures = acc.Search.failures + r.wstats.Search.failures;
          solutions = acc.Search.solutions + r.wstats.Search.solutions;
          propagations = acc.Search.propagations + r.wstats.Search.propagations;
        })
      { (Search.zero_stats ~optimal:any_proof) with Search.time_ms = wall_ms }
      results
  in
  let best =
    List.fold_left
      (fun acc r ->
        match r.outcome with
        | Some (Search.Solution ((snap, v), _)) | Some (Search.Best ((snap, v), _))
          -> (
          match acc with
          | Some (_, v0) when v0 <= v -> acc
          | _ -> Some (snap, v))
        | _ -> acc)
      None results
  in
  match best with
  | Some (snap, _) ->
    if any_proof then Search.Solution (snap, stats) else Search.Best (snap, stats)
  | None ->
    if any_proof || all_infeasible then Search.Unsat stats
    else Search.Timeout stats
