(* Parallel portfolio search on OCaml 5 domains.

   Each strategy thunk builds its own independent store/model (stores
   are not thread-safe; sharing one across domains is unsound) and runs
   branch & bound over it.  The only shared state is one atomic
   incumbent bound: every worker publishes improving objective values
   and re-reads the global bound at each choice point, so one worker's
   solution prunes everyone else's tree (cooperative B&B).

   Under a node budget the portfolio's best bound is never worse than
   running the first strategy alone with the same budget: pruning with a
   foreign incumbent only skips subtrees that cannot contain a strictly
   better solution.

   Robustness: a worker that dies (propagator bug, injected fault) is
   isolated — its crash is recorded, its last incumbent snapshot is
   salvaged, and the remaining workers still prove or return the
   incumbent.  Optimality is only claimed when the snapshot we hold is
   at least as good as the best bound ever published: a proof obtained
   by pruning against a crashed worker's (lost) incumbent must not
   promote a worse surviving solution to "optimal". *)

type 'a task = {
  store : Store.t;
  phases : Search.phase list;
  objective : Store.var;
  snapshot : unit -> 'a;
  restarts : bool;  (* run under a Luby restart policy *)
}

type 'a strategy = unit -> 'a task

(* The shared incumbent: max_int encodes "no solution yet". *)
let atomic_min cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v < cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

type worker_crash = { worker : int; reason : string }

type 'a result = {
  incumbent : 'a option;
  r_status : Search.status;
  r_stats : Search.stats;
  crashes : worker_crash list;
}

type 'a worker_result = {
  outcome : ('a * int) Search.outcome option;  (* None: no regular outcome *)
  salvage : ('a * int) option;  (* last incumbent of a crashed worker *)
  crash : string option;
  proof : bool;      (* exhausted its search space *)
  infeasible : bool; (* model construction already failed *)
  wstats : Search.stats;
}

let run_worker incumbent budget deadline chaos chaos_base widx strat =
  let bound_get () =
    let b = Atomic.get incumbent in
    if b = max_int then None else Some b
  in
  let bound_put v = atomic_min incumbent v in
  match strat () with
  | exception Store.Fail _ ->
    {
      outcome = None;
      salvage = None;
      crash = None;
      proof = true;
      infeasible = true;
      wstats = Search.zero_stats ~optimal:true;
    }
  | exception e ->
    (* The model builder itself crashed — not a proof of anything. *)
    {
      outcome = None;
      salvage = None;
      crash = Some (Printexc.to_string e);
      proof = false;
      infeasible = false;
      wstats = Search.zero_stats ~optimal:false;
    }
  | task ->
    (* Name this worker's trace track up front ("worker-N" instead of a
       bare tid in Perfetto and in Analyze's reports). *)
    if Obs.enabled () then
      Obs.thread_name ~cat:"search" ~tid:widx
        (Printf.sprintf "worker-%d" widx);
    (match chaos with
    | Some c -> Chaos.instrument c ~worker:(chaos_base + widx) task.store
    | None -> ());
    let last = ref None in
    let on_solution () =
      let s = (task.snapshot (), Store.vmin task.objective) in
      last := Some s;
      s
    in
    let search () =
      if task.restarts then
        Search.minimize_restarts ?budget ?deadline ~bound_get ~bound_put
          ~tid:widx task.store task.phases ~objective:task.objective
          ~on_solution
      else
        Search.minimize ?budget ?deadline ~bound_get ~bound_put ~tid:widx
          task.store task.phases ~objective:task.objective ~on_solution
    in
    (* Each worker contributes its store's per-propagator profile to the
       trace, tagged with its index, so hot-spot tables can be compared
       across strategies. *)
    let finish r =
      Store.emit_profile ~tid:widx task.store;
      r
    in
    (match search () with
    | outcome ->
      let proof, wstats =
        match outcome with
        | Search.Solution (_, st) | Search.Unsat st -> (st.Search.optimal, st)
        | Search.Best (_, st) | Search.Timeout st -> (false, st)
      in
      finish
        {
          outcome = Some outcome;
          salvage = None;
          crash = None;
          proof;
          infeasible = false;
          wstats;
        }
    | exception e ->
      (* Crashed mid-search: salvage the last incumbent snapshot.  The
         other workers are unaffected — they only share the atomic
         bound. *)
      finish
        {
          outcome = None;
          salvage = !last;
          crash = Some (Printexc.to_string e);
          proof = false;
          infeasible = false;
          wstats = Search.zero_stats ~optimal:false;
        })

let minimize_result ?budget ?deadline ?chaos ?(chaos_base = 0) ?workers
    strategies =
  let strategies =
    match workers with
    | Some n when n >= 1 && n < List.length strategies ->
      List.filteri (fun i _ -> i < n) strategies
    | _ -> strategies
  in
  if strategies = [] then invalid_arg "Portfolio.minimize: no strategies";
  let t0 = Unix.gettimeofday () in
  let incumbent = Atomic.make max_int in
  let spawn_and_join () =
    match strategies with
    | [ only ] -> [ run_worker incumbent budget deadline chaos chaos_base 0 only ]
    | _ ->
      let domains =
        List.mapi
          (fun i strat ->
            Domain.spawn (fun () ->
                (* Nothing may escape the worker function: Domain.join
                   re-raises, which would crash the whole portfolio. *)
                try run_worker incumbent budget deadline chaos chaos_base i strat
                with e ->
                  {
                    outcome = None;
                    salvage = None;
                    crash = Some (Printexc.to_string e);
                    proof = false;
                    infeasible = false;
                    wstats = Search.zero_stats ~optimal:false;
                  }))
          strategies
      in
      List.map Domain.join domains
  in
  let results =
    if Obs.enabled () then
      Obs.span ~cat:"search"
        ~args:[ ("workers", Obs.I (List.length strategies)) ]
        "portfolio" spawn_and_join
    else spawn_and_join ()
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (* Merge: nodes/failures/propagations sum across workers; time is the
     portfolio's wall clock; optimal if any worker exhausted its tree. *)
  let any_proof = List.exists (fun r -> r.proof) results in
  let all_infeasible = List.for_all (fun r -> r.infeasible) results in
  let crashes =
    List.concat
      (List.mapi
         (fun i r ->
           match r.crash with
           | Some reason -> [ { worker = i; reason } ]
           | None -> [])
         results)
  in
  let stats =
    List.fold_left
      (fun acc r ->
        {
          acc with
          Search.nodes = acc.Search.nodes + r.wstats.Search.nodes;
          failures = acc.Search.failures + r.wstats.Search.failures;
          solutions = acc.Search.solutions + r.wstats.Search.solutions;
          propagations = acc.Search.propagations + r.wstats.Search.propagations;
        })
      { (Search.zero_stats ~optimal:any_proof) with Search.time_ms = wall_ms }
      results
  in
  let best =
    List.fold_left
      (fun acc r ->
        let candidates =
          (match r.outcome with
          | Some (Search.Solution (sv, _)) | Some (Search.Best (sv, _)) -> [ sv ]
          | _ -> [])
          @ (match r.salvage with Some sv -> [ sv ] | None -> [])
        in
        List.fold_left
          (fun acc (snap, v) ->
            match acc with
            | Some (_, v0) when v0 <= v -> acc
            | _ -> Some (snap, v))
          acc candidates)
      None results
  in
  let published = Atomic.get incumbent in
  let r_status, incumbent_snap =
    match best with
    | Some (snap, v) ->
      (* A proof only makes [snap] optimal if no strictly better bound
         was ever published (a crashed worker may have found — and
         lost — a better solution the proofs pruned against). *)
      if any_proof && v <= published then (Search.Optimal, Some snap)
      else (Search.Feasible_timeout, Some snap)
    | None ->
      if crashes = [] && (any_proof || all_infeasible) then
        (Search.Infeasible, None)
      else if crashes = [] then (Search.Feasible_timeout, None)
      else (Search.Crashed, None)
  in
  { incumbent = incumbent_snap; r_status; r_stats = stats; crashes }

let minimize ?budget ?deadline ?workers strategies =
  let r = minimize_result ?budget ?deadline ?workers strategies in
  match (r.r_status, r.incumbent) with
  | Search.Optimal, Some s -> Search.Solution (s, r.r_stats)
  | (Search.Feasible_timeout | Search.Crashed), Some s ->
    Search.Best (s, r.r_stats)
  | Search.Infeasible, _ -> Search.Unsat r.r_stats
  | (Search.Optimal | Search.Feasible_timeout | Search.Crashed), None ->
    Search.Timeout r.r_stats
