(** Constraint store: finite-domain variables, trail-based state
    restoration and an event-based, prioritized propagation engine.

    A {!Store.t} owns a set of variables and propagators.  Domain updates
    go through {!update} (or the convenience wrappers below), which trail
    the old domain so that {!pop_level} can restore it, and schedule the
    watching propagators whose {!event} subscription matches the change.
    {!propagate} runs the queues to fixpoint, cheapest priority bucket
    first.

    Propagators are closures registered with {!post}; they prune domains
    and raise {!Fail} when they detect inconsistency.  A propagator that
    can prove it will never prune again may call {!entail} on itself
    (entailment is trailed, so it is undone on backtracking). *)

exception Fail of string
(** Raised when a domain becomes empty or a constraint is violated.  The
    payload names the responsible constraint (for debugging). *)

exception Interrupted of string
(** Raised by a cancellation poll (see {!set_poll}) to abandon the
    current propagation sweep cooperatively — e.g. a deadline expired.
    Unlike {!Fail} this is not a logical inconsistency: the search layer
    maps it to a timeout, not a dead branch. *)

type t
(** A constraint store. *)

type var
(** A finite-domain variable belonging to some store. *)

type propagator

(** {1 Store lifecycle} *)

val create : unit -> t

val var_count : t -> int
val propagator_count : t -> int

(** {1 Variables} *)

val new_var : ?name:string -> t -> Dom.t -> var
(** Fresh variable with the given initial domain.
    @raise Fail if the domain is empty. *)

val interval_var : ?name:string -> t -> int -> int -> var
(** [interval_var s lo hi] = [new_var s (Dom.interval lo hi)]. *)

val const : t -> int -> var
(** A variable fixed to the given value (cached per store). *)

val name : var -> string
val id : var -> int
val dom : var -> Dom.t
val vmin : var -> int
val vmax : var -> int
val is_fixed : var -> bool

val value : var -> int
(** The value of a fixed variable.
    @raise Invalid_argument if the variable is not fixed. *)

(** {1 Domain updates}

    All updates raise {!Fail} when they would empty a domain and
    otherwise trail + notify watchers.  They are no-ops when the domain
    is unchanged. *)

val update : t -> var -> Dom.t -> unit
(** Replace the domain by its intersection with the argument domain. *)

val assign : t -> var -> int -> unit
val remove_value : t -> var -> int -> unit
val remove_below : t -> var -> int -> unit
val remove_above : t -> var -> int -> unit

(** {1 Propagators} *)

type event =
  | On_change  (** wake on any domain narrowing (default) *)
  | On_bounds  (** wake only when the min or max moved (incl. fixing) *)
  | On_fix     (** wake only when the variable becomes a singleton *)
(** Wake-event taxonomy.  A bounds-consistent propagator (one whose
    pruning depends only on variable bounds) should subscribe with
    {!On_bounds}: interior hole removals then never re-run it. *)

val prio_arith : int
(** Priority 0: cheap arithmetic / reification propagators, run first. *)

val prio_channel : int
(** Priority 1: channeling, element, table-style propagators. *)

val prio_global : int
(** Highest priority index: expensive global constraints (Cumulative,
    Alldiff, Diff2), run only once the cheap queues are empty. *)

val post :
  ?name:string ->
  ?priority:int ->
  ?event:event ->
  t ->
  watches:var list ->
  (t -> unit) ->
  propagator
(** [post s ~watches f] registers propagator [f], subscribes it to every
    variable in [watches] with the given wake [event] (default
    {!On_change}) and scheduling [priority] (default {!prio_arith};
    clamped to the valid bucket range).  Running it once immediately is
    {e not} done — call {!schedule} or {!post_now} for that.  Returns the
    handle. *)

val post_now :
  ?name:string ->
  ?priority:int ->
  ?event:event ->
  t ->
  watches:var list ->
  (t -> unit) ->
  propagator
(** Like {!post} but also schedules the propagator for an immediate
    first run to establish initial consistency.
    @raise Fail on inconsistency. *)

val post_on :
  ?name:string ->
  ?priority:int ->
  t ->
  watches:(event * var) list ->
  (t -> unit) ->
  propagator
(** Like {!post} but with a per-variable wake event, so e.g. a guard
    variable can subscribe with {!On_fix} while the consequent variables
    subscribe with {!On_change}. *)

val post_now_on :
  ?name:string ->
  ?priority:int ->
  t ->
  watches:(event * var) list ->
  (t -> unit) ->
  propagator
(** {!post_on} + an immediate first run, like {!post_now}. *)

val schedule : t -> propagator -> unit
(** Put a propagator in the queue (idempotent while queued). *)

val entail : t -> propagator -> unit
(** Mark the propagator as entailed {e and detach it from every watcher
    list}: it is neither woken nor scheduled again in this subtree and
    costs nothing on subsequent domain changes of its variables.  The
    detachment is trailed — {!pop_level} past the entailment point
    re-attaches the propagator and clears the flag.  Only sound when the
    constraint is satisfied by {e every} remaining assignment of its
    variables (it can never prune nor fail again in this subtree). *)

val entail_now : t -> unit
(** [entail_now s] entails the propagator currently being executed by
    {!propagate} (no-op outside a propagator execution).  The common way
    for a propagator body to report its own entailment. *)

val resubscribe : t -> propagator -> (event * var) list -> unit
(** [resubscribe s p watches] replaces [p]'s watch set: it is detached
    from its current subscriptions and attached under [watches].  The
    rewrite is trailed — {!pop_level} past it restores the previous
    set.  A staged propagator uses this to watch only a small trigger
    set (e.g. a guard pair) and widen to its full set once the trigger
    fires, staying off the watcher lists of high-traffic variables
    while its prunes cannot apply.  Physical equality of [watches] with
    the current set is a no-op, so the propagator may re-assert its
    phase with a closure-allocated list on every run.  No-op on an
    entailed propagator. *)

val resubscribe_now : t -> (event * var) list -> unit
(** {!resubscribe} applied to the propagator currently being executed
    (no-op outside a propagator execution). *)

val set_entail : t -> bool -> unit
(** Disable ([false]) or re-enable ([true]) entailment: when disabled,
    {!entail} and {!entail_now} are no-ops.  Tests use this to check
    that the fixpoint with entailment-removal equals the one without. *)

val generation : t -> int
(** Backtrack generation: bumped by every {!pop_level}.  Two equal
    readings certify that no backtrack happened in between, i.e. all
    domains have only narrowed — the validity condition for caches kept
    by incremental propagators (Cumulative's timetable, max's support). *)

val propagate : t -> unit
(** Run the priority queues to fixpoint, cheapest bucket first.
    @raise Fail on inconsistency.
    @raise Interrupted if the store's cancellation poll does. *)

val set_poll : t -> (unit -> unit) option -> unit
(** Install (or clear) the cancellation poll: a closure run every few
    dozen fixpoint iterations {e inside} {!propagate}, so even a single
    long sweep observes a deadline.  The poll signals cancellation by
    raising {!Interrupted}; it is called at a point where no pending
    wake-up can be lost, so a store whose sweep was interrupted can
    resume propagation later. *)

val poll_of : t -> (unit -> unit) option
(** The currently installed poll (to save/restore around a search). *)

val set_hook : t -> (t -> string -> unit) option -> unit
(** Install (or clear) the execution hook: a closure run immediately
    before every propagator execution, receiving the store and the
    propagator's name.  Used for fault injection ({!Chaos}) and
    tracing.  An exception from the hook aborts the sweep like a
    crashing propagator would — the engine's recovery path, not the
    hook mechanism, is responsible for containing it. *)

val reschedule_all : t -> unit
(** Schedule every registered propagator, ignoring wake events.  A
    subsequent {!propagate} re-establishes the fixpoint from scratch;
    tests use this to verify that event filtering loses no pruning. *)

(** {1 Search support} *)

val push_level : t -> unit
(** Open a new choice point. *)

val pop_level : t -> unit
(** Undo all updates since the matching {!push_level}. *)

val level : t -> int

(** {1 Introspection} *)

val pp_var : Format.formatter -> var -> unit
val propagation_steps : t -> int
(** Number of propagator executions so far (for statistics). *)

val stats : t -> (string * int) list
(** Cumulative execution counts aggregated by propagator name, most
    executed first. *)

(** {1 Profiling}

    Wake, run and prune counters are always maintained (plain int
    increments, no observable cost); execution {e timing} is opt-in via
    {!set_timed} because clocking every propagator execution is not
    free.  The search/portfolio layers turn timing on automatically
    when an {!Obs} sink is attached. *)

type profile = {
  pr_name : string;     (** propagator class (the [?name] given to [post]) *)
  pr_count : int;       (** propagator instances of this class *)
  pr_runs : int;        (** executions *)
  pr_wakes : int;       (** queue insertions (false->queued transitions) *)
  pr_prunes : int;      (** domain changes committed while executing *)
  pr_entails : int;     (** entailment reports (watcher-list removals) *)
  pr_time_ms : float;   (** cumulative execution time; 0 unless timed *)
}

val profile : t -> profile list
(** Per-class profile, most cumulative time (then most runs) first. *)

val set_timed : t -> bool -> unit
(** Enable/disable per-execution timing (default off). *)

val timed : t -> bool

val emit_profile : ?tid:int -> t -> unit
(** Emit one {!Obs.profile_row} per propagator class (no-op when no
    sink is attached).  [tid] tags the rows with a portfolio worker
    id. *)
