open Store

let post s vars rows =
  let n = List.length vars in
  List.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Table.post: row length mismatch")
    rows;
  let arr = Array.of_list vars in
  let prop st =
    (* rows still supported by the current domains *)
    let live =
      List.filter
        (fun row ->
          let ok = ref true in
          Array.iteri (fun i v -> if not (Dom.mem v (dom arr.(i))) then ok := false) row;
          !ok)
        rows
    in
    if live = [] then raise (Fail "table: no supporting row");
    (* per position: values that appear in some live row *)
    Array.iteri
      (fun i v ->
        let support =
          Dom.of_list (List.map (fun row -> row.(i)) live)
        in
        update st v support)
      arr
  in
  ignore (post_now s ~name:"table" ~priority:prio_channel ~watches:vars prop);
  propagate s
