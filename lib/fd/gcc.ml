open Store

let post s vars cards =
  List.iter
    (fun (_, lo, hi) ->
      if lo < 0 || hi < lo then invalid_arg "Gcc.post: bad cardinality bounds")
    cards;
  let prop st =
    List.iter
      (fun (v, lo, hi) ->
        let fixed_to_v =
          List.filter (fun x -> is_fixed x && value x = v) vars
        in
        let can_take_v = List.filter (fun x -> Dom.mem v (dom x)) vars in
        let nf = List.length fixed_to_v and nc = List.length can_take_v in
        if nf > hi then raise (Fail "gcc: upper cardinality exceeded");
        if nc < lo then raise (Fail "gcc: lower cardinality unreachable");
        (* saturated above: remove v from everyone unfixed *)
        if nf = hi then
          List.iter
            (fun x -> if not (is_fixed x) then remove_value st x v)
            can_take_v;
        (* tight below: every possible taker must take it *)
        if nc = lo then
          List.iter (fun x -> update st x (Dom.singleton v)) can_take_v)
      cards
  in
  ignore (post_now s ~name:"gcc" ~priority:prio_channel ~watches:vars prop);
  propagate s
