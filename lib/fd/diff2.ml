open Store

type rect = { ox : var; oy : var; lx : var; ly : var }

let check rects =
  let overlap (x1, y1, w1, h1) (x2, y2, w2, h2) =
    w1 > 0 && h1 > 0 && w2 > 0 && h2 > 0
    && x1 < x2 + w2 && x2 < x1 + w1
    && y1 < y2 + h2 && y2 < y1 + h1
  in
  let rec go = function
    | [] -> true
    | r :: rest -> List.for_all (fun r' -> not (overlap r r')) rest && go rest
  in
  go rects

(* Must the two intervals [o1, o1+l1) and [o2, o2+l2) intersect under
   every assignment?  Requires strictly positive minimal lengths. *)
let must_overlap (o1, l1) (o2, l2) =
  vmin l1 > 0 && vmin l2 > 0
  && vmax o1 < vmin o2 + vmin l2
  && vmax o2 < vmin o1 + vmin l1

(* Enforce non-overlap of [ (oi, li) ; (oj, lj) ] in one dimension via
   constructive disjunction on bounds:

     (oi + li <= oj) \/ (oj + lj <= oi) \/ (li = 0) \/ (lj = 0)

   — a zero-length rectangle (the tests exercise them; live data never
   produces one) overlaps nothing wherever it sits.  When exactly one
   disjunct stays feasible it is enforced; with none, fail. *)
let separate st (oi, li) (oj, lj) =
  let i_before = vmin oi + vmin li <= vmax oj in
  let j_before = vmin oj + vmin lj <= vmax oi in
  let i_empty = Dom.mem 0 (dom li) in
  let j_empty = Dom.mem 0 (dom lj) in
  let feasible =
    (if i_before then 1 else 0) + (if j_before then 1 else 0)
    + (if i_empty then 1 else 0) + (if j_empty then 1 else 0)
  in
  if feasible = 0 then raise (Fail "diff2: overlap")
  else if feasible = 1 then
    if i_before then begin
      (* oi + li <= oj *)
      remove_below st oj (vmin oi + vmin li);
      remove_above st oi (vmax oj - vmin li);
      remove_above st li (vmax oj - vmin oi)
    end
    else if j_before then begin
      remove_below st oi (vmin oj + vmin lj);
      remove_above st oj (vmax oi - vmin lj);
      remove_above st lj (vmax oi - vmin oj)
    end
    else if i_empty then update st li (Dom.singleton 0)
    else update st lj (Dom.singleton 0)

let post s rects =
  let rec pairs = function
    | [] -> ()
    | r :: rest ->
      List.iter
        (fun r' ->
          let prop st =
            if must_overlap (r.ox, r.lx) (r'.ox, r'.lx) then
              separate st (r.oy, r.ly) (r'.oy, r'.ly);
            if must_overlap (r.oy, r.ly) (r'.oy, r'.ly) then
              separate st (r.ox, r.lx) (r'.ox, r'.lx)
          in
          let watches =
            [ r.ox; r.oy; r.lx; r.ly; r'.ox; r'.oy; r'.lx; r'.ly ]
          in
          ignore (post_now s ~name:"diff2" ~priority:prio_global ~event:On_bounds ~watches prop))
        rest;
      pairs rest
  in
  pairs rects;
  propagate s
