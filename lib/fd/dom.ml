(* Sorted disjoint inclusive intervals with cached bounds and size.
   Invariant on the interval list: for consecutive intervals (_, h1)
   (l2, _) we have h1 + 2 <= l2, so representations are canonical and
   interval-list equality is structural.  The record caches [min], [max]
   and [size] so the solver's hottest queries (bounds, first-fail domain
   size) are O(1) instead of walking the list. *)

type t = {
  ivs : (int * int) list;
  lo : int;  (* = min; unspecified when ivs = [] *)
  hi : int;  (* = max; unspecified when ivs = [] *)
  sz : int;  (* = number of values; 0 when ivs = [] *)
}

exception Empty_domain

let empty : t = { ivs = []; lo = 0; hi = -1; sz = 0 }

(* Rebuild the cache from a canonical interval list. *)
let mk = function
  | [] -> empty
  | (lo, _) :: _ as ivs ->
    let rec scan sz = function
      | [] -> assert false
      | [ (l, h) ] -> (sz + h - l + 1, h)
      | (l, h) :: rest -> scan (sz + h - l + 1) rest
    in
    let sz, hi = scan 0 ivs in
    { ivs; lo; hi; sz }

let interval lo hi : t =
  if lo > hi then empty else { ivs = [ (lo, hi) ]; lo; hi; sz = hi - lo + 1 }

let singleton v : t = { ivs = [ (v, v) ]; lo = v; hi = v; sz = 1 }

(* Normalize a list of intervals: sort by origin, merge overlapping or
   adjacent ones. *)
let normalize ivs =
  let ivs = List.filter (fun (lo, hi) -> lo <= hi) ivs in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) ivs in
  let rec merge = function
    | [] -> []
    | [ iv ] -> [ iv ]
    | (l1, h1) :: (l2, h2) :: rest ->
      if l2 <= h1 + 1 then merge ((l1, Stdlib.max h1 h2) :: rest)
      else (l1, h1) :: merge ((l2, h2) :: rest)
  in
  mk (merge sorted)

let of_intervals ivs = normalize ivs

let of_list vs = normalize (List.map (fun v -> (v, v)) vs)

let is_empty d = d.sz = 0

let is_singleton d = d.sz = 1

let mem v d =
  if v < d.lo || v > d.hi then false
  else
    let rec go = function
      | [] -> false
      | (lo, hi) :: rest -> if v < lo then false else v <= hi || go rest
    in
    go d.ivs

let min d = if d.sz = 0 then raise Empty_domain else d.lo

let max d = if d.sz = 0 then raise Empty_domain else d.hi

let choose = min

let size d = d.sz

let equal (a : t) (b : t) =
  a == b || (a.sz = b.sz && a.lo = b.lo && a.hi = b.hi && a.ivs = b.ivs)

let is_interval d = match d.ivs with [] | [ _ ] -> true | _ -> false

let intervals d = d.ivs

let to_list d =
  List.concat_map (fun (lo, hi) -> List.init (hi - lo + 1) (fun i -> lo + i)) d.ivs

let remove v d =
  if v < d.lo || v > d.hi then d
  else
    let rec go = function
      | [] -> []
      | ((lo, hi) as iv) :: rest ->
        if v < lo then iv :: rest
        else if v > hi then iv :: go rest
        else if lo = hi then rest
        else if v = lo then (lo + 1, hi) :: rest
        else if v = hi then (lo, hi - 1) :: rest
        else (lo, v - 1) :: (v + 1, hi) :: rest
    in
    mk (go d.ivs)

let remove_below b d =
  if b <= d.lo then d
  else
    let rec go = function
      | [] -> []
      | (lo, hi) :: rest ->
        if hi < b then go rest
        else if lo >= b then (lo, hi) :: rest
        else (b, hi) :: rest
    in
    mk (go d.ivs)

let remove_above b d =
  if b >= d.hi then d
  else
    let rec go = function
      | [] -> []
      | ((lo, hi) as iv) :: rest ->
        if lo > b then []
        else if hi <= b then iv :: go rest
        else [ (lo, b) ]
    in
    mk (go d.ivs)

let remove_interval rlo rhi d =
  let rec go rlo rhi ivs =
    if rlo > rhi then ivs
    else
      match ivs with
      | [] -> []
      | ((lo, hi) as iv) :: rest ->
        if rhi < lo then iv :: rest
        else if rlo > hi then iv :: go rlo rhi rest
        else
          let left = if lo < rlo then [ (lo, rlo - 1) ] else [] in
          let right = go rlo rhi (if rhi < hi then (rhi + 1, hi) :: rest else rest) in
          left @ right
  in
  if rlo > rhi || rhi < d.lo || rlo > d.hi then d else mk (go rlo rhi d.ivs)

let inter (a : t) (b : t) : t =
  (* Fast paths: disjoint ranges, and the ubiquitous single-interval /
     single-interval case (bounds reasoning), which needs no list walk. *)
  if a.sz = 0 || b.sz = 0 || a.hi < b.lo || b.hi < a.lo then empty
  else
    match (a.ivs, b.ivs) with
    | [ _ ], [ _ ] -> interval (Stdlib.max a.lo b.lo) (Stdlib.min a.hi b.hi)
    | _ ->
      let rec go a b =
        match (a, b) with
        | [], _ | _, [] -> []
        | (l1, h1) :: ra, (l2, h2) :: rb ->
          let lo = Stdlib.max l1 l2 and hi = Stdlib.min h1 h2 in
          let tail =
            if h1 < h2 then go ra b
            else if h2 < h1 then go a rb
            else go ra rb
          in
          if lo <= hi then (lo, hi) :: tail else tail
      in
      mk (go a.ivs b.ivs)

let union a b = normalize (a.ivs @ b.ivs)

let diff a b = List.fold_left (fun acc (lo, hi) -> remove_interval lo hi acc) a b.ivs

let shift k d =
  if d.sz = 0 then d
  else
    {
      ivs = List.map (fun (lo, hi) -> (lo + k, hi + k)) d.ivs;
      lo = d.lo + k;
      hi = d.hi + k;
      sz = d.sz;
    }

let neg d =
  if d.sz = 0 then d
  else
    {
      ivs = List.rev_map (fun (lo, hi) -> (-hi, -lo)) d.ivs;
      lo = -d.hi;
      hi = -d.lo;
      sz = d.sz;
    }

let iter f d =
  List.iter
    (fun (lo, hi) ->
      for v = lo to hi do
        f v
      done)
    d.ivs

let fold f acc d =
  List.fold_left
    (fun acc (lo, hi) ->
      let r = ref acc in
      for v = lo to hi do
        r := f !r v
      done;
      !r)
    acc d.ivs

let for_all p d =
  List.for_all
    (fun (lo, hi) ->
      let rec go v = v > hi || (p v && go (v + 1)) in
      go lo)
    d.ivs

let exists p d = not (for_all (fun v -> not (p v)) d)

(* Filter interval-wise: emit maximal runs of accepted values directly,
   without materializing the value list or re-sorting. *)
let filter p d =
  let out = ref [] in
  let emit s e = out := (s, e) :: !out in
  List.iter
    (fun (lo, hi) ->
      let run = ref lo in
      let in_run = ref false in
      for v = lo to hi do
        if p v then begin
          if not !in_run then begin
            run := v;
            in_run := true
          end
        end
        else if !in_run then begin
          emit !run (v - 1);
          in_run := false
        end
      done;
      if !in_run then emit !run hi)
    d.ivs;
  mk (List.rev !out)

(* Closest member to [target]; ties go to the smaller value.  Walks the
   interval list (O(#intervals)), never the values. *)
let closest target d =
  if d.sz = 0 then raise Empty_domain
  else begin
    let best = ref d.lo in
    let best_dist = ref (abs (d.lo - target)) in
    List.iter
      (fun (lo, hi) ->
        let cand = if target < lo then lo else if target > hi then hi else target in
        let dist = abs (cand - target) in
        if dist < !best_dist then begin
          best := cand;
          best_dist := dist
        end)
      d.ivs;
    !best
  end

(* Exact image under a monotone map.  Interval endpoints alone are not
   enough (e.g. x -> 2x tears holes into intervals), so enumerate values
   but emit interval endpoints directly when f is gap-free there. *)
let map_monotone f d =
  normalize
    (List.concat_map
       (fun (lo, hi) ->
         if f hi - f lo = hi - lo then [ (f lo, f hi) ] (* shift-like *)
         else List.init (hi - lo + 1) (fun i -> (f (lo + i), f (lo + i))))
       d.ivs)

let check_invariant d =
  let rec go = function
    | [] -> true
    | [ (lo, hi) ] -> lo <= hi
    | (l1, h1) :: ((l2, _) :: _ as rest) -> l1 <= h1 && h1 + 2 <= l2 && go rest
  in
  go d.ivs
  && (match d.ivs with
     | [] -> d.sz = 0
     | (lo, _) :: _ ->
       let cached = mk d.ivs in
       d.lo = lo && d.hi = cached.hi && d.sz = cached.sz)

let pp ppf d =
  let pp_iv ppf (lo, hi) =
    if lo = hi then Format.fprintf ppf "%d" lo
    else Format.fprintf ppf "%d..%d" lo hi
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_iv)
    d.ivs

let to_string d = Format.asprintf "%a" pp d
