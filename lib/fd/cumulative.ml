open Store

(* Feasibility check on a concrete assignment: a sweep over start/end
   events instead of a scan of every time point, O(n log n) in the task
   count and independent of the horizon.  At equal times the release
   events (negative deltas) sort first, so a task ending at [t] frees
   its capacity before one starting at [t] claims it — the same
   closed-open [s, s+d) semantics the per-time-point loop had. *)
let check ~starts ~durations ~resources ~limit =
  let n = Array.length starts in
  if n = 0 then true
  else begin
    let events = ref [] in
    for i = 0 to n - 1 do
      if durations.(i) > 0 && resources.(i) <> 0 then
        events :=
          (starts.(i), resources.(i))
          :: (starts.(i) + durations.(i), -resources.(i))
          :: !events
    done;
    let events =
      List.sort
        (fun (ta, da) (tb, db) ->
          if ta <> tb then compare ta tb else compare da db)
        !events
    in
    let ok = ref true and used = ref 0 in
    List.iter
      (fun (_, d) ->
        used := !used + d;
        if !used > limit then ok := false)
      events;
    !ok
  end

(* ------------------------------------------------------------------
   Incremental timetable filtering.

   The classic timetable propagator rebuilds the compulsory-part
   profile (sum over tasks of r_i on [lst_i, est_i + d_i)) from scratch
   on every wake and then re-filters every task.  Both are wasted work
   on most wakes: within one search node domains only narrow, so
   compulsory parts only ever *grow*, and most wakes change the part of
   at most one task.

   The state kept across wakes:
   - [gen] — the store's backtrack generation the caches were built at.
     After a backtrack (generation mismatch) domains may have widened,
     so everything is rebuilt from scratch (and the profile array is
     re-sized to the current horizon window).  Within a node the caches
     stay exact.
   - [profile] over the rebuild window, plus each task's cached
     compulsory part [c_lo, c_hi).  On a wake, only the ranges where a
     part grew (old part ⊆ new part, by monotonicity) are added to the
     profile and overload-checked: the rest of the profile was proved
     ≤ limit at the end of the previous run.
   - each task's last-seen start domain ([c_dom], compared by physical
     equality — [Dom.t] values are immutable and replaced on change).
     A task is re-filtered only if its own domain changed or a range
     some *other* task's part grew over intersects its window
     [vmin s_i, vmax s_i + d_i); otherwise its previous filtering is
     still the fixpoint (the residual profile under its window is
     unchanged), and the run skips it entirely.

   A failed run leaves the caches consistent (they are updated in
   lockstep with the profile additions), and the search backtracks on
   failure, which bumps the generation and forces the rebuild anyway. *)

let post s ~starts ~durations ~resources ~limit =
  let n = Array.length starts in
  if Array.length durations <> n || Array.length resources <> n then
    invalid_arg "Cumulative.post: length mismatch";
  Array.iter (fun d -> if d < 0 then invalid_arg "Cumulative.post: negative duration") durations;
  Array.iteri
    (fun i r ->
      if r < 0 then invalid_arg "Cumulative.post: negative resource";
      if r > limit && durations.(i) > 0 then
        invalid_arg "Cumulative.post: task exceeds resource limit")
    resources;
  if n = 0 then ()
  else begin
    let gen = ref (-1) in
    let t0 = ref 0 in
    let profile = ref [||] in
    let c_lo = Array.make n 0 and c_hi = Array.make n 0 in
    let c_dom : Dom.t option array = Array.make n None in
    let add_part i lo hi =
      let p = !profile and base = !t0 in
      for t = lo to hi - 1 do
        p.(t - base) <- p.(t - base) + resources.(i)
      done
    in
    let check_overload lo hi =
      let p = !profile and base = !t0 in
      for t = lo to hi - 1 do
        if p.(t - base) > limit then raise (Fail "cumulative: overload")
      done
    in
    (* Filter task [i] against the profile minus its own compulsory
       part: a start value v is infeasible if some t in [v, v+d) has
       residual profile + r_i > limit. *)
    let prune st i =
      let d = durations.(i) and r = resources.(i) in
      if d > 0 && r > 0 && not (is_fixed starts.(i)) then begin
        let p = !profile and base = !t0 in
        let lo_i = c_lo.(i) and hi_i = c_hi.(i) in
        let own t = if lo_i <= t && t < hi_i then r else 0 in
        let feasible v =
          let rec go t =
            t >= v + d || (p.(t - base) - own t + r <= limit && go (t + 1))
          in
          go v
        in
        update st starts.(i) (Dom.filter feasible (dom starts.(i)))
      end;
      c_dom.(i) <- Some (dom starts.(i))
    in
    let rebuild st =
      let lo =
        Array.fold_left (fun acc v -> Stdlib.min acc (vmin v)) max_int starts
      in
      let hi =
        Array.to_list (Array.mapi (fun i v -> vmax v + durations.(i)) starts)
        |> List.fold_left Stdlib.max 0
      in
      let width = hi - lo in
      t0 := lo;
      profile := if width > 0 then Array.make width 0 else [||];
      for i = 0 to n - 1 do
        c_lo.(i) <- vmax starts.(i);
        c_hi.(i) <- vmin starts.(i) + durations.(i);
        c_dom.(i) <- None;
        if c_lo.(i) < c_hi.(i) && resources.(i) > 0 then
          add_part i c_lo.(i) c_hi.(i)
      done;
      if width > 0 then check_overload lo hi;
      for i = 0 to n - 1 do
        prune st i
      done
    in
    let incremental st =
      (* pass 1: grow the cached compulsory parts and collect the dirty
         ranges (owner tagged, to exempt the owner from re-filtering) *)
      let ranges = ref [] in
      for i = 0 to n - 1 do
        let nlo = vmax starts.(i)
        and nhi = vmin starts.(i) + durations.(i) in
        let olo = c_lo.(i) and ohi = c_hi.(i) in
        if nlo <> olo || nhi <> ohi then begin
          c_lo.(i) <- nlo;
          c_hi.(i) <- nhi;
          if resources.(i) > 0 && nlo < nhi then
            if olo < ohi then begin
              (* old part non-empty: within a node it can only extend *)
              if nlo < olo then begin
                add_part i nlo olo;
                ranges := (nlo, olo, i) :: !ranges
              end;
              if ohi < nhi then begin
                add_part i ohi nhi;
                ranges := (ohi, nhi, i) :: !ranges
              end
            end
            else begin
              add_part i nlo nhi;
              ranges := (nlo, nhi, i) :: !ranges
            end
        end
      done;
      List.iter (fun (lo, hi, _) -> check_overload lo hi) !ranges;
      (* pass 2: re-filter only the tasks whose fixpoint may have moved *)
      for i = 0 to n - 1 do
        let changed =
          (match c_dom.(i) with
          | Some d -> d != dom starts.(i)
          | None -> true)
          ||
          match !ranges with
          | [] -> false
          | rs ->
            let wlo = vmin starts.(i)
            and whi = vmax starts.(i) + durations.(i) in
            List.exists
              (fun (lo, hi, owner) -> owner <> i && lo < whi && hi > wlo)
              rs
        in
        if changed then prune st i
      done
    in
    let prop st =
      let g = generation st in
      if g <> !gen then begin
        gen := g;
        rebuild st
      end
      else incremental st
    in
    ignore
      (post_now s ~name:"cumulative" ~priority:prio_arith ~event:On_bounds
         ~watches:(Array.to_list starts) prop);
    propagate s
  end

(* Variable durations: the same incremental timetable where task [i]'s
   compulsory part is [lst_i, est_i + dmin_i), and both the start and
   the duration of every task are pruned against the profile.  Duration
   domains participate in the change detection exactly like start
   domains. *)
let post_var s ~starts ~durations ~resources ~limit =
  let n = Array.length starts in
  if Array.length durations <> n || Array.length resources <> n then
    invalid_arg "Cumulative.post_var: length mismatch";
  Array.iteri
    (fun i r ->
      if r < 0 then invalid_arg "Cumulative.post_var: negative resource";
      if r > limit && vmin durations.(i) > 0 then
        invalid_arg "Cumulative.post_var: task exceeds resource limit")
    resources;
  if n > 0 then begin
    let gen = ref (-1) in
    let t0 = ref 0 in
    let profile = ref [||] in
    let c_lo = Array.make n 0 and c_hi = Array.make n 0 in
    let c_sdom : Dom.t option array = Array.make n None in
    let c_ddom : Dom.t option array = Array.make n None in
    let add_part i lo hi =
      let p = !profile and base = !t0 in
      for t = lo to hi - 1 do
        p.(t - base) <- p.(t - base) + resources.(i)
      done
    in
    let check_overload lo hi =
      let p = !profile and base = !t0 in
      for t = lo to hi - 1 do
        if p.(t - base) > limit then raise (Fail "cumulative: overload")
      done
    in
    let prune st i =
      let r = resources.(i) in
      if r > 0 && vmin durations.(i) > 0 then begin
        let p = !profile and base = !t0 in
        let lo_i = c_lo.(i) and hi_i = c_hi.(i) in
        let own t = if lo_i <= t && t < hi_i then r else 0 in
        let fits v d =
          let rec go t =
            t >= v + d || (p.(t - base) - own t + r <= limit && go (t + 1))
          in
          go v
        in
        (* prune starts against the minimal duration *)
        if not (is_fixed starts.(i)) then
          update st starts.(i)
            (Dom.filter (fun v -> fits v (vmin durations.(i))) (dom starts.(i)));
        (* prune the duration against the earliest possible start *)
        let dmax_ok =
          let v = vmin starts.(i) in
          let rec widest d =
            if d >= vmax durations.(i) then d
            else if fits v (d + 1) then widest (d + 1)
            else d
          in
          widest (vmin durations.(i))
        in
        if is_fixed starts.(i) then remove_above st durations.(i) dmax_ok
      end;
      c_sdom.(i) <- Some (dom starts.(i));
      c_ddom.(i) <- Some (dom durations.(i))
    in
    let rebuild st =
      let lo =
        Array.fold_left (fun acc v -> Stdlib.min acc (vmin v)) max_int starts
      in
      let hi =
        Array.to_list
          (Array.mapi (fun i v -> vmax v + vmax durations.(i)) starts)
        |> List.fold_left Stdlib.max 0
      in
      let width = hi - lo in
      t0 := lo;
      profile := if width > 0 then Array.make width 0 else [||];
      for i = 0 to n - 1 do
        c_lo.(i) <- vmax starts.(i);
        c_hi.(i) <- vmin starts.(i) + vmin durations.(i);
        c_sdom.(i) <- None;
        c_ddom.(i) <- None;
        if c_lo.(i) < c_hi.(i) && resources.(i) > 0 then
          add_part i c_lo.(i) c_hi.(i)
      done;
      if width > 0 then check_overload lo hi;
      for i = 0 to n - 1 do
        prune st i
      done
    in
    let incremental st =
      let ranges = ref [] in
      for i = 0 to n - 1 do
        let nlo = vmax starts.(i)
        and nhi = vmin starts.(i) + vmin durations.(i) in
        let olo = c_lo.(i) and ohi = c_hi.(i) in
        if nlo <> olo || nhi <> ohi then begin
          c_lo.(i) <- nlo;
          c_hi.(i) <- nhi;
          if resources.(i) > 0 && nlo < nhi then
            if olo < ohi then begin
              if nlo < olo then begin
                add_part i nlo olo;
                ranges := (nlo, olo, i) :: !ranges
              end;
              if ohi < nhi then begin
                add_part i ohi nhi;
                ranges := (ohi, nhi, i) :: !ranges
              end
            end
            else begin
              add_part i nlo nhi;
              ranges := (nlo, nhi, i) :: !ranges
            end
        end
      done;
      List.iter (fun (lo, hi, _) -> check_overload lo hi) !ranges;
      for i = 0 to n - 1 do
        let changed =
          (match c_sdom.(i) with
          | Some d -> d != dom starts.(i)
          | None -> true)
          || (match c_ddom.(i) with
             | Some d -> d != dom durations.(i)
             | None -> true)
          ||
          match !ranges with
          | [] -> false
          | rs ->
            let wlo = vmin starts.(i)
            and whi = vmax starts.(i) + vmax durations.(i) in
            List.exists
              (fun (lo, hi, owner) -> owner <> i && lo < whi && hi > wlo)
              rs
        in
        if changed then prune st i
      done
    in
    let prop st =
      let g = generation st in
      if g <> !gen then begin
        gen := g;
        rebuild st
      end
      else incremental st
    in
    let watches = Array.to_list starts @ Array.to_list durations in
    ignore
      (post_now s ~name:"cumulative_var" ~priority:prio_arith ~event:On_bounds
         ~watches prop);
    propagate s
  end
