open Store

let check ~starts ~durations ~resources ~limit =
  let n = Array.length starts in
  if n = 0 then true
  else begin
    let horizon =
      Array.to_list (Array.init n (fun i -> starts.(i) + durations.(i)))
      |> List.fold_left Stdlib.max 0
    in
    let lo =
      Array.to_list starts |> List.fold_left Stdlib.min max_int
    in
    let ok = ref true in
    for t = lo to horizon - 1 do
      let used = ref 0 in
      for i = 0 to n - 1 do
        if starts.(i) <= t && t < starts.(i) + durations.(i) then
          used := !used + resources.(i)
      done;
      if !used > limit then ok := false
    done;
    !ok
  end

(* Variable durations: time-table filtering where task [i]'s compulsory
   part is [lst_i, est_i + dmin_i) and, once the profile is built, both
   the start and the duration of every task are pruned against it. *)
let post_var s ~starts ~durations ~resources ~limit =
  let n = Array.length starts in
  if Array.length durations <> n || Array.length resources <> n then
    invalid_arg "Cumulative.post_var: length mismatch";
  Array.iteri
    (fun i r ->
      if r < 0 then invalid_arg "Cumulative.post_var: negative resource";
      if r > limit && vmin durations.(i) > 0 then
        invalid_arg "Cumulative.post_var: task exceeds resource limit")
    resources;
  if n > 0 then begin
    let prop st =
      let t0 =
        Array.fold_left (fun acc v -> Stdlib.min acc (vmin v)) max_int starts
      in
      let t1 =
        Array.to_list (Array.mapi (fun i v -> vmax v + vmax durations.(i)) starts)
        |> List.fold_left Stdlib.max 0
      in
      let width = t1 - t0 in
      if width > 0 then begin
        let profile = Array.make width 0 in
        let comp_lo = Array.make n 0 and comp_hi = Array.make n 0 in
        for i = 0 to n - 1 do
          let c_lo = vmax starts.(i)
          and c_hi = vmin starts.(i) + vmin durations.(i) in
          comp_lo.(i) <- c_lo;
          comp_hi.(i) <- c_hi;
          if c_lo < c_hi && resources.(i) > 0 then
            for t = c_lo to c_hi - 1 do
              profile.(t - t0) <- profile.(t - t0) + resources.(i)
            done
        done;
        Array.iter
          (fun u -> if u > limit then raise (Fail "cumulative: overload"))
          profile;
        for i = 0 to n - 1 do
          let r = resources.(i) in
          if r > 0 && vmin durations.(i) > 0 then begin
            let own t = if comp_lo.(i) <= t && t < comp_hi.(i) then r else 0 in
            let fits v d =
              let rec go t =
                t >= v + d || (profile.(t - t0) - own t + r <= limit && go (t + 1))
              in
              go v
            in
            (* prune starts against the minimal duration *)
            if not (is_fixed starts.(i)) then
              update st starts.(i)
                (Dom.filter (fun v -> fits v (vmin durations.(i))) (dom starts.(i)));
            (* prune the duration against the earliest possible start *)
            let dmax_ok =
              let v = vmin starts.(i) in
              let rec widest d =
                if d >= vmax durations.(i) then d
                else if fits v (d + 1) then widest (d + 1)
                else d
              in
              widest (vmin durations.(i))
            in
            if is_fixed starts.(i) then remove_above st durations.(i) dmax_ok
          end
        done
      end
    in
    let watches = Array.to_list starts @ Array.to_list durations in
    ignore (post_now s ~name:"cumulative_var" ~priority:prio_arith ~event:On_bounds ~watches prop);
    propagate s
  end

let post s ~starts ~durations ~resources ~limit =
  let n = Array.length starts in
  if Array.length durations <> n || Array.length resources <> n then
    invalid_arg "Cumulative.post: length mismatch";
  Array.iter (fun d -> if d < 0 then invalid_arg "Cumulative.post: negative duration") durations;
  Array.iteri
    (fun i r ->
      if r < 0 then invalid_arg "Cumulative.post: negative resource";
      if r > limit && durations.(i) > 0 then
        invalid_arg "Cumulative.post: task exceeds resource limit")
    resources;
  if n = 0 then ()
  else begin
    let prop st =
      (* Profile over [t0, t1): compulsory parts only. *)
      let t0 =
        Array.fold_left (fun acc v -> Stdlib.min acc (vmin v)) max_int starts
      in
      let t1 =
        Array.to_list (Array.mapi (fun i v -> vmax v + durations.(i)) starts)
        |> List.fold_left Stdlib.max 0
      in
      let width = t1 - t0 in
      if width > 0 then begin
        let profile = Array.make width 0 in
        let comp_lo = Array.make n 0 and comp_hi = Array.make n 0 in
        for i = 0 to n - 1 do
          let est = vmin starts.(i) and lst = vmax starts.(i) in
          let c_lo = lst and c_hi = est + durations.(i) in
          comp_lo.(i) <- c_lo;
          comp_hi.(i) <- c_hi;
          if c_lo < c_hi && resources.(i) > 0 then
            for t = c_lo to c_hi - 1 do
              profile.(t - t0) <- profile.(t - t0) + resources.(i)
            done
        done;
        (* Overload check. *)
        Array.iter (fun u -> if u > limit then raise (Fail "cumulative: overload")) profile;
        (* Prune each task against the profile minus its own compulsory
           part.  A start value v is infeasible if some t in [v, v+d)
           has residual profile + r_i > limit. *)
        for i = 0 to n - 1 do
          let d = durations.(i) and r = resources.(i) in
          if d > 0 && r > 0 && not (is_fixed starts.(i)) then begin
            let own t =
              if comp_lo.(i) <= t && t < comp_hi.(i) then r else 0
            in
            let feasible v =
              let rec go t =
                t >= v + d
                || (profile.(t - t0) - own t + r <= limit && go (t + 1))
              in
              go v
            in
            let pruned = Dom.filter feasible (dom starts.(i)) in
            update st starts.(i) pruned
          end
        done
      end
    in
    ignore
      (post_now s ~name:"cumulative" ~priority:prio_arith ~event:On_bounds ~watches:(Array.to_list starts) prop);
    propagate s
  end
