open Store

let bool_var ?name s = new_var ?name s (Dom.interval 0 1)

let is_true b = is_fixed b && value b = 1
let is_false b = is_fixed b && value b = 0

let leq_iff s x y b =
  let prop st =
    (* relation -> boolean.  Once the relation is decided by bounds it
       stays decided (bounds only tighten), so both branches entail. *)
    if vmax x <= vmin y then begin
      update st b (Dom.singleton 1);
      entail_now st
    end
    else if vmin x > vmax y then begin
      update st b (Dom.singleton 0);
      entail_now st
    end
    (* boolean -> relation *)
    else if is_true b then begin
      remove_above st x (vmax y);
      remove_below st y (vmin x);
      if vmax x <= vmin y then entail_now st
    end
    else if is_false b then begin
      (* x > y *)
      remove_below st x (vmin y + 1);
      remove_above st y (vmax x - 1);
      if vmin x > vmax y then entail_now st
    end
  in
  ignore (post_now s ~name:"leq_iff" ~event:On_bounds ~watches:[ x; y; b ] prop);
  propagate s

let eq_iff s x y b =
  let prop st =
    if is_fixed x && is_fixed y then begin
      update st b (Dom.singleton (if value x = value y then 1 else 0));
      entail_now st
    end
    else if Dom.is_empty (Dom.inter (dom x) (dom y)) then begin
      update st b (Dom.singleton 0);
      entail_now st
    end
    else if is_true b then begin
      let joint = Dom.inter (dom x) (dom y) in
      update st x joint;
      update st y joint;
      if Dom.is_singleton joint then entail_now st
    end
    else if is_false b then begin
      (* the removal below makes the domains disjoint: entailed *)
      if is_fixed x then begin
        remove_value st y (value x);
        entail_now st
      end
      else if is_fixed y then begin
        remove_value st x (value y);
        entail_now st
      end
    end
  in
  ignore (post_now s ~name:"eq_iff" ~watches:[ x; y; b ] prop);
  propagate s

let eq_const_iff s x k b =
  let prop st =
    if not (Dom.mem k (dom x)) then begin
      update st b (Dom.singleton 0);
      entail_now st
    end
    else if is_fixed x then begin
      (* fixed and k is in the domain: x = k *)
      update st b (Dom.singleton 1);
      entail_now st
    end
    else if is_true b then begin
      update st x (Dom.singleton k);
      entail_now st
    end
    else if is_false b then begin
      remove_value st x k;
      entail_now st
    end
  in
  ignore (post_now s ~name:"eq_const_iff" ~watches:[ x; b ] prop);
  propagate s

let conj s bs b =
  let prop st =
    if List.exists is_false bs then begin
      update st b (Dom.singleton 0);
      entail_now st
    end
    else if List.for_all is_true bs then begin
      update st b (Dom.singleton 1);
      entail_now st
    end
    else if is_true b then begin
      List.iter (fun x -> update st x (Dom.singleton 1)) bs;
      entail_now st
    end
    else if is_false b then begin
      (* if all but one are true, the last must be false *)
      match List.filter (fun x -> not (is_true x)) bs with
      | [ last ] ->
        update st last (Dom.singleton 0);
        entail_now st
      | _ -> ()
    end
  in
  ignore (post_now s ~name:"conj" ~event:On_fix ~watches:(b :: bs) prop);
  propagate s

let disj s bs b =
  let prop st =
    if List.exists is_true bs then begin
      update st b (Dom.singleton 1);
      entail_now st
    end
    else if List.for_all is_false bs then begin
      update st b (Dom.singleton 0);
      entail_now st
    end
    else if is_false b then begin
      List.iter (fun x -> update st x (Dom.singleton 0)) bs;
      entail_now st
    end
    else if is_true b then begin
      match List.filter (fun x -> not (is_false x)) bs with
      | [ last ] ->
        update st last (Dom.singleton 1);
        entail_now st
      | _ -> ()
    end
  in
  ignore (post_now s ~name:"disj" ~event:On_fix ~watches:(b :: bs) prop);
  propagate s

let negation s a b =
  Arith.linear_eq s [ (1, a); (1, b) ] 1

let bool_sum s bs total = Arith.sum s bs total
