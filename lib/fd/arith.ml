open Store

let leq_offset s x c y =
  let prop st =
    (* x + c <= y *)
    remove_below st y (vmin x + c);
    remove_above st x (vmax y - c);
    if vmax x + c <= vmin y then entail_now st
  in
  ignore (post_now s ~name:"leq_offset" ~event:On_bounds ~watches:[ x; y ] prop);
  propagate s

let leq s x y = leq_offset s x 0 y
let lt s x y = leq_offset s x 1 y

let eq_offset s x c y =
  let prop st =
    update st y (Dom.shift c (dom x));
    update st x (Dom.shift (-c) (dom y));
    (* both domains are now equal (mod the shift), so one fixed side
       fixes the other: the equality can never prune again *)
    if is_fixed x then entail_now st
  in
  ignore (post_now s ~name:"eq_offset" ~watches:[ x; y ] prop);
  propagate s

let eq s x y = eq_offset s x 0 y

let neq_offset s x c y =
  let prop st =
    if is_fixed x then begin
      remove_value st y (value x + c);
      entail_now st
    end
    else if is_fixed y then begin
      remove_value st x (value y - c);
      entail_now st
    end
    else if vmax x + c < vmin y || vmin x + c > vmax y then
      (* bounds already force the disequality *)
      entail_now st
  in
  ignore (post_now s ~name:"neq_offset" ~event:On_fix ~watches:[ x; y ] prop);
  propagate s

let neq s x y = neq_offset s x 0 y

let plus s x y z =
  let prop st =
    (* z = x + y: bounds in all three directions *)
    remove_below st z (vmin x + vmin y);
    remove_above st z (vmax x + vmax y);
    remove_below st x (vmin z - vmax y);
    remove_above st x (vmax z - vmin y);
    remove_below st y (vmin z - vmax x);
    remove_above st y (vmax z - vmin x);
    (* the value check is not redundant: with aliased arguments (e.g.
       z = x + z) the bounds reads above can be stale mid-run, leaving
       all three fixed at values that still violate the equation — the
       next self-wake then fails, so we must keep watching *)
    if is_fixed x && is_fixed y && is_fixed z && value z = value x + value y
    then entail_now st
  in
  ignore (post_now s ~name:"plus" ~event:On_bounds ~watches:[ x; y; z ] prop);
  propagate s

(* m = max(xs), incremental.  Two of the four filtering rules only fire
   when a particular bound moved, and both skips are validated by the
   store's backtrack generation (within one search node domains only
   narrow, so a cached bound that did not move certifies the whole
   cached quantity):

   - ub(m) <= max_i ub(x_i) is re-derived only when the ub of the
     cached argmax (the "support") dropped — no other ub can have risen
     above it, so while the support's ub is unchanged the cached max
     and the cap installed from it both still stand;
   - the caps ub(x_i) <= ub(m) are re-applied only when ub(m) dropped
     since the previous run — otherwise each x_i is already below the
     installed cap.

   The lb rules stay O(n) per run: they are two int scans with no
   allocation, and their inputs (the lbs) have no single support. *)
let max_of s xs m =
  if xs = [] then invalid_arg "Arith.max_of: empty list";
  let xs = Array.of_list xs in
  let n = Array.length xs in
  let sup = ref 0 in          (* index of the argmax-ub support *)
  let c_gen = ref (-1) in     (* generation the caches were built at *)
  let c_ub = ref max_int in   (* max_i ub(x_i) at the last rescan *)
  let c_mhi = ref max_int in  (* ub(m) after the previous run *)
  let prop st =
    let gen = generation st in
    let fresh = gen <> !c_gen in
    c_gen := gen;
    (* rule 1: ub(m) <= max_i ub(x_i), support-watched *)
    if fresh || vmax xs.(!sup) < !c_ub then begin
      let best = ref 0 and ub = ref min_int in
      for i = 0 to n - 1 do
        let hi = vmax xs.(i) in
        if hi > !ub then begin
          ub := hi;
          best := i
        end
      done;
      sup := !best;
      c_ub := !ub;
      remove_above st m !ub
    end;
    (* rule 2: lb(m) >= max_i lb(x_i) *)
    let lb = ref min_int in
    for i = 0 to n - 1 do
      let lo = vmin xs.(i) in
      if lo > !lb then lb := lo
    done;
    remove_below st m !lb;
    (* rule 3: every x_i <= ub(m), re-applied only when ub(m) dropped *)
    let mhi = vmax m in
    if fresh || mhi < !c_mhi then
      for i = 0 to n - 1 do
        if vmax xs.(i) > mhi then remove_above st xs.(i) mhi
      done;
    c_mhi := mhi;
    (* rule 4: if only one variable can realize the maximum, it must *)
    let mlo = vmin m in
    let ncand = ref 0 and cand = ref (-1) in
    for i = 0 to n - 1 do
      if vmax xs.(i) >= mlo then begin
        incr ncand;
        cand := i
      end
    done;
    if !ncand = 1 then remove_below st xs.(!cand) mlo;
    (* entailed once the maximum is decided: m is fixed, every x_i is
       capped at its value (rule 3 invariant) and some x_i is pinned
       there *)
    if is_fixed m then begin
      let v = vmin m in
      let ok = ref false in
      for i = 0 to n - 1 do
        if vmin xs.(i) >= v then ok := true
      done;
      if !ok then entail_now st
    end
  in
  ignore
    (post_now s ~name:"max_of" ~event:On_bounds ~watches:(m :: Array.to_list xs)
       prop);
  propagate s

let min_of s xs m =
  if xs = [] then invalid_arg "Arith.min_of: empty list";
  let prop st =
    let lb = List.fold_left (fun acc x -> Stdlib.min acc (vmin x)) max_int xs in
    let ub = List.fold_left (fun acc x -> Stdlib.min acc (vmax x)) max_int xs in
    remove_below st m lb;
    remove_above st m ub;
    List.iter (fun x -> remove_below st x (vmin m)) xs;
    let candidates = List.filter (fun x -> vmin x <= vmax m) xs in
    match candidates with
    | [ x ] -> remove_above st x (vmax m)
    | _ -> ()
  in
  ignore (post_now s ~name:"min_of" ~event:On_bounds ~watches:(m :: xs) prop);
  propagate s

let mul_const s c x y =
  if c = 0 then begin
    let prop st =
      assign st y 0;
      entail_now st
    in
    ignore (post_now s ~name:"mul_const0" ~watches:[ y ] prop)
  end
  else begin
    let prop st =
      let dy = if c > 0 then Dom.map_monotone (fun v -> c * v) (dom x)
               else Dom.neg (Dom.map_monotone (fun v -> -c * v) (dom x)) in
      update st y dy;
      let dx =
        Dom.filter (fun v -> v mod c = 0)
          (if c > 0 then dom y else Dom.neg (dom y))
      in
      let dx = Dom.map_monotone (fun v -> v / abs c) dx in
      update st x dx;
      (* y = c*x with c <> 0 is a bijection, so one fixed side fixes the
         other in the updates above *)
      if is_fixed x then entail_now st
    in
    ignore (post_now s ~name:"mul_const" ~watches:[ x; y ] prop)
  end;
  propagate s

(* Floor division towards negative infinity, matching slot/bank geometry
   where all values are non-negative anyway. *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let div_const s x c q =
  if c <= 0 then invalid_arg "Arith.div_const: divisor must be positive";
  let prop st =
    update st q (Dom.map_monotone (fun v -> fdiv v c) (dom x));
    (* supported x values: those whose quotient is still in dom q *)
    let dq = dom q in
    let dx =
      Dom.of_intervals
        (List.map (fun (lo, hi) -> (lo * c, (hi * c) + c - 1)) (Dom.intervals dq))
    in
    update st x dx;
    if is_fixed x then entail_now st
  in
  ignore (post_now s ~name:"div_const" ~watches:[ x; q ] prop);
  propagate s

let mod_const s x c r =
  if c <= 0 then invalid_arg "Arith.mod_const: modulus must be positive";
  let prop st =
    if Dom.min (dom x) < 0 then raise (Fail "mod_const: negative operand");
    let dr = Dom.of_list (Dom.fold (fun acc v -> (v mod c) :: acc) [] (dom x)) in
    update st r dr;
    let drr = dom r in
    let dx = Dom.filter (fun v -> Dom.mem (v mod c) drr) (dom x) in
    update st x dx;
    if is_fixed x then entail_now st
  in
  ignore (post_now s ~name:"mod_const" ~watches:[ x; r ] prop);
  propagate s

let linear_bounds terms =
  List.fold_left
    (fun (lo, hi) (c, x) ->
      if c >= 0 then (lo + (c * vmin x), hi + (c * vmax x))
      else (lo + (c * vmax x), hi + (c * vmin x)))
    (0, 0) terms

let linear_leq s terms k =
  let prop st =
    let lo, hi = linear_bounds terms in
    if lo > k then raise (Fail "linear_leq");
    if hi <= k then entail_now st;
    List.iter
      (fun (c, x) ->
        if c > 0 then begin
          let rest_lo = lo - (c * vmin x) in
          remove_above st x (fdiv (k - rest_lo) c)
        end
        else if c < 0 then begin
          let rest_lo = lo - (c * vmax x) in
          (* c*x <= bound with c < 0  =>  x >= bound / c rounded up,
             i.e. x >= -floor(bound / -c). *)
          let bound = k - rest_lo in
          remove_below st x (-fdiv bound (-c))
        end)
      terms
  in
  let watches = List.map snd terms in
  ignore (post_now s ~name:"linear_leq" ~event:On_bounds ~watches prop);
  propagate s

let linear_eq s terms k =
  linear_leq s terms k;
  linear_leq s (List.map (fun (c, x) -> (-c, x)) terms) (-k)

let sum s xs total =
  linear_eq s ((-1, total) :: List.map (fun x -> (1, x)) xs) 0

let all_different s xs =
  let rec pairs = function
    | [] -> ()
    | x :: rest ->
      List.iter (fun y -> neq s x y) rest;
      pairs rest
  in
  pairs xs
