open Store

let leq_offset s x c y =
  let prop st =
    (* x + c <= y *)
    remove_below st y (vmin x + c);
    remove_above st x (vmax y - c)
  in
  ignore (post_now s ~name:"leq_offset" ~event:On_bounds ~watches:[ x; y ] prop);
  propagate s

let leq s x y = leq_offset s x 0 y
let lt s x y = leq_offset s x 1 y

let eq_offset s x c y =
  let prop st =
    update st y (Dom.shift c (dom x));
    update st x (Dom.shift (-c) (dom y))
  in
  ignore (post_now s ~name:"eq_offset" ~watches:[ x; y ] prop);
  propagate s

let eq s x y = eq_offset s x 0 y

let neq_offset s x c y =
  let prop st =
    if is_fixed x then remove_value st y (value x + c)
    else if is_fixed y then remove_value st x (value y - c)
  in
  ignore (post_now s ~name:"neq_offset" ~event:On_fix ~watches:[ x; y ] prop);
  propagate s

let neq s x y = neq_offset s x 0 y

let plus s x y z =
  let prop st =
    (* z = x + y: bounds in all three directions *)
    remove_below st z (vmin x + vmin y);
    remove_above st z (vmax x + vmax y);
    remove_below st x (vmin z - vmax y);
    remove_above st x (vmax z - vmin y);
    remove_below st y (vmin z - vmax x);
    remove_above st y (vmax z - vmin x)
  in
  ignore (post_now s ~name:"plus" ~event:On_bounds ~watches:[ x; y; z ] prop);
  propagate s

let max_of s xs m =
  if xs = [] then invalid_arg "Arith.max_of: empty list";
  let prop st =
    let ub = List.fold_left (fun acc x -> Stdlib.max acc (vmax x)) min_int xs in
    let lb = List.fold_left (fun acc x -> Stdlib.max acc (vmin x)) min_int xs in
    remove_above st m ub;
    remove_below st m lb;
    List.iter (fun x -> remove_above st x (vmax m)) xs;
    (* If only one variable can realize the maximum, it must. *)
    let candidates = List.filter (fun x -> vmax x >= vmin m) xs in
    match candidates with
    | [ x ] -> remove_below st x (vmin m)
    | _ -> ()
  in
  ignore (post_now s ~name:"max_of" ~event:On_bounds ~watches:(m :: xs) prop);
  propagate s

let min_of s xs m =
  if xs = [] then invalid_arg "Arith.min_of: empty list";
  let prop st =
    let lb = List.fold_left (fun acc x -> Stdlib.min acc (vmin x)) max_int xs in
    let ub = List.fold_left (fun acc x -> Stdlib.min acc (vmax x)) max_int xs in
    remove_below st m lb;
    remove_above st m ub;
    List.iter (fun x -> remove_below st x (vmin m)) xs;
    let candidates = List.filter (fun x -> vmin x <= vmax m) xs in
    match candidates with
    | [ x ] -> remove_above st x (vmax m)
    | _ -> ()
  in
  ignore (post_now s ~name:"min_of" ~event:On_bounds ~watches:(m :: xs) prop);
  propagate s

let mul_const s c x y =
  if c = 0 then begin
    let prop st = assign st y 0 in
    ignore (post_now s ~name:"mul_const0" ~watches:[ y ] prop)
  end
  else begin
    let prop st =
      let dy = if c > 0 then Dom.map_monotone (fun v -> c * v) (dom x)
               else Dom.neg (Dom.map_monotone (fun v -> -c * v) (dom x)) in
      update st y dy;
      let dx =
        Dom.filter (fun v -> v mod c = 0)
          (if c > 0 then dom y else Dom.neg (dom y))
      in
      let dx = Dom.map_monotone (fun v -> v / abs c) dx in
      update st x dx
    in
    ignore (post_now s ~name:"mul_const" ~watches:[ x; y ] prop)
  end;
  propagate s

(* Floor division towards negative infinity, matching slot/bank geometry
   where all values are non-negative anyway. *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let div_const s x c q =
  if c <= 0 then invalid_arg "Arith.div_const: divisor must be positive";
  let prop st =
    update st q (Dom.map_monotone (fun v -> fdiv v c) (dom x));
    (* supported x values: those whose quotient is still in dom q *)
    let dq = dom q in
    let dx =
      Dom.of_intervals
        (List.map (fun (lo, hi) -> (lo * c, (hi * c) + c - 1)) (Dom.intervals dq))
    in
    update st x dx
  in
  ignore (post_now s ~name:"div_const" ~watches:[ x; q ] prop);
  propagate s

let mod_const s x c r =
  if c <= 0 then invalid_arg "Arith.mod_const: modulus must be positive";
  let prop st =
    if Dom.min (dom x) < 0 then raise (Fail "mod_const: negative operand");
    let dr = Dom.of_list (Dom.fold (fun acc v -> (v mod c) :: acc) [] (dom x)) in
    update st r dr;
    let drr = dom r in
    let dx = Dom.filter (fun v -> Dom.mem (v mod c) drr) (dom x) in
    update st x dx
  in
  ignore (post_now s ~name:"mod_const" ~watches:[ x; r ] prop);
  propagate s

let linear_bounds terms =
  List.fold_left
    (fun (lo, hi) (c, x) ->
      if c >= 0 then (lo + (c * vmin x), hi + (c * vmax x))
      else (lo + (c * vmax x), hi + (c * vmin x)))
    (0, 0) terms

let linear_leq s terms k =
  let prop st =
    let lo, _ = linear_bounds terms in
    if lo > k then raise (Fail "linear_leq");
    List.iter
      (fun (c, x) ->
        if c > 0 then begin
          let rest_lo = lo - (c * vmin x) in
          remove_above st x (fdiv (k - rest_lo) c)
        end
        else if c < 0 then begin
          let rest_lo = lo - (c * vmax x) in
          (* c*x <= bound with c < 0  =>  x >= bound / c rounded up,
             i.e. x >= -floor(bound / -c). *)
          let bound = k - rest_lo in
          remove_below st x (-fdiv bound (-c))
        end)
      terms
  in
  let watches = List.map snd terms in
  ignore (post_now s ~name:"linear_leq" ~event:On_bounds ~watches prop);
  propagate s

let linear_eq s terms k =
  linear_leq s terms k;
  linear_leq s (List.map (fun (c, x) -> (-c, x)) terms) (-k)

let sum s xs total =
  linear_eq s ((-1, total) :: List.map (fun x -> (1, x)) xs) 0

let all_different s xs =
  let rec pairs = function
    | [] -> ()
    | x :: rest ->
      List.iter (fun y -> neq s x y) rest;
      pairs rest
  in
  pairs xs
