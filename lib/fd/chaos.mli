(** Fault injection for the solver — a seeded chaos harness.

    Chaos instruments a store's propagation engine (via
    {!Store.set_hook}) to inject three fault classes under a seeded
    RNG, reproducibly:

    - {b crashes}: a propagator execution raises {!Injected} instead of
      running — the non-[Fail] exception a buggy propagator or a dying
      worker would produce;
    - {b artificial delays}: an execution blocks for a configurable
      time, simulating scheduling jitter / an overloaded core;
    - {b spurious wakes}: every propagator is re-scheduled for no
      reason, checking that fixpoints are insensitive to over-waking.

    On top of the probabilistic faults, [kill_workers] deterministically
    kills named portfolio workers after a fixed number of propagator
    executions — the reproducible "worker dies mid-search" scenario the
    recovery tests need.

    A single [t] may instrument several stores concurrently (the
    portfolio instruments one per worker domain); the fault log is
    mutex-protected and each instrumentation derives an independent RNG
    from [(seed, worker)], so injected faults do not depend on domain
    interleaving. *)

exception Injected of string
(** The injected crash.  Deliberately {e not} {!Store.Fail}: the engine
    must treat it as a failure of the machinery, never as a proof that a
    branch is dead. *)

type t

type fault = {
  worker : int;    (** which instrumentation site (portfolio worker id,
                       0 for a sequential solve) *)
  what : string;   (** human-readable description of the injected fault *)
}

val create :
  ?crash_prob:float ->
  ?delay_prob:float ->
  ?delay_ms:float ->
  ?spurious_prob:float ->
  ?kill_workers:int list ->
  ?kill_after:int ->
  seed:int ->
  unit ->
  t
(** Per-propagator-execution fault probabilities (all default [0.]);
    [delay_ms] (default [0.2]) is the length of one injected delay;
    [kill_workers] (default none) are killed after [kill_after]
    (default [50]) propagator executions. *)

val instrument : t -> worker:int -> Store.t -> unit
(** Install the fault-injection hook on a store.  Faults drawn for this
    store are logged under [worker] and derived from an RNG seeded by
    [(seed, worker)]. *)

val faults : t -> fault list
(** Every fault injected so far, oldest first.  Thread-safe. *)

val pp_fault : Format.formatter -> fault -> unit
