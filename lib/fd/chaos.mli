(** Fault injection for the solver — a seeded chaos harness.

    Chaos instruments a store's propagation engine (via
    {!Store.set_hook}) to inject faults under a seeded RNG,
    reproducibly:

    - {b crashes}: a propagator execution raises {!Injected} instead of
      running — the non-[Fail] exception a buggy propagator or a dying
      worker would produce;
    - {b artificial delays}: an execution blocks for a configurable
      time, simulating scheduling jitter / an overloaded core;
    - {b spurious wakes}: every propagator is re-scheduled for no
      reason, checking that fixpoints are insensitive to over-waking.

    On top of the probabilistic faults, three deterministic fault kinds
    exercise the supervision machinery:

    - [kill_workers] kills named workers after a fixed number of
      propagator executions — the reproducible "worker dies mid-search"
      scenario;
    - [wedge_workers] wedges named workers: the propagator {e spins}
      inside one execution, reaching no cooperative poll site, until
      the configured escape predicate fires (see {!with_escape}; a
      serving layer points it at the request's cancellation switch) or
      the [wedge_max_ms] ceiling elapses — then unwinds with
      {!Injected}.  This is the fault a progress watchdog exists for;
    - [fail_solves] poisons the Nth instrumented solve ({!instrument}
      call, counted across the instance): it raises on its first
      propagator execution, the "attempt dies at birth" fault that
      retry-with-backoff must survive.  A named wedge site outranks
      the poison when both land on the same execution — the counter is
      global and scheduling-dependent, the wedge list is explicit.

    A single [t] may instrument several stores concurrently (the
    portfolio instruments one per worker domain); the fault log is
    mutex-protected and each instrumentation derives an independent RNG
    from [(seed, worker)], so injected faults do not depend on domain
    interleaving. *)

exception Injected of string
(** The injected crash.  Deliberately {e not} {!Store.Fail}: the engine
    must treat it as a failure of the machinery, never as a proof that a
    branch is dead. *)

type t

type fault = {
  worker : int;    (** which instrumentation site (portfolio worker id,
                       0 for a sequential solve) *)
  what : string;   (** human-readable description of the injected fault *)
}

val create :
  ?crash_prob:float ->
  ?delay_prob:float ->
  ?delay_ms:float ->
  ?spurious_prob:float ->
  ?kill_workers:int list ->
  ?kill_after:int ->
  ?wedge_workers:int list ->
  ?wedge_after:int ->
  ?wedge_max_ms:float ->
  ?fail_solves:int list ->
  seed:int ->
  unit ->
  t
(** Per-propagator-execution fault probabilities (all default [0.]);
    [delay_ms] (default [0.2]) is the length of one injected delay;
    [kill_workers] (default none) are killed after [kill_after]
    (default [50]) propagator executions; [wedge_workers] (default
    none) wedge at execution [wedge_after] (default [25]) and spin for
    at most [wedge_max_ms] (default [10_000.]); [fail_solves] (default
    none) are 1-based solve-attempt indices that raise immediately. *)

val with_escape : t -> (unit -> bool) -> t
(** A shallow copy whose wedge loops poll the given escape predicate
    (default: never).  The fault log, lock and solve counter are shared
    with the original, so per-request escapes still produce one global
    fault history.  The predicate runs on the wedged domain and must
    not itself poll a switched {!Deadline.t} (that would stamp the
    heartbeat the watchdog is watching); use {!Deadline.cancelled}. *)

val instrument : t -> worker:int -> Store.t -> unit
(** Install the fault-injection hook on a store.  Faults drawn for this
    store are logged under [worker] and derived from an RNG seeded by
    [(seed, worker)].  Each call counts as one solve attempt for
    [fail_solves]. *)

val faults : t -> fault list
(** Every fault injected so far, oldest first.  Thread-safe. *)

val pp_fault : Format.formatter -> fault -> unit
