open Store

let disjoint a b = Dom.is_empty (Dom.inter (dom a) (dom b))

(* Core of [p = q ==> l = m]; shared with the guarded variant.  Returns
   [true] when the implication is entailed (safe to stop watching). *)
let implication_step st (p, q) (l, m) =
  if disjoint p q then true
  else if is_fixed p && is_fixed q && value p = value q then begin
    let joint = Dom.inter (dom l) (dom m) in
    update st l joint;
    update st m joint;
    false
  end
  else if disjoint l m then begin
    (* Contrapositive: lines can never be equal, so pages must differ. *)
    if is_fixed p then remove_value st q (value p)
    else if is_fixed q then remove_value st p (value q);
    false
  end
  else false

let implies_eq s (p, q) (l, m) =
  let handle = ref None in
  let prop st =
    if implication_step st (p, q) (l, m) then
      match !handle with Some h -> entail st h | None -> ()
  in
  let h = post_now s ~name:"implies_eq" ~priority:prio_channel ~watches:[ p; q; l; m ] prop in
  handle := Some h;
  propagate s

let guarded_implies_eq s ~guard:(a, b) (p, q) (l, m) =
  let handle = ref None in
  let prop st =
    let done_ =
      if disjoint a b then true
      else if is_fixed a && is_fixed b && value a = value b then
        implication_step st (p, q) (l, m)
      else false
    in
    if done_ then
      match !handle with Some h -> entail st h | None -> ()
  in
  let h =
    post_now s ~name:"guarded_implies_eq" ~priority:prio_channel ~watches:[ a; b; p; q; l; m ] prop
  in
  handle := Some h;
  propagate s

let same_guard_neq s ~guard:(a, b) x y =
  let handle = ref None in
  let prop st =
    if disjoint a b then
      (match !handle with Some h -> entail st h | None -> ())
    else if is_fixed a && is_fixed b && value a = value b then begin
      if is_fixed x then remove_value st y (value x)
      else if is_fixed y then remove_value st x (value y)
    end
  in
  let h = post_now s ~name:"same_guard_neq" ~priority:prio_channel ~watches:[ a; b; x; y ] prop in
  handle := Some h;
  propagate s
