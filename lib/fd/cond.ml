open Store

let disjoint a b = Dom.is_empty (Dom.inter (dom a) (dom b))

(* Core of [p = q ==> l = m]; shared with the guarded variant.  Returns
   [true] when the implication is entailed (safe to stop watching):
   either the antecedent can never hold, or the consequent already
   holds in every remaining assignment. *)
let implication_step st (p, q) (l, m) =
  if disjoint p q then true
  else if is_fixed l && is_fixed m && value l = value m then true
  else if is_fixed p && is_fixed q && value p = value q then begin
    let joint = Dom.inter (dom l) (dom m) in
    update st l joint;
    update st m joint;
    (* both sides now hold the same singleton: consequent decided *)
    Dom.is_singleton joint
  end
  else if disjoint l m then begin
    (* Contrapositive: lines can never be equal, so pages must differ.
       The removal below makes [p] and [q] disjoint, so the implication
       holds vacuously from here on. *)
    if is_fixed p then begin
      remove_value st q (value p);
      true
    end
    else if is_fixed q then begin
      remove_value st p (value q);
      true
    end
    else false
  end
  else false

(* Wake events: every pruning of the implication needs [p] or [q] fixed
   (enforcement needs both, the contrapositive needs one), so the
   antecedent pair subscribes with [On_fix] — narrowings of a start/page
   variable that do not fix it can never enable a prune here and used to
   account for the bulk of this propagator's wakes.  The consequent pair
   keeps [On_change]: the contrapositive fires on disjointness, which
   any narrowing can establish. *)
let implies_eq s (p, q) (l, m) =
  let prop st = if implication_step st (p, q) (l, m) then entail_now st in
  ignore
    (post_now_on s ~name:"implies_eq" ~priority:prio_channel
       ~watches:[ (On_fix, p); (On_fix, q); (On_change, l); (On_change, m) ]
       prop);
  propagate s

(* Staged subscription.  Until the guard pair is fixed the body cannot
   prune (every branch below requires both guard values known), so the
   propagator initially watches {e only} the guard with [On_fix] and
   stays off the watcher lists of the page/line variables entirely —
   those are the high-traffic variables of the model, and wakes from
   them while the guard is open were pure overhead (1.5M wakes / 0
   prunes on MATMUL).  The first run with the guard fixed either
   entails (unequal singletons are disjoint) or widens the watch set to
   the consequent variables via [resubscribe_now]; the rewrite is
   trailed, so backtracking above the fixing decision restores the
   guard-only trigger set.

   Batching: all implications sharing one guard pair (every read pair
   of an op pair, eq. 8) live in a single propagator.  A guard fix then
   wakes one propagator instead of |reads_i| * |reads_j| copies, and
   since [implication_step] is stateless the batch needs no per-pair
   trailing — entailment is simply "every pair decided". *)
let guarded_implies_eq_all s ~guard:(a, b) pairs =
  let full =
    List.concat_map
      (fun ((p, q), (l, m)) ->
        [ (On_fix, p); (On_fix, q); (On_change, l); (On_change, m) ])
      pairs
  in
  let prop st =
    if disjoint a b then entail_now st
    else if is_fixed a && is_fixed b then begin
      (* both fixed and not disjoint: the guard values are equal and
         every implication in the batch is live from here on *)
      resubscribe_now st full;
      (* run the step on every pair (no short-circuit: each call may
         prune); entailed only once all of them are decided *)
      let all =
        List.fold_left
          (fun acc (pq, lm) -> implication_step st pq lm && acc)
          true pairs
      in
      if all then entail_now st
    end
  in
  ignore
    (post_now_on s ~name:"guarded_implies_eq" ~priority:prio_channel
       ~watches:[ (On_fix, a); (On_fix, b) ] prop);
  propagate s

let guarded_implies_eq s ~guard pq lm = guarded_implies_eq_all s ~guard [ (pq, lm) ]

(* Hub form: one propagator per operation covering all of its guarded
   pairs, watching only the operation's {e own} start variable.  A node
   decision that fixes one start then wakes a single hub instead of one
   propagator per partner; the hub scans its partner list and checks
   the pairs whose guard is now decided.  Coverage is symmetric — pair
   (i, j) is rechecked both when [start i] fixes (by hub i) and when
   [start j] fixes (by hub j) — which is exactly the trigger set the
   per-pair propagator had, so filtering is unchanged.  Once some
   partner guard holds, the hub widens its watch set to the page/line
   variables of the active pairs (cached by backtrack generation and
   active count, both monotone within a subtree, so re-runs reuse the
   same physical list and [resubscribe] no-ops). *)
let guarded_implies_eq_hub s a partners =
  let base = [ (On_fix, a) ] in
  let pair_watches ((p, q), (l, m)) =
    [ (On_fix, p); (On_fix, q); (On_change, l); (On_change, m) ]
  in
  let c_gen = ref (-1) and c_nact = ref 0 and c_watches = ref base in
  let prop st =
    if is_fixed a then begin
      let actives =
        List.filter (fun (b, _) -> is_fixed b && value b = value a) partners
      in
      let nact = List.length actives in
      if generation st <> !c_gen || nact <> !c_nact then begin
        c_gen := generation st;
        c_nact := nact;
        c_watches :=
          (if nact = 0 then base
           else
             base
             @ List.concat_map
                 (fun (_, pairs) -> List.concat_map pair_watches pairs)
                 actives)
      end;
      resubscribe_now st !c_watches;
      let all = ref true in
      List.iter
        (fun (b, pairs) ->
          if disjoint a b then () (* guard refuted: pairs vacuous *)
          else if is_fixed b then
            (* fixed and not disjoint: guard holds, implications live *)
            List.iter
              (fun (pq, lm) ->
                if not (implication_step st pq lm) then all := false)
              pairs
          else all := false)
        partners;
      if !all then entail_now st
    end
  in
  ignore
    (post_now_on s ~name:"guarded_implies_eq" ~priority:prio_channel
       ~watches:base prop);
  propagate s

let same_guard_neq s ~guard:(a, b) x y =
  let prop st =
    if disjoint a b then entail_now st
    else if is_fixed a && is_fixed b && value a = value b then begin
      if is_fixed x then begin
        remove_value st y (value x);
        entail_now st
      end
      else if is_fixed y then begin
        remove_value st x (value y);
        entail_now st
      end
    end
  in
  ignore
    (post_now_on s ~name:"same_guard_neq" ~priority:prio_channel
       ~watches:[ (On_fix, a); (On_fix, b); (On_fix, x); (On_fix, y) ]
       prop);
  propagate s
