(** Depth-first search with variable/value selection heuristics,
    branch & bound minimization, multi-phase variable ordering (paper
    §3.5) and node/time budgets.

    The engine keeps a backtrackable sparse set of possibly-unfixed
    variables per phase, so variable selection never rescans fixed
    variables, and domain-size / bounds queries used by the heuristics
    are O(1) (see {!Dom}). *)

open Store

(** Variable selection heuristic.  The named constructors are evaluated
    incrementally inside the engine; {!Custom} receives the list of
    currently-unfixed variables of the phase (in original order) and is
    the compatibility escape hatch. *)
type var_select =
  | Input_order       (** first unfixed variable in list order *)
  | First_fail        (** smallest domain, ties by list order *)
  | Smallest_min      (** smallest domain minimum (list scheduling) *)
  | Most_constrained  (** smallest domain, ties by creation order *)
  | Custom of (var list -> var option)

(** Value selection heuristic: picks the value to try first. *)
type val_select = var -> int

val input_order : var_select
val first_fail : var_select
val smallest_min : var_select
val most_constrained : var_select
val custom : (var list -> var option) -> var_select

val select_var : var_select -> var list -> var option
(** Apply a heuristic to an explicit list (non-incremental; for use
    outside the engine). *)

val select_min : val_select
val select_max : val_select

val select_mid : val_select
(** Closest value to the middle of the domain's range; computed by
    interval arithmetic, never by enumerating the domain. *)

(** One search phase: a set of decision variables with its heuristics.
    Phases are exhausted in order (paper §3.5 uses three). *)
type phase = { vars : var list; var_select : var_select; val_select : val_select }

val phase :
  ?var_select:var_select -> ?val_select:val_select -> var list -> phase
(** Defaults: {!first_fail} / {!select_min}. *)

type stats = {
  nodes : int;          (** decision nodes explored *)
  failures : int;       (** backtracks *)
  solutions : int;      (** solutions found (B&B counts improvements) *)
  propagations : int;   (** propagator executions during this search *)
  time_ms : float;      (** wall-clock search time *)
  optimal : bool;       (** search space exhausted (proof of optimality /
                            unsatisfiability) *)
}

val zero_stats : optimal:bool -> stats

type 'a outcome =
  | Solution of 'a * stats        (** with proof of optimality for B&B *)
  | Best of 'a * stats            (** budget hit; best-so-far returned *)
  | Unsat of stats
  | Timeout of stats              (** budget hit with no solution found *)

type budget = { max_nodes : int option; max_time_ms : float option }

val no_budget : budget
val node_budget : int -> budget
val time_budget : float -> budget
val both_budget : int -> float -> budget

(** All searches also accept an absolute [?deadline] ({!Deadline.t}):
    it composes with the budget's [max_time_ms] by taking the earliest,
    is checked between search nodes, {e and} is polled inside the
    propagation fixpoint loop (via {!Store.set_poll}), so a single long
    sweep cannot overshoot it.

    When an {!Obs} sink is attached, every search wraps itself in a
    ["search"] span and emits [branch] / [fail] / [backtrack] /
    [solution] / [restart] instants (cat ["search"]) tagged with the
    caller's [?tid] (the portfolio passes each worker's index), so
    search trees can be replayed and diffed across workers.  With no
    sink attached the hooks are single-branch no-ops. *)

val solve :
  ?budget:budget ->
  ?deadline:Deadline.t ->
  ?tid:int ->
  Store.t ->
  phase list ->
  on_solution:(unit -> 'a) ->
  'a outcome
(** Find the first solution: assign all phase variables such that
    propagation succeeds, then call [on_solution] to snapshot it. *)

val minimize :
  ?budget:budget ->
  ?deadline:Deadline.t ->
  ?bound_get:(unit -> int option) ->
  ?bound_put:(int -> unit) ->
  ?tid:int ->
  Store.t ->
  phase list ->
  objective:var ->
  on_solution:(unit -> 'a) ->
  'a outcome
(** Branch & bound: every solution adds the constraint
    [objective <= value - 1] and search continues.  [Solution] means the
    last snapshot is proven optimal; [Best] means the budget expired
    first.

    [bound_get]/[bound_put] connect the search to an external incumbent
    (see {!Portfolio}): the effective bound is the minimum of the local
    and external bounds, re-read at every choice point, and improving
    solutions are published through [bound_put]. *)

val solve_all :
  ?budget:budget ->
  ?deadline:Deadline.t ->
  ?limit:int ->
  Store.t ->
  phase list ->
  on_solution:(unit -> 'a) ->
  'a list * stats
(** Enumerate solutions (up to [limit]).  [stats.optimal] means the
    enumeration is exhaustive.  The store is restored to its entry state
    afterwards. *)

val luby : int -> int
(** The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 ... *)

val minimize_restarts :
  ?base:int ->
  ?max_restarts:int ->
  ?budget:budget ->
  ?deadline:Deadline.t ->
  ?bound_get:(unit -> int option) ->
  ?bound_put:(int -> unit) ->
  ?tid:int ->
  Store.t ->
  phase list ->
  objective:var ->
  on_solution:(unit -> 'a) ->
  'a outcome
(** Branch & bound under a Luby restart policy: restart [i] runs with a
    node cap of [base * luby i], carrying the incumbent bound across
    restarts.  Useful against heavy-tailed search behaviour.  [Solution]
    is a proof of optimality, as in {!minimize}. *)

(** {1 Anytime interface}

    The typed-status layer for callers that must never see an
    exception: whatever happens — optimality proof, deadline, root
    infeasibility, or a crash in a propagator — the result is a status
    plus the best incumbent found before the event. *)

type status =
  | Optimal           (** incumbent present and proven optimal *)
  | Feasible_timeout  (** deadline/budget expired; incumbent is the best
                          found so far ([None] if none was found) *)
  | Infeasible        (** proven: no solution exists *)
  | Crashed           (** an exception escaped the engine; the incumbent
                          (if any) is the last solution found before *)

val pp_status : Format.formatter -> status -> unit

type 'a anytime = {
  a_status : status;
  incumbent : 'a option;
  a_stats : stats;       (** zeroed when the engine crashed *)
  crash : string option; (** printed exception, when [a_status = Crashed] *)
}

val minimize_anytime :
  ?budget:budget ->
  ?deadline:Deadline.t ->
  ?bound_get:(unit -> int option) ->
  ?bound_put:(int -> unit) ->
  ?tid:int ->
  ?metrics:Obs.Metrics.registry ->
  Store.t ->
  phase list ->
  objective:var ->
  on_solution:(unit -> 'a) ->
  'a anytime
(** {!minimize}, repackaged: never raises.  Incumbent snapshots are
    retained outside the engine, so even a mid-search crash returns the
    best solution found before it.

    Each call feeds one observation per run into the [search.nodes] /
    [search.propagations] / [search.time_ms] histograms of [metrics]
    (default: {!Obs.Metrics.default}, which is disabled unless the
    process enabled it — standalone solves then pay one atomic load). *)
