open Store

let post s ~index xs z =
  let n = Array.length xs in
  if n = 0 then raise (Fail "element: empty table");
  let prop st =
    remove_below st index 0;
    remove_above st index (n - 1);
    (* z's support: union over feasible indices *)
    let support = ref Dom.empty in
    Dom.iter
      (fun i -> support := Dom.union !support (dom xs.(i)))
      (dom index);
    update st z !support;
    (* index support: xs.(i) must intersect z *)
    let feasible =
      Dom.filter
        (fun i -> not (Dom.is_empty (Dom.inter (dom xs.(i)) (dom z))))
        (dom index)
    in
    update st index feasible;
    (* fixed index: unify *)
    if is_fixed index then begin
      let xi = xs.(value index) in
      let joint = Dom.inter (dom xi) (dom z) in
      update st xi joint;
      update st z joint
    end
  in
  ignore (post_now s ~name:"element" ~priority:prio_channel ~watches:(index :: z :: Array.to_list xs) prop);
  propagate s

let post_const s ~index table z =
  let xs = Array.map (fun k -> const s k) table in
  post s ~index xs z
