(** Absolute deadlines for cooperative cancellation.

    A deadline is a point on the process clock; [none] never expires.
    Deadlines compose by taking the earliest, so a caller-imposed
    deadline and a local time budget combine into one cancellation
    point that every layer (search nodes, the propagation fixpoint
    loop, portfolio workers) polls cooperatively.

    The clock is {!Unix.gettimeofday} — the same clock the search
    statistics use.  Deadlines are absolute, so they survive being
    passed across domains and are immune to per-layer re-anchoring
    (a worker that starts late does not get extra time).

    {2 Switches}

    A deadline may carry a {!switch}: a shared, domain-safe cell that
    an external supervisor can {!cancel} at any time, turning the next
    [expired] poll into a cancellation point even when the time bound
    has not been reached.  Every [expired] poll on a switched deadline
    also stamps the switch with the poll time, so the switch doubles as
    a progress heartbeat: {!idle_ms} tells a watchdog how long the
    computation has gone without reaching any cooperative poll site —
    the signature of a wedged propagator.  Reading the switch directly
    ({!cancelled}, {!idle_ms}) never stamps the heartbeat; only the
    engine-side [expired] polls do. *)

type t
(** An absolute deadline, in milliseconds on the process clock,
    optionally carrying a cancellation switch. *)

val none : t
(** Never expires (unless a switch is attached and cancelled). *)

val after_ms : float -> t
(** [after_ms ms] expires [ms] milliseconds from now.  [ms <= 0]
    yields a deadline that is already expired. *)

val earliest : t -> t -> t
(** The tighter of two deadlines.  At most one switch survives:
    the first argument's, if it has one. *)

val of_time_budget : float option -> t
(** [of_time_budget (Some ms)] = [after_ms ms]; [None] = {!none}. *)

val is_finite : t -> bool
(** Whether the deadline can ever expire — a finite time bound {e or}
    an attached switch.  The engine installs its cooperative polls
    exactly when this is [true]. *)

val expired : t -> bool
(** Has the deadline passed, or its switch been cancelled?
    Constant-time; safe to poll from hot loops (one clock read).
    On a switched deadline, every call stamps the heartbeat. *)

val remaining_ms : t -> float option
(** Milliseconds left, or [None] for an infinite time bound (even if a
    switch is attached).  May be negative. *)

(** {1 Switches} *)

type switch
(** A cancellation + heartbeat cell, shareable across domains. *)

val switch : unit -> switch
(** A fresh switch; the heartbeat starts at creation time. *)

val with_switch : t -> switch -> t
(** Attach a switch to a deadline (replacing any previous one). *)

val cancel : ?reason:string -> switch -> unit
(** Trip the switch: every deadline carrying it reports {!expired}
    from now on.  Idempotent; the first reason wins the report. *)

val cancelled : switch -> bool
(** Has the switch been cancelled?  Never stamps the heartbeat — safe
    for watchdogs and for fault-injection escape predicates that must
    not masquerade as progress. *)

val cancel_reason : switch -> string option

val beat : switch -> unit
(** Stamp the heartbeat manually (e.g. when a worker picks a request
    up, before the engine's own polls start). *)

val idle_ms : switch -> float
(** Milliseconds since the last heartbeat ({!beat} or an [expired]
    poll on a deadline carrying this switch). *)

val pp : Format.formatter -> t -> unit
