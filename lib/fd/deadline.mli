(** Absolute deadlines for cooperative cancellation.

    A deadline is a point on the process clock; [none] never expires.
    Deadlines compose by taking the earliest, so a caller-imposed
    deadline and a local time budget combine into one cancellation
    point that every layer (search nodes, the propagation fixpoint
    loop, portfolio workers) polls cooperatively.

    The clock is {!Unix.gettimeofday} — the same clock the search
    statistics use.  Deadlines are absolute, so they survive being
    passed across domains and are immune to per-layer re-anchoring
    (a worker that starts late does not get extra time). *)

type t
(** An absolute deadline, in milliseconds on the process clock. *)

val none : t
(** Never expires. *)

val after_ms : float -> t
(** [after_ms ms] expires [ms] milliseconds from now.  [ms <= 0]
    yields a deadline that is already expired. *)

val earliest : t -> t -> t
(** The tighter of two deadlines. *)

val of_time_budget : float option -> t
(** [of_time_budget (Some ms)] = [after_ms ms]; [None] = {!none}. *)

val is_finite : t -> bool
(** [false] iff the deadline is {!none}. *)

val expired : t -> bool
(** Has the deadline passed?  Constant-time; safe to poll from hot
    loops (one clock read). *)

val remaining_ms : t -> float option
(** Milliseconds left, or [None] for {!none}.  May be negative. *)

val pp : Format.formatter -> t -> unit
