exception Injected of string

type fault = { worker : int; what : string }

type t = {
  seed : int;
  crash_prob : float;
  delay_prob : float;
  delay_ms : float;
  spurious_prob : float;
  kill_workers : int list;
  kill_after : int;
  lock : Mutex.t;
  mutable log : fault list;  (* newest first *)
}

let create ?(crash_prob = 0.) ?(delay_prob = 0.) ?(delay_ms = 0.2)
    ?(spurious_prob = 0.) ?(kill_workers = []) ?(kill_after = 50) ~seed () =
  {
    seed;
    crash_prob;
    delay_prob;
    delay_ms;
    spurious_prob;
    kill_workers;
    kill_after;
    lock = Mutex.create ();
    log = [];
  }

let record t worker what =
  Mutex.lock t.lock;
  t.log <- { worker; what } :: t.log;
  Mutex.unlock t.lock

let faults t =
  Mutex.lock t.lock;
  let l = List.rev t.log in
  Mutex.unlock t.lock;
  l

let pp_fault ppf f = Format.fprintf ppf "worker %d: %s" f.worker f.what

(* Busy-free delay: sleep via select so domains stay preemptible. *)
let sleep_ms ms = ignore (Unix.select [] [] [] (ms /. 1000.))

let instrument t ~worker store =
  (* Independent stream per (seed, worker): fault draws are reproducible
     regardless of how the domains interleave. *)
  let rng = Random.State.make [| t.seed; worker; 0x5eed |] in
  let execs = ref 0 in
  let kill = List.mem worker t.kill_workers in
  Store.set_hook store
    (Some
       (fun s pname ->
         incr execs;
         if kill && !execs >= t.kill_after then begin
           record t worker
             (Printf.sprintf "killed before execution %d of %s" !execs pname);
           raise (Injected (Printf.sprintf "worker %d killed" worker))
         end;
         let r = Random.State.float rng 1.0 in
         if r < t.crash_prob then begin
           record t worker ("crash injected into " ^ pname);
           raise (Injected ("propagator " ^ pname ^ " crashed"))
         end
         else if r < t.crash_prob +. t.delay_prob then begin
           record t worker
             (Printf.sprintf "delayed %s by %.1f ms" pname t.delay_ms);
           sleep_ms t.delay_ms
         end
         else if r < t.crash_prob +. t.delay_prob +. t.spurious_prob then begin
           record t worker ("spurious wake of all propagators at " ^ pname);
           Store.reschedule_all s
         end))
