exception Injected of string

type fault = { worker : int; what : string }

type t = {
  seed : int;
  crash_prob : float;
  delay_prob : float;
  delay_ms : float;
  spurious_prob : float;
  kill_workers : int list;
  kill_after : int;
  wedge_workers : int list;
  wedge_after : int;
  wedge_max_ms : float;
  fail_solves : int list;
  escape : unit -> bool;
  (* shared across {!with_escape} copies: *)
  solves : int Atomic.t;     (* instrumentation (= solve attempt) counter *)
  lock : Mutex.t;
  log : fault list ref;      (* newest first *)
}

let create ?(crash_prob = 0.) ?(delay_prob = 0.) ?(delay_ms = 0.2)
    ?(spurious_prob = 0.) ?(kill_workers = []) ?(kill_after = 50)
    ?(wedge_workers = []) ?(wedge_after = 25) ?(wedge_max_ms = 10_000.)
    ?(fail_solves = []) ~seed () =
  {
    seed;
    crash_prob;
    delay_prob;
    delay_ms;
    spurious_prob;
    kill_workers;
    kill_after;
    wedge_workers;
    wedge_after;
    wedge_max_ms;
    fail_solves;
    escape = (fun () -> false);
    solves = Atomic.make 0;
    lock = Mutex.create ();
    log = ref [];
  }

(* A shallow copy with a different wedge-escape predicate.  The fault
   log, the lock and the solve counter are shared, so a supervisor can
   hand each request its own escape (typically "this request's
   cancellation switch tripped") while keeping one fault history. *)
let with_escape t escape = { t with escape }

let record t worker what =
  Mutex.lock t.lock;
  t.log := { worker; what } :: !(t.log);
  Mutex.unlock t.lock

let faults t =
  Mutex.lock t.lock;
  let l = List.rev !(t.log) in
  Mutex.unlock t.lock;
  l

let pp_fault ppf f = Format.fprintf ppf "worker %d: %s" f.worker f.what

(* Busy-free delay: sleep via select so domains stay preemptible. *)
let sleep_ms ms = ignore (Unix.select [] [] [] (ms /. 1000.))

let instrument t ~worker store =
  (* Independent stream per (seed, worker): fault draws are reproducible
     regardless of how the domains interleave. *)
  let rng = Random.State.make [| t.seed; worker; 0x5eed |] in
  let execs = ref 0 in
  let kill = List.mem worker t.kill_workers in
  let wedge = List.mem worker t.wedge_workers in
  (* Nth-solve poison: the Nth instrumented store (counted across every
     instrumentation site of this chaos instance) raises on its first
     propagator execution — the reproducible "this attempt dies at
     birth" fault the retry machinery needs. *)
  let solve_no = 1 + Atomic.fetch_and_add t.solves 1 in
  let poisoned = List.mem solve_no t.fail_solves in
  Store.set_hook store
    (Some
       (fun s pname ->
         incr execs;
         (* The wedge outranks the Nth-solve poison: wedge sites are
            named explicitly while the poison counter is global and
            scheduling-dependent, so when both land on the same
            execution the caller's named intent must win (otherwise a
            racing poison can eat a wedge target's first execution and
            the wedge never fires). *)
         if wedge && !execs = t.wedge_after then begin
           (* The wedge: spin inside this propagator execution without
              reaching any cooperative poll site, exactly what a buggy
              propagator stuck in a loop looks like from outside.  The
              spin watches the escape predicate (never the deadline —
              that would stamp the progress heartbeat and hide the
              wedge) and a hard time ceiling, so a wedge can always be
              released by a watchdog and can never hang a test run
              forever. *)
           record t worker
             (Printf.sprintf "wedged in %s (execution %d)" pname !execs);
           let t0 = Unix.gettimeofday () in
           let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
           while not (t.escape ()) && elapsed_ms () < t.wedge_max_ms do
             sleep_ms 1.
           done;
           record t worker
             (Printf.sprintf "wedge in %s released after %.0f ms (%s)" pname
                (elapsed_ms ())
                (if t.escape () then "escape" else "ceiling"));
           raise (Injected (Printf.sprintf "worker %d wedged" worker))
         end;
         if poisoned && !execs = 1 then begin
           record t worker
             (Printf.sprintf "solve %d poisoned before %s" solve_no pname);
           raise (Injected (Printf.sprintf "solve %d poisoned" solve_no))
         end;
         if kill && !execs >= t.kill_after then begin
           record t worker
             (Printf.sprintf "killed before execution %d of %s" !execs pname);
           raise (Injected (Printf.sprintf "worker %d killed" worker))
         end;
         let r = Random.State.float rng 1.0 in
         if r < t.crash_prob then begin
           record t worker ("crash injected into " ^ pname);
           raise (Injected ("propagator " ^ pname ^ " crashed"))
         end
         else if r < t.crash_prob +. t.delay_prob then begin
           record t worker
             (Printf.sprintf "delayed %s by %.1f ms" pname t.delay_ms);
           sleep_ms t.delay_ms
         end
         else if r < t.crash_prob +. t.delay_prob +. t.spurious_prob then begin
           record t worker ("spurious wake of all propagators at " ^ pname);
           Store.reschedule_all s
         end))
