(* Hand-rolled XML subset: elements + attributes, no text content.  The
   IR only needs <graph>, <node .../> and <edge .../>. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      let rest = String.sub s i (min 6 (n - i)) in
      let emit c k =
        Buffer.add_char buf c;
        go (i + k)
      in
      if String.length rest >= 5 && String.sub rest 0 5 = "&amp;" then emit '&' 5
      else if String.length rest >= 4 && String.sub rest 0 4 = "&lt;" then emit '<' 4
      else if String.length rest >= 4 && String.sub rest 0 4 = "&gt;" then emit '>' 4
      else if String.length rest >= 6 && String.sub rest 0 6 = "&quot;" then emit '"' 6
      else begin
        Buffer.add_char buf '&';
        go (i + 1)
      end
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let value_to_string = function
  | Eit.Value.Scalar c -> Printf.sprintf "%.17g,%.17g" c.Eit.Cplx.re c.Eit.Cplx.im
  | Eit.Value.Vector a ->
    String.concat ";"
      (Array.to_list
         (Array.map (fun c -> Printf.sprintf "%.17g,%.17g" c.Eit.Cplx.re c.Eit.Cplx.im) a))
  | Eit.Value.Matrix _ -> invalid_arg "Xml: matrix values do not occur in the IR"

let value_of_string kind s =
  let cplx part =
    match String.split_on_char ',' part with
    | [ re; im ] -> Eit.Cplx.make (float_of_string re) (float_of_string im)
    | _ -> failwith ("Xml: bad complex literal " ^ part)
  in
  match kind with
  | `Scalar -> Eit.Value.Scalar (cplx s)
  | `Vector ->
    Eit.Value.Vector (Array.of_list (List.map cplx (String.split_on_char ';' s)))

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<graph>\n";
  List.iter
    (fun nd ->
      Buffer.add_string buf
        (Printf.sprintf "  <node id=\"%d\" cat=\"%s\" label=\"%s\"" nd.Ir.id
           (Ir.category_name nd.Ir.cat) (escape nd.Ir.label));
      Option.iter
        (fun op -> Buffer.add_string buf (Printf.sprintf " op=\"%s\"" (Eit.Opcode.name op)))
        nd.Ir.op;
      (match nd.Ir.value with
      | Some v when Ir.is_data nd.Ir.cat ->
        Buffer.add_string buf (Printf.sprintf " value=\"%s\"" (value_to_string v))
      | _ -> ());
      Buffer.add_string buf "/>\n")
    (Ir.nodes g);
  List.iter
    (fun nd ->
      let i = nd.Ir.id in
      List.iteri
        (fun pos p ->
          Buffer.add_string buf
            (Printf.sprintf "  <edge from=\"%d\" to=\"%d\" pos=\"%d\"/>\n" p i pos))
        (Ir.preds g i))
    (Ir.nodes g);
  Buffer.add_string buf "</graph>\n";
  Buffer.contents buf

let output oc g = output_string oc (to_string g)

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output oc g)

(* --------------------------- parsing ------------------------------ *)

type error = { line : int; col : int; reason : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.reason

(* Internal: a parse failure at a byte offset; converted to line/column
   against the source once, at the boundary. *)
exception Err of int * string

let error_at s off reason =
  let off = min (max 0 off) (String.length s) in
  let line = ref 1 and col = ref 1 in
  for i = 0 to off - 1 do
    if s.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  { line = !line; col = !col; reason }

type tag = { tname : string; attrs : (string * string) list; tpos : int }

let parse_tags s =
  let n = String.length s in
  let tags = ref [] in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt s !i '<' with
    | None -> i := n
    | Some lt ->
      let gt =
        match String.index_from_opt s lt '>' with
        | Some gt -> gt
        | None -> raise (Err (lt, "unterminated tag"))
      in
      let body = String.sub s (lt + 1) (gt - lt - 1) in
      i := gt + 1;
      let body =
        if String.length body > 0 && body.[String.length body - 1] = '/' then
          String.sub body 0 (String.length body - 1)
        else body
      in
      if String.length body > 0 && body.[0] <> '/' && body.[0] <> '?' && body.[0] <> '!' then begin
        (* split name from attributes *)
        let name_end =
          match String.index_opt body ' ' with Some j -> j | None -> String.length body
        in
        let tname = String.sub body 0 name_end in
        let attrs = ref [] in
        let j = ref name_end in
        let len = String.length body in
        while !j < len do
          while !j < len && (body.[!j] = ' ' || body.[!j] = '\n' || body.[!j] = '\t') do incr j done;
          if !j < len then begin
            let eq =
              match String.index_from_opt body !j '=' with
              | Some e -> e
              | None -> raise (Err (lt + 1 + !j, "attribute without value"))
            in
            let key = String.trim (String.sub body !j (eq - !j)) in
            let q1 =
              match String.index_from_opt body eq '"' with
              | Some q -> q
              | None -> raise (Err (lt + 1 + eq, "unquoted attribute " ^ key))
            in
            let q2 =
              match String.index_from_opt body (q1 + 1) '"' with
              | Some q -> q
              | None -> raise (Err (lt + 1 + q1, "unterminated attribute " ^ key))
            in
            attrs := (key, unescape (String.sub body (q1 + 1) (q2 - q1 - 1))) :: !attrs;
            j := q2 + 1
          end
        done;
        tags := { tname; attrs = List.rev !attrs; tpos = lt } :: !tags
      end
  done;
  List.rev !tags

let attr t k =
  match List.assoc_opt k t.attrs with
  | Some v -> v
  | None ->
    raise (Err (t.tpos, Printf.sprintf "<%s> missing attribute %s" t.tname k))

let attr_opt t k = List.assoc_opt k t.attrs

let int_attr t k =
  let v = attr t k in
  match int_of_string_opt v with
  | Some i -> i
  | None ->
    raise
      (Err (t.tpos, Printf.sprintf "<%s> attribute %s: not an integer (%S)" t.tname k v))

(* Semantic constructors ([category_of_name], [Opcode.of_name], the IR
   builder's well-formedness checks) report through exceptions of their
   own; anchor them to the tag being processed. *)
let at_tag t f =
  try f () with
  | Err _ as e -> raise e
  | Failure m | Invalid_argument m -> raise (Err (t.tpos, m))

let parse_exn s =
  let tags = parse_tags s in
  let node_tags = List.filter (fun t -> t.tname = "node") tags in
  let edge_tags = List.filter (fun t -> t.tname = "edge") tags in
  let edges =
    List.map
      (fun t -> (int_attr t "from", int_attr t "to", int_attr t "pos"))
      edge_tags
  in
  let b = Ir.builder () in
  let sorted_nodes =
    List.sort (fun a b -> compare (int_attr a "id") (int_attr b "id")) node_tags
  in
  List.iteri
    (fun expect t ->
      let id = int_attr t "id" in
      if id <> expect then
        raise
          (Err
             (t.tpos,
              Printf.sprintf "node ids must be contiguous from 0 (got %d, expected %d)"
                id expect));
      let cat = at_tag t (fun () -> Ir.category_of_name (attr t "cat")) in
      let label = attr t "label" in
      if Ir.is_data cat then begin
        let kind = if cat = Ir.Vector_data then `Vector else `Scalar in
        let value =
          at_tag t (fun () -> Option.map (value_of_string kind) (attr_opt t "value"))
        in
        let id' = at_tag t (fun () -> Ir.add_data b ~label ?value kind) in
        assert (id' = id)
      end
      else begin
        let op = at_tag t (fun () -> Eit.Opcode.of_name (attr t "op")) in
        let ins =
          List.filter (fun (_, t', _) -> t' = id) edges
          |> List.sort (fun (_, _, p1) (_, _, p2) -> compare p1 p2)
          |> List.map (fun (f, _, _) -> f)
        in
        let out =
          match List.filter (fun (f, _, _) -> f = id) edges with
          | [ (_, t', _) ] -> t'
          | l ->
            raise
              (Err (t.tpos, Printf.sprintf "op %d has %d outputs" id (List.length l)))
        in
        let id' = at_tag t (fun () -> Ir.add_op b ~label op ~args:ins ~result:out) in
        assert (id' = id)
      end)
    sorted_nodes;
  (* freeze checks graph-global well-formedness; no single tag to blame *)
  try Ir.freeze b
  with Failure m | Invalid_argument m -> raise (Err (0, m))

let parse s =
  match parse_exn s with
  | g -> Ok g
  | exception Err (off, reason) -> Error (error_at s off reason)

let of_string s =
  match parse s with
  | Ok g -> g
  | Error e -> failwith (Format.asprintf "Xml: %a" pp_error e)

let load_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error { line = 0; col = 0; reason = m }
  | s -> parse s

let load path =
  match load_file path with
  | Ok g -> g
  | Error e -> failwith (Format.asprintf "Xml: %s: %a" path pp_error e)
