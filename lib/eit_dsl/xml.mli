(** XML serialization of the IR (the paper's DSL emits the dataflow
    graph in XML as the interface to the code-generation tool chain).

    The format is self-contained:

    {v
    <graph>
      <node id="0" cat="vector_data" label="A[0]" value="1,0;2,0;3,0;4,0"/>
      <node id="4" cat="vector_op" op="v_dotP"/>
      <edge from="0" to="4" pos="0"/>
      ...
    </graph>
    v}

    [value] attributes record trace values of input data nodes (pairs
    [re,im] separated by [;] for vectors); [pos] is the operand
    position, so operand order survives the round-trip. *)

val to_string : Ir.t -> string
val output : out_channel -> Ir.t -> unit

type error = {
  line : int;   (** 1-based; [0] for file-level (I/O) errors *)
  col : int;    (** 1-based *)
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ir.t, error) result
(** Total parser: every malformed input — unterminated tags, missing or
    non-integer attributes, unknown categories/opcodes, ill-formed
    graphs — is reported as a positioned {!error}, never an
    exception. *)

val load_file : string -> (Ir.t, error) result
(** {!parse} on a file's contents; I/O failures yield a line-0 error. *)

val of_string : string -> Ir.t
(** {!parse}, raising.  @raise Failure on malformed input. *)

val load : string -> Ir.t
(** {!load_file}, raising.  @raise Failure on malformed input or I/O
    error. *)

val save : string -> Ir.t -> unit
