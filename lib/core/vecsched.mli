(** Vecsched — programming support for reconfigurable custom vector
    architectures.

    The top-level API: write a kernel in the DSL ({!Dsl}), compile it to
    the IR with the pipeline-fusion pass, schedule it with integrated
    memory allocation on the EIT architecture model, and (optionally)
    generate machine code and run it on the cycle-accurate simulator.

    {[
      let mm = Apps.Matmul.build () in
      let c = Vecsched.compile (Apps.Matmul.graph mm) in
      match Vecsched.schedule c with
      | { schedule = Some sch; _ } ->
        Format.printf "makespan: %d cycles@." sch.Sched.Schedule.makespan
      | _ -> ...
    ]}

    Underlying libraries, re-exported for convenience:
    {!module:Fd} (the finite-domain solver), {!module:Eit} (architecture
    model + simulator), {!module:Eit_dsl} (DSL + IR), {!module:Sched}
    (scheduler) and {!module:Apps} (the paper's kernels). *)

module Dsl = Eit_dsl.Dsl
module Ir = Eit_dsl.Ir
module Merge = Eit_dsl.Merge
module Stats = Eit_dsl.Stats
module Xml = Eit_dsl.Xml
module Dot = Eit_dsl.Dot
module Arch = Eit.Arch
module Opcode = Eit.Opcode
module Cplx = Eit.Cplx
module Value = Eit.Value
module Schedule = Sched.Schedule
module Solve = Sched.Solve
module Overlap = Sched.Overlap
module Modulo = Sched.Modulo
module Manual_baseline = Sched.Manual_baseline
module Codegen = Sched.Codegen
module Machine = Eit.Machine

type compiled = {
  raw : Ir.t;          (** the traced dataflow graph *)
  ir : Ir.t;           (** after the merge pass (scheduler input) *)
  fusions : int;
  stats : Stats.t;     (** of the merged graph *)
}

val compile : ?protect:int list -> Ir.t -> compiled
(** Run the merge pass and collect statistics. *)

val compile_dsl : Dsl.ctx -> compiled
(** [compile_dsl ctx] traces the context's graph, protecting its
    declared outputs from fusion. *)

val schedule :
  ?budget_ms:float ->
  ?deadline:Fd.Deadline.t ->
  ?memory:bool ->
  ?arch:Arch.t ->
  ?parallel:int ->
  ?cache:Cache.t ->
  ?warm:bool ->
  compiled ->
  Solve.outcome
(** Schedule the merged graph (defaults: 10 s budget, no deadline,
    memory allocation on, {!Arch.default}, sequential).  [deadline] is
    an absolute wall-clock cut-off enforced down inside the propagation
    fixpoint; on expiry the outcome degrades gracefully (CP incumbent,
    else heuristic fallback) instead of overrunning.  [parallel >= 2]
    runs a cooperative portfolio of that many search strategies on
    OCaml domains.  [cache] consults/populates a shared solution cache
    and [warm] seeds re-solves with the previous incumbent — both
    documented at {!Solve.run}. *)

val run_on_simulator : Schedule.t -> (unit, string) result
(** Code-generate and execute the schedule, checking every produced
    value against the IR reference evaluation. *)

val version : string
