(* The solver benchmark report (BENCH_solver.json) is owned by `bench
   perfjson`, which rewrites the whole file from a fresh in-memory run
   — but other subcommands (`bench load`, `bench cache`) attach their
   own sections to the same file.  Every rewrite must carry those
   foreign sections over verbatim, and `bench compare` must ignore
   them; both sides consult this one list so they can never drift
   apart (pinned by test/t_bench_sections.ml). *)

let passthrough = [ "service"; "cache"; "metrics" ]

let is_passthrough name = List.mem name passthrough

module J = Obs.Json

(* The members of an existing report that a rewrite must preserve, in
   [passthrough] order. *)
let keep json =
  List.filter_map
    (fun name -> Option.map (fun v -> (name, v)) (J.member name json))
    passthrough
