module Dsl = Eit_dsl.Dsl
module Ir = Eit_dsl.Ir
module Merge = Eit_dsl.Merge
module Stats = Eit_dsl.Stats
module Xml = Eit_dsl.Xml
module Dot = Eit_dsl.Dot
module Arch = Eit.Arch
module Opcode = Eit.Opcode
module Cplx = Eit.Cplx
module Value = Eit.Value
module Schedule = Sched.Schedule
module Solve = Sched.Solve
module Overlap = Sched.Overlap
module Modulo = Sched.Modulo
module Manual_baseline = Sched.Manual_baseline
module Codegen = Sched.Codegen
module Machine = Eit.Machine

type compiled = {
  raw : Ir.t;
  ir : Ir.t;
  fusions : int;
  stats : Stats.t;
}

let compile ?protect raw =
  let m = Merge.run ?protect raw in
  {
    raw;
    ir = m.Merge.graph;
    fusions = m.Merge.fusions;
    stats = Stats.of_ir m.Merge.graph;
  }

let compile_dsl ctx =
  compile ~protect:(Dsl.declared_outputs ctx) (Dsl.graph ctx)

let schedule ?(budget_ms = 10_000.) ?(deadline = Fd.Deadline.none)
    ?(memory = true) ?(arch = Arch.default) ?(parallel = 0) ?cache
    ?(warm = false) c =
  Solve.run ~budget:(Fd.Search.time_budget budget_ms) ~deadline ~memory ~arch
    ~parallel ?cache ~warm c.ir

let run_on_simulator sched = Codegen.run_and_check sched

let version = "1.0.0"
